module adwars

go 1.22
