GO ?= go

.PHONY: build test vet race verify fault-check bench bench-smoke serve-smoke chaos-smoke chaos-smoke-short fleet-smoke fleet-smoke-short brownout-smoke brownout-smoke-short

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# verify is the full pre-merge gate: compile, vet, plain tests, the race
# detector over the whole tree (the crawl engine is heavily concurrent —
# breaker, journal, and metrics are all shared state), a 1-iteration
# smoke run of the replay benchmarks so a broken bench pipeline fails the
# gate instead of the nightly, an end-to-end smoke of the serving stack
# (snapshots → adwars-serve → adwars-loadgen with a hot reload mid-fire
# and a graceful drain), a shortened chaos run (every fault class
# injected, hostile load, corrupt-snapshot reload mid-fire), a
# shortened fleet run (3 replicas behind adwars-gateway with a mid-load
# SIGKILL/restart and a canary-rollback rollout via adwars-ctl), and a
# shortened brownout run (two starved governed replicas overdriven until
# the degradation ladder climbs, then proven to recover without flapping).
verify: build vet test race bench-smoke serve-smoke chaos-smoke-short fleet-smoke-short brownout-smoke-short

# bench records the full performance profile: one run regenerates all
# five BENCH_*.json reports in the repo root.
#  - BENCH_replay.json: match and list compile/load microbenchmarks from
#    internal/abp plus the full-replay benchmarks from the repo root.
#    replay_speedup_indexed_vs_linear is the acceptance criterion for the
#    indexed match path (≥ 3x over the linear scan);
#    match_automaton_p50_ns (< 1000) with match_nomatch_allocs_per_op
#    (= 0) gate the compiled-automaton hot path, and
#    list_load_speedup_vs_compile is the snapshot compilation win.
#  - BENCH_ml.json: §5 detection-pipeline profile — extraction,
#    selection, and train+CV benchmarks from the ml, features, and
#    experiments packages. ml_speedup_cached_vs_sequential is the
#    acceptance criterion for the kernel-cached parallel pipeline (≥ 2x
#    over the uncached sequential reference).
#  - BENCH_serve.json: single-request serving latency quantiles plus the
#    usage/compaction profile — serve_match_allocs (≤ 8 gate on the
#    pooled /v1/match handler), usage_overhead_p99_ns (counter-on minus
#    counter-off tail, held at zero by the sharded banks),
#    compact_hot_coverage (≥ 0.95 gate) and compact_working_set_bytes
#    (tiered hot automaton vs compact_flat_set_bytes untiered) — and the
#    decision-analytics profile: analytics_overhead_p99_ns
#    (analytics-on minus analytics-off tail, held at zero by the
#    lock-free rings), analytics_drop_rate (0.0 = consumer kept up),
#    analytics_agg_bytes (bounded aggregator footprint), and
#    serve_match_analytics_allocs (same ≤ 8 gate with logging on).
#  - BENCH_chaos.json / BENCH_fleet.json: the live fault-injection,
#    brownout, and fleet smoke runs (chaos-smoke / brownout-smoke /
#    fleet-smoke legs below; the brownout figures merge into
#    BENCH_chaos.json next to the chaos ones).
bench: chaos-smoke brownout-smoke fleet-smoke
	$(GO) test -run '^$$' -bench 'BenchmarkReplay' -benchmem . > /tmp/adwars-bench.txt
	$(GO) test -run '^$$' -bench 'BenchmarkList(Compile|Match|Load)|BenchmarkSnapshotLoadMapped|BenchmarkMatchingHTTPRules|BenchmarkGlobPathological|BenchmarkElementHiding' -benchmem ./internal/abp >> /tmp/adwars-bench.txt
	$(GO) run ./cmd/benchjson -out BENCH_replay.json < /tmp/adwars-bench.txt
	@cat BENCH_replay.json
	$(GO) test -run '^$$' -bench 'BenchmarkML' -benchmem ./internal/experiments > /tmp/adwars-bench-ml.txt
	$(GO) test -run '^$$' -bench 'BenchmarkTrain|BenchmarkPredict|BenchmarkRBFKernel' -benchmem ./internal/ml >> /tmp/adwars-bench-ml.txt
	$(GO) test -run '^$$' -bench . -benchmem ./internal/features >> /tmp/adwars-bench-ml.txt
	$(GO) run ./cmd/benchjson -out BENCH_ml.json < /tmp/adwars-bench-ml.txt
	@cat BENCH_ml.json
	$(GO) test -run '^$$' -bench 'BenchmarkServe' -benchmem ./internal/serve > /tmp/adwars-bench-serve.txt
	$(GO) run ./cmd/benchjson -out BENCH_serve.json /tmp/adwars-bench-serve.txt
	@cat BENCH_serve.json

# bench-smoke runs each headline benchmark exactly once and checks the
# JSON pipeline end to end (no timings recorded — the 1x numbers are
# noise). The ML leg runs -short so verify stays fast. The abp leg runs
# the hot-path gates for real: the automaton must beat the token index by
# the speedup floor and the no-match path must run at 0 allocs/op. The
# serve leg gates the pooled /v1/match handler at ≤ 8 allocs/op, usage
# counter recording at 0 allocs, usage-driven tier compaction at
# ≥ 95% hot coverage with a shrunken hot working set, and the decision
# analytics pipeline: the handler stays at ≤ 8 allocs/op with logging on
# and its p99 stays inside the zero-added-overhead envelope. The degrade
# leg gates the overload governor: the hot-path level read at 0 allocs,
# one ladder transition's cost bounded, and /v1/match still ≤ 8 allocs/op
# with the governor stamping every response.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkReplay(Indexed|LinearScan)$$' -benchtime 1x . | $(GO) run ./cmd/benchjson -out /tmp/adwars-bench-smoke.json
	$(GO) test -short -run '^$$' -bench 'BenchmarkMLTrainCV(Sequential|Cached)$$' -benchtime 1x ./internal/experiments | $(GO) run ./cmd/benchjson -out /tmp/adwars-bench-ml-smoke.json
	$(GO) test -count=1 -run 'TestAutomatonSpeedupFloor|TestNoMatchZeroAllocs|TestMatchZeroAllocs|TestAppendMatchingHTTPRulesZeroAllocs' ./internal/abp
	$(GO) test -run '^$$' -bench 'BenchmarkListMatch(Automaton|TokenIndex|NoMatch)$$|BenchmarkList(Compile|Load)$$' -benchtime 1x ./internal/abp | $(GO) run ./cmd/benchjson -out /tmp/adwars-bench-abp-smoke.json
	$(GO) test -count=1 -run 'TestUsageLoopCoverage|TestUsageRecordZeroAllocs' ./internal/abp
	$(GO) test -count=1 -run 'TestServeMatchAllocs$$|TestServeMatchAnalyticsAllocs|TestServeAnalyticsOverheadGate' ./internal/serve
	$(GO) test -run '^$$' -bench 'BenchmarkServeMatch(Handler|Tiered|Analytics|AnalyticsHandler)$$' -benchtime 1x ./internal/serve | $(GO) run ./cmd/benchjson -out /tmp/adwars-bench-serve-smoke.json
	$(GO) test -count=1 -run 'TestDegradeLevelZeroAllocs|TestDegradeTransitionCost' ./internal/degrade
	$(GO) test -count=1 -run 'TestServeMatchDegradeAllocs' ./internal/serve
	@echo "bench-smoke: pipeline ok"

# serve-smoke is the end-to-end serving gate: ~2s of mixed load against a
# freshly snapshotted adwars-serve on an ephemeral port, with a SIGHUP
# hot reload mid-fire. Fails on any dropped request, any 5xx, a failed
# reload, or an unclean drain.
serve-smoke:
	sh scripts/serve_smoke.sh

# chaos-smoke is the fault-injection gate: adwars-serve with every chaos
# fault class enabled (-chaos-* flags) under adwars-loadgen -chaos
# (malformed / oversized / slow-trickle / mid-body-abort requests), with
# a corrupted-snapshot reload injected mid-fire. Passes only if the
# request ledger balances (sent == 2xx + 4xx + 429 + recovered-panic 5xx
# + aborts), the corrupt reload is rejected while the old snapshot keeps
# serving, post-chaos answers are byte-identical to a fault-free control,
# and the server drains cleanly. Emits BENCH_chaos.json (shed-rate,
# recovered-panics, aborted-requests).
chaos-smoke:
	sh scripts/chaos_smoke.sh

# chaos-smoke-short is the verify-speed variant: same gates, shorter
# firing window, bench JSON parked in /tmp instead of the repo root.
chaos-smoke-short:
	CHAOS_SHORT=1 CHAOS_BENCH_OUT=/tmp/adwars-bench-chaos-smoke.json sh scripts/chaos_smoke.sh

# fleet-smoke is the multi-process fault-tolerance gate: three
# adwars-serve replicas behind adwars-gateway, a SIGKILL + restart of one
# replica mid-load (ledger must balance with zero 5xx and the gateway
# must report failovers), answers byte-identical to a single-node
# control, then the adwars-ctl control plane: a corrupt artifact refused
# locally, a sealed-garbage artifact rejected at the canary and rolled
# back fleet-wide, and a good v2 rollout converging on all replicas.
# Emits BENCH_fleet.json (fleet_rps, fleet_failovers, fleet_retries).
fleet-smoke:
	sh scripts/fleet_smoke.sh

# fleet-smoke-short is the verify-speed variant: same gates, shorter
# firing window, bench JSON parked in /tmp instead of the repo root.
fleet-smoke-short:
	FLEET_SHORT=1 FLEET_BENCH_OUT=/tmp/adwars-bench-fleet-smoke.json sh scripts/fleet_smoke.sh

# brownout-smoke is the overload-governor gate: two capacity-starved
# adwars-serve replicas with -degrade on behind adwars-gateway, overdriven
# far past capacity. Passes only if every replica's degradation ladder
# climbs to at least L2 (hot-tier-only matching) and steps back to L0
# with exactly one climb and one descent (hysteresis held, no flapping),
# the loadgen ledger balances with zero unexplained 5xx, some answers
# were really served hot-only, and a post-recovery probe is
# byte-identical to the unloaded control. Merges the brownout figures
# (brownout_hot_only_fraction, retry_budget_exhaustions,
# degrade_transition_p99_ns) into BENCH_chaos.json.
brownout-smoke:
	sh scripts/brownout_smoke.sh

# brownout-smoke-short is the verify-speed variant: same gates, shorter
# firing window, bench JSON parked in /tmp instead of the repo root.
brownout-smoke-short:
	BROWNOUT_SHORT=1 BROWNOUT_BENCH_OUT=/tmp/adwars-bench-brownout-smoke.json sh scripts/brownout_smoke.sh

# fault-check exercises the headline robustness claim end to end: the
# retrospective CLI at a 10% transient fault rate must emit byte-identical
# figures to a zero-fault run.
fault-check:
	$(GO) run ./cmd/adwars-wayback -scale 50 -stride 6 > /tmp/adwars-clean.txt 2>/dev/null
	$(GO) run ./cmd/adwars-wayback -scale 50 -stride 6 -fault-rate 0.1 > /tmp/adwars-faulty.txt 2>/dev/null
	diff /tmp/adwars-clean.txt /tmp/adwars-faulty.txt
	@echo "fault-check: figures identical under 10% faults"
