GO ?= go

.PHONY: build test vet race verify fault-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# verify is the full pre-merge gate: compile, vet, plain tests, then the
# race detector over the whole tree (the crawl engine is heavily
# concurrent — breaker, journal, and metrics are all shared state).
verify: build vet test race

# fault-check exercises the headline robustness claim end to end: the
# retrospective CLI at a 10% transient fault rate must emit byte-identical
# figures to a zero-fault run.
fault-check:
	$(GO) run ./cmd/adwars-wayback -scale 50 -stride 6 > /tmp/adwars-clean.txt 2>/dev/null
	$(GO) run ./cmd/adwars-wayback -scale 50 -stride 6 -fault-rate 0.1 > /tmp/adwars-faulty.txt 2>/dev/null
	diff /tmp/adwars-clean.txt /tmp/adwars-faulty.txt
	@echo "fault-check: figures identical under 10% faults"
