// Package adwars reproduces "The Ad Wars: Retrospective Measurement and
// Analysis of Anti-Adblock Filter Lists" (Iqbal, Shafiq, Qian — IMC 2017)
// as a Go library: an Adblock-Plus filter rule engine with revisioned list
// histories, a Wayback-Machine-style retrospective measurement pipeline
// over a synthetic web, and a static-analysis + machine-learning detector
// for anti-adblock JavaScript.
//
// The package is a facade over the internal packages; see DESIGN.md for
// the system inventory and EXPERIMENTS.md for the paper-vs-measured
// record. Typical entry points:
//
//	world := adwars.NewWorld(adwars.DefaultWorldConfig(42))
//	lists := adwars.GenerateFilterLists(world, 42)
//	lab   := adwars.NewLab(adwars.ScaledWorldConfig(42, 20))
//	det, _ := adwars.TrainDetector(positives, negatives, adwars.DefaultDetectorConfig(42))
package adwars

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"adwars/internal/abp"
	"adwars/internal/experiments"
	"adwars/internal/features"
	"adwars/internal/listgen"
	"adwars/internal/ml"
	"adwars/internal/simworld"
)

// Filter rule engine re-exports.
type (
	// FilterRule is one parsed Adblock Plus rule.
	FilterRule = abp.Rule
	// FilterList is a compiled, matchable rule set.
	FilterList = abp.List
	// ListHistory is a revisioned filter list.
	ListHistory = abp.History
	// HTTPRequest is a request the matcher evaluates.
	HTTPRequest = abp.Request
)

// ParseFilterRule parses one filter list line.
func ParseFilterRule(line string) (*FilterRule, error) { return abp.Parse(line) }

// CompileFilterList parses a filter list body into a matchable list.
func CompileFilterList(name, body string) (*FilterList, []error) {
	return abp.ParseAndBuild(name, body)
}

// World / lists / experiments re-exports.
type (
	// World is the synthetic web the measurements run against.
	World = simworld.World
	// WorldConfig parameterizes the world.
	WorldConfig = simworld.Config
	// FilterLists bundles the generated list histories.
	FilterLists = listgen.Lists
	// Lab runs the paper's experiments.
	Lab = experiments.Lab
)

// DefaultWorldConfig is the paper-scale configuration (top-100K universe).
func DefaultWorldConfig(seed int64) WorldConfig { return simworld.DefaultConfig(seed) }

// ScaledWorldConfig shrinks the world by factor k for faster runs.
func ScaledWorldConfig(seed int64, k int) WorldConfig { return simworld.Scaled(seed, k) }

// NewWorld generates the synthetic web.
func NewWorld(cfg WorldConfig) *World { return simworld.New(cfg) }

// GenerateFilterLists derives the AAK / EasyList / AWRL histories from the
// world's ground truth through the curation model.
func GenerateFilterLists(w *World, seed int64) *FilterLists { return listgen.Generate(w, seed) }

// NewLab builds a world plus lists ready to run experiments.
func NewLab(cfg WorldConfig) *Lab { return experiments.NewLab(cfg) }

// DetectorConfig parameterizes TrainDetector.
type DetectorConfig struct {
	// FeatureSet picks the context:text variant; the paper's best
	// configuration is the keyword set.
	FeatureSet features.Set
	// TopK is the chi-square feature budget (1,000 in the best config).
	TopK int
	// Boost enables AdaBoost over the SVM (the paper's headline model).
	Boost bool
	// Seed fixes all randomized steps.
	Seed int64
}

// DefaultDetectorConfig is the paper's best configuration: AdaBoost + SVM
// on the top-1K keyword features.
func DefaultDetectorConfig(seed int64) DetectorConfig {
	return DetectorConfig{FeatureSet: features.SetKeyword, TopK: 1000, Boost: true, Seed: seed}
}

// Detector classifies JavaScript sources as anti-adblock or benign using
// static AST features, per §5 of the paper.
type Detector struct {
	cfg   DetectorConfig
	ds    *features.Dataset
	model ml.Classifier
}

// TrainDetector trains a detector from labeled script sources. Scripts
// that fail to parse are skipped, as in the paper's corpus construction.
func TrainDetector(antiAdblock, benign []string, cfg DetectorConfig) (*Detector, error) {
	var sets []map[string]bool
	var labels []int
	add := func(srcs []string, label int) {
		for _, src := range srcs {
			fs, err := features.ExtractSource(src, cfg.FeatureSet)
			if err != nil {
				continue
			}
			sets = append(sets, fs)
			labels = append(labels, label)
		}
	}
	add(antiAdblock, +1)
	add(benign, -1)
	if len(sets) == 0 {
		return nil, fmt.Errorf("adwars: no parseable training scripts")
	}
	ds, err := features.Build(sets, labels)
	if err != nil {
		return nil, err
	}
	if cfg.TopK > 0 {
		ds = ds.SelectPipeline(cfg.TopK)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var model ml.Classifier
	if cfg.Boost {
		model, err = ml.TrainAdaBoost(ds, ml.DefaultAdaBoostConfig(), rng)
	} else {
		model, err = ml.TrainSVM(ds, nil, ml.DefaultSVMConfig(), rng)
	}
	if err != nil {
		return nil, err
	}
	return &Detector{cfg: cfg, ds: ds, model: model}, nil
}

// IsAntiAdblock classifies one JavaScript source. It returns an error when
// the script cannot be parsed (the online deployment skips such scripts).
func (d *Detector) IsAntiAdblock(src string) (bool, error) {
	fs, err := features.ExtractSource(src, d.cfg.FeatureSet)
	if err != nil {
		return false, err
	}
	return d.model.Predict(d.ds.Project(fs)) > 0, nil
}

// NumFeatures returns the trained detector's feature-space size.
func (d *Detector) NumFeatures() int { return d.ds.NumFeatures() }

// detectorJSON is the stable wire form of a trained detector: the
// configuration, the feature vocabulary, and the model — everything an
// adblocker needs to ship the classifier (§5's online deployment).
type detectorJSON struct {
	Config     DetectorConfig `json:"config"`
	Vocabulary []string       `json:"vocabulary"`
	SVM        *ml.SVM        `json:"svm,omitempty"`
	Boost      *ml.AdaBoost   `json:"adaboost,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (d *Detector) MarshalJSON() ([]byte, error) {
	out := detectorJSON{Config: d.cfg, Vocabulary: d.ds.Vocab}
	switch m := d.model.(type) {
	case *ml.AdaBoost:
		out.Boost = m
	case *ml.SVM:
		out.SVM = m
	default:
		return nil, fmt.Errorf("adwars: unserializable model %T", d.model)
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Detector) UnmarshalJSON(data []byte) error {
	var j detectorJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	d.cfg = j.Config
	// Rebuild a vocabulary-only dataset for feature projection. The
	// saved vocabulary is sorted (features.Build sorts), so the restored
	// name→index mapping is identical.
	d.ds = restoreVocabulary(j.Vocabulary)
	switch {
	case j.Boost != nil:
		d.model = j.Boost
	case j.SVM != nil:
		d.model = j.SVM
	default:
		return fmt.Errorf("adwars: detector JSON carries no model")
	}
	return nil
}

// restoreVocabulary builds a projection-only dataset from a saved
// vocabulary.
func restoreVocabulary(vocab []string) *features.Dataset {
	sets := make([]map[string]bool, 1)
	sets[0] = make(map[string]bool, len(vocab))
	for _, f := range vocab {
		sets[0][f] = true
	}
	ds, err := features.Build(sets, []int{1})
	if err != nil {
		panic("adwars: vocabulary restore cannot fail: " + err.Error())
	}
	return ds
}
