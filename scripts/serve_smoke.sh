#!/bin/sh
# serve_smoke.sh — end-to-end smoke of the online serving subsystem:
# build the binaries, freeze small model + lists snapshots, start
# adwars-serve on an ephemeral port, fire adwars-loadgen at it for ~2s
# with a SIGHUP hot-reload mid-run, then drain with SIGTERM. After the
# reload settles, a second quiet-server loadgen pass runs -usage-check
# (per-rule telemetry reconciled exactly against the client-side verdict
# ledger), a third runs -analytics-check (the decision analytics totals
# reconciled exactly against the client's per-verdict ledger at sampling
# 1.0), adwars-report -live renders a dashboard from the live
# /admin/analytics snapshot, the accumulated /admin/usage dump feeds
# adwars-compact into a tiered v4 snapshot, and a second server proves
# the tiered snapshot serves clean load. After the SIGTERM drain the
# analytics spill directory must hold the flushed run, which
# adwars-report -live renders again from disk. Fails if any request is
# dropped or 5xx's, if the reload fails, if either ledger drifts, if a
# dashboard comes up empty, if compaction or tiered serving breaks, or
# if the server does not exit cleanly. Every wait is bounded: a wedged
# server is killed hard by the teardown trap rather than hanging the
# build forever.
set -eu

GO="${GO:-go}"
DIR="$(mktemp -d /tmp/adwars-serve-smoke.XXXXXX)"
SERVER_PID=""
TIERED_PID=""

# wait_pid_bounded PID SECONDS — poll until PID exits or the budget runs
# out; returns 0 if it exited, 1 if it is still alive.
wait_pid_bounded() {
    _pid="$1"; _budget=$(( $2 * 10 )); _i=0
    while kill -0 "$_pid" 2>/dev/null; do
        _i=$((_i + 1))
        [ "$_i" -gt "$_budget" ] && return 1
        sleep 0.1
    done
    return 0
}

cleanup() {
    for _p in "$SERVER_PID" "$TIERED_PID"; do
        if [ -n "$_p" ] && kill -0 "$_p" 2>/dev/null; then
            kill "$_p" 2>/dev/null || true
            # Give the drain a moment; a server that ignores SIGTERM gets
            # KILLed so the trap itself can never hang.
            if ! wait_pid_bounded "$_p" 5; then
                echo "serve-smoke: teardown: server ignored SIGTERM, killing hard" >&2
                kill -9 "$_p" 2>/dev/null || true
            fi
        fi
    done
    rm -rf "$DIR"
}
trap cleanup EXIT INT TERM

echo "serve-smoke: building binaries..."
$GO build -o "$DIR" ./cmd/adwars-serve ./cmd/adwars-loadgen ./cmd/adwars-lists ./cmd/adwars-detect ./cmd/adwars-compact ./cmd/adwars-report

echo "serve-smoke: freezing snapshots (scale 50)..."
"$DIR/adwars-lists" -scale 50 -save-snapshot "$DIR/lists.json" >/dev/null 2>&1
"$DIR/adwars-detect" -scale 50 -model-only -save-model "$DIR/model.json" >/dev/null 2>&1

"$DIR/adwars-serve" -addr 127.0.0.1:0 \
    -model "$DIR/model.json" -lists "$DIR/lists.json" \
    -analytics -analytics-spill "$DIR/spill" \
    -portfile "$DIR/port.txt" 2>"$DIR/serve.log" &
SERVER_PID=$!

# Wait for a port file (the server writes it after binding). Timing out
# here is a hard, loud failure with the server log attached — not a silent
# hang and not a cascade of confusing connection errors further down.
wait_portfile() {
    _file="$1"; _pid="$2"; _log="$3"; _i=0
    while [ ! -s "$_file" ]; do
        _i=$((_i + 1))
        if [ "$_i" -gt 100 ]; then
            echo "serve-smoke: FAIL: server never wrote its portfile within 10s" >&2
            cat "$_log" >&2
            exit 1
        fi
        if ! kill -0 "$_pid" 2>/dev/null; then
            echo "serve-smoke: FAIL: server died on startup" >&2
            cat "$_log" >&2
            exit 1
        fi
        sleep 0.1
    done
}
wait_portfile "$DIR/port.txt" "$SERVER_PID" "$DIR/serve.log"
ADDR="$(cat "$DIR/port.txt")"
echo "serve-smoke: server on $ADDR"

# Hot-reload both snapshots while the load generator is firing.
( sleep 1; kill -HUP "$SERVER_PID" 2>/dev/null ) &

"$DIR/adwars-loadgen" -target "http://$ADDR" -duration 2s \
    -concurrency 4 -lists "$DIR/lists.json" -check

# The reload has settled and the server is quiet: reconcile the per-rule
# usage telemetry exactly against a fresh run's own parsed-verdict ledger
# (every non-"no-match" list verdict in a 2xx match body is one server-side
# RecordUsage tick).
echo "serve-smoke: usage-check pass..."
"$DIR/adwars-loadgen" -target "http://$ADDR" -duration 1s \
    -concurrency 2 -lists "$DIR/lists.json" -check -usage-check

# Reconcile the decision analytics pipeline the same way: another quiet
# run whose client-side per-verdict ledger must match the
# /admin/analytics cumulative total deltas exactly (sampling is 1.0),
# with zero ring drops.
echo "serve-smoke: analytics-check pass..."
"$DIR/adwars-loadgen" -target "http://$ADDR" -duration 1s \
    -concurrency 2 -lists "$DIR/lists.json" -check -analytics-check

# The live dashboard over the in-memory buckets: it must see the traffic
# fired so far and attribute at least one firing rule.
echo "serve-smoke: live analytics dashboard..."
"$DIR/adwars-report" -live -url "http://$ADDR" > "$DIR/live_report.txt"
if ! grep -q "live serving analytics" "$DIR/live_report.txt" \
    || grep -q " 0 decisions" "$DIR/live_report.txt" \
    || grep -q "(no rules fired)" "$DIR/live_report.txt"; then
    echo "serve-smoke: FAIL: live analytics dashboard is empty" >&2
    cat "$DIR/live_report.txt" >&2
    exit 1
fi

# Close the loop: compact the live /admin/usage dump plus the v3 snapshot
# into a tiered v4 snapshot, then prove a server on the tiered snapshot
# takes the same load clean.
echo "serve-smoke: compacting usage into tiered v4 snapshot..."
"$DIR/adwars-compact" -lists "$DIR/lists.json" \
    -usage "http://$ADDR/admin/usage" -out "$DIR/lists_v4.json"

"$DIR/adwars-serve" -addr 127.0.0.1:0 \
    -model "$DIR/model.json" -lists "$DIR/lists_v4.json" \
    -portfile "$DIR/port_tiered.txt" 2>"$DIR/serve_tiered.log" &
TIERED_PID=$!
wait_portfile "$DIR/port_tiered.txt" "$TIERED_PID" "$DIR/serve_tiered.log"
TADDR="$(cat "$DIR/port_tiered.txt")"
echo "serve-smoke: tiered server on $TADDR"
"$DIR/adwars-loadgen" -target "http://$TADDR" -duration 1s \
    -concurrency 2 -lists "$DIR/lists.json" -check -usage-check
kill -TERM "$TIERED_PID"
if ! wait_pid_bounded "$TIERED_PID" 15; then
    echo "serve-smoke: FAIL: tiered server still alive 15s after SIGTERM" >&2
    cat "$DIR/serve_tiered.log" >&2
    exit 1
fi
if ! wait "$TIERED_PID"; then
    echo "serve-smoke: FAIL: tiered server did not drain cleanly" >&2
    cat "$DIR/serve_tiered.log" >&2
    exit 1
fi
TIERED_PID=""

kill -TERM "$SERVER_PID"
if ! wait_pid_bounded "$SERVER_PID" 15; then
    echo "serve-smoke: FAIL: server still alive 15s after SIGTERM" >&2
    cat "$DIR/serve.log" >&2
    exit 1
fi
# The process is gone; collect its exit status.
if ! wait "$SERVER_PID"; then
    echo "serve-smoke: FAIL: server did not drain cleanly" >&2
    cat "$DIR/serve.log" >&2
    exit 1
fi
SERVER_PID=""

if ! grep -q "SIGHUP reload ok" "$DIR/serve.log"; then
    echo "serve-smoke: FAIL: hot reload did not happen" >&2
    cat "$DIR/serve.log" >&2
    exit 1
fi

# The SIGTERM drain must have flushed the rings and the final aggregator
# state to spill; the offline dashboard over those files must carry the
# whole run.
if ! ls "$DIR/spill"/analytics-*.jsonl >/dev/null 2>&1; then
    echo "serve-smoke: FAIL: no analytics spill files after drain" >&2
    ls -la "$DIR/spill" >&2 || true
    exit 1
fi
echo "serve-smoke: post-drain spill dashboard..."
"$DIR/adwars-report" -live -spill "$DIR/spill" > "$DIR/spill_report.txt"
if ! grep -q "live serving analytics" "$DIR/spill_report.txt" \
    || grep -q " 0 decisions" "$DIR/spill_report.txt" \
    || grep -q "(no rules fired)" "$DIR/spill_report.txt"; then
    echo "serve-smoke: FAIL: spill dashboard is empty after drain" >&2
    cat "$DIR/spill_report.txt" >&2
    exit 1
fi

echo "serve-smoke: OK (zero drops across hot reload, usage + analytics ledgers reconciled, live + spill dashboards rendered, tiered snapshot served clean, clean drain)"
