#!/bin/sh
# brownout_smoke.sh — the adaptive overload governor end to end. Builds
# the binaries, freezes snapshots, boots two deliberately tiny replicas
# (-workers 1, queue 2) with the degradation governor on behind
# adwars-gateway, records an unloaded control probe, then overdrives the
# fleet with adwars-loadgen at concurrency far beyond capacity.
#
# The gate:
#
#   1. Ladder: every replica's /admin/degrade must show the level climbed
#      to at least L2 (hot-tier-only matching) under load and stepped all
#      the way back to L0 after it — with exactly one climb and one
#      descent (transitions == 2 x peak, step-ups == step-downs), proving
#      the hysteresis damping held and the ladder did not flap.
#   2. Ledger: the loadgen check must balance — every request exactly one
#      2xx or 429 (degrade sheds included), zero unexplained 5xx.
#   3. Brownout was real: the hot-only fraction (share of answers served
#      at L2+) must be > 0.
#   4. Recovery is complete: a post-recovery probe through the gateway
#      must be byte-identical to the unloaded control probe.
#
# The brownout bench line is merged into ${BROWNOUT_BENCH_OUT:-BENCH_chaos.json}
# via benchjson -merge, alongside the chaos smoke's figures.
# BROWNOUT_SHORT=1 shortens the firing window (used by `make verify`).
set -eu

GO="${GO:-go}"
DIR="$(mktemp -d /tmp/adwars-brownout-smoke.XXXXXX)"
BENCH_OUT="${BROWNOUT_BENCH_OUT:-BENCH_chaos.json}"
DURATION="3s"
[ "${BROWNOUT_SHORT:-0}" = "1" ] && DURATION="1500ms"

wait_pid_bounded() {
    _pid="$1"; _budget=$(( $2 * 10 )); _i=0
    while kill -0 "$_pid" 2>/dev/null; do
        _i=$((_i + 1))
        [ "$_i" -gt "$_budget" ] && return 1
        sleep 0.1
    done
    return 0
}

cleanup() {
    for f in "$DIR"/*.pid; do
        [ -f "$f" ] || continue
        _pid="$(cat "$f")"
        if kill -0 "$_pid" 2>/dev/null; then
            kill "$_pid" 2>/dev/null || true
            wait_pid_bounded "$_pid" 5 || kill -9 "$_pid" 2>/dev/null || true
        fi
    done
    rm -rf "$DIR"
}
trap cleanup EXIT INT TERM

fail() {
    echo "brownout-smoke: FAIL: $1" >&2
    for log in "$DIR"/*.log; do
        [ -f "$log" ] && { echo "--- $log" >&2; tail -20 "$log" >&2; }
    done
    exit 1
}

# start_replica NAME — boots one governed, capacity-starved adwars-serve
# replica on an ephemeral port, records NAME.pid and NAME.addr.
#
# The starvation recipe: 1 worker whose every request is stretched to
# 20ms by the chaos latency injector (which sleeps while holding the
# worker slot), so the replica serves ~50 req/s — far below what the
# loadgen offers — and the admission queue (depth 8, 50ms wait budget)
# stays pegged. That keeps the governor's instantaneous queue-depth
# sample above the high-water mark at every 50ms tick, so the ladder
# climbs and holds without flapping. The p99 threshold is raised to
# 500ms because the injected 20ms would otherwise read as pressure even
# on the sequential post-recovery probe.
start_replica() {
    _name="$1"
    rm -f "$DIR/$_name.port"
    "$DIR/adwars-serve" -addr 127.0.0.1:0 \
        -model "$DIR/model.json" -lists "$DIR/lists.json" \
        -replica "$_name" -drain-announce 200ms \
        -workers 1 -queue 8 -queue-timeout 50ms \
        -chaos-seed 42 -chaos-latency-rate 1 -chaos-latency 20ms \
        -degrade -degrade-interval 50ms -degrade-p99 500ms \
        -degrade-up-ticks 2 -degrade-down-ticks 5 \
        -portfile "$DIR/$_name.port" 2>>"$DIR/$_name.log" &
    echo $! > "$DIR/$_name.pid"
    _i=0
    while [ ! -s "$DIR/$_name.port" ]; do
        _i=$((_i + 1))
        [ "$_i" -gt 100 ] && fail "replica $_name never wrote its portfile within 10s"
        kill -0 "$(cat "$DIR/$_name.pid")" 2>/dev/null || fail "replica $_name died on startup"
        sleep 0.1
    done
    cp "$DIR/$_name.port" "$DIR/$_name.addr"
}

stop_pid() {
    _pid="$(cat "$1")"
    kill -TERM "$_pid" 2>/dev/null || return 0
    wait_pid_bounded "$_pid" 15 || fail "$1 still alive 15s after SIGTERM"
    rm -f "$1"
}

echo "brownout-smoke: building binaries..."
$GO build -o "$DIR" ./cmd/adwars-serve ./cmd/adwars-gateway \
    ./cmd/adwars-loadgen ./cmd/adwars-lists ./cmd/adwars-detect ./cmd/benchjson

echo "brownout-smoke: freezing snapshots (scale 50)..."
"$DIR/adwars-lists" -scale 50 -save-snapshot "$DIR/lists.json" >/dev/null 2>&1
"$DIR/adwars-detect" -scale 50 -model-only -save-model "$DIR/model.json" >/dev/null 2>&1

start_replica r1
start_replica r2
R1="$(cat "$DIR/r1.addr")"; R2="$(cat "$DIR/r2.addr")"

rm -f "$DIR/gw.port"
"$DIR/adwars-gateway" -addr 127.0.0.1:0 -backends "$R1,$R2" \
    -health-interval 100ms -retry-budget 5 -retry-refill 0.1 \
    -portfile "$DIR/gw.port" 2>"$DIR/gateway.log" &
echo $! > "$DIR/gateway.pid"
i=0
while [ ! -s "$DIR/gw.port" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "gateway never wrote its portfile within 10s"
    sleep 0.1
done
GW="http://$(cat "$DIR/gw.port")"
echo "brownout-smoke: gateway on $GW fronting r1=$R1 r2=$R2 (1 worker @ 20ms/req, queue 8 each)"

# --- Control: canonical answers from the unloaded fleet at L0. -----------
"$DIR/adwars-loadgen" -target "$GW" -probe > "$DIR/control.txt" \
    || fail "unloaded control probe got no answers"

# --- Overdrive: concurrency far beyond the 2-worker fleet's capacity. ----
# -check proves the ledger (zero unexplained 5xx even while shedding at
# L3/L4); -degrade-check waits for both replicas to recover to L0 and
# asserts the climb reached >= L2 with no flapping; -bench-brownout emits
# the hot-only fraction / budget exhaustions / transition p99 line.
echo "brownout-smoke: overdriving for $DURATION at concurrency 32..."
if ! "$DIR/adwars-loadgen" -target "$GW" -duration "$DURATION" \
    -concurrency 32 -lists "$DIR/lists.json" -classify-frac 0.3 \
    -check -bench-brownout -degrade-check \
    -degrade-url "http://$R1,http://$R2" > "$DIR/loadgen.txt"; then
    cat "$DIR/loadgen.txt"
    fail "loadgen ledger or degrade recovery check failed"
fi
cat "$DIR/loadgen.txt"

# The brownout must have been real: some answers served hot-tier-only.
HOT_FRAC="$(awk '/^BenchmarkBrownoutLoadgen/ { for (i=1;i<NF;i++) if ($(i+1)=="hot-only-fraction") print $i }' "$DIR/loadgen.txt")"
[ -n "$HOT_FRAC" ] || fail "loadgen emitted no brownout benchmark line"
case "$HOT_FRAC" in
    0|0.0000) fail "hot-only fraction is $HOT_FRAC; no answers were served at L2+" ;;
esac

# --- Recovery: the fleet at L0 again must answer exactly like control. ---
"$DIR/adwars-loadgen" -target "$GW" -probe > "$DIR/post.txt" \
    || fail "post-recovery probe got no answers"
diff "$DIR/control.txt" "$DIR/post.txt" \
    || fail "post-recovery answers differ from unloaded control"

stop_pid "$DIR/gateway.pid"
stop_pid "$DIR/r1.pid"
stop_pid "$DIR/r2.pid"

grep '^BenchmarkBrownoutLoadgen' "$DIR/loadgen.txt" > "$DIR/bench.txt"
"$DIR/benchjson" -merge "$BENCH_OUT" -out "$BENCH_OUT" "$DIR/bench.txt"

echo "brownout-smoke: OK (ladder climbed >= L2 and recovered to L0 without flapping, ledger balanced, hot-only fraction $HOT_FRAC, answers identical to control, clean drain)"
