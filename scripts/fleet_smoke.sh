#!/bin/sh
# fleet_smoke.sh — the fault-tolerant serving fleet end to end. Builds the
# binaries, freezes snapshots, records a single-node control answer, then
# boots three adwars-serve replicas behind adwars-gateway and proves:
#
#   1. Failover: mid-load, one replica is SIGKILLed and later restarted on
#      the same address. The loadgen ledger must still balance (every
#      request exactly one 2xx or 429, zero 5xx, zero transport errors)
#      and the gateway must report failovers > 0 — the kill was real and
#      absorbed.
#   2. Consistency: answers through the gateway are byte-identical to the
#      single-node control, before and after the kill.
#   3. Control plane: adwars-ctl refuses a bit-flipped artifact locally
#      (exit 2, nothing pushed); a well-sealed-but-garbage artifact is
#      rejected by the canary and rolled back (exit 3, fleet keeps serving
#      last-good, canary's last_reload shows the rejection); a good v2
#      snapshot rolls out to all replicas (exit 0) and every replica
#      converges on the same version with byte-identical answers.
#
# The fleet bench line lands in ${FLEET_BENCH_OUT:-BENCH_fleet.json} via
# benchjson. FLEET_SHORT=1 shortens the firing window (used by
# `make verify`). All waits are bounded.
set -eu

GO="${GO:-go}"
DIR="$(mktemp -d /tmp/adwars-fleet-smoke.XXXXXX)"
BENCH_OUT="${FLEET_BENCH_OUT:-BENCH_fleet.json}"
DURATION="4s"
KILL_AT=1.2
RESTART_AFTER=0.8
if [ "${FLEET_SHORT:-0}" = "1" ]; then
    DURATION="2s"
    KILL_AT=0.6
    RESTART_AFTER=0.5
fi

wait_pid_bounded() {
    _pid="$1"; _budget=$(( $2 * 10 )); _i=0
    while kill -0 "$_pid" 2>/dev/null; do
        _i=$((_i + 1))
        [ "$_i" -gt "$_budget" ] && return 1
        sleep 0.1
    done
    return 0
}

cleanup() {
    for f in "$DIR"/*.pid; do
        [ -f "$f" ] || continue
        _pid="$(cat "$f")"
        if kill -0 "$_pid" 2>/dev/null; then
            kill "$_pid" 2>/dev/null || true
            wait_pid_bounded "$_pid" 5 || kill -9 "$_pid" 2>/dev/null || true
        fi
    done
    rm -rf "$DIR"
}
trap cleanup EXIT INT TERM

fail() {
    echo "fleet-smoke: FAIL: $1" >&2
    for log in "$DIR"/*.log; do
        [ -f "$log" ] && { echo "--- $log" >&2; tail -20 "$log" >&2; }
    done
    exit 1
}

# start_replica NAME [extra flags...] — boots one adwars-serve replica on
# an ephemeral port with its own snapshot copies, records NAME.pid and
# NAME.addr.
start_replica() {
    _name="$1"; shift
    mkdir -p "$DIR/$_name"
    [ -f "$DIR/$_name/lists.json" ] || cp "$DIR/lists.json" "$DIR/$_name/lists.json"
    [ -f "$DIR/$_name/model.json" ] || cp "$DIR/model.json" "$DIR/$_name/model.json"
    rm -f "$DIR/$_name/port.txt"
    "$DIR/adwars-serve" -addr "${REPLICA_ADDR:-127.0.0.1:0}" \
        -model "$DIR/$_name/model.json" -lists "$DIR/$_name/lists.json" \
        -replica "$_name" -drain-announce 200ms \
        -portfile "$DIR/$_name/port.txt" "$@" 2>>"$DIR/$_name.log" &
    echo $! > "$DIR/$_name.pid"
    _i=0
    while [ ! -s "$DIR/$_name/port.txt" ]; do
        _i=$((_i + 1))
        [ "$_i" -gt 100 ] && fail "replica $_name never wrote its portfile within 10s"
        kill -0 "$(cat "$DIR/$_name.pid")" 2>/dev/null || fail "replica $_name died on startup"
        sleep 0.1
    done
    cp "$DIR/$_name/port.txt" "$DIR/$_name.addr"
}

stop_pid() {
    _pid="$(cat "$1")"
    kill -TERM "$_pid" 2>/dev/null || return 0
    wait_pid_bounded "$_pid" 15 || fail "$1 still alive 15s after SIGTERM"
    rm -f "$1"
}

echo "fleet-smoke: building binaries..."
$GO build -o "$DIR" ./cmd/adwars-serve ./cmd/adwars-gateway ./cmd/adwars-ctl \
    ./cmd/adwars-loadgen ./cmd/adwars-lists ./cmd/adwars-detect ./cmd/benchjson

echo "fleet-smoke: freezing snapshots (scale 50)..."
"$DIR/adwars-lists" -scale 50 -save-snapshot "$DIR/lists.json" >/dev/null 2>&1
"$DIR/adwars-detect" -scale 50 -model-only -save-model "$DIR/model.json" >/dev/null 2>&1

# --- Control: canonical answers from a single fault-free node. -----------
start_replica control
"$DIR/adwars-loadgen" -target "http://$(cat "$DIR/control.addr")" -probe \
    > "$DIR/control.txt" || fail "single-node control probe got no answers"
stop_pid "$DIR/control.pid"

# --- Fleet: three replicas behind the gateway. ----------------------------
start_replica r1
start_replica r2
start_replica r3
R1="$(cat "$DIR/r1.addr")"; R2="$(cat "$DIR/r2.addr")"; R3="$(cat "$DIR/r3.addr")"

rm -f "$DIR/gw.port"
"$DIR/adwars-gateway" -addr 127.0.0.1:0 -backends "$R1,$R2,$R3" \
    -health-interval 100ms -hedge-delay 50ms \
    -portfile "$DIR/gw.port" 2>"$DIR/gateway.log" &
echo $! > "$DIR/gateway.pid"
i=0
while [ ! -s "$DIR/gw.port" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "gateway never wrote its portfile within 10s"
    sleep 0.1
done
GW="http://$(cat "$DIR/gw.port")"
echo "fleet-smoke: gateway on $GW fronting r1=$R1 r2=$R2 r3=$R3"

# Through the gateway, answers must match the single-node control exactly.
"$DIR/adwars-loadgen" -target "$GW" -probe > "$DIR/fleet-pre.txt" \
    || fail "pre-kill gateway probe got no answers"
diff "$DIR/control.txt" "$DIR/fleet-pre.txt" \
    || fail "gateway answers differ from single-node control"

# --- Failover: SIGKILL r2 mid-load, restart it on the same address. ------
(
    sleep "$KILL_AT"
    kill -9 "$(cat "$DIR/r2.pid")" 2>/dev/null
    echo "fleet-smoke: SIGKILLed r2 mid-load" >&2
    sleep "$RESTART_AFTER"
    REPLICA_ADDR="$R2" start_replica r2
    echo "fleet-smoke: restarted r2 on $R2" >&2
) &
KILLER_PID=$!

if ! "$DIR/adwars-loadgen" -target "$GW" -duration "$DURATION" \
    -concurrency 8 -lists "$DIR/lists.json" -classify-frac 0.2 \
    -check -bench-fleet > "$DIR/loadgen.txt"; then
    cat "$DIR/loadgen.txt"
    fail "fleet loadgen ledger check failed (a killed replica leaked 5xx)"
fi
cat "$DIR/loadgen.txt"
wait "$KILLER_PID" 2>/dev/null || true

FAILOVERS="$(awk '/^BenchmarkFleetLoadgen/ { for (i=1;i<NF;i++) if ($(i+1)=="failovers") print $i }' "$DIR/loadgen.txt")"
[ -n "$FAILOVERS" ] || fail "loadgen emitted no fleet benchmark line"
[ "$FAILOVERS" -ge 1 ] 2>/dev/null || fail "gateway reports $FAILOVERS failovers; the SIGKILL was not absorbed by failover"

"$DIR/adwars-loadgen" -target "$GW" -probe > "$DIR/fleet-post.txt" \
    || fail "post-kill gateway probe got no answers"
diff "$DIR/control.txt" "$DIR/fleet-post.txt" \
    || fail "post-kill gateway answers differ from control"
echo "fleet-smoke: kill/restart absorbed ($FAILOVERS failovers, ledger balanced, answers identical)"

# --- Control plane: local refusal, canary rollback, good rollout. --------
REPLICAS="$R1,$R2,$R3"

# (a) A corrupted-payload artifact (trailer intact, one payload byte
# stomped with NUL — a byte JSON never contains, so the change is real)
# must be refused locally: exit 2, no push.
cp "$DIR/lists.json" "$DIR/flipped.json"
dd if=/dev/zero of="$DIR/flipped.json" bs=1 count=1 seek=512 conv=notrunc 2>/dev/null
set +e
"$DIR/adwars-ctl" -replicas "$REPLICAS" -push-lists "$DIR/flipped.json" 2>>"$DIR/ctl.log"
RC=$?
set -e
[ "$RC" -eq 2 ] || fail "ctl exit $RC for a bit-flipped artifact, want 2 (local refusal)"

# (b) A well-sealed artifact with a garbage payload passes the local
# integrity check; the canary's parse must reject it and the rollout must
# roll back: exit 3, whole fleet still serving last-good.
printf '{"format":"adwars-lists","version":1,"lists":' > "$DIR/garbage-payload.json"
"$DIR/adwars-ctl" -seal "$DIR/garbage-payload.json" -out "$DIR/poison.json" >/dev/null
set +e
"$DIR/adwars-ctl" -replicas "$REPLICAS" -push-lists "$DIR/poison.json" 2>>"$DIR/ctl.log"
RC=$?
set -e
[ "$RC" -eq 3 ] || fail "ctl exit $RC for a canary-rejected artifact, want 3 (rolled back)"
"$DIR/adwars-ctl" -replicas "$REPLICAS" -status 2>/dev/null > "$DIR/status-rollback.txt"
grep -q '"rejected": true' "$DIR/status-rollback.txt" \
    || fail "canary reload_rejected did not tick on the poisoned push"
"$DIR/adwars-loadgen" -target "$GW" -probe > "$DIR/fleet-rollback.txt" \
    || fail "post-rollback gateway probe got no answers"
diff "$DIR/control.txt" "$DIR/fleet-rollback.txt" \
    || fail "fleet answers changed after a rolled-back rollout"
echo "fleet-smoke: poisoned rollout stopped at canary and rolled back (fleet kept serving last-good)"

# (c) A good v2 snapshot (new label → new version) must roll out to all
# three replicas, which converge on one version with identical answers.
"$DIR/adwars-lists" -scale 50 -label "fleet v2" -save-snapshot "$DIR/lists2.json" >/dev/null 2>&1
"$DIR/adwars-ctl" -replicas "$REPLICAS" -push-lists "$DIR/lists2.json" \
    > "$DIR/rollout.txt" 2>>"$DIR/ctl.log" \
    || fail "good rollout failed (exit $?)"
V2="$(sed -n 's/.*version=\([0-9a-f]\{16\}\).*/\1/p' "$DIR/rollout.txt" | head -1)"
[ -n "$V2" ] || fail "could not read rolled-out version from ctl output"
"$DIR/adwars-ctl" -replicas "$REPLICAS" -status 2>/dev/null > "$DIR/status-v2.txt"
CONVERGED="$(grep -c "\"lists_version\": \"$V2\"" "$DIR/status-v2.txt" || true)"
[ "$CONVERGED" -eq 3 ] || fail "only $CONVERGED/3 replicas converged on version $V2"
for r in "$R1" "$R2" "$R3"; do
    "$DIR/adwars-loadgen" -target "http://$r" -probe > "$DIR/probe-$r.txt" \
        || fail "post-rollout probe of $r got no answers"
done
diff "$DIR/probe-$R1.txt" "$DIR/probe-$R2.txt" \
    || fail "r1 and r2 answers differ after the v2 rollout"
diff "$DIR/probe-$R1.txt" "$DIR/probe-$R3.txt" \
    || fail "r1 and r3 answers differ after the v2 rollout"
echo "fleet-smoke: v2 rollout converged (3/3 replicas on $V2, answers identical)"

# --- Teardown + bench report. --------------------------------------------
stop_pid "$DIR/gateway.pid"
stop_pid "$DIR/r1.pid"
stop_pid "$DIR/r2.pid"
stop_pid "$DIR/r3.pid"

grep '^BenchmarkFleetLoadgen' "$DIR/loadgen.txt" > "$DIR/bench.txt"
"$DIR/benchjson" -out "$BENCH_OUT" "$DIR/bench.txt"

echo "fleet-smoke: OK (failover absorbed, canary rollback clean, v2 converged, graceful drain)"
