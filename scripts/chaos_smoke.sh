#!/bin/sh
# chaos_smoke.sh — the serving stack under deliberate fire. Builds the
# binaries, freezes snapshots, records a fault-free control answer, then
# restarts the server with every chaos fault class enabled (injected
# latency, early connection closes, truncated reads, handler panics) and
# drives it with adwars-loadgen -chaos (malformed, oversized, slow-trickle
# and mid-body-abort requests mixed into normal traffic). Mid-fire, the
# lists snapshot on disk is corrupted and SIGHUPed (the reload must be
# rejected and the old snapshot keep serving), then restored and SIGHUPed
# again (the reload must succeed).
#
# The gate: the loadgen ledger must balance (sent == 2xx + 4xx + 429 +
# panic-5xx + aborts, zero unexplained 5xx, zero drops), both reload
# outcomes must appear in the server log, the post-chaos probe answers
# must be byte-identical to the fault-free control, and the server must
# still drain cleanly. The bench line from the run lands in
# ${CHAOS_BENCH_OUT:-BENCH_chaos.json} via benchjson.
#
# CHAOS_SHORT=1 shortens the firing window (used by `make verify`).
set -eu

GO="${GO:-go}"
DIR="$(mktemp -d /tmp/adwars-chaos-smoke.XXXXXX)"
BENCH_OUT="${CHAOS_BENCH_OUT:-BENCH_chaos.json}"
DURATION="3s"
[ "${CHAOS_SHORT:-0}" = "1" ] && DURATION="1500ms"
SERVER_PID=""

wait_pid_bounded() {
    _pid="$1"; _budget=$(( $2 * 10 )); _i=0
    while kill -0 "$_pid" 2>/dev/null; do
        _i=$((_i + 1))
        [ "$_i" -gt "$_budget" ] && return 1
        sleep 0.1
    done
    return 0
}

cleanup() {
    if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
        kill "$SERVER_PID" 2>/dev/null || true
        if ! wait_pid_bounded "$SERVER_PID" 5; then
            echo "chaos-smoke: teardown: server ignored SIGTERM, killing hard" >&2
            kill -9 "$SERVER_PID" 2>/dev/null || true
        fi
    fi
    rm -rf "$DIR"
}
trap cleanup EXIT INT TERM

fail() {
    echo "chaos-smoke: FAIL: $1" >&2
    [ -f "$DIR/serve.log" ] && cat "$DIR/serve.log" >&2
    exit 1
}

# start_server LOGFILE [extra flags...] — boots adwars-serve on an
# ephemeral port and sets SERVER_PID/ADDR, failing loudly on timeout.
start_server() {
    _log="$1"; shift
    rm -f "$DIR/port.txt"
    "$DIR/adwars-serve" -addr 127.0.0.1:0 \
        -model "$DIR/model.json" -lists "$DIR/lists.json" \
        -portfile "$DIR/port.txt" "$@" 2>"$_log" &
    SERVER_PID=$!
    i=0
    while [ ! -s "$DIR/port.txt" ]; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && fail "server never wrote its portfile within 10s"
        kill -0 "$SERVER_PID" 2>/dev/null || fail "server died on startup ($_log)"
        sleep 0.1
    done
    ADDR="$(cat "$DIR/port.txt")"
}

stop_server() {
    kill -TERM "$SERVER_PID"
    wait_pid_bounded "$SERVER_PID" 15 || fail "server still alive 15s after SIGTERM"
    wait "$SERVER_PID" || fail "server did not drain cleanly"
    SERVER_PID=""
}

echo "chaos-smoke: building binaries..."
$GO build -o "$DIR" ./cmd/adwars-serve ./cmd/adwars-loadgen ./cmd/adwars-lists ./cmd/adwars-detect ./cmd/benchjson

echo "chaos-smoke: freezing snapshots (scale 50)..."
"$DIR/adwars-lists" -scale 50 -save-snapshot "$DIR/lists.json" >/dev/null 2>&1
"$DIR/adwars-detect" -scale 50 -model-only -save-model "$DIR/model.json" >/dev/null 2>&1
cp "$DIR/lists.json" "$DIR/lists.good.json"

# --- Control: canonical answers from a fault-free server. ---------------
start_server "$DIR/control.log"
echo "chaos-smoke: control server on $ADDR"
"$DIR/adwars-loadgen" -target "http://$ADDR" -probe > "$DIR/control.txt" \
    || fail "control probe got no answers"
stop_server

# --- Chaos: every fault class on, hostile load, corrupt reload mid-fire. -
# Deliberately tiny admission capacity so the hostile load also exercises
# shedding (429 + Retry-After backoff), not just the injected faults.
start_server "$DIR/serve.log" \
    -workers 1 -queue 2 -queue-timeout 2ms \
    -chaos-seed 1337 \
    -chaos-latency-rate 0.1 -chaos-latency 10ms \
    -chaos-close-rate 0.05 \
    -chaos-truncate-rate 0.05 \
    -chaos-panic-rate 0.05
echo "chaos-smoke: chaos server on $ADDR (all fault classes live, $DURATION of hostile load)"

# Mid-fire: corrupt the lists snapshot and SIGHUP (must be rejected), then
# restore and SIGHUP again (must succeed). Runs alongside the loadgen.
(
    sleep 0.5
    head -c "$(( $(wc -c < "$DIR/lists.good.json") / 2 ))" "$DIR/lists.good.json" > "$DIR/lists.json"
    kill -HUP "$SERVER_PID" 2>/dev/null
    sleep 0.4
    cp "$DIR/lists.good.json" "$DIR/lists.json"
    kill -HUP "$SERVER_PID" 2>/dev/null
) &
RELOADER_PID=$!

# No pipeline here: under plain POSIX sh a `| tee` would mask the
# loadgen's exit status, and the ledger check is the point of the run.
if ! "$DIR/adwars-loadgen" -target "http://$ADDR" -duration "$DURATION" \
    -concurrency 8 -lists "$DIR/lists.good.json" -classify-frac 0.3 \
    -chaos -fault-frac 0.25 -check -bench > "$DIR/loadgen.txt"; then
    cat "$DIR/loadgen.txt"
    fail "chaos loadgen ledger check failed"
fi
cat "$DIR/loadgen.txt"
wait "$RELOADER_PID" 2>/dev/null || true

grep -q "SIGHUP reload failed" "$DIR/serve.log" \
    || fail "corrupted snapshot reload was not rejected"
grep -q "SIGHUP reload ok" "$DIR/serve.log" \
    || fail "restored snapshot reload did not succeed"

# The survivor must still answer correctly: probe (retrying through any
# residual injected faults) and compare byte-for-byte with the control.
"$DIR/adwars-loadgen" -target "http://$ADDR" -probe > "$DIR/chaos.txt" \
    || fail "post-chaos probe got no answers"
diff "$DIR/control.txt" "$DIR/chaos.txt" \
    || fail "post-chaos answers differ from fault-free control"

stop_server

grep '^BenchmarkChaosLoadgen' "$DIR/loadgen.txt" > "$DIR/bench.txt" \
    || fail "loadgen emitted no benchmark line"
"$DIR/benchjson" -out "$BENCH_OUT" "$DIR/bench.txt"

echo "chaos-smoke: OK (ledger balanced, corrupt reload rejected, answers identical to control, clean drain)"
