package adwars

// One benchmark per table and figure of the paper's evaluation (see the
// per-experiment index in DESIGN.md). Each benchmark regenerates its
// artifact end to end on a 1/20-scale world; cmd/adwars-report produces
// the full-scale rows recorded in EXPERIMENTS.md.

import (
	"context"
	"sync"
	"testing"

	"adwars/internal/antiadblock"
	"adwars/internal/experiments"
	"adwars/internal/signatures"
	"adwars/internal/simworld"
)

var (
	benchOnce  sync.Once
	benchLab   *experiments.Lab
	benchRetro *experiments.RetroResult
	benchErr   error
)

// benchSetup builds the shared scaled lab and its retrospective run once.
func benchSetup(b *testing.B) (*experiments.Lab, *experiments.RetroResult) {
	b.Helper()
	benchOnce.Do(func() {
		benchLab = experiments.NewLab(simworld.Scaled(42, 20))
		benchRetro, benchErr = benchLab.RunRetrospective(context.Background(),
			experiments.RetroConfig{Months: benchLab.RetroMonths(2)})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchLab, benchRetro
}

var (
	replayOnce    sync.Once
	benchReplay   *experiments.ReplayRun
	benchReplayEr error
)

// replaySetup crawls the benchmark months once; the replay benchmarks then
// time only the matching half of the pipeline (ReplayRun.Run) under
// different shard counts and match strategies.
func replaySetup(b *testing.B) *experiments.ReplayRun {
	b.Helper()
	lab, _ := benchSetup(b)
	replayOnce.Do(func() {
		benchReplay, benchReplayEr = lab.PrepareReplay(context.Background(),
			experiments.RetroConfig{Months: lab.RetroMonths(2)})
	})
	if benchReplayEr != nil {
		b.Fatal(benchReplayEr)
	}
	return benchReplay
}

// BenchmarkReplayIndexed times the 30-month replay on one shard with the
// keyword-indexed match path — the per-month unit of Figure 5/6 work.
func BenchmarkReplayIndexed(b *testing.B) {
	run := replaySetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := run.Run(1, false)
		if len(r.Months) == 0 {
			b.Fatal("empty replay")
		}
	}
}

// BenchmarkReplayLinearScan is the same replay with the index bypassed —
// the baseline BENCH_replay.json's speedup ratio is computed against.
func BenchmarkReplayLinearScan(b *testing.B) {
	run := replaySetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := run.Run(1, true)
		if len(r.Months) == 0 {
			b.Fatal("empty replay")
		}
	}
}

// BenchmarkReplaySharded times the indexed replay fanned out over 8
// shards (results stay byte-identical; see TestReplayShardDeterminism).
func BenchmarkReplaySharded(b *testing.B) {
	run := replaySetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := run.Run(8, false)
		if len(r.Months) == 0 {
			b.Fatal("empty replay")
		}
	}
}

// BenchmarkFig1aAAKEvolution regenerates Figure 1(a): the Anti-Adblock
// Killer List's rule-class composition over time.
func BenchmarkFig1aAAKEvolution(b *testing.B) {
	lab, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig1(lab.Lists.AAK, lab.World.Cfg.End)
		if len(r.Points) == 0 {
			b.Fatal("empty series")
		}
	}
}

// BenchmarkFig1bAWRLEvolution regenerates Figure 1(b) for the Adblock
// Warning Removal List.
func BenchmarkFig1bAWRLEvolution(b *testing.B) {
	lab, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig1(lab.Lists.AWRL, lab.World.Cfg.End)
		if len(r.Points) == 0 {
			b.Fatal("empty series")
		}
	}
}

// BenchmarkFig1cEasyListEvolution regenerates Figure 1(c) for the
// anti-adblock sections of EasyList.
func BenchmarkFig1cEasyListEvolution(b *testing.B) {
	lab, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig1(lab.Lists.EasyListAA, lab.World.Cfg.End)
		if len(r.Points) == 0 {
			b.Fatal("empty series")
		}
	}
}

// BenchmarkTable1RankDistribution regenerates Table 1: listed domains per
// Alexa rank bucket.
func BenchmarkTable1RankDistribution(b *testing.B) {
	lab, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := lab.Table1()
		if len(t.Counts) != 2 {
			b.Fatal("missing lists")
		}
	}
}

// BenchmarkFig2Categories regenerates Figure 2: listed-domain categories.
func BenchmarkFig2Categories(b *testing.B) {
	lab, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := lab.Fig2()
		if len(f.Percent) != 2 {
			b.Fatal("missing lists")
		}
	}
}

// BenchmarkExceptionRatios regenerates the §3.3 comparison: exception to
// non-exception domain ratios, overlap, and churn.
func BenchmarkExceptionRatios(b *testing.B) {
	lab, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := lab.Overlap()
		if o.Overlap == 0 {
			b.Fatal("no overlap")
		}
	}
}

// BenchmarkFig3AdditionLag regenerates Figure 3: the cross-list rule
// addition lag CDF over shared domains.
func BenchmarkFig3AdditionLag(b *testing.B) {
	lab, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := lab.Fig3()
		if f.CELFirst == 0 {
			b.Fatal("no shared-domain lags")
		}
	}
}

// BenchmarkFig5MissingSnapshots regenerates Figure 5 by crawling archived
// months and tallying not-archived / outdated / partial snapshots.
func BenchmarkFig5MissingSnapshots(b *testing.B) {
	lab, _ := benchSetup(b)
	months := lab.RetroMonths(12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := lab.RunRetrospective(context.Background(),
			experiments.RetroConfig{Months: months})
		if err != nil {
			b.Fatal(err)
		}
		if r.RenderFig5() == "" {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFig6aHTTPTriggers regenerates Figure 6(a): sites triggering
// HTTP rules per month under the list version in force.
func BenchmarkFig6aHTTPTriggers(b *testing.B) {
	lab, _ := benchSetup(b)
	months := lab.RetroMonths(12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := lab.RunRetrospective(context.Background(),
			experiments.RetroConfig{Months: months})
		if err != nil {
			b.Fatal(err)
		}
		last := r.Months[len(r.Months)-1]
		if last.HTTPTriggered["Anti-Adblock Killer"] == 0 {
			b.Fatal("AAK triggered nothing")
		}
	}
}

// BenchmarkFig6bHTMLTriggers regenerates Figure 6(b): sites triggering
// HTML element rules per month (near zero, as in the paper).
func BenchmarkFig6bHTMLTriggers(b *testing.B) {
	_, retro := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		for _, m := range retro.Months {
			for _, n := range experiments.ListNames {
				total += m.HTMLTriggered[n]
			}
		}
		_ = total
	}
}

// BenchmarkFig7DetectionDelay regenerates Figure 7: the CDF of days from
// deployment to first matching rule, per list.
func BenchmarkFig7DetectionDelay(b *testing.B) {
	lab, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := lab.Fig7(0)
		if len(f.Delays) != 2 {
			b.Fatal("missing lists")
		}
	}
}

// BenchmarkLiveCoverage regenerates the §4.3 live-web crawl headline
// numbers.
func BenchmarkLiveCoverage(b *testing.B) {
	lab, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := lab.RunLive(context.Background(), experiments.LiveConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if r.HTTPTriggered["Anti-Adblock Killer"] == 0 {
			b.Fatal("no live coverage")
		}
	}
}

// BenchmarkTable2FeatureExtraction regenerates Table 2: context:text
// features from a BlockAdBlock-style script.
func BenchmarkTable2FeatureExtraction(b *testing.B) {
	script := antiadblock.ReferenceBlockAdBlock
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(script)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no features")
		}
	}
}

// BenchmarkTable3Classifier regenerates Table 3: the cross-validated
// accuracy sweep over feature sets, feature counts, and classifiers.
func BenchmarkTable3Classifier(b *testing.B) {
	_, retro := benchSetup(b)
	corpus := &experiments.Corpus{Positives: retro.CorpusPos, Negatives: retro.CorpusNeg}
	cfg := experiments.Table3Config{TopK: []int{100, 1000}, Folds: 5, Seed: 42, MaxSamples: 330}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(corpus, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkLiveScriptDetection regenerates the §5 out-of-sample test:
// classify anti-adblock scripts from the live crawl with the trained
// model (the paper's 92.5% TP rate).
func BenchmarkLiveScriptDetection(b *testing.B) {
	lab, retro := benchSetup(b)
	corpus := &experiments.Corpus{Positives: retro.CorpusPos, Negatives: retro.CorpusNeg}
	live, err := lab.RunLive(context.Background(), experiments.LiveConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.LiveModelTest(corpus, live.Scripts, 5000, 42, experiments.PipelineConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Scripts == 0 {
			b.Fatal("no live scripts")
		}
	}
}

// BenchmarkSignatureBaseline runs the signature-based detection baseline
// (Storey et al.) over the corpus, the contrast §5 draws with the ML
// approach.
func BenchmarkSignatureBaseline(b *testing.B) {
	_, retro := benchSetup(b)
	det := signatures.New(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp, fn, _, _ := det.Evaluate(retro.CorpusPos, retro.CorpusNeg)
		if tp+fn == 0 {
			b.Fatal("empty corpus")
		}
	}
}

// BenchmarkCircumvention simulates adblock users visiting every deployed
// site under each anti-adblock list — the end-to-end effectiveness the
// lists exist for (§3's mechanics made executable).
func BenchmarkCircumvention(b *testing.B) {
	lab, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := lab.Circumvention(0, lab.World.Cfg.End)
		if res.Deployed == 0 {
			b.Fatal("no deployed sites")
		}
	}
}
