// Command adwars-detect runs the §5 machine-learning pipeline: collect the
// script corpus from the retrospective crawl, print Table 2's example
// features, sweep the Table 3 configurations with cross-validation, and
// run the out-of-sample live-script test.
//
// Usage:
//
//	adwars-detect [-scale N] [-seed S] [-folds K] [-maxsamples M] [-topk list]
//	              [-workers W] [-kernel-cache E] [-sequential]
//
// -workers sets the fan-out width for extraction, feature selection, and
// cross-validation (0 = GOMAXPROCS); -kernel-cache bounds the SMO Gram
// cache in entries (0 = default budget, -1 = uncached); -sequential forces
// the single-worker uncached reference pipeline. All three change only
// performance: results are bit-identical across settings.
//
// -save-model PATH freezes the trained headline model (AdaBoost+SVM,
// keyword features, top-1K) as a versioned snapshot for adwars-serve;
// -model-only skips the table sweeps and live test, training and saving
// just that model.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"adwars/internal/antiadblock"
	"adwars/internal/experiments"
	"adwars/internal/ml"
	"adwars/internal/simworld"
)

func main() {
	scale := flag.Int("scale", 20, "world shrink factor (1 = paper scale)")
	seed := flag.Int64("seed", 42, "deterministic seed")
	folds := flag.Int("folds", 10, "cross-validation folds")
	maxSamples := flag.Int("maxsamples", 1100, "corpus cap (0 = unlimited)")
	topkFlag := flag.String("topk", "100,1000", "comma-separated feature budgets")
	workers := flag.Int("workers", 0, "pipeline fan-out width (0 = GOMAXPROCS)")
	kernelCache := flag.Int("kernel-cache", 0, "SMO Gram-cache entries (0 = default, -1 = uncached)")
	sequential := flag.Bool("sequential", false, "single-worker uncached reference pipeline")
	saveModel := flag.String("save-model", "", "write the trained headline model snapshot to this path")
	modelOnly := flag.Bool("model-only", false, "skip tables and live test; just train and save the headline model")
	flag.Parse()

	if *modelOnly && *saveModel == "" {
		log.Fatal("-model-only requires -save-model")
	}

	pipe := experiments.PipelineConfig{
		Workers:     *workers,
		KernelCache: *kernelCache,
		Sequential:  *sequential,
	}

	var topk []int
	for _, s := range strings.Split(*topkFlag, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			log.Fatalf("bad -topk value %q: %v", s, err)
		}
		topk = append(topk, k)
	}

	cfg := simworld.DefaultConfig(*seed)
	if *scale > 1 {
		cfg = simworld.Scaled(*seed, *scale)
	}
	fmt.Fprintf(os.Stderr, "building world (universe %d, seed %d)...\n", cfg.UniverseSize, *seed)
	lab := experiments.NewLab(cfg)

	if !*modelOnly {
		// Table 2 on a representative BlockAdBlock-style script.
		rows2, err := experiments.Table2(antiadblock.ReferenceBlockAdBlock)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.RenderTable2(rows2))
	}

	fmt.Fprintln(os.Stderr, "collecting corpus from retrospective crawl...")
	retro, err := lab.RunRetrospective(context.Background(), experiments.RetroConfig{
		Months: lab.RetroMonths(2),
	})
	if err != nil {
		log.Fatal(err)
	}
	corpus := &experiments.Corpus{Positives: retro.CorpusPos, Negatives: retro.CorpusNeg}
	fmt.Printf("corpus: %d positives, %d negatives (%.1f:1 imbalance)\n\n",
		len(corpus.Positives), len(corpus.Negatives), corpus.Imbalance())

	if *saveModel != "" {
		fmt.Fprintln(os.Stderr, "training headline model for snapshot...")
		snap, err := experiments.TrainHeadlineModel(corpus, *seed, pipe)
		if err != nil {
			log.Fatal(err)
		}
		if err := ml.SaveModelSnapshot(*saveModel, snap); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote model snapshot %s (%d rounds, %d features)\n",
			*saveModel, snap.Model.Rounds(), len(snap.Vocab))
	}
	if *modelOnly {
		return
	}

	fmt.Fprintln(os.Stderr, "running Table 3 sweep...")
	rows3, err := experiments.Table3(corpus, experiments.Table3Config{
		TopK: topk, Folds: *folds, Seed: *seed, MaxSamples: *maxSamples,
		Pipeline: pipe,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(experiments.RenderTable3(rows3))
	best := experiments.BestRow(rows3)
	fmt.Printf("best: %s, %s features, top-%d → TP %.1f%%, FP %.1f%%\n\n",
		best.Classifier, best.FeatureSet, best.NumFeatures,
		100*best.TPRate, 100*best.FPRate)

	fmt.Fprintln(os.Stderr, "running signature-baseline comparison...")
	base, err := experiments.CompareBaselines(corpus, *seed, pipe)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(base.Render())

	fmt.Fprintln(os.Stderr, "running live out-of-sample test...")
	live, err := lab.RunLive(context.Background(), experiments.LiveConfig{})
	if err != nil {
		log.Fatal(err)
	}
	// Ranks are paper-scale (effective), so the training cut is always
	// the top-5K regardless of world scale.
	res, err := experiments.LiveModelTest(corpus, live.Scripts, 5000, *seed, pipe)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Render())
}
