// Command adwars-loadgen drives an adwars-serve instance with a mixed
// match/classify workload and reports throughput, latency quantiles, and
// shed totals. It is the load half of the serving benchmark, of
// `make serve-smoke`, and (with -chaos) of `make chaos-smoke`.
//
// Usage:
//
//	adwars-loadgen -target http://127.0.0.1:8080 [-rate N] [-concurrency C]
//	               [-duration D] [-jitter F] [-classify-frac F]
//	               [-lists snapshot.json] [-seed S] [-check] [-usage-check]
//	               [-max-backoff D] [-chaos] [-fault-frac F] [-bench]
//	adwars-loadgen -target URL -probe
//
// -rate is the aggregate request rate across all workers (0 = unthrottled);
// -jitter perturbs each worker's inter-request gap by ±F to avoid lockstep
// waves. With -lists the match URLs replay domains harvested from a lists
// snapshot (the same corpus the server matches against), so a realistic
// fraction of requests hit blocking rules; otherwise a synthetic domain
// pool is used. Classify bodies alternate between a real BlockAdBlock-style
// detector and generated benign scripts.
//
// On a 429 the worker honors the server's Retry-After header, sleeping
// a jittered fraction (50–100%) of min(Retry-After, -max-backoff) before
// its next request, so workers shed together do not re-arrive together;
// the summary reports how often and how long workers backed off.
//
// Against a brownout-governed server every response carries its
// degradation level in X-Adwars-Degrade; the summary and the -check
// ledger break out response counts per observed level. -degrade-url
// takes comma-separated replica base URLs whose /admin/degrade to read:
// with -degrade-check the run waits (up to 15s) for each replica to
// recover to L0 and then asserts the ladder climbed to at least L2 and
// stepped back level-by-level without flapping (transitions == 2×peak).
// -bench-brownout emits a `BenchmarkBrownoutLoadgen` line carrying the
// hot-only response fraction, the gateway's retry-budget exhaustions,
// and the worst replica transition p99 for BENCH_chaos.json.
//
// -chaos turns a -fault-frac fraction of requests hostile: malformed JSON,
// oversized bodies, slow-trickle uploads, and mid-body aborts, mixed with
// normal traffic. 5xx responses are parsed: a structured internal_panic
// envelope (the server's recovered-panic signature) is counted separately
// from genuine failures. -check in chaos mode gates on the chaos ledger:
// some 2xx, zero unexplained 5xx, and sent == 2xx + 4xx + 429 + panic-5xx
// + aborted — every request accounted for, nothing silently dropped.
//
// -bench appends a `BenchmarkChaosLoadgen` line (go-bench format) carrying
// shed-rate and recovered-panics custom units, so `benchjson` can fold the
// chaos run into BENCH_chaos.json. recovered-panics is read back from the
// server's /debug/vars (the control plane is chaos-exempt).
//
// Pointed at an adwars-gateway, the summary additionally attributes
// answers per replica (X-Adwars-Replica) and per HTTP status, and
// -bench-fleet emits a `BenchmarkFleetLoadgen` line carrying the
// gateway's failover/retry/hedge counters for BENCH_fleet.json. The
// -check accounting gate is unchanged behind a gateway: retries and
// hedges happen inside it, so every client-visible request still ends as
// exactly one 2xx or 429.
//
// -probe sends one canonical /v1/match and one canonical /v1/classify
// request, retrying each until it gets a 2xx (bounded attempts), and
// prints the response bodies. Two probes against equivalent servers —
// e.g. a fault-free control and a post-chaos survivor — must be
// byte-identical; chaos_smoke.sh diffs them.
//
// -check turns the run into a pass/fail gate: exit non-zero unless at
// least one request succeeded, there were no unexplained 5xx or transport
// errors, and every request was accounted for (2xx/429 in normal mode; the
// chaos ledger above with -chaos).
//
// -usage-check reconciles the server's per-rule usage telemetry against
// this run's own ledger: every 2xx /v1/match response is parsed and its
// per-list verdicts with decision != "no-match" counted (each is exactly
// one RecordUsage tick server-side), then /admin/usage is read before and
// after the run and the total-hit delta must equal the ledger count. It
// requires a quiet server (no other traffic between the two reads) and is
// incompatible with -chaos, whose trickle requests land as uncounted
// late 2xx.
//
// -analytics-check reconciles the server's decision analytics against
// this run's own verdict ledger: every 2xx /v1/match response's merged
// decision and every 2xx /v1/classify response's verdict is counted
// client-side, then the /admin/analytics cumulative totals are read
// before and after the run — the per-"kind/verdict" deltas must equal
// the ledger exactly (the server must be running -analytics at sampling
// 1.0), with zero ring drops and zero sampled-out decisions. The check
// polls briefly after the run so the consumer can finish draining the
// rings. Like -usage-check it needs a quiet server and is incompatible
// with -chaos.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"adwars/internal/abp"
	"adwars/internal/antiadblock"
)

type counters struct {
	sent         int64
	ok2xx        int64
	shed429      int64
	other4xx     int64
	fail5xx      int64 // unexplained 5xx (not a recovered-panic envelope)
	panic5xx     int64 // 5xx carrying the structured internal_panic envelope
	aborted      int64 // transport-level failures: injected closes, our own mid-body aborts
	backoffs     int64
	backoffTotal time.Duration
	matchHits    int64 // list verdicts != "no-match" parsed from 2xx /v1/match bodies (-usage-check)
	// verdicts is the -analytics-check ledger: per-"kind/verdict" counts
	// parsed from 2xx bodies, in the same key space as the server's
	// /admin/analytics totals.
	verdicts  map[string]int64
	latencies []time.Duration
	// perReplica attributes answered requests by the X-Adwars-Replica
	// header, and perStatus by HTTP status — behind a gateway these show
	// the balance across the fleet and exactly what every request became.
	perReplica map[string]int64
	perStatus  map[int]int64
	// perDegrade attributes answered requests by the X-Adwars-Degrade
	// header: how much of the run was served at each brownout level.
	perDegrade map[string]int64
}

func (c *counters) observe(status int, replica, degrade string) {
	if c.perStatus == nil {
		c.perStatus = make(map[int]int64)
	}
	c.perStatus[status]++
	if replica != "" {
		if c.perReplica == nil {
			c.perReplica = make(map[string]int64)
		}
		c.perReplica[replica]++
	}
	if degrade != "" {
		if c.perDegrade == nil {
			c.perDegrade = make(map[string]int64)
		}
		c.perDegrade[degrade]++
	}
}

func (c *counters) add(o *counters) {
	c.sent += o.sent
	c.ok2xx += o.ok2xx
	c.shed429 += o.shed429
	c.other4xx += o.other4xx
	c.fail5xx += o.fail5xx
	c.panic5xx += o.panic5xx
	c.aborted += o.aborted
	c.backoffs += o.backoffs
	c.backoffTotal += o.backoffTotal
	c.matchHits += o.matchHits
	for k, v := range o.verdicts {
		if c.verdicts == nil {
			c.verdicts = make(map[string]int64)
		}
		c.verdicts[k] += v
	}
	c.latencies = append(c.latencies, o.latencies...)
	for k, v := range o.perReplica {
		if c.perReplica == nil {
			c.perReplica = make(map[string]int64)
		}
		c.perReplica[k] += v
	}
	for k, v := range o.perStatus {
		if c.perStatus == nil {
			c.perStatus = make(map[int]int64)
		}
		c.perStatus[k] += v
	}
	for k, v := range o.perDegrade {
		if c.perDegrade == nil {
			c.perDegrade = make(map[string]int64)
		}
		c.perDegrade[k] += v
	}
}

// hotOnlyFraction is the share of answered requests served at L2 or
// above — levels where match answers come from the hot tier only.
func (c *counters) hotOnlyFraction() float64 {
	var all, hot int64
	for lvl, n := range c.perDegrade {
		all += n
		if lvl >= "L2" {
			hot += n
		}
	}
	if all == 0 {
		return 0
	}
	return float64(hot) / float64(all)
}

// faultKind enumerates the hostile request shapes of chaos mode.
type faultKind int

const (
	faultNone faultKind = iota
	faultMalformed
	faultOversized
	faultTrickle
	faultAbort
)

func main() {
	target := flag.String("target", "http://127.0.0.1:8080", "base URL of the adwars-serve instance")
	rate := flag.Float64("rate", 0, "aggregate requests/sec across workers (0 = unthrottled)")
	concurrency := flag.Int("concurrency", 8, "concurrent workers")
	duration := flag.Duration("duration", 5*time.Second, "how long to fire")
	jitter := flag.Float64("jitter", 0.2, "inter-request gap jitter fraction (0..1)")
	classifyFrac := flag.Float64("classify-frac", 0.1, "fraction of requests that POST /v1/classify")
	listsPath := flag.String("lists", "", "lists snapshot to harvest match URLs from")
	seed := flag.Int64("seed", 1, "workload seed")
	check := flag.Bool("check", false, "exit non-zero unless the run satisfies the accounting gate")
	usageCheck := flag.Bool("usage-check", false, "reconcile /admin/usage hit totals against this run's parsed match verdicts")
	analyticsCheck := flag.Bool("analytics-check", false, "reconcile /admin/analytics decision totals against this run's parsed verdicts (server must run -analytics at sampling 1.0)")
	maxBackoff := flag.Duration("max-backoff", 100*time.Millisecond, "cap on honoring a 429 Retry-After")
	chaos := flag.Bool("chaos", false, "mix hostile requests (malformed/oversized/trickle/abort) into the workload")
	faultFrac := flag.Float64("fault-frac", 0.25, "with -chaos, fraction of requests made hostile")
	bench := flag.Bool("bench", false, "emit a BenchmarkChaosLoadgen line for benchjson")
	benchFleet := flag.Bool("bench-fleet", false, "emit a BenchmarkFleetLoadgen line (target must be an adwars-gateway)")
	benchBrownout := flag.Bool("bench-brownout", false, "emit a BenchmarkBrownoutLoadgen line (hot-only fraction, retry-budget exhaustions, transition p99)")
	degradeURLs := flag.String("degrade-url", "", "comma-separated replica base URLs whose /admin/degrade to read for -degrade-check and -bench-brownout")
	degradeCheck := flag.Bool("degrade-check", false, "after the run, wait for every -degrade-url replica to recover to L0 and assert the ladder climbed >= L2 and did not flap")
	probe := flag.Bool("probe", false, "send canonical requests, retry to 2xx, print bodies, exit")
	probeAttempts := flag.Int("probe-attempts", 50, "max retries per canonical probe request")
	flag.Parse()

	client := &http.Client{
		Timeout: 10 * time.Second,
		Transport: &http.Transport{
			MaxIdleConnsPerHost: *concurrency,
		},
	}

	if *probe {
		os.Exit(runProbe(client, *target, *probeAttempts))
	}
	if *usageCheck && *chaos {
		fmt.Fprintln(os.Stderr, "loadgen: -usage-check is incompatible with -chaos")
		os.Exit(2)
	}
	if *analyticsCheck && *chaos {
		fmt.Fprintln(os.Stderr, "loadgen: -analytics-check is incompatible with -chaos")
		os.Exit(2)
	}
	var usageBefore uint64
	if *usageCheck {
		v, err := fetchUsageTotal(client, *target)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: usage-check baseline: %v\n", err)
			os.Exit(2)
		}
		usageBefore = v
	}
	var anlBefore *analyticsTotals
	if *analyticsCheck {
		at, err := fetchAnalyticsTotals(client, *target)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: analytics-check baseline: %v\n", err)
			os.Exit(2)
		}
		if at.Counters.SampleRate < 1 {
			fmt.Fprintf(os.Stderr, "loadgen: analytics-check needs sampling 1.0, server is at %.3f\n", at.Counters.SampleRate)
			os.Exit(2)
		}
		anlBefore = at
	}

	domains := syntheticDomains(*seed)
	if *listsPath != "" {
		snap, err := abp.LoadListsSnapshot(*listsPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: lists snapshot: %v\n", err)
			os.Exit(2)
		}
		var harvested []string
		for _, l := range snap.Lists {
			harvested = append(harvested, l.Domains()...)
		}
		if len(harvested) > 0 {
			// Keep some synthetic (non-listed) domains in the pool so both
			// the block and no-match paths are exercised.
			domains = append(harvested, domains[:len(domains)/4]...)
		}
	}
	scripts := workloadScripts(*seed)
	// One shared oversized body (default server cap is 1 MiB; this clears
	// it). Workers only ever read it, so sharing is safe.
	oversized := bytes.Repeat([]byte(`{"url":"x"} `), (1<<20)/12+2)

	var interval time.Duration
	if *rate > 0 {
		interval = time.Duration(float64(*concurrency) / *rate * float64(time.Second))
	}

	deadline := time.Now().Add(*duration)
	start := time.Now()
	results := make([]counters, *concurrency)
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)*7919))
			c := &results[w]
			for time.Now().Before(deadline) {
				kind := faultNone
				if *chaos && rng.Float64() < *faultFrac {
					kind = faultKind(1 + rng.Intn(4))
				}
				c.sent++
				t0 := time.Now()
				resp, rk, err := fire(client, *target, kind, rng, domains, scripts, *classifyFrac, oversized)
				if err != nil {
					// Transport-level death: an injected server-side close or
					// our own mid-body abort. Either way the request is
					// accounted for, not dropped.
					c.aborted++
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				c.latencies = append(c.latencies, time.Since(t0))
				c.observe(resp.StatusCode, resp.Header.Get("X-Adwars-Replica"),
					resp.Header.Get("X-Adwars-Degrade"))
				switch {
				case resp.StatusCode >= 200 && resp.StatusCode < 300:
					c.ok2xx++
					if *usageCheck && rk == reqMatch {
						c.matchHits += countMatchHits(body)
					}
					if *analyticsCheck {
						c.ledgerVerdict(rk, body)
					}
				case resp.StatusCode == http.StatusTooManyRequests:
					c.shed429++
					if d := retryAfter(resp, *maxBackoff); d > 0 {
						// Jitter the honored backoff into [d/2, d]: workers shed
						// in the same overload wave would otherwise all sleep the
						// same capped duration and re-arrive as a synchronized
						// herd that re-triggers the shed that sent them away.
						d = d/2 + time.Duration(rng.Int63n(int64(d/2)+1))
						if remaining := time.Until(deadline); d > remaining {
							d = remaining
						}
						if d > 0 {
							c.backoffs++
							c.backoffTotal += d
							time.Sleep(d)
						}
					}
				case resp.StatusCode >= 500:
					if isPanicEnvelope(body) {
						c.panic5xx++
					} else {
						c.fail5xx++
					}
				default:
					c.other4xx++
				}
				if interval > 0 {
					gap := float64(interval) * (1 + *jitter*(2*rng.Float64()-1))
					time.Sleep(time.Duration(gap))
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var total counters
	for i := range results {
		total.add(&results[i])
	}
	sort.Slice(total.latencies, func(i, j int) bool { return total.latencies[i] < total.latencies[j] })

	mode := "loadgen"
	if *chaos {
		mode = "loadgen[chaos]"
	}
	fmt.Printf("%s: %d requests in %v (%.0f req/s, %d workers)\n",
		mode, total.sent, elapsed.Round(time.Millisecond), float64(total.sent)/elapsed.Seconds(), *concurrency)
	fmt.Printf("  2xx %d   429 shed %d   other 4xx %d   5xx %d   panic-5xx %d   aborted %d\n",
		total.ok2xx, total.shed429, total.other4xx, total.fail5xx, total.panic5xx, total.aborted)
	fmt.Printf("  backoff: %d sleeps totaling %v (Retry-After honored, capped at %v)\n",
		total.backoffs, total.backoffTotal.Round(time.Millisecond), *maxBackoff)
	if n := len(total.latencies); n > 0 {
		fmt.Printf("  latency p50 %v   p90 %v   p99 %v   max %v\n",
			total.latencies[n/2].Round(time.Microsecond),
			total.latencies[n*90/100].Round(time.Microsecond),
			total.latencies[n*99/100].Round(time.Microsecond),
			total.latencies[n-1].Round(time.Microsecond))
	}
	printBreakdowns(&total)

	if *bench {
		emitBenchLine(client, *target, &total, elapsed)
	}
	if *benchFleet {
		emitFleetBenchLine(client, *target, &total, elapsed)
	}
	if *benchBrownout {
		emitBrownoutBenchLine(client, *target, splitURLs(*degradeURLs), &total, elapsed)
	}

	if *check {
		if !runChecks(&total, *chaos) {
			os.Exit(1)
		}
	}
	if *degradeCheck {
		if !runDegradeCheck(client, splitURLs(*degradeURLs)) {
			os.Exit(1)
		}
	}
	if *usageCheck {
		if !runUsageCheck(client, *target, usageBefore, total.matchHits) {
			os.Exit(1)
		}
	}
	if *analyticsCheck {
		if !runAnalyticsCheck(client, *target, anlBefore, total.verdicts) {
			os.Exit(1)
		}
	}
}

// reqKind says which verdict-bearing endpoint a normal request hit, so
// the usage-check and analytics-check ledgers know how to parse its body.
// Fault requests are reqOther: their responses carry no verdicts.
type reqKind int

const (
	reqOther reqKind = iota
	reqMatch
	reqClassify
)

// fire issues one request of the given kind and returns the raw response
// plus which verdict-bearing endpoint (if any) it was.
func fire(client *http.Client, target string, kind faultKind, rng *rand.Rand,
	domains, scripts []string, classifyFrac float64, oversized []byte) (*http.Response, reqKind, error) {
	switch kind {
	case faultMalformed:
		// Valid HTTP, broken payload: truncated JSON to /v1/match or line
		// noise to /v1/classify — must come back 4xx, never 5xx.
		if rng.Intn(2) == 0 {
			resp, err := client.Post(target+"/v1/match", "application/json",
				bytes.NewReader([]byte(`{"url":"http://ads.exam`)))
			return resp, reqOther, err
		}
		resp, err := client.Post(target+"/v1/classify", "application/javascript",
			bytes.NewReader([]byte("\x00\x01function{{{")))
		return resp, reqOther, err
	case faultOversized:
		// Blows past the server's body cap → 413.
		resp, err := client.Post(target+"/v1/match", "application/json", bytes.NewReader(oversized))
		return resp, reqOther, err
	case faultTrickle:
		// A sound body delivered a few bytes at a time — slowloris-shaped.
		// The server should still answer it normally, just late.
		body := []byte(`{"url":"http://ads.example.com/banner.js","type":"script"}`)
		req, err := http.NewRequest(http.MethodPost, target+"/v1/match",
			&trickleReader{data: body, chunk: 7, gap: 2 * time.Millisecond})
		if err != nil {
			return nil, reqOther, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.ContentLength = int64(len(body))
		resp, err := client.Do(req)
		return resp, reqOther, err
	case faultAbort:
		// The body dies mid-stream client-side; the transport surfaces an
		// error locally and the server sees an unexpected EOF.
		body := []byte(`{"url":"http://ads.example.com/banner.js","type":"script"}`)
		req, err := http.NewRequest(http.MethodPost, target+"/v1/match",
			&abortReader{data: body[:10]})
		if err != nil {
			return nil, reqOther, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.ContentLength = int64(len(body))
		resp, err := client.Do(req)
		return resp, reqOther, err
	}
	// Normal traffic.
	if rng.Float64() < classifyFrac {
		resp, err := client.Post(target+"/v1/classify", "application/javascript",
			bytes.NewReader([]byte(scripts[rng.Intn(len(scripts))])))
		return resp, reqClassify, err
	}
	d := domains[rng.Intn(len(domains))]
	q := map[string]string{
		"url":         fmt.Sprintf("http://%s/assets/%d/unit.js", d, rng.Intn(1000)),
		"type":        "script",
		"page_domain": "publisher.example",
	}
	body, _ := json.Marshal(q)
	resp, err := client.Post(target+"/v1/match", "application/json", bytes.NewReader(body))
	return resp, reqMatch, err
}

// countMatchHits parses one 2xx /v1/match body and counts the per-list
// verdicts the server recorded usage for: every entry whose decision is
// not "no-match" is exactly one RecordUsage tick.
func countMatchHits(body []byte) int64 {
	var res struct {
		Lists []struct {
			Decision string `json:"decision"`
		} `json:"lists"`
	}
	if json.Unmarshal(body, &res) != nil {
		return 0
	}
	var n int64
	for _, lm := range res.Lists {
		if lm.Decision != "no-match" {
			n++
		}
	}
	return n
}

// fetchUsageTotal reads total_hits from /admin/usage (top disabled — the
// reconciliation only needs the aggregate).
func fetchUsageTotal(client *http.Client, target string) (uint64, error) {
	resp, err := client.Get(target + "/admin/usage?top=0")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("GET /admin/usage: status %d", resp.StatusCode)
	}
	var dump struct {
		TotalHits uint64 `json:"total_hits"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		return 0, err
	}
	return dump.TotalHits, nil
}

// runUsageCheck re-reads /admin/usage and demands that the server-side
// hit delta equals the run's own parsed-verdict ledger.
func runUsageCheck(client *http.Client, target string, before uint64, matchHits int64) bool {
	after, err := fetchUsageTotal(client, target)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: USAGE-CHECK FAILED: %v\n", err)
		return false
	}
	delta := int64(after - before)
	if delta != matchHits {
		fmt.Fprintf(os.Stderr, "loadgen: USAGE-CHECK FAILED: server recorded %d hits (total %d→%d) but ledger parsed %d match verdicts\n",
			delta, before, after, matchHits)
		return false
	}
	fmt.Printf("loadgen: USAGE-CHECK OK (server hit delta %d == %d parsed match verdicts)\n", delta, matchHits)
	return true
}

// ledgerVerdict parses one 2xx body into the -analytics-check ledger,
// keyed exactly like the server's /admin/analytics totals: a match
// response contributes "match/"+decision (the merged top-level verdict),
// a classify response contributes classify/anti-adblock or
// classify/benign.
func (c *counters) ledgerVerdict(rk reqKind, body []byte) {
	var key string
	switch rk {
	case reqMatch:
		var res struct {
			Decision string `json:"decision"`
		}
		if json.Unmarshal(body, &res) != nil || res.Decision == "" {
			return
		}
		key = "match/" + res.Decision
	case reqClassify:
		var res struct {
			AntiAdblock bool `json:"anti_adblock"`
		}
		if json.Unmarshal(body, &res) != nil {
			return
		}
		if res.AntiAdblock {
			key = "classify/anti-adblock"
		} else {
			key = "classify/benign"
		}
	default:
		return
	}
	if c.verdicts == nil {
		c.verdicts = make(map[string]int64)
	}
	c.verdicts[key]++
}

// analyticsTotals is the slice of the /admin/analytics snapshot the
// reconciliation reads: cumulative per-"kind/verdict" totals plus the
// accounting counters that prove nothing was dropped or sampled away.
type analyticsTotals struct {
	Enabled  bool              `json:"enabled"`
	Totals   map[string]uint64 `json:"totals"`
	Counters struct {
		Recorded      uint64  `json:"recorded"`
		Dropped       uint64  `json:"dropped"`
		SampledOut    uint64  `json:"sampled_out"`
		RingOccupancy int     `json:"ring_occupancy"`
		SampleRate    float64 `json:"sample_rate"`
	} `json:"counters"`
}

func fetchAnalyticsTotals(client *http.Client, target string) (*analyticsTotals, error) {
	resp, err := client.Get(target + "/admin/analytics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /admin/analytics: status %d (server not running -analytics?)", resp.StatusCode)
	}
	var at analyticsTotals
	if err := json.NewDecoder(resp.Body).Decode(&at); err != nil {
		return nil, err
	}
	if !at.Enabled {
		return nil, fmt.Errorf("analytics disabled on server")
	}
	return &at, nil
}

// runAnalyticsCheck re-reads /admin/analytics — polling briefly so the
// consumer can finish draining the rings — and demands that every
// per-"kind/verdict" total delta equals this run's ledger exactly, with
// zero new drops and zero sampled-out decisions.
func runAnalyticsCheck(client *http.Client, target string, before *analyticsTotals, ledger map[string]int64) bool {
	fail := func(format string, args ...interface{}) bool {
		fmt.Fprintf(os.Stderr, "loadgen: ANALYTICS-CHECK FAILED: "+format+"\n", args...)
		return false
	}
	var ledgerSum int64
	for _, v := range ledger {
		ledgerSum += v
	}
	// Poll until the rings are empty and the recorded delta covers the
	// ledger (the consumer drains on a few-ms cadence; 3s is generous).
	var after *analyticsTotals
	deadline := time.Now().Add(3 * time.Second)
	for {
		at, err := fetchAnalyticsTotals(client, target)
		if err != nil {
			return fail("%v", err)
		}
		after = at
		settled := at.Counters.RingOccupancy == 0 &&
			int64(at.Counters.Recorded-before.Counters.Recorded) >= ledgerSum
		if settled || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if d := after.Counters.Dropped - before.Counters.Dropped; d != 0 {
		return fail("%d decisions dropped at the rings during the run", d)
	}
	if d := after.Counters.SampledOut - before.Counters.SampledOut; d != 0 {
		return fail("%d decisions sampled out (server not at sampling 1.0?)", d)
	}
	// Every key either side saw must reconcile — a key the server counted
	// but the ledger didn't (or vice versa) is as much a failure as a
	// mismatched count.
	keys := make(map[string]bool, len(ledger))
	for k := range ledger {
		keys[k] = true
	}
	for k := range after.Totals {
		if after.Totals[k] != before.Totals[k] {
			keys[k] = true
		}
	}
	ok := true
	for k := range keys {
		delta := int64(after.Totals[k] - before.Totals[k])
		if delta != ledger[k] {
			fmt.Fprintf(os.Stderr, "loadgen: ANALYTICS-CHECK FAILED: %s: server delta %d != ledger %d\n",
				k, delta, ledger[k])
			ok = false
		}
	}
	if !ok {
		return false
	}
	fmt.Printf("loadgen: ANALYTICS-CHECK OK (%d decisions across %d verdict keys reconcile exactly, zero drops)\n",
		ledgerSum, len(ledger))
	return true
}

// runChecks applies the pass/fail gate and reports the first violation.
func runChecks(total *counters, chaos bool) bool {
	fail := func(format string, args ...interface{}) bool {
		fmt.Fprintf(os.Stderr, "loadgen: CHECK FAILED: "+format+"\n", args...)
		return false
	}
	if total.ok2xx == 0 {
		return fail("no successful requests")
	}
	if total.fail5xx > 0 {
		return fail("%d unexplained 5xx responses", total.fail5xx)
	}
	if chaos {
		// Chaos ledger: every request ends as a success, an explicit
		// rejection, a counted recovered panic, or a counted abort.
		accounted := total.ok2xx + total.other4xx + total.shed429 + total.panic5xx + total.aborted
		if accounted != total.sent {
			return fail("sent %d but accounted %d (2xx %d + 4xx %d + 429 %d + panic-5xx %d + aborted %d)",
				total.sent, accounted, total.ok2xx, total.other4xx, total.shed429, total.panic5xx, total.aborted)
		}
		fmt.Printf("loadgen: CHECK OK (chaos ledger balanced: %d sent = %d 2xx + %d 4xx + %d shed + %d panic-5xx + %d aborted)\n",
			total.sent, total.ok2xx, total.other4xx, total.shed429, total.panic5xx, total.aborted)
		return true
	}
	if total.panic5xx > 0 {
		return fail("%d panic 5xx responses outside chaos mode", total.panic5xx)
	}
	if total.aborted > 0 {
		return fail("%d transport errors", total.aborted)
	}
	if accounted := total.ok2xx + total.shed429; accounted != total.sent {
		return fail("sent %d but only %d accounted as 2xx+429", total.sent, accounted)
	}
	if len(total.perDegrade) > 0 {
		fmt.Printf("loadgen: CHECK OK (all requests 2xx or 429, zero 5xx; by degrade level:%s)\n",
			degradeBreakdown(total))
		return true
	}
	fmt.Println("loadgen: CHECK OK (all requests 2xx or 429, zero 5xx)")
	return true
}

// retryAfter parses a 429's Retry-After header (seconds form) and caps it.
func retryAfter(resp *http.Response, limit time.Duration) time.Duration {
	h := resp.Header.Get("Retry-After")
	if h == "" {
		return 0
	}
	secs, err := strconv.Atoi(h)
	if err != nil || secs < 0 {
		return 0
	}
	d := time.Duration(secs) * time.Second
	if d > limit {
		d = limit
	}
	return d
}

// isPanicEnvelope reports whether a 5xx body is the server's structured
// recovered-panic envelope (error.code == "internal_panic").
func isPanicEnvelope(body []byte) bool {
	var envelope struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	return json.Unmarshal(body, &envelope) == nil && envelope.Error.Code == "internal_panic"
}

// emitBenchLine prints a go-bench formatted result line so benchjson can
// fold the chaos run into a JSON report. recovered-panics comes from the
// server's own /debug/vars (chaos-exempt control plane); if that read
// fails the line still goes out with the counter at -1.
func emitBenchLine(client *http.Client, target string, total *counters, elapsed time.Duration) {
	shedRate := 0.0
	if total.sent > 0 {
		shedRate = float64(total.shed429) / float64(total.sent)
	}
	recovered := float64(-1)
	if v, err := fetchPanicsRecovered(client, target); err == nil {
		recovered = v
	} else {
		fmt.Fprintf(os.Stderr, "loadgen: warning: /debug/vars unreadable: %v\n", err)
	}
	nsPerOp := float64(elapsed.Nanoseconds())
	if total.sent > 0 {
		nsPerOp /= float64(total.sent)
	}
	fmt.Printf("BenchmarkChaosLoadgen %d %.0f ns/op %.4f shed-rate %.0f recovered-panics %d aborted-requests\n",
		total.sent, nsPerOp, shedRate, recovered, total.aborted)
}

// printBreakdowns renders the per-status and per-replica attribution of
// everything the run received.
func printBreakdowns(total *counters) {
	if len(total.perStatus) > 0 {
		statuses := make([]int, 0, len(total.perStatus))
		for s := range total.perStatus {
			statuses = append(statuses, s)
		}
		sort.Ints(statuses)
		fmt.Printf("  by status:")
		for _, s := range statuses {
			fmt.Printf("  %d=%d", s, total.perStatus[s])
		}
		fmt.Println()
	}
	if len(total.perReplica) > 0 {
		names := make([]string, 0, len(total.perReplica))
		for n := range total.perReplica {
			names = append(names, n)
		}
		sort.Strings(names)
		var answered int64
		for _, n := range names {
			answered += total.perReplica[n]
		}
		fmt.Printf("  by replica:")
		for _, n := range names {
			fmt.Printf("  %s=%d (%.0f%%)", n, total.perReplica[n],
				100*float64(total.perReplica[n])/float64(answered))
		}
		fmt.Println()
	}
	if len(total.perDegrade) > 0 {
		fmt.Printf("  by degrade level:%s  (hot-only fraction %.3f)\n",
			degradeBreakdown(total), total.hotOnlyFraction())
	}
}

// degradeBreakdown renders the per-level response counts in ladder order.
func degradeBreakdown(total *counters) string {
	levels := make([]string, 0, len(total.perDegrade))
	for l := range total.perDegrade {
		levels = append(levels, l)
	}
	sort.Strings(levels)
	var sb strings.Builder
	for _, l := range levels {
		fmt.Fprintf(&sb, "  %s=%d", l, total.perDegrade[l])
	}
	return sb.String()
}

// splitURLs splits a comma-separated URL list, dropping empties.
func splitURLs(s string) []string {
	var out []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			out = append(out, u)
		}
	}
	return out
}

// degradeSnap is the slice of a replica's /admin/degrade snapshot the
// recovery check and brownout benchmark read.
type degradeSnap struct {
	Level           string `json:"level"`
	LevelNum        int    `json:"level_num"`
	PeakLevel       int    `json:"peak_level"`
	Transitions     uint64 `json:"transitions"`
	StepUps         uint64 `json:"step_ups"`
	StepDowns       uint64 `json:"step_downs"`
	TransitionP99Ns int64  `json:"transition_p99_ns"`
}

func fetchDegrade(client *http.Client, base string) (*degradeSnap, error) {
	resp, err := client.Get(base + "/admin/degrade")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s/admin/degrade: status %d (replica not running -degrade?)", base, resp.StatusCode)
	}
	var snap degradeSnap
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// runDegradeCheck is the brownout recovery gate: each replica must come
// back to L0 within the poll window, its ladder must have climbed to at
// least L2 under the load this run generated, and the transition ledger
// must show exactly one climb and one descent — transitions == 2×peak
// with step-ups == step-downs — so hysteresis demonstrably prevented
// flapping.
func runDegradeCheck(client *http.Client, urls []string) bool {
	fail := func(format string, args ...interface{}) bool {
		fmt.Fprintf(os.Stderr, "loadgen: DEGRADE-CHECK FAILED: "+format+"\n", args...)
		return false
	}
	if len(urls) == 0 {
		return fail("no -degrade-url given")
	}
	for _, u := range urls {
		var snap *degradeSnap
		deadline := time.Now().Add(15 * time.Second)
		for {
			s, err := fetchDegrade(client, u)
			if err != nil {
				return fail("%v", err)
			}
			snap = s
			if snap.LevelNum == 0 || time.Now().After(deadline) {
				break
			}
			time.Sleep(100 * time.Millisecond)
		}
		if snap.LevelNum != 0 {
			return fail("%s: still at %s after 15s, never recovered to L0", u, snap.Level)
		}
		if snap.PeakLevel < 2 {
			return fail("%s: peak level L%d, want >= L2 (the run never pushed the ladder)", u, snap.PeakLevel)
		}
		if snap.Transitions != 2*uint64(snap.PeakLevel) || snap.StepUps != snap.StepDowns {
			return fail("%s: %d transitions (%d up, %d down) for peak L%d — want exactly %d (one climb, one descent): the ladder flapped",
				u, snap.Transitions, snap.StepUps, snap.StepDowns, snap.PeakLevel, 2*snap.PeakLevel)
		}
		fmt.Printf("loadgen: degrade %s: peak L%d, %d transitions (%d up / %d down), recovered to L0\n",
			u, snap.PeakLevel, snap.Transitions, snap.StepUps, snap.StepDowns)
	}
	fmt.Printf("loadgen: DEGRADE-CHECK OK (%d replicas climbed >= L2 and recovered without flapping)\n", len(urls))
	return true
}

// emitBrownoutBenchLine prints the brownout benchmark result: the share
// of answers served hot-only, the gateway's retry-budget exhaustions,
// and the worst replica's level-transition p99.
func emitBrownoutBenchLine(client *http.Client, target string, degradeURLs []string, total *counters, elapsed time.Duration) {
	budgetExhaustions := float64(-1)
	if gw, err := fetchGatewayVars(client, target); err == nil {
		budgetExhaustions = gw.BudgetExhausted
	} else {
		fmt.Fprintf(os.Stderr, "loadgen: warning: gateway /debug/vars unreadable: %v\n", err)
	}
	transP99 := int64(-1)
	for _, u := range degradeURLs {
		if snap, err := fetchDegrade(client, u); err == nil {
			if snap.TransitionP99Ns > transP99 {
				transP99 = snap.TransitionP99Ns
			}
		} else {
			fmt.Fprintf(os.Stderr, "loadgen: warning: %v\n", err)
		}
	}
	nsPerOp := float64(elapsed.Nanoseconds())
	if total.sent > 0 {
		nsPerOp /= float64(total.sent)
	}
	fmt.Printf("BenchmarkBrownoutLoadgen %d %.0f ns/op %.4f hot-only-fraction %.0f retry-budget-exhaustions %d degrade-transition-p99-ns\n",
		total.sent, nsPerOp, total.hotOnlyFraction(), budgetExhaustions, transP99)
}

// emitFleetBenchLine prints the fleet benchmark result: throughput through
// the gateway plus the gateway's own failover ledger (failovers, retries,
// hedges) read from its /debug/vars.
func emitFleetBenchLine(client *http.Client, target string, total *counters, elapsed time.Duration) {
	failovers, retries, hedges := float64(-1), float64(-1), float64(-1)
	if gw, err := fetchGatewayVars(client, target); err == nil {
		failovers, retries, hedges = gw.Failovers, gw.Retries, gw.Hedges
	} else {
		fmt.Fprintf(os.Stderr, "loadgen: warning: gateway /debug/vars unreadable: %v\n", err)
	}
	nsPerOp := float64(elapsed.Nanoseconds())
	if total.sent > 0 {
		nsPerOp /= float64(total.sent)
	}
	fmt.Printf("BenchmarkFleetLoadgen %d %.0f ns/op %.0f failovers %.0f retries %.0f hedges %d replicas-seen\n",
		total.sent, nsPerOp, failovers, retries, hedges, len(total.perReplica))
}

// gatewayVars is the slice of the gateway's "adwars_gateway" expvar tree
// the fleet benchmark reports.
type gatewayVars struct {
	Failovers       float64 `json:"failovers"`
	Retries         float64 `json:"retries"`
	Hedges          float64 `json:"hedges"`
	BudgetExhausted float64 `json:"retry_budget_exhaustions"`
}

func fetchGatewayVars(client *http.Client, target string) (*gatewayVars, error) {
	resp, err := client.Get(target + "/debug/vars")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var vars struct {
		Gateway *gatewayVars `json:"adwars_gateway"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		return nil, err
	}
	if vars.Gateway == nil {
		return nil, fmt.Errorf("no adwars_gateway tree (target is not a gateway?)")
	}
	return vars.Gateway, nil
}

// fetchPanicsRecovered reads panics_recovered from the server's expvar
// endpoint.
func fetchPanicsRecovered(client *http.Client, target string) (float64, error) {
	resp, err := client.Get(target + "/debug/vars")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("status %d", resp.StatusCode)
	}
	var vars struct {
		Serve struct {
			PanicsRecovered float64 `json:"panics_recovered"`
		} `json:"adwars_serve"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		return 0, err
	}
	return vars.Serve.PanicsRecovered, nil
}

// runProbe sends the canonical match and classify requests, retrying each
// until a 2xx (the target may be mid-chaos), and prints the bodies in a
// fixed order for byte-comparison between servers. Returns the exit code.
func runProbe(client *http.Client, target string, attempts int) int {
	probes := []struct {
		name, path, ctype, body string
	}{
		{"match", "/v1/match", "application/json",
			`{"url":"http://ads.example.com/banner.js","type":"script","page_domain":"news.example"}`},
		{"classify", "/v1/classify", "application/javascript", antiadblock.ReferenceBlockAdBlock},
	}
	for _, p := range probes {
		var body []byte
		got := false
		for i := 0; i < attempts && !got; i++ {
			resp, err := client.Post(target+p.path, p.ctype, bytes.NewReader([]byte(p.body)))
			if err != nil {
				time.Sleep(50 * time.Millisecond)
				continue
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode >= 200 && resp.StatusCode < 300 {
				body, got = b, true
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
		if !got {
			fmt.Fprintf(os.Stderr, "loadgen: probe %s: no 2xx in %d attempts\n", p.name, attempts)
			return 1
		}
		fmt.Printf("%s: %s\n", p.name, body)
	}
	return 0
}

// trickleReader feeds its data a few bytes per read, pausing between
// chunks — the shape of a slow client on a bad link.
type trickleReader struct {
	data  []byte
	chunk int
	gap   time.Duration
	off   int
}

func (t *trickleReader) Read(p []byte) (int, error) {
	if t.off >= len(t.data) {
		return 0, io.EOF
	}
	if t.off > 0 {
		time.Sleep(t.gap)
	}
	n := t.chunk
	if n > len(t.data)-t.off {
		n = len(t.data) - t.off
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, t.data[t.off:t.off+n])
	t.off += n
	return n, nil
}

// abortReader yields a partial body then dies, so the transport kills the
// request mid-stream.
type abortReader struct {
	data []byte
	off  int
}

func (a *abortReader) Read(p []byte) (int, error) {
	if a.off >= len(a.data) {
		return 0, fmt.Errorf("loadgen: injected mid-body abort")
	}
	n := copy(p, a.data[a.off:])
	a.off += n
	return n, nil
}

// syntheticDomains is the fallback URL pool when no lists snapshot is
// given: a spread of plausible ad-ish and clean hostnames.
func syntheticDomains(seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, 0, 256)
	for i := 0; i < 256; i++ {
		out = append(out, fmt.Sprintf("host%04d.example", rng.Intn(10000)))
	}
	return out
}

// workloadScripts returns the classify bodies: one real anti-adblock
// detector plus a handful of generated benign scripts.
func workloadScripts(seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	scripts := []string{antiadblock.ReferenceBlockAdBlock}
	for _, k := range antiadblock.BenignKinds() {
		scripts = append(scripts, antiadblock.BenignScript(k, rng, antiadblock.GenOptions{}))
	}
	return scripts
}
