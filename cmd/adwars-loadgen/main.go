// Command adwars-loadgen drives an adwars-serve instance with a mixed
// match/classify workload and reports throughput, latency quantiles, and
// shed totals. It is the load half of the serving benchmark and of
// `make serve-smoke`.
//
// Usage:
//
//	adwars-loadgen -target http://127.0.0.1:8080 [-rate N] [-concurrency C]
//	               [-duration D] [-jitter F] [-classify-frac F]
//	               [-lists snapshot.json] [-seed S] [-check]
//
// -rate is the aggregate request rate across all workers (0 = unthrottled);
// -jitter perturbs each worker's inter-request gap by ±F to avoid lockstep
// waves. With -lists the match URLs replay domains harvested from a lists
// snapshot (the same corpus the server matches against), so a realistic
// fraction of requests hit blocking rules; otherwise a synthetic domain
// pool is used. Classify bodies alternate between a real BlockAdBlock-style
// detector and generated benign scripts.
//
// -check turns the run into a pass/fail gate: exit non-zero unless at
// least one request succeeded, there were no 5xx or transport errors, and
// every request was accounted for as 2xx or 429 (nothing dropped).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"adwars/internal/abp"
	"adwars/internal/antiadblock"
)

type counters struct {
	sent      int64
	ok2xx     int64
	shed429   int64
	other4xx  int64
	fail5xx   int64
	transport int64
	latencies []time.Duration
}

func (c *counters) add(o *counters) {
	c.sent += o.sent
	c.ok2xx += o.ok2xx
	c.shed429 += o.shed429
	c.other4xx += o.other4xx
	c.fail5xx += o.fail5xx
	c.transport += o.transport
	c.latencies = append(c.latencies, o.latencies...)
}

func main() {
	target := flag.String("target", "http://127.0.0.1:8080", "base URL of the adwars-serve instance")
	rate := flag.Float64("rate", 0, "aggregate requests/sec across workers (0 = unthrottled)")
	concurrency := flag.Int("concurrency", 8, "concurrent workers")
	duration := flag.Duration("duration", 5*time.Second, "how long to fire")
	jitter := flag.Float64("jitter", 0.2, "inter-request gap jitter fraction (0..1)")
	classifyFrac := flag.Float64("classify-frac", 0.1, "fraction of requests that POST /v1/classify")
	listsPath := flag.String("lists", "", "lists snapshot to harvest match URLs from")
	seed := flag.Int64("seed", 1, "workload seed")
	check := flag.Bool("check", false, "exit non-zero unless 2xx>0, no 5xx/transport errors, sent == 2xx+429")
	flag.Parse()

	domains := syntheticDomains(*seed)
	if *listsPath != "" {
		snap, err := abp.LoadListsSnapshot(*listsPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: lists snapshot: %v\n", err)
			os.Exit(2)
		}
		var harvested []string
		for _, l := range snap.Lists {
			harvested = append(harvested, l.Domains()...)
		}
		if len(harvested) > 0 {
			// Keep some synthetic (non-listed) domains in the pool so both
			// the block and no-match paths are exercised.
			domains = append(harvested, domains[:len(domains)/4]...)
		}
	}
	scripts := workloadScripts(*seed)

	var interval time.Duration
	if *rate > 0 {
		interval = time.Duration(float64(*concurrency) / *rate * float64(time.Second))
	}

	client := &http.Client{
		Timeout: 10 * time.Second,
		Transport: &http.Transport{
			MaxIdleConnsPerHost: *concurrency,
		},
	}

	deadline := time.Now().Add(*duration)
	start := time.Now()
	results := make([]counters, *concurrency)
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)*7919))
			c := &results[w]
			for time.Now().Before(deadline) {
				var path string
				var body []byte
				var ctype string
				if rng.Float64() < *classifyFrac {
					path = "/v1/classify"
					body = []byte(scripts[rng.Intn(len(scripts))])
					ctype = "application/javascript"
				} else {
					path = "/v1/match"
					d := domains[rng.Intn(len(domains))]
					q := map[string]string{
						"url":         fmt.Sprintf("http://%s/assets/%d/unit.js", d, rng.Intn(1000)),
						"type":        "script",
						"page_domain": "publisher.example",
					}
					body, _ = json.Marshal(q)
					ctype = "application/json"
				}
				c.sent++
				t0 := time.Now()
				resp, err := client.Post(*target+path, ctype, bytes.NewReader(body))
				if err != nil {
					c.transport++
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				c.latencies = append(c.latencies, time.Since(t0))
				switch {
				case resp.StatusCode >= 200 && resp.StatusCode < 300:
					c.ok2xx++
				case resp.StatusCode == http.StatusTooManyRequests:
					c.shed429++
				case resp.StatusCode >= 500:
					c.fail5xx++
				default:
					c.other4xx++
				}
				if interval > 0 {
					gap := float64(interval) * (1 + *jitter*(2*rng.Float64()-1))
					time.Sleep(time.Duration(gap))
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var total counters
	for i := range results {
		total.add(&results[i])
	}
	sort.Slice(total.latencies, func(i, j int) bool { return total.latencies[i] < total.latencies[j] })

	fmt.Printf("loadgen: %d requests in %v (%.0f req/s, %d workers)\n",
		total.sent, elapsed.Round(time.Millisecond), float64(total.sent)/elapsed.Seconds(), *concurrency)
	fmt.Printf("  2xx %d   429 shed %d   other 4xx %d   5xx %d   transport errors %d\n",
		total.ok2xx, total.shed429, total.other4xx, total.fail5xx, total.transport)
	if n := len(total.latencies); n > 0 {
		fmt.Printf("  latency p50 %v   p90 %v   p99 %v   max %v\n",
			total.latencies[n/2].Round(time.Microsecond),
			total.latencies[n*90/100].Round(time.Microsecond),
			total.latencies[n*99/100].Round(time.Microsecond),
			total.latencies[n-1].Round(time.Microsecond))
	}

	if *check {
		accounted := total.ok2xx + total.shed429
		switch {
		case total.ok2xx == 0:
			fmt.Fprintln(os.Stderr, "loadgen: CHECK FAILED: no successful requests")
			os.Exit(1)
		case total.fail5xx > 0:
			fmt.Fprintf(os.Stderr, "loadgen: CHECK FAILED: %d 5xx responses\n", total.fail5xx)
			os.Exit(1)
		case total.transport > 0:
			fmt.Fprintf(os.Stderr, "loadgen: CHECK FAILED: %d transport errors\n", total.transport)
			os.Exit(1)
		case accounted != total.sent:
			fmt.Fprintf(os.Stderr, "loadgen: CHECK FAILED: sent %d but only %d accounted as 2xx+429\n",
				total.sent, accounted)
			os.Exit(1)
		}
		fmt.Println("loadgen: CHECK OK (all requests 2xx or 429, zero 5xx)")
	}
}

// syntheticDomains is the fallback URL pool when no lists snapshot is
// given: a spread of plausible ad-ish and clean hostnames.
func syntheticDomains(seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, 0, 256)
	for i := 0; i < 256; i++ {
		out = append(out, fmt.Sprintf("host%04d.example", rng.Intn(10000)))
	}
	return out
}

// workloadScripts returns the classify bodies: one real anti-adblock
// detector plus a handful of generated benign scripts.
func workloadScripts(seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	scripts := []string{antiadblock.ReferenceBlockAdBlock}
	for _, k := range antiadblock.BenignKinds() {
		scripts = append(scripts, antiadblock.BenignScript(k, rng, antiadblock.GenOptions{}))
	}
	return scripts
}
