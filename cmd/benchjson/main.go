// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON report. It is the back half of `make bench`: the
// benchmark runs pipe through it and BENCH_replay.json / BENCH_ml.json /
// BENCH_serve.json land in the repo root with ns/op, allocs, and any
// custom b.ReportMetric units (e.g. the serving benchmarks' p50-ns /
// p99-ns latency quantiles), plus the headline derived figures.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -out BENCH_replay.json
//	benchjson -out BENCH_serve.json serve1.txt serve2.txt
//
// With positional arguments the inputs are read from files instead of
// stdin; a missing or unreadable input file is a warning, not a failure,
// so a partial benchmark run still produces a report from what exists.
//
// -merge seeds the report from an existing JSON file before parsing the
// inputs, so independent runs can accrete into one document (the chaos
// and brownout smokes both land in BENCH_chaos.json). Benchmarks are
// deduplicated by name with the newest occurrence winning, and every
// derived figure is recomputed over the merged set.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name with the Benchmark prefix and the -GOMAXPROCS
	// suffix stripped ("BenchmarkReplayIndexed-8" → "ReplayIndexed").
	Name string `json:"name"`
	// Pkg is the package the benchmark ran in (from the preceding pkg: line).
	Pkg         string  `json:"pkg,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric values by unit (e.g. "p50-ns").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the full JSON document.
type Report struct {
	Benchmarks []Benchmark `json:"benchmarks"`
	// ReplaySpeedupIndexedVsLinear is ns/op(ReplayLinearScan) divided by
	// ns/op(ReplayIndexed) — the acceptance criterion for the indexed
	// replay (must be ≥ 3 on a full benchmark run).
	ReplaySpeedupIndexedVsLinear float64 `json:"replay_speedup_indexed_vs_linear,omitempty"`
	// MLSpeedupCachedVsSequential is ns/op(MLTrainCVSequential) divided by
	// ns/op(MLTrainCVCached) — the end-to-end train+CV win of the
	// kernel-cached parallel pipeline over the uncached sequential
	// reference (must be ≥ 2 on a full benchmark run).
	MLSpeedupCachedVsSequential float64 `json:"ml_speedup_cached_vs_sequential,omitempty"`
	// MatchAutomatonP50Ns is the median single-request List.MatchRequest
	// latency through the compiled automaton (ListMatchAutomaton's p50-ns
	// metric) — the acceptance gate is < 1000 ns with 0 allocs/op.
	MatchAutomatonP50Ns float64 `json:"match_automaton_p50_ns,omitempty"`
	// MatchNoMatchAllocsPerOp is allocs/op on the pure-miss match path
	// (ListMatchNoMatch) — must be 0: the common case in production since
	// the overwhelming majority of rules never fire. A pointer so the
	// meaningful zero is emitted when the benchmark ran but the field
	// disappears from reports that never measured it.
	MatchNoMatchAllocsPerOp *float64 `json:"match_nomatch_allocs_per_op,omitempty"`
	// MatchSpeedupAutomatonVsToken is ns/op(ListMatchTokenIndex) divided by
	// ns/op(ListMatchAutomaton) — the probe-stage win of the compiled
	// automaton over the token-hash index it replaced.
	MatchSpeedupAutomatonVsToken float64 `json:"match_speedup_automaton_vs_token,omitempty"`
	// ListLoadSpeedupVsCompile is ns/op(ListCompile) divided by
	// ns/op(ListLoad): how much faster attaching a serialized automaton is
	// than rebuilding it. The Large variant is the same ratio at 4× the
	// rules — it should grow with list size, since load cost is near-flat.
	ListLoadSpeedupVsCompile      float64 `json:"list_load_speedup_vs_compile,omitempty"`
	ListLoadSpeedupVsCompileLarge float64 `json:"list_load_speedup_vs_compile_large,omitempty"`
	// ServeMatchP50Ns / ServeMatchP99Ns are the single-request /v1/match
	// latency quantiles from the serving benchmark's custom metrics.
	ServeMatchP50Ns float64 `json:"serve_match_p50_ns,omitempty"`
	ServeMatchP99Ns float64 `json:"serve_match_p99_ns,omitempty"`
	// ServeMatchAllocs is allocs/op of the /v1/match handler itself
	// (ServeMatchHandler) — the pooled hot path's acceptance gate is ≤ 8,
	// enforced by TestServeMatchAllocs.
	ServeMatchAllocs float64 `json:"serve_match_allocs,omitempty"`
	// UsageOverheadP99Ns is p99(ServeMatch) − p99(ServeMatchUsageOff):
	// the tail cost of per-rule usage recording, which the sharded
	// counter design holds at zero (any residual is run-to-run noise).
	UsageOverheadP99Ns *float64 `json:"usage_overhead_p99_ns,omitempty"`
	// AnalyticsOverheadP99Ns is p99(ServeMatchAnalytics) − p99(ServeMatch):
	// the tail cost of recording every decision into the analytics rings,
	// which the lock-free design holds at zero (any residual is
	// run-to-run noise). A pointer so the headline zero survives omitempty.
	AnalyticsOverheadP99Ns *float64 `json:"analytics_overhead_p99_ns,omitempty"`
	// AnalyticsDropRate is the fraction of recorded decisions dropped at
	// full rings during the analytics benchmark — 0.0 means the consumer
	// kept up with an unthrottled producer. A pointer for the same reason.
	AnalyticsDropRate *float64 `json:"analytics_drop_rate,omitempty"`
	// AnalyticsAggBytes is the aggregator's bounded-memory footprint after
	// absorbing the whole benchmark run.
	AnalyticsAggBytes float64 `json:"analytics_agg_bytes,omitempty"`
	// ServeMatchAnalyticsAllocs is allocs/op of the /v1/match handler with
	// analytics recording every verdict (ServeMatchAnalyticsHandler) — the
	// gate is the same ≤ 8 as the analytics-off path, enforced by
	// TestServeMatchAnalyticsAllocs: decision logging allocates nothing.
	ServeMatchAnalyticsAllocs float64 `json:"serve_match_analytics_allocs,omitempty"`
	// CompactHotCoverage is the fraction of match verdicts a
	// usage-compacted tiered list answers from its hot tier
	// (ServeMatchTiered's hot-coverage metric) — acceptance gate ≥ 0.95.
	CompactHotCoverage float64 `json:"compact_hot_coverage,omitempty"`
	// CompactWorkingSetBytes is the hot-tier automaton size after
	// compaction; CompactFlatSetBytes is the untiered automaton it
	// replaced on the fast path.
	CompactWorkingSetBytes float64 `json:"compact_working_set_bytes,omitempty"`
	CompactFlatSetBytes    float64 `json:"compact_flat_set_bytes,omitempty"`
	// ServeMatchRPS is the sequential single-worker /v1/match throughput
	// (1e9 / ns_per_op of ServeMatch); concurrent throughput scales with
	// the worker pool and is measured live by adwars-loadgen.
	ServeMatchRPS float64 `json:"serve_match_rps,omitempty"`
	// ChaosShedRate is the fraction of chaos-mode requests shed as 429
	// (from adwars-loadgen -chaos -bench via the ChaosLoadgen line).
	ChaosShedRate float64 `json:"chaos_shed_rate,omitempty"`
	// ChaosRecoveredPanics is the server's panics_recovered counter after
	// the chaos run — every injected panic must land here, none may kill
	// the process. -1 means the loadgen could not read /debug/vars.
	ChaosRecoveredPanics float64 `json:"chaos_recovered_panics,omitempty"`
	// ChaosAbortedRequests is how many chaos-mode requests died at the
	// transport layer (injected closes plus client-side mid-body aborts) —
	// all individually accounted for by the loadgen's ledger check.
	ChaosAbortedRequests float64 `json:"chaos_aborted_requests,omitempty"`
	// FleetRPS is the client-visible throughput through adwars-gateway
	// (1e9 / ns_per_op of the FleetLoadgen line) while replicas were being
	// killed and restarted under it.
	FleetRPS float64 `json:"fleet_rps,omitempty"`
	// FleetFailovers / FleetRetries / FleetHedges are the gateway's own
	// counters after the run: how many requests survived a replica failure
	// by moving to another one, how many extra attempts that took, and how
	// many hedge chains fired. -1 means the loadgen could not read the
	// gateway's /debug/vars.
	FleetFailovers float64 `json:"fleet_failovers,omitempty"`
	FleetRetries   float64 `json:"fleet_retries,omitempty"`
	FleetHedges    float64 `json:"fleet_hedges,omitempty"`
	// FleetReplicasSeen is how many distinct replica identities answered
	// through the gateway during the run.
	FleetReplicasSeen float64 `json:"fleet_replicas_seen,omitempty"`
	// BrownoutHotOnlyFraction is the share of brownout-smoke answers
	// served at L2+ (hot-tier-only matching) — proof the ladder actually
	// browned the run out rather than shedding or serving fully.
	BrownoutHotOnlyFraction float64 `json:"brownout_hot_only_fraction,omitempty"`
	// RetryBudgetExhaustions is the gateway's count of retry/hedge
	// attempts suppressed by an empty per-replica token budget during the
	// brownout run. A pointer so the meaningful zero (budgets never ran
	// dry) survives omitempty; -1 means /debug/vars was unreadable.
	RetryBudgetExhaustions *float64 `json:"retry_budget_exhaustions,omitempty"`
	// DegradeTransitionP99Ns is the worst replica's p99 cost of one
	// governor level transition (ladder step + hook dispatch) — the
	// bench-smoke gate bounds it, since transitions happen on the ticker
	// goroutine but publish to every hot-path reader.
	DegradeTransitionP99Ns float64 `json:"degrade_transition_p99_ns,omitempty"`
}

func main() {
	out := flag.String("out", "", "write JSON here instead of stdout")
	merge := flag.String("merge", "", "seed the report from this existing JSON file before parsing inputs")
	flag.Parse()

	rep := &Report{}
	if *merge != "" {
		if data, err := os.ReadFile(*merge); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: warning: -merge %s: %v (starting fresh)\n", *merge, err)
		} else if err := json.Unmarshal(data, rep); err != nil {
			log.Fatalf("-merge %s: %v", *merge, err)
		}
	}
	if flag.NArg() == 0 {
		if err := parse(bufio.NewScanner(os.Stdin), rep); err != nil {
			log.Fatal(err)
		}
	} else {
		parsed := 0
		for _, path := range flag.Args() {
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: warning: skipping %s: %v\n", path, err)
				continue
			}
			err = parse(bufio.NewScanner(f), rep)
			f.Close()
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: warning: skipping %s: %v\n", path, err)
				continue
			}
			parsed++
		}
		if parsed == 0 {
			fmt.Fprintln(os.Stderr, "benchjson: warning: no readable inputs; emitting empty report")
		}
	}
	rep.Benchmarks = dedupe(rep.Benchmarks)
	derive(rep)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}

// parse appends the benchmark lines of one input stream to rep.
func parse(sc *bufio.Scanner, rep *Report) error {
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "pkg:") {
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, ok := parseLine(line)
		if !ok {
			continue
		}
		b.Pkg = pkg
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	return sc.Err()
}

// dedupe keeps the newest occurrence of each benchmark name (merged
// reports come first, fresh parses last), preserving the order in which
// the surviving entries last appeared.
func dedupe(in []Benchmark) []Benchmark {
	last := make(map[string]int, len(in))
	for i, b := range in {
		last[b.Name] = i
	}
	out := in[:0]
	for i, b := range in {
		if last[b.Name] == i {
			out = append(out, b)
		}
	}
	return out
}

// derive computes the headline cross-benchmark figures.
func derive(rep *Report) {
	var indexed, linear, mlSeq, mlCached float64
	var auto, token, compile, load, compileLarge, loadLarge float64
	usageOffP99 := -1.0
	analyticsP99 := -1.0
	for _, b := range rep.Benchmarks {
		switch b.Name {
		case "ReplayIndexed":
			indexed = b.NsPerOp
		case "ReplayLinearScan":
			linear = b.NsPerOp
		case "MLTrainCVSequential":
			mlSeq = b.NsPerOp
		case "MLTrainCVCached":
			mlCached = b.NsPerOp
		case "ListMatchAutomaton":
			auto = b.NsPerOp
			rep.MatchAutomatonP50Ns = b.Metrics["p50-ns"]
		case "ListMatchTokenIndex":
			token = b.NsPerOp
		case "ListMatchNoMatch":
			allocs := b.AllocsPerOp
			rep.MatchNoMatchAllocsPerOp = &allocs
		case "ListCompile":
			compile = b.NsPerOp
		case "ListLoad":
			load = b.NsPerOp
		case "ListCompileLarge":
			compileLarge = b.NsPerOp
		case "ListLoadLarge":
			loadLarge = b.NsPerOp
		case "ServeMatch":
			rep.ServeMatchP50Ns = b.Metrics["p50-ns"]
			rep.ServeMatchP99Ns = b.Metrics["p99-ns"]
			if b.NsPerOp > 0 {
				rep.ServeMatchRPS = 1e9 / b.NsPerOp
			}
		case "ServeMatchHandler":
			rep.ServeMatchAllocs = b.AllocsPerOp
		case "ServeMatchUsageOff":
			usageOffP99 = b.Metrics["p99-ns"]
		case "ServeMatchAnalytics":
			analyticsP99 = b.Metrics["p99-ns"]
			if dr, ok := b.Metrics["drop-rate"]; ok {
				rep.AnalyticsDropRate = &dr
			}
			rep.AnalyticsAggBytes = b.Metrics["agg-bytes"]
		case "ServeMatchAnalyticsHandler":
			rep.ServeMatchAnalyticsAllocs = b.AllocsPerOp
		case "ServeMatchTiered":
			rep.CompactHotCoverage = b.Metrics["hot-coverage"]
			rep.CompactWorkingSetBytes = b.Metrics["hot-set-bytes"]
			rep.CompactFlatSetBytes = b.Metrics["flat-set-bytes"]
		case "ChaosLoadgen":
			rep.ChaosShedRate = b.Metrics["shed-rate"]
			rep.ChaosRecoveredPanics = b.Metrics["recovered-panics"]
			rep.ChaosAbortedRequests = b.Metrics["aborted-requests"]
		case "FleetLoadgen":
			if b.NsPerOp > 0 {
				rep.FleetRPS = 1e9 / b.NsPerOp
			}
			rep.FleetFailovers = b.Metrics["failovers"]
			rep.FleetRetries = b.Metrics["retries"]
			rep.FleetHedges = b.Metrics["hedges"]
			rep.FleetReplicasSeen = b.Metrics["replicas-seen"]
		case "BrownoutLoadgen":
			rep.BrownoutHotOnlyFraction = b.Metrics["hot-only-fraction"]
			if v, ok := b.Metrics["retry-budget-exhaustions"]; ok {
				rep.RetryBudgetExhaustions = &v
			}
			rep.DegradeTransitionP99Ns = b.Metrics["degrade-transition-p99-ns"]
		}
	}
	if indexed > 0 && linear > 0 {
		rep.ReplaySpeedupIndexedVsLinear = linear / indexed
	}
	if mlSeq > 0 && mlCached > 0 {
		rep.MLSpeedupCachedVsSequential = mlSeq / mlCached
	}
	if auto > 0 && token > 0 {
		rep.MatchSpeedupAutomatonVsToken = token / auto
	}
	if compile > 0 && load > 0 {
		rep.ListLoadSpeedupVsCompile = compile / load
	}
	if compileLarge > 0 && loadLarge > 0 {
		rep.ListLoadSpeedupVsCompileLarge = compileLarge / loadLarge
	}
	if usageOffP99 >= 0 && rep.ServeMatchP99Ns > 0 {
		// A pointer so the headline zero (counters cost nothing at the
		// tail) survives omitempty; negative residuals are noise.
		overhead := rep.ServeMatchP99Ns - usageOffP99
		rep.UsageOverheadP99Ns = &overhead
	}
	if analyticsP99 >= 0 && rep.ServeMatchP99Ns > 0 {
		overhead := analyticsP99 - rep.ServeMatchP99Ns
		rep.AnalyticsOverheadP99Ns = &overhead
	}
}

// parseLine parses one result line of the form
//
//	BenchmarkName-8  123  4567 ns/op  89 B/op  10 allocs/op  678 p50-ns
//
// Unknown units (from b.ReportMetric) are collected into Metrics. Lines
// that do not carry an ns/op measurement (e.g. "BenchmarkX ... FAIL")
// are skipped.
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(f[0], "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters}
	seenNs := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
			seenNs = true
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
	}
	return b, seenNs
}
