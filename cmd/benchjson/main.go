// Command benchjson converts `go test -bench` text output (read from
// stdin) into a machine-readable JSON report. It is the back half of
// `make bench`: the benchmark run pipes through it and BENCH_replay.json
// lands in the repo root with ns/op and allocs for the match, list-compile,
// and full-replay paths, plus the headline indexed-vs-linear replay
// speedup.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -out BENCH_replay.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name with the Benchmark prefix and the -GOMAXPROCS
	// suffix stripped ("BenchmarkReplayIndexed-8" → "ReplayIndexed").
	Name string `json:"name"`
	// Pkg is the package the benchmark ran in (from the preceding pkg: line).
	Pkg         string  `json:"pkg,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Report is the full JSON document.
type Report struct {
	Benchmarks []Benchmark `json:"benchmarks"`
	// ReplaySpeedupIndexedVsLinear is ns/op(ReplayLinearScan) divided by
	// ns/op(ReplayIndexed) — the acceptance criterion for the indexed
	// replay (must be ≥ 3 on a full benchmark run).
	ReplaySpeedupIndexedVsLinear float64 `json:"replay_speedup_indexed_vs_linear,omitempty"`
	// MLSpeedupCachedVsSequential is ns/op(MLTrainCVSequential) divided by
	// ns/op(MLTrainCVCached) — the end-to-end train+CV win of the
	// kernel-cached parallel pipeline over the uncached sequential
	// reference (must be ≥ 2 on a full benchmark run).
	MLSpeedupCachedVsSequential float64 `json:"ml_speedup_cached_vs_sequential,omitempty"`
}

func main() {
	out := flag.String("out", "", "write JSON here instead of stdout")
	flag.Parse()

	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		log.Fatal(err)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}

func parse(sc *bufio.Scanner) (*Report, error) {
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	rep := &Report{}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "pkg:") {
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, ok := parseLine(line)
		if !ok {
			continue
		}
		b.Pkg = pkg
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	var indexed, linear, mlSeq, mlCached float64
	for _, b := range rep.Benchmarks {
		switch b.Name {
		case "ReplayIndexed":
			indexed = b.NsPerOp
		case "ReplayLinearScan":
			linear = b.NsPerOp
		case "MLTrainCVSequential":
			mlSeq = b.NsPerOp
		case "MLTrainCVCached":
			mlCached = b.NsPerOp
		}
	}
	if indexed > 0 && linear > 0 {
		rep.ReplaySpeedupIndexedVsLinear = linear / indexed
	}
	if mlSeq > 0 && mlCached > 0 {
		rep.MLSpeedupCachedVsSequential = mlSeq / mlCached
	}
	return rep, nil
}

// parseLine parses one result line of the form
//
//	BenchmarkName-8  123  4567 ns/op  89 B/op  10 allocs/op
//
// Lines that do not carry an ns/op measurement (e.g. "BenchmarkX ... FAIL")
// are skipped.
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(f[0], "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters}
	seenNs := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp = v
			seenNs = true
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		}
	}
	return b, seenNs
}
