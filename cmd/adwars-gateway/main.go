// Command adwars-gateway fronts a fleet of adwars-serve replicas: it
// load-balances /v1/* requests across them with active health checks
// (each replica's /readyz), passive failure ejection (per-replica circuit
// breakers), bounded retry/failover, and optional request hedging — so a
// killed or draining replica costs failover ticks, not client-visible
// 5xx. The gateway's own /healthz reports fleet routability and
// /debug/vars exports the failover ledger under "adwars_gateway".
//
// Usage:
//
//	adwars-gateway -backends host:port,host:port,... [-addr :8090]
//	               [-health-interval D] [-fail-threshold N] [-cooldown D]
//	               [-retries N] [-hedge-delay D] [-per-try-timeout D]
//	               [-retry-budget N] [-retry-refill F]
//	               [-drain D] [-portfile PATH]
//
// Retries and hedges spend from a per-replica token budget (capacity
// -retry-budget, refilled by -retry-refill tokens per successful
// exchange), so a struggling fleet is never hammered with unbounded
// extra attempts. The gateway also stamps X-Adwars-Deadline — the
// remaining per-try time budget in milliseconds, narrowed by any
// deadline the client already propagated — so replicas can refuse work
// they cannot finish in time.
//
// SIGINT/SIGTERM drain in-flight requests and flush a final metrics
// snapshot to stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"adwars/internal/artifact"
	"adwars/internal/fleet"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8090", "listen address (host:0 picks an ephemeral port)")
	backends := flag.String("backends", "", "comma-separated replica base URLs or host:port list (required)")
	healthInterval := flag.Duration("health-interval", 0, "active /readyz polling cadence (0 = default 250ms)")
	failThreshold := flag.Int("fail-threshold", 0, "consecutive failures that eject a replica (0 = default 3)")
	cooldown := flag.Duration("cooldown", 0, "ejection cooldown before the half-open probe (0 = default 1s)")
	retries := flag.Int("retries", 0, "max distinct replicas tried per request (0 = all)")
	hedgeDelay := flag.Duration("hedge-delay", 0, "fire a second attempt on another replica after this delay (0 = hedging off)")
	perTryTimeout := flag.Duration("per-try-timeout", 0, "timeout for one replica exchange (0 = default 5s)")
	retryBudget := flag.Float64("retry-budget", 0, "per-replica retry token bucket capacity (0 = default 10)")
	retryRefill := flag.Float64("retry-refill", 0, "retry tokens earned per successful exchange (0 = default 0.1)")
	drain := flag.Duration("drain", 0, "graceful-shutdown drain timeout (0 = default 5s)")
	portfile := flag.String("portfile", "", "write the bound host:port to this file after listening")
	flag.Parse()

	if *backends == "" {
		log.Fatal("need -backends (comma-separated replica addresses)")
	}
	g, err := fleet.NewGateway(fleet.GatewayConfig{
		Backends: strings.Split(*backends, ","),
		Pool: fleet.PoolConfig{
			HealthInterval: *healthInterval,
			FailThreshold:  *failThreshold,
			Cooldown:       *cooldown,
			RetryBudget:    *retryBudget,
			RetryRefill:    *retryRefill,
		},
		MaxAttempts:   *retries,
		HedgeDelay:    *hedgeDelay,
		PerTryTimeout: *perTryTimeout,
		DrainTimeout:  *drain,
		MetricsOut:    os.Stderr,
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen %s: %v", *addr, err)
	}
	if *portfile != "" {
		if err := artifact.WriteFileAtomic(*portfile, []byte(ln.Addr().String()), 0o644); err != nil {
			log.Fatalf("portfile: %v", err)
		}
	}
	var ids []string
	for _, b := range g.Pool().Backends() {
		ids = append(ids, b.URL)
	}
	fmt.Fprintf(os.Stderr, "adwars-gateway listening on %s, %d backends: %s\n",
		ln.Addr(), len(ids), strings.Join(ids, " "))
	if *hedgeDelay > 0 {
		fmt.Fprintf(os.Stderr, "adwars-gateway hedging after %v\n", *hedgeDelay)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	start := time.Now()
	if err := g.Serve(ctx, ln); err != nil {
		log.Fatalf("gateway: %v", err)
	}
	fmt.Fprintf(os.Stderr, "adwars-gateway: drained after %v, bye\n", time.Since(start).Round(time.Millisecond))
}
