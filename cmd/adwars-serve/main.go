// Command adwars-serve is the online serving layer: it loads the model and
// filter-list snapshots written by adwars-detect and adwars-lists and
// answers block decisions (/v1/match) and anti-adblock classifications
// (/v1/classify) over HTTP, with batch variants, per-endpoint metrics at
// /debug/vars, and load shedding under overload.
//
// Usage:
//
//	adwars-serve -model model.json -lists lists.json [-addr :8080]
//	             [-workers N] [-queue N] [-queue-timeout D]
//	             [-max-body N] [-max-batch N] [-drain D] [-portfile PATH]
//	             [-replica ID] [-drain-announce D]
//	             [-analytics] [-analytics-sample F] [-analytics-spill DIR]
//	             [-analytics-bucket D]
//	             [-degrade] [-degrade-interval D] [-degrade-queue-frac F]
//	             [-degrade-p99 D] [-degrade-drop-rate F]
//	             [-degrade-up-ticks N] [-degrade-down-ticks N]
//
// -degrade enables the adaptive overload governor: a ticker watches live
// pressure (admission queue depth, windowed match p99, analytics drop
// rate) and steps a degradation ladder L0..L4 — forced analytics
// sampling, hot-tier-only matching, classify shed, batch shed — with
// hysteresis so the level climbs fast and recovers calmly. Every
// response carries the level in X-Adwars-Degrade; /admin/degrade
// exposes the snapshot and manual pin/unpin.
//
// -analytics enables the decision analytics pipeline: every /v1/match and
// /v1/classify verdict is logged (sampled at -analytics-sample) into
// lock-free rings, aggregated into time buckets, snapshotted at
// /admin/analytics, and — with -analytics-spill — written as rotated
// JSONL files that adwars-report -live renders into coverage dashboards.
// On SIGTERM the rings and final aggregator state flush to spill before
// exit.
//
// Behind adwars-gateway, -replica names this process in the
// X-Adwars-Replica response header and /healthz, and -drain-announce
// holds the listener open for a beat after /readyz flips to 503 so the
// gateway's health poller routes traffic away before connections close.
//
// SIGHUP (or POST /admin/reload) atomically re-reads both snapshots from
// disk without dropping in-flight requests; SIGINT/SIGTERM drain in-flight
// requests (up to -drain) and flush a final metrics snapshot to stderr
// before exiting. -portfile writes the bound host:port after listening,
// so scripts can use -addr 127.0.0.1:0 for an ephemeral port.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"adwars/internal/analytics"
	"adwars/internal/artifact"
	"adwars/internal/degrade"
	"adwars/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (host:0 picks an ephemeral port)")
	model := flag.String("model", "", "model snapshot path (from adwars-detect -save-model)")
	lists := flag.String("lists", "", "lists snapshot path (from adwars-lists -save-snapshot)")
	workers := flag.Int("workers", 0, "concurrent request slots (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission queue depth (0 = 4x workers)")
	queueTimeout := flag.Duration("queue-timeout", 0, "max queue wait before shedding (0 = default)")
	maxBody := flag.Int64("max-body", 0, "request body cap in bytes (0 = default 1MiB)")
	maxBatch := flag.Int("max-batch", 0, "max items per batch request (0 = default 256)")
	drain := flag.Duration("drain", 0, "graceful-shutdown drain timeout (0 = default 5s)")
	drainAnnounce := flag.Duration("drain-announce", 0, "pause between flipping /readyz to 503 and closing the listener, so gateways route away first")
	replica := flag.String("replica", "", "replica identity reported in X-Adwars-Replica and /healthz")
	portfile := flag.String("portfile", "", "write the bound host:port to this file after listening")
	chaosSeed := flag.Int64("chaos-seed", 0, "chaos fault-injection seed (0 = chaos disabled unless a rate is set)")
	chaosLatencyRate := flag.Float64("chaos-latency-rate", 0, "fraction of data-plane requests that get injected latency")
	chaosLatency := flag.Duration("chaos-latency", 0, "injected latency per latency fault (0 = default 5ms)")
	chaosCloseRate := flag.Float64("chaos-close-rate", 0, "fraction of data-plane requests whose connection is closed early")
	chaosTruncateRate := flag.Float64("chaos-truncate-rate", 0, "fraction of data-plane requests whose body read is truncated")
	chaosPanicRate := flag.Float64("chaos-panic-rate", 0, "fraction of data-plane requests that panic inside the handler")
	anlOn := flag.Bool("analytics", false, "enable the decision analytics pipeline (/admin/analytics)")
	anlSample := flag.Float64("analytics-sample", 1.0, "fraction of decisions recorded (1.0 = exact reconciliation)")
	anlSpill := flag.String("analytics-spill", "", "directory for rotated JSONL analytics spill files (empty = in-memory only)")
	anlBucket := flag.Duration("analytics-bucket", 0, "analytics aggregation bucket width (0 = default 10s)")
	degOn := flag.Bool("degrade", false, "enable the adaptive overload governor (brownout ladder L0..L4)")
	degInterval := flag.Duration("degrade-interval", 0, "governor tick cadence (0 = default 100ms)")
	degQueueFrac := flag.Float64("degrade-queue-frac", 0, "queue-depth fraction that counts as pressure (0 = default 0.5)")
	degP99 := flag.Duration("degrade-p99", 0, "windowed match p99 that counts as pressure (0 = default 20ms)")
	degDropRate := flag.Float64("degrade-drop-rate", 0, "analytics ring drop rate that counts as pressure (0 = default 0.01)")
	degUpTicks := flag.Int("degrade-up-ticks", 0, "consecutive hot ticks before stepping up (0 = default 2)")
	degDownTicks := flag.Int("degrade-down-ticks", 0, "consecutive calm ticks before stepping down (0 = default 5)")
	flag.Parse()

	if *model == "" && *lists == "" {
		log.Fatal("need at least one of -model or -lists")
	}

	var chaos *serve.ChaosConfig
	if *chaosLatencyRate > 0 || *chaosCloseRate > 0 || *chaosTruncateRate > 0 || *chaosPanicRate > 0 {
		chaos = &serve.ChaosConfig{
			Seed:         *chaosSeed,
			LatencyRate:  *chaosLatencyRate,
			Latency:      *chaosLatency,
			CloseRate:    *chaosCloseRate,
			TruncateRate: *chaosTruncateRate,
			PanicRate:    *chaosPanicRate,
		}
		fmt.Fprintf(os.Stderr, "adwars-serve: CHAOS MODE on data plane (seed=%d latency=%.2f close=%.2f truncate=%.2f panic=%.2f)\n",
			chaos.Seed, chaos.LatencyRate, chaos.CloseRate, chaos.TruncateRate, chaos.PanicRate)
	}

	var anl *analytics.Config
	if *anlOn || *anlSpill != "" {
		anl = &analytics.Config{
			SampleRate: *anlSample,
			SpillDir:   *anlSpill,
			BucketDur:  *anlBucket,
		}
		fmt.Fprintf(os.Stderr, "adwars-serve: decision analytics on (sample=%.2f spill=%q)\n",
			*anlSample, *anlSpill)
	}

	var deg *degrade.Config
	if *degOn {
		deg = &degrade.Config{
			Interval:      *degInterval,
			QueueHighFrac: *degQueueFrac,
			P99HighNs:     degP99.Nanoseconds(),
			DropHighRate:  *degDropRate,
			StepUpTicks:   *degUpTicks,
			StepDownTicks: *degDownTicks,
		}
		fmt.Fprintf(os.Stderr, "adwars-serve: overload governor on (interval=%v p99=%v up=%d down=%d)\n",
			*degInterval, *degP99, *degUpTicks, *degDownTicks)
	}

	s := serve.New(serve.Config{
		ModelPath:     *model,
		ListsPath:     *lists,
		Workers:       *workers,
		Queue:         *queue,
		QueueTimeout:  *queueTimeout,
		MaxBody:       *maxBody,
		MaxBatch:      *maxBatch,
		DrainTimeout:  *drain,
		DrainAnnounce: *drainAnnounce,
		ReplicaID:     *replica,
		MetricsOut:    os.Stderr,
		Chaos:         chaos,
		Analytics:     anl,
		Degrade:       deg,
	})
	if err := s.AnalyticsError(); err != nil {
		log.Fatalf("analytics: %v", err)
	}
	if err := s.ReloadSnapshots(); err != nil {
		log.Fatalf("initial snapshot load: %v", err)
	}
	expvar.Publish("adwars_serve", expvar.Func(func() interface{} {
		return jsonRaw(s.Metrics().String())
	}))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen %s: %v", *addr, err)
	}
	if *portfile != "" {
		// Atomic so a watcher polling the portfile never reads a torn
		// half-written address.
		if err := artifact.WriteFileAtomic(*portfile, []byte(ln.Addr().String()), 0o644); err != nil {
			log.Fatalf("portfile: %v", err)
		}
	}
	fmt.Fprintf(os.Stderr, "adwars-serve listening on %s (model=%q lists=%q)\n",
		ln.Addr(), *model, *lists)

	// SIGINT/SIGTERM cancel the serve context → graceful drain.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGHUP hot-reloads both snapshots; a failed reload keeps serving the
	// previous ones.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-hup:
				start := time.Now()
				if err := s.ReloadSnapshots(); err != nil {
					log.Printf("SIGHUP reload failed (still serving old snapshots): %v", err)
				} else {
					log.Printf("SIGHUP reload ok in %v", time.Since(start))
				}
			}
		}
	}()

	if err := s.Serve(ctx, ln); err != nil {
		log.Fatalf("serve: %v", err)
	}
	fmt.Fprintln(os.Stderr, "adwars-serve: drained, bye")
}

// jsonRaw marks an already-encoded JSON string so expvar prints it
// verbatim instead of quoting it.
type jsonRaw string

func (r jsonRaw) MarshalJSON() ([]byte, error) { return []byte(r), nil }
