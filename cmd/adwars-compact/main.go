// Command adwars-compact closes the usage→compaction loop: it reads the
// per-rule hit telemetry a serving instance accumulated (the /admin/usage
// dump) plus the lists snapshot that instance serves, and emits a tiered
// v4 snapshot — the rules that actually fired compiled into a small hot
// automaton probed on every request, everything else relegated to a cold
// fallback automaton probed only on hot-tier miss. Verdicts are
// byte-identical to the untiered list (the tier split is a working-set
// optimization, never a semantic one); the hot working set typically
// shrinks by the dead-rule fraction, which the paper's lists put at well
// over half.
//
// Usage:
//
//	adwars-compact -lists lists.json -usage usage.json -out lists_v4.json
//	adwars-compact -lists lists.json -usage http://127.0.0.1:8080/admin/usage -out lists_v4.json
//
// -usage accepts a file path or an http(s) URL; the URL form reads the
// live /admin/usage endpoint of a running adwars-serve, so compacting
// against current production traffic is one command. -min-hits raises the
// hot-tier bar: a rule needs at least that many recorded verdicts to stay
// hot (default 1 — any rule that ever fired). Lists present in the
// snapshot but absent from the usage dump compact to an all-cold tier
// (usage says nothing fired), with a warning.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"

	"adwars/internal/abp"
	"adwars/internal/serve"
)

func main() {
	listsPath := flag.String("lists", "", "input lists snapshot (v2/v3/v4)")
	usagePath := flag.String("usage", "", "usage dump: /admin/usage JSON file or http(s) URL")
	out := flag.String("out", "", "output path for the tiered v4 snapshot")
	minHits := flag.Uint64("min-hits", 1, "minimum recorded hits for a rule to stay in the hot tier")
	label := flag.String("label", "", "override the output snapshot label (default: input label + \" [tiered]\")")
	flag.Parse()
	if *listsPath == "" || *usagePath == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "adwars-compact: -lists, -usage, and -out are all required")
		flag.Usage()
		os.Exit(2)
	}

	snap, err := abp.LoadListsSnapshot(*listsPath)
	if err != nil {
		log.Fatalf("adwars-compact: lists snapshot: %v", err)
	}
	dump, err := readUsage(*usagePath)
	if err != nil {
		log.Fatalf("adwars-compact: usage dump: %v", err)
	}
	hits := make(map[string]map[int]uint64, len(dump.Lists))
	for _, ul := range dump.Lists {
		m := make(map[int]uint64, len(ul.Hits))
		for _, pair := range ul.Hits {
			m[int(pair[0])] = pair[1]
		}
		hits[ul.List] = m
	}

	tiered := &abp.ListsSnapshot{Label: *label, Tiered: true}
	if tiered.Label == "" {
		tiered.Label = snap.Label + " [tiered]"
	}
	fmt.Printf("adwars-compact: %d lists, %d rules, %d recorded hits (min-hits %d)\n",
		len(snap.Lists), snap.Rules(), dump.TotalHits, *minHits)
	for _, l := range snap.Lists {
		u, ok := hits[l.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "adwars-compact: warning: list %q has no usage entry; compacting all-cold\n", l.Name)
		}
		ct := l.CompileTiered(func(ord int) bool { return u[ord] >= *minHits })
		tiered.Lists = append(tiered.Lists, ct)
		st := ct.TierStats()
		flat := l.TierStats().HotBytes
		fmt.Printf("  %-24s hot %5d rules %7d B   cold %5d rules %7d B   (flat %7d B, hot set %4.1f%%)\n",
			l.Name, st.HotRules, st.HotBytes, st.ColdRules, st.ColdBytes,
			flat, 100*float64(st.HotBytes)/float64(flat))
	}

	if err := abp.SaveListsSnapshotTiered(*out, tiered); err != nil {
		log.Fatalf("adwars-compact: save: %v", err)
	}
	fmt.Printf("adwars-compact: wrote tiered snapshot %s (label %q)\n", *out, tiered.Label)
}

// readUsage loads a /admin/usage dump from a file or straight off a
// running server.
func readUsage(src string) (*serve.UsageDump, error) {
	var data []byte
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		resp, err := http.Get(src)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET %s: status %d", src, resp.StatusCode)
		}
		if data, err = io.ReadAll(resp.Body); err != nil {
			return nil, err
		}
	} else {
		var err error
		data, err = os.ReadFile(src)
		if err != nil {
			return nil, err
		}
	}
	var dump serve.UsageDump
	if err := json.Unmarshal(data, &dump); err != nil {
		return nil, err
	}
	return &dump, nil
}
