// Command adwars-report regenerates every table and figure of the paper
// in one run and prints a combined report — the data recorded in
// EXPERIMENTS.md. Run with -scale 1 for full paper scale (slow) or a
// larger factor for a proportional quick pass.
//
// Usage:
//
//	adwars-report [-scale N] [-seed S] [-stride M] [-folds K]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"adwars/internal/antiadblock"
	"adwars/internal/experiments"
	"adwars/internal/features"
	"adwars/internal/simworld"
)

func section(title string) {
	fmt.Printf("\n================ %s ================\n\n", title)
}

func main() {
	scale := flag.Int("scale", 10, "world shrink factor (1 = paper scale)")
	seed := flag.Int64("seed", 42, "deterministic seed")
	stride := flag.Int("stride", 1, "crawl every Mth month")
	folds := flag.Int("folds", 10, "cross-validation folds")
	maxSamples := flag.Int("maxsamples", 1650, "ML corpus cap (0 = unlimited)")
	flag.Parse()

	started := time.Now()
	cfg := simworld.DefaultConfig(*seed)
	if *scale > 1 {
		cfg = simworld.Scaled(*seed, *scale)
	}
	fmt.Printf("adwars-report — scale 1/%d (universe %d domains), seed %d\n",
		*scale, cfg.UniverseSize, *seed)
	lab := experiments.NewLab(cfg)

	section("Figure 1 — filter list evolution")
	fmt.Println(experiments.Fig1(lab.Lists.AAK, lab.World.Cfg.End).Render())
	fmt.Println(experiments.Fig1(lab.Lists.AWRL, lab.World.Cfg.End).Render())
	fmt.Println(experiments.Fig1(lab.Lists.EasyListAA, lab.World.Cfg.End).Render())

	section("Table 1 / Figure 2 / §3.3 / Figure 3 — list comparison")
	fmt.Println(lab.Table1().Render())
	fmt.Println(lab.Fig2().Render())
	fmt.Println(lab.Overlap().Render())
	fmt.Println(experiments.RenderSharedRules(lab.SharedRuleExhibit(4)))
	fmt.Println(lab.Fig3().Render())

	section("Figures 5–7 — retrospective coverage (Wayback crawl)")
	fmt.Fprintf(os.Stderr, "crawling %d months...\n", len(lab.RetroMonths(*stride)))
	retro, err := lab.RunRetrospective(context.Background(), experiments.RetroConfig{
		Months: lab.RetroMonths(*stride),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(retro.RenderFig5())
	fmt.Println(retro.RenderFig6())
	fmt.Println(lab.Fig7(0).Render())

	section("Circumvention effectiveness (adblock-user simulation)")
	fmt.Println(lab.Circumvention(0, lab.World.Cfg.End).Render())

	section("§4.3 — live web coverage")
	live, err := lab.RunLive(context.Background(), experiments.LiveConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(live.Render())

	section("§5 — anti-adblock script detection")
	rows2, err := experiments.Table2(antiadblock.ReferenceBlockAdBlock)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(experiments.RenderTable2(rows2))

	corpus := &experiments.Corpus{Positives: retro.CorpusPos, Negatives: retro.CorpusNeg}
	fmt.Printf("corpus: %d positives, %d negatives (%.1f:1)\n\n",
		len(corpus.Positives), len(corpus.Negatives), corpus.Imbalance())
	fmt.Fprintln(os.Stderr, "running Table 3 sweep...")
	rows3, err := experiments.Table3(corpus, experiments.Table3Config{
		TopK: []int{100, 1000, 10000}, Folds: *folds, Seed: *seed, MaxSamples: *maxSamples,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(experiments.RenderTable3(rows3))

	base, err := experiments.CompareBaselines(corpus, *seed, experiments.PipelineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(base.Render())

	top, err := experiments.TopFeatures(corpus, features.SetKeyword, 15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(experiments.RenderTopFeatures(top, features.SetKeyword))

	res, err := experiments.LiveModelTest(corpus, live.Scripts, 5000, *seed, experiments.PipelineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Render())

	section("Paper vs measured")
	summary := lab.Collect(retro, live, lab.Fig7(0), rows3, res)
	fmt.Println(experiments.RenderComparison(experiments.PaperComparison(summary, lab.Scale())))

	fmt.Printf("report complete in %s\n", time.Since(started).Round(time.Second))
}
