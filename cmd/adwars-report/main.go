// Command adwars-report regenerates every table and figure of the paper
// in one run and prints a combined report — the data recorded in
// EXPERIMENTS.md. Run with -scale 1 for full paper scale (slow) or a
// larger factor for a proportional quick pass.
//
// Usage:
//
//	adwars-report [-scale N] [-seed S] [-stride M] [-folds K]
//	adwars-report -live [-spill DIR] [-url http://HOST:PORT] [-top K]
//
// -live switches from the paper experiments to a serving-run coverage
// dashboard built from the decision analytics pipeline: top firing rules,
// per-domain block rates, and the verdict mix over time. Rows come from
// the JSONL spill files an adwars-serve -analytics-spill run wrote
// (-spill DIR), from a running server's /admin/analytics snapshot
// (-url), or both — spilled history plus the in-memory buckets not yet
// evicted, which together cover the whole run.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"adwars/internal/analytics"
	"adwars/internal/antiadblock"
	"adwars/internal/experiments"
	"adwars/internal/features"
	"adwars/internal/simworld"
)

func section(title string) {
	fmt.Printf("\n================ %s ================\n\n", title)
}

func main() {
	scale := flag.Int("scale", 10, "world shrink factor (1 = paper scale)")
	seed := flag.Int64("seed", 42, "deterministic seed")
	stride := flag.Int("stride", 1, "crawl every Mth month")
	folds := flag.Int("folds", 10, "cross-validation folds")
	maxSamples := flag.Int("maxsamples", 1650, "ML corpus cap (0 = unlimited)")
	liveMode := flag.Bool("live", false, "render a serving-run analytics dashboard instead of the paper report")
	spillDir := flag.String("spill", "", "with -live: analytics JSONL spill directory to read")
	liveURL := flag.String("url", "", "with -live: base URL of a running adwars-serve to snapshot")
	topK := flag.Int("top", 10, "with -live: rows per ranking section")
	flag.Parse()

	if *liveMode {
		os.Exit(runLive(*spillDir, *liveURL, *topK))
	}

	started := time.Now()
	cfg := simworld.DefaultConfig(*seed)
	if *scale > 1 {
		cfg = simworld.Scaled(*seed, *scale)
	}
	fmt.Printf("adwars-report — scale 1/%d (universe %d domains), seed %d\n",
		*scale, cfg.UniverseSize, *seed)
	lab := experiments.NewLab(cfg)

	section("Figure 1 — filter list evolution")
	fmt.Println(experiments.Fig1(lab.Lists.AAK, lab.World.Cfg.End).Render())
	fmt.Println(experiments.Fig1(lab.Lists.AWRL, lab.World.Cfg.End).Render())
	fmt.Println(experiments.Fig1(lab.Lists.EasyListAA, lab.World.Cfg.End).Render())

	section("Table 1 / Figure 2 / §3.3 / Figure 3 — list comparison")
	fmt.Println(lab.Table1().Render())
	fmt.Println(lab.Fig2().Render())
	fmt.Println(lab.Overlap().Render())
	fmt.Println(experiments.RenderSharedRules(lab.SharedRuleExhibit(4)))
	fmt.Println(lab.Fig3().Render())

	section("Figures 5–7 — retrospective coverage (Wayback crawl)")
	fmt.Fprintf(os.Stderr, "crawling %d months...\n", len(lab.RetroMonths(*stride)))
	retro, err := lab.RunRetrospective(context.Background(), experiments.RetroConfig{
		Months: lab.RetroMonths(*stride),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(retro.RenderFig5())
	fmt.Println(retro.RenderFig6())
	fmt.Println(lab.Fig7(0).Render())

	section("Circumvention effectiveness (adblock-user simulation)")
	fmt.Println(lab.Circumvention(0, lab.World.Cfg.End).Render())

	section("§4.3 — live web coverage")
	live, err := lab.RunLive(context.Background(), experiments.LiveConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(live.Render())

	section("§5 — anti-adblock script detection")
	rows2, err := experiments.Table2(antiadblock.ReferenceBlockAdBlock)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(experiments.RenderTable2(rows2))

	corpus := &experiments.Corpus{Positives: retro.CorpusPos, Negatives: retro.CorpusNeg}
	fmt.Printf("corpus: %d positives, %d negatives (%.1f:1)\n\n",
		len(corpus.Positives), len(corpus.Negatives), corpus.Imbalance())
	fmt.Fprintln(os.Stderr, "running Table 3 sweep...")
	rows3, err := experiments.Table3(corpus, experiments.Table3Config{
		TopK: []int{100, 1000, 10000}, Folds: *folds, Seed: *seed, MaxSamples: *maxSamples,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(experiments.RenderTable3(rows3))

	base, err := experiments.CompareBaselines(corpus, *seed, experiments.PipelineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(base.Render())

	top, err := experiments.TopFeatures(corpus, features.SetKeyword, 15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(experiments.RenderTopFeatures(top, features.SetKeyword))

	res, err := experiments.LiveModelTest(corpus, live.Scripts, 5000, *seed, experiments.PipelineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Render())

	section("Paper vs measured")
	summary := lab.Collect(retro, live, lab.Fig7(0), rows3, res)
	fmt.Println(experiments.RenderComparison(experiments.PaperComparison(summary, lab.Scale())))

	fmt.Printf("report complete in %s\n", time.Since(started).Round(time.Second))
}

// runLive builds the serving-run dashboard from spill files and/or a live
// /admin/analytics snapshot and prints it. Returns the exit code.
func runLive(spillDir, liveURL string, topK int) int {
	if spillDir == "" && liveURL == "" {
		fmt.Fprintln(os.Stderr, "adwars-report: -live needs -spill DIR and/or -url http://HOST:PORT")
		return 2
	}
	var rows []analytics.Row
	if spillDir != "" {
		spilled, err := analytics.ReadSpillDir(spillDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "adwars-report: spill: %v\n", err)
			return 1
		}
		rows = append(rows, spilled...)
		fmt.Fprintf(os.Stderr, "adwars-report: %d rows from spill %s\n", len(spilled), spillDir)
	}
	if liveURL != "" {
		snap, err := fetchAnalyticsSnapshot(liveURL)
		if err != nil {
			fmt.Fprintf(os.Stderr, "adwars-report: live snapshot: %v\n", err)
			return 1
		}
		liveRows := analytics.RowsFromSnapshot(snap)
		rows = append(rows, liveRows...)
		fmt.Fprintf(os.Stderr, "adwars-report: %d rows from %s (%d in-memory buckets)\n",
			len(liveRows), liveURL, snap.AggBuckets)
	}
	fmt.Print(analytics.BuildReport(rows).Render(topK))
	return 0
}

// fetchAnalyticsSnapshot reads a running server's /admin/analytics.
func fetchAnalyticsSnapshot(base string) (*analytics.Snapshot, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(base + "/admin/analytics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /admin/analytics: status %d (server not running -analytics?)", resp.StatusCode)
	}
	var snap analytics.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	if !snap.Enabled {
		return nil, fmt.Errorf("analytics disabled on server")
	}
	return &snap, nil
}
