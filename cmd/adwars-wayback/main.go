// Command adwars-wayback runs the §4.1–4.2 retrospective measurement:
// monthly Wayback-style crawls of the top-N, replayed against historic
// filter list versions. It prints Figure 5 (missing snapshots), Figure 6
// (rule triggers over time), and Figure 7 (detection delay CDFs).
//
// The crawl engine is fault-tolerant: -fault-rate injects deterministic
// transient archive failures (rate limiting, timeouts, truncated bodies,
// outages) which retry/backoff and the circuit breaker absorb — the
// figures are identical to a zero-fault run with the same seed. With
// -checkpoint, completed site-months are journaled; a killed run restarted
// with -resume picks up where it stopped without refetching.
//
// Usage:
//
//	adwars-wayback [-scale N] [-seed S] [-stride M] [-workers W]
//	               [-shards K] [-linear-scan]
//	               [-fault-rate P] [-max-retries R]
//	               [-checkpoint FILE] [-resume]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"adwars/internal/crawler"
	"adwars/internal/experiments"
	"adwars/internal/simworld"
	"adwars/internal/wayback"
)

func main() {
	scale := flag.Int("scale", 10, "world shrink factor (1 = paper scale)")
	seed := flag.Int64("seed", 42, "deterministic seed")
	stride := flag.Int("stride", 1, "crawl every Mth month")
	workers := flag.Int("workers", 10, "parallel crawler instances")
	shards := flag.Int("shards", 0, "replay fan-out for per-site rule matching (0 = workers); any value renders identical figures")
	linearScan := flag.Bool("linear-scan", false, "bypass the keyword index and match every rule (slow reference baseline)")
	faultRate := flag.Float64("fault-rate", 0, "per-attempt transient archive failure probability (0 disables fault injection)")
	maxRetries := flag.Int("max-retries", 0, "attempts per archive request (0 = default)")
	checkpoint := flag.String("checkpoint", "", "journal completed site-months to this file")
	resume := flag.Bool("resume", false, "restore journaled site-months from -checkpoint instead of refetching")
	flag.Parse()

	if *resume && *checkpoint == "" {
		log.Fatal("-resume requires -checkpoint")
	}

	cfg := simworld.DefaultConfig(*seed)
	if *scale > 1 {
		cfg = simworld.Scaled(*seed, *scale)
	}
	fmt.Fprintf(os.Stderr, "building world (universe %d, seed %d)...\n", cfg.UniverseSize, *seed)
	lab := experiments.NewLab(cfg)

	var metrics crawler.Metrics
	retroCfg := experiments.RetroConfig{
		Months:         lab.RetroMonths(*stride),
		Workers:        *workers,
		Retry:          crawler.RetryPolicy{MaxAttempts: *maxRetries},
		CheckpointPath: *checkpoint,
		Resume:         *resume,
		Metrics:        &metrics,
		Shards:         *shards,
		LinearScan:     *linearScan,
	}
	if *faultRate > 0 {
		retroCfg.Faults = wayback.DefaultFaultConfig(*faultRate, *seed)
	}

	fmt.Fprintf(os.Stderr, "crawling %d months...\n", len(retroCfg.Months))
	retro, err := lab.RunRetrospective(context.Background(), retroCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(retro.RenderFig5())
	fmt.Println(retro.RenderFig6())
	fmt.Println(lab.Fig7(0).Render())
	fmt.Printf("corpus: %d anti-adblock scripts, %d benign scripts\n",
		len(retro.CorpusPos), len(retro.CorpusNeg))
	fmt.Fprintf(os.Stderr, "crawl: %s\n", metrics.Snapshot())
}
