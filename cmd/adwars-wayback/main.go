// Command adwars-wayback runs the §4.1–4.2 retrospective measurement:
// monthly Wayback-style crawls of the top-N, replayed against historic
// filter list versions. It prints Figure 5 (missing snapshots), Figure 6
// (rule triggers over time), and Figure 7 (detection delay CDFs).
//
// Usage:
//
//	adwars-wayback [-scale N] [-seed S] [-stride M] [-workers W]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"adwars/internal/experiments"
	"adwars/internal/simworld"
)

func main() {
	scale := flag.Int("scale", 10, "world shrink factor (1 = paper scale)")
	seed := flag.Int64("seed", 42, "deterministic seed")
	stride := flag.Int("stride", 1, "crawl every Mth month")
	workers := flag.Int("workers", 10, "parallel crawler instances")
	flag.Parse()

	cfg := simworld.DefaultConfig(*seed)
	if *scale > 1 {
		cfg = simworld.Scaled(*seed, *scale)
	}
	fmt.Fprintf(os.Stderr, "building world (universe %d, seed %d)...\n", cfg.UniverseSize, *seed)
	lab := experiments.NewLab(cfg)

	fmt.Fprintf(os.Stderr, "crawling %d months...\n", len(lab.RetroMonths(*stride)))
	retro, err := lab.RunRetrospective(context.Background(), experiments.RetroConfig{
		Months:  lab.RetroMonths(*stride),
		Workers: *workers,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(retro.RenderFig5())
	fmt.Println(retro.RenderFig6())
	fmt.Println(lab.Fig7(0).Render())
	fmt.Printf("corpus: %d anti-adblock scripts, %d benign scripts\n",
		len(retro.CorpusPos), len(retro.CorpusNeg))
}
