// Command adwars-ctl is the fleet snapshot control plane: it pushes
// artifact-sealed model/lists snapshots through a fleet of adwars-serve
// replicas in stages — canary first, then everyone — watching each
// replica's /healthz and reload_rejected/reload_errors counters, and
// automatically rolling every updated replica back to its last-good
// snapshot when a stage rejects or degrades.
//
// Usage:
//
//	adwars-ctl -replicas host:port,host:port,... -status
//	adwars-ctl -replicas ... -push-lists lists.json [-canary N] [-bake D] [-watch D]
//	adwars-ctl -replicas ... -push-model model.json
//	adwars-ctl -seal payload.json -out sealed.json
//
// Exit codes: 0 = rolled out (or status/seal ok), 2 = artifact refused
// locally before any push, 3 = rollout pushed but rolled back, 1 = any
// other error.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"adwars/internal/artifact"
	"adwars/internal/fleet"
)

const (
	exitOK         = 0
	exitErr        = 1
	exitRefused    = 2
	exitRolledBack = 3
)

func main() {
	os.Exit(run())
}

func run() int {
	replicas := flag.String("replicas", "", "comma-separated replica base URLs or host:port list")
	status := flag.Bool("status", false, "print every replica's health and snapshot versions, then exit")
	pushLists := flag.String("push-lists", "", "roll out this sealed lists snapshot to the fleet")
	pushModel := flag.String("push-model", "", "roll out this sealed model snapshot to the fleet")
	canary := flag.Int("canary", 0, "canary stage size (0 = 1)")
	bake := flag.Duration("bake", 0, "canary observation window before the fleet stage (0 = default 500ms)")
	watch := flag.Duration("watch", 0, "post-rollout convergence deadline (0 = default 5s)")
	poll := flag.Duration("poll", 0, "observation polling cadence (0 = default 100ms)")
	timeout := flag.Duration("timeout", 0, "per-replica HTTP timeout (0 = default 3s)")
	seal := flag.String("seal", "", "seal this payload file with the artifact integrity trailer and exit")
	out := flag.String("out", "", "output path for -seal")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("adwars-ctl: ")

	if *seal != "" {
		if *out == "" {
			log.Print("-seal needs -out")
			return exitErr
		}
		payload, err := os.ReadFile(*seal)
		if err != nil {
			log.Print(err)
			return exitErr
		}
		sealed := artifact.Seal(payload)
		if err := artifact.WriteFileAtomic(*out, sealed, 0o644); err != nil {
			log.Print(err)
			return exitErr
		}
		version, _ := artifact.Version(sealed)
		fmt.Printf("sealed %s -> %s version=%s\n", *seal, *out, version)
		return exitOK
	}

	if *replicas == "" {
		log.Print("need -replicas (comma-separated replica addresses)")
		return exitErr
	}
	ctl := &fleet.Controller{
		Replicas: strings.Split(*replicas, ","),
		Canaries: *canary,
		Bake:     *bake,
		Watch:    *watch,
		Poll:     *poll,
		Timeout:  *timeout,
		Log:      os.Stderr,
	}
	ctx := context.Background()

	if *status {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(ctl.Status(ctx)); err != nil {
			log.Print(err)
			return exitErr
		}
		return exitOK
	}

	kind, path := "", ""
	switch {
	case *pushLists != "" && *pushModel != "":
		log.Print("use one of -push-lists or -push-model per invocation")
		return exitErr
	case *pushLists != "":
		kind, path = "lists", *pushLists
	case *pushModel != "":
		kind, path = "model", *pushModel
	default:
		log.Print("nothing to do: need -status, -push-lists, -push-model, or -seal")
		return exitErr
	}

	data, err := os.ReadFile(path)
	if err != nil {
		log.Print(err)
		return exitErr
	}
	start := time.Now()
	res, err := ctl.Rollout(ctx, kind, data)
	switch {
	case errors.Is(err, fleet.ErrBadArtifact):
		log.Printf("refused locally, nothing pushed: %v", err)
		return exitRefused
	case errors.Is(err, fleet.ErrRolledBack):
		log.Printf("rolled back: %s", res.Reason)
		return exitRolledBack
	case err != nil:
		log.Print(err)
		return exitErr
	}
	fmt.Printf("rolled out %s version=%s to %d replica(s) (%d canary) in %v\n",
		res.Kind, res.Version, len(res.Updated), len(res.Canaries), time.Since(start).Round(time.Millisecond))
	return exitOK
}
