// Command adwars-live runs the §4.3 live-web measurement: crawl the
// ranked universe at the live date (April 2017) and match against the
// most recent filter list versions.
//
// Usage:
//
//	adwars-live [-scale N] [-seed S] [-workers W] [-shards K]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"adwars/internal/crawler"
	"adwars/internal/experiments"
	"adwars/internal/simworld"
)

func main() {
	scale := flag.Int("scale", 10, "world shrink factor (1 = paper scale)")
	seed := flag.Int64("seed", 42, "deterministic seed")
	workers := flag.Int("workers", 10, "parallel crawler instances")
	shards := flag.Int("shards", 0, "replay fan-out for per-site rule matching (0 = workers)")
	flag.Parse()

	cfg := simworld.DefaultConfig(*seed)
	if *scale > 1 {
		cfg = simworld.Scaled(*seed, *scale)
	}
	fmt.Fprintf(os.Stderr, "building world (universe %d, seed %d)...\n", cfg.UniverseSize, *seed)
	lab := experiments.NewLab(cfg)

	var metrics crawler.Metrics
	res, err := lab.RunLive(context.Background(), experiments.LiveConfig{Workers: *workers, Shards: *shards, Metrics: &metrics})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Render())
	fmt.Fprintf(os.Stderr, "crawl: %s\n", metrics.Snapshot())
}
