// Command adwars-lists runs the §3 filter-list analyses: the temporal
// evolution of each list (Figure 1), the rank and category distributions
// of listed domains (Table 1, Figure 2), the exception/overlap comparison
// (§3.3), the cross-list addition lag (Figure 3), and the dead-rule
// fraction (the share of rules that never fire under a live replay — the
// observation behind hot/cold tier compaction).
//
// Usage:
//
//	adwars-lists [-scale N] [-seed S]
//
// -scale shrinks the world by N× (1 = paper scale, slow; 20 = quick).
// -save-snapshot PATH freezes the latest version of the three anti-adblock
// filter lists as a versioned snapshot for adwars-serve; by default the
// snapshot embeds each list's compiled match automaton (schema v3) so
// loaders attach it instead of recompiling — -compile=false writes the
// JSON-only v2 form. To go further and split each automaton into
// usage-driven hot/cold tiers (schema v4), serve the v3 snapshot, collect
// traffic, and feed the /admin/usage dump to adwars-compact.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"adwars/internal/abp"
	"adwars/internal/experiments"
	"adwars/internal/listgen"
	"adwars/internal/simworld"
)

func main() {
	scale := flag.Int("scale", 10, "world shrink factor (1 = paper scale)")
	seed := flag.Int64("seed", 42, "deterministic seed")
	dump := flag.String("dump", "", "directory to write the generated filter lists as .txt files")
	saveSnapshot := flag.String("save-snapshot", "", "write the latest compiled lists as a serving snapshot to this path")
	compile := flag.Bool("compile", true, "embed compiled match automata in the snapshot (schema v3); false writes JSON-only v2")
	label := flag.String("label", "", "override the snapshot label (default \"seed S scale N\"); distinct labels give distinct snapshot versions for staged rollouts")
	flag.Parse()

	cfg := simworld.DefaultConfig(*seed)
	if *scale > 1 {
		cfg = simworld.Scaled(*seed, *scale)
	}
	fmt.Fprintf(os.Stderr, "building world (universe %d, seed %d)...\n", cfg.UniverseSize, *seed)
	lab := experiments.NewLab(cfg)

	if *saveSnapshot != "" {
		snapLabel := *label
		if snapLabel == "" {
			snapLabel = fmt.Sprintf("seed %d scale %d", *seed, *scale)
		}
		snap := &abp.ListsSnapshot{
			Label: snapLabel,
			Lists: []*abp.List{
				lab.Lists.AAK.LatestList(),
				lab.Lists.EasyListAA.LatestList(),
				lab.Lists.AWRL.LatestList(),
			},
		}
		save := abp.SaveListsSnapshot
		kind := "lists snapshot"
		if *compile {
			save = abp.SaveListsSnapshotCompiled
			kind = "compiled lists snapshot"
		}
		if err := save(*saveSnapshot, snap); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s %s (%d lists, %d rules)\n",
			kind, *saveSnapshot, len(snap.Lists), snap.Rules())
	}

	fmt.Println(experiments.Fig1(lab.Lists.AAK, lab.World.Cfg.End).Render())
	fmt.Println(experiments.Fig1(lab.Lists.AWRL, lab.World.Cfg.End).Render())
	fmt.Println(experiments.Fig1(lab.Lists.EasyListAA, lab.World.Cfg.End).Render())
	fmt.Println(lab.Table1().Render())
	fmt.Println(lab.Fig2().Render())
	fmt.Println(lab.Overlap().Render())
	fmt.Println(experiments.RenderSharedRules(lab.SharedRuleExhibit(4)))
	fmt.Println(lab.Fig3().Render())
	fmt.Println(lab.DeadRules(0).Render())

	if *dump != "" {
		if err := os.MkdirAll(*dump, 0o755); err != nil {
			log.Fatal(err)
		}
		for file, h := range map[string]*abp.History{
			"anti-adblock-killer.txt":     lab.Lists.AAK,
			"easylist-antiadblock.txt":    lab.Lists.EasyListAA,
			"adblock-warning-removal.txt": lab.Lists.AWRL,
		} {
			path := filepath.Join(*dump, file)
			if err := os.WriteFile(path, []byte(listgen.RenderLatest(h)), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
}
