package antiadblock

import (
	"fmt"
	"math/rand"
)

// BenignKind enumerates the non-anti-adblock script families of the
// synthetic web; they are the negative class of §5's training corpus.
type BenignKind int

const (
	// BenignUILibrary is a jQuery-style DOM utility.
	BenignUILibrary BenignKind = iota
	// BenignAnalytics is a page-view beacon.
	BenignAnalytics
	// BenignCarousel is an image slider widget.
	BenignCarousel
	// BenignFormValidation validates form fields.
	BenignFormValidation
	// BenignSocialWidget injects share buttons.
	BenignSocialWidget
	// BenignLazyLoader defers image loading.
	BenignLazyLoader
	// BenignCookieConsent shows a consent banner.
	BenignCookieConsent
	// BenignAdViewability measures whether ads are actually visible —
	// it probes the same element geometry an HTML bait does, making it
	// the classic false-positive source.
	BenignAdViewability
	// BenignScriptLoader loads a CDN script with an onerror fallback —
	// the same injection-plus-error-hook shape as an HTTP bait.
	BenignScriptLoader
	// BenignModal is an overlay dialog library: hidden divs, display
	// toggles, getComputedStyle checks.
	BenignModal
	// BenignThemeBundle is a site bundle (theme/plugin build) that ships
	// a dormant adblock detector the site never enables. No bait request
	// ever fires, so filter lists never flag the site — but a static
	// classifier sees detector code and (correctly) raises it. This is
	// the dominant "false positive" source of §5's evaluation.
	BenignThemeBundle
	numBenignKinds
)

// BenignKinds lists every benign script family.
func BenignKinds() []BenignKind {
	out := make([]BenignKind, numBenignKinds)
	for i := range out {
		out[i] = BenignKind(i)
	}
	return out
}

// BenignScript generates a benign script of the given kind with randomized
// identifiers/literals. Some families intentionally share API surface with
// anti-adblockers (DOM creation, styles, cookies) so the classifier faces
// realistic confusable negatives — the source of the paper's 3–9% FP rates.
func BenignScript(kind BenignKind, rng *rand.Rand, opt GenOptions) string {
	var src string
	switch kind {
	case BenignUILibrary:
		ns := randIdent(rng, "util")
		src = fmt.Sprintf(`
var %[1]s = {};
%[1]s.byId = function (id) { return document.getElementById(id); };
%[1]s.each = function (list, fn) {
  for (var i = 0; i < list.length; i++) { fn(list[i], i); }
};
%[1]s.addClass = function (el, cls) {
  if (el.className.indexOf(cls) < 0) { el.className = el.className + ' ' + cls; }
};
%[1]s.ready = function (fn) {
  if (document.readyState != 'loading') { fn(); }
  else { document.addEventListener('DOMContentLoaded', fn); }
};
`, ns)
	case BenignAnalytics:
		fn := randIdent(rng, "track")
		acct := rng.Intn(99999)
		src = fmt.Sprintf(`
var %[1]s = function (event, value) {
  var img = new Image();
  img.src = '/collect?a=%[2]d&e=' + encodeURIComponent(event) +
    '&v=' + encodeURIComponent(value) + '&t=' + new Date().getTime() +
    '&r=' + encodeURIComponent(document.referrer);
};
%[1]s('pageview', window.location.pathname);
window.addEventListener('beforeunload', function () { %[1]s('leave', '1'); });
`, fn, acct)
	case BenignCarousel:
		cls := randIdent(rng, "slider")
		ms := 2000 + 500*rng.Intn(8)
		src = fmt.Sprintf(`
function %[1]s(container) {
  var slides = container.children;
  var current = 0;
  function show(i) {
    for (var j = 0; j < slides.length; j++) {
      slides[j].style.display = (j == i) ? 'block' : 'none';
    }
  }
  show(0);
  setInterval(function () {
    current = (current + 1) %% slides.length;
    show(current);
  }, %[2]d);
}
var carousels = document.getElementsByClassName('carousel');
for (var ci = 0; ci < carousels.length; ci++) { %[1]s(carousels[ci]); }
`, cls, ms)
	case BenignFormValidation:
		fn := randIdent(rng, "validate")
		src = fmt.Sprintf(`
function %[1]s(form) {
  var ok = true;
  var fields = form.getElementsByTagName('input');
  for (var i = 0; i < fields.length; i++) {
    var f = fields[i];
    if (f.getAttribute('required') !== null && f.value === '') {
      f.style.borderColor = 'red';
      ok = false;
    }
    if (f.getAttribute('type') === 'email' && f.value.indexOf('@') < 0) {
      ok = false;
    }
  }
  return ok;
}
`, fn)
	case BenignSocialWidget:
		fn := randIdent(rng, "share")
		src = fmt.Sprintf(`
var %[1]s = function (network) {
  var url = encodeURIComponent(window.location.href);
  var title = encodeURIComponent(document.title);
  var popup = 'https://social.example/' + network + '?u=' + url + '&t=' + title;
  window.open(popup, 'share', 'width=600,height=400');
};
var buttons = document.getElementsByClassName('share-btn');
for (var i = 0; i < buttons.length; i++) {
  buttons[i].addEventListener('click', function (e) {
    %[1]s(e.target.getAttribute('data-network'));
  });
}
`, fn)
	case BenignLazyLoader:
		fn := randIdent(rng, "lazy")
		src = fmt.Sprintf(`
function %[1]s() {
  var imgs = document.querySelectorAll('img[data-src]');
  for (var i = 0; i < imgs.length; i++) {
    var rect = imgs[i].getBoundingClientRect();
    if (rect.top < window.innerHeight + 200) {
      imgs[i].src = imgs[i].getAttribute('data-src');
      imgs[i].removeAttribute('data-src');
    }
  }
}
window.addEventListener('scroll', %[1]s);
%[1]s();
`, fn)
	case BenignCookieConsent:
		fn := randIdent(rng, "consent")
		cookie := "cc_" + randIdent(rng, "seen")
		src = fmt.Sprintf(`
var %[1]s = function () {
  if (document.cookie.indexOf('%[2]s=1') >= 0) { return; }
  var bar = document.createElement('div');
  bar.setAttribute('class', 'cookie-consent');
  bar.style.position = 'fixed';
  bar.style.bottom = '0';
  var btn = document.createElement('button');
  btn.addEventListener('click', function () {
    var d = new Date();
    d.setTime(d.getTime() + 365 * 24 * 60 * 60 * 1000);
    document.cookie = '%[2]s=1; expires=' + d.toUTCString() + '; path=/';
    document.body.removeChild(bar);
  });
  bar.appendChild(btn);
  document.body.appendChild(bar);
};
%[1]s();
`, fn, cookie)
	case BenignAdViewability:
		fn := randIdent(rng, "viewable")
		threshold := 30 + 10*rng.Intn(5)
		src = fmt.Sprintf(`
function %[1]s(slot) {
  var visible = true;
  if (slot.offsetParent === null || slot.offsetHeight == 0 || slot.offsetWidth == 0) {
    visible = false;
  }
  var rect = slot.getBoundingClientRect();
  if (rect.top > window.innerHeight || rect.bottom < 0) {
    visible = false;
  }
  var img = new Image();
  img.src = '/viewability?slot=' + slot.id + '&v=' + (visible ? 1 : 0) +
    '&h=' + slot.clientHeight + '&w=' + slot.clientWidth;
  return visible;
}
setTimeout(function () {
  var slots = document.getElementsByClassName('ad-slot');
  for (var i = 0; i < slots.length; i++) { %[1]s(slots[i]); }
}, %[2]d0);
`, fn, threshold)
	case BenignScriptLoader:
		fn := randIdent(rng, "loadLib")
		lib := []string{"jquery", "react", "vue", "d3", "lodash"}[rng.Intn(5)]
		src = fmt.Sprintf(`
var %[1]s = function (primary, fallback, done) {
  var s = document.createElement('script');
  s.setAttribute('async', true);
  s.setAttribute('src', primary);
  s.setAttribute('onerror', "window.%[1]sFailed(true);");
  s.setAttribute('onload', "window.%[1]sFailed(false);");
  window.%[1]sFailed = function (failed) {
    if (failed) {
      var f = document.createElement('script');
      f.src = fallback;
      document.getElementsByTagName('head')[0].appendChild(f);
    }
    if (done) { done(failed); }
  };
  document.getElementsByTagName('head')[0].appendChild(s);
};
%[1]s('//cdn.example/%[2]s.min.js', '/local/%[2]s.min.js', null);
`, fn, lib)
	case BenignModal:
		fn := randIdent(rng, "modal")
		src = fmt.Sprintf(`
function %[1]s(id) {
  this.el = document.getElementById(id);
  this.backdrop = document.createElement('div');
  this.backdrop.setAttribute('class', 'modal-backdrop');
  this.backdrop.setAttribute('style', 'position: fixed; top: 0; left: 0; width: 100%%; height: 100%%;');
}
%[1]s.prototype.open = function () {
  document.body.appendChild(this.backdrop);
  this.el.style.display = 'block';
  this.el.style.zIndex = '9000';
  var cs = window.getComputedStyle(this.el, null);
  if (cs && cs.visibility == 'hidden') {
    this.el.style.visibility = 'visible';
  }
};
%[1]s.prototype.close = function () {
  this.el.style.display = 'none';
  if (this.backdrop.parentNode !== null) {
    document.body.removeChild(this.backdrop);
  }
};
`, fn)
	case BenignThemeBundle:
		// A utility library plus an inert, never-invoked detector —
		// syntactically indistinguishable from the real thing.
		body := BenignScript(BenignUILibrary, rng, GenOptions{})
		detector := HTMLBaitScript("themeAdbNotice", rng, GenOptions{})
		src = body + "\nfunction initThemeAdbGuard() {\n" + detector + "\n}\n"
	default:
		src = "var noop = 1;\n"
	}
	return finish(src, rng, opt)
}

// RandomBenignScript picks a family at random and generates a script.
// Theme bundles with dormant detectors appear at half the weight of the
// other families (they are common, but not one-in-ten common).
func RandomBenignScript(rng *rand.Rand, opt GenOptions) string {
	kind := BenignKind(rng.Intn(int(numBenignKinds)))
	if kind == BenignThemeBundle && rng.Float64() < 0.5 {
		kind = BenignKind(rng.Intn(int(numBenignKinds - 1)))
	}
	return BenignScript(kind, rng, opt)
}
