package antiadblock

import (
	"encoding/base64"
	"fmt"
	"math/rand"
	"strings"
)

// GenOptions controls script generation.
type GenOptions struct {
	// PackProbability is the chance a generated script wraps itself in an
	// eval() payload, exercising the unpacker (§5, Unpacking Dynamic
	// JavaScript).
	PackProbability float64
	// Minify drops cosmetic whitespace.
	Minify bool
}

// identStyles vary how publishers name things; the ML keyword feature set
// must survive all of them.
func randIdent(rng *rand.Rand, hint string) string {
	switch rng.Intn(4) {
	case 0: // hex-obfuscated
		return fmt.Sprintf("_0x%04x", rng.Intn(0xffff))
	case 1: // camelCase with hint
		return hint + suffixes[rng.Intn(len(suffixes))]
	case 2: // short cryptic
		return string(rune('a'+rng.Intn(26))) + string(rune('a'+rng.Intn(26))) +
			fmt.Sprintf("%d", rng.Intn(100))
	default: // underscore style
		return "_" + hint + fmt.Sprintf("%d", rng.Intn(1000))
	}
}

var suffixes = []string{"Check", "Probe", "State", "Flag", "Helper", "Mgr", "Ctl", "X"}

// baitClassPools are ad-like class names that blocking rules target; real
// detectors copy them from EasyList so adblockers will hide the bait.
var baitClassPools = []string{
	"ad-banner", "pub_300x250", "textads", "ad-placement", "adsbox",
	"banner_ad", "sponsor-box", "ad-unit", "adzone", "square-ad",
}

// noticeMessages are the warning texts publishers show adblock users.
var noticeMessages = []string{
	"Please disable your adblocker to continue",
	"We noticed you are using an ad blocker",
	"Support us by whitelisting our site",
	"Ads help us keep the lights on - please disable your blocker",
	"Adblock detected! Turn it off to view this content",
}

// HTTPBaitScript renders a Code 4-style detector: inject a bait script
// tag, flip a cookie/flag in onerror/onload, and reveal the notice when the
// bait failed to load.
func HTTPBaitScript(baitURL, noticeID string, rng *rand.Rand, opt GenOptions) string {
	setter := randIdent(rng, "setAdblocker")
	flag := randIdent(rng, "adblock")
	el := randIdent(rng, "script")
	cookieName := "__" + strings.ToLower(randIdent(rng, "abd"))
	days := 7 + rng.Intn(60)

	src := fmt.Sprintf(`
var %[1]s = function (%[2]s) {
  var d = new Date();
  d.setTime(d.getTime() + 60 * 60 * 24 * %[3]d * 1000);
  document.cookie = "%[4]s=" + (%[2]s ? "true" : "false") +
    "; expires=" + d.toUTCString() + "; path=/";
  if (%[2]s) {
    var notice = document.getElementById("%[5]s");
    if (notice !== null) {
      notice.style.display = "block";
      notice.style.zIndex = "10000";
    }
  }
};
var %[6]s = document.createElement("script");
%[6]s.setAttribute("async", true);
%[6]s.setAttribute("src", "%[7]s");
%[6]s.setAttribute("onerror", "%[1]s(true);");
%[6]s.setAttribute("onload", "%[1]s(false);");
document.getElementsByTagName("head")[0].appendChild(%[6]s);
`, setter, flag, days, cookieName, noticeID, el, baitURL)
	return finish(src, rng, opt)
}

// HTMLBaitScript renders a Code 5-style detector: create an ad-like div,
// probe its geometry, and reveal the notice when an adblocker hid it.
func HTMLBaitScript(noticeID string, rng *rand.Rand, opt GenOptions) string {
	proto := randIdent(rng, "Blocker")
	create := "_" + randIdent(rng, "creatBait")
	check := "_" + randIdent(rng, "checkBait")
	baitVar := randIdent(rng, "bait")
	detected := randIdent(rng, "detected")
	baitClass := baitClassPools[rng.Intn(len(baitClassPools))]
	loopMs := 50 * (1 + rng.Intn(10))

	// Publishers ship different builds of the detector: the set of
	// geometry probes and the computed-style fallback vary per site.
	probes := []string{
		"offsetParent", "offsetHeight", "offsetLeft", "offsetTop",
		"offsetWidth", "clientHeight", "clientWidth",
	}
	rng.Shuffle(len(probes), func(i, j int) { probes[i], probes[j] = probes[j], probes[i] })
	nProbes := 3 + rng.Intn(len(probes)-2)
	touchLines, checkLines := "", ""
	for _, pr := range probes[:nProbes] {
		touchLines += "  this._var.bait." + pr + ";\n"
		if pr == "offsetParent" {
			checkLines += "      || this._var.bait.offsetParent === null\n"
		} else {
			checkLines += "      || this._var.bait." + pr + " == 0\n"
		}
	}
	abpCheck := ""
	if rng.Float64() < 0.7 {
		abpCheck = "      || window.document.body.getAttribute('abp') !== null\n"
	}
	styleCheck := ""
	if rng.Float64() < 0.65 {
		styleCheck = fmt.Sprintf(`
  if (window.getComputedStyle !== undefined) {
    var baitTemp = window.getComputedStyle(this._var.bait, null);
    if (baitTemp && (baitTemp.display == 'none' || baitTemp.visibility == 'hidden')) {
      %s = true;
    }
  }`, detected)
	}

	src := fmt.Sprintf(`
function %[1]s(options) {
  this._options = options || {};
  this._var = { bait: null, loop: null };
}
%[1]s.prototype.%[2]s = function () {
  var %[3]s = document.createElement('div');
  %[3]s.setAttribute('class', '%[4]s');
  %[3]s.setAttribute('style', 'width: 1px !important; height: 1px !important; position: absolute !important; left: -10000px !important; top: -1000px !important;');
  this._var.bait = window.document.body.appendChild(%[3]s);
%[10]s};
%[1]s.prototype.%[5]s = function (loop) {
  var %[6]s = false;
  if (false
%[11]s%[12]s  ) {
    %[6]s = true;
  }%[13]s
  if (%[6]s === true) {
    var notice = document.getElementById('%[7]s');
    if (notice !== null) {
      notice.style.display = 'block';
    }
  }
  return %[6]s;
};
var %[8]s = new %[1]s({ checkOnLoad: true, resetOnEnd: true, loopCheckTime: %[9]d });
%[8]s.%[2]s();
setTimeout(function () { %[8]s.%[5]s(true); }, %[9]d);
`, proto, create, baitVar, baitClass, check, detected, noticeID,
		randIdent(rng, "blocker"), loopMs,
		touchLines, abpCheck, checkLines, styleCheck)
	return finish(src, rng, opt)
}

// ReferenceBlockAdBlock is the canonical BlockAdBlock detector of Code 5
// in the paper, with every geometry probe present. Table 2 extracts its
// features; it is also a stable fixture for tests and docs.
const ReferenceBlockAdBlock = `
BlockAdBlock.prototype._creatBait = function () {
  var bait = document.createElement('div');
  bait.setAttribute('class', this._options.baitClass);
  bait.setAttribute('style', 'hidden');
  this._var.bait = window.document.body.appendChild(bait);
  this._var.bait.offsetParent;
  this._var.bait.offsetHeight;
  this._var.bait.offsetLeft;
  this._var.bait.offsetTop;
  this._var.bait.offsetWidth;
  this._var.bait.clientHeight;
  this._var.bait.clientWidth;
  if (this._options.debug === true) {
    this._log('_creatBait', 'Bait has been created');
  }
};
BlockAdBlock.prototype._checkBait = function (loop) {
  var detected = false;
  if (window.document.body.getAttribute('abp') !== null
      || this._var.bait.offsetParent === null
      || this._var.bait.offsetHeight == 0
      || this._var.bait.offsetLeft == 0
      || this._var.bait.offsetTop == 0
      || this._var.bait.offsetWidth == 0
      || this._var.bait.clientHeight == 0
      || this._var.bait.clientWidth == 0) {
    detected = true;
  }
};
`

// CanRunAdsScript renders the Code 8 pattern: a first-party bait script
// (ads.js) defines canRunAds; the page script checks it.
func CanRunAdsScript(noticeID string, rng *rand.Rand, opt GenOptions) string {
	status := randIdent(rng, "adblockStatus")
	src := fmt.Sprintf(`
var %[1]s = 'inactive';
if (window.canRunAds === undefined) {
  %[1]s = 'active';
  var notice = document.getElementById('%[2]s');
  if (notice !== null) {
    notice.style.display = 'block';
  }
}
`, status, noticeID)
	return finish(src, rng, opt)
}

// finish applies optional packing/minification. Most packed scripts use
// forms the static unpacker recovers; a small share uses runtime-only
// decoding (base64 via atob) that static analysis cannot see through —
// the §5 false-negative source that keeps TP rates below 100%.
func finish(src string, rng *rand.Rand, opt GenOptions) string {
	if opt.Minify {
		src = minify(src)
	}
	if rng.Float64() < opt.PackProbability {
		if rng.Float64() < 0.10 {
			return packOpaque(src)
		}
		return packEval(src)
	}
	return strings.TrimSpace(src) + "\n"
}

// minify strips leading indentation and blank lines (enough to change the
// byte stream without breaking the parser).
func minify(src string) string {
	lines := strings.Split(src, "\n")
	out := make([]string, 0, len(lines))
	for _, l := range lines {
		l = strings.TrimSpace(l)
		if l != "" {
			out = append(out, l)
		}
	}
	return strings.Join(out, " ")
}

// packEval wraps source in eval("…"), the simplest of the dynamic-code
// shapes Unpack handles.
func packEval(src string) string {
	var b strings.Builder
	b.WriteString(`eval("`)
	for i := 0; i < len(src); i++ {
		switch c := src[i]; c {
		case '"', '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteString(`");`)
	return b.String()
}

// packOpaque wraps source in a base64 eval that only a runtime can
// decode; static analysis sees eval(window.atob("…")) and nothing else.
func packOpaque(src string) string {
	return `eval(window.atob("` + base64.StdEncoding.EncodeToString([]byte(src)) + `"));`
}

// VendorScript generates the JavaScript a vendor serves for a deployment.
func VendorScript(v *Vendor, baitURL, noticeID string, rng *rand.Rand, opt GenOptions) string {
	switch v.Technique {
	case TechHTTPBait:
		return HTTPBaitScript(baitURL, noticeID, rng, opt)
	case TechHTMLBait:
		return HTMLBaitScript(noticeID, rng, opt)
	default:
		return HTTPBaitScript(baitURL, noticeID, rng, opt) +
			HTMLBaitScript(noticeID, rng, opt)
	}
}
