package antiadblock

import (
	"fmt"
	"math/rand"
	"time"

	"adwars/internal/abp"
	"adwars/internal/web"
)

// Deployment records one site adopting anti-adblocking: the ground truth
// the retrospective measurement (§4) and the filter-list curation model
// (listgen) both consume.
type Deployment struct {
	// SiteDomain is the publisher's domain.
	SiteDomain string
	// Vendor supplies the detection script.
	Vendor *Vendor
	// Start is when the anti-adblocker went live on the site.
	Start time.Time
	// End is when the site removed it (zero = still deployed).
	End time.Time
	// NoticeID is the DOM id of the warning overlay the script reveals;
	// HTML element filter rules target it.
	NoticeID string
	// BaitPath is the site-local bait request path (HTTP bait technique).
	BaitPath string
	// ScriptURL is where the detector script is loaded from.
	ScriptURL string
}

// noticeIDPool mirrors the ids real anti-adblock notices use
// (cf. "noticeMain" on smashboards.com, "ra9e"/"notice" on yocast.tv).
var noticeIDPool = []string{
	"noticeMain", "adblock-notice", "abWarning", "blockerOverlay",
	"disableAdblockMsg", "notice", "adbDetected", "pleaseWhitelist",
	"ra9e", "abMsgBox", "adblockModal", "supportUsOverlay",
}

var baitPathPool = []string{
	"/ads.js", "/advertising.js", "/adsbygoogle.js", "/js/ads.js",
	"/assets/ad-loader.js", "/static/showads.js", "/banner/ads.js",
}

// variantScriptNames are the self-hosted detector filenames publishers
// invent when they hand-roll or rename their anti-adblock script; broad
// path rules miss these.
var variantScriptNames = []string{
	"ab-shield", "adcheck", "blockdetect", "noadblock", "abwatch",
	"sponsor-guard", "revenue-keeper",
}

// NewDeployment creates a deployment of vendor v on a site starting at t.
// The rng individualizes the notice id and bait path per site. First-party
// "Custom" detectors usually live at a site-specific path rather than the
// canonical one, which is why broad path rules cover only a fraction of
// them (§3.3's staleness/coverage gap).
func NewDeployment(siteDomain string, v *Vendor, start time.Time, rng *rand.Rand) *Deployment {
	notice := noticeIDPool[rng.Intn(len(noticeIDPool))]
	if rng.Float64() < 0.4 {
		notice = fmt.Sprintf("%s%d", notice, rng.Intn(100))
	}
	scriptURL := v.ScriptURL(siteDomain)
	if v.Name == "Custom" && rng.Float64() < 0.55 {
		scriptURL = fmt.Sprintf("http://%s/js/%s%d.js", siteDomain,
			variantScriptNames[rng.Intn(len(variantScriptNames))], rng.Intn(100))
	}
	return &Deployment{
		SiteDomain: siteDomain,
		Vendor:     v,
		Start:      start,
		NoticeID:   notice,
		BaitPath:   baitPathPool[rng.Intn(len(baitPathPool))],
		ScriptURL:  scriptURL,
	}
}

// CanonicalScript reports whether the deployment loads the vendor's
// canonical script URL (generic path rules only match canonical
// deployments).
func (d *Deployment) CanonicalScript() bool {
	return d.ScriptURL == d.Vendor.ScriptURL(d.SiteDomain)
}

// ActiveAt reports whether the deployment is live at time t.
func (d *Deployment) ActiveAt(t time.Time) bool {
	if t.Before(d.Start) {
		return false
	}
	return d.End.IsZero() || t.Before(d.End)
}

// BaitURL returns the absolute URL of the site-local HTTP bait.
func (d *Deployment) BaitURL() string {
	return "http://" + d.SiteDomain + d.BaitPath
}

// Apply injects the deployment into a page: the detector script tag and
// request, the HTTP bait request (when the technique uses one), the hidden
// warning overlay element, and — for HTML bait — the bait div the script
// creates at runtime. The rng drives script-body randomization and must be
// seeded per site for stable page content across re-crawls.
func (d *Deployment) Apply(p *web.Page, rng *rand.Rand, opt GenOptions) {
	head, body := p.Head(), p.Body()
	if head == nil || body == nil {
		return
	}

	// Warning overlay, hidden until the detector fires.
	overlay := web.NewElement("div", d.NoticeID, "adblock-wall")
	overlay.SetStyle("display", "none")
	overlay.Text = noticeMessages[rng.Intn(len(noticeMessages))]
	body.Append(overlay)

	// Detector script element + its network request.
	script := web.NewElement("script", "")
	script.SetAttr("src", d.ScriptURL)
	head.Append(script)
	p.AddRequest(d.ScriptURL, abp.TypeScript)
	p.Scripts = append(p.Scripts, web.Script{
		URL:         d.ScriptURL,
		Source:      VendorScript(d.Vendor, d.BaitURL(), d.NoticeID, rng, opt),
		AntiAdblock: true,
	})

	if d.Vendor.Technique.UsesHTTP() {
		// The bait request the detector issues.
		p.AddRequest(d.BaitURL(), abp.TypeScript)
	}
	if d.Vendor.Technique.UsesHTML() {
		// The bait div the detector creates; archived snapshots contain
		// it because the crawler saves post-load DOM.
		bait := web.NewElement("div", "", baitClassPools[rng.Intn(len(baitClassPools))])
		bait.SetStyle("position", "absolute")
		bait.SetStyle("left", "-10000px")
		body.Append(bait)
	}
}
