package antiadblock

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"adwars/internal/features"
	"adwars/internal/jsast"
	"adwars/internal/web"
)

func TestCatalogSanity(t *testing.T) {
	if len(Catalog) < 5 {
		t.Fatalf("catalog has %d vendors", len(Catalog))
	}
	total := 0.0
	for _, v := range Catalog {
		if v.Name == "" || v.ScriptPath == "" {
			t.Errorf("vendor %+v incomplete", v)
		}
		total += v.Share
	}
	if total < 0.99 || total > 1.01 {
		t.Errorf("vendor shares sum to %v, want ~1", total)
	}
	if VendorByName("PageFair") == nil || VendorByName("BlockAdBlock") == nil {
		t.Error("paper-named vendors missing")
	}
	if VendorByName("nope") != nil {
		t.Error("unknown vendor should be nil")
	}
}

func TestVendorScriptURL(t *testing.T) {
	pf := VendorByName("PageFair")
	if got := pf.ScriptURL("news.com"); got != "http://pagefair.com/static/adblock_detection/js/d.min.js" {
		t.Fatalf("third-party URL = %q", got)
	}
	iab := VendorByName("IAB")
	if got := iab.ScriptURL("news.com"); got != "http://news.com/js/iab-adblock-check.js" {
		t.Fatalf("first-party URL = %q", got)
	}
	if pf.ThirdParty() == false || iab.ThirdParty() == true {
		t.Error("ThirdParty misreported")
	}
}

// Every generated script must parse with the project's own JS parser —
// the whole ML pipeline depends on it.
func TestGeneratedScriptsParse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	opt := GenOptions{PackProbability: 0.3}
	for i := 0; i < 50; i++ {
		for _, v := range Catalog {
			src := VendorScript(v, "http://x.com/ads.js", "noticeMain", rng, opt)
			if _, _, err := jsast.ParseAndUnpack(src); err != nil {
				t.Fatalf("vendor %s script does not parse: %v\n%s", v.Name, err, src)
			}
		}
	}
}

func TestBenignScriptsParse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 30; i++ {
		for _, k := range BenignKinds() {
			src := BenignScript(k, rng, GenOptions{Minify: i%2 == 0})
			if _, _, err := jsast.ParseAndUnpack(src); err != nil {
				t.Fatalf("benign kind %d does not parse: %v\n%s", k, err, src)
			}
		}
	}
}

func TestCanRunAdsScriptParses(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := CanRunAdsScript("notice1", rng, GenOptions{})
	prog, _, err := jsast.ParseAndUnpack(src)
	if err != nil {
		t.Fatal(err)
	}
	if prog == nil || len(prog.Body) == 0 {
		t.Fatal("empty program")
	}
}

func TestAntiAdblockScriptsCarryBaitFeatures(t *testing.T) {
	// Probe sets vary per site build; each script must carry several
	// geometry probes and the union across builds must cover them all.
	rng := rand.New(rand.NewSource(4))
	probes := []string{
		"Identifier:offsetParent", "Identifier:offsetHeight",
		"Identifier:offsetLeft", "Identifier:offsetTop",
		"Identifier:offsetWidth", "Identifier:clientHeight",
		"Identifier:clientWidth",
	}
	union := map[string]bool{}
	for i := 0; i < 20; i++ {
		src := HTMLBaitScript("noticeMain", rng, GenOptions{})
		fs, err := features.ExtractSource(src, features.SetKeyword)
		if err != nil {
			t.Fatal(err)
		}
		if !fs["Identifier:createElement"] {
			t.Error("HTML bait script missing createElement")
		}
		n := 0
		for _, p := range probes {
			if fs[p] {
				n++
				union[p] = true
			}
		}
		if n < 3 {
			t.Errorf("script %d carries only %d geometry probes", i, n)
		}
	}
	for _, p := range probes {
		if !union[p] {
			t.Errorf("probe %q never generated across builds", p)
		}
	}
}

func TestReferenceBlockAdBlockParses(t *testing.T) {
	fs, err := features.ExtractSource(ReferenceBlockAdBlock, features.SetAll)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"MemberExpression:BlockAdBlock", "Literal:abp",
		"Identifier:offsetHeight", "Identifier:clientWidth",
	} {
		if !fs[want] {
			t.Errorf("reference script missing %q", want)
		}
	}
}

func TestPackedScriptStillYieldsFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := HTMLBaitScript("noticeX", rng, GenOptions{PackProbability: 1})
	if !strings.HasPrefix(src, `eval("`) {
		t.Fatalf("script not packed: %.40q", src)
	}
	fs, err := features.ExtractSource(src, features.SetKeyword)
	if err != nil {
		t.Fatal(err)
	}
	if !fs["Identifier:offsetHeight"] {
		t.Error("unpacking lost the geometry-probe features")
	}
}

func TestScriptsRandomizedAcrossSites(t *testing.T) {
	a := HTMLBaitScript("notice", rand.New(rand.NewSource(10)), GenOptions{})
	b := HTMLBaitScript("notice", rand.New(rand.NewSource(11)), GenOptions{})
	if a == b {
		t.Fatal("scripts for different sites must differ")
	}
	// But same seed ⇒ identical (reproducible crawls).
	c := HTMLBaitScript("notice", rand.New(rand.NewSource(10)), GenOptions{})
	if a != c {
		t.Fatal("same seed must reproduce the same script")
	}
}

func TestDeploymentApply(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	v := VendorByName("PageFair")
	d := NewDeployment("dailynews.com", v, time.Date(2015, 3, 1, 0, 0, 0, 0, time.UTC), rng)
	p := web.NewPage("dailynews.com", "Daily News")
	d.Apply(p, rng, GenOptions{})

	if p.Root.Find(d.NoticeID) == nil {
		t.Fatal("warning overlay not injected")
	}
	foundScriptReq, foundBaitReq := false, false
	for _, r := range p.Requests {
		if r.URL == d.ScriptURL {
			foundScriptReq = true
		}
		if r.URL == d.BaitURL() {
			foundBaitReq = true
		}
	}
	if !foundScriptReq {
		t.Error("vendor script request missing")
	}
	if !foundBaitReq { // PageFair uses TechBoth
		t.Error("HTTP bait request missing")
	}
	if len(p.Scripts) != 1 || !p.Scripts[0].AntiAdblock {
		t.Fatalf("scripts = %+v", p.Scripts)
	}
}

func TestDeploymentActiveAt(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	start := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	d := NewDeployment("x.com", Catalog[0], start, rng)
	if d.ActiveAt(start.AddDate(0, -1, 0)) {
		t.Error("active before start")
	}
	if !d.ActiveAt(start) || !d.ActiveAt(start.AddDate(2, 0, 0)) {
		t.Error("open-ended deployment should stay active")
	}
	d.End = start.AddDate(1, 0, 0)
	if d.ActiveAt(start.AddDate(1, 6, 0)) {
		t.Error("active after end")
	}
}

func TestTechniqueString(t *testing.T) {
	if TechHTTPBait.String() != "http-bait" || TechHTMLBait.String() != "html-bait" ||
		TechBoth.String() != "http+html-bait" {
		t.Error("technique names wrong")
	}
}
