// Package antiadblock models the anti-adblocking ecosystem the paper
// measures: third-party vendors (PageFair, BlockAdBlock, Outbrain,
// Optimizely, Histats) and first-party community scripts, the HTTP and
// HTML bait techniques of §3.1, and the generation of real JavaScript
// anti-adblock scripts (and benign scripts) with per-site randomization.
// Generated scripts parse with internal/jsast and exercise the exact API
// surface Codes 4 and 5 of the paper show.
package antiadblock

import "time"

// Technique is the adblock-detection mechanism a script uses (§3.1).
type Technique int

const (
	// TechHTTPBait issues a bait HTTP request (e.g. advertising.js) and
	// watches for onerror — Code 4 of the paper.
	TechHTTPBait Technique = iota
	// TechHTMLBait creates a bait ad-like element and probes its CSS
	// geometry — Code 5 of the paper.
	TechHTMLBait
	// TechBoth combines the two.
	TechBoth
)

// String names the technique.
func (t Technique) String() string {
	switch t {
	case TechHTTPBait:
		return "http-bait"
	case TechHTMLBait:
		return "html-bait"
	default:
		return "http+html-bait"
	}
}

// UsesHTTP reports whether the technique includes an HTTP bait.
func (t Technique) UsesHTTP() bool { return t == TechHTTPBait || t == TechBoth }

// UsesHTML reports whether the technique includes an HTML bait.
func (t Technique) UsesHTML() bool { return t == TechHTMLBait || t == TechBoth }

// Vendor is one provider of anti-adblock scripts.
type Vendor struct {
	// Name identifies the vendor.
	Name string
	// Domain is the third-party host serving the script, or "" for
	// first-party (inline or same-origin) scripts.
	Domain string
	// ScriptPath is the path of the vendor's detector script.
	ScriptPath string
	// Technique is the detection mechanism the script implements.
	Technique Technique
	// Available is when the vendor's product entered the market; sites
	// cannot deploy it earlier.
	Available time.Time
	// Share weights how often publishers pick this vendor. The paper
	// finds >97% of detected sites use third-party vendor scripts.
	Share float64
}

// ThirdParty reports whether the vendor serves its script from its own
// domain.
func (v *Vendor) ThirdParty() bool { return v.Domain != "" }

// ScriptURL returns the URL a deployment on siteDomain loads the vendor
// script from.
func (v *Vendor) ScriptURL(siteDomain string) string {
	if v.ThirdParty() {
		return "http://" + v.Domain + v.ScriptPath
	}
	return "http://" + siteDomain + v.ScriptPath
}

func date(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

// Catalog is the vendor population of the synthetic web. Names and domains
// follow the vendors the paper names (§1, §4.2, §5: PageFair, Outbrain,
// BlockAdBlock, IAB, Optimizely, Histats, npttech); availability dates
// shape Figure 6's take-off after 2014.
var Catalog = []*Vendor{
	{
		Name: "PageFair", Domain: "pagefair.com",
		ScriptPath: "/static/adblock_detection/js/d.min.js",
		Technique:  TechBoth, Available: date(2012, 9, 1), Share: 0.22,
	},
	{
		Name: "BlockAdBlock", Domain: "blockadblock.com",
		ScriptPath: "/js/blockadblock.js",
		Technique:  TechHTMLBait, Available: date(2014, 1, 1), Share: 0.20,
	},
	{
		Name: "Outbrain", Domain: "outbrain.com",
		ScriptPath: "/utils/adblock/detector.js",
		Technique:  TechHTTPBait, Available: date(2013, 9, 1), Share: 0.12,
	},
	{
		Name: "Optimizely", Domain: "optimizely.com",
		ScriptPath: "/js/adblock-probe.js",
		Technique:  TechHTTPBait, Available: date(2014, 4, 1), Share: 0.16,
	},
	{
		Name: "Histats", Domain: "histats.com",
		ScriptPath: "/js15_as.js",
		Technique:  TechHTTPBait, Available: date(2014, 7, 1), Share: 0.14,
	},
	{
		Name: "NPTTech", Domain: "npttech.com",
		ScriptPath: "/advertising.js",
		Technique:  TechHTTPBait, Available: date(2014, 10, 1), Share: 0.08,
	},
	{
		Name: "IAB", Domain: "",
		ScriptPath: "/js/iab-adblock-check.js",
		Technique:  TechHTTPBait, Available: date(2015, 3, 1), Share: 0.06,
	},
	{
		Name: "Custom", Domain: "",
		ScriptPath: "/js/site-adblock.js",
		Technique:  TechBoth, Available: date(2012, 6, 1), Share: 0.02,
	},
}

// VendorByName looks a catalog vendor up; nil when absent.
func VendorByName(name string) *Vendor {
	for _, v := range Catalog {
		if v.Name == name {
			return v
		}
	}
	return nil
}
