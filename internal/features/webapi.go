package features

// webAPIKeywords enumerates JavaScript Web API names treated as "keywords"
// by the keyword feature set. The list covers the DOM, BOM, timing, storage,
// and string/number built-ins that anti-adblock baits exercise: element
// geometry probes (offsetHeight, clientWidth, …), script injection
// (createElement, setAttribute, appendChild), cookies, and event hooks —
// the API surface visible in Codes 4 and 5 of the paper.
var webAPIKeywords = map[string]bool{
	// Document / element access.
	"document": true, "window": true, "navigator": true, "screen": true,
	"location": true, "history": true, "body": true, "head": true,
	"documentElement": true, "getElementById": true,
	"getElementsByTagName": true, "getElementsByClassName": true,
	"querySelector": true, "querySelectorAll": true, "createElement": true,
	"createTextNode": true, "createEvent": true, "dispatchEvent": true,
	"write": true, "writeln": true, "title": true, "referrer": true,
	"domain": true, "URL": true, "origin": true, "readyState": true,
	"onreadystatechange": true, "currentScript": true,

	// Element tree and attributes.
	"appendChild": true, "removeChild": true, "insertBefore": true,
	"replaceChild": true, "cloneNode": true, "parentNode": true,
	"parentElement": true, "childNodes": true, "children": true,
	"firstChild": true, "lastChild": true, "nextSibling": true,
	"previousSibling": true, "setAttribute": true, "getAttribute": true,
	"removeAttribute": true, "hasAttribute": true, "attributes": true,
	"className": true, "classList": true, "dataset": true, "id": true,
	"tagName": true, "nodeName": true, "nodeType": true,
	"innerHTML": true, "outerHTML": true, "innerText": true,
	"textContent": true, "insertAdjacentHTML": true,

	// Geometry probes — the heart of HTML-bait detection.
	"offsetParent": true, "offsetHeight": true, "offsetWidth": true,
	"offsetLeft": true, "offsetTop": true, "clientHeight": true,
	"clientWidth": true, "clientLeft": true, "clientTop": true,
	"scrollHeight": true, "scrollWidth": true, "getBoundingClientRect": true,
	"getComputedStyle": true, "currentStyle": true, "style": true,
	"display": true, "visibility": true, "cssText": true, "zIndex": true,
	"position": true, "height": true, "width": true, "opacity": true,

	// Script/network baits.
	"src": true, "async": true, "defer": true, "onload": true,
	"onerror": true, "onabort": true, "XMLHttpRequest": true, "open": true,
	"send": true, "status": true, "statusText": true, "responseText": true,
	"responseXML": true, "setRequestHeader": true, "withCredentials": true,
	"fetch": true, "then": true, "Image": true, "complete": true,

	// State, timing, events.
	"cookie": true, "localStorage": true, "sessionStorage": true,
	"getItem": true, "setItem": true, "removeItem": true,
	"setTimeout": true, "setInterval": true, "clearTimeout": true,
	"clearInterval": true, "addEventListener": true,
	"removeEventListener": true, "attachEvent": true, "detachEvent": true,
	"onclick": true, "onmouseover": true, "userAgent": true, "platform": true,
	"vendor": true, "language": true, "plugins": true,
	"requestAnimationFrame": true, "alert": true, "confirm": true,
	"prompt": true, "console": true, "log": true, "warn": true,
	"error": true, "top": true, "self": true, "parent": true,
	"opener": true, "frames": true, "contentWindow": true,
	"contentDocument": true, "postMessage": true, "onmessage": true,

	// Language built-ins commonly fingerprinted.
	"Object": true, "Array": true, "String": true, "Number": true,
	"Boolean": true, "Function": true, "Date": true, "RegExp": true,
	"Math": true, "JSON": true, "Error": true, "Promise": true,
	"prototype": true, "constructor": true, "hasOwnProperty": true,
	"call": true, "apply": true, "bind": true, "arguments": true,
	"length": true, "indexOf": true, "lastIndexOf": true, "charAt": true,
	"charCodeAt": true, "fromCharCode": true, "substring": true,
	"substr": true, "slice": true, "splice": true, "split": true,
	"join": true, "replace": true, "match": true, "test": true,
	"exec": true, "search": true, "toLowerCase": true, "toUpperCase": true,
	"trim": true, "concat": true, "push": true, "pop": true,
	"shift": true, "unshift": true, "forEach": true, "map": true,
	"filter": true, "toString": true, "valueOf": true, "parse": true,
	"stringify": true, "parseInt": true, "parseFloat": true, "isNaN": true,
	"random": true, "floor": true, "ceil": true, "round": true, "abs": true,
	"getTime": true, "setTime": true, "toUTCString": true,
	"toGMTString": true, "getFullYear": true, "now": true,
	"encodeURIComponent": true, "decodeURIComponent": true,
	"encodeURI": true, "decodeURI": true, "escape": true, "unescape": true,
	"eval": true, "keys": true, "defineProperty": true,
	"getOwnPropertyNames": true, "freeze": true, "create": true,
}

// IsWebAPIKeyword reports whether name is in the Web API keyword table.
func IsWebAPIKeyword(name string) bool { return webAPIKeywords[name] }

// WebAPIKeywordCount returns the size of the Web API keyword table.
func WebAPIKeywordCount() int { return len(webAPIKeywords) }
