package features

import (
	"testing"

	"adwars/internal/jsast"
)

// blockAdBlockSnippet is Code 5 of the paper (abridged but containing every
// feature Table 2 lists).
const blockAdBlockSnippet = `
BlockAdBlock.prototype._creatBait = function() {
  var bait = document.createElement('div');
  bait.setAttribute('class', this._options.baitClass);
  bait.setAttribute('style', 'hidden');
  this._var.bait = window.document.body.appendChild(bait);
  this._var.bait.offsetHeight;
  this._var.bait.offsetWidth;
  this._var.bait.clientHeight;
  this._var.bait.clientWidth;
};
BlockAdBlock.prototype._checkBait = function(loop) {
  var detected = false;
  if (window.document.body.getAttribute('abp') !== null
      || this._var.bait.offsetHeight == 0) {
    detected = true;
  }
};
`

func extractSnippet(t *testing.T, set Set) map[string]bool {
	t.Helper()
	prog, err := jsast.Parse(blockAdBlockSnippet)
	if err != nil {
		t.Fatal(err)
	}
	return Extract(prog, set)
}

func TestExtractTable2AllFeatures(t *testing.T) {
	fs := extractSnippet(t, SetAll)
	// The rows of Table 2 with type "all".
	for _, want := range []string{
		"MemberExpression:BlockAdBlock",
		"MemberExpression:_creatBait",
		"MemberExpression:_checkBait",
		"Literal:abp",
		"Literal:0",
		"Literal:hidden",
		"Identifier:clientHeight",
		"Identifier:clientWidth",
		"Identifier:offsetHeight",
		"Identifier:offsetWidth",
	} {
		if !fs[want] {
			t.Errorf("all-set missing feature %q", want)
		}
	}
}

func TestExtractLiteralSet(t *testing.T) {
	fs := extractSnippet(t, SetLiteral)
	for _, want := range []string{"Literal:abp", "Literal:0", "Literal:hidden"} {
		if !fs[want] {
			t.Errorf("literal-set missing %q", want)
		}
	}
	for f := range fs {
		switch f {
		case "MemberExpression:BlockAdBlock", "Identifier:clientHeight":
			t.Errorf("literal-set must not contain %q", f)
		}
	}
}

func TestExtractKeywordSet(t *testing.T) {
	fs := extractSnippet(t, SetKeyword)
	for _, want := range []string{
		"Identifier:clientHeight", "Identifier:clientWidth",
		"Identifier:offsetHeight", "Identifier:offsetWidth",
	} {
		if !fs[want] {
			t.Errorf("keyword-set missing %q", want)
		}
	}
	// Identifiers and literals must be excluded.
	for _, bad := range []string{
		"MemberExpression:BlockAdBlock", "Literal:abp", "Literal:hidden",
	} {
		if fs[bad] {
			t.Errorf("keyword-set must not contain %q", bad)
		}
	}
}

func TestKeywordSetRobustToIdentifierRenaming(t *testing.T) {
	orig, err := ExtractSource(`var bait = document.createElement('div'); bait.offsetHeight;`, SetKeyword)
	if err != nil {
		t.Fatal(err)
	}
	renamed, err := ExtractSource(`var zz91 = document.createElement('xyz'); zz91.offsetHeight;`, SetKeyword)
	if err != nil {
		t.Fatal(err)
	}
	// document, createElement, offsetHeight survive renaming; the
	// user-chosen identifier and the literal do not enter the keyword set.
	for f := range orig {
		isLiteral := f == "CallExpression:div" || f == "Literal:div"
		if isLiteral {
			continue
		}
		if !renamed[f] {
			t.Errorf("keyword feature %q lost after renaming", f)
		}
	}
}

func TestExtractEnclosingConstructContext(t *testing.T) {
	fs, err := ExtractSource(`
try { riskyProbe(); } catch (e) { recover(); }
for (var i = 0; i < 3; i++) { loopBody(); }
if (cond) { thenBranch(); }
`, SetAll)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"TryStatement:riskyProbe",
		"CatchClause:recover",
		"ForStatement:loopBody",
		"IfStatement:thenBranch",
	} {
		if !fs[want] {
			t.Errorf("missing enclosing-construct feature %q", want)
		}
	}
}

func TestExtractJSKeywordFeatures(t *testing.T) {
	fs, err := ExtractSource(`if (typeof x === "undefined") { var y = new Date(); }`, SetKeyword)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"UnaryExpression:typeof", "Identifier:Date"} {
		if !fs[want] {
			t.Errorf("keyword-set missing %q", want)
		}
	}
}

func TestExtractSourceParseError(t *testing.T) {
	if _, err := ExtractSource("(((", SetAll); err == nil {
		t.Fatal("want parse error")
	}
}

func TestExtractUnpacksEval(t *testing.T) {
	fs, err := ExtractSource(`eval("var hiddenBait = document.body.offsetHeight;");`, SetAll)
	if err != nil {
		t.Fatal(err)
	}
	if !fs["Identifier:offsetHeight"] {
		t.Error("features from unpacked eval payload missing")
	}
}

func TestExtractTruncatesHugeLiterals(t *testing.T) {
	big := make([]byte, 5000)
	for i := range big {
		big[i] = 'a'
	}
	fs, err := ExtractSource(`var x = "`+string(big)+`";`, SetLiteral)
	if err != nil {
		t.Fatal(err)
	}
	for f := range fs {
		if len(f) > maxTextLen+40 {
			t.Errorf("feature too long: %d bytes", len(f))
		}
	}
}

func TestSetString(t *testing.T) {
	if SetAll.String() != "all" || SetLiteral.String() != "literal" || SetKeyword.String() != "keyword" {
		t.Error("Set.String mismatch")
	}
}
