package features

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func parallelCorpus() []string {
	var srcs []string
	for i := 0; i < 30; i++ {
		srcs = append(srcs, fmt.Sprintf(`
var bait%d = document.createElement('div');
bait%d.setAttribute('class', 'ad_%d banner_ad');
if (document.body.getAttribute('abp') !== null) { detected%d = true; }
for (var i%d = 0; i%d < %d; i%d++) { total += bait%d.offsetHeight; }
`, i, i, i%5, i, i, i, i+2, i, i))
	}
	// Unparseable scripts must keep their slot and report an error, same
	// as ExtractSource in a sequential loop.
	srcs[7] = "((("
	srcs[22] = ")))"
	return srcs
}

// TestExtractAllMatchesSequential proves the worker fan-out is invisible:
// per-slot feature sets and error positions are identical to a sequential
// ExtractSource loop at every worker count.
func TestExtractAllMatchesSequential(t *testing.T) {
	srcs := parallelCorpus()
	for _, set := range Sets {
		wantSets := make([]map[string]bool, len(srcs))
		wantErr := make([]bool, len(srcs))
		for i, src := range srcs {
			fs, err := ExtractSource(src, set)
			if err != nil {
				wantErr[i] = true
				continue
			}
			wantSets[i] = fs
		}
		for _, workers := range []int{1, 2, 7, 64} {
			sets, errs, err := ExtractAll(context.Background(), srcs, set, workers)
			if err != nil {
				t.Fatal(err)
			}
			for i := range srcs {
				if (errs[i] != nil) != wantErr[i] {
					t.Fatalf("set %v workers %d: slot %d error mismatch", set, workers, i)
				}
				if !reflect.DeepEqual(sets[i], wantSets[i]) {
					t.Fatalf("set %v workers %d: slot %d features diverge", set, workers, i)
				}
			}
		}
	}
}

// TestRunIsolatedConfinesPanics: a panicking worker-pool task must turn
// into an ErrPanic-wrapped error for its own slot, never a process crash.
func TestRunIsolatedConfinesPanics(t *testing.T) {
	err := runIsolated(func() { panic("boom in a pool task") })
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("err = %v, want ErrPanic", err)
	}
	if !strings.Contains(err.Error(), "boom in a pool task") {
		t.Errorf("panic value lost from error: %v", err)
	}
	if err := runIsolated(func() {}); err != nil {
		t.Fatalf("clean task reported %v", err)
	}
	// A panic mid-corpus must not poison neighbouring slots: run a real
	// fan-out and check every slot still gets its sequential result.
	srcs := parallelCorpus()
	sets, errs, err := ExtractAll(context.Background(), srcs, SetAll, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range srcs {
		if errs[i] != nil && errors.Is(errs[i], ErrPanic) {
			t.Fatalf("slot %d: unexpected panic error %v", i, errs[i])
		}
		if errs[i] == nil && sets[i] == nil {
			t.Fatalf("slot %d: no error but nil feature set", i)
		}
	}
}

// TestExtractAllCancellation checks a cancelled context stops the feed and
// reports the context error without touching unfed slots.
func TestExtractAllCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sets, errs, err := ExtractAll(ctx, parallelCorpus(), SetAll, 2)
	if err == nil {
		t.Fatal("want context error")
	}
	if len(sets) != 30 || len(errs) != 30 {
		t.Fatal("slots must keep input length")
	}
}

// TestBuildOrderInsensitiveVocab: the vocabulary is a sorted union, so a
// dataset built from fan-out results equals one built sequentially.
func TestBuildOrderInsensitiveVocab(t *testing.T) {
	srcs := parallelCorpus()
	seq := make([]map[string]bool, 0, len(srcs))
	var labels []int
	for i, src := range srcs {
		fs, err := ExtractSource(src, SetAll)
		if err != nil {
			continue
		}
		seq = append(seq, fs)
		if i%2 == 0 {
			labels = append(labels, 1)
		} else {
			labels = append(labels, -1)
		}
	}
	dsSeq, err := Build(seq, labels)
	if err != nil {
		t.Fatal(err)
	}

	par, errs, err := ExtractAll(context.Background(), srcs, SetAll, 8)
	if err != nil {
		t.Fatal(err)
	}
	kept := make([]map[string]bool, 0, len(srcs))
	for i := range par {
		if errs[i] == nil {
			kept = append(kept, par[i])
		}
	}
	dsPar, err := Build(kept, labels)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dsSeq.Vocab, dsPar.Vocab) {
		t.Fatal("vocab diverges between sequential and parallel builds")
	}
	if !reflect.DeepEqual(dsSeq.Samples, dsPar.Samples) {
		t.Fatal("samples diverge between sequential and parallel builds")
	}
}

// referenceDeduplicate is the seed's string-key implementation, kept as
// the oracle for the hash-based replacement.
func referenceDeduplicate(d *Dataset) *Dataset {
	cols := make([][]int32, len(d.Vocab))
	for i, s := range d.Samples {
		for _, f := range s {
			cols[f] = append(cols[f], int32(i))
		}
	}
	key := func(col []int32) string {
		b := make([]byte, 0, len(col)*4)
		for _, v := range col {
			b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		return string(b)
	}
	seen := make(map[string]int32)
	var keep []int32
	for f := range d.Vocab {
		k := key(cols[f])
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = int32(f)
		keep = append(keep, int32(f))
	}
	return d.remap(keep)
}

func dedupDataset(t *testing.T) *Dataset {
	t.Helper()
	var sets []map[string]bool
	var labels []int
	for i := 0; i < 60; i++ {
		m := map[string]bool{}
		// f-dup-a / f-dup-b share a column; f-solo varies; empty columns
		// (never-set features) collapse onto each other via Project-time
		// vocabulary, so also include one feature per sample group.
		if i%3 == 0 {
			m["f-dup-a"] = true
			m["f-dup-b"] = true
		}
		if i%4 == 0 {
			m["f-solo"] = true
		}
		m[fmt.Sprintf("f-group-%d", i%5)] = true
		if i%7 == 0 {
			m["f-dup-c"] = true
			m["a-dup-c"] = true // lexicographically first must survive
		}
		sets = append(sets, m)
		if i%10 == 0 {
			labels = append(labels, 1)
		} else {
			labels = append(labels, -1)
		}
	}
	ds, err := Build(sets, labels)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestDeduplicateColumnsHashEquivalence proves the FNV-bucketed dedup
// keeps exactly the columns the string-key reference kept, at several
// worker counts.
func TestDeduplicateColumnsHashEquivalence(t *testing.T) {
	ds := dedupDataset(t)
	want := referenceDeduplicate(ds)
	for _, workers := range []int{1, 2, 16} {
		got := ds.deduplicateColumns(workers)
		if !reflect.DeepEqual(got.Vocab, want.Vocab) {
			t.Fatalf("workers=%d: vocab %v != reference %v", workers, got.Vocab, want.Vocab)
		}
		if !reflect.DeepEqual(got.Samples, want.Samples) {
			t.Fatalf("workers=%d: samples diverge from reference", workers)
		}
	}
	// The survivor of the {a-dup-c, f-dup-c} group must be the
	// lexicographically first name.
	for _, f := range want.Vocab {
		if f == "f-dup-c" {
			t.Fatal("lexicographically later duplicate survived")
		}
	}
}

// TestSelectPipelineWorkersMatchesSequential is the selection-stage
// differential: identical selected vocabulary and identical chi-square
// scores at any worker count.
func TestSelectPipelineWorkersMatchesSequential(t *testing.T) {
	ds := dedupDataset(t)
	want := ds.SelectPipeline(4)
	wantScores := ds.ChiSquare()
	for _, workers := range []int{2, 5, 32} {
		got := ds.SelectPipelineWorkers(4, workers)
		if !reflect.DeepEqual(got.Vocab, want.Vocab) {
			t.Fatalf("workers=%d: selected vocab %v != %v", workers, got.Vocab, want.Vocab)
		}
		scores := ds.ChiSquareWorkers(workers)
		for f := range scores {
			if scores[f] != wantScores[f] {
				t.Fatalf("workers=%d: chi2[%d] = %v != %v", workers, f, scores[f], wantScores[f])
			}
		}
	}
}

func TestPopcount(t *testing.T) {
	if got := (Sample{1, 5, 9}).Popcount(); got != 3 {
		t.Fatalf("Popcount = %d, want 3", got)
	}
	if got := (Sample{}).Popcount(); got != 0 {
		t.Fatalf("empty Popcount = %d, want 0", got)
	}
}
