package features

import (
	"fmt"
	"sort"
)

// Sample is a sparse binary feature vector: the sorted indices of features
// present in one script.
type Sample []int32

// Has reports whether the sample contains feature index f.
func (s Sample) Has(f int32) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= f })
	return i < len(s) && s[i] == f
}

// IntersectionSize returns |s ∩ t| by merging the two sorted index lists.
func (s Sample) IntersectionSize(t Sample) int {
	i, j, n := 0, 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// Dataset is a labeled collection of sparse binary samples over a shared
// vocabulary. Labels are +1 (anti-adblock) and -1 (benign).
type Dataset struct {
	Vocab   []string
	Samples []Sample
	Labels  []int

	index map[string]int
}

// Build constructs a Dataset from per-script feature sets and labels
// (+1/-1). The vocabulary is the sorted union of all features, making
// construction deterministic.
func Build(featureSets []map[string]bool, labels []int) (*Dataset, error) {
	if len(featureSets) != len(labels) {
		return nil, fmt.Errorf("features: %d samples but %d labels", len(featureSets), len(labels))
	}
	vocabSet := make(map[string]bool)
	for _, fs := range featureSets {
		for f := range fs {
			vocabSet[f] = true
		}
	}
	vocab := make([]string, 0, len(vocabSet))
	for f := range vocabSet {
		vocab = append(vocab, f)
	}
	sort.Strings(vocab)
	index := make(map[string]int, len(vocab))
	for i, f := range vocab {
		index[f] = i
	}

	ds := &Dataset{Vocab: vocab, Labels: append([]int(nil), labels...), index: index}
	for _, fs := range featureSets {
		s := make(Sample, 0, len(fs))
		for f := range fs {
			s = append(s, int32(index[f]))
		}
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		ds.Samples = append(ds.Samples, s)
	}
	return ds, nil
}

// Project maps a new script's feature set onto the dataset's vocabulary,
// ignoring unseen features (they carry no weight at test time).
func (d *Dataset) Project(fs map[string]bool) Sample {
	var s Sample
	for f := range fs {
		if i, ok := d.index[f]; ok {
			s = append(s, int32(i))
		}
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}

// NumFeatures returns the vocabulary size.
func (d *Dataset) NumFeatures() int { return len(d.Vocab) }

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Samples) }

// support returns, per feature, the number of positive and negative samples
// containing it.
func (d *Dataset) support() (pos, neg []int) {
	pos = make([]int, len(d.Vocab))
	neg = make([]int, len(d.Vocab))
	for i, s := range d.Samples {
		for _, f := range s {
			if d.Labels[i] > 0 {
				pos[f]++
			} else {
				neg[f]++
			}
		}
	}
	return pos, neg
}

// remap builds a new Dataset keeping only the features whose indices are in
// keep (which must be sorted ascending).
func (d *Dataset) remap(keep []int32) *Dataset {
	newIdx := make(map[int32]int32, len(keep))
	vocab := make([]string, len(keep))
	for newI, oldI := range keep {
		newIdx[oldI] = int32(newI)
		vocab[newI] = d.Vocab[oldI]
	}
	index := make(map[string]int, len(vocab))
	for i, f := range vocab {
		index[f] = i
	}
	out := &Dataset{Vocab: vocab, Labels: d.Labels, index: index}
	for _, s := range d.Samples {
		var ns Sample
		for _, f := range s {
			if ni, ok := newIdx[f]; ok {
				ns = append(ns, ni)
			}
		}
		out.Samples = append(out.Samples, ns)
	}
	return out
}

// FilterVariance removes features whose empirical variance p(1-p) is below
// minVar (the paper removes features with variance < 0.01). Binary feature
// variance is p(1-p) with p the fraction of samples carrying the feature.
func (d *Dataset) FilterVariance(minVar float64) *Dataset {
	pos, neg := d.support()
	n := float64(d.Len())
	var keep []int32
	for f := range d.Vocab {
		p := float64(pos[f]+neg[f]) / n
		if p*(1-p) >= minVar {
			keep = append(keep, int32(f))
		}
	}
	return d.remap(keep)
}

// DeduplicateColumns removes features whose presence pattern across samples
// duplicates an earlier feature's (the paper's second filter). Of each
// group of identical columns, the lexicographically first feature name
// survives, making the result deterministic.
func (d *Dataset) DeduplicateColumns() *Dataset {
	// Build column signatures: the sorted list of sample indices holding
	// each feature, hashed into a string key.
	cols := make([][]int32, len(d.Vocab))
	for i, s := range d.Samples {
		for _, f := range s {
			cols[f] = append(cols[f], int32(i))
		}
	}
	seen := make(map[string]int32)
	var keep []int32
	// Vocab is sorted, so iterating in index order keeps the
	// lexicographically first name of each duplicate group.
	for f := range d.Vocab {
		key := colKey(cols[f])
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = int32(f)
		keep = append(keep, int32(f))
	}
	return d.remap(keep)
}

func colKey(col []int32) string {
	b := make([]byte, 0, len(col)*4)
	for _, v := range col {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

// ChiSquare computes the paper's chi-square statistic for every feature:
//
//	χ² = N (AD − CB)² / ((A+C)(B+D)(A+B)(C+D))
//
// with A/B the positive/negative samples containing the feature and C/D
// those not containing it.
func (d *Dataset) ChiSquare() []float64 {
	pos, neg := d.support()
	nPos, nNeg := 0, 0
	for _, l := range d.Labels {
		if l > 0 {
			nPos++
		} else {
			nNeg++
		}
	}
	n := float64(nPos + nNeg)
	out := make([]float64, len(d.Vocab))
	for f := range d.Vocab {
		a := float64(pos[f])
		b := float64(neg[f])
		c := float64(nPos) - a
		dd := float64(nNeg) - b
		den := (a + c) * (b + dd) * (a + b) * (c + dd)
		if den == 0 {
			out[f] = 0
			continue
		}
		diff := a*dd - c*b
		out[f] = n * diff * diff / den
	}
	return out
}

// SelectTopChiSquare keeps the k features with the highest chi-square
// scores (ties broken by feature name for determinism). If k exceeds the
// vocabulary size the dataset is returned unchanged.
func (d *Dataset) SelectTopChiSquare(k int) *Dataset {
	if k >= len(d.Vocab) {
		return d
	}
	scores := d.ChiSquare()
	order := make([]int32, len(d.Vocab))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		si, sj := scores[order[i]], scores[order[j]]
		if si != sj {
			return si > sj
		}
		return d.Vocab[order[i]] < d.Vocab[order[j]]
	})
	keep := append([]int32(nil), order[:k]...)
	sort.Slice(keep, func(i, j int) bool { return keep[i] < keep[j] })
	return d.remap(keep)
}

// SelectPipeline applies the paper's full selection pipeline: variance
// filter (0.01), duplicate removal, then top-k chi-square.
func (d *Dataset) SelectPipeline(k int) *Dataset {
	return d.FilterVariance(0.01).DeduplicateColumns().SelectTopChiSquare(k)
}

// Subset returns a dataset restricted to the given sample indices (shared
// vocabulary). Used by cross-validation.
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{Vocab: d.Vocab, index: d.index}
	for _, i := range idx {
		out.Samples = append(out.Samples, d.Samples[i])
		out.Labels = append(out.Labels, d.Labels[i])
	}
	return out
}
