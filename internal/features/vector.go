package features

import (
	"context"
	"fmt"
	"runtime"
	"sort"

	"adwars/internal/crawler"
)

// Sample is a sparse binary feature vector: the sorted indices of features
// present in one script.
type Sample []int32

// Has reports whether the sample contains feature index f.
func (s Sample) Has(f int32) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= f })
	return i < len(s) && s[i] == f
}

// Popcount returns the number of set features. Construction keeps the
// index list deduplicated and sorted, so the popcount is the slice length
// — an O(1) read kernel inner loops rely on instead of re-deriving vector
// norms.
func (s Sample) Popcount() int { return len(s) }

// IntersectionSize returns |s ∩ t| by merging the two sorted index lists.
func (s Sample) IntersectionSize(t Sample) int {
	i, j, n := 0, 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// Dataset is a labeled collection of sparse binary samples over a shared
// vocabulary. Labels are +1 (anti-adblock) and -1 (benign).
type Dataset struct {
	Vocab   []string
	Samples []Sample
	Labels  []int

	index map[string]int
}

// Build constructs a Dataset from per-script feature sets and labels
// (+1/-1). The vocabulary is the sorted union of all features, making
// construction deterministic regardless of how the feature sets were
// produced (sequential or fanned out over the worker pool).
func Build(featureSets []map[string]bool, labels []int) (*Dataset, error) {
	if len(featureSets) != len(labels) {
		return nil, fmt.Errorf("features: %d samples but %d labels", len(featureSets), len(labels))
	}
	vocabSet := make(map[string]bool)
	for _, fs := range featureSets {
		for f := range fs {
			vocabSet[f] = true
		}
	}
	vocab := make([]string, 0, len(vocabSet))
	for f := range vocabSet {
		vocab = append(vocab, f)
	}
	sort.Strings(vocab)
	index := make(map[string]int, len(vocab))
	for i, f := range vocab {
		index[f] = i
	}

	ds := &Dataset{Vocab: vocab, Labels: append([]int(nil), labels...), index: index}
	for _, fs := range featureSets {
		s := make(Sample, 0, len(fs))
		for f := range fs {
			s = append(s, int32(index[f]))
		}
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		ds.Samples = append(ds.Samples, s)
	}
	return ds, nil
}

// Project maps a new script's feature set onto the dataset's vocabulary,
// ignoring unseen features (they carry no weight at test time).
func (d *Dataset) Project(fs map[string]bool) Sample {
	var s Sample
	for f := range fs {
		if i, ok := d.index[f]; ok {
			s = append(s, int32(i))
		}
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}

// NumFeatures returns the vocabulary size.
func (d *Dataset) NumFeatures() int { return len(d.Vocab) }

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Samples) }

// clampWorkers resolves a worker-count request against GOMAXPROCS.
func clampWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// support returns, per feature, the number of positive and negative
// samples containing it. Sample chunks are counted into worker-local
// arrays and summed in chunk order, so the counts are identical at any
// worker count.
func (d *Dataset) support(workers int) (pos, neg []int) {
	nf := len(d.Vocab)
	n := len(d.Samples)
	workers = clampWorkers(workers)
	if workers == 1 || n < 2*workers {
		pos = make([]int, nf)
		neg = make([]int, nf)
		for i, s := range d.Samples {
			for _, f := range s {
				if d.Labels[i] > 0 {
					pos[f]++
				} else {
					neg[f]++
				}
			}
		}
		return pos, neg
	}
	locPos := make([][]int, workers)
	locNeg := make([][]int, workers)
	_ = crawler.ForEach(context.Background(), workers, workers, func(c int) {
		lp := make([]int, nf)
		ln := make([]int, nf)
		for i := c * n / workers; i < (c+1)*n/workers; i++ {
			for _, f := range d.Samples[i] {
				if d.Labels[i] > 0 {
					lp[f]++
				} else {
					ln[f]++
				}
			}
		}
		locPos[c], locNeg[c] = lp, ln
	})
	pos, neg = locPos[0], locNeg[0]
	for c := 1; c < workers; c++ {
		for f := 0; f < nf; f++ {
			pos[f] += locPos[c][f]
			neg[f] += locNeg[c][f]
		}
	}
	return pos, neg
}

// remap builds a new Dataset keeping only the features whose indices are in
// keep (which must be sorted ascending).
func (d *Dataset) remap(keep []int32) *Dataset {
	newIdx := make([]int32, len(d.Vocab))
	for i := range newIdx {
		newIdx[i] = -1
	}
	vocab := make([]string, len(keep))
	for newI, oldI := range keep {
		newIdx[oldI] = int32(newI)
		vocab[newI] = d.Vocab[oldI]
	}
	index := make(map[string]int, len(vocab))
	for i, f := range vocab {
		index[f] = i
	}
	out := &Dataset{Vocab: vocab, Labels: d.Labels, index: index, Samples: make([]Sample, 0, len(d.Samples))}
	for _, s := range d.Samples {
		var ns Sample
		for _, f := range s {
			if ni := newIdx[f]; ni >= 0 {
				ns = append(ns, ni)
			}
		}
		out.Samples = append(out.Samples, ns)
	}
	return out
}

// FilterVariance removes features whose empirical variance p(1-p) is below
// minVar (the paper removes features with variance < 0.01). Binary feature
// variance is p(1-p) with p the fraction of samples carrying the feature.
func (d *Dataset) FilterVariance(minVar float64) *Dataset {
	return d.filterVariance(minVar, 1)
}

// FilterVarianceWorkers is FilterVariance with the support pass fanned out
// over the worker pool; the result is identical at any worker count.
func (d *Dataset) FilterVarianceWorkers(minVar float64, workers int) *Dataset {
	return d.filterVariance(minVar, workers)
}

func (d *Dataset) filterVariance(minVar float64, workers int) *Dataset {
	pos, neg := d.support(workers)
	n := float64(d.Len())
	var keep []int32
	for f := range d.Vocab {
		p := float64(pos[f]+neg[f]) / n
		if p*(1-p) >= minVar {
			keep = append(keep, int32(f))
		}
	}
	return d.remap(keep)
}

// DeduplicateColumns removes features whose presence pattern across samples
// duplicates an earlier feature's (the paper's second filter). Of each
// group of identical columns, the lexicographically first feature name
// survives, making the result deterministic.
func (d *Dataset) DeduplicateColumns() *Dataset {
	return d.deduplicateColumns(1)
}

// DeduplicateColumnsWorkers is DeduplicateColumns with column hashing
// fanned out over the worker pool; the result is identical at any worker
// count.
func (d *Dataset) DeduplicateColumnsWorkers(workers int) *Dataset {
	return d.deduplicateColumns(workers)
}

func (d *Dataset) deduplicateColumns(workers int) *Dataset {
	// Column signatures: the sorted sample indices holding each feature,
	// bucketed by a 64-bit FNV-1a hash instead of materializing one key
	// string per column. Hash collisions fall back to an exact column
	// comparison, so distinct columns never merge.
	nf := len(d.Vocab)
	cols := make([][]int32, nf)
	for i, s := range d.Samples {
		for _, f := range s {
			cols[f] = append(cols[f], int32(i))
		}
	}
	hashes := make([]uint64, nf)
	workers = clampWorkers(workers)
	if workers == 1 || nf < 2*workers {
		for f := 0; f < nf; f++ {
			hashes[f] = colHash(cols[f])
		}
	} else {
		_ = crawler.ForEach(context.Background(), workers, workers, func(c int) {
			for f := c * nf / workers; f < (c+1)*nf/workers; f++ {
				hashes[f] = colHash(cols[f])
			}
		})
	}
	seen := make(map[uint64][]int32, nf)
	var keep []int32
	// Vocab is sorted, so iterating in index order keeps the
	// lexicographically first name of each duplicate group.
	for f := 0; f < nf; f++ {
		dup := false
		for _, e := range seen[hashes[f]] {
			if colsEqual(cols[e], cols[f]) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		seen[hashes[f]] = append(seen[hashes[f]], int32(f))
		keep = append(keep, int32(f))
	}
	return d.remap(keep)
}

// colHash is 64-bit FNV-1a over the column's sample indices.
func colHash(col []int32) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range col {
		h ^= uint64(uint32(v))
		h *= 1099511628211
	}
	h ^= uint64(len(col))
	h *= 1099511628211
	return h
}

func colsEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ChiSquare computes the paper's chi-square statistic for every feature:
//
//	χ² = N (AD − CB)² / ((A+C)(B+D)(A+B)(C+D))
//
// with A/B the positive/negative samples containing the feature and C/D
// those not containing it.
func (d *Dataset) ChiSquare() []float64 {
	return d.chiSquare(1)
}

// ChiSquareWorkers is ChiSquare with both the support pass and the
// per-column scoring fanned out over the worker pool. Workers write
// disjoint score ranges, so the result is identical at any worker count.
func (d *Dataset) ChiSquareWorkers(workers int) []float64 {
	return d.chiSquare(workers)
}

func (d *Dataset) chiSquare(workers int) []float64 {
	pos, neg := d.support(workers)
	nPos, nNeg := 0, 0
	for _, l := range d.Labels {
		if l > 0 {
			nPos++
		} else {
			nNeg++
		}
	}
	n := float64(nPos + nNeg)
	nf := len(d.Vocab)
	out := make([]float64, nf)
	score := func(f int) {
		a := float64(pos[f])
		b := float64(neg[f])
		c := float64(nPos) - a
		dd := float64(nNeg) - b
		den := (a + c) * (b + dd) * (a + b) * (c + dd)
		if den == 0 {
			out[f] = 0
			return
		}
		diff := a*dd - c*b
		out[f] = n * diff * diff / den
	}
	workers = clampWorkers(workers)
	if workers == 1 || nf < 2*workers {
		for f := 0; f < nf; f++ {
			score(f)
		}
		return out
	}
	_ = crawler.ForEach(context.Background(), workers, workers, func(c int) {
		for f := c * nf / workers; f < (c+1)*nf/workers; f++ {
			score(f)
		}
	})
	return out
}

// SelectTopChiSquare keeps the k features with the highest chi-square
// scores (ties broken by feature name for determinism). If k exceeds the
// vocabulary size the dataset is returned unchanged.
func (d *Dataset) SelectTopChiSquare(k int) *Dataset {
	return d.selectTopChiSquare(k, 1)
}

// SelectTopChiSquareWorkers is SelectTopChiSquare with parallel scoring;
// the selected vocabulary is identical at any worker count.
func (d *Dataset) SelectTopChiSquareWorkers(k, workers int) *Dataset {
	return d.selectTopChiSquare(k, workers)
}

func (d *Dataset) selectTopChiSquare(k, workers int) *Dataset {
	if k >= len(d.Vocab) {
		return d
	}
	scores := d.chiSquare(workers)
	order := make([]int32, len(d.Vocab))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		si, sj := scores[order[i]], scores[order[j]]
		if si != sj {
			return si > sj
		}
		return d.Vocab[order[i]] < d.Vocab[order[j]]
	})
	keep := append([]int32(nil), order[:k]...)
	sort.Slice(keep, func(i, j int) bool { return keep[i] < keep[j] })
	return d.remap(keep)
}

// SelectPipeline applies the paper's full selection pipeline: variance
// filter (0.01), duplicate removal, then top-k chi-square.
func (d *Dataset) SelectPipeline(k int) *Dataset {
	return d.SelectPipelineWorkers(k, 1)
}

// SelectPipelineWorkers is SelectPipeline with every stage fanned out over
// the worker pool. Each stage merges deterministically, so the selected
// vocabulary is byte-identical to the sequential run.
func (d *Dataset) SelectPipelineWorkers(k, workers int) *Dataset {
	return d.filterVariance(0.01, workers).deduplicateColumns(workers).selectTopChiSquare(k, workers)
}

// Subset returns a dataset restricted to the given sample indices (shared
// vocabulary). Used by cross-validation.
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{Vocab: d.Vocab, index: d.index}
	for _, i := range idx {
		out.Samples = append(out.Samples, d.Samples[i])
		out.Labels = append(out.Labels, d.Labels[i])
	}
	return out
}
