package features

import (
	"adwars/internal/jsast"
)

// Set selects which text elements become features (§5, Feature Extraction).
type Set int

const (
	// SetAll keeps every text element: JS keywords, Web API keywords,
	// identifiers, and literals.
	SetAll Set = iota
	// SetLiteral keeps literal values only.
	SetLiteral
	// SetKeyword keeps native JS keywords and Web API keywords only.
	SetKeyword
)

// String names the feature set as the paper does.
func (s Set) String() string {
	switch s {
	case SetAll:
		return "all"
	case SetLiteral:
		return "literal"
	case SetKeyword:
		return "keyword"
	default:
		return "unknown"
	}
}

// Sets lists the three feature sets in Table 3 order.
var Sets = []Set{SetAll, SetLiteral, SetKeyword}

// textKind classifies a text element the way the paper's three feature sets
// need: identifier, literal, or (JS / Web API) keyword.
type textKind int

const (
	kindIdentifier textKind = iota
	kindLiteral
	kindKeyword
)

// keep reports whether a text of the given kind belongs to the feature set.
func (s Set) keep(k textKind) bool {
	switch s {
	case SetAll:
		return true
	case SetLiteral:
		return k == kindLiteral
	case SetKeyword:
		return k == kindKeyword
	default:
		return false
	}
}

// maxTextLen truncates pathological texts (huge string literals) so that a
// single script cannot blow up the vocabulary.
const maxTextLen = 64

// Extract returns the binary feature set of a script's AST under the given
// feature set. Each feature is "Context:Text"; for every text-bearing node
// up to three contexts are emitted: the node's own type, its parent's type,
// and the nearest enclosing statement construct (loop, try, catch, if,
// switch, function — the contexts §5 names).
func Extract(prog *jsast.Program, set Set) map[string]bool {
	out := make(map[string]bool)
	emit := func(context, text string, kind textKind) {
		if !set.keep(kind) || text == "" {
			return
		}
		if len(text) > maxTextLen {
			text = text[:maxTextLen]
		}
		out[context+":"+text] = true
	}

	// Stack of enclosing construct type names.
	var constructs []string
	var walk func(n, parent jsast.Node)
	walk = func(n, parent jsast.Node) {
		parentType := "Program"
		if parent != nil {
			parentType = parent.Type()
		}
		enclosing := ""
		if len(constructs) > 0 {
			enclosing = constructs[len(constructs)-1]
		}

		emitAll := func(text string, kind textKind) {
			emit(n.Type(), text, kind)
			if parentType != n.Type() {
				emit(parentType, text, kind)
			}
			if enclosing != "" && enclosing != parentType && enclosing != n.Type() {
				emit(enclosing, text, kind)
			}
		}

		switch v := n.(type) {
		case *jsast.Ident:
			kind := kindIdentifier
			if IsWebAPIKeyword(v.Name) {
				kind = kindKeyword
			}
			emitAll(v.Name, kind)
		case *jsast.Literal:
			emitAll(v.Value, kindLiteral)
		case *jsast.Declarator:
			kind := kindIdentifier
			if IsWebAPIKeyword(v.Name) {
				kind = kindKeyword
			}
			emitAll(v.Name, kind)
		case *jsast.FunctionDecl:
			emitAll(v.Name, kindIdentifier)
			emit(n.Type(), "function", kindKeyword)
		case *jsast.FunctionExpr:
			if v.Name != "" {
				emitAll(v.Name, kindIdentifier)
			}
			emit(n.Type(), "function", kindKeyword)
		case *jsast.Unary:
			if jsast.IsKeyword(v.Op) { // typeof, void, delete
				emit(n.Type(), v.Op, kindKeyword)
			}
		case *jsast.This:
			emit(parentType, "this", kindKeyword)
		case *jsast.VarDecl:
			emit(parentType, "var", kindKeyword)
		case *jsast.If:
			emit(parentType, "if", kindKeyword)
		case *jsast.For, *jsast.ForIn:
			emit(parentType, "for", kindKeyword)
		case *jsast.While, *jsast.DoWhile:
			emit(parentType, "while", kindKeyword)
		case *jsast.Try:
			emit(parentType, "try", kindKeyword)
		case *jsast.Catch:
			emit(parentType, "catch", kindKeyword)
		case *jsast.Switch:
			emit(parentType, "switch", kindKeyword)
		case *jsast.Return:
			emit(parentType, "return", kindKeyword)
		case *jsast.New:
			emit(parentType, "new", kindKeyword)
		case *jsast.Binary:
			if jsast.IsKeyword(v.Op) { // in, instanceof
				emit(n.Type(), v.Op, kindKeyword)
			}
		}

		if isConstruct(n) {
			constructs = append(constructs, n.Type())
			defer func() { constructs = constructs[:len(constructs)-1] }()
		}
		for _, c := range jsast.Children(n) {
			walk(c, n)
		}
	}
	walk(prog, nil)
	return out
}

// isConstruct reports whether n opens one of the enclosing contexts §5
// names: loops, try/catch, if, switch, and function bodies.
func isConstruct(n jsast.Node) bool {
	switch n.(type) {
	case *jsast.For, *jsast.ForIn, *jsast.While, *jsast.DoWhile,
		*jsast.Try, *jsast.Catch, *jsast.If, *jsast.Switch,
		*jsast.FunctionDecl, *jsast.FunctionExpr:
		return true
	default:
		return false
	}
}

// ExtractSource parses (and unpacks) JavaScript source and extracts its
// features. Scripts that fail to parse yield a nil map and the parse error.
func ExtractSource(src string, set Set) (map[string]bool, error) {
	prog, _, err := jsast.ParseAndUnpack(src)
	if err != nil {
		return nil, err
	}
	return Extract(prog, set), nil
}
