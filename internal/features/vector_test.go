package features

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func fset(fs ...string) map[string]bool {
	m := make(map[string]bool, len(fs))
	for _, f := range fs {
		m[f] = true
	}
	return m
}

func testDataset(t *testing.T) *Dataset {
	t.Helper()
	// 4 positives carrying "bait"-style features, 4 negatives without.
	sets := []map[string]bool{
		fset("Identifier:offsetHeight", "Literal:abp", "Identifier:jquery"),
		fset("Identifier:offsetHeight", "Literal:abp"),
		fset("Identifier:offsetHeight", "Identifier:clientWidth"),
		fset("Identifier:offsetHeight", "Literal:abp", "Identifier:clientWidth"),
		fset("Identifier:jquery", "Literal:menu"),
		fset("Identifier:jquery", "Literal:slider"),
		fset("Identifier:jquery"),
		fset("Literal:menu", "Identifier:analytics"),
	}
	labels := []int{1, 1, 1, 1, -1, -1, -1, -1}
	ds, err := Build(sets, labels)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestBuildDeterministicVocab(t *testing.T) {
	ds := testDataset(t)
	if !sort.StringsAreSorted(ds.Vocab) {
		t.Fatal("vocabulary must be sorted")
	}
	ds2 := testDataset(t)
	if len(ds.Vocab) != len(ds2.Vocab) {
		t.Fatal("vocabulary not deterministic")
	}
	for i := range ds.Vocab {
		if ds.Vocab[i] != ds2.Vocab[i] {
			t.Fatal("vocabulary order not deterministic")
		}
	}
}

func TestBuildLengthMismatch(t *testing.T) {
	if _, err := Build([]map[string]bool{fset("a")}, []int{1, -1}); err == nil {
		t.Fatal("want error on length mismatch")
	}
}

func TestSampleOps(t *testing.T) {
	s := Sample{1, 3, 5, 9}
	tt := Sample{3, 4, 5, 6}
	if got := s.IntersectionSize(tt); got != 2 {
		t.Fatalf("intersection = %d, want 2", got)
	}
	if !s.Has(5) || s.Has(4) {
		t.Fatal("Has misbehaves")
	}
}

func TestChiSquarePerfectDiscriminator(t *testing.T) {
	ds := testDataset(t)
	scores := ds.ChiSquare()
	byName := map[string]float64{}
	for i, f := range ds.Vocab {
		byName[f] = scores[i]
	}
	// offsetHeight is present in every positive and no negative: chi2 = N.
	if got := byName["Identifier:offsetHeight"]; math.Abs(got-8) > 1e-9 {
		t.Fatalf("chi2(offsetHeight) = %v, want 8 (=N)", got)
	}
	// jquery appears in 1 pos and 3 neg — weakly informative.
	if byName["Identifier:jquery"] >= byName["Identifier:offsetHeight"] {
		t.Fatal("weak feature scored above perfect discriminator")
	}
}

func TestChiSquareHandPaperFormula(t *testing.T) {
	ds := testDataset(t)
	scores := ds.ChiSquare()
	// Verify "Literal:abp" by hand: A=3 pos with, B=0 neg with, C=1, D=4.
	var abp float64
	for i, f := range ds.Vocab {
		if f == "Literal:abp" {
			abp = scores[i]
		}
	}
	// chi2 = 8*(3*4-1*0)^2 / (4*4*3*5) = 8*144/240 = 4.8
	if math.Abs(abp-4.8) > 1e-9 {
		t.Fatalf("chi2(abp) = %v, want 4.8", abp)
	}
}

func TestFilterVariance(t *testing.T) {
	// A feature present in every sample has variance 0 and must go.
	sets := []map[string]bool{
		fset("always", "sometimes"),
		fset("always"),
		fset("always", "sometimes"),
		fset("always"),
	}
	ds, _ := Build(sets, []int{1, 1, -1, -1})
	out := ds.FilterVariance(0.01)
	if out.NumFeatures() != 1 || out.Vocab[0] != "sometimes" {
		t.Fatalf("vocab after variance filter = %v", out.Vocab)
	}
}

func TestDeduplicateColumns(t *testing.T) {
	// "a" and "b" have identical support; one must be removed.
	sets := []map[string]bool{
		fset("a", "b", "c"),
		fset("a", "b"),
		fset("c"),
	}
	ds, _ := Build(sets, []int{1, 1, -1})
	out := ds.DeduplicateColumns()
	if out.NumFeatures() != 2 {
		t.Fatalf("features after dedup = %v", out.Vocab)
	}
	if out.Vocab[0] != "a" || out.Vocab[1] != "c" {
		t.Fatalf("dedup should keep lexicographically first: %v", out.Vocab)
	}
}

func TestSelectTopChiSquare(t *testing.T) {
	ds := testDataset(t)
	out := ds.SelectTopChiSquare(2)
	if out.NumFeatures() != 2 {
		t.Fatalf("k=2 kept %d features", out.NumFeatures())
	}
	names := map[string]bool{}
	for _, f := range out.Vocab {
		names[f] = true
	}
	if !names["Identifier:offsetHeight"] {
		t.Fatal("top-2 must include the perfect discriminator")
	}
	// k larger than vocab: unchanged.
	if ds.SelectTopChiSquare(1000).NumFeatures() != ds.NumFeatures() {
		t.Fatal("oversized k should be a no-op")
	}
}

func TestRemapPreservesMembership(t *testing.T) {
	ds := testDataset(t)
	out := ds.SelectPipeline(3)
	// Every remapped sample index must point at a feature the original
	// sample contained.
	for i, s := range out.Samples {
		for _, f := range s {
			name := out.Vocab[f]
			orig := ds.Samples[i]
			found := false
			for _, of := range orig {
				if ds.Vocab[of] == name {
					found = true
				}
			}
			if !found {
				t.Fatalf("sample %d gained feature %q", i, name)
			}
		}
	}
}

func TestProjectIgnoresUnseen(t *testing.T) {
	ds := testDataset(t)
	s := ds.Project(fset("Identifier:offsetHeight", "Identifier:never-seen"))
	if len(s) != 1 {
		t.Fatalf("projected = %v, want single known feature", s)
	}
	if ds.Vocab[s[0]] != "Identifier:offsetHeight" {
		t.Fatalf("projected wrong feature %q", ds.Vocab[s[0]])
	}
}

func TestSubset(t *testing.T) {
	ds := testDataset(t)
	sub := ds.Subset([]int{0, 4})
	if sub.Len() != 2 || sub.Labels[0] != 1 || sub.Labels[1] != -1 {
		t.Fatal("subset wrong")
	}
	if sub.NumFeatures() != ds.NumFeatures() {
		t.Fatal("subset must share vocabulary")
	}
}

func TestIntersectionSizeProperty(t *testing.T) {
	// |s∩t| is symmetric and bounded by min(|s|,|t|).
	f := func(a, b []uint8) bool {
		mk := func(xs []uint8) Sample {
			seen := map[int32]bool{}
			var s Sample
			for _, x := range xs {
				if !seen[int32(x)] {
					seen[int32(x)] = true
					s = append(s, int32(x))
				}
			}
			sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
			return s
		}
		s, tt := mk(a), mk(b)
		ab, ba := s.IntersectionSize(tt), tt.IntersectionSize(s)
		if ab != ba {
			return false
		}
		min := len(s)
		if len(tt) < min {
			min = len(tt)
		}
		return ab <= min
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
