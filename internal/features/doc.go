// Package features turns JavaScript ASTs into the binary context:text
// feature vectors of §5 of the paper and implements the paper's feature
// selection pipeline: variance filtering, duplicate-column removal, and
// chi-square ranking.
//
// A feature is "Context:Text", where Context is an AST location (the node's
// own type, its parent's type, or the nearest enclosing statement construct)
// and Text is the code text appearing there. Three feature sets provide
// increasing generalization:
//
//   - SetAll: every text element (JavaScript keywords, Web API keywords,
//     identifiers, and literals),
//   - SetLiteral: literals only,
//   - SetKeyword: native JavaScript keywords and Web API keywords only —
//     robust to identifier/literal randomization but susceptible to
//     polymorphism, exactly as the paper discusses.
package features
