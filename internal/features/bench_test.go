package features

import (
	"fmt"
	"testing"

	"adwars/internal/jsast"
)

const benchScript = `
BlockAdBlock.prototype._creatBait = function() {
  var bait = document.createElement('div');
  bait.setAttribute('class', 'pub_300x250 textads banner_ad');
  this._var.bait = window.document.body.appendChild(bait);
  this._var.bait.offsetHeight;
  this._var.bait.clientWidth;
};
if (window.document.body.getAttribute('abp') !== null) { detected = true; }
`

// BenchmarkExtract measures feature extraction per feature set.
func BenchmarkExtract(b *testing.B) {
	prog, err := jsast.Parse(benchScript)
	if err != nil {
		b.Fatal(err)
	}
	for _, set := range Sets {
		b.Run(set.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if fs := Extract(prog, set); len(fs) == 0 {
					b.Fatal("no features")
				}
			}
		})
	}
}

func benchFeatureDataset(b *testing.B, n, vocab int) *Dataset {
	b.Helper()
	var sets []map[string]bool
	var labels []int
	// Each feature must clear the variance filter (support fraction p with
	// p(1-p) ≥ 0.01 means roughly p ≥ 0.011), so give every sample enough
	// features that average support is well above the cutoff.
	perSample := 15 * vocab / n
	if perSample < 12 {
		perSample = 12
	}
	for i := 0; i < n; i++ {
		m := map[string]bool{}
		for j := 0; j < perSample; j++ {
			m[fmt.Sprintf("f%04d", (i*7+j*13)%vocab)] = true
		}
		sets = append(sets, m)
		if i%11 == 0 {
			labels = append(labels, 1)
		} else {
			labels = append(labels, -1)
		}
	}
	ds, err := Build(sets, labels)
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

// BenchmarkSelectPipeline measures the paper's full selection pipeline
// (variance filter → dedup → chi-square top-k).
func BenchmarkSelectPipeline(b *testing.B) {
	ds := benchFeatureDataset(b, 1000, 3000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := ds.SelectPipeline(500); out.NumFeatures() == 0 {
			b.Fatal("empty selection")
		}
	}
}

// BenchmarkSelectPipelineWorkers is the same pipeline through the
// worker-fanned stages (identical output, asserted by the differential
// tests; the contrast with BenchmarkSelectPipeline is pure overhead/win).
func BenchmarkSelectPipelineWorkers(b *testing.B) {
	ds := benchFeatureDataset(b, 1000, 3000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := ds.SelectPipelineWorkers(500, 0); out.NumFeatures() == 0 {
			b.Fatal("empty selection")
		}
	}
}

// BenchmarkChiSquare measures chi-square scoring alone (the ablation
// contrast is variance-only filtering, which skips this cost).
func BenchmarkChiSquare(b *testing.B) {
	ds := benchFeatureDataset(b, 1000, 3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := ds.ChiSquare(); len(s) == 0 {
			b.Fatal("no scores")
		}
	}
}
