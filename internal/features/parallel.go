package features

import (
	"context"
	"errors"
	"fmt"

	"adwars/internal/crawler"
	"adwars/internal/jsast"
)

// ErrPanic marks an extraction task that panicked; the panic was confined
// to that task's slot instead of killing the worker pool (and with it the
// process — a pool goroutine has no other recover boundary above it).
var ErrPanic = errors.New("features: panic during extraction")

// runIsolated invokes fn and converts a panic into an error wrapping
// ErrPanic. It is the per-task recover boundary for worker-pool work: a
// panicking task must cost exactly its own result, never the pool.
func runIsolated(fn func()) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("%w: %v", ErrPanic, v)
		}
	}()
	fn()
	return nil
}

// ExtractAll fans unpack+parse+Extract for a script corpus out over the
// shared crawler worker pool. Results land in caller-visible slots indexed
// by input position, so the output order is the input order and feeding
// the sets to Build yields a vocabulary byte-identical to a sequential
// ExtractSource loop at any worker count.
//
// errs[i] is non-nil for scripts that fail to parse (callers typically
// drop them, as the paper does) or whose extraction panicked (the panic
// is recovered per-slot; errs[i] wraps ErrPanic). The returned error is
// non-nil only when ctx is cancelled; slots not yet fed keep nil sets and
// nil errors.
func ExtractAll(ctx context.Context, sources []string, set Set, workers int) (sets []map[string]bool, errs []error, err error) {
	sets = make([]map[string]bool, len(sources))
	errs = make([]error, len(sources))
	err = crawler.ForEach(ctx, clampWorkers(workers), len(sources), func(i int) {
		if perr := runIsolated(func() {
			prog, _, e := jsast.ParseAndUnpack(sources[i])
			if e != nil {
				errs[i] = e
				return
			}
			sets[i] = Extract(prog, set)
		}); perr != nil {
			sets[i] = nil
			errs[i] = perr
		}
	})
	return sets, errs, err
}
