package features

import (
	"context"

	"adwars/internal/crawler"
	"adwars/internal/jsast"
)

// ExtractAll fans unpack+parse+Extract for a script corpus out over the
// shared crawler worker pool. Results land in caller-visible slots indexed
// by input position, so the output order is the input order and feeding
// the sets to Build yields a vocabulary byte-identical to a sequential
// ExtractSource loop at any worker count.
//
// errs[i] is non-nil for scripts that fail to parse (callers typically
// drop them, as the paper does). The returned error is non-nil only when
// ctx is cancelled; slots not yet fed keep nil sets and nil errors.
func ExtractAll(ctx context.Context, sources []string, set Set, workers int) (sets []map[string]bool, errs []error, err error) {
	sets = make([]map[string]bool, len(sources))
	errs = make([]error, len(sources))
	err = crawler.ForEach(ctx, clampWorkers(workers), len(sources), func(i int) {
		prog, _, e := jsast.ParseAndUnpack(sources[i])
		if e != nil {
			errs[i] = e
			return
		}
		sets[i] = Extract(prog, set)
	})
	return sets, errs, err
}
