package features

import (
	"testing"
)

func TestSetFromString(t *testing.T) {
	for _, s := range Sets {
		got, err := SetFromString(s.String())
		if err != nil || got != s {
			t.Errorf("SetFromString(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := SetFromString("bogus"); err == nil {
		t.Error("unknown set name must error")
	}
}

func TestVocabProjectMatchesDataset(t *testing.T) {
	sets := []map[string]bool{
		{"a:x": true, "b:y": true},
		{"b:y": true, "c:z": true},
		{"a:x": true, "c:z": true, "d:w": true},
	}
	ds, err := Build(sets, []int{+1, -1, +1})
	if err != nil {
		t.Fatal(err)
	}
	fromNames := NewVocab(ds.Vocab)
	fromDataset := ds.Vocabulary()
	if fromNames.Len() != ds.NumFeatures() || fromDataset.Len() != ds.NumFeatures() {
		t.Fatalf("vocab sizes %d/%d, want %d", fromNames.Len(), fromDataset.Len(), ds.NumFeatures())
	}
	probe := map[string]bool{"a:x": true, "c:z": true, "unseen:q": true}
	want := ds.Project(probe)
	for _, v := range []*Vocab{fromNames, fromDataset} {
		got := v.Project(probe)
		if len(got) != len(want) {
			t.Fatalf("projected %v, want %v", got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("projected %v, want %v", got, want)
			}
		}
	}
	// NewVocab copies its input: mutating the source must not leak in.
	names := append([]string(nil), ds.Vocab...)
	v := NewVocab(names)
	names[0] = "mutated"
	if v.Names()[0] == "mutated" {
		t.Error("NewVocab aliases caller slice")
	}
}
