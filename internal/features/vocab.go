package features

import (
	"fmt"
	"sort"
)

// SetFromString parses a feature-set name ("all", "literal", "keyword") as
// printed by Set.String. Model snapshots store the set by name, so the
// serving layer round-trips through this.
func SetFromString(name string) (Set, error) {
	for _, s := range Sets {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("features: unknown feature set %q", name)
}

// Vocab is a frozen feature vocabulary detached from any Dataset: the
// selected feature names in index order plus the reverse index. The serving
// layer projects incoming scripts through a Vocab loaded from a model
// snapshot; Vocab.Project and Dataset.Project produce identical Samples for
// the same vocabulary (asserted by tests), so a served model sees exactly
// the vectors it was trained on.
type Vocab struct {
	names []string
	index map[string]int
}

// NewVocab builds a Vocab from feature names in index order. The slice is
// copied, so the Vocab is immutable and safe for concurrent use.
func NewVocab(names []string) *Vocab {
	v := &Vocab{
		names: append([]string(nil), names...),
		index: make(map[string]int, len(names)),
	}
	for i, f := range v.names {
		v.index[f] = i
	}
	return v
}

// Vocabulary returns the dataset's vocabulary as a standalone Vocab (shares
// the underlying read-only storage).
func (d *Dataset) Vocabulary() *Vocab {
	return &Vocab{names: d.Vocab, index: d.index}
}

// Len returns the vocabulary size.
func (v *Vocab) Len() int { return len(v.names) }

// Names returns the feature names in index order. The returned slice must
// not be modified.
func (v *Vocab) Names() []string { return v.names }

// Project maps a script's feature set onto the vocabulary, ignoring unseen
// features — the same semantics as Dataset.Project.
func (v *Vocab) Project(fs map[string]bool) Sample {
	var s Sample
	for f := range fs {
		if i, ok := v.index[f]; ok {
			s = append(s, int32(i))
		}
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}
