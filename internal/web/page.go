package web

import (
	"adwars/internal/abp"
)

// Request is one subresource request a page issues while loading.
type Request struct {
	// URL is the absolute request URL.
	URL string
	// Type is the resource type as an adblocker would classify it.
	Type abp.RequestType
}

// Script is one JavaScript resource of a page: external (URL set, Source
// holds the fetched body) or inline (URL empty).
type Script struct {
	// URL is the script's source URL, or "" for inline scripts.
	URL string
	// Source is the JavaScript text.
	Source string
	// AntiAdblock marks ground truth: whether this script implements
	// adblock detection. The label generator of §5 never reads it — only
	// evaluation does.
	AntiAdblock bool
}

// Page is a website's homepage as the crawler sees it at one point in time.
type Page struct {
	// Domain is the registrable domain serving the page.
	Domain string
	// Title is the page title.
	Title string
	// Root is the document tree (the <html> element).
	Root *Element
	// Requests are all subresource requests issued during load, in order.
	Requests []Request
	// Scripts are the page's JavaScript resources.
	Scripts []Script
}

// URL returns the page's canonical homepage URL.
func (p *Page) URL() string { return "http://" + p.Domain + "/" }

// AddRequest records a subresource request.
func (p *Page) AddRequest(url string, typ abp.RequestType) {
	p.Requests = append(p.Requests, Request{URL: url, Type: typ})
}

// Elements returns the flattened document tree.
func (p *Page) Elements() []*Element {
	if p.Root == nil {
		return nil
	}
	return p.Root.Flatten()
}

// NewPage builds an empty page skeleton (html > head + body).
func NewPage(domain, title string) *Page {
	head := NewElement("head", "")
	body := NewElement("body", "")
	root := NewElement("html", "").Append(head, body)
	return &Page{Domain: domain, Title: title, Root: root}
}

// Head returns the page's <head> element (nil if the tree was replaced).
func (p *Page) Head() *Element { return p.findTag("head") }

// Body returns the page's <body> element (nil if the tree was replaced).
func (p *Page) Body() *Element { return p.findTag("body") }

func (p *Page) findTag(tag string) *Element {
	if p.Root == nil {
		return nil
	}
	for _, e := range p.Root.Flatten() {
		if e.Tag == tag {
			return e
		}
	}
	return nil
}
