package web

import (
	"strings"
	"testing"
	"testing/quick"

	"adwars/internal/abp"
)

func samplePage() *Page {
	p := NewPage("dailynews.com", "Daily News")
	script := NewElement("script", "")
	script.SetAttr("src", "http://cdn.dailynews.com/app.js")
	p.Head().Append(script)

	banner := NewElement("div", "noticeMain", "adblock-notice", "overlay")
	banner.SetStyle("display", "block")
	banner.Text = "Please disable your adblocker & support us"
	content := NewElement("div", "content")
	content.Text = "Today's headlines"
	img := NewElement("img", "")
	img.SetAttr("src", "http://img.dailynews.com/logo.png")
	p.Body().Append(banner, content, img)

	p.AddRequest("http://cdn.dailynews.com/app.js", abp.TypeScript)
	p.AddRequest("http://img.dailynews.com/logo.png", abp.TypeImage)
	return p
}

func TestPageSkeleton(t *testing.T) {
	p := NewPage("x.com", "X")
	if p.Head() == nil || p.Body() == nil {
		t.Fatal("skeleton must contain head and body")
	}
	if p.URL() != "http://x.com/" {
		t.Fatalf("URL = %q", p.URL())
	}
}

func TestElementFlattenAndFind(t *testing.T) {
	p := samplePage()
	elems := p.Elements()
	if len(elems) != 7 { // html, head, script, body, banner, content, img
		t.Fatalf("flatten = %d elements, want 7", len(elems))
	}
	if p.Root.Find("noticeMain") == nil {
		t.Fatal("Find(noticeMain) failed")
	}
	if p.Root.Find("absent") != nil {
		t.Fatal("Find(absent) should be nil")
	}
}

func TestToABP(t *testing.T) {
	p := samplePage()
	banner := p.Root.Find("noticeMain").ToABP()
	if banner.ID != "noticeMain" || banner.Tag != "div" {
		t.Fatalf("adapted element = %+v", banner)
	}
	if !banner.HasClass("adblock-notice") || !banner.HasClass("overlay") {
		t.Fatal("classes lost in adaptation")
	}
	if !strings.Contains(banner.Attrs["style"], "display:block") {
		t.Fatalf("style attr = %q", banner.Attrs["style"])
	}
}

func TestRenderParseRoundTrip(t *testing.T) {
	p := samplePage()
	html := RenderHTML(p)
	for _, want := range []string{
		`id="noticeMain"`, `class="adblock-notice overlay"`,
		`src="http://img.dailynews.com/logo.png"`, "<!DOCTYPE html>",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("rendered HTML missing %q", want)
		}
	}

	root := ParseHTML(html)
	if root == nil || root.Tag != "html" {
		t.Fatalf("parsed root = %+v", root)
	}
	banner := root.Find("noticeMain")
	if banner == nil {
		t.Fatal("banner lost in round trip")
	}
	if len(banner.Classes) != 2 || banner.Classes[0] != "adblock-notice" {
		t.Fatalf("banner classes = %v", banner.Classes)
	}
	if banner.Style["display"] != "block" {
		t.Fatalf("banner style = %v", banner.Style)
	}
	if !strings.Contains(banner.Text, "disable your adblocker") {
		t.Fatalf("banner text = %q", banner.Text)
	}
}

func TestParseHTMLScriptRawText(t *testing.T) {
	html := `<html><head><script>if (a < b && c > d) { detect(); }</script></head><body></body></html>`
	root := ParseHTML(html)
	var script *Element
	for _, e := range root.Flatten() {
		if e.Tag == "script" {
			script = e
		}
	}
	if script == nil {
		t.Fatal("script element missing")
	}
	if !strings.Contains(script.Text, "a < b && c > d") {
		t.Fatalf("script text = %q", script.Text)
	}
}

func TestParseHTMLTolerance(t *testing.T) {
	cases := []string{
		"",
		"no tags at all",
		"<html><body><div><p>unclosed",
		"<html></p></html>",             // stray close
		"<html><div id=>x</div></html>", // empty attr value
		"<html><br><img src=x></html>",
		"<!-- only a comment -->",
		"<html><script>never closed",
	}
	for _, src := range cases {
		// Must not panic; result may be nil.
		_ = ParseHTML(src)
	}
}

func TestParseHTMLUnquotedAttrs(t *testing.T) {
	root := ParseHTML(`<html><body><div id=bait class=x data-n=1></div></body></html>`)
	d := root.Find("bait")
	if d == nil {
		t.Fatal("unquoted id attr not parsed")
	}
	if len(d.Classes) != 1 || d.Classes[0] != "x" {
		t.Fatalf("classes = %v", d.Classes)
	}
	if d.Attrs["data-n"] != "1" {
		t.Fatalf("attrs = %v", d.Attrs)
	}
}

func TestParseHTMLEntities(t *testing.T) {
	root := ParseHTML(`<html><body><div id="q">a &amp; b &lt;tag&gt;</div></body></html>`)
	d := root.Find("q")
	if d.Text != "a & b <tag>" {
		t.Fatalf("text = %q", d.Text)
	}
}

func TestParseHTMLNeverPanics(t *testing.T) {
	f := func(src string) bool {
		_ = ParseHTML(src)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRenderDeterministic(t *testing.T) {
	p := samplePage()
	p.Root.Find("noticeMain").SetAttr("data-b", "2")
	p.Root.Find("noticeMain").SetAttr("data-a", "1")
	h1 := RenderHTML(p)
	h2 := RenderHTML(p)
	if h1 != h2 {
		t.Fatal("rendering must be deterministic")
	}
	if strings.Index(h1, "data-a") > strings.Index(h1, "data-b") {
		t.Fatal("attributes must render in sorted order")
	}
}

func TestVoidElementsNoCloseTag(t *testing.T) {
	p := NewPage("x.com", "X")
	img := NewElement("img", "")
	img.SetAttr("src", "a.png")
	p.Body().Append(img)
	html := RenderHTML(p)
	if strings.Contains(html, "</img>") {
		t.Fatal("void element rendered with close tag")
	}
}
