// Package web models the synthetic websites the measurement pipeline
// crawls: a small DOM, page-level subresource requests, scripts, and an
// HTML serialization with a tolerant parser so that archived page content
// can be stored as real HTML text and re-opened by the browser substrate —
// the same shape as the paper's crawl, which stores HTML files and HAR
// logs and replays them against filter lists.
package web

import (
	"sort"
	"strings"

	"adwars/internal/abp"
)

// Element is one DOM element. Children form the document tree.
type Element struct {
	// Tag is the lower-case tag name.
	Tag string
	// ID is the id attribute ("" when absent).
	ID string
	// Classes are the class attribute tokens.
	Classes []string
	// Attrs holds other attributes (lower-case names). May be nil.
	Attrs map[string]string
	// Style holds inline CSS properties (lower-case names). May be nil.
	Style map[string]string
	// Text is the element's direct text content.
	Text string
	// Children are nested elements in document order.
	Children []*Element
}

// SetAttr sets an attribute, allocating the map on first use.
func (e *Element) SetAttr(name, value string) {
	if e.Attrs == nil {
		e.Attrs = make(map[string]string)
	}
	e.Attrs[strings.ToLower(name)] = value
}

// SetStyle sets an inline CSS property.
func (e *Element) SetStyle(prop, value string) {
	if e.Style == nil {
		e.Style = make(map[string]string)
	}
	e.Style[strings.ToLower(prop)] = value
}

// Append adds children and returns the element for chaining.
func (e *Element) Append(children ...*Element) *Element {
	e.Children = append(e.Children, children...)
	return e
}

// Flatten returns the element and all descendants in document order.
func (e *Element) Flatten() []*Element {
	out := []*Element{e}
	for _, c := range e.Children {
		out = append(out, c.Flatten()...)
	}
	return out
}

// Find returns the first descendant (or the element itself) with the given
// id, or nil.
func (e *Element) Find(id string) *Element {
	for _, el := range e.Flatten() {
		if el.ID == id {
			return el
		}
	}
	return nil
}

// ToABP adapts the element to the filter engine's element view.
func (e *Element) ToABP() *abp.Element {
	attrs := make(map[string]string, len(e.Attrs)+1)
	for k, v := range e.Attrs {
		attrs[k] = v
	}
	if len(e.Style) > 0 {
		attrs["style"] = e.styleString()
	}
	return &abp.Element{
		Tag:     e.Tag,
		ID:      e.ID,
		Classes: append([]string(nil), e.Classes...),
		Attrs:   attrs,
	}
}

func (e *Element) styleString() string {
	props := make([]string, 0, len(e.Style))
	for k := range e.Style {
		props = append(props, k)
	}
	sort.Strings(props)
	var b strings.Builder
	for i, k := range props {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(k)
		b.WriteByte(':')
		b.WriteString(e.Style[k])
	}
	return b.String()
}

// NewElement builds an element with optional id and classes.
func NewElement(tag, id string, classes ...string) *Element {
	return &Element{Tag: strings.ToLower(tag), ID: id, Classes: classes}
}
