package web

import (
	"sort"
	"strings"
)

// voidElements never have closing tags.
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// rawTextElements contain raw text until their closing tag.
var rawTextElements = map[string]bool{"script": true, "style": true}

// RenderHTML serializes the page to an HTML document, the form in which
// page content is archived (the paper stores the crawled page as an HTML
// file alongside its HAR log).
func RenderHTML(p *Page) string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n")
	if p.Root != nil {
		renderElement(&b, p.Root)
	}
	b.WriteByte('\n')
	return b.String()
}

func renderElement(b *strings.Builder, e *Element) {
	b.WriteByte('<')
	b.WriteString(e.Tag)
	if e.ID != "" {
		b.WriteString(` id="`)
		b.WriteString(escapeAttr(e.ID))
		b.WriteByte('"')
	}
	if len(e.Classes) > 0 {
		b.WriteString(` class="`)
		b.WriteString(escapeAttr(strings.Join(e.Classes, " ")))
		b.WriteByte('"')
	}
	if len(e.Style) > 0 {
		b.WriteString(` style="`)
		b.WriteString(escapeAttr(e.styleString()))
		b.WriteByte('"')
	}
	// Render attributes in sorted order for deterministic output.
	if len(e.Attrs) > 0 {
		names := make([]string, 0, len(e.Attrs))
		for k := range e.Attrs {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			b.WriteByte(' ')
			b.WriteString(k)
			b.WriteString(`="`)
			b.WriteString(escapeAttr(e.Attrs[k]))
			b.WriteByte('"')
		}
	}
	b.WriteByte('>')
	if voidElements[e.Tag] {
		return
	}
	if rawTextElements[e.Tag] {
		b.WriteString(e.Text) // raw content, not escaped
	} else if e.Text != "" {
		b.WriteString(escapeText(e.Text))
	}
	for _, c := range e.Children {
		renderElement(b, c)
	}
	b.WriteString("</")
	b.WriteString(e.Tag)
	b.WriteByte('>')
}

func escapeText(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	return strings.ReplaceAll(s, ">", "&gt;")
}

func escapeAttr(s string) string {
	return strings.ReplaceAll(escapeText(s), `"`, "&quot;")
}

func unescape(s string) string {
	if !strings.Contains(s, "&") {
		return s
	}
	r := strings.NewReplacer(
		"&lt;", "<", "&gt;", ">", "&quot;", `"`, "&#39;", "'", "&amp;", "&")
	return r.Replace(s)
}

// ParseHTML parses an HTML document back into an element tree. The parser
// is tolerant, like a browser: unknown constructs are skipped, unclosed
// tags are closed implicitly, and stray close tags are ignored. It returns
// the root element (nil for input without any tags).
func ParseHTML(src string) *Element {
	p := htmlParser{src: src}
	return p.parse()
}

type htmlParser struct {
	src string
	pos int
}

func (p *htmlParser) parse() *Element {
	root := &Element{Tag: "#root"}
	stack := []*Element{root}
	top := func() *Element { return stack[len(stack)-1] }

	for p.pos < len(p.src) {
		lt := strings.IndexByte(p.src[p.pos:], '<')
		if lt < 0 {
			top().Text += unescape(strings.TrimSpace(p.src[p.pos:]))
			break
		}
		if lt > 0 {
			text := strings.TrimSpace(p.src[p.pos : p.pos+lt])
			if text != "" {
				top().Text += unescape(text)
			}
			p.pos += lt
		}
		switch {
		case strings.HasPrefix(p.src[p.pos:], "<!--"):
			end := strings.Index(p.src[p.pos:], "-->")
			if end < 0 {
				p.pos = len(p.src)
			} else {
				p.pos += end + 3
			}
		case strings.HasPrefix(p.src[p.pos:], "<!"), strings.HasPrefix(p.src[p.pos:], "<?"):
			end := strings.IndexByte(p.src[p.pos:], '>')
			if end < 0 {
				p.pos = len(p.src)
			} else {
				p.pos += end + 1
			}
		case strings.HasPrefix(p.src[p.pos:], "</"):
			end := strings.IndexByte(p.src[p.pos:], '>')
			if end < 0 {
				p.pos = len(p.src)
				break
			}
			name := strings.ToLower(strings.TrimSpace(p.src[p.pos+2 : p.pos+end]))
			p.pos += end + 1
			// Pop to the matching open tag, if any.
			for i := len(stack) - 1; i > 0; i-- {
				if stack[i].Tag == name {
					stack = stack[:i]
					break
				}
			}
		default:
			el, ok := p.openTag()
			if !ok {
				p.pos++ // stray '<'
				continue
			}
			top().Children = append(top().Children, el)
			if rawTextElements[el.Tag] {
				el.Text = p.rawTextUntilClose(el.Tag)
			} else if !voidElements[el.Tag] {
				stack = append(stack, el)
			}
		}
	}

	// A well-formed document has exactly one top-level element (<html>).
	switch len(root.Children) {
	case 0:
		return nil
	case 1:
		return root.Children[0]
	default:
		root.Tag = "html"
		return root
	}
}

// openTag parses "<tag attr=... >" starting at p.pos ('<'). Returns false
// when the text is not a valid open tag.
func (p *htmlParser) openTag() (*Element, bool) {
	end := strings.IndexByte(p.src[p.pos:], '>')
	if end < 0 {
		return nil, false
	}
	body := p.src[p.pos+1 : p.pos+end]
	body = strings.TrimSuffix(body, "/") // self-closing
	name, rest := splitTagName(body)
	if name == "" {
		return nil, false
	}
	p.pos += end + 1
	el := &Element{Tag: strings.ToLower(name)}
	for {
		var k, v string
		k, v, rest = nextAttr(rest)
		if k == "" {
			break
		}
		applyAttr(el, k, v)
	}
	return el, true
}

func splitTagName(body string) (name, rest string) {
	i := 0
	for i < len(body) && isTagNameByte(body[i]) {
		i++
	}
	if i == 0 {
		return "", ""
	}
	return body[:i], strings.TrimSpace(body[i:])
}

func isTagNameByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '-'
}

// nextAttr pulls one attribute off the tag body.
func nextAttr(s string) (name, value, rest string) {
	s = strings.TrimSpace(s)
	if s == "" {
		return "", "", ""
	}
	i := 0
	for i < len(s) && s[i] != '=' && s[i] != ' ' && s[i] != '\t' && s[i] != '\n' {
		i++
	}
	name = strings.ToLower(s[:i])
	s = strings.TrimSpace(s[i:])
	if !strings.HasPrefix(s, "=") {
		return name, "", s
	}
	s = strings.TrimSpace(s[1:])
	if s == "" {
		return name, "", ""
	}
	if s[0] == '"' || s[0] == '\'' {
		q := s[0]
		endQ := strings.IndexByte(s[1:], q)
		if endQ < 0 {
			return name, unescape(s[1:]), ""
		}
		return name, unescape(s[1 : 1+endQ]), s[endQ+2:]
	}
	j := 0
	for j < len(s) && s[j] != ' ' && s[j] != '\t' {
		j++
	}
	return name, unescape(s[:j]), s[j:]
}

func applyAttr(el *Element, name, value string) {
	switch name {
	case "id":
		el.ID = value
	case "class":
		el.Classes = strings.Fields(value)
	case "style":
		for _, decl := range strings.Split(value, ";") {
			if i := strings.IndexByte(decl, ':'); i > 0 {
				el.SetStyle(strings.TrimSpace(decl[:i]), strings.TrimSpace(decl[i+1:]))
			}
		}
	default:
		el.SetAttr(name, value)
	}
}

// rawTextUntilClose consumes raw content up to "</tag" and past its '>'.
func (p *htmlParser) rawTextUntilClose(tag string) string {
	lower := strings.ToLower(p.src[p.pos:])
	idx := strings.Index(lower, "</"+tag)
	if idx < 0 {
		text := p.src[p.pos:]
		p.pos = len(p.src)
		return text
	}
	text := p.src[p.pos : p.pos+idx]
	rest := p.src[p.pos+idx:]
	gt := strings.IndexByte(rest, '>')
	if gt < 0 {
		p.pos = len(p.src)
	} else {
		p.pos += idx + gt + 1
	}
	return text
}
