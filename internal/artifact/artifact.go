// Package artifact provides tamper/corruption-evident framing for the
// snapshot files handed between the offline pipelines and the serving
// layer. A sealed artifact is the payload bytes followed by a single
// trailer line carrying the payload length and a CRC64 of the payload:
//
//	<payload bytes, typically one JSON document ending in '\n'>
//	#adwars-integrity v1 len=1234 crc64=75d1b6a6e1a2b3c4
//
// The trailer is length-framed (a torn write that loses payload bytes
// breaks the length check even when the tail happens to survive) and
// checksummed (a bit flip anywhere in the payload breaks the CRC). The
// line starts with '#', which can never begin a JSON document, so legacy
// readers that ignore trailing garbage and new readers agree on where the
// payload ends. Un-sealed (legacy) files open cleanly with sealed=false;
// format owners decide whether that is acceptable for the schema version
// they parsed (version-1 snapshots predate sealing, version-2 snapshots
// require it — so truncating the trailer off a v2 file is detected).
package artifact

import (
	"errors"
	"fmt"
	"hash/crc64"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// TrailerPrefix starts every integrity trailer line.
const TrailerPrefix = "#adwars-integrity "

// TrailerVersion is the current trailer format version.
const TrailerVersion = 1

// ErrCorrupt is the sentinel every corruption failure wraps: callers use
// errors.Is(err, ErrCorrupt) to distinguish "this artifact is damaged"
// from "this is not an artifact of the expected format at all".
var ErrCorrupt = errors.New("artifact: corrupt")

// CorruptError is the structured corruption report: what check failed and
// the observed vs expected values. It wraps ErrCorrupt.
type CorruptError struct {
	// Reason is a short machine-friendly kind: "trailer-malformed",
	// "length-mismatch", "checksum-mismatch", "missing-trailer".
	Reason string
	// Detail is the human-readable specifics.
	Detail string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("artifact: corrupt (%s): %s", e.Reason, e.Detail)
}

func (e *CorruptError) Unwrap() error { return ErrCorrupt }

// Corruptf builds a CorruptError; format owners use it to report
// corruption conditions the trailer itself cannot see (e.g. a schema
// version that requires sealing found without a trailer).
func Corruptf(reason, format string, args ...any) error {
	return &CorruptError{Reason: reason, Detail: fmt.Sprintf(format, args...)}
}

// crcTable is the ECMA polynomial table shared by Seal and Open.
var crcTable = crc64.MakeTable(crc64.ECMA)

// Checksum returns the CRC64 (ECMA) of payload — the value carried in the
// trailer.
func Checksum(payload []byte) uint64 { return crc64.Checksum(payload, crcTable) }

// Seal returns payload with an integrity trailer line appended. The
// payload should end with '\n' (JSON encoders do); if it does not, a
// newline is inserted so the trailer stays on its own line.
func Seal(payload []byte) []byte {
	out := make([]byte, 0, len(payload)+64)
	out = append(out, payload...)
	if len(out) > 0 && out[len(out)-1] != '\n' {
		out = append(out, '\n')
	}
	out = append(out, fmt.Sprintf("%sv%d len=%d crc64=%016x\n",
		TrailerPrefix, TrailerVersion, len(payload), Checksum(payload))...)
	return out
}

// Open splits data into payload and trailer and verifies the trailer when
// present. It returns (payload, true, nil) for a sealed artifact that
// verifies, (data, false, nil) for an un-sealed (legacy) artifact, and a
// CorruptError when a trailer is present but malformed or fails its
// length or checksum check.
func Open(data []byte) (payload []byte, sealed bool, err error) {
	line, start := lastLine(data)
	if !strings.HasPrefix(line, TrailerPrefix) {
		return data, false, nil
	}
	wantLen, wantCRC, err := parseTrailer(line)
	if err != nil {
		return nil, false, err
	}
	payload = data[:start]
	// The trailer states the exact payload length Seal saw; Seal only adds
	// a newline when the payload lacked one, so a sealed file's payload
	// region is either exactly wantLen bytes or wantLen plus that newline.
	switch {
	case len(payload) == wantLen:
	case len(payload) == wantLen+1 && payload[wantLen] == '\n':
		payload = payload[:wantLen]
	default:
		return nil, false, &CorruptError{
			Reason: "length-mismatch",
			Detail: fmt.Sprintf("trailer framed %d payload bytes, found %d (torn write?)", wantLen, len(payload)),
		}
	}
	if got := Checksum(payload); got != wantCRC {
		return nil, false, &CorruptError{
			Reason: "checksum-mismatch",
			Detail: fmt.Sprintf("payload crc64 %016x, trailer says %016x (bit rot?)", got, wantCRC),
		}
	}
	return payload, true, nil
}

// Version derives the content version of an artifact: the CRC64 of its
// payload rendered as 16 hex digits. The trailer is excluded, so a sealed
// artifact and the legacy file it was sealed from version identically,
// and re-sealing an unchanged payload never changes its version. The
// serving fleet and the snapshot control plane both use this as the
// snapshot identity they compare during rollouts. Corrupt artifacts have
// no version.
func Version(data []byte) (string, error) {
	payload, _, err := Open(data)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%016x", Checksum(payload)), nil
}

// WriteFileAtomic writes data to path via a temp file in the same
// directory plus rename, so concurrent readers (hot-reloading replicas,
// portfile-polling scripts) never observe a torn file.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Chmod(tmp.Name(), perm); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// lastLine returns the final non-empty line of data and the offset where
// it starts (i.e. everything before it).
func lastLine(data []byte) (line string, start int) {
	end := len(data)
	for end > 0 && data[end-1] == '\n' {
		end--
	}
	start = end
	for start > 0 && data[start-1] != '\n' {
		start--
	}
	return string(data[start:end]), start
}

// parseTrailer validates one trailer line of the form
// "#adwars-integrity v1 len=N crc64=HEX".
func parseTrailer(line string) (length int, crc uint64, err error) {
	fields := strings.Fields(strings.TrimPrefix(line, TrailerPrefix))
	if len(fields) != 3 {
		return 0, 0, &CorruptError{Reason: "trailer-malformed",
			Detail: fmt.Sprintf("want 3 trailer fields, got %d in %q", len(fields), line)}
	}
	ver, ok := strings.CutPrefix(fields[0], "v")
	if !ok {
		return 0, 0, &CorruptError{Reason: "trailer-malformed",
			Detail: fmt.Sprintf("bad trailer version field %q", fields[0])}
	}
	v, err2 := strconv.Atoi(ver)
	if err2 != nil || v < 1 || v > TrailerVersion {
		return 0, 0, &CorruptError{Reason: "trailer-malformed",
			Detail: fmt.Sprintf("unsupported trailer version %q (supported: v%d)", fields[0], TrailerVersion)}
	}
	lenStr, ok := strings.CutPrefix(fields[1], "len=")
	if !ok {
		return 0, 0, &CorruptError{Reason: "trailer-malformed",
			Detail: fmt.Sprintf("bad trailer length field %q", fields[1])}
	}
	length, err2 = strconv.Atoi(lenStr)
	if err2 != nil || length < 0 {
		return 0, 0, &CorruptError{Reason: "trailer-malformed",
			Detail: fmt.Sprintf("bad trailer length %q", lenStr)}
	}
	crcStr, ok := strings.CutPrefix(fields[2], "crc64=")
	if !ok {
		return 0, 0, &CorruptError{Reason: "trailer-malformed",
			Detail: fmt.Sprintf("bad trailer checksum field %q", fields[2])}
	}
	crc, err2 = strconv.ParseUint(crcStr, 16, 64)
	if err2 != nil {
		return 0, 0, &CorruptError{Reason: "trailer-malformed",
			Detail: fmt.Sprintf("bad trailer checksum %q", crcStr)}
	}
	return length, crc, nil
}
