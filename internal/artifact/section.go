package artifact

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
)

// Binary sections extend the artifact format with framed binary regions
// appended after a primary (text/JSON) document, all inside the payload
// the integrity trailer seals:
//
//	<primary document, ending in '\n'>
//	#adwars-section v1 name=automaton.0 len=8192 pad=3 crc64=9f…\n
//	<pad zero bytes><8192 data bytes>\n
//	#adwars-section v1 name=automaton.1 …
//	#adwars-integrity v1 len=… crc64=…
//
// Each header states its section's exact byte length, so parsing after the
// first header is length-directed — section data is opaque binary and may
// contain anything, including bytes that resemble headers. pad (0–7 zero
// bytes between the header line and the data) aligns the data start to 8
// bytes from the beginning of the payload; combined with an 8-aligned map
// base, an mmap consumer gets aligned views over the data for free. Like
// the trailer, headers begin with '#', which can never start a JSON
// document, so legacy readers that take the first line and ignore the
// rest still find the primary document.
//
// Sections ride inside the sealed payload: the trailer's CRC covers the
// primary and every section, so a bit flip anywhere is caught by Open
// before SplitSections ever runs; the per-section CRCs additionally
// localize damage (and catch it when the caller skips sealing).
const (
	// SectionPrefix starts every section header line.
	SectionPrefix = "#adwars-section "
	// SectionVersion is the current section header format version.
	SectionVersion = 1
	// sectionAlign is the alignment of each section's data start relative
	// to the beginning of the payload.
	sectionAlign = 8
)

// Section is one framed binary region of an artifact payload. Data
// aliases the payload it was split from (zero-copy, mmap-preserved) and
// must not be modified.
type Section struct {
	Name string
	Data []byte
}

// AppendSection appends a framed binary section to a payload under
// construction and returns the extended payload. name must be non-empty
// and free of spaces and control characters. The result is meant to be
// sealed (artifact.Seal) once all sections are appended.
func AppendSection(payload []byte, name string, data []byte) []byte {
	if name == "" || strings.ContainsAny(name, " \t\n\r") {
		panic(fmt.Sprintf("artifact: invalid section name %q", name))
	}
	if len(payload) > 0 && payload[len(payload)-1] != '\n' {
		payload = append(payload, '\n')
	}
	// The pad digit is always exactly one byte (0–7), so the header's
	// length does not depend on the pad value and the alignment equation
	// has a fixed point: compute the header once with pad=0, then set the
	// real pad from the resulting data offset.
	header := fmt.Sprintf("%sv%d name=%s len=%d pad=0 crc64=%016x\n",
		SectionPrefix, SectionVersion, name, len(data), Checksum(data))
	pad := (sectionAlign - (len(payload)+len(header))%sectionAlign) % sectionAlign
	if pad != 0 {
		header = strings.Replace(header, " pad=0 ", fmt.Sprintf(" pad=%d ", pad), 1)
	}
	payload = append(payload, header...)
	for i := 0; i < pad; i++ {
		payload = append(payload, 0)
	}
	payload = append(payload, data...)
	payload = append(payload, '\n')
	return payload
}

// sectionMark locates the first section header: a header line always
// follows a newline (or starts the payload). The primary document cannot
// contain the mark — a raw newline inside a JSON string is invalid JSON —
// and any later occurrence inside opaque section data is never searched
// for, because parsing after the first header is length-directed.
var sectionMark = []byte("\n" + SectionPrefix)

// SplitSections splits an opened artifact payload into the primary
// document and its binary sections, verifying each section's frame and
// checksum. Payloads with no sections return (payload, nil, nil).
// Callers pass the payload returned by Open, so the whole-file CRC has
// already been verified; section errors wrap ErrCorrupt all the same for
// callers that assemble payloads by other means.
func SplitSections(payload []byte) (primary []byte, sections []Section, err error) {
	var p int
	if bytes.HasPrefix(payload, []byte(SectionPrefix)) {
		p = 0
	} else if i := bytes.Index(payload, sectionMark); i >= 0 {
		p = i + 1
	} else {
		return payload, nil, nil
	}
	primary = payload[:p]
	for p < len(payload) {
		if !bytes.HasPrefix(payload[p:], []byte(SectionPrefix)) {
			return nil, nil, Corruptf("section-malformed",
				"expected section header at payload offset %d", p)
		}
		nl := bytes.IndexByte(payload[p:], '\n')
		if nl < 0 {
			return nil, nil, Corruptf("section-malformed",
				"unterminated section header at payload offset %d", p)
		}
		name, length, pad, crc, perr := parseSectionHeader(string(payload[p : p+nl]))
		if perr != nil {
			return nil, nil, perr
		}
		start := p + nl + 1 + pad
		end := start + length
		if end+1 > len(payload) {
			return nil, nil, Corruptf("section-length-mismatch",
				"section %q frames %d data bytes, payload has %d left (torn write?)",
				name, length, len(payload)-start)
		}
		for _, b := range payload[p+nl+1 : start] {
			if b != 0 {
				return nil, nil, Corruptf("section-malformed",
					"section %q has non-zero padding", name)
			}
		}
		data := payload[start:end]
		if got := Checksum(data); got != crc {
			return nil, nil, Corruptf("section-checksum-mismatch",
				"section %q data crc64 %016x, header says %016x (bit rot?)", name, got, crc)
		}
		if payload[end] != '\n' {
			return nil, nil, Corruptf("section-malformed",
				"section %q data not newline-terminated", name)
		}
		sections = append(sections, Section{Name: name, Data: data})
		p = end + 1
	}
	return primary, sections, nil
}

// parseSectionHeader validates one header line of the form
// "#adwars-section v1 name=N len=L pad=P crc64=HEX".
func parseSectionHeader(line string) (name string, length, pad int, crc uint64, err error) {
	malformed := func(format string, args ...any) (string, int, int, uint64, error) {
		return "", 0, 0, 0, Corruptf("section-malformed", format, args...)
	}
	fields := strings.Fields(strings.TrimPrefix(line, SectionPrefix))
	if len(fields) != 5 {
		return malformed("want 5 section header fields, got %d in %q", len(fields), line)
	}
	ver, ok := strings.CutPrefix(fields[0], "v")
	if !ok {
		return malformed("bad section version field %q", fields[0])
	}
	v, err2 := strconv.Atoi(ver)
	if err2 != nil || v < 1 || v > SectionVersion {
		return malformed("unsupported section version %q (supported: v%d)", fields[0], SectionVersion)
	}
	name, ok = strings.CutPrefix(fields[1], "name=")
	if !ok || name == "" {
		return malformed("bad section name field %q", fields[1])
	}
	lenStr, ok := strings.CutPrefix(fields[2], "len=")
	if !ok {
		return malformed("bad section length field %q", fields[2])
	}
	length, err2 = strconv.Atoi(lenStr)
	if err2 != nil || length < 0 {
		return malformed("bad section length %q", lenStr)
	}
	padStr, ok := strings.CutPrefix(fields[3], "pad=")
	if !ok {
		return malformed("bad section pad field %q", fields[3])
	}
	pad, err2 = strconv.Atoi(padStr)
	if err2 != nil || pad < 0 || pad >= sectionAlign {
		return malformed("bad section pad %q", padStr)
	}
	crcStr, ok := strings.CutPrefix(fields[4], "crc64=")
	if !ok {
		return malformed("bad section checksum field %q", fields[4])
	}
	crc, err2 = strconv.ParseUint(crcStr, 16, 64)
	if err2 != nil {
		return malformed("bad section checksum %q", crcStr)
	}
	return name, length, pad, crc, nil
}
