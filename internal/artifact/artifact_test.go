package artifact

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestSealOpenRoundTrip(t *testing.T) {
	for _, payload := range []string{
		"{\"hello\":\"world\"}\n",
		"{\"no-trailing-newline\":true}",
		"",
		"line one\nline two\n",
	} {
		sealed := Seal([]byte(payload))
		got, ok, err := Open(sealed)
		if err != nil {
			t.Fatalf("payload %q: %v", payload, err)
		}
		if !ok {
			t.Fatalf("payload %q: sealed artifact opened as legacy", payload)
		}
		if string(got) != payload {
			t.Fatalf("payload %q round-tripped to %q", payload, got)
		}
	}
}

func TestOpenLegacyPassthrough(t *testing.T) {
	legacy := []byte("{\"format\":\"adwars-model\",\"version\":1}\n")
	got, sealed, err := Open(legacy)
	if err != nil || sealed {
		t.Fatalf("legacy open: sealed=%v err=%v", sealed, err)
	}
	if !bytes.Equal(got, legacy) {
		t.Fatalf("legacy payload mutated: %q", got)
	}
}

func TestOpenDetectsPayloadBitFlip(t *testing.T) {
	sealed := Seal([]byte(`{"field":"value","n":12345}` + "\n"))
	for _, i := range []int{0, 5, 12, 20} {
		damaged := bytes.Clone(sealed)
		damaged[i] ^= 0x20
		_, _, err := Open(damaged)
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("flip at %d: err = %v, want ErrCorrupt", i, err)
		}
		var ce *CorruptError
		if !errors.As(err, &ce) || ce.Reason != "checksum-mismatch" {
			t.Errorf("flip at %d: err = %v, want checksum-mismatch", i, err)
		}
	}
}

func TestOpenDetectsTrailerDamage(t *testing.T) {
	sealed := string(Seal([]byte("payload\n")))
	// Flip a checksum hex digit.
	i := strings.LastIndex(sealed, "crc64=") + len("crc64=")
	flipped := sealed[:i] + flipHex(sealed[i]) + sealed[i+1:]
	if _, _, err := Open([]byte(flipped)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("flipped crc digit: err = %v, want ErrCorrupt", err)
	}
	// Mangle the length field.
	mangled := strings.Replace(sealed, "len=", "len=9", 1)
	if _, _, err := Open([]byte(mangled)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("mangled length: err = %v, want ErrCorrupt", err)
	}
	// Unsupported trailer version.
	future := strings.Replace(sealed, " v1 ", " v99 ", 1)
	if _, _, err := Open([]byte(future)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("future trailer version: err = %v, want ErrCorrupt", err)
	}
	// Garbage after the prefix.
	garbage := []byte("payload\n" + TrailerPrefix + "what even is this\n")
	if _, _, err := Open(garbage); !errors.Is(err, ErrCorrupt) {
		t.Errorf("garbage trailer: err = %v, want ErrCorrupt", err)
	}
}

func TestOpenDetectsTornPayload(t *testing.T) {
	payload := []byte(`{"a":1,"b":2,"c":3}` + "\n")
	sealed := Seal(payload)
	// Remove bytes from the middle so the trailer survives but frames the
	// wrong length — the shape of a torn write that lost a block.
	torn := append(bytes.Clone(sealed[:5]), sealed[10:]...)
	_, _, err := Open(torn)
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Reason != "length-mismatch" {
		t.Fatalf("torn payload: err = %v, want length-mismatch", err)
	}
}

func TestCorruptfWrapsSentinel(t *testing.T) {
	err := Corruptf("missing-trailer", "version %d requires sealing", 2)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Corruptf result does not wrap ErrCorrupt: %v", err)
	}
	if want := "version 2 requires sealing"; !strings.Contains(err.Error(), want) {
		t.Errorf("err = %q, want it to contain %q", err, want)
	}
}

func TestSealIsDeterministic(t *testing.T) {
	p := []byte(fmt.Sprintf("{\"n\":%d}\n", 42))
	if !bytes.Equal(Seal(p), Seal(p)) {
		t.Fatal("Seal is not deterministic")
	}
}

// flipHex returns a different valid hex digit.
func flipHex(c byte) string {
	if c == 'f' {
		return "0"
	}
	return "f"
}
