package artifact

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// knownReasons is the closed set of CorruptError reason tags; the fuzz
// target asserts corruption never reports outside it, so downstream
// consumers (the serve reload path, the control plane) can switch on the
// tag safely.
var knownReasons = map[string]bool{
	"trailer-malformed": true,
	"length-mismatch":   true,
	"checksum-mismatch": true,
	"missing-trailer":   true,
}

// FuzzParseTrailer drives Open (and through it parseTrailer) with
// arbitrary bytes, seeded with the corruption matrix the unit tests
// enumerate: valid sealed artifacts, payload bit flips, trailer digit
// flips, mangled length fields, future trailer versions, garbage after
// the prefix, torn payloads, and legacy unsealed files. The invariants:
// Open never panics, every failure is a structured CorruptError wrapping
// ErrCorrupt with a known reason tag, a clean sealed open re-seals to the
// identical artifact, and Version agrees with the payload checksum.
func FuzzParseTrailer(f *testing.F) {
	good := Seal([]byte(`{"field":"value","n":12345}` + "\n"))
	f.Add(good)
	f.Add(Seal(nil))
	f.Add(Seal([]byte("no trailing newline")))

	// Payload bit flips (checksum-mismatch).
	for _, i := range []int{0, 5, 12, 20} {
		damaged := bytes.Clone(good)
		damaged[i] ^= 0x20
		f.Add(damaged)
	}
	// Trailer damage: flipped crc digit, mangled length, future version,
	// garbage after the prefix (trailer-malformed / checksum-mismatch).
	s := string(good)
	i := strings.LastIndex(s, "crc64=") + len("crc64=")
	f.Add([]byte(s[:i] + "f" + s[i+1:]))
	f.Add([]byte(strings.Replace(s, "len=", "len=9", 1)))
	f.Add([]byte(strings.Replace(s, " v1 ", " v99 ", 1)))
	f.Add([]byte("payload\n" + TrailerPrefix + "what even is this\n"))
	f.Add([]byte(TrailerPrefix + "\n"))
	f.Add([]byte(TrailerPrefix + "v1 len=0 crc64=zzzz\n"))
	f.Add([]byte(TrailerPrefix + "v1 len=-5 crc64=0000000000000000\n"))
	// Torn payload: bytes missing from the middle (length-mismatch).
	f.Add(append(bytes.Clone(good[:5]), good[10:]...))
	// Legacy unsealed files pass through untouched.
	f.Add([]byte("{\"format\":\"adwars-model\",\"version\":1}\n"))
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, sealed, err := Open(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Open error does not wrap ErrCorrupt: %v", err)
			}
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("Open error is not a CorruptError: %v", err)
			}
			if !knownReasons[ce.Reason] {
				t.Fatalf("unknown corruption reason %q", ce.Reason)
			}
			if _, verr := Version(data); verr == nil {
				t.Fatal("Version succeeded on an artifact Open rejected")
			}
			return
		}
		if !sealed {
			if !bytes.Equal(payload, data) {
				t.Fatalf("legacy passthrough mutated payload: %q != %q", payload, data)
			}
		}
		// A clean open must survive the seal→open round trip bit-for-bit,
		// and version identically before and after sealing.
		resealed := Seal(payload)
		p2, s2, err2 := Open(resealed)
		if err2 != nil || !s2 {
			t.Fatalf("reseal of clean payload failed: sealed=%v err=%v", s2, err2)
		}
		if !bytes.Equal(p2, payload) {
			t.Fatalf("reseal round trip mutated payload: %q != %q", p2, payload)
		}
		v1, err := Version(data)
		if err != nil {
			t.Fatalf("Version failed on an artifact Open accepted: %v", err)
		}
		v2, err := Version(resealed)
		if err != nil || v1 != v2 {
			t.Fatalf("version changed across reseal: %q → %q (err %v)", v1, v2, err)
		}
	})
}
