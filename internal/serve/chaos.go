package serve

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"
)

// ChaosConfig parameterizes the deterministic fault-injection middleware.
// All rates are per-request probabilities in [0,1]; the zero value means
// no injection. Faults target only the data plane (/v1/*) so the control
// plane (/healthz, /admin/reload, /debug/vars) stays dependable for
// operators and harnesses even mid-chaos.
type ChaosConfig struct {
	// Seed drives the injection PRNG; the same seed over the same request
	// sequence injects the same faults.
	Seed int64
	// LatencyRate is the probability of sleeping Latency inside the
	// handler while holding an admission slot — injected latency therefore
	// consumes real serving capacity and, at rate×Latency high enough,
	// pushes the server into genuine load shedding.
	LatencyRate float64
	// Latency is the injected delay (0 = 5ms).
	Latency time.Duration
	// CloseRate is the probability of closing the connection before any
	// response bytes — the client sees a mid-exchange connection drop.
	CloseRate float64
	// TruncateRate is the probability of truncating the request body read
	// mid-stream, simulating a client (or proxy) that died while sending.
	TruncateRate float64
	// PanicRate is the probability of panicking inside request handling,
	// exercising the recovery boundary end to end.
	PanicRate float64
}

// Enabled reports whether any fault class is configured.
func (c *ChaosConfig) Enabled() bool {
	return c != nil && (c.LatencyRate > 0 || c.CloseRate > 0 || c.TruncateRate > 0 || c.PanicRate > 0)
}

func (c *ChaosConfig) latency() time.Duration {
	if c.Latency > 0 {
		return c.Latency
	}
	return 5 * time.Millisecond
}

// chaosAction is the exclusive fault drawn for one request (latency is a
// separate, composable draw taken later, inside admission).
type chaosAction int

const (
	chaosNone chaosAction = iota
	chaosClose
	chaosTruncate
	chaosPanic
)

// chaosState is the live injection engine: the config plus the seeded,
// mutex-guarded PRNG both the middleware (transport faults) and the
// admitted handler path (latency faults) draw from.
type chaosState struct {
	cfg *ChaosConfig
	mu  sync.Mutex
	rng *rand.Rand
}

func newChaosState(cc *ChaosConfig) *chaosState {
	return &chaosState{cfg: cc, rng: rand.New(rand.NewSource(cc.Seed))}
}

// drawAction picks the exclusive transport fault for one request.
func (cs *chaosState) drawAction() chaosAction {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	switch u := cs.rng.Float64(); {
	case u < cs.cfg.CloseRate:
		return chaosClose
	case u < cs.cfg.CloseRate+cs.cfg.TruncateRate:
		return chaosTruncate
	case u < cs.cfg.CloseRate+cs.cfg.TruncateRate+cs.cfg.PanicRate:
		return chaosPanic
	}
	return chaosNone
}

// drawLatency decides whether this request gets injected latency and how
// much. Called from inside admission so the sleep occupies a worker slot.
func (cs *chaosState) drawLatency() (time.Duration, bool) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.rng.Float64() < cs.cfg.LatencyRate {
		return cs.cfg.latency(), true
	}
	return 0, false
}

// withChaos wraps next in seeded transport-fault injection. It sits inside
// the recovery boundary, so injected panics are recovered and counted like
// real ones, and outside the handlers, so truncated bodies and closed
// connections hit the same code paths a misbehaving network produces.
// (Latency faults are injected separately, inside admission — see
// Server.admitted — so they burn real capacity.)
func (s *Server) withChaos(next http.Handler) http.Handler {
	cc := s.chaos.cfg
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/") {
			next.ServeHTTP(w, r)
			return
		}
		switch s.chaos.drawAction() {
		case chaosClose:
			s.met.chaos.closeInjections.Add(1)
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					conn.Close()
					return
				}
			}
			// No hijack support: abort the connection the sanctioned way.
			panic(http.ErrAbortHandler)
		case chaosTruncate:
			s.met.chaos.truncateInjection.Add(1)
			r.Body = &truncatedBody{inner: r.Body, remaining: 3}
		case chaosPanic:
			s.met.chaos.panicInjections.Add(1)
			panic(fmt.Sprintf("chaos: injected panic (seed %d)", cc.Seed))
		}
		next.ServeHTTP(w, r)
	})
}

// truncatedBody yields a few bytes of the real body and then fails the
// read mid-stream, exactly like a peer that vanished while sending.
type truncatedBody struct {
	inner     io.ReadCloser
	remaining int
}

func (t *truncatedBody) Read(p []byte) (int, error) {
	if t.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if len(p) > t.remaining {
		p = p[:t.remaining]
	}
	n, err := t.inner.Read(p)
	t.remaining -= n
	if err == io.EOF {
		// The real body ended before the cut: pass the EOF through so tiny
		// bodies still parse and the fault only hits bodies long enough to
		// truncate.
		return n, err
	}
	if t.remaining <= 0 {
		return n, io.ErrUnexpectedEOF
	}
	return n, err
}

func (t *truncatedBody) Close() error { return t.inner.Close() }
