package serve

import (
	"encoding/json"
	"io"
	"math/bits"
	"sync/atomic"
	"time"
)

// histogram is a lock-free log₂-bucketed latency histogram: bucket i counts
// observations with ceil(log₂(ns)) == i, covering 1ns through ~2.3 hours.
// Quantiles are read as the upper bound of the bucket where the cumulative
// count crosses the quantile — at most one power of two of error, which is
// plenty for p50/p99 serving dashboards.
type histogram struct {
	buckets [44]atomic.Uint64
	count   atomic.Uint64
	sumNs   atomic.Uint64
	maxNs   atomic.Uint64
}

func (h *histogram) Observe(d time.Duration) {
	ns := uint64(d.Nanoseconds())
	if d < 0 {
		ns = 0
	}
	i := bits.Len64(ns)
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(ns)
	for {
		cur := h.maxNs.Load()
		if ns <= cur || h.maxNs.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Quantile returns the approximate q-quantile (0 < q ≤ 1) in nanoseconds.
func (h *histogram) Quantile(q float64) uint64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	want := uint64(q * float64(total))
	if want < 1 {
		want = 1
	}
	var seen uint64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= want {
			if i == 0 {
				return 0
			}
			return 1 << uint(i) // upper bound of bucket i: 2^i ns
		}
	}
	return h.maxNs.Load()
}

// windowQuantile returns the approximate q-quantile over only the
// observations recorded since the previous call with the same prev
// array, updating prev in place to the current bucket counts. The
// overload governor needs windowed pressure — the cumulative Quantile
// never forgets an overload, so a ladder keyed on it would never
// recover. An empty window returns 0 (calm), which is exactly right:
// no traffic is no pressure. Same bucket semantics as Quantile.
func (h *histogram) windowQuantile(prev *[44]uint64, q float64) uint64 {
	var deltas [44]uint64
	var total uint64
	for i := range h.buckets {
		cur := h.buckets[i].Load()
		deltas[i] = cur - prev[i]
		prev[i] = cur
		total += deltas[i]
	}
	if total == 0 {
		return 0
	}
	want := uint64(q * float64(total))
	if want < 1 {
		want = 1
	}
	var seen uint64
	for i := range deltas {
		seen += deltas[i]
		if seen >= want {
			if i == 0 {
				return 0
			}
			return 1 << uint(i) // upper bound of bucket i: 2^i ns
		}
	}
	return 0
}

// latencySnapshot is the JSON shape of one histogram.
type latencySnapshot struct {
	Count  uint64 `json:"count"`
	MeanNs uint64 `json:"mean_ns"`
	P50Ns  uint64 `json:"p50_ns"`
	P90Ns  uint64 `json:"p90_ns"`
	P99Ns  uint64 `json:"p99_ns"`
	MaxNs  uint64 `json:"max_ns"`
}

func (h *histogram) snapshot() latencySnapshot {
	s := latencySnapshot{
		Count: h.count.Load(),
		P50Ns: h.Quantile(0.50),
		P90Ns: h.Quantile(0.90),
		P99Ns: h.Quantile(0.99),
		MaxNs: h.maxNs.Load(),
	}
	if s.Count > 0 {
		s.MeanNs = h.sumNs.Load() / s.Count
	}
	return s
}

// endpointStats aggregates one endpoint's counters.
type endpointStats struct {
	requests   atomic.Uint64 // requests that produced a response (any status)
	errors     atomic.Uint64 // 4xx responses other than sheds
	shed       atomic.Uint64 // 429s from admission control
	batchItems atomic.Uint64 // items carried by batch requests
	latency    histogram
}

type endpointSnapshot struct {
	Requests   uint64          `json:"requests"`
	Errors     uint64          `json:"errors"`
	Shed       uint64          `json:"shed"`
	BatchItems uint64          `json:"batch_items,omitempty"`
	Latency    latencySnapshot `json:"latency"`
}

// endpoint keys, fixed at construction so handlers never allocate or lock
// to find their stats.
const (
	epMatch         = "match"
	epMatchBatch    = "match_batch"
	epClassify      = "classify"
	epClassifyBatch = "classify_batch"
)

var endpointKeys = []string{epMatch, epMatchBatch, epClassify, epClassifyBatch}

// chaosStats counts the faults the chaos middleware injected, so a chaos
// run's client-side accounting can be reconciled against what the server
// actually did.
type chaosStats struct {
	latencyInjections atomic.Uint64
	closeInjections   atomic.Uint64
	truncateInjection atomic.Uint64
	panicInjections   atomic.Uint64
}

type chaosSnapshot struct {
	LatencyInjections  uint64 `json:"latency_injections"`
	CloseInjections    uint64 `json:"close_injections"`
	TruncateInjections uint64 `json:"truncate_injections"`
	PanicInjections    uint64 `json:"panic_injections"`
}

// metrics is the server's full counter tree, exported as one JSON object
// under "adwars_serve" in /debug/vars.
type metrics struct {
	endpoints    map[string]*endpointStats
	queueDepth   *atomic.Int64 // admission queue depth (shared gauge)
	reloads      atomic.Uint64
	reloadErrors atomic.Uint64
	// reloadRejected counts reloads refused because a snapshot file failed
	// its integrity check (subset of reloadErrors): the last-good snapshots
	// kept serving.
	reloadRejected atomic.Uint64
	// pushes counts snapshots installed via control-plane push
	// (/admin/snapshot POST), a subset of reloads.
	pushes atomic.Uint64
	// panicsRecovered counts panics converted into structured 500s by the
	// recovery boundary instead of killing the process.
	panicsRecovered atomic.Uint64
	// deadlineRefused counts requests refused at admission because their
	// propagated X-Adwars-Deadline could not cover even the queue wait —
	// work the server declined rather than finish after the caller had
	// already hung up.
	deadlineRefused atomic.Uint64
	// degradeShed counts requests shed pre-admission by the overload
	// governor's ladder (L3 sheds classify, L4 also sheds match batches).
	degradeShed atomic.Uint64
	// chaos counters are exported only when fault injection is configured.
	chaos        chaosStats
	chaosEnabled bool
}

func newMetrics(queueDepth *atomic.Int64) *metrics {
	m := &metrics{
		endpoints:  make(map[string]*endpointStats, len(endpointKeys)),
		queueDepth: queueDepth,
	}
	for _, k := range endpointKeys {
		m.endpoints[k] = &endpointStats{}
	}
	return m
}

type metricsSnapshot struct {
	Endpoints       map[string]endpointSnapshot `json:"endpoints"`
	QueueDepth      int64                       `json:"queue_depth"`
	Reloads         uint64                      `json:"reloads"`
	ReloadErrors    uint64                      `json:"reload_errors"`
	ReloadRejected  uint64                      `json:"reload_rejected"`
	Pushes          uint64                      `json:"pushes"`
	PanicsRecovered uint64                      `json:"panics_recovered"`
	DeadlineRefused uint64                      `json:"deadline_refused"`
	DegradeShed     uint64                      `json:"degrade_shed"`
	Chaos           *chaosSnapshot              `json:"chaos,omitempty"`
}

func (m *metrics) snapshot() metricsSnapshot {
	out := metricsSnapshot{
		Endpoints:       make(map[string]endpointSnapshot, len(m.endpoints)),
		Reloads:         m.reloads.Load(),
		ReloadErrors:    m.reloadErrors.Load(),
		ReloadRejected:  m.reloadRejected.Load(),
		Pushes:          m.pushes.Load(),
		PanicsRecovered: m.panicsRecovered.Load(),
		DeadlineRefused: m.deadlineRefused.Load(),
		DegradeShed:     m.degradeShed.Load(),
	}
	if m.chaosEnabled {
		out.Chaos = &chaosSnapshot{
			LatencyInjections:  m.chaos.latencyInjections.Load(),
			CloseInjections:    m.chaos.closeInjections.Load(),
			TruncateInjections: m.chaos.truncateInjection.Load(),
			PanicInjections:    m.chaos.panicInjections.Load(),
		}
	}
	if m.queueDepth != nil {
		out.QueueDepth = m.queueDepth.Load()
	}
	for k, ep := range m.endpoints {
		out.Endpoints[k] = endpointSnapshot{
			Requests:   ep.requests.Load(),
			Errors:     ep.errors.Load(),
			Shed:       ep.shed.Load(),
			BatchItems: ep.batchItems.Load(),
			Latency:    ep.latency.snapshot(),
		}
	}
	return out
}

// String renders the metrics tree as JSON, satisfying expvar.Var so the
// whole tree can be published in the process-global expvar registry.
func (m *metrics) String() string {
	data, err := json.Marshal(m.snapshot())
	if err != nil {
		return "{}"
	}
	return string(data)
}

// flush writes a final indented metrics snapshot, used on graceful
// shutdown so the run's totals survive the process.
func (m *metrics) flush(w io.Writer) {
	if w == nil {
		return
	}
	data, err := json.MarshalIndent(m.snapshot(), "", "  ")
	if err != nil {
		return
	}
	data = append(data, '\n')
	w.Write(data)
}
