package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestGracefulShutdownDrainsInFlight proves the shutdown contract: after
// the serve context is cancelled, a request already in flight completes
// with 200 (not a reset connection), Serve returns nil, and the final
// metrics snapshot lands on MetricsOut.
func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	var metricsOut bytes.Buffer
	s := newTestServer(t, Config{
		Workers:      2,
		DrainTimeout: 5 * time.Second,
		MetricsOut:   &metricsOut,
	})
	// Hold each request in the handler long enough for the shutdown to
	// race in behind it.
	s.testDelay = 300 * time.Millisecond

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ctx, ln) }()

	url := fmt.Sprintf("http://%s/v1/match", ln.Addr())
	reqDone := make(chan error, 1)
	var status int
	go func() {
		resp, err := http.Post(url, "application/json",
			strings.NewReader(`{"url":"http://ads.example.com/banner.js","type":"script"}`))
		if err != nil {
			reqDone <- err
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		status = resp.StatusCode
		reqDone <- nil
	}()

	// Let the request get in flight, then pull the plug.
	time.Sleep(100 * time.Millisecond)
	cancel()

	if err := <-reqDone; err != nil {
		t.Fatalf("in-flight request killed by shutdown: %v", err)
	}
	if status != http.StatusOK {
		t.Fatalf("in-flight request status = %d, want 200", status)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve returned %v, want clean drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after drain")
	}

	// New connections are refused after drain.
	if _, err := http.Post(url, "application/json", strings.NewReader(`{}`)); err == nil {
		t.Error("post-shutdown request unexpectedly succeeded")
	}
	// Final metrics flushed, and they saw the drained request.
	out := metricsOut.String()
	if !strings.Contains(out, `"endpoints"`) {
		t.Fatalf("no metrics flushed on shutdown: %q", out)
	}
	if !strings.Contains(out, `"requests": 1`) {
		t.Errorf("flushed metrics missed the drained request: %s", out)
	}
}

// TestServeListenerError surfaces listener failures instead of hanging.
func TestServeListenerError(t *testing.T) {
	s := newTestServer(t, Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln.Close() // Serve on a closed listener must return promptly.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := s.Serve(ctx, ln); err == nil {
		t.Fatal("Serve on closed listener returned nil")
	}
}
