package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adwars/internal/abp"
	"adwars/internal/artifact"
)

// TestCompiledSnapshotServesAndRejectsDamage: the serving layer must load a
// compiled (v3) lists snapshot, surface lists_compiled through /healthz, and
// answer /v1/match identically to a plain snapshot; a damaged automaton
// section — resealed under a fresh trailer so only the section CRC can
// catch it — must be refused at /admin/reload with the last-good snapshot
// kept serving.
func TestCompiledSnapshotServesAndRejectsDamage(t *testing.T) {
	checkGoroutineLeaks(t)
	dir := t.TempDir()
	modelPath, listsPath := writeSnapshotFiles(t, dir)
	if err := abp.SaveListsSnapshotCompiled(listsPath, testListsSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	s := New(Config{ModelPath: modelPath, ListsPath: listsPath})
	if err := s.ReloadSnapshots(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (int, string) {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, `"lists_compiled":true`) {
		t.Fatalf("healthz = %d %s, want 200 with lists_compiled", code, body)
	}

	query := `{"url":"http://ads.example.com/banner.js","type":"script","page_domain":"news.example"}`
	match := func() string {
		resp, err := ts.Client().Post(ts.URL+"/v1/match", "application/json", strings.NewReader(query))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("match status %d", resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	before := match()

	// A plain snapshot of the same lists must answer byte-identically.
	plainPath := filepath.Join(dir, "plain.json")
	if err := abp.SaveListsSnapshot(plainPath, testListsSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	plain, err := abp.LoadListsSnapshot(plainPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetListsSnapshot(plain); err != nil {
		t.Fatal(err)
	}
	// Compare decisions only: the snapshot metadata block legitimately
	// differs (a direct Set carries no artifact version).
	decisions := func(body string) string {
		if i := strings.Index(body, `,"snapshot":`); i >= 0 {
			return body[:i]
		}
		return body
	}
	if got := match(); decisions(got) != decisions(before) {
		t.Fatalf("plain snapshot answers differently:\n%s\nvs\n%s", got, before)
	}
	if err := s.ReloadSnapshots(); err != nil { // back to the compiled file
		t.Fatal(err)
	}

	// Damage the automaton section and reseal: the outer trailer is valid
	// again, so only the per-section CRC stands between the damage and the
	// match path.
	good, err := os.ReadFile(listsPath)
	if err != nil {
		t.Fatal(err)
	}
	payload, sealed, err := artifact.Open(good)
	if err != nil || !sealed {
		t.Fatalf("Open: sealed=%v err=%v", sealed, err)
	}
	bad := append([]byte(nil), payload...)
	mark := strings.Index(string(bad), artifact.SectionPrefix)
	hdrEnd := mark + strings.IndexByte(string(bad[mark:]), '\n') + 1
	bad[hdrEnd+16+8] ^= 0x01
	if err := os.WriteFile(listsPath, artifact.Seal(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/admin/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("reload of damaged section: status %d (%s), want 400", resp.StatusCode, body)
	}
	if got := s.met.reloadRejected.Load(); got != 1 {
		t.Errorf("reload_rejected = %d, want 1", got)
	}
	if after := match(); after != before {
		t.Fatalf("served answer changed after rejected reload:\n%s\nvs\n%s", after, before)
	}
	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, `"lists_compiled":true`) {
		t.Fatalf("healthz after rejected reload = %d %s, want compiled last-good", code, body)
	}

	// Restoring the good compiled file makes the next reload succeed.
	if err := os.WriteFile(listsPath, good, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.ReloadSnapshots(); err != nil {
		t.Fatalf("reload after restore: %v", err)
	}
	if after := match(); after != before {
		t.Fatalf("answer changed after restore:\n%s\nvs\n%s", after, before)
	}
}
