package serve

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestAdmissionFastPathAndShed(t *testing.T) {
	a := newAdmission(1, 1, 10*time.Millisecond)
	release, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Slot held: the next caller queues and sheds on deadline.
	start := time.Now()
	if _, err := a.acquire(context.Background()); err != errShed {
		t.Fatalf("err = %v, want errShed", err)
	}
	if waited := time.Since(start); waited < 5*time.Millisecond {
		t.Errorf("shed after %v, expected to wait out the deadline", waited)
	}
	release()
	// Slot free again: acquire succeeds immediately.
	release2, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	release2()
}

func TestAdmissionQueueBound(t *testing.T) {
	a := newAdmission(1, 1, time.Second)
	release, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Fill the single queue slot with a waiter.
	waiting := make(chan error, 1)
	go func() {
		_, err := a.acquire(context.Background())
		waiting <- err
	}()
	time.Sleep(20 * time.Millisecond)
	// Queue full: the next caller sheds instantly, without waiting.
	start := time.Now()
	if _, err := a.acquire(context.Background()); err != errShed {
		t.Fatalf("err = %v, want errShed", err)
	}
	if waited := time.Since(start); waited > 100*time.Millisecond {
		t.Errorf("full-queue shed took %v, want immediate", waited)
	}
	release()
	if err := <-waiting; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	a.release()
}

func TestAdmissionShedsCancelledCaller(t *testing.T) {
	a := newAdmission(1, 4, time.Minute)
	release, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(10 * time.Millisecond); cancel() }()
	if _, err := a.acquire(ctx); err != errShed {
		t.Fatalf("err = %v, want errShed on cancelled ctx", err)
	}
}

// TestAdmissionQueueBoundaryExact pins the queue-full edge: with maxQueue
// N, exactly N callers may wait; caller N+1 sheds instantly without
// perturbing the N legitimate waiters, and every waiter eventually admits
// once slots free up.
func TestAdmissionQueueBoundaryExact(t *testing.T) {
	const maxQueue = 3
	a := newAdmission(1, maxQueue, 5*time.Second)
	release, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Park exactly maxQueue waiters.
	results := make(chan error, maxQueue)
	for i := 0; i < maxQueue; i++ {
		go func() {
			rel, err := a.acquire(context.Background())
			if err == nil {
				defer rel()
				time.Sleep(time.Millisecond)
			}
			results <- err
		}()
	}
	// Wait until all of them are counted as queued.
	for deadline := time.Now().Add(2 * time.Second); a.queued.Load() != maxQueue; {
		if time.Now().After(deadline) {
			t.Fatalf("queued = %d, want %d waiters parked", a.queued.Load(), maxQueue)
		}
		time.Sleep(time.Millisecond)
	}

	// The boundary caller (maxQueue+1) sheds immediately.
	start := time.Now()
	if _, err := a.acquire(context.Background()); err != errShed {
		t.Fatalf("boundary caller: err = %v, want errShed", err)
	}
	if waited := time.Since(start); waited > 100*time.Millisecond {
		t.Errorf("boundary shed took %v, want immediate", waited)
	}
	// The shed caller must not have stolen a queue slot: still maxQueue.
	if got := a.queued.Load(); got != maxQueue {
		t.Errorf("queued = %d after boundary shed, want %d", got, maxQueue)
	}

	release()
	for i := 0; i < maxQueue; i++ {
		if err := <-results; err != nil {
			t.Fatalf("parked waiter %d: %v", i, err)
		}
	}
	if got := a.queued.Load(); got != 0 {
		t.Errorf("queued = %d after drain, want 0", got)
	}
}

// TestAdmissionDeadlineExpiryWhileQueued: a waiter whose queue deadline
// fires must shed after (not before) the deadline and must return the
// queue gauge to zero — a leaked queued count would eventually wedge
// admission entirely.
func TestAdmissionDeadlineExpiryWhileQueued(t *testing.T) {
	const timeout = 30 * time.Millisecond
	a := newAdmission(1, 4, timeout)
	release, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	start := time.Now()
	if _, err := a.acquire(context.Background()); err != errShed {
		t.Fatalf("err = %v, want errShed", err)
	}
	if waited := time.Since(start); waited < timeout {
		t.Errorf("shed after %v, before the %v deadline", waited, timeout)
	}
	if got := a.queued.Load(); got != 0 {
		t.Errorf("queued = %d after deadline shed, want 0", got)
	}
}

// TestAdmissionShutdownRacingAdmission storms acquire/release while the
// shared context is cancelled mid-flight (the shape of a server shutdown
// racing live admission). Run under -race by `make race`. Invariants: no
// acquire hangs, every success is released, and both the queue gauge and
// the slot pool end empty.
func TestAdmissionShutdownRacingAdmission(t *testing.T) {
	a := newAdmission(2, 4, 50*time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())

	const stormers = 16
	var admitted, shed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < stormers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				release, err := a.acquire(ctx)
				if err != nil {
					shed.Add(1)
					continue
				}
				admitted.Add(1)
				if j%3 == 0 {
					time.Sleep(100 * time.Microsecond) // hold the slot across the cancel
				}
				release()
			}
		}(i)
	}
	time.Sleep(5 * time.Millisecond)
	cancel() // shutdown lands mid-storm
	wg.Wait()

	if admitted.Load() == 0 {
		t.Error("nothing admitted before shutdown")
	}
	if shed.Load() == 0 {
		t.Error("cancellation shed nothing — race never happened")
	}
	if got := a.queued.Load(); got != 0 {
		t.Errorf("queued = %d after storm, want 0", got)
	}
	if got := len(a.slots); got != 0 {
		t.Errorf("%d slots still held after storm", got)
	}
}

// TestLoadSheddingEndToEnd drives a deliberately tiny server far past its
// capacity and checks the overload contract: every request is answered,
// overflow becomes 429 (with Retry-After and a structured body), nothing
// becomes a 5xx, and the shed counter matches the 429s the clients saw.
func TestLoadSheddingEndToEnd(t *testing.T) {
	s := newTestServer(t, Config{
		Workers:      1,
		Queue:        2,
		QueueTimeout: 5 * time.Millisecond,
	})
	s.testDelay = 20 * time.Millisecond // each request hogs the one worker

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const clients = 16
	var ok200, shed429, other atomic.Int64
	var retryAfterSeen atomic.Bool
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				resp, err := ts.Client().Post(ts.URL+"/v1/match", "application/json",
					strings.NewReader(`{"url":"http://ads.example.com/banner.js"}`))
				if err != nil {
					other.Add(1)
					return
				}
				switch resp.StatusCode {
				case 200:
					ok200.Add(1)
				case 429:
					shed429.Add(1)
					if resp.Header.Get("Retry-After") != "" {
						retryAfterSeen.Store(true)
					}
					var envelope struct {
						Error struct {
							Code string `json:"code"`
						} `json:"error"`
					}
					if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil || envelope.Error.Code != "shed" {
						t.Errorf("shed body not structured: %v %+v", err, envelope)
					}
				default:
					other.Add(1)
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()

	if other.Load() != 0 {
		t.Fatalf("%d unexpected responses", other.Load())
	}
	if ok200.Load() == 0 {
		t.Fatal("no request succeeded")
	}
	if shed429.Load() == 0 {
		t.Fatal("overload never shed — admission control inert")
	}
	if !retryAfterSeen.Load() {
		t.Error("429s missing Retry-After")
	}
	var snap metricsSnapshot
	if err := json.Unmarshal([]byte(s.met.String()), &snap); err != nil {
		t.Fatal(err)
	}
	ep := snap.Endpoints["match"]
	if int64(ep.Shed) != shed429.Load() {
		t.Errorf("shed metric = %d, clients saw %d", ep.Shed, shed429.Load())
	}
	if int64(ep.Requests) != ok200.Load()+shed429.Load() {
		t.Errorf("requests metric = %d, want %d", ep.Requests, ok200.Load()+shed429.Load())
	}
}
