package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"adwars/internal/abp"
	"adwars/internal/artifact"
	"adwars/internal/features"
	"adwars/internal/ml"
)

// ---- wire types ----

// MatchQuery is one /v1/match request: should this URL be blocked?
type MatchQuery struct {
	URL        string `json:"url"`
	Type       string `json:"type,omitempty"`
	PageDomain string `json:"page_domain,omitempty"`
}

// ListMatch is one list's verdict for a query.
type ListMatch struct {
	List         string   `json:"list"`
	Decision     string   `json:"decision"`
	Rule         string   `json:"rule,omitempty"`
	MatchedRules []string `json:"matched_rules,omitempty"`
}

// MatchResult is the verdict across all served lists. Blocked follows
// merged-list semantics: an exception anywhere overrides a block anywhere,
// exactly as if the lists were concatenated into one.
type MatchResult struct {
	Blocked  bool        `json:"blocked"`
	Decision string      `json:"decision"`
	Lists    []ListMatch `json:"lists"`
}

// ClassifyResult is the anti-adblock verdict for one script.
type ClassifyResult struct {
	AntiAdblock bool    `json:"anti_adblock"`
	Score       float64 `json:"score"`
	Decision    float64 `json:"decision"`
	Features    int     `json:"features"`
	Error       string  `json:"error,omitempty"`
}

// ModelInfo describes the installed model snapshot. Version is the
// artifact payload CRC the snapshot was loaded from; snapshots installed
// directly in-process (tests, embedders) have none and omit it, so golden
// bodies from Set*Snapshot servers are unchanged.
type ModelInfo struct {
	FeatureSet string `json:"feature_set"`
	Vocab      int    `json:"vocab"`
	Rounds     int    `json:"rounds"`
	Version    string `json:"version,omitempty"`
}

// ListsInfo describes the installed lists snapshot.
type ListsInfo struct {
	Label   string `json:"label,omitempty"`
	Lists   int    `json:"lists"`
	Rules   int    `json:"rules"`
	Version string `json:"version,omitempty"`
}

// SnapshotInfo identifies the snapshots a response was served from.
type SnapshotInfo struct {
	Model *ModelInfo `json:"model,omitempty"`
	Lists *ListsInfo `json:"lists,omitempty"`
}

type matchResponse struct {
	MatchResult
	Snapshot SnapshotInfo `json:"snapshot"`
}

type matchBatchRequest struct {
	Requests []MatchQuery `json:"requests"`
}

type matchBatchResponse struct {
	Count    int           `json:"count"`
	Results  []MatchResult `json:"results"`
	Snapshot SnapshotInfo  `json:"snapshot"`
}

type classifyResponse struct {
	ClassifyResult
	Snapshot SnapshotInfo `json:"snapshot"`
}

type classifyBatchRequest struct {
	Scripts []string `json:"scripts"`
}

type classifyBatchResponse struct {
	Count    int              `json:"count"`
	Results  []ClassifyResult `json:"results"`
	Snapshot SnapshotInfo     `json:"snapshot"`
}

type reloadResponse struct {
	Reloaded bool         `json:"reloaded"`
	Snapshot SnapshotInfo `json:"snapshot"`
}

// apiError is the structured error envelope every non-2xx response
// carries. Handlers never emit 500s: every failure mode maps to a typed
// 4xx (or 503 while a snapshot is missing).
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorResponse struct {
	Error apiError `json:"error"`
}

// ---- plumbing ----

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: apiError{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}})
}

// decodeBody reads and JSON-decodes a bounded request body, translating
// the failure modes into typed 4xx responses (true = proceed).
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body, ok := s.readBody(w, r)
	if !ok {
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "malformed JSON body: %v", err)
		return false
	}
	return true
}

// readBody reads the bounded raw body (true = proceed).
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.maxBody()))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "body_too_large",
				"request body exceeds %d bytes", tooLarge.Limit)
		} else {
			writeError(w, http.StatusBadRequest, "bad_request", "reading body: %v", err)
		}
		return nil, false
	}
	return body, true
}

// snapshotInfo reports the currently installed snapshots.
func (s *Server) snapshotInfo() SnapshotInfo {
	var info SnapshotInfo
	if ms := s.model.Load(); ms != nil {
		info.Model = &ModelInfo{
			FeatureSet: ms.snap.FeatureSet,
			Vocab:      ms.vocab.Len(),
			Rounds:     ms.snap.Model.Rounds(),
			Version:    ms.version,
		}
	}
	if ls := s.lists.Load(); ls != nil {
		info.Lists = &ListsInfo{
			Label:   ls.snap.Label,
			Lists:   len(ls.snap.Lists),
			Rules:   ls.rules,
			Version: ls.version,
		}
	}
	return info
}

// admitted wraps a handler body in admission control and metrics: one
// worker-pool ticket per request (a batch rides on a single ticket, which
// is where its amortization comes from), latency observed on every
// outcome, 429 with Retry-After on shed.
func (s *Server) admitted(ep string, w http.ResponseWriter, r *http.Request, fn func()) {
	stats := s.met.endpoints[ep]
	start := time.Now()
	release, err := s.adm.acquire(r.Context())
	if err != nil {
		stats.shed.Add(1)
		stats.requests.Add(1)
		stats.latency.Observe(time.Since(start))
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "shed",
			"server overloaded, retry later")
		return
	}
	defer release()
	if s.testDelay > 0 {
		time.Sleep(s.testDelay)
	}
	// Injected chaos latency sleeps here, while holding the worker slot,
	// so it consumes real capacity and can push admission into shedding.
	if s.chaos != nil {
		if d, ok := s.chaos.drawLatency(); ok {
			s.met.chaos.latencyInjections.Add(1)
			time.Sleep(d)
		}
	}
	fn()
	stats.requests.Add(1)
	stats.latency.Observe(time.Since(start))
}

// requireMethod enforces the endpoint's verb (true = proceed).
func requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		w.Header().Set("Allow", method)
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
			"%s requires %s", r.URL.Path, method)
		return false
	}
	return true
}

// routes builds the handler tree once at construction.
func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/match", s.handleMatch)
	mux.HandleFunc("/v1/match/batch", s.handleMatchBatch)
	mux.HandleFunc("/v1/classify", s.handleClassify)
	mux.HandleFunc("/v1/classify/batch", s.handleClassifyBatch)
	mux.HandleFunc("/admin/reload", s.handleReload)
	mux.HandleFunc("/admin/snapshot/", s.handleSnapshot)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/debug/vars", s.handleDebugVars)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, "not_found", "no such endpoint: %s", r.URL.Path)
	})
	return mux
}

// ---- match ----

// validTypes mirrors abp.RequestType; an empty type means "other".
var validTypes = map[string]bool{
	"": true, "script": true, "image": true, "stylesheet": true,
	"object": true, "xmlhttprequest": true, "subdocument": true,
	"document": true, "popup": true, "other": true,
}

// checkQuery validates one match query, returning a non-nil apiError for
// bad input.
func checkQuery(q *MatchQuery) *apiError {
	if q.URL == "" {
		return &apiError{Code: "bad_request", Message: `missing "url"`}
	}
	if !validTypes[q.Type] {
		return &apiError{Code: "bad_request", Message: fmt.Sprintf("unknown request type %q", q.Type)}
	}
	return nil
}

// matchOne answers one query against every list in the state.
func matchOne(ls *listsState, q MatchQuery) MatchResult {
	req := abp.Request{URL: q.URL, Type: abp.RequestType(q.Type), PageDomain: q.PageDomain}
	res := MatchResult{Lists: make([]ListMatch, 0, len(ls.snap.Lists))}
	anyBlocked, anyAllowed := false, false
	// One rule buffer serves the all-matches collection for every list:
	// the common no-match case then performs zero allocations past the
	// response envelope itself.
	var ruleBuf [8]*abp.Rule
	rules := ruleBuf[:0]
	for _, l := range ls.snap.Lists {
		dec, rule := l.MatchRequest(req)
		lm := ListMatch{List: l.Name, Decision: dec.String()}
		if rule != nil {
			lm.Rule = rule.Raw
		}
		switch dec {
		case abp.Blocked:
			anyBlocked = true
		case abp.Allowed:
			anyAllowed = true
		}
		rules = l.AppendMatchingHTTPRules(rules[:0], req)
		for _, r := range rules {
			lm.MatchedRules = append(lm.MatchedRules, r.Raw)
		}
		res.Lists = append(res.Lists, lm)
	}
	switch {
	case anyAllowed:
		res.Decision = abp.Allowed.String()
	case anyBlocked:
		res.Decision = abp.Blocked.String()
		res.Blocked = true
	default:
		res.Decision = abp.NoMatch.String()
	}
	return res
}

func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	ls := s.lists.Load()
	if ls == nil {
		writeError(w, http.StatusServiceUnavailable, "no_snapshot", "no lists snapshot loaded")
		return
	}
	var q MatchQuery
	if !s.decodeBody(w, r, &q) {
		return
	}
	if apiErr := checkQuery(&q); apiErr != nil {
		s.met.endpoints[epMatch].errors.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: *apiErr})
		return
	}
	s.admitted(epMatch, w, r, func() {
		writeJSON(w, http.StatusOK, matchResponse{
			MatchResult: matchOne(ls, q),
			Snapshot:    s.snapshotInfo(),
		})
	})
}

func (s *Server) handleMatchBatch(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	ls := s.lists.Load()
	if ls == nil {
		writeError(w, http.StatusServiceUnavailable, "no_snapshot", "no lists snapshot loaded")
		return
	}
	var batch matchBatchRequest
	if !s.decodeBody(w, r, &batch) {
		return
	}
	if len(batch.Requests) == 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "empty batch")
		return
	}
	if len(batch.Requests) > s.cfg.maxBatch() {
		writeError(w, http.StatusBadRequest, "batch_too_large",
			"%d requests exceed the %d-item batch limit", len(batch.Requests), s.cfg.maxBatch())
		return
	}
	for i := range batch.Requests {
		if apiErr := checkQuery(&batch.Requests[i]); apiErr != nil {
			s.met.endpoints[epMatchBatch].errors.Add(1)
			writeError(w, http.StatusBadRequest, apiErr.Code, "request %d: %s", i, apiErr.Message)
			return
		}
	}
	s.admitted(epMatchBatch, w, r, func() {
		s.met.endpoints[epMatchBatch].batchItems.Add(uint64(len(batch.Requests)))
		out := matchBatchResponse{
			Count:    len(batch.Requests),
			Results:  make([]MatchResult, 0, len(batch.Requests)),
			Snapshot: s.snapshotInfo(),
		}
		for _, q := range batch.Requests {
			out.Results = append(out.Results, matchOne(ls, q))
		}
		writeJSON(w, http.StatusOK, out)
	})
}

// ---- classify ----

// score runs the ensemble on a projected sample. The score maps the
// ensemble's decision value onto [0,1] by normalizing against Σ|αₜ| (the
// largest reachable magnitude): 0.5 is the decision boundary, 1 means
// every round voted anti-adblock at full weight.
func (ms *modelState) score(fs map[string]bool) ClassifyResult {
	sample := ms.vocab.Project(fs)
	decision := ms.snap.Model.Decision(sample)
	margin := 0.0
	if ms.alphaSum > 0 {
		margin = decision / ms.alphaSum
	}
	if margin > 1 {
		margin = 1
	} else if margin < -1 {
		margin = -1
	}
	return ClassifyResult{
		AntiAdblock: decision >= 0,
		Score:       (margin + 1) / 2,
		Decision:    decision,
		Features:    sample.Popcount(),
	}
}

// classifyOne runs the jsast→features→AdaBoost inference path for one
// script against the installed model state.
func classifyOne(ms *modelState, src string) (ClassifyResult, error) {
	fs, err := features.ExtractSource(src, ms.set)
	if err != nil {
		return ClassifyResult{}, err
	}
	return ms.score(fs), nil
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	ms := s.model.Load()
	if ms == nil {
		writeError(w, http.StatusServiceUnavailable, "no_snapshot", "no model snapshot loaded")
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	if len(body) == 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "empty script body")
		return
	}
	s.admitted(epClassify, w, r, func() {
		res, err := classifyOne(ms, string(body))
		if err != nil {
			s.met.endpoints[epClassify].errors.Add(1)
			writeError(w, http.StatusUnprocessableEntity, "bad_script",
				"script does not parse: %v", err)
			return
		}
		writeJSON(w, http.StatusOK, classifyResponse{
			ClassifyResult: res,
			Snapshot:       s.snapshotInfo(),
		})
	})
}

func (s *Server) handleClassifyBatch(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	ms := s.model.Load()
	if ms == nil {
		writeError(w, http.StatusServiceUnavailable, "no_snapshot", "no model snapshot loaded")
		return
	}
	var batch classifyBatchRequest
	if !s.decodeBody(w, r, &batch) {
		return
	}
	if len(batch.Scripts) == 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "empty batch")
		return
	}
	if len(batch.Scripts) > s.cfg.maxBatch() {
		writeError(w, http.StatusBadRequest, "batch_too_large",
			"%d scripts exceed the %d-item batch limit", len(batch.Scripts), s.cfg.maxBatch())
		return
	}
	s.admitted(epClassifyBatch, w, r, func() {
		s.met.endpoints[epClassifyBatch].batchItems.Add(uint64(len(batch.Scripts)))
		// The batch amortizes parse+extract across the worker pool: one
		// fan-out for all scripts instead of one request round-trip each.
		// Per-script parse failures annotate their slot instead of
		// failing the batch.
		sets, errs, _ := features.ExtractAll(context.Background(), batch.Scripts, ms.set, s.cfg.workers())
		out := classifyBatchResponse{
			Count:    len(batch.Scripts),
			Results:  make([]ClassifyResult, len(batch.Scripts)),
			Snapshot: s.snapshotInfo(),
		}
		for i := range batch.Scripts {
			if errs[i] != nil {
				out.Results[i] = ClassifyResult{Error: fmt.Sprintf("script does not parse: %v", errs[i])}
				continue
			}
			out.Results[i] = ms.score(sets[i])
		}
		writeJSON(w, http.StatusOK, out)
	})
}

// ---- admin ----

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	if s.cfg.ModelPath == "" && s.cfg.ListsPath == "" {
		writeError(w, http.StatusBadRequest, "snapshot", "no snapshot paths configured")
		return
	}
	if err := s.ReloadSnapshots(); err != nil {
		// The old snapshots are still installed; the operator gets a
		// structured 4xx, not a broken server.
		writeError(w, http.StatusBadRequest, "snapshot", "reload failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, reloadResponse{Reloaded: true, Snapshot: s.snapshotInfo()})
}

// Health is the /healthz and /readyz response body: liveness, readiness,
// per-snapshot versions, and the last reload outcome — everything the
// gateway's health poller and the control plane's rollout watcher need in
// one fetch.
type Health struct {
	Status       string `json:"status"`
	Replica      string `json:"replica,omitempty"`
	Ready        bool   `json:"ready"`
	Draining     bool   `json:"draining,omitempty"`
	Model        bool   `json:"model"`
	Lists        bool   `json:"lists"`
	ModelVersion string `json:"model_version,omitempty"`
	ListsVersion string `json:"lists_version,omitempty"`
	// ListsCompiled reports whether the serving snapshot carried
	// pre-compiled match automata (schema v3) rather than being recompiled
	// at load.
	ListsCompiled bool           `json:"lists_compiled,omitempty"`
	LastReload    *ReloadOutcome `json:"last_reload,omitempty"`
}

// health assembles the shared health/readiness report.
func (s *Server) health() Health {
	h := Health{
		Status:   "ok",
		Replica:  s.cfg.ReplicaID,
		Draining: s.draining.Load(),
	}
	if ms := s.model.Load(); ms != nil {
		h.Model = true
		h.ModelVersion = ms.version
	}
	if ls := s.lists.Load(); ls != nil {
		h.Lists = true
		h.ListsVersion = ls.version
		h.ListsCompiled = ls.snap.Compiled
	}
	h.LastReload = s.lastReload.Load()
	h.Ready = (h.Model || h.Lists) && !h.Draining
	switch {
	case !h.Model && !h.Lists:
		h.Status = "no snapshots"
	case h.Draining:
		h.Status = "draining"
	}
	return h
}

// handleHealthz is liveness: 200 as long as the process can answer and
// has any snapshot, even while draining.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.health()
	status := http.StatusOK
	if !h.Model && !h.Lists {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

// handleReadyz is routability: 503 once drain is announced (or before any
// snapshot is loaded), so gateways stop sending traffic here while the
// data plane finishes the requests it already has.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	h := s.health()
	status := http.StatusOK
	if !h.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

// pushResponse answers a successful control-plane snapshot push.
type pushResponse struct {
	Installed bool   `json:"installed"`
	Kind      string `json:"kind"`
	Version   string `json:"version"`
}

// handleSnapshot is the control-plane snapshot exchange, keyed by
// /admin/snapshot/{lists,model}:
//
//   - POST installs a pushed artifact: the body is the sealed wire format
//     (the same CRC64 framing snapshots carry on disk). It is verified,
//     parsed, persisted atomically to the configured path, and installed —
//     in that order, so a replica restart always finds what it was last
//     serving. A damaged or unsealed push is refused with 422 and ticks
//     reload_rejected, exactly like a corrupt disk reload.
//   - GET returns the raw sealed bytes of the installed snapshot, which is
//     how the control plane captures last-good before a rollout so it can
//     roll back without any other storage.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	kind := strings.TrimPrefix(r.URL.Path, "/admin/snapshot/")
	if kind != "lists" && kind != "model" {
		writeError(w, http.StatusNotFound, "not_found", "unknown snapshot kind %q", kind)
		return
	}
	switch r.Method {
	case http.MethodGet:
		s.handleSnapshotGet(w, kind)
	case http.MethodPost:
		s.handleSnapshotPush(w, r, kind)
	default:
		w.Header().Set("Allow", "GET, POST")
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
			"%s requires GET or POST", r.URL.Path)
	}
}

func (s *Server) handleSnapshotGet(w http.ResponseWriter, kind string) {
	var raw []byte
	var version string
	switch kind {
	case "lists":
		if ls := s.lists.Load(); ls != nil {
			raw, version = ls.raw, ls.version
		}
	case "model":
		if ms := s.model.Load(); ms != nil {
			raw, version = ms.raw, ms.version
		}
	}
	if len(raw) == 0 {
		writeError(w, http.StatusNotFound, "no_snapshot",
			"no artifact-backed %s snapshot installed", kind)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Adwars-Snapshot-Version", version)
	w.Write(raw)
}

func (s *Server) handleSnapshotPush(w http.ResponseWriter, r *http.Request, kind string) {
	path := s.cfg.ListsPath
	if kind == "model" {
		path = s.cfg.ModelPath
	}
	if path == "" {
		writeError(w, http.StatusBadRequest, "snapshot",
			"no %s snapshot path configured on this replica", kind)
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.maxSnapshot()))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "body_too_large",
				"snapshot exceeds %d bytes", tooLarge.Limit)
		} else {
			writeError(w, http.StatusBadRequest, "bad_request", "reading snapshot body: %v", err)
		}
		return
	}
	// The wire format is the artifact framing itself: an unsealed push has
	// no integrity story over the network, so it is refused outright.
	version, verr := artifact.Version(data)
	if verr == nil {
		if _, sealed, _ := artifact.Open(data); !sealed {
			verr = artifact.Corruptf("missing-trailer", "pushed %s snapshot is not sealed", kind)
		}
	}
	if verr != nil {
		s.reloadFailed("push", verr)
		writeError(w, http.StatusUnprocessableEntity, "corrupt_artifact",
			"pushed %s snapshot refused: %v", kind, verr)
		return
	}
	// Parse before persisting so a schema-broken artifact never reaches
	// disk, then persist before installing so disk and memory can only
	// disagree in the direction of "disk newer, reload pending".
	switch kind {
	case "lists":
		snap, err := abp.ReadListsSnapshot(bytes.NewReader(data))
		if err != nil {
			s.reloadFailed("push", err)
			writeError(w, http.StatusUnprocessableEntity, "corrupt_artifact",
				"pushed lists snapshot refused: %v", err)
			return
		}
		if err := artifact.WriteFileAtomic(path, data, 0o644); err != nil {
			s.reloadFailed("push", err)
			writeError(w, http.StatusInternalServerError, "persist_failed",
				"persisting pushed snapshot: %v", err)
			return
		}
		if err := s.installLists(snap, version, data); err != nil {
			s.reloadFailed("push", err)
			writeError(w, http.StatusUnprocessableEntity, "corrupt_artifact",
				"pushed lists snapshot refused: %v", err)
			return
		}
	case "model":
		snap, err := ml.ReadModelSnapshot(bytes.NewReader(data))
		if err != nil {
			s.reloadFailed("push", err)
			writeError(w, http.StatusUnprocessableEntity, "corrupt_artifact",
				"pushed model snapshot refused: %v", err)
			return
		}
		if err := artifact.WriteFileAtomic(path, data, 0o644); err != nil {
			s.reloadFailed("push", err)
			writeError(w, http.StatusInternalServerError, "persist_failed",
				"persisting pushed snapshot: %v", err)
			return
		}
		if err := s.installModel(snap, version, data); err != nil {
			s.reloadFailed("push", err)
			writeError(w, http.StatusUnprocessableEntity, "corrupt_artifact",
				"pushed model snapshot refused: %v", err)
			return
		}
	}
	s.met.reloads.Add(1)
	s.met.pushes.Add(1)
	s.lastReload.Store(&ReloadOutcome{OK: true, Source: "push"})
	writeJSON(w, http.StatusOK, pushResponse{Installed: true, Kind: kind, Version: version})
}

// handleDebugVars renders the process-global expvar registry plus this
// server's metrics tree under "adwars_serve" — the standard /debug/vars
// shape without requiring the server to win a global registration race
// (tests run many servers in one process).
func (s *Server) handleDebugVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintf(w, "{\n")
	first := true
	expvar.Do(func(kv expvar.KeyValue) {
		if kv.Key == "adwars_serve" {
			return // replaced below with this server's tree
		}
		if !first {
			fmt.Fprintf(w, ",\n")
		}
		first = false
		fmt.Fprintf(w, "%q: %s", kv.Key, kv.Value)
	})
	if !first {
		fmt.Fprintf(w, ",\n")
	}
	fmt.Fprintf(w, "%q: %s", "adwars_serve", s.met.String())
	fmt.Fprintf(w, "\n}\n")
}
