package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"adwars/internal/abp"
	"adwars/internal/analytics"
	"adwars/internal/artifact"
	"adwars/internal/degrade"
	"adwars/internal/features"
	"adwars/internal/ml"
)

// ---- wire types ----

// MatchQuery is one /v1/match request: should this URL be blocked?
type MatchQuery struct {
	URL        string `json:"url"`
	Type       string `json:"type,omitempty"`
	PageDomain string `json:"page_domain,omitempty"`
}

// ListMatch is one list's verdict for a query.
type ListMatch struct {
	List         string   `json:"list"`
	Decision     string   `json:"decision"`
	Rule         string   `json:"rule,omitempty"`
	MatchedRules []string `json:"matched_rules,omitempty"`
}

// MatchResult is the verdict across all served lists. Blocked follows
// merged-list semantics: an exception anywhere overrides a block anywhere,
// exactly as if the lists were concatenated into one.
type MatchResult struct {
	Blocked  bool        `json:"blocked"`
	Decision string      `json:"decision"`
	Lists    []ListMatch `json:"lists"`
	// Degraded annotates an answer computed under brownout: "hot-only"
	// means only the hot-tier automata were consulted (governor at L2+),
	// so a cold-tier block may read as no_match. Omitted at full service,
	// keeping L0 bodies byte-identical to a governor-less server.
	Degraded string `json:"degraded,omitempty"`
}

// ClassifyResult is the anti-adblock verdict for one script.
type ClassifyResult struct {
	AntiAdblock bool    `json:"anti_adblock"`
	Score       float64 `json:"score"`
	Decision    float64 `json:"decision"`
	Features    int     `json:"features"`
	Error       string  `json:"error,omitempty"`
}

// ModelInfo describes the installed model snapshot. Version is the
// artifact payload CRC the snapshot was loaded from; snapshots installed
// directly in-process (tests, embedders) have none and omit it, so golden
// bodies from Set*Snapshot servers are unchanged.
type ModelInfo struct {
	FeatureSet string `json:"feature_set"`
	Vocab      int    `json:"vocab"`
	Rounds     int    `json:"rounds"`
	Version    string `json:"version,omitempty"`
}

// ListsInfo describes the installed lists snapshot.
type ListsInfo struct {
	Label   string `json:"label,omitempty"`
	Lists   int    `json:"lists"`
	Rules   int    `json:"rules"`
	Version string `json:"version,omitempty"`
}

// SnapshotInfo identifies the snapshots a response was served from.
type SnapshotInfo struct {
	Model *ModelInfo `json:"model,omitempty"`
	Lists *ListsInfo `json:"lists,omitempty"`
}

type matchResponse struct {
	MatchResult
	Snapshot SnapshotInfo `json:"snapshot"`
}

type matchBatchRequest struct {
	Requests []MatchQuery `json:"requests"`
}

type matchBatchResponse struct {
	Count    int           `json:"count"`
	Results  []MatchResult `json:"results"`
	Snapshot SnapshotInfo  `json:"snapshot"`
}

type classifyResponse struct {
	ClassifyResult
	Snapshot SnapshotInfo `json:"snapshot"`
}

type classifyBatchRequest struct {
	Scripts []string `json:"scripts"`
}

type classifyBatchResponse struct {
	Count    int              `json:"count"`
	Results  []ClassifyResult `json:"results"`
	Snapshot SnapshotInfo     `json:"snapshot"`
}

type reloadResponse struct {
	Reloaded bool         `json:"reloaded"`
	Snapshot SnapshotInfo `json:"snapshot"`
}

// apiError is the structured error envelope every non-2xx response
// carries. Handlers never emit 500s: every failure mode maps to a typed
// 4xx (or 503 while a snapshot is missing).
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorResponse struct {
	Error apiError `json:"error"`
}

// ---- plumbing ----

// jsonBuf is a pooled response-encoding pair: the encoder is bound to the
// buffer once, so a steady-state response encode allocates nothing (the
// buffer's capacity and the encoder's internal machinery are both reused).
// The output is byte-identical to json.NewEncoder(w).Encode(v) — including
// the trailing newline the golden files pin.
type jsonBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var jsonBufPool = sync.Pool{New: func() any {
	jb := &jsonBuf{}
	jb.enc = json.NewEncoder(&jb.buf)
	return jb
}}

func writeJSON(w http.ResponseWriter, status int, v any) {
	jb := jsonBufPool.Get().(*jsonBuf)
	jb.buf.Reset()
	err := jb.enc.Encode(v)
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	if err == nil {
		w.Write(jb.buf.Bytes())
	}
	jsonBufPool.Put(jb)
}

func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: apiError{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}})
}

// decodeBody reads and JSON-decodes a bounded request body, translating
// the failure modes into typed 4xx responses (true = proceed).
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body, ok := s.readBody(w, r)
	if !ok {
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "malformed JSON body: %v", err)
		return false
	}
	return true
}

// readBody reads the bounded raw body (true = proceed).
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.maxBody()))
	if err != nil {
		s.bodyReadError(w, err)
		return nil, false
	}
	return body, true
}

// readBodyInto is readBody for the match hot path: the bounded body
// drains through the scratch's LimitedReader into its reusable buffer, so
// a steady-state read allocates nothing — no MaxBytesReader wrapper, no
// fresh io.ReadAll slice. The limit check reads one byte past the cap
// instead of wrapping the reader, which preserves the 413 envelope.
func (s *Server) readBodyInto(w http.ResponseWriter, r *http.Request, sc *matchScratch) bool {
	max := s.cfg.maxBody()
	sc.body.Reset()
	sc.lr = io.LimitedReader{R: r.Body, N: max + 1}
	_, err := sc.body.ReadFrom(&sc.lr)
	sc.lr.R = nil
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "reading body: %v", err)
		return false
	}
	if int64(sc.body.Len()) > max {
		writeError(w, http.StatusRequestEntityTooLarge, "body_too_large",
			"request body exceeds %d bytes", max)
		return false
	}
	return true
}

func (s *Server) bodyReadError(w http.ResponseWriter, err error) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		writeError(w, http.StatusRequestEntityTooLarge, "body_too_large",
			"request body exceeds %d bytes", tooLarge.Limit)
	} else {
		writeError(w, http.StatusBadRequest, "bad_request", "reading body: %v", err)
	}
}

// snapshotInfo reports the currently installed snapshots. The descriptors
// are precomputed at install time and shared by pointer: assembling a
// response envelope costs two atomic loads, no allocation.
func (s *Server) snapshotInfo() SnapshotInfo {
	var info SnapshotInfo
	if ms := s.model.Load(); ms != nil {
		info.Model = ms.info
	}
	if ls := s.lists.Load(); ls != nil {
		info.Lists = ls.info
	}
	return info
}

// degradeHeaderVals holds the pre-built header value slice for each
// ladder level, and retryAfterVals the jittered Retry-After values, so
// stamping a response is a map assignment of a shared slice — no
// per-request allocation. Handlers must never mutate these.
var (
	degradeHeaderVals = [5][]string{{"L0"}, {"L1"}, {"L2"}, {"L3"}, {"L4"}}
	retryAfterVals    = [3][]string{{"1"}, {"2"}, {"3"}}
)

// DegradeHeader carries the governor level every response was served
// under; DeadlineHeader carries the caller's remaining deadline budget
// in milliseconds (a duration, not a wall timestamp, so it survives
// clock skew between hops).
const (
	DegradeHeader  = "X-Adwars-Degrade"
	DeadlineHeader = "X-Adwars-Deadline"
)

// deadlineMs extracts the propagated deadline budget. The header lookup
// indexes the map directly with the canonical key and the parse is a
// manual digit walk — no strconv, no allocation on the hot path. A
// malformed value reads as "no deadline" rather than an error: the
// header is advisory, and refusing work over a garbled hint would turn
// a telemetry bug into an outage.
func deadlineMs(r *http.Request) (int64, bool) {
	vs := r.Header[DeadlineHeader]
	if len(vs) == 0 || vs[0] == "" {
		return 0, false
	}
	v := vs[0]
	var ms int64
	for i := 0; i < len(v); i++ {
		c := v[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		ms = ms*10 + int64(c-'0')
		if ms > 1<<40 {
			return ms, true
		}
	}
	return ms, true
}

// degradeSheds reports whether the ladder sheds this endpoint at lvl:
// L3 drops the classify plane (model inference is the expensive
// non-priority work), L4 additionally drops match batches. Single
// matches are never shed here — they stay on normal admission so the
// core service degrades last.
func degradeSheds(ep string, lvl degrade.Level) bool {
	switch ep {
	case epClassify, epClassifyBatch:
		return lvl >= degrade.L3
	case epMatchBatch:
		return lvl >= degrade.L4
	}
	return false
}

// refuse429 books a pre-work rejection (shed, degrade shed, deadline
// refusal) against the endpoint's stats and writes the envelope with a
// jittered Retry-After so synchronized clients desynchronize instead of
// re-arriving as one thundering herd.
func (s *Server) refuse429(stats *endpointStats, start time.Time, w http.ResponseWriter, code, msg string) {
	stats.shed.Add(1)
	stats.requests.Add(1)
	stats.latency.Observe(time.Since(start))
	retry := retryAfterVals[0]
	if s.gov != nil {
		retry = retryAfterVals[s.gov.Jitter3()]
	}
	w.Header()["Retry-After"] = retry
	writeError(w, http.StatusTooManyRequests, code, "%s", msg)
}

// beginAdmitted admits one request: stamp the degradation level, apply
// the governor's pre-admission gates (ladder sheds, deadline refusal),
// acquire a worker-pool ticket, absorb the configured test/chaos delays,
// and hand back the latency clock. On shed it writes the 429 itself and
// returns ok=false. Every true return must be paired with endAdmitted —
// the pair is the closure-free form of admitted, used by the match hot
// path so admission adds zero allocations.
func (s *Server) beginAdmitted(ep string, w http.ResponseWriter, r *http.Request) (start time.Time, ok bool) {
	stats := s.met.endpoints[ep]
	start = time.Now()
	if s.gov != nil {
		lvl := s.gov.Level()
		w.Header()[DegradeHeader] = degradeHeaderVals[lvl]
		if degradeSheds(ep, lvl) {
			s.met.degradeShed.Add(1)
			s.refuse429(stats, start, w, "degraded",
				"service degraded, endpoint temporarily shed")
			return start, false
		}
	}
	// A request that cannot finish inside its propagated deadline is
	// refused before it can occupy a queue slot: the caller would hang
	// up before the answer anyway, so queueing it is pure dead work.
	// Strictly-less keeps the exact-boundary request admitted (it can
	// still make it if a slot frees immediately). Independent of the
	// governor — the gate only exists when a caller propagated the
	// header, so deadline-less traffic is untouched.
	if ms, have := deadlineMs(r); have &&
		time.Duration(ms)*time.Millisecond < s.cfg.queueTimeout() {
		s.met.deadlineRefused.Add(1)
		s.refuse429(stats, start, w, "deadline",
			"deadline too short to queue, refused early")
		return start, false
	}
	if _, err := s.adm.acquire(r.Context()); err != nil {
		s.refuse429(stats, start, w, "shed", "server overloaded, retry later")
		return start, false
	}
	if s.testDelay > 0 {
		time.Sleep(s.testDelay)
	}
	// Injected chaos latency sleeps here, while holding the worker slot,
	// so it consumes real capacity and can push admission into shedding.
	if s.chaos != nil {
		if d, ok := s.chaos.drawLatency(); ok {
			s.met.chaos.latencyInjections.Add(1)
			time.Sleep(d)
		}
	}
	return start, true
}

// endAdmitted releases the worker ticket and records the request.
func (s *Server) endAdmitted(ep string, start time.Time) {
	s.adm.release()
	stats := s.met.endpoints[ep]
	stats.requests.Add(1)
	stats.latency.Observe(time.Since(start))
}

// admitted wraps a handler body in admission control and metrics: one
// worker-pool ticket per request (a batch rides on a single ticket, which
// is where its amortization comes from), latency observed on every
// outcome, 429 with Retry-After on shed.
func (s *Server) admitted(ep string, w http.ResponseWriter, r *http.Request, fn func()) {
	start, ok := s.beginAdmitted(ep, w, r)
	if !ok {
		return
	}
	defer s.endAdmitted(ep, start)
	fn()
}

// requireMethod enforces the endpoint's verb (true = proceed).
func requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		w.Header().Set("Allow", method)
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
			"%s requires %s", r.URL.Path, method)
		return false
	}
	return true
}

// routes builds the handler tree once at construction.
func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/match", s.handleMatch)
	mux.HandleFunc("/v1/match/batch", s.handleMatchBatch)
	mux.HandleFunc("/v1/classify", s.handleClassify)
	mux.HandleFunc("/v1/classify/batch", s.handleClassifyBatch)
	mux.HandleFunc("/admin/reload", s.handleReload)
	mux.HandleFunc("/admin/snapshot/", s.handleSnapshot)
	mux.HandleFunc("/admin/usage", s.handleUsage)
	mux.HandleFunc("/admin/analytics", s.handleAnalytics)
	mux.HandleFunc("/admin/degrade", s.handleDegrade)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/debug/vars", s.handleDebugVars)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, "not_found", "no such endpoint: %s", r.URL.Path)
	})
	return mux
}

// ---- match ----

// validTypes mirrors abp.RequestType; an empty type means "other".
var validTypes = map[string]bool{
	"": true, "script": true, "image": true, "stylesheet": true,
	"object": true, "xmlhttprequest": true, "subdocument": true,
	"document": true, "popup": true, "other": true,
}

// checkQuery validates one match query, returning a non-nil apiError for
// bad input.
func checkQuery(q *MatchQuery) *apiError {
	if q.URL == "" {
		return &apiError{Code: "bad_request", Message: `missing "url"`}
	}
	if !validTypes[q.Type] {
		return &apiError{Code: "bad_request", Message: fmt.Sprintf("unknown request type %q", q.Type)}
	}
	return nil
}

// matchScratch is the pooled per-request working set of the match hot
// path: the decoded query, the body read buffer, the per-list hit buffer,
// and append-only arenas for the response's ListMatch and matched-rule
// slices. Response slices carve sub-slices out of the arenas; a grown
// arena strands earlier carves on the old backing array, where their data
// stays intact, so the arenas are safe across a whole batch. The scratch
// may be returned to the pool only after the response is encoded.
type matchScratch struct {
	q       MatchQuery
	body    bytes.Buffer
	lr      io.LimitedReader
	hits    []abp.Hit
	lists   []ListMatch
	matched []string
	resp    matchResponse
}

var matchScratchPool = sync.Pool{New: func() any {
	return &matchScratch{
		hits:    make([]abp.Hit, 0, 16),
		lists:   make([]ListMatch, 0, 8),
		matched: make([]string, 0, 32),
	}
}}

func getMatchScratch() *matchScratch {
	sc := matchScratchPool.Get().(*matchScratch)
	sc.hits = sc.hits[:0]
	sc.lists = sc.lists[:0]
	sc.matched = sc.matched[:0]
	return sc
}

// matchWinner identifies the merged-list winning rule for the analytics
// event: the verdict, the winning rule's raw text, and its within-list
// ordinal. A no-match verdict carries ordinal -1 and no rule.
type matchWinner struct {
	verdict analytics.Verdict
	rule    string
	ordinal int32
}

// degradeHotOnly reports whether the governor has browned matching down
// to the hot tier (L2 and above).
func (s *Server) degradeHotOnly() bool {
	return s.gov != nil && s.gov.Level() >= degrade.L2
}

// matchOne answers one query against every list in the state with a
// single automaton probe per list: AppendHits collects every matching
// rule, DecideHits reduces them to the verdict, and the winning ordinal
// feeds the list's usage counters. Results alias sc's arenas. The second
// return identifies the merged winner — under merged-list semantics the
// first exception anywhere, else the first block anywhere — for the
// analytics event. Under hotOnly (governor at L2+) the probe consults
// only the hot-tier automata and the result is annotated "hot-only":
// exceptions always live hot, so the only possible drift from a full
// answer is a cold-tier block reading as no_match.
func matchOne(ls *listsState, q MatchQuery, sc *matchScratch, hotOnly bool) (MatchResult, matchWinner) {
	req := abp.Request{URL: q.URL, Type: abp.RequestType(q.Type), PageDomain: q.PageDomain}
	listsStart := len(sc.lists)
	anyBlocked, anyAllowed := false, false
	var blockRule, allowRule *abp.Rule
	var blockOrd, allowOrd int32 = -1, -1
	for _, l := range ls.snap.Lists {
		if hotOnly {
			sc.hits = l.AppendHitsHot(sc.hits[:0], req)
		} else {
			sc.hits = l.AppendHits(sc.hits[:0], req)
		}
		dec, rule, ord := abp.DecideHits(sc.hits)
		l.RecordUsage(ord)
		lm := ListMatch{List: l.Name, Decision: dec.String()}
		if rule != nil {
			lm.Rule = rule.Raw
		}
		switch dec {
		case abp.Blocked:
			anyBlocked = true
			if blockRule == nil {
				blockRule, blockOrd = rule, int32(ord)
			}
		case abp.Allowed:
			anyAllowed = true
			if allowRule == nil {
				allowRule, allowOrd = rule, int32(ord)
			}
		}
		if len(sc.hits) > 0 {
			start := len(sc.matched)
			for _, h := range sc.hits {
				sc.matched = append(sc.matched, h.Rule.Raw)
			}
			lm.MatchedRules = sc.matched[start:len(sc.matched):len(sc.matched)]
		}
		sc.lists = append(sc.lists, lm)
	}
	res := MatchResult{Lists: sc.lists[listsStart:len(sc.lists):len(sc.lists)]}
	if hotOnly {
		res.Degraded = "hot-only"
	}
	win := matchWinner{verdict: analytics.VerdictNoMatch, ordinal: -1}
	switch {
	case anyAllowed:
		res.Decision = abp.Allowed.String()
		win = matchWinner{verdict: analytics.VerdictAllowed, rule: allowRule.Raw, ordinal: allowOrd}
	case anyBlocked:
		res.Decision = abp.Blocked.String()
		res.Blocked = true
		win = matchWinner{verdict: analytics.VerdictBlocked, rule: blockRule.Raw, ordinal: blockOrd}
	default:
		res.Decision = abp.NoMatch.String()
	}
	return res, win
}

// recordMatch logs one match verdict into the analytics pipeline. The
// event's strings alias the decoded query and the compiled list's rule
// text — memory that already exists — so recording costs two atomic adds
// and a ring-slot copy, nothing on the heap; the collector's consumer
// clones whatever it keeps. Callers check s.anl != nil.
func (s *Server) recordMatch(q *MatchQuery, win matchWinner, ts time.Time) {
	domain := q.PageDomain
	if domain == "" {
		domain = abp.HostOf(q.URL)
	}
	s.anl.Record(analytics.Event{
		UnixNano: ts.UnixNano(),
		Kind:     analytics.KindMatch,
		Verdict:  win.verdict,
		Ordinal:  win.ordinal,
		Domain:   domain,
		Rule:     win.rule,
	})
}

// recordClassify logs one classification verdict.
func (s *Server) recordClassify(anti bool, ts time.Time) {
	v := analytics.VerdictBenign
	if anti {
		v = analytics.VerdictAntiAdblock
	}
	s.anl.Record(analytics.Event{
		UnixNano: ts.UnixNano(),
		Kind:     analytics.KindClassify,
		Verdict:  v,
		Ordinal:  -1,
	})
}

func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	ls := s.lists.Load()
	if ls == nil {
		writeError(w, http.StatusServiceUnavailable, "no_snapshot", "no lists snapshot loaded")
		return
	}
	sc := getMatchScratch()
	defer matchScratchPool.Put(sc)
	if !s.readBodyInto(w, r, sc) {
		return
	}
	sc.q = MatchQuery{}
	if err := json.Unmarshal(sc.body.Bytes(), &sc.q); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "malformed JSON body: %v", err)
		return
	}
	if apiErr := checkQuery(&sc.q); apiErr != nil {
		s.met.endpoints[epMatch].errors.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: *apiErr})
		return
	}
	start, ok := s.beginAdmitted(epMatch, w, r)
	if !ok {
		return
	}
	defer s.endAdmitted(epMatch, start)
	res, win := matchOne(ls, sc.q, sc, s.degradeHotOnly())
	if s.anl != nil {
		s.recordMatch(&sc.q, win, start)
	}
	sc.resp = matchResponse{
		MatchResult: res,
		Snapshot:    s.snapshotInfo(),
	}
	writeJSON(w, http.StatusOK, &sc.resp)
}

func (s *Server) handleMatchBatch(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	ls := s.lists.Load()
	if ls == nil {
		writeError(w, http.StatusServiceUnavailable, "no_snapshot", "no lists snapshot loaded")
		return
	}
	var batch matchBatchRequest
	if !s.decodeBody(w, r, &batch) {
		return
	}
	if len(batch.Requests) == 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "empty batch")
		return
	}
	if len(batch.Requests) > s.cfg.maxBatch() {
		writeError(w, http.StatusBadRequest, "batch_too_large",
			"%d requests exceed the %d-item batch limit", len(batch.Requests), s.cfg.maxBatch())
		return
	}
	for i := range batch.Requests {
		if apiErr := checkQuery(&batch.Requests[i]); apiErr != nil {
			s.met.endpoints[epMatchBatch].errors.Add(1)
			writeError(w, http.StatusBadRequest, apiErr.Code, "request %d: %s", i, apiErr.Message)
			return
		}
	}
	s.admitted(epMatchBatch, w, r, func() {
		s.met.endpoints[epMatchBatch].batchItems.Add(uint64(len(batch.Requests)))
		out := matchBatchResponse{
			Count:    len(batch.Requests),
			Results:  make([]MatchResult, 0, len(batch.Requests)),
			Snapshot: s.snapshotInfo(),
		}
		// One scratch serves the whole batch: the arenas grow monotonically
		// and every result's slices stay valid until the encode below.
		sc := getMatchScratch()
		defer matchScratchPool.Put(sc)
		now := time.Now()
		hotOnly := s.degradeHotOnly()
		for i := range batch.Requests {
			res, win := matchOne(ls, batch.Requests[i], sc, hotOnly)
			if s.anl != nil {
				s.recordMatch(&batch.Requests[i], win, now)
			}
			out.Results = append(out.Results, res)
		}
		writeJSON(w, http.StatusOK, out)
	})
}

// ---- classify ----

// score runs the ensemble on a projected sample. The score maps the
// ensemble's decision value onto [0,1] by normalizing against Σ|αₜ| (the
// largest reachable magnitude): 0.5 is the decision boundary, 1 means
// every round voted anti-adblock at full weight.
func (ms *modelState) score(fs map[string]bool) ClassifyResult {
	sample := ms.vocab.Project(fs)
	decision := ms.snap.Model.Decision(sample)
	margin := 0.0
	if ms.alphaSum > 0 {
		margin = decision / ms.alphaSum
	}
	if margin > 1 {
		margin = 1
	} else if margin < -1 {
		margin = -1
	}
	return ClassifyResult{
		AntiAdblock: decision >= 0,
		Score:       (margin + 1) / 2,
		Decision:    decision,
		Features:    sample.Popcount(),
	}
}

// classifyOne runs the jsast→features→AdaBoost inference path for one
// script against the installed model state.
func classifyOne(ms *modelState, src string) (ClassifyResult, error) {
	fs, err := features.ExtractSource(src, ms.set)
	if err != nil {
		return ClassifyResult{}, err
	}
	return ms.score(fs), nil
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	ms := s.model.Load()
	if ms == nil {
		writeError(w, http.StatusServiceUnavailable, "no_snapshot", "no model snapshot loaded")
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	if len(body) == 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "empty script body")
		return
	}
	s.admitted(epClassify, w, r, func() {
		res, err := classifyOne(ms, string(body))
		if err != nil {
			s.met.endpoints[epClassify].errors.Add(1)
			writeError(w, http.StatusUnprocessableEntity, "bad_script",
				"script does not parse: %v", err)
			return
		}
		if s.anl != nil {
			s.recordClassify(res.AntiAdblock, time.Now())
		}
		writeJSON(w, http.StatusOK, classifyResponse{
			ClassifyResult: res,
			Snapshot:       s.snapshotInfo(),
		})
	})
}

func (s *Server) handleClassifyBatch(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	ms := s.model.Load()
	if ms == nil {
		writeError(w, http.StatusServiceUnavailable, "no_snapshot", "no model snapshot loaded")
		return
	}
	var batch classifyBatchRequest
	if !s.decodeBody(w, r, &batch) {
		return
	}
	if len(batch.Scripts) == 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "empty batch")
		return
	}
	if len(batch.Scripts) > s.cfg.maxBatch() {
		writeError(w, http.StatusBadRequest, "batch_too_large",
			"%d scripts exceed the %d-item batch limit", len(batch.Scripts), s.cfg.maxBatch())
		return
	}
	s.admitted(epClassifyBatch, w, r, func() {
		s.met.endpoints[epClassifyBatch].batchItems.Add(uint64(len(batch.Scripts)))
		// The batch amortizes parse+extract across the worker pool: one
		// fan-out for all scripts instead of one request round-trip each.
		// Per-script parse failures annotate their slot instead of
		// failing the batch.
		sets, errs, _ := features.ExtractAll(context.Background(), batch.Scripts, ms.set, s.cfg.workers())
		out := classifyBatchResponse{
			Count:    len(batch.Scripts),
			Results:  make([]ClassifyResult, len(batch.Scripts)),
			Snapshot: s.snapshotInfo(),
		}
		now := time.Now()
		for i := range batch.Scripts {
			if errs[i] != nil {
				// A parse failure is not a verdict; it annotates the slot and
				// stays out of the analytics stream.
				out.Results[i] = ClassifyResult{Error: fmt.Sprintf("script does not parse: %v", errs[i])}
				continue
			}
			out.Results[i] = ms.score(sets[i])
			if s.anl != nil {
				s.recordClassify(out.Results[i].AntiAdblock, now)
			}
		}
		writeJSON(w, http.StatusOK, out)
	})
}

// ---- admin ----

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	if s.cfg.ModelPath == "" && s.cfg.ListsPath == "" {
		writeError(w, http.StatusBadRequest, "snapshot", "no snapshot paths configured")
		return
	}
	if err := s.ReloadSnapshots(); err != nil {
		// The old snapshots are still installed; the operator gets a
		// structured 4xx, not a broken server.
		writeError(w, http.StatusBadRequest, "snapshot", "reload failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, reloadResponse{Reloaded: true, Snapshot: s.snapshotInfo()})
}

// Health is the /healthz and /readyz response body: liveness, readiness,
// per-snapshot versions, and the last reload outcome — everything the
// gateway's health poller and the control plane's rollout watcher need in
// one fetch.
type Health struct {
	Status       string `json:"status"`
	Replica      string `json:"replica,omitempty"`
	Ready        bool   `json:"ready"`
	Draining     bool   `json:"draining,omitempty"`
	Model        bool   `json:"model"`
	Lists        bool   `json:"lists"`
	ModelVersion string `json:"model_version,omitempty"`
	ListsVersion string `json:"lists_version,omitempty"`
	// ListsCompiled reports whether the serving snapshot carried
	// pre-compiled match automata (schema v3) rather than being recompiled
	// at load.
	ListsCompiled bool `json:"lists_compiled,omitempty"`
	// ListsTiered reports whether every served list carries a hot/cold
	// tier split (schema v4, produced by adwars-compact).
	ListsTiered bool           `json:"lists_tiered,omitempty"`
	LastReload  *ReloadOutcome `json:"last_reload,omitempty"`
}

// health assembles the shared health/readiness report.
func (s *Server) health() Health {
	h := Health{
		Status:   "ok",
		Replica:  s.cfg.ReplicaID,
		Draining: s.draining.Load(),
	}
	if ms := s.model.Load(); ms != nil {
		h.Model = true
		h.ModelVersion = ms.version
	}
	if ls := s.lists.Load(); ls != nil {
		h.Lists = true
		h.ListsVersion = ls.version
		h.ListsCompiled = ls.snap.Compiled
		h.ListsTiered = ls.snap.Tiered
	}
	h.LastReload = s.lastReload.Load()
	h.Ready = (h.Model || h.Lists) && !h.Draining
	switch {
	case !h.Model && !h.Lists:
		h.Status = "no snapshots"
	case h.Draining:
		h.Status = "draining"
	}
	return h
}

// handleHealthz is liveness: 200 as long as the process can answer and
// has any snapshot, even while draining.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.health()
	status := http.StatusOK
	if !h.Model && !h.Lists {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

// handleReadyz is routability: 503 once drain is announced (or before any
// snapshot is loaded), so gateways stop sending traffic here while the
// data plane finishes the requests it already has.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	h := s.health()
	status := http.StatusOK
	if !h.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

// pushResponse answers a successful control-plane snapshot push.
type pushResponse struct {
	Installed bool   `json:"installed"`
	Kind      string `json:"kind"`
	Version   string `json:"version"`
}

// handleSnapshot is the control-plane snapshot exchange, keyed by
// /admin/snapshot/{lists,model}:
//
//   - POST installs a pushed artifact: the body is the sealed wire format
//     (the same CRC64 framing snapshots carry on disk). It is verified,
//     parsed, persisted atomically to the configured path, and installed —
//     in that order, so a replica restart always finds what it was last
//     serving. A damaged or unsealed push is refused with 422 and ticks
//     reload_rejected, exactly like a corrupt disk reload.
//   - GET returns the raw sealed bytes of the installed snapshot, which is
//     how the control plane captures last-good before a rollout so it can
//     roll back without any other storage.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	kind := strings.TrimPrefix(r.URL.Path, "/admin/snapshot/")
	if kind != "lists" && kind != "model" {
		writeError(w, http.StatusNotFound, "not_found", "unknown snapshot kind %q", kind)
		return
	}
	switch r.Method {
	case http.MethodGet:
		s.handleSnapshotGet(w, kind)
	case http.MethodPost:
		s.handleSnapshotPush(w, r, kind)
	default:
		w.Header().Set("Allow", "GET, POST")
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
			"%s requires GET or POST", r.URL.Path)
	}
}

func (s *Server) handleSnapshotGet(w http.ResponseWriter, kind string) {
	var raw []byte
	var version string
	switch kind {
	case "lists":
		if ls := s.lists.Load(); ls != nil {
			raw, version = ls.raw, ls.version
		}
	case "model":
		if ms := s.model.Load(); ms != nil {
			raw, version = ms.raw, ms.version
		}
	}
	if len(raw) == 0 {
		writeError(w, http.StatusNotFound, "no_snapshot",
			"no artifact-backed %s snapshot installed", kind)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Adwars-Snapshot-Version", version)
	w.Write(raw)
}

func (s *Server) handleSnapshotPush(w http.ResponseWriter, r *http.Request, kind string) {
	path := s.cfg.ListsPath
	if kind == "model" {
		path = s.cfg.ModelPath
	}
	if path == "" {
		writeError(w, http.StatusBadRequest, "snapshot",
			"no %s snapshot path configured on this replica", kind)
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.maxSnapshot()))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "body_too_large",
				"snapshot exceeds %d bytes", tooLarge.Limit)
		} else {
			writeError(w, http.StatusBadRequest, "bad_request", "reading snapshot body: %v", err)
		}
		return
	}
	// The wire format is the artifact framing itself: an unsealed push has
	// no integrity story over the network, so it is refused outright.
	version, verr := artifact.Version(data)
	if verr == nil {
		if _, sealed, _ := artifact.Open(data); !sealed {
			verr = artifact.Corruptf("missing-trailer", "pushed %s snapshot is not sealed", kind)
		}
	}
	if verr != nil {
		s.reloadFailed("push", verr)
		writeError(w, http.StatusUnprocessableEntity, "corrupt_artifact",
			"pushed %s snapshot refused: %v", kind, verr)
		return
	}
	// Parse before persisting so a schema-broken artifact never reaches
	// disk, then persist before installing so disk and memory can only
	// disagree in the direction of "disk newer, reload pending".
	switch kind {
	case "lists":
		snap, err := abp.ReadListsSnapshot(bytes.NewReader(data))
		if err != nil {
			s.reloadFailed("push", err)
			writeError(w, http.StatusUnprocessableEntity, "corrupt_artifact",
				"pushed lists snapshot refused: %v", err)
			return
		}
		if err := artifact.WriteFileAtomic(path, data, 0o644); err != nil {
			s.reloadFailed("push", err)
			writeError(w, http.StatusInternalServerError, "persist_failed",
				"persisting pushed snapshot: %v", err)
			return
		}
		if err := s.installLists(snap, version, data); err != nil {
			s.reloadFailed("push", err)
			writeError(w, http.StatusUnprocessableEntity, "corrupt_artifact",
				"pushed lists snapshot refused: %v", err)
			return
		}
	case "model":
		snap, err := ml.ReadModelSnapshot(bytes.NewReader(data))
		if err != nil {
			s.reloadFailed("push", err)
			writeError(w, http.StatusUnprocessableEntity, "corrupt_artifact",
				"pushed model snapshot refused: %v", err)
			return
		}
		if err := artifact.WriteFileAtomic(path, data, 0o644); err != nil {
			s.reloadFailed("push", err)
			writeError(w, http.StatusInternalServerError, "persist_failed",
				"persisting pushed snapshot: %v", err)
			return
		}
		if err := s.installModel(snap, version, data); err != nil {
			s.reloadFailed("push", err)
			writeError(w, http.StatusUnprocessableEntity, "corrupt_artifact",
				"pushed model snapshot refused: %v", err)
			return
		}
	}
	s.met.reloads.Add(1)
	s.met.pushes.Add(1)
	s.lastReload.Store(&ReloadOutcome{OK: true, Source: "push"})
	writeJSON(w, http.StatusOK, pushResponse{Installed: true, Kind: kind, Version: version})
}

// ---- usage ----

// UsageRule is one entry of a list's top-K hit ranking.
type UsageRule struct {
	Ordinal int    `json:"ordinal"`
	Rule    string `json:"rule"`
	Hits    uint64 `json:"hits"`
}

// UsageList is one list's per-rule usage distribution. Hits carries every
// rule that fired as an [ordinal, count] pair in ordinal order — the
// machine-readable form adwars-compact consumes; Top is the human-readable
// ranking. DeadFraction is over HTTP rules only (element-hiding rules
// never take the match path, counting them as "dead" would be noise).
type UsageList struct {
	List         string      `json:"list"`
	Rules        int         `json:"rules"`
	HTTPRules    int         `json:"http_rules"`
	TotalHits    uint64      `json:"total_hits"`
	DeadRules    int         `json:"dead_rules"`
	DeadFraction float64     `json:"dead_fraction"`
	Top          []UsageRule `json:"top,omitempty"`
	Hits         [][2]uint64 `json:"hits"`
}

// UsageDump is the /admin/usage response body.
type UsageDump struct {
	TotalHits uint64      `json:"total_hits"`
	Lists     []UsageList `json:"lists"`
}

// usageList builds one list's usage report with the given top-K depth.
func usageList(l *abp.List, topK int) UsageList {
	counts := l.Usage().Counts()
	rules := l.Rules()
	ul := UsageList{List: l.Name, Rules: len(rules), Hits: make([][2]uint64, 0, 16)}
	for ord, r := range rules {
		if !r.IsHTTP() {
			continue
		}
		ul.HTTPRules++
		if counts[ord] == 0 {
			ul.DeadRules++
			continue
		}
		ul.TotalHits += counts[ord]
		ul.Hits = append(ul.Hits, [2]uint64{uint64(ord), counts[ord]})
	}
	if ul.HTTPRules > 0 {
		ul.DeadFraction = float64(ul.DeadRules) / float64(ul.HTTPRules)
	}
	if topK > 0 && len(ul.Hits) > 0 {
		ranked := append([][2]uint64(nil), ul.Hits...)
		sort.Slice(ranked, func(i, j int) bool {
			if ranked[i][1] != ranked[j][1] {
				return ranked[i][1] > ranked[j][1]
			}
			return ranked[i][0] < ranked[j][0]
		})
		if len(ranked) > topK {
			ranked = ranked[:topK]
		}
		for _, p := range ranked {
			ul.Top = append(ul.Top, UsageRule{
				Ordinal: int(p[0]),
				Rule:    rules[p[0]].Raw,
				Hits:    p[1],
			})
		}
	}
	return ul
}

// handleUsage dumps the per-rule hit counters of every served list: the
// shard banks are merged on read (recording never pays for reporting).
// The dump is both an operator surface (top-K, dead-rule fraction — the
// paper's "most rules never fire" skew, observed live) and the input
// adwars-compact turns into a tiered snapshot. ?top=N adjusts the ranking
// depth (default 10, 0 disables).
func (s *Server) handleUsage(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	ls := s.lists.Load()
	if ls == nil {
		writeError(w, http.StatusServiceUnavailable, "no_snapshot", "no lists snapshot loaded")
		return
	}
	topK := 10
	if v := r.URL.Query().Get("top"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad_request", "invalid top=%q", v)
			return
		}
		topK = n
	}
	dump := UsageDump{Lists: make([]UsageList, 0, len(ls.snap.Lists))}
	for _, l := range ls.snap.Lists {
		if l.Usage() == nil {
			writeError(w, http.StatusNotFound, "usage_disabled",
				"usage counters are disabled on this replica")
			return
		}
		ul := usageList(l, topK)
		dump.TotalHits += ul.TotalHits
		dump.Lists = append(dump.Lists, ul)
	}
	writeJSON(w, http.StatusOK, dump)
}

// ---- analytics ----

// handleAnalytics snapshots the decision analytics pipeline: producer
// counters (recorded / dropped / sampled-out), cumulative per-verdict
// totals (which survive bucket eviction — the reconciliation anchor),
// aggregator occupancy against its bounds, and the in-memory bucket rows.
// adwars-report -live consumes it directly; adwars-loadgen
// -analytics-check reconciles its totals against the client-side ledger.
func (s *Server) handleAnalytics(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	if s.anl == nil {
		writeError(w, http.StatusNotFound, "analytics_disabled",
			"decision analytics are disabled on this replica")
		return
	}
	snap := s.anl.Snapshot()
	writeJSON(w, http.StatusOK, &snap)
}

// ---- degrade ----

// parseDegradeLevel accepts "L2" or "2" forms for operator pins.
func parseDegradeLevel(v string) (degrade.Level, bool) {
	if len(v) == 2 && (v[0] == 'L' || v[0] == 'l') {
		v = v[1:]
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 || n > int(degrade.L4) {
		return 0, false
	}
	return degrade.Level(n), true
}

// handleDegrade is the operator surface for the overload governor:
//
//   - GET returns the governor snapshot (level, pin state, transition
//     ledger, last pressure signals).
//   - POST ?pin=L2 pins the ladder at a level — the ticker keeps
//     counting but cannot move it — for incident response or brownout
//     drills; POST ?unpin releases it back to automatic control.
func (s *Server) handleDegrade(w http.ResponseWriter, r *http.Request) {
	if s.gov == nil {
		writeError(w, http.StatusNotFound, "degrade_disabled",
			"the overload governor is disabled on this replica")
		return
	}
	switch r.Method {
	case http.MethodGet:
		snap := s.gov.Snapshot()
		writeJSON(w, http.StatusOK, &snap)
	case http.MethodPost:
		q := r.URL.Query()
		switch {
		case q.Has("pin"):
			lvl, ok := parseDegradeLevel(q.Get("pin"))
			if !ok {
				writeError(w, http.StatusBadRequest, "bad_request",
					"invalid pin level %q (want L0..L4)", q.Get("pin"))
				return
			}
			s.gov.Pin(lvl)
		case q.Has("unpin"):
			s.gov.Unpin()
		default:
			writeError(w, http.StatusBadRequest, "bad_request",
				"POST needs ?pin=L0..L4 or ?unpin")
			return
		}
		snap := s.gov.Snapshot()
		writeJSON(w, http.StatusOK, &snap)
	default:
		w.Header().Set("Allow", "GET, POST")
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
			"%s requires GET or POST", r.URL.Path)
	}
}

// degradeVars renders the governor snapshot for /debug/vars.
func (s *Server) degradeVars() string {
	if s.gov == nil {
		return `{"enabled":false}`
	}
	data, err := json.Marshal(s.gov.Snapshot())
	if err != nil {
		return "{}"
	}
	return string(data)
}

// analyticsVars renders the collector's cheap accounting for /debug/vars
// (lazy-read contract: nothing is computed until scraped).
func (s *Server) analyticsVars() string {
	if s.anl == nil {
		return `{"enabled":false}`
	}
	data, err := json.Marshal(s.anl.Vars())
	if err != nil {
		return "{}"
	}
	return string(data)
}

// usageAggregate is the cheap usage summary inlined into /debug/vars.
type usageAggregate struct {
	Enabled      bool    `json:"enabled"`
	TotalHits    uint64  `json:"total_hits"`
	HTTPRules    int     `json:"http_rules"`
	DeadRules    int     `json:"dead_rules"`
	DeadFraction float64 `json:"dead_fraction"`
}

// usageVars renders the aggregate as JSON. The counters are sharded
// per-bank atomics; merging them happens here, on the read side, so the
// match path never pays for metrics export (satellite of the lazy-read
// contract: /debug/vars computes the aggregate only when scraped).
func (s *Server) usageVars() string {
	agg := usageAggregate{}
	if ls := s.lists.Load(); ls != nil {
		for _, l := range ls.snap.Lists {
			u := l.Usage()
			if u == nil {
				continue
			}
			agg.Enabled = true
			counts := u.Counts()
			for ord, r := range l.Rules() {
				if !r.IsHTTP() {
					continue
				}
				agg.HTTPRules++
				if counts[ord] == 0 {
					agg.DeadRules++
				} else {
					agg.TotalHits += counts[ord]
				}
			}
		}
	}
	if agg.HTTPRules > 0 {
		agg.DeadFraction = float64(agg.DeadRules) / float64(agg.HTTPRules)
	}
	data, err := json.Marshal(agg)
	if err != nil {
		return "{}"
	}
	return string(data)
}

// handleDebugVars renders the process-global expvar registry plus this
// server's metrics tree under "adwars_serve" — the standard /debug/vars
// shape without requiring the server to win a global registration race
// (tests run many servers in one process).
func (s *Server) handleDebugVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintf(w, "{\n")
	first := true
	expvar.Do(func(kv expvar.KeyValue) {
		if kv.Key == "adwars_serve" {
			return // replaced below with this server's tree
		}
		if !first {
			fmt.Fprintf(w, ",\n")
		}
		first = false
		fmt.Fprintf(w, "%q: %s", kv.Key, kv.Value)
	})
	if !first {
		fmt.Fprintf(w, ",\n")
	}
	fmt.Fprintf(w, "%q: %s", "adwars_serve", s.met.String())
	fmt.Fprintf(w, ",\n%q: %s", "adwars_usage", s.usageVars())
	fmt.Fprintf(w, ",\n%q: %s", "adwars_analytics", s.analyticsVars())
	fmt.Fprintf(w, ",\n%q: %s", "adwars_degrade", s.degradeVars())
	fmt.Fprintf(w, "\n}\n")
}
