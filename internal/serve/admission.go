package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// errShed is returned by admission.acquire when the request cannot get a
// worker slot before its queueing deadline (or the queue itself is full).
// Handlers map it to 429 so overload degrades into fast, explicit rejections
// instead of unbounded queues and timeouts — the server keeps serving at its
// capacity while excess load bounces.
var errShed = errors.New("serve: overloaded, request shed")

// admission is a bounded worker pool plus a bounded wait queue with a
// deadline. A request first tries to take a slot immediately; if none is
// free it may wait — but only while fewer than maxQueue requests are
// already waiting, and only up to timeout. Everything else is shed.
type admission struct {
	slots    chan struct{}
	queued   atomic.Int64
	maxQueue int64
	timeout  time.Duration
	// releaseFn is the release method bound once at construction; handing
	// it out from acquire avoids materializing a fresh method value (one
	// heap allocation) on every admitted request.
	releaseFn func()
}

func newAdmission(workers, maxQueue int, timeout time.Duration) *admission {
	a := &admission{
		slots:    make(chan struct{}, workers),
		maxQueue: int64(maxQueue),
		timeout:  timeout,
	}
	a.releaseFn = a.release
	return a
}

// acquire blocks until a worker slot is available, the queue deadline
// expires (errShed), or ctx is cancelled. On success the caller must invoke
// the returned release exactly once.
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	// Fast path: free slot, no queueing, no timer allocation.
	select {
	case a.slots <- struct{}{}:
		return a.releaseFn, nil
	default:
	}
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		return nil, errShed
	}
	timer := time.NewTimer(a.timeout)
	defer timer.Stop()
	defer a.queued.Add(-1)
	select {
	case a.slots <- struct{}{}:
		return a.releaseFn, nil
	case <-timer.C:
		return nil, errShed
	case <-ctx.Done():
		// The client gave up while queued; shed rather than do dead work.
		return nil, errShed
	}
}

func (a *admission) release() { <-a.slots }
