package serve

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"adwars/internal/analytics"
	"adwars/internal/degrade"
)

// degradeServer builds a fixture server with the overload governor
// enabled but not started: tests move the ladder with Pin or Tick, so
// no ticker goroutine runs and the goroutine-leak checks stay quiet.
func degradeServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Degrade == nil {
		cfg.Degrade = &degrade.Config{}
	}
	return newTestServer(t, cfg)
}

const matchBlockedBody = `{"url":"http://ads.example.com/banner.js","type":"script","page_domain":"news.example"}`

func TestDegradeHeaderStampedPerLevel(t *testing.T) {
	s := degradeServer(t, Config{})
	for lvl := degrade.L0; lvl <= degrade.L4; lvl++ {
		s.Degrade().Pin(lvl)
		rec := do(t, s, "POST", "/v1/match", matchBlockedBody)
		if rec.Code != 200 {
			t.Fatalf("level %s: /v1/match status %d", lvl, rec.Code)
		}
		if got := rec.Header().Get(DegradeHeader); got != lvl.String() {
			t.Fatalf("level %s: %s header = %q", lvl, DegradeHeader, got)
		}
	}

	// Without a governor there is no header at all: the seed's response
	// shape is untouched.
	plain := newTestServer(t, Config{})
	rec := do(t, plain, "POST", "/v1/match", matchBlockedBody)
	if vs, ok := rec.Header()[DegradeHeader]; ok {
		t.Fatalf("governor-less server stamped %s: %v", DegradeHeader, vs)
	}
}

// TestDegradeL0ByteIdentical pins the wire contract the brownout smoke
// leans on: at L0 a governed server's /v1/match body is byte-identical
// to a governor-less server's, so post-recovery probes can be diffed
// against an unloaded control.
func TestDegradeL0ByteIdentical(t *testing.T) {
	gov := degradeServer(t, Config{})
	plain := newTestServer(t, Config{})
	for _, body := range []string{
		matchBlockedBody,
		`{"url":"http://ads.example.com/allowed","type":"script"}`,
		`{"url":"http://clean.example/app.js"}`,
	} {
		got := do(t, gov, "POST", "/v1/match", body)
		want := do(t, plain, "POST", "/v1/match", body)
		if got.Body.String() != want.Body.String() {
			t.Fatalf("L0 body diverges for %s:\n got: %s\nwant: %s",
				body, got.Body.String(), want.Body.String())
		}
	}
}

// TestDegradeL2HotOnlyAnnotation: at L2 the match answer is computed
// from the hot tier only and says so. The fixture lists are untiered
// (everything hot), so the verdicts themselves must not move.
func TestDegradeL2HotOnlyAnnotation(t *testing.T) {
	s := degradeServer(t, Config{})
	s.Degrade().Pin(degrade.L2)
	rec := do(t, s, "POST", "/v1/match", matchBlockedBody)
	if rec.Code != 200 {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var res matchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Degraded != "hot-only" {
		t.Fatalf("degraded = %q, want hot-only", res.Degraded)
	}
	if !res.Blocked {
		t.Fatalf("untiered fixture verdict moved under hot-only: %+v", res.MatchResult)
	}

	// Below L2 the annotation disappears again.
	s.Degrade().Pin(degrade.L1)
	rec = do(t, s, "POST", "/v1/match", matchBlockedBody)
	if strings.Contains(rec.Body.String(), "degraded") {
		t.Fatalf("L1 body still annotated: %s", rec.Body.String())
	}
}

// TestDegradeLadderSheds: L3 drops the classify plane, L4 additionally
// drops match batches; single matches survive to L4. Every shed is a
// structured 429 with a jittered Retry-After — never a 5xx.
func TestDegradeLadderSheds(t *testing.T) {
	s := degradeServer(t, Config{})
	classify := testAntiScript
	batch := `{"requests":[` + matchBlockedBody + `]}`

	type probe struct {
		path, body string
	}
	probes := map[string]probe{
		"classify":       {"/v1/classify", classify},
		"classify_batch": {"/v1/classify/batch", `{"scripts":[` + jsonQuote(classify) + `]}`},
		"match_batch":    {"/v1/match/batch", batch},
		"match":          {"/v1/match", matchBlockedBody},
	}
	shedAt := map[string]map[string]bool{
		"L2": {},
		"L3": {"classify": true, "classify_batch": true},
		"L4": {"classify": true, "classify_batch": true, "match_batch": true},
	}
	for _, lvlName := range []string{"L2", "L3", "L4"} {
		lvl, _ := parseDegradeLevel(lvlName)
		s.Degrade().Pin(lvl)
		for name, p := range probes {
			rec := do(t, s, "POST", p.path, p.body)
			if shedAt[lvlName][name] {
				if rec.Code != 429 {
					t.Fatalf("%s at %s: status %d, want 429: %s", name, lvlName, rec.Code, rec.Body.String())
				}
				if !strings.Contains(rec.Body.String(), `"degraded"`) {
					t.Fatalf("%s at %s: body lacks degraded code: %s", name, lvlName, rec.Body.String())
				}
				ra := rec.Header().Get("Retry-After")
				if ra != "1" && ra != "2" && ra != "3" {
					t.Fatalf("%s at %s: Retry-After = %q, want jittered 1..3", name, lvlName, ra)
				}
			} else if rec.Code != 200 {
				t.Fatalf("%s at %s: status %d, want 200: %s", name, lvlName, rec.Code, rec.Body.String())
			}
		}
	}
	if got := s.met.degradeShed.Load(); got != 5 {
		t.Fatalf("degrade_shed = %d, want 5 (2 at L3 + 3 at L4)", got)
	}
}

// jsonQuote JSON-quotes a script for embedding in a batch body.
func jsonQuote(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

func TestDegradeAdminEndpoint(t *testing.T) {
	s := degradeServer(t, Config{})

	rec := do(t, s, "GET", "/admin/degrade", "")
	var snap degrade.Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot does not parse: %v", err)
	}
	if snap.Level != "L0" || snap.Pinned {
		t.Fatalf("initial snapshot = %+v, want unpinned L0", snap)
	}

	rec = do(t, s, "POST", "/admin/degrade?pin=L3", "")
	if rec.Code != 200 {
		t.Fatalf("pin status = %d: %s", rec.Code, rec.Body.String())
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Level != "L3" || !snap.Pinned || snap.PinnedLevel != 3 {
		t.Fatalf("pinned snapshot = %+v, want pinned L3", snap)
	}
	if got := s.Degrade().Level(); got != degrade.L3 {
		t.Fatalf("governor level = %s after pin", got)
	}

	rec = do(t, s, "POST", "/admin/degrade?unpin", "")
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Pinned {
		t.Fatalf("still pinned after unpin: %+v", snap)
	}

	if rec := do(t, s, "POST", "/admin/degrade?pin=L9", ""); rec.Code != 400 {
		t.Fatalf("bad pin level: status %d, want 400", rec.Code)
	}
	if rec := do(t, s, "POST", "/admin/degrade", ""); rec.Code != 400 {
		t.Fatalf("argless POST: status %d, want 400", rec.Code)
	}
	if rec := do(t, s, "DELETE", "/admin/degrade", ""); rec.Code != 405 {
		t.Fatalf("DELETE: status %d, want 405", rec.Code)
	}

	plain := newTestServer(t, Config{})
	if rec := do(t, plain, "GET", "/admin/degrade", ""); rec.Code != 404 ||
		!strings.Contains(rec.Body.String(), "degrade_disabled") {
		t.Fatalf("disabled server: status %d body %s, want 404 degrade_disabled",
			rec.Code, rec.Body.String())
	}
}

func TestDegradeDebugVars(t *testing.T) {
	s := degradeServer(t, Config{})
	s.Degrade().Pin(degrade.L2)
	rec := do(t, s, "GET", "/debug/vars", "")
	var vars struct {
		Degrade degrade.Snapshot `json:"adwars_degrade"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &vars); err != nil {
		t.Fatalf("debug vars do not parse: %v", err)
	}
	if vars.Degrade.Level != "L2" || vars.Degrade.Transitions != 1 {
		t.Fatalf("adwars_degrade = %+v, want L2 after one transition", vars.Degrade)
	}

	plain := newTestServer(t, Config{})
	rec = do(t, plain, "GET", "/debug/vars", "")
	if !strings.Contains(rec.Body.String(), `"adwars_degrade": {"enabled":false}`) {
		t.Fatalf("disabled tree missing from debug vars: %s", rec.Body.String())
	}
}

// TestDegradeAnalyticsOverride: crossing L1 forces analytics sampling
// down to the brownout rate; returning to L0 restores the configured
// rate. The transition hook fires on pins exactly as on ladder steps.
func TestDegradeAnalyticsOverride(t *testing.T) {
	s := degradeServer(t, Config{
		Analytics: &analytics.Config{SpillDir: t.TempDir()},
	})
	t.Cleanup(func() { s.CloseAnalytics() }) //nolint:errcheck
	if s.AnalyticsError() != nil {
		t.Fatal(s.AnalyticsError())
	}
	if got := s.Analytics().CountersNow().EffectiveRate; got != 1 {
		t.Fatalf("initial effective rate = %v, want 1", got)
	}
	s.Degrade().Pin(degrade.L2)
	if got := s.Analytics().CountersNow().EffectiveRate; got != degradeSampleRate {
		t.Fatalf("effective rate at L2 = %v, want %v", got, degradeSampleRate)
	}
	// L2 → L1 stays above the threshold: the override must hold.
	s.Degrade().Pin(degrade.L1)
	if got := s.Analytics().CountersNow().EffectiveRate; got != degradeSampleRate {
		t.Fatalf("effective rate at L1 = %v, want %v", got, degradeSampleRate)
	}
	s.Degrade().Pin(degrade.L0)
	if got := s.Analytics().CountersNow().EffectiveRate; got != 1 {
		t.Fatalf("effective rate back at L0 = %v, want 1", got)
	}
}

// TestDegradeSourceWindowedSignals drives the wired pressure probe
// through the governor and proves the signals are windowed: pressure
// observed during one tick does not haunt the next.
func TestDegradeSourceWindowedSignals(t *testing.T) {
	s := degradeServer(t, Config{Workers: 2, Queue: 8})
	src := s.degradeSource()

	// Quiet server: no pressure.
	sig := src()
	if sig.QueueDepth != 0 || sig.MatchP99Ns != 0 || sig.DropRate != 0 {
		t.Fatalf("quiet signals = %+v, want zero", sig)
	}
	if sig.QueueLimit != 8 {
		t.Fatalf("queue limit = %d, want 8", sig.QueueLimit)
	}

	// Slow traffic shows up in the next window...
	s.met.endpoints[epMatch].latency.Observe(50 * time.Millisecond)
	if sig = src(); sig.MatchP99Ns < (50 * time.Millisecond).Nanoseconds() {
		t.Fatalf("windowed p99 = %dns, want >= 50ms", sig.MatchP99Ns)
	}
	// ...and is forgotten in the one after: cumulative counters would
	// keep the ladder stuck at its peak forever.
	if sig = src(); sig.MatchP99Ns != 0 {
		t.Fatalf("stale p99 leaked into the next window: %dns", sig.MatchP99Ns)
	}
}

func TestHistogramWindowQuantile(t *testing.T) {
	h := &histogram{}
	var prev [44]uint64
	if got := h.windowQuantile(&prev, 0.99); got != 0 {
		t.Fatalf("empty window p99 = %d, want 0", got)
	}
	for i := 0; i < 100; i++ {
		h.Observe(1000)
	}
	if got := h.windowQuantile(&prev, 0.99); got == 0 || got > 2048 {
		t.Fatalf("first window p99 = %dns, want ≈1µs bucket", got)
	}
	// A second window sees only its own observations, so ten slow ones
	// dominate even though a hundred fast ones precede them cumulatively.
	for i := 0; i < 10; i++ {
		h.Observe(16 * time.Millisecond)
	}
	if got := h.windowQuantile(&prev, 0.99); got < uint64((16 * time.Millisecond).Nanoseconds()) {
		t.Fatalf("second window p99 = %dns, want >= 16ms", got)
	}
	if got := h.windowQuantile(&prev, 0.99); got != 0 {
		t.Fatalf("drained window p99 = %d, want 0", got)
	}
}

// TestServeMatchDegradeAllocs extends the hot-path allocation gate to a
// governed server: reading the level, stamping the header, and the
// hot-only probe at L2 must all fit in the same 8-alloc budget as the
// ungoverned path.
func TestServeMatchDegradeAllocs(t *testing.T) {
	if raceSrvEnabled {
		t.Skip("allocation accounting is unreliable under -race")
	}
	for _, lvl := range []degrade.Level{degrade.L0, degrade.L2} {
		t.Run(fmt.Sprintf("level_%s", lvl), func(t *testing.T) {
			s := degradeServer(t, Config{Workers: 4, Queue: 64, QueueTimeout: time.Second})
			s.Degrade().Pin(lvl)
			h, w, req, rb := matchAllocRig(s, matchBlockedBody)
			allocs := testing.AllocsPerRun(200, func() {
				rb.Reset(matchBlockedBody)
				w.status = 0
				h.ServeHTTP(w, req)
			})
			if w.status != 200 {
				t.Fatalf("status = %d", w.status)
			}
			if allocs > 8 {
				t.Fatalf("/v1/match at %s allocates %.1f/op, budget is 8", lvl, allocs)
			}
			t.Logf("/v1/match at %s: %.1f allocs/op", lvl, allocs)
		})
	}
}
