package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"adwars/internal/abp"
	"adwars/internal/analytics"
	"adwars/internal/antiadblock"
	"adwars/internal/ml"
)

// benchServer builds a server over a realistically sized compiled list
// (1k HTTP rules) and the fixture model, driven through the full handler
// stack (routing, admission, JSON) but without network I/O, so the
// numbers isolate serving cost.
func benchServer(b *testing.B) *Server {
	return benchServerCfg(b, Config{Workers: 4, Queue: 1024, QueueTimeout: time.Second})
}

func benchServerCfg(b *testing.B, cfg Config) *Server {
	b.Helper()
	var lines []string
	for i := 0; i < 1000; i++ {
		lines = append(lines, fmt.Sprintf("||adserver%03d.example^$script", i%500))
		if i%10 == 0 {
			lines = append(lines, fmt.Sprintf("@@||adserver%03d.example/allowed$script", i%500))
		}
	}
	rules := make([]*abp.Rule, 0, len(lines))
	for _, line := range lines {
		r, err := abp.Parse(line)
		if err != nil {
			b.Fatalf("parse %q: %v", line, err)
		}
		rules = append(rules, r)
	}
	l := abp.NewList("bench", rules)
	s := New(cfg)
	snap, err := ml.ReadModelSnapshot(bytes.NewReader([]byte(benchModelJSON)))
	if err != nil {
		b.Fatal(err)
	}
	if err := s.SetModelSnapshot(snap); err != nil {
		b.Fatal(err)
	}
	if err := s.SetListsSnapshot(&abp.ListsSnapshot{Label: "bench", Lists: []*abp.List{l}}); err != nil {
		b.Fatal(err)
	}
	return s
}

// benchMatchBodies generates the standard /v1/match traffic mix.
func benchMatchBodies(seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	bodies := make([][]byte, 64)
	for i := range bodies {
		q := MatchQuery{
			URL:        fmt.Sprintf("http://adserver%03d.example/slot/%d/ad.js", rng.Intn(600), i),
			Type:       "script",
			PageDomain: "news.example",
		}
		bodies[i], _ = json.Marshal(q)
	}
	return bodies
}

const benchModelJSON = `{
  "format": "adwars-model",
  "version": 1,
  "classifier": "adaboost",
  "feature_set": "keyword",
  "vocab": ["Identifier:offsetHeight", "Identifier:offsetWidth"],
  "model": {
    "alphas": [2],
    "models": [{"kernel": "linear", "bias": -1.5, "coefs": [1], "vectors": [[0, 1]]}]
  }
}`

// reportLatencies attaches p50/p99 custom metrics, which cmd/benchjson
// folds into BENCH_serve.json.
func reportLatencies(b *testing.B, lat []time.Duration) {
	if len(lat) == 0 {
		return
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	b.ReportMetric(float64(lat[len(lat)/2].Nanoseconds()), "p50-ns")
	b.ReportMetric(float64(lat[len(lat)*99/100].Nanoseconds()), "p99-ns")
}

func benchDrive(b *testing.B, s *Server, path string, bodies [][]byte) {
	h := s.Handler()
	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", path, bytes.NewReader(bodies[i%len(bodies)]))
		rec := httptest.NewRecorder()
		start := time.Now()
		h.ServeHTTP(rec, req)
		lat = append(lat, time.Since(start))
		if rec.Code != 200 {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.Bytes())
		}
	}
	b.StopTimer()
	reportLatencies(b, lat)
}

func BenchmarkServeMatch(b *testing.B) {
	s := benchServer(b)
	benchDrive(b, s, "/v1/match", benchMatchBodies(1))
}

// BenchmarkServeMatchHandler measures the /v1/match handler's own cost:
// the request and writer are reused, so ns/op and allocs/op cover exactly
// the serving work (body read, decode, admission, match, usage recording,
// JSON encode) and nothing of the test harness. Its allocs/op becomes
// serve_match_allocs in BENCH_serve.json, gated at ≤8 by
// TestServeMatchAllocs.
func BenchmarkServeMatchHandler(b *testing.B) {
	s := benchServer(b)
	const body = `{"url":"http://adserver042.example/slot/7/ad.js","type":"script","page_domain":"news.example"}`
	h, w, req, rb := matchAllocRig(s, body)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rb.Reset(body)
		h.ServeHTTP(w, req)
	}
	if w.status != 200 {
		b.Fatalf("status %d", w.status)
	}
}

// BenchmarkServeMatchAnalytics is BenchmarkServeMatch with the decision
// analytics pipeline recording every verdict (sampling 1.0). cmd/benchjson
// subtracts BenchmarkServeMatch's p99 from this one's to derive
// analytics_overhead_p99_ns — the tail cost of decision logging, which the
// lock-free ring design holds at zero — and folds the reported drop-rate
// and agg-bytes metrics into analytics_drop_rate / analytics_agg_bytes.
func BenchmarkServeMatchAnalytics(b *testing.B) {
	s := benchServerCfg(b, Config{
		Workers: 4, Queue: 1024, QueueTimeout: time.Second,
		Analytics: &analytics.Config{SampleRate: 1},
	})
	if err := s.AnalyticsError(); err != nil {
		b.Fatal(err)
	}
	defer s.CloseAnalytics()
	benchDrive(b, s, "/v1/match", benchMatchBodies(1))
	// Let the consumer finish draining the rings so agg-bytes reflects the
	// aggregated run, not events still in flight.
	v := s.Analytics().Vars()
	for deadline := time.Now().Add(time.Second); v.RingOccupancy > 0 && time.Now().Before(deadline); {
		time.Sleep(2 * time.Millisecond)
		v = s.Analytics().Vars()
	}
	sent := v.Recorded + v.Dropped + v.SampledOut
	if sent > 0 {
		b.ReportMetric(float64(v.Dropped)/float64(sent), "drop-rate")
	}
	b.ReportMetric(float64(v.AggBytes), "agg-bytes")
}

// BenchmarkServeMatchAnalyticsHandler is BenchmarkServeMatchHandler with
// analytics on: its allocs/op becomes serve_match_analytics_allocs in
// BENCH_serve.json, gated at ≤8 by TestServeMatchAnalyticsAllocs.
func BenchmarkServeMatchAnalyticsHandler(b *testing.B) {
	s := benchServerCfg(b, Config{
		Workers: 4, Queue: 1024, QueueTimeout: time.Second,
		Analytics: &analytics.Config{SampleRate: 1},
	})
	defer s.CloseAnalytics()
	const body = `{"url":"http://adserver042.example/slot/7/ad.js","type":"script","page_domain":"news.example"}`
	h, w, req, rb := matchAllocRig(s, body)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rb.Reset(body)
		h.ServeHTTP(w, req)
	}
	if w.status != 200 {
		b.Fatalf("status %d", w.status)
	}
}

// BenchmarkServeMatchUsageOff is BenchmarkServeMatch with usage counters
// disabled. cmd/benchjson subtracts its p99 from BenchmarkServeMatch's to
// derive usage_overhead_p99_ns — the tail cost of per-rule hit recording,
// which the sharded counter design holds at zero.
func BenchmarkServeMatchUsageOff(b *testing.B) {
	s := benchServerCfg(b, Config{Workers: 4, Queue: 1024, QueueTimeout: time.Second, DisableUsage: true})
	benchDrive(b, s, "/v1/match", benchMatchBodies(1))
}

// BenchmarkServeMatchTiered serves from a usage-compacted tiered list and
// reports the compaction quality metrics alongside latency: hot-coverage
// (fraction of match verdicts answered by hot-tier rules) and
// hot-set-bytes (the hot automaton's size — the working set a typical
// verdict touches). benchjson folds them into compact_hot_coverage and
// compact_working_set_bytes.
func BenchmarkServeMatchTiered(b *testing.B) {
	s := benchServerCfg(b, Config{Workers: 4, Queue: 1024, QueueTimeout: time.Second})
	bodies := benchMatchBodies(1)

	// Warm the counters with one pass of the benchmark traffic, then
	// compact around what fired — the adwars-compact loop in miniature.
	for _, body := range bodies {
		req := httptest.NewRequest("POST", "/v1/match", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
	}
	ls := s.lists.Load()
	tiered := &abp.ListsSnapshot{Label: "bench-tiered", Tiered: true}
	var flatBytes int
	for _, l := range ls.snap.Lists {
		counts := l.Usage().Counts()
		flatBytes += l.TierStats().HotBytes
		tiered.Lists = append(tiered.Lists, l.CompileTiered(func(ord int) bool { return counts[ord] > 0 }))
	}
	if err := s.SetListsSnapshot(tiered); err != nil {
		b.Fatal(err)
	}

	benchDrive(b, s, "/v1/match", bodies)

	// Coverage is measured over the benchmark's own traffic mix.
	var matches, hotWins, hotBytes int
	for _, body := range bodies {
		var q MatchQuery
		json.Unmarshal(body, &q)
		req := abp.Request{URL: q.URL, Type: abp.RequestType(q.Type), PageDomain: q.PageDomain}
		for _, l := range tiered.Lists {
			_, r, ord := abp.DecideHits(l.AppendHits(nil, req))
			if r == nil {
				continue
			}
			matches++
			if l.IsHotRule(ord) {
				hotWins++
			}
		}
	}
	for _, l := range tiered.Lists {
		hotBytes += l.TierStats().HotBytes
	}
	if matches > 0 {
		b.ReportMetric(float64(hotWins)/float64(matches), "hot-coverage")
	}
	b.ReportMetric(float64(hotBytes), "hot-set-bytes")
	b.ReportMetric(float64(flatBytes), "flat-set-bytes")
}

func BenchmarkServeMatchBatch(b *testing.B) {
	s := benchServer(b)
	rng := rand.New(rand.NewSource(2))
	const batch = 64
	var req matchBatchRequest
	for i := 0; i < batch; i++ {
		req.Requests = append(req.Requests, MatchQuery{
			URL:        fmt.Sprintf("http://adserver%03d.example/slot/%d/ad.js", rng.Intn(600), i),
			Type:       "script",
			PageDomain: "news.example",
		})
	}
	body, _ := json.Marshal(req)
	benchDrive(b, s, "/v1/match/batch", [][]byte{body})
}

func BenchmarkServeClassify(b *testing.B) {
	s := benchServer(b)
	benchDrive(b, s, "/v1/classify", [][]byte{[]byte(antiadblock.ReferenceBlockAdBlock)})
}

func BenchmarkServeClassifyBatch(b *testing.B) {
	s := benchServer(b)
	rng := rand.New(rand.NewSource(3))
	var req classifyBatchRequest
	for i := 0; i < 16; i++ {
		if i%4 == 0 {
			req.Scripts = append(req.Scripts, antiadblock.ReferenceBlockAdBlock)
		} else {
			kind := antiadblock.BenignKinds()[i%3]
			req.Scripts = append(req.Scripts, antiadblock.BenignScript(kind, rng, antiadblock.GenOptions{}))
		}
	}
	body, _ := json.Marshal(req)
	benchDrive(b, s, "/v1/classify/batch", [][]byte{body})
}
