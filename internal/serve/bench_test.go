package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"adwars/internal/abp"
	"adwars/internal/antiadblock"
	"adwars/internal/ml"
)

// benchServer builds a server over a realistically sized compiled list
// (1k HTTP rules) and the fixture model, driven through the full handler
// stack (routing, admission, JSON) but without network I/O, so the
// numbers isolate serving cost.
func benchServer(b *testing.B) *Server {
	b.Helper()
	var lines []string
	for i := 0; i < 1000; i++ {
		lines = append(lines, fmt.Sprintf("||adserver%03d.example^$script", i%500))
		if i%10 == 0 {
			lines = append(lines, fmt.Sprintf("@@||adserver%03d.example/allowed$script", i%500))
		}
	}
	rules := make([]*abp.Rule, 0, len(lines))
	for _, line := range lines {
		r, err := abp.Parse(line)
		if err != nil {
			b.Fatalf("parse %q: %v", line, err)
		}
		rules = append(rules, r)
	}
	l := abp.NewList("bench", rules)
	s := New(Config{Workers: 4, Queue: 1024, QueueTimeout: time.Second})
	snap, err := ml.ReadModelSnapshot(bytes.NewReader([]byte(benchModelJSON)))
	if err != nil {
		b.Fatal(err)
	}
	if err := s.SetModelSnapshot(snap); err != nil {
		b.Fatal(err)
	}
	if err := s.SetListsSnapshot(&abp.ListsSnapshot{Label: "bench", Lists: []*abp.List{l}}); err != nil {
		b.Fatal(err)
	}
	return s
}

const benchModelJSON = `{
  "format": "adwars-model",
  "version": 1,
  "classifier": "adaboost",
  "feature_set": "keyword",
  "vocab": ["Identifier:offsetHeight", "Identifier:offsetWidth"],
  "model": {
    "alphas": [2],
    "models": [{"kernel": "linear", "bias": -1.5, "coefs": [1], "vectors": [[0, 1]]}]
  }
}`

// reportLatencies attaches p50/p99 custom metrics, which cmd/benchjson
// folds into BENCH_serve.json.
func reportLatencies(b *testing.B, lat []time.Duration) {
	if len(lat) == 0 {
		return
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	b.ReportMetric(float64(lat[len(lat)/2].Nanoseconds()), "p50-ns")
	b.ReportMetric(float64(lat[len(lat)*99/100].Nanoseconds()), "p99-ns")
}

func benchDrive(b *testing.B, s *Server, path string, bodies [][]byte) {
	h := s.Handler()
	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", path, bytes.NewReader(bodies[i%len(bodies)]))
		rec := httptest.NewRecorder()
		start := time.Now()
		h.ServeHTTP(rec, req)
		lat = append(lat, time.Since(start))
		if rec.Code != 200 {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.Bytes())
		}
	}
	b.StopTimer()
	reportLatencies(b, lat)
}

func BenchmarkServeMatch(b *testing.B) {
	s := benchServer(b)
	rng := rand.New(rand.NewSource(1))
	bodies := make([][]byte, 64)
	for i := range bodies {
		q := MatchQuery{
			URL:        fmt.Sprintf("http://adserver%03d.example/slot/%d/ad.js", rng.Intn(600), i),
			Type:       "script",
			PageDomain: "news.example",
		}
		bodies[i], _ = json.Marshal(q)
	}
	benchDrive(b, s, "/v1/match", bodies)
}

func BenchmarkServeMatchBatch(b *testing.B) {
	s := benchServer(b)
	rng := rand.New(rand.NewSource(2))
	const batch = 64
	var req matchBatchRequest
	for i := 0; i < batch; i++ {
		req.Requests = append(req.Requests, MatchQuery{
			URL:        fmt.Sprintf("http://adserver%03d.example/slot/%d/ad.js", rng.Intn(600), i),
			Type:       "script",
			PageDomain: "news.example",
		})
	}
	body, _ := json.Marshal(req)
	benchDrive(b, s, "/v1/match/batch", [][]byte{body})
}

func BenchmarkServeClassify(b *testing.B) {
	s := benchServer(b)
	benchDrive(b, s, "/v1/classify", [][]byte{[]byte(antiadblock.ReferenceBlockAdBlock)})
}

func BenchmarkServeClassifyBatch(b *testing.B) {
	s := benchServer(b)
	rng := rand.New(rand.NewSource(3))
	var req classifyBatchRequest
	for i := 0; i < 16; i++ {
		if i%4 == 0 {
			req.Scripts = append(req.Scripts, antiadblock.ReferenceBlockAdBlock)
		} else {
			kind := antiadblock.BenignKinds()[i%3]
			req.Scripts = append(req.Scripts, antiadblock.BenignScript(kind, rng, antiadblock.GenOptions{}))
		}
	}
	body, _ := json.Marshal(req)
	benchDrive(b, s, "/v1/classify/batch", [][]byte{body})
}
