package serve

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// doWithDeadline is do with an X-Adwars-Deadline header attached.
func doWithDeadline(t *testing.T, s *Server, path, body, deadline string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	if deadline != "" {
		req.Header.Set(DeadlineHeader, deadline)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// TestDeadlineRefusedImmediately: a request whose propagated deadline
// cannot cover even the queue wait is refused with 429 on the spot —
// it never takes a worker slot and never occupies the queue, so it
// cannot displace work that still has time to finish.
func TestDeadlineRefusedImmediately(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, Queue: 8, QueueTimeout: 100 * time.Millisecond})

	rec := doWithDeadline(t, s, "/v1/match", matchBlockedBody, "50")
	if rec.Code != 429 {
		t.Fatalf("status = %d, want 429: %s", rec.Code, rec.Body.String())
	}
	var er errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	if er.Error.Code != "deadline" {
		t.Fatalf("error code = %q, want deadline", er.Error.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Fatal("deadline refusal carries no Retry-After")
	}
	if got := s.met.deadlineRefused.Load(); got != 1 {
		t.Fatalf("deadline_refused = %d, want 1", got)
	}
	// The refusal left admission untouched: no slot held, nothing queued.
	if q := s.adm.queued.Load(); q != 0 {
		t.Fatalf("queue depth = %d after refusal, want 0", q)
	}
	if n := len(s.adm.slots); n != 0 {
		t.Fatalf("%d worker slots held after refusal, want 0", n)
	}
	// The refusal is booked as a shed so ledgers stay sent == 2xx + 429.
	if shed := s.met.endpoints[epMatch].shed.Load(); shed != 1 {
		t.Fatalf("match shed = %d, want 1", shed)
	}
}

// TestDeadlineBoundaryAdmits: a deadline exactly equal to QueueTimeout
// is admitted — the gate is strictly-less, so the boundary request may
// still race a freeing slot and win.
func TestDeadlineBoundaryAdmits(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, Queue: 8, QueueTimeout: 100 * time.Millisecond})
	for deadline, want := range map[string]int{
		"100":  200, // exact boundary: admitted
		"99":   429, // one ms short: refused
		"101":  200,
		"5000": 200,
	} {
		rec := doWithDeadline(t, s, "/v1/match", matchBlockedBody, deadline)
		if rec.Code != want {
			t.Fatalf("deadline %sms: status %d, want %d: %s",
				deadline, rec.Code, want, rec.Body.String())
		}
	}
}

// TestDeadlineMalformedIgnored: the header is advisory; garbage reads
// as "no deadline" and the request is served normally.
func TestDeadlineMalformedIgnored(t *testing.T) {
	s := newTestServer(t, Config{QueueTimeout: 100 * time.Millisecond})
	for _, bad := range []string{"abc", "-5", "1.5", "", "10ms"} {
		rec := doWithDeadline(t, s, "/v1/match", matchBlockedBody, bad)
		if rec.Code != 200 {
			t.Fatalf("deadline %q: status %d, want 200 (advisory header)", bad, rec.Code)
		}
	}
	if got := s.met.deadlineRefused.Load(); got != 0 {
		t.Fatalf("deadline_refused = %d, want 0", got)
	}
}

// TestDeadlineRefusalOnBatchAndClassify: the gate guards every admitted
// endpoint, not just single matches.
func TestDeadlineRefusalOnBatchAndClassify(t *testing.T) {
	s := newTestServer(t, Config{QueueTimeout: 100 * time.Millisecond})
	probes := map[string]string{
		"/v1/match/batch":    `{"requests":[` + matchBlockedBody + `]}`,
		"/v1/classify":       testAntiScript,
		"/v1/classify/batch": `{"scripts":[` + jsonQuote(testAntiScript) + `]}`,
	}
	for path, body := range probes {
		rec := doWithDeadline(t, s, path, body, "10")
		if rec.Code != 429 {
			t.Fatalf("%s with 10ms deadline: status %d, want 429", path, rec.Code)
		}
	}
	if got := s.met.deadlineRefused.Load(); got != uint64(len(probes)) {
		t.Fatalf("deadline_refused = %d, want %d", got, len(probes))
	}
}

func TestDeadlineMsParse(t *testing.T) {
	cases := []struct {
		in   string
		ms   int64
		have bool
	}{
		{"0", 0, true},
		{"25", 25, true},
		{"1000", 1000, true},
		{"", 0, false},
		{"x", 0, false},
		{"-1", 0, false},
		{"12a", 0, false},
	}
	for _, c := range cases {
		req := httptest.NewRequest("POST", "/v1/match", nil)
		if c.in != "" {
			req.Header.Set(DeadlineHeader, c.in)
		}
		ms, have := deadlineMs(req)
		if have != c.have || (have && ms != c.ms) {
			t.Fatalf("deadlineMs(%q) = %d,%v want %d,%v", c.in, ms, have, c.ms, c.have)
		}
	}
}
