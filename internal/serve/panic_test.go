package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestRecoveryConvertsPanicToStructured500: a panic inside request
// handling becomes a typed 500 envelope plus a panics_recovered tick; the
// server keeps answering afterwards.
func TestRecoveryConvertsPanicToStructured500(t *testing.T) {
	checkGoroutineLeaks(t)
	s := newTestServer(t, Config{})
	boom := s.withRecovery(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("handler exploded")
	}))

	rec := httptest.NewRecorder()
	boom.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/match", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	var envelope errorResponse
	if err := json.NewDecoder(rec.Body).Decode(&envelope); err != nil {
		t.Fatalf("500 body not a structured envelope: %v", err)
	}
	if envelope.Error.Code != "internal_panic" {
		t.Errorf("code = %q, want internal_panic", envelope.Error.Code)
	}
	if !strings.Contains(envelope.Error.Message, "handler exploded") {
		t.Errorf("message %q lost the panic value", envelope.Error.Message)
	}
	if got := s.met.panicsRecovered.Load(); got != 1 {
		t.Errorf("panics_recovered = %d, want 1", got)
	}

	// The real handler tree still works after a recovered panic.
	rec2 := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec2, httptest.NewRequest(http.MethodPost, "/v1/match",
		strings.NewReader(`{"url":"http://ads.example.com/banner.js"}`)))
	if rec2.Code != http.StatusOK {
		t.Fatalf("post-panic request status = %d, want 200", rec2.Code)
	}
}

// TestRecoveryAfterPartialWrite: a panic after response bytes went out
// cannot grow a second status line; the recovery boundary must swallow it
// without re-writing headers (and still count it).
func TestRecoveryAfterPartialWrite(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.withRecovery(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{"partial":`))
		panic("mid-body panic")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/match", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status rewritten to %d after partial write", rec.Code)
	}
	if body := rec.Body.String(); strings.Contains(body, "internal_panic") {
		t.Errorf("error envelope appended to a started response: %q", body)
	}
	if got := s.met.panicsRecovered.Load(); got != 1 {
		t.Errorf("panics_recovered = %d, want 1", got)
	}
}

// TestRecoveryRepanicsAbortHandler: http.ErrAbortHandler is the sanctioned
// silent-abort signal and must pass through uncounted for net/http to
// suppress.
func TestRecoveryRepanicsAbortHandler(t *testing.T) {
	checkGoroutineLeaks(t)
	s := newTestServer(t, Config{})
	h := s.withRecovery(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	defer func() {
		if v := recover(); v == nil {
			t.Fatal("ErrAbortHandler swallowed instead of re-panicked")
		}
		if got := s.met.panicsRecovered.Load(); got != 0 {
			t.Errorf("panics_recovered = %d for ErrAbortHandler, want 0", got)
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/v1/match", nil))
}

// TestPanicIsolationOverRealConnections: panics triggered over real HTTP
// connections (via chaos PanicRate=1) are isolated per-request — every
// client gets a structured 500, the process survives, and the count
// matches.
func TestPanicIsolationOverRealConnections(t *testing.T) {
	checkGoroutineLeaks(t)
	s := newTestServer(t, Config{
		Chaos: &ChaosConfig{Seed: 1, PanicRate: 1},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 8
	for i := 0; i < n; i++ {
		resp, err := ts.Client().Post(ts.URL+"/v1/match", "application/json",
			strings.NewReader(`{"url":"http://ads.example.com/a.js"}`))
		if err != nil {
			t.Fatalf("request %d: transport error %v (process died?)", i, err)
		}
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("request %d: status %d, want 500", i, resp.StatusCode)
		}
		var envelope errorResponse
		if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil || envelope.Error.Code != "internal_panic" {
			t.Fatalf("request %d: body not a panic envelope: %v %+v", i, err, envelope)
		}
		resp.Body.Close()
	}
	if got := s.met.panicsRecovered.Load(); got != n {
		t.Errorf("panics_recovered = %d, want %d", got, n)
	}
	if got := s.met.chaos.panicInjections.Load(); got != n {
		t.Errorf("chaos panic_injections = %d, want %d", got, n)
	}
	// The control plane is exempt from chaos: health stays green.
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz under chaos: %v %v", err, resp)
	}
	resp.Body.Close()
}
