package serve

import (
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// golden compares a response body against testdata/<name>.golden.json,
// rewriting the file under -update.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if string(want) != string(got) {
		t.Errorf("response differs from %s:\n got: %s\nwant: %s", path, got, want)
	}
}

func do(t *testing.T, s *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var req = httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

func TestHandlersGolden(t *testing.T) {
	deflt := newTestServer(t, Config{})
	tiny := newTestServer(t, Config{MaxBody: 64})
	bare := New(Config{}) // no snapshots loaded

	cases := []struct {
		name   string
		server *Server
		method string
		path   string
		body   string
		status int
	}{
		{"match_blocked", deflt, "POST", "/v1/match",
			`{"url":"http://ads.example.com/banner.js","type":"script","page_domain":"news.example"}`, 200},
		{"match_allowed", deflt, "POST", "/v1/match",
			`{"url":"http://ads.example.com/allowed","type":"script","page_domain":"news.example"}`, 200},
		{"match_nomatch", deflt, "POST", "/v1/match",
			`{"url":"http://clean.example/app.js","type":"script","page_domain":"clean.example"}`, 200},
		{"match_third_party", deflt, "POST", "/v1/match",
			`{"url":"http://cdn.example/adframe/x.html","type":"subdocument","page_domain":"news.example"}`, 200},
		{"match_batch", deflt, "POST", "/v1/match/batch",
			`{"requests":[{"url":"http://ads.example.com/banner.js","type":"script","page_domain":"news.example"},{"url":"http://tracker.example/t.js","type":"script","page_domain":"news.example"},{"url":"http://clean.example/app.js"}]}`, 200},
		{"classify_anti", deflt, "POST", "/v1/classify", testAntiScript, 200},
		{"classify_benign", deflt, "POST", "/v1/classify", testBenignScript, 200},
		{"classify_batch", deflt, "POST", "/v1/classify/batch",
			`{"scripts":[` + quoteJSON(testAntiScript) + `,"(((","` + `var x = 1;"]}`, 200},

		// Error paths: structured 4xx envelopes, never 500.
		{"error_bad_json", deflt, "POST", "/v1/match", `{"url": unquoted}`, 400},
		{"error_missing_url", deflt, "POST", "/v1/match", `{"type":"script"}`, 400},
		{"error_bad_type", deflt, "POST", "/v1/match", `{"url":"http://x.example/","type":"teapot"}`, 400},
		{"error_empty_batch", deflt, "POST", "/v1/match/batch", `{"requests":[]}`, 400},
		{"error_batch_item", deflt, "POST", "/v1/match/batch", `{"requests":[{"type":"script"}]}`, 400},
		{"error_empty_script", deflt, "POST", "/v1/classify", ``, 400},
		{"error_malformed_js", deflt, "POST", "/v1/classify", `function ((( {`, 422},
		{"error_oversized", tiny, "POST", "/v1/classify",
			strings.Repeat("var xxxxxxxx = 1; ", 16), 413},
		{"error_method", deflt, "GET", "/v1/match", ``, 405},
		{"error_not_found", deflt, "POST", "/v1/nope", `{}`, 404},
		{"error_no_lists", bare, "POST", "/v1/match", `{"url":"http://x.example/"}`, 503},
		{"error_no_model", bare, "POST", "/v1/classify", testBenignScript, 503},
		{"error_reload_unconfigured", deflt, "POST", "/admin/reload", ``, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := do(t, tc.server, tc.method, tc.path, tc.body)
			if rec.Code != tc.status {
				t.Fatalf("status = %d, want %d; body: %s", rec.Code, tc.status, rec.Body.Bytes())
			}
			if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
				t.Errorf("content type = %q, want JSON", ct)
			}
			golden(t, tc.name, rec.Body.Bytes())
		})
	}
}

// quoteJSON wraps a script as a JSON string literal.
func quoteJSON(s string) string {
	out := strings.ReplaceAll(s, `\`, `\\`)
	out = strings.ReplaceAll(out, `"`, `\"`)
	return `"` + out + `"`
}

func TestBatchTooLarge(t *testing.T) {
	s := newTestServer(t, Config{MaxBatch: 2})
	body := `{"requests":[{"url":"http://a.example/"},{"url":"http://b.example/"},{"url":"http://c.example/"}]}`
	rec := do(t, s, "POST", "/v1/match/batch", body)
	if rec.Code != 400 || !strings.Contains(rec.Body.String(), "batch_too_large") {
		t.Fatalf("status %d body %s", rec.Code, rec.Body.Bytes())
	}
	golden(t, "error_batch_too_large", rec.Body.Bytes())
}

func TestReloadFromDiskAndVersionError(t *testing.T) {
	dir := t.TempDir()
	modelPath, listsPath := writeSnapshotFiles(t, dir)
	s := New(Config{ModelPath: modelPath, ListsPath: listsPath})

	// Before the first reload nothing is installed.
	if rec := do(t, s, "POST", "/v1/match", `{"url":"http://x.example/"}`); rec.Code != 503 {
		t.Fatalf("pre-reload status = %d, want 503", rec.Code)
	}
	rec := do(t, s, "POST", "/admin/reload", "")
	if rec.Code != 200 {
		t.Fatalf("reload status = %d: %s", rec.Code, rec.Body.Bytes())
	}
	golden(t, "reload_ok", rec.Body.Bytes())

	// A future-versioned model snapshot must be rejected with a structured
	// 4xx and must not disturb the installed snapshots.
	bad := strings.Replace(testModelJSON, `"version": 1`, `"version": 999`, 1)
	if err := os.WriteFile(modelPath, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	rec = do(t, s, "POST", "/admin/reload", "")
	if rec.Code != 400 {
		t.Fatalf("bad reload status = %d, want 400: %s", rec.Code, rec.Body.Bytes())
	}
	if !strings.Contains(rec.Body.String(), "snapshot") {
		t.Errorf("bad reload body: %s", rec.Body.Bytes())
	}
	// Old model still serves.
	if rec := do(t, s, "POST", "/v1/classify", testAntiScript); rec.Code != 200 {
		t.Fatalf("post-failed-reload classify = %d", rec.Code)
	}
}

func TestHealthzAndDebugVars(t *testing.T) {
	s := newTestServer(t, Config{})
	if rec := do(t, s, "GET", "/healthz", ""); rec.Code != 200 {
		t.Fatalf("healthz = %d", rec.Code)
	}
	if rec := do(t, New(Config{}), "GET", "/healthz", ""); rec.Code != 503 {
		t.Fatalf("empty healthz = %d, want 503", rec.Code)
	}

	// Traffic shows up in /debug/vars under adwars_serve.
	do(t, s, "POST", "/v1/match", `{"url":"http://ads.example.com/banner.js"}`)
	rec := do(t, s, "GET", "/debug/vars", "")
	if rec.Code != 200 {
		t.Fatalf("debug/vars = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{`"adwars_serve"`, `"endpoints"`, `"match"`, `"p99_ns"`, `"queue_depth"`} {
		if !strings.Contains(body, want) {
			t.Errorf("debug/vars missing %s in %s", want, body)
		}
	}
}
