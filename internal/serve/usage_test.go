package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"adwars/internal/abp"
)

func decodeUsage(t *testing.T, body []byte) UsageDump {
	t.Helper()
	var dump UsageDump
	if err := json.Unmarshal(body, &dump); err != nil {
		t.Fatalf("usage dump does not parse: %v\n%s", err, body)
	}
	return dump
}

// TestUsageEndpoint drives traffic with known winners through /v1/match
// and checks the /admin/usage dump reconciles exactly: hits attributed to
// the winning rule per list, dead-rule fraction over HTTP rules, top-K
// ranking, and machine-readable [ordinal, hits] pairs.
func TestUsageEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})

	// 3 hits on list-a's block, 1 on its exception, 1 on list-b's block.
	for i := 0; i < 3; i++ {
		do(t, s, "POST", "/v1/match",
			`{"url":"http://ads.example.com/banner.js","type":"script","page_domain":"news.example"}`)
	}
	do(t, s, "POST", "/v1/match",
		`{"url":"http://ads.example.com/allowed","type":"script","page_domain":"news.example"}`)
	do(t, s, "POST", "/v1/match",
		`{"url":"http://tracker.example/t.js","type":"script","page_domain":"news.example"}`)
	// A no-match query must not count anywhere.
	do(t, s, "POST", "/v1/match", `{"url":"http://clean.example/app.js"}`)

	rec := do(t, s, "GET", "/admin/usage", "")
	if rec.Code != 200 {
		t.Fatalf("usage status = %d: %s", rec.Code, rec.Body.Bytes())
	}
	dump := decodeUsage(t, rec.Body.Bytes())
	// The allowed query matches both the exception and the underlying
	// block rule of list-a, but the verdict — and therefore the hit — goes
	// to the exception alone.
	if dump.TotalHits != 5 {
		t.Fatalf("total hits = %d, want 5\n%s", dump.TotalHits, rec.Body.Bytes())
	}
	if len(dump.Lists) != 2 {
		t.Fatalf("lists = %d, want 2", len(dump.Lists))
	}
	a, b := dump.Lists[0], dump.Lists[1]
	if a.List != "list-a" || b.List != "list-b" {
		t.Fatalf("list order = %q, %q", a.List, b.List)
	}
	if a.TotalHits != 4 || b.TotalHits != 1 {
		t.Fatalf("per-list hits = %d, %d, want 4, 1", a.TotalHits, b.TotalHits)
	}
	// list-a has 3 HTTP rules (block, exception, third-party frame); the
	// frame rule never fired.
	if a.HTTPRules != 3 || a.DeadRules != 1 {
		t.Fatalf("list-a http=%d dead=%d, want 3, 1", a.HTTPRules, a.DeadRules)
	}
	if want := 1.0 / 3.0; a.DeadFraction != want {
		t.Fatalf("list-a dead fraction = %v, want %v", a.DeadFraction, want)
	}
	if len(a.Top) != 2 || a.Top[0].Hits != 3 || a.Top[0].Rule != "||ads.example.com^" {
		t.Fatalf("list-a top = %+v", a.Top)
	}
	if len(a.Hits) != 2 {
		t.Fatalf("list-a hit pairs = %+v", a.Hits)
	}
	var pairSum uint64
	for _, p := range a.Hits {
		pairSum += p[1]
	}
	if pairSum != a.TotalHits {
		t.Fatalf("list-a pair sum %d != total %d", pairSum, a.TotalHits)
	}

	// ?top bounds the ranking without touching the pairs.
	rec = do(t, s, "GET", "/admin/usage?top=1", "")
	dump = decodeUsage(t, rec.Body.Bytes())
	if len(dump.Lists[0].Top) != 1 || len(dump.Lists[0].Hits) != 2 {
		t.Fatalf("top=1 dump = %+v", dump.Lists[0])
	}
	if rec := do(t, s, "GET", "/admin/usage?top=x", ""); rec.Code != 400 {
		t.Fatalf("bad top param status = %d", rec.Code)
	}
	if rec := do(t, s, "POST", "/admin/usage", ""); rec.Code != 405 {
		t.Fatalf("POST usage status = %d", rec.Code)
	}
}

// TestUsageDisabled pins the opt-out: a DisableUsage replica matches
// normally but refuses the usage dump, and /debug/vars reports the
// aggregate as disabled.
func TestUsageDisabled(t *testing.T) {
	s := newTestServer(t, Config{DisableUsage: true})
	if rec := do(t, s, "POST", "/v1/match",
		`{"url":"http://ads.example.com/banner.js","type":"script"}`); rec.Code != 200 {
		t.Fatalf("match with usage off = %d", rec.Code)
	}
	rec := do(t, s, "GET", "/admin/usage", "")
	if rec.Code != 404 || !strings.Contains(rec.Body.String(), "usage_disabled") {
		t.Fatalf("usage dump with usage off = %d: %s", rec.Code, rec.Body.Bytes())
	}
	rec = do(t, s, "GET", "/debug/vars", "")
	if !strings.Contains(rec.Body.String(), `"adwars_usage": {"enabled":false`) {
		t.Fatalf("debug vars missing disabled usage aggregate: %s", rec.Body.Bytes())
	}
}

// TestUsageDebugVarsAggregate checks the lazily merged /debug/vars
// summary agrees with the full dump.
func TestUsageDebugVarsAggregate(t *testing.T) {
	s := newTestServer(t, Config{})
	do(t, s, "POST", "/v1/match", `{"url":"http://ads.example.com/banner.js","type":"script"}`)
	do(t, s, "POST", "/v1/match", `{"url":"http://tracker.example/t.js","type":"script","page_domain":"news.example"}`)

	rec := do(t, s, "GET", "/debug/vars", "")
	var vars struct {
		Usage usageAggregate `json:"adwars_usage"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &vars); err != nil {
		t.Fatalf("debug vars do not parse: %v", err)
	}
	if !vars.Usage.Enabled || vars.Usage.TotalHits != 2 {
		t.Fatalf("aggregate = %+v, want enabled with 2 hits", vars.Usage)
	}
	// 4 HTTP rules across both lists, 2 fired.
	if vars.Usage.HTTPRules != 4 || vars.Usage.DeadRules != 2 || vars.Usage.DeadFraction != 0.5 {
		t.Fatalf("aggregate = %+v, want 4 http / 2 dead / 0.5", vars.Usage)
	}
}

// TestServeTieredSnapshot proves the serving stack is tier-transparent
// end to end: a v4 tiered snapshot loads from disk, /healthz advertises
// it, and /v1/match answers byte-identically to the untiered server.
func TestServeTieredSnapshot(t *testing.T) {
	snap := testListsSnapshot(t)
	tiered := &abp.ListsSnapshot{Label: snap.Label}
	for _, l := range snap.Lists {
		tiered.Lists = append(tiered.Lists, l.CompileTiered(nil))
	}
	dir := t.TempDir()
	path := dir + "/lists.v4.json"
	if err := abp.SaveListsSnapshotTiered(path, tiered); err != nil {
		t.Fatal(err)
	}
	ts := New(Config{ListsPath: path})
	if err := ts.ReloadSnapshots(); err != nil {
		t.Fatal(err)
	}
	plain := newTestServer(t, Config{})

	rec := do(t, ts, "GET", "/healthz", "")
	var h Health
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if !h.ListsCompiled || !h.ListsTiered {
		t.Fatalf("health = compiled %v tiered %v, want both", h.ListsCompiled, h.ListsTiered)
	}

	for _, body := range []string{
		`{"url":"http://ads.example.com/banner.js","type":"script","page_domain":"news.example"}`,
		`{"url":"http://ads.example.com/allowed","type":"script","page_domain":"news.example"}`,
		`{"url":"http://cdn.example/adframe/x.html","type":"subdocument","page_domain":"news.example"}`,
		`{"url":"http://clean.example/app.js"}`,
	} {
		want := do(t, plain, "POST", "/v1/match", body)
		got := do(t, ts, "POST", "/v1/match", body)
		if got.Code != want.Code {
			t.Fatalf("tiered status %d != %d for %s", got.Code, want.Code, body)
		}
		// The snapshot envelopes legitimately differ (the tiered server has
		// no model and a disk-loaded version); the verdict payload may not.
		var gotRes, wantRes matchResponse
		if err := json.Unmarshal(got.Body.Bytes(), &gotRes); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(want.Body.Bytes(), &wantRes); err != nil {
			t.Fatal(err)
		}
		if fmt.Sprintf("%+v", gotRes.MatchResult) != fmt.Sprintf("%+v", wantRes.MatchResult) {
			t.Fatalf("tiered verdict diverges for %s:\n got: %+v\nwant: %+v",
				body, gotRes.MatchResult, wantRes.MatchResult)
		}
	}
}

// replayBody is a reusable request body: Reset rewinds it without
// allocating a new reader, so allocation measurements see only the
// handler's own work.
type replayBody struct{ strings.Reader }

func (r *replayBody) Close() error { return nil }

// nullResponseWriter absorbs the response with preallocated headers.
type nullResponseWriter struct {
	h      http.Header
	status int
	n      int
}

func (w *nullResponseWriter) Header() http.Header { return w.h }
func (w *nullResponseWriter) WriteHeader(c int)   { w.status = c }
func (w *nullResponseWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

// matchAllocRig assembles the reusable request/writer pair that measures
// the /v1/match handler's own allocations.
func matchAllocRig(s *Server, body string) (http.Handler, *nullResponseWriter, *http.Request, *replayBody) {
	h := s.Handler()
	rb := &replayBody{}
	rb.Reset(body)
	req := httptest.NewRequest("POST", "/v1/match", rb)
	w := &nullResponseWriter{h: make(http.Header, 4)}
	return h, w, req, rb
}

// TestServeMatchAllocs is the hot-path allocation regression gate: one
// fully served /v1/match request — routing, admission, body read, decode,
// match, usage recording, JSON encode — must stay at or under 8
// allocations (down from 37 before the scratch pool / single-probe work).
// The residue is the MaxBytesReader wrapper, the decoded query's three
// strings, and header/encoder slack; a regression in any pooled piece
// shows up here as a count jump, not a vague slowdown.
func TestServeMatchAllocs(t *testing.T) {
	if raceSrvEnabled {
		t.Skip("allocation accounting is unreliable under -race")
	}
	s := newTestServer(t, Config{Workers: 4, Queue: 64, QueueTimeout: time.Second})
	const body = `{"url":"http://ads.example.com/banner.js","type":"script","page_domain":"news.example"}`
	h, w, req, rb := matchAllocRig(s, body)

	allocs := testing.AllocsPerRun(200, func() {
		rb.Reset(body)
		w.status = 0
		h.ServeHTTP(w, req)
	})
	if w.status != 200 {
		t.Fatalf("status = %d", w.status)
	}
	if allocs > 8 {
		t.Fatalf("/v1/match allocates %.1f/op, budget is 8", allocs)
	}
	t.Logf("/v1/match: %.1f allocs/op", allocs)
}

// TestMatchBatchArenaIsolation guards the scratch-arena trick: results in
// one batch share grow-only arenas, so every result must keep its own
// rules even after later queries grow the arena backing arrays.
func TestMatchBatchArenaIsolation(t *testing.T) {
	s := newTestServer(t, Config{})
	var sb strings.Builder
	sb.WriteString(`{"requests":[`)
	for i := 0; i < 40; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		if i%2 == 0 {
			sb.WriteString(`{"url":"http://ads.example.com/banner.js","type":"script","page_domain":"news.example"}`)
		} else {
			fmt.Fprintf(&sb, `{"url":"http://clean%d.example/app.js"}`, i)
		}
	}
	sb.WriteString(`]}`)
	rec := do(t, s, "POST", "/v1/match/batch", sb.String())
	if rec.Code != 200 {
		t.Fatalf("batch status = %d: %s", rec.Code, rec.Body.Bytes())
	}
	var out matchBatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	for i, res := range out.Results {
		if i%2 == 0 {
			if !res.Blocked || res.Lists[0].Rule != "||ads.example.com^" {
				t.Fatalf("result %d corrupted: %+v", i, res)
			}
			if len(res.Lists[0].MatchedRules) != 1 || res.Lists[0].MatchedRules[0] != "||ads.example.com^" {
				t.Fatalf("result %d matched rules corrupted: %+v", i, res.Lists[0].MatchedRules)
			}
		} else if res.Decision != "no-match" {
			t.Fatalf("result %d should be no-match: %+v", i, res)
		}
	}
}
