package serve

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adwars/internal/abp"
	"adwars/internal/ml"
)

// The test model is hand-built rather than trained: a single linear-kernel
// component whose decision arithmetic is exact in IEEE754 (intersection
// counts and halves only), so golden responses carry exact scores on every
// platform. vocab[0]=offsetHeight, vocab[1]=offsetWidth; a script with both
// probes scores 1.0, anything else 0.0.
const testModelJSON = `{
  "format": "adwars-model",
  "version": 1,
  "classifier": "adaboost",
  "feature_set": "keyword",
  "vocab": ["Identifier:offsetHeight", "Identifier:offsetWidth"],
  "model": {
    "alphas": [2],
    "models": [{"kernel": "linear", "bias": -1.5, "coefs": [1], "vectors": [[0, 1]]}]
  },
  "meta": {"top_k": 2}
}`

const testAntiScript = `function detect() { var ad = document.getElementById("ad-banner"); if (ad.offsetHeight === 0 || ad.offsetWidth === 0) { showAdblockNotice(); } }`

const testBenignScript = `function greet(name) { var msg = "hello " + name; return msg.length; }`

const testListA = `! test list A
||ads.example.com^
@@||ads.example.com/allowed$script
/adframe/$third-party
##.ad-banner
`

const testListB = `! test list B
||tracker.example^$script
`

// testListsSnapshot compiles the two fixture lists into a snapshot.
func testListsSnapshot(t *testing.T) *abp.ListsSnapshot {
	t.Helper()
	la, errs := abp.ParseAndBuild("list-a", testListA)
	if len(errs) != 0 {
		t.Fatalf("list A parse errors: %v", errs)
	}
	lb, errs := abp.ParseAndBuild("list-b", testListB)
	if len(errs) != 0 {
		t.Fatalf("list B parse errors: %v", errs)
	}
	return &abp.ListsSnapshot{Label: "test", Lists: []*abp.List{la, lb}}
}

// testModelSnapshot parses the hand-built model JSON.
func testModelSnapshot(t *testing.T) *ml.ModelSnapshot {
	t.Helper()
	snap, err := ml.ReadModelSnapshot(strings.NewReader(testModelJSON))
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// newTestServer builds a server with both fixture snapshots installed.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	if err := s.SetModelSnapshot(testModelSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	if err := s.SetListsSnapshot(testListsSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	return s
}

// writeSnapshotFiles writes both fixture snapshots into dir and returns
// their paths, for reload-from-disk tests.
func writeSnapshotFiles(t *testing.T, dir string) (modelPath, listsPath string) {
	t.Helper()
	modelPath = filepath.Join(dir, "model.json")
	listsPath = filepath.Join(dir, "lists.json")
	if err := os.WriteFile(modelPath, []byte(testModelJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := abp.SaveListsSnapshot(listsPath, testListsSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	return modelPath, listsPath
}

func TestHistogramQuantiles(t *testing.T) {
	h := &histogram{}
	for i := 0; i < 99; i++ {
		h.Observe(1000) // ~1µs
	}
	h.Observe(1_000_000) // one 1ms outlier
	if p50 := h.Quantile(0.50); p50 > 2048 {
		t.Errorf("p50 = %dns, want ≈1µs bucket", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 > 2048 {
		t.Errorf("p99 = %dns landed in the outlier bucket", p99)
	}
	if p100 := h.Quantile(1.0); p100 < 1<<19 {
		t.Errorf("p100 = %dns, want ≥ the outlier's bucket", p100)
	}
	snap := h.snapshot()
	if snap.Count != 100 || snap.MaxNs != 1_000_000 {
		t.Errorf("snapshot = %+v", snap)
	}
}

func TestSnapshotValidation(t *testing.T) {
	s := New(Config{})
	if err := s.SetModelSnapshot(&ml.ModelSnapshot{FeatureSet: "bogus"}); err == nil {
		t.Error("unknown feature set must be rejected")
	}
	snap := testModelSnapshot(t)
	snap.Vocab = nil
	if err := s.SetModelSnapshot(snap); err == nil {
		t.Error("empty vocab must be rejected")
	}
	if err := s.SetListsSnapshot(&abp.ListsSnapshot{}); err == nil {
		t.Error("empty lists snapshot must be rejected")
	}
}
