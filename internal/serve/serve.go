// Package serve is the online layer over the offline pipeline: an HTTP
// service answering filter-list match queries (/v1/match) from compiled
// list snapshots and anti-adblock classification queries (/v1/classify)
// from a trained model snapshot, with batch variants that amortize
// per-request overhead. Snapshots hot-reload atomically (SIGHUP or
// /admin/reload) with zero dropped requests, admission control sheds
// excess load as 429s, and per-endpoint metrics export through
// /debug/vars.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"adwars/internal/abp"
	"adwars/internal/artifact"
	"adwars/internal/features"
	"adwars/internal/ml"
)

// Config parameterizes a Server. The zero value serves with sane defaults
// but no snapshots; most callers set ModelPath/ListsPath.
type Config struct {
	// ModelPath is the model snapshot file (re-read on reload). Empty
	// means the model endpoints answer 503 until a snapshot is set.
	ModelPath string
	// ListsPath is the compiled-lists snapshot file (re-read on reload).
	ListsPath string
	// Workers bounds concurrently processed requests (0 = GOMAXPROCS).
	Workers int
	// Queue bounds requests waiting for a worker slot (0 = 4×Workers).
	Queue int
	// QueueTimeout is the deadline a request may wait for a slot before
	// being shed with 429 (0 = 25ms).
	QueueTimeout time.Duration
	// MaxBody bounds request body size in bytes (0 = 1 MiB). Oversized
	// bodies get 413.
	MaxBody int64
	// MaxBatch bounds items per batch request (0 = 256).
	MaxBatch int
	// DrainTimeout bounds graceful shutdown (0 = 5s).
	DrainTimeout time.Duration
	// MetricsOut, when non-nil, receives a final metrics snapshot on
	// graceful shutdown.
	MetricsOut io.Writer
	// Chaos, when non-nil and enabled, injects deterministic faults into
	// the data plane (see ChaosConfig). Production servers leave it nil.
	Chaos *ChaosConfig
}

func (c *Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c *Config) queue() int {
	if c.Queue > 0 {
		return c.Queue
	}
	return 4 * c.workers()
}

func (c *Config) queueTimeout() time.Duration {
	if c.QueueTimeout > 0 {
		return c.QueueTimeout
	}
	return 25 * time.Millisecond
}

func (c *Config) maxBody() int64 {
	if c.MaxBody > 0 {
		return c.MaxBody
	}
	return 1 << 20
}

func (c *Config) maxBatch() int {
	if c.MaxBatch > 0 {
		return c.MaxBatch
	}
	return 256
}

func (c *Config) drainTimeout() time.Duration {
	if c.DrainTimeout > 0 {
		return c.DrainTimeout
	}
	return 5 * time.Second
}

// modelState is a loaded model snapshot prepared for the hot path: the
// ensemble, the vocabulary projector, and the parsed feature set. It is
// immutable after construction; the server swaps whole states atomically.
type modelState struct {
	snap     *ml.ModelSnapshot
	vocab    *features.Vocab
	set      features.Set
	alphaSum float64
}

// listsState is a loaded lists snapshot. Compiled lists are immutable and
// safe for concurrent matchers, so a state is shared freely across
// requests.
type listsState struct {
	snap  *abp.ListsSnapshot
	rules int
}

// Server is the online serving engine. Create with New, then load
// snapshots (SetModelSnapshot/SetListsSnapshot or ReloadSnapshots) and
// expose Handler on an http.Server — or use Serve, which also handles
// graceful drain.
type Server struct {
	cfg   Config
	adm   *admission
	met   *metrics
	chaos *chaosState // nil unless cfg.Chaos is enabled

	model atomic.Pointer[modelState]
	lists atomic.Pointer[listsState]

	mux http.Handler

	// testDelay artificially lengthens request processing; tests use it
	// to hold requests in flight across reloads and shutdowns.
	testDelay time.Duration
}

// New builds a Server from cfg without loading any snapshots; call
// ReloadSnapshots (or the Set*Snapshot methods) before serving traffic.
func New(cfg Config) *Server {
	s := &Server{
		cfg: cfg,
		adm: newAdmission(cfg.workers(), cfg.queue(), cfg.queueTimeout()),
	}
	s.met = newMetrics(&s.adm.queued)
	s.met.chaosEnabled = cfg.Chaos.Enabled()
	// Middleware order matters: recovery is outermost so it catches panics
	// from chaos injection and handlers alike; chaos sits between recovery
	// and the routes so injected faults exercise real handler paths.
	h := s.routes()
	if s.met.chaosEnabled {
		s.chaos = newChaosState(cfg.Chaos)
		h = s.withChaos(h)
	}
	s.mux = s.withRecovery(h)
	return s
}

// Metrics returns the server's metrics tree as an expvar-compatible Var
// (its String method renders JSON). Commands publish it in the global
// expvar registry; tests read it directly.
func (s *Server) Metrics() fmt.Stringer { return s.met }

// SetModelSnapshot validates and installs a model snapshot. In-flight
// requests keep the state they already loaded; new requests see the new
// snapshot — no request ever observes a half-installed model.
func (s *Server) SetModelSnapshot(snap *ml.ModelSnapshot) error {
	set, err := features.SetFromString(snap.FeatureSet)
	if err != nil {
		return fmt.Errorf("serve: model snapshot: %w", err)
	}
	if len(snap.Vocab) == 0 {
		return fmt.Errorf("serve: model snapshot has an empty vocabulary")
	}
	s.model.Store(&modelState{
		snap:     snap,
		vocab:    features.NewVocab(snap.Vocab),
		set:      set,
		alphaSum: snap.Model.AlphaSum(),
	})
	return nil
}

// SetListsSnapshot installs a compiled-lists snapshot atomically.
func (s *Server) SetListsSnapshot(snap *abp.ListsSnapshot) error {
	if len(snap.Lists) == 0 {
		return fmt.Errorf("serve: lists snapshot has no lists")
	}
	s.lists.Store(&listsState{snap: snap, rules: snap.Rules()})
	return nil
}

// ReloadSnapshots re-reads the configured snapshot paths and installs
// whatever loads cleanly. On any error the previous snapshots stay
// installed untouched — a bad reload never degrades a serving process. A
// snapshot rejected for failing its integrity check (torn write, bit rot,
// missing trailer) additionally ticks reload_rejected, so corruption is
// distinguishable from operational errors like a missing file.
func (s *Server) ReloadSnapshots() error {
	var model *ml.ModelSnapshot
	var lists *abp.ListsSnapshot
	var err error
	if s.cfg.ModelPath != "" {
		if model, err = ml.LoadModelSnapshot(s.cfg.ModelPath); err != nil {
			return s.reloadFailed(err)
		}
	}
	if s.cfg.ListsPath != "" {
		if lists, err = abp.LoadListsSnapshot(s.cfg.ListsPath); err != nil {
			return s.reloadFailed(err)
		}
	}
	if model != nil {
		if err := s.SetModelSnapshot(model); err != nil {
			return s.reloadFailed(err)
		}
	}
	if lists != nil {
		if err := s.SetListsSnapshot(lists); err != nil {
			return s.reloadFailed(err)
		}
	}
	s.met.reloads.Add(1)
	return nil
}

// reloadFailed records a failed reload in the metrics tree and passes the
// error through. reload_rejected ticks when the file was there but its
// content was refused — integrity failure (torn write, bit rot, missing
// trailer) or an unparseable/foreign payload, which on a path that loaded
// fine before is the same event: a damaged artifact. Pure I/O errors
// (missing file, permissions) count only as reload_errors.
func (s *Server) reloadFailed(err error) error {
	s.met.reloadErrors.Add(1)
	if errors.Is(err, artifact.ErrCorrupt) ||
		errors.Is(err, ml.ErrSnapshotFormat) || errors.Is(err, ml.ErrSnapshotVersion) ||
		errors.Is(err, abp.ErrSnapshotFormat) || errors.Is(err, abp.ErrSnapshotVersion) {
		s.met.reloadRejected.Add(1)
	}
	return err
}

// Handler returns the server's HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on ln until ctx is cancelled, then drains
// in-flight requests (bounded by DrainTimeout) and flushes a final metrics
// snapshot to MetricsOut. It returns nil on a clean drain.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{Handler: s.mux}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.drainTimeout())
	defer cancel()
	err := hs.Shutdown(drainCtx)
	s.met.flush(s.cfg.MetricsOut)
	if err != nil {
		return fmt.Errorf("serve: drain incomplete: %w", err)
	}
	return nil
}
