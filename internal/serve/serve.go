// Package serve is the online layer over the offline pipeline: an HTTP
// service answering filter-list match queries (/v1/match) from compiled
// list snapshots and anti-adblock classification queries (/v1/classify)
// from a trained model snapshot, with batch variants that amortize
// per-request overhead. Snapshots hot-reload atomically (SIGHUP or
// /admin/reload) with zero dropped requests, admission control sheds
// excess load as 429s, and per-endpoint metrics export through
// /debug/vars.
package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"adwars/internal/abp"
	"adwars/internal/analytics"
	"adwars/internal/artifact"
	"adwars/internal/degrade"
	"adwars/internal/features"
	"adwars/internal/ml"
)

// Config parameterizes a Server. The zero value serves with sane defaults
// but no snapshots; most callers set ModelPath/ListsPath.
type Config struct {
	// ModelPath is the model snapshot file (re-read on reload). Empty
	// means the model endpoints answer 503 until a snapshot is set.
	ModelPath string
	// ListsPath is the compiled-lists snapshot file (re-read on reload).
	ListsPath string
	// Workers bounds concurrently processed requests (0 = GOMAXPROCS).
	Workers int
	// Queue bounds requests waiting for a worker slot (0 = 4×Workers).
	Queue int
	// QueueTimeout is the deadline a request may wait for a slot before
	// being shed with 429 (0 = 25ms).
	QueueTimeout time.Duration
	// MaxBody bounds request body size in bytes (0 = 1 MiB). Oversized
	// bodies get 413.
	MaxBody int64
	// MaxBatch bounds items per batch request (0 = 256).
	MaxBatch int
	// DrainTimeout bounds graceful shutdown (0 = 5s).
	DrainTimeout time.Duration
	// MetricsOut, when non-nil, receives a final metrics snapshot on
	// graceful shutdown.
	MetricsOut io.Writer
	// Chaos, when non-nil and enabled, injects deterministic faults into
	// the data plane (see ChaosConfig). Production servers leave it nil.
	Chaos *ChaosConfig
	// ReplicaID, when set, identifies this replica in the fleet: every
	// response carries it in an X-Adwars-Replica header and /healthz
	// reports it, so gateways and load generators can attribute traffic.
	ReplicaID string
	// DrainAnnounce is how long Serve keeps accepting (and answering)
	// requests after flipping /readyz to not-ready at drain start, giving
	// health-polling gateways time to stop routing here before connection
	// teardown begins (0 = no announcement window).
	DrainAnnounce time.Duration
	// MaxSnapshot bounds the body of a control-plane snapshot push in
	// bytes (0 = 64 MiB). Snapshots are far larger than data-plane request
	// bodies, so they get their own cap.
	MaxSnapshot int64
	// DisableUsage turns off per-rule usage counters. They are on by
	// default: recording is a single sharded atomic add on the match path
	// (no locks, no allocation), and /admin/usage dumps the per-rule hit
	// distribution that adwars-compact turns into a tiered snapshot.
	DisableUsage bool
	// Analytics, when non-nil, enables the decision analytics pipeline:
	// every /v1/match and /v1/classify verdict is logged (sampled per
	// Analytics.SampleRate) into lock-free rings that a background
	// consumer aggregates and spills; /admin/analytics snapshots it live.
	// Recording never blocks the hot path and never allocates. Nil means
	// no analytics at all — no rings, no consumer goroutine.
	Analytics *analytics.Config
	// Degrade, when non-nil, enables the adaptive overload governor: a
	// background ticker watches live pressure (admission queue depth,
	// windowed match p99, analytics ring drop rate) and steps a global
	// degradation level L0..L4 through a hysteresis-damped ladder. The
	// hot path reads the level with one atomic load; transitions force
	// analytics sampling down (L1+), switch matching to the hot tier
	// only (L2+), shed /v1/classify* (L3+) and /v1/match/batch (L4).
	// Source and OnTransition are wired by the server; any OnTransition
	// the embedder sets is chained after the server's own hook. Nil
	// means no governor: no goroutine, no header, no ladder.
	Degrade *degrade.Config
}

func (c *Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c *Config) queue() int {
	if c.Queue > 0 {
		return c.Queue
	}
	return 4 * c.workers()
}

func (c *Config) queueTimeout() time.Duration {
	if c.QueueTimeout > 0 {
		return c.QueueTimeout
	}
	return 25 * time.Millisecond
}

func (c *Config) maxBody() int64 {
	if c.MaxBody > 0 {
		return c.MaxBody
	}
	return 1 << 20
}

func (c *Config) maxBatch() int {
	if c.MaxBatch > 0 {
		return c.MaxBatch
	}
	return 256
}

func (c *Config) drainTimeout() time.Duration {
	if c.DrainTimeout > 0 {
		return c.DrainTimeout
	}
	return 5 * time.Second
}

func (c *Config) maxSnapshot() int64 {
	if c.MaxSnapshot > 0 {
		return c.MaxSnapshot
	}
	return 64 << 20
}

// modelState is a loaded model snapshot prepared for the hot path: the
// ensemble, the vocabulary projector, and the parsed feature set. It is
// immutable after construction; the server swaps whole states atomically.
type modelState struct {
	snap     *ml.ModelSnapshot
	vocab    *features.Vocab
	set      features.Set
	alphaSum float64
	// version is the artifact payload CRC of the bytes this state loaded
	// from (empty when installed directly via SetModelSnapshot); raw is
	// those bytes, served back to the control plane for rollback.
	version string
	raw     []byte
	// info is the response-embedded snapshot descriptor, precomputed once
	// at install so the hot path shares one immutable value instead of
	// rebuilding it per response.
	info *ModelInfo
}

// listsState is a loaded lists snapshot. Compiled lists are immutable and
// safe for concurrent matchers, so a state is shared freely across
// requests.
type listsState struct {
	snap    *abp.ListsSnapshot
	rules   int
	version string
	raw     []byte
	// info is the precomputed response descriptor (see modelState.info).
	info *ListsInfo
}

// ReloadOutcome records what happened to the most recent snapshot
// (re)load attempt, exposed on /healthz so the control plane can see not
// just counters but the shape of the last failure.
type ReloadOutcome struct {
	OK bool `json:"ok"`
	// Rejected means the snapshot content was refused (integrity or
	// format failure) while the previous snapshots kept serving.
	Rejected bool   `json:"rejected,omitempty"`
	Error    string `json:"error,omitempty"`
	// Source is where the snapshot came from: "disk" (startup, SIGHUP,
	// /admin/reload) or "push" (control-plane POST /admin/snapshot/*).
	Source string `json:"source"`
}

// Server is the online serving engine. Create with New, then load
// snapshots (SetModelSnapshot/SetListsSnapshot or ReloadSnapshots) and
// expose Handler on an http.Server — or use Serve, which also handles
// graceful drain.
type Server struct {
	cfg   Config
	adm   *admission
	met   *metrics
	chaos *chaosState // nil unless cfg.Chaos is enabled

	// anl is the decision analytics collector, nil unless cfg.Analytics
	// is set; anlErr latches a collector construction failure (unwritable
	// spill dir) so the embedder can fail fast instead of serving with
	// analytics silently off.
	anl    *analytics.Collector
	anlErr error

	// gov is the adaptive overload governor, nil unless cfg.Degrade is
	// set. Handlers read its level with one atomic load; Serve starts
	// its ticker and closes it during drain. Embedders that drive the
	// Handler directly call StartDegrade/CloseDegrade themselves (or
	// drive gov.Tick in tests — New never spawns the goroutine).
	gov *degrade.Governor

	model atomic.Pointer[modelState]
	lists atomic.Pointer[listsState]

	// draining flips /readyz to 503 at drain start so health-polling
	// gateways route away before connections start tearing down.
	draining   atomic.Bool
	lastReload atomic.Pointer[ReloadOutcome]

	mux http.Handler

	// testDelay artificially lengthens request processing; tests use it
	// to hold requests in flight across reloads and shutdowns.
	testDelay time.Duration
}

// New builds a Server from cfg without loading any snapshots; call
// ReloadSnapshots (or the Set*Snapshot methods) before serving traffic.
func New(cfg Config) *Server {
	s := &Server{
		cfg: cfg,
		adm: newAdmission(cfg.workers(), cfg.queue(), cfg.queueTimeout()),
	}
	s.met = newMetrics(&s.adm.queued)
	s.met.chaosEnabled = cfg.Chaos.Enabled()
	if cfg.Analytics != nil {
		if anl, err := analytics.NewCollector(*cfg.Analytics); err != nil {
			s.anlErr = err
		} else {
			s.anl = anl
		}
	}
	if cfg.Degrade != nil {
		dcfg := *cfg.Degrade
		if dcfg.Source == nil {
			dcfg.Source = s.degradeSource()
		}
		userHook := dcfg.OnTransition
		dcfg.OnTransition = func(from, to degrade.Level) {
			s.onDegradeTransition(from, to)
			if userHook != nil {
				userHook(from, to)
			}
		}
		s.gov = degrade.New(dcfg)
	}
	// Middleware order matters: recovery is outermost so it catches panics
	// from chaos injection and handlers alike; chaos sits between recovery
	// and the routes so injected faults exercise real handler paths.
	h := s.routes()
	if s.met.chaosEnabled {
		s.chaos = newChaosState(cfg.Chaos)
		h = s.withChaos(h)
	}
	h = s.withRecovery(h)
	if cfg.ReplicaID != "" {
		// Outermost so even recovered-panic envelopes carry the replica
		// attribution the gateway and loadgen key on.
		h = s.withReplicaHeader(h)
	}
	s.mux = h
	return s
}

// withReplicaHeader stamps every response with this replica's identity.
func (s *Server) withReplicaHeader(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Adwars-Replica", s.cfg.ReplicaID)
		next.ServeHTTP(w, r)
	})
}

// degradeSampleRate is the analytics sampling rate the governor forces
// at L1 and above: keep 1 in 10 decisions so the pipeline stays alive
// for reconciliation while its ring pressure drops an order of magnitude.
const degradeSampleRate = 0.1

// degradeSource builds the governor's pressure probe. The serve-side
// counters it reads are all cumulative (histogram buckets, analytics
// producer counters), so the closure keeps previous readings and hands
// the governor windowed deltas — pressure since the last tick, not
// since boot. The probe runs on the governor's ticker goroutine only,
// so the closed-over previous-reading state needs no locking.
func (s *Server) degradeSource() func() degrade.Signals {
	var prevBuckets [44]uint64
	var prevDropped, prevAttempted uint64
	return func() degrade.Signals {
		sig := degrade.Signals{
			QueueDepth: s.adm.queued.Load(),
			QueueLimit: s.adm.maxQueue,
			MatchP99Ns: int64(s.met.endpoints[epMatch].latency.windowQuantile(&prevBuckets, 0.99)),
		}
		if s.anl != nil {
			c := s.anl.CountersNow()
			// Sampled-out events never reach a ring, so they are neither
			// dropped nor attempted from the ring's point of view.
			attempted := c.Recorded + c.Dropped
			dDrop := c.Dropped - prevDropped
			dAtt := attempted - prevAttempted
			prevDropped, prevAttempted = c.Dropped, attempted
			if dAtt > 0 {
				sig.DropRate = float64(dDrop) / float64(dAtt)
			}
		}
		return sig
	}
}

// onDegradeTransition is the server's own ladder hook: crossing into L1
// forces analytics sampling down to degradeSampleRate; stepping back
// below L1 restores the configured rate. L2+ behavior (hot-tier-only
// matching, classify/batch sheds) needs no hook — handlers read the
// level directly.
func (s *Server) onDegradeTransition(from, to degrade.Level) {
	if s.anl == nil {
		return
	}
	switch {
	case to >= degrade.L1 && from < degrade.L1:
		s.anl.SetSampleOverride(degradeSampleRate)
	case to < degrade.L1 && from >= degrade.L1:
		s.anl.ClearSampleOverride()
	}
}

// Degrade returns the overload governor, or nil when degradation is
// disabled.
func (s *Server) Degrade() *degrade.Governor { return s.gov }

// StartDegrade starts the governor's ticker goroutine. Nil-safe and
// idempotent; Serve calls it, embedders that drive the Handler directly
// call it themselves (tests usually drive gov.Tick instead).
func (s *Server) StartDegrade() {
	if s.gov != nil {
		s.gov.Start()
	}
}

// CloseDegrade stops the governor's ticker. Nil-safe and idempotent.
func (s *Server) CloseDegrade() {
	if s.gov != nil {
		s.gov.Close()
	}
}

// Metrics returns the server's metrics tree as an expvar-compatible Var
// (its String method renders JSON). Commands publish it in the global
// expvar registry; tests read it directly.
func (s *Server) Metrics() fmt.Stringer { return s.met }

// Analytics returns the decision analytics collector, or nil when
// analytics are disabled.
func (s *Server) Analytics() *analytics.Collector { return s.anl }

// AnalyticsError reports a collector construction failure latched at New
// (an unwritable spill dir). Embedders that require analytics should
// check it before serving.
func (s *Server) AnalyticsError() error { return s.anlErr }

// CloseAnalytics drains the analytics rings and flushes the final
// aggregator state to spill, stopping the consumer goroutine. Idempotent
// and nil-safe; Serve calls it during drain, embedders that drive the
// Handler directly call it themselves.
func (s *Server) CloseAnalytics() error {
	if s.anl == nil {
		return nil
	}
	return s.anl.Close()
}

// SetModelSnapshot validates and installs a model snapshot. In-flight
// requests keep the state they already loaded; new requests see the new
// snapshot — no request ever observes a half-installed model.
func (s *Server) SetModelSnapshot(snap *ml.ModelSnapshot) error {
	return s.installModel(snap, "", nil)
}

// installModel validates snap and swaps it in, remembering the version
// and raw bytes when it came from an artifact.
func (s *Server) installModel(snap *ml.ModelSnapshot, version string, raw []byte) error {
	set, err := features.SetFromString(snap.FeatureSet)
	if err != nil {
		return fmt.Errorf("serve: model snapshot: %w", err)
	}
	if len(snap.Vocab) == 0 {
		return fmt.Errorf("serve: model snapshot has an empty vocabulary")
	}
	ms := &modelState{
		snap:     snap,
		vocab:    features.NewVocab(snap.Vocab),
		set:      set,
		alphaSum: snap.Model.AlphaSum(),
		version:  version,
		raw:      raw,
	}
	ms.info = &ModelInfo{
		FeatureSet: ms.snap.FeatureSet,
		Vocab:      ms.vocab.Len(),
		Rounds:     ms.snap.Model.Rounds(),
		Version:    ms.version,
	}
	s.model.Store(ms)
	return nil
}

// SetListsSnapshot installs a compiled-lists snapshot atomically.
func (s *Server) SetListsSnapshot(snap *abp.ListsSnapshot) error {
	return s.installLists(snap, "", nil)
}

func (s *Server) installLists(snap *abp.ListsSnapshot, version string, raw []byte) error {
	if len(snap.Lists) == 0 {
		return fmt.Errorf("serve: lists snapshot has no lists")
	}
	if !s.cfg.DisableUsage {
		// Attach the per-rule hit counters before the state becomes visible
		// to matchers (EnableUsage is idempotent but not concurrency-safe
		// against in-flight matches on the same list value).
		for _, l := range snap.Lists {
			l.EnableUsage()
		}
	}
	ls := &listsState{snap: snap, rules: snap.Rules(), version: version, raw: raw}
	ls.info = &ListsInfo{
		Label:   snap.Label,
		Lists:   len(snap.Lists),
		Rules:   ls.rules,
		Version: version,
	}
	s.lists.Store(ls)
	return nil
}

// loadedArtifact is one snapshot file read and parsed but not yet
// installed, so a two-file reload can be all-or-nothing.
type loadedArtifact struct {
	raw     []byte
	version string
}

// readArtifactFile reads path and derives its version. The parse happens
// at the caller per format; version derivation only needs the framing.
func readArtifactFile(path string) (loadedArtifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return loadedArtifact{}, err
	}
	version, err := artifact.Version(data)
	if err != nil {
		return loadedArtifact{}, fmt.Errorf("%s: %w", path, err)
	}
	return loadedArtifact{raw: data, version: version}, nil
}

// ReloadSnapshots re-reads the configured snapshot paths and installs
// whatever loads cleanly. On any error the previous snapshots stay
// installed untouched — a bad reload never degrades a serving process. A
// snapshot rejected for failing its integrity check (torn write, bit rot,
// missing trailer) additionally ticks reload_rejected, so corruption is
// distinguishable from operational errors like a missing file. Each
// installed state remembers the artifact version (payload CRC64) it was
// loaded from; /healthz reports it and the control plane compares it
// during rollouts.
func (s *Server) ReloadSnapshots() error {
	var model *ml.ModelSnapshot
	var lists *abp.ListsSnapshot
	var modelArt, listsArt loadedArtifact
	var err error
	if s.cfg.ModelPath != "" {
		if modelArt, err = readArtifactFile(s.cfg.ModelPath); err != nil {
			return s.reloadFailed("disk", err)
		}
		if model, err = ml.ReadModelSnapshot(bytes.NewReader(modelArt.raw)); err != nil {
			return s.reloadFailed("disk", fmt.Errorf("%s: %w", s.cfg.ModelPath, err))
		}
	}
	if s.cfg.ListsPath != "" {
		if listsArt, err = readArtifactFile(s.cfg.ListsPath); err != nil {
			return s.reloadFailed("disk", err)
		}
		if lists, err = abp.ReadListsSnapshot(bytes.NewReader(listsArt.raw)); err != nil {
			return s.reloadFailed("disk", fmt.Errorf("%s: %w", s.cfg.ListsPath, err))
		}
	}
	if model != nil {
		if err := s.installModel(model, modelArt.version, modelArt.raw); err != nil {
			return s.reloadFailed("disk", err)
		}
	}
	if lists != nil {
		if err := s.installLists(lists, listsArt.version, listsArt.raw); err != nil {
			return s.reloadFailed("disk", err)
		}
	}
	s.met.reloads.Add(1)
	s.lastReload.Store(&ReloadOutcome{OK: true, Source: "disk"})
	return nil
}

// reloadFailed records a failed reload in the metrics tree and passes the
// error through. reload_rejected ticks when the file was there but its
// content was refused — integrity failure (torn write, bit rot, missing
// trailer) or an unparseable/foreign payload, which on a path that loaded
// fine before is the same event: a damaged artifact. Pure I/O errors
// (missing file, permissions) count only as reload_errors.
func (s *Server) reloadFailed(source string, err error) error {
	s.met.reloadErrors.Add(1)
	rejected := errors.Is(err, artifact.ErrCorrupt) ||
		errors.Is(err, ml.ErrSnapshotFormat) || errors.Is(err, ml.ErrSnapshotVersion) ||
		errors.Is(err, abp.ErrSnapshotFormat) || errors.Is(err, abp.ErrSnapshotVersion)
	if rejected {
		s.met.reloadRejected.Add(1)
	}
	s.lastReload.Store(&ReloadOutcome{Rejected: rejected, Error: err.Error(), Source: source})
	return err
}

// LastReload returns the outcome of the most recent snapshot (re)load
// attempt, or nil if none has happened yet.
func (s *Server) LastReload() *ReloadOutcome { return s.lastReload.Load() }

// StartDrain flips readiness off: /readyz answers 503 from now on while
// the data plane keeps serving, so gateways that poll readiness stop
// routing new traffic here before connections tear down. Serve calls it
// at drain start; it is exported for fleet tests and embedders.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether drain has been announced.
func (s *Server) Draining() bool { return s.draining.Load() }

// Handler returns the server's HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on ln until ctx is cancelled, then announces
// drain (readiness flips to 503 and stays that way for DrainAnnounce so
// polling gateways route away first), drains in-flight requests (bounded
// by DrainTimeout), and flushes a final metrics snapshot to MetricsOut.
// It returns nil on a clean drain.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	s.StartDegrade()
	hs := &http.Server{Handler: s.mux}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		s.CloseDegrade()
		return err
	case <-ctx.Done():
	}
	s.StartDrain()
	if d := s.cfg.DrainAnnounce; d > 0 {
		time.Sleep(d)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.drainTimeout())
	defer cancel()
	err := hs.Shutdown(drainCtx)
	// The governor stops first: with the listener closed there is no
	// pressure left to govern, and closing it before the analytics
	// collector keeps the ticker from probing a closed pipeline.
	s.CloseDegrade()
	// With no more requests in flight, the analytics rings hold the last
	// recorded decisions; flush them and the aggregator to spill before
	// the process report, so a drained run loses no telemetry.
	if aerr := s.CloseAnalytics(); aerr != nil && err == nil {
		err = aerr
	}
	s.met.flush(s.cfg.MetricsOut)
	if err != nil {
		return fmt.Errorf("serve: drain incomplete: %w", err)
	}
	return nil
}
