package serve

import (
	"bufio"
	"errors"
	"net"
	"net/http"
	"sync"
)

// withRecovery is the outermost request boundary: a panic anywhere in
// per-request work (handler body, parser, matcher — or an injected chaos
// panic) is converted into a structured 500 envelope and a
// panics_recovered tick instead of killing the process. net/http would
// already confine the panic to the one connection, but without this
// boundary the client sees a bare connection reset and the operator sees
// nothing; with it the failure is a counted, typed response.
//
// http.ErrAbortHandler is re-panicked untouched: it is the sanctioned
// "abandon this connection silently" signal (used after a hijack) and
// net/http suppresses it without logging.
// twPool recycles tracking writers: the wrapper lives only for the span
// of one request, so pooling it keeps the recovery boundary off the
// per-request allocation budget. A writer that re-panics (ErrAbortHandler)
// is deliberately not returned — its connection state is unknown.
var twPool = sync.Pool{New: func() any { return &trackingWriter{} }}

func (s *Server) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tw := twPool.Get().(*trackingWriter)
		tw.ResponseWriter = w
		tw.wrote = false
		defer func() {
			v := recover()
			if v != nil {
				if err, ok := v.(error); ok && errors.Is(err, http.ErrAbortHandler) {
					panic(v)
				}
				s.met.panicsRecovered.Add(1)
				if !tw.wrote {
					writeError(tw, http.StatusInternalServerError, "internal_panic",
						"panic recovered while handling %s: %v", r.URL.Path, v)
				}
				// If the response already started, the envelope cannot be
				// sent; the partial response is all the client gets, but the
				// process and every other in-flight request survive.
			}
			tw.ResponseWriter = nil
			twPool.Put(tw)
		}()
		next.ServeHTTP(tw, r)
	})
}

// trackingWriter records whether the response has started, so the
// recovery boundary knows if it can still write an error envelope. It
// forwards Hijack and Flush to the underlying writer (the chaos
// middleware hijacks to inject connection closes).
type trackingWriter struct {
	http.ResponseWriter
	wrote bool
}

func (t *trackingWriter) WriteHeader(code int) {
	t.wrote = true
	t.ResponseWriter.WriteHeader(code)
}

func (t *trackingWriter) Write(b []byte) (int, error) {
	t.wrote = true
	return t.ResponseWriter.Write(b)
}

func (t *trackingWriter) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	hj, ok := t.ResponseWriter.(http.Hijacker)
	if !ok {
		return nil, nil, errors.New("serve: underlying ResponseWriter does not support hijacking")
	}
	t.wrote = true
	return hj.Hijack()
}

func (t *trackingWriter) Flush() {
	if f, ok := t.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
