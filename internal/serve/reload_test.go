package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestReloadUnderFire is the hot-reload guarantee, run under -race by
// `make race`: while many goroutines hammer /v1/match and /v1/classify
// over real HTTP, the snapshots are swapped continuously (both via
// Set*Snapshot and via /admin/reload against rewritten files). Every
// single request must complete with 200 or 429 — a reload never drops,
// 500s, or torn-reads a request.
func TestReloadUnderFire(t *testing.T) {
	dir := t.TempDir()
	modelPath, listsPath := writeSnapshotFiles(t, dir)
	s := New(Config{
		ModelPath: modelPath,
		ListsPath: listsPath,
		Workers:   4,
		Queue:     256,
		// Generous deadline: this test asserts reload correctness, not
		// shedding, so nothing should miss it.
		QueueTimeout: 2 * time.Second,
	})
	if err := s.ReloadSnapshots(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const clients = 8
	duration := 400 * time.Millisecond
	if testing.Short() {
		duration = 100 * time.Millisecond
	}
	deadline := time.Now().Add(duration)

	var sent, ok200, shed429, other atomic.Int64
	var firstBad atomic.Value
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := ts.Client()
			for i := 0; time.Now().Before(deadline); i++ {
				var resp *http.Response
				var err error
				if (c+i)%2 == 0 {
					resp, err = client.Post(ts.URL+"/v1/match", "application/json",
						strings.NewReader(`{"url":"http://ads.example.com/banner.js","type":"script","page_domain":"news.example"}`))
				} else {
					resp, err = client.Post(ts.URL+"/v1/classify", "application/javascript",
						strings.NewReader(testAntiScript))
				}
				if err != nil {
					firstBad.CompareAndSwap(nil, fmt.Sprintf("transport error: %v", err))
					return
				}
				sent.Add(1)
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ok200.Add(1)
				case http.StatusTooManyRequests:
					shed429.Add(1)
				default:
					other.Add(1)
					firstBad.CompareAndSwap(nil, fmt.Sprintf("status %d: %s", resp.StatusCode, body))
				}
			}
		}(c)
	}

	// Reload continuously while the fire hose runs: alternate direct
	// snapshot swaps with full file rewrites + /admin/reload round trips.
	reloads := 0
	for time.Now().Before(deadline) {
		if reloads%2 == 0 {
			if err := s.SetModelSnapshot(testModelSnapshot(t)); err != nil {
				t.Error(err)
			}
			if err := s.SetListsSnapshot(testListsSnapshot(t)); err != nil {
				t.Error(err)
			}
		} else {
			if err := os.WriteFile(modelPath, []byte(testModelJSON), 0o644); err != nil {
				t.Fatal(err)
			}
			resp, err := ts.Client().Post(ts.URL+"/admin/reload", "application/json", nil)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("reload status %d", resp.StatusCode)
			}
		}
		reloads++
		time.Sleep(time.Millisecond)
	}
	wg.Wait()

	if msg := firstBad.Load(); msg != nil {
		t.Fatalf("request failed during reload: %v", msg)
	}
	if sent.Load() == 0 || ok200.Load() == 0 {
		t.Fatalf("no traffic flowed: sent=%d ok=%d", sent.Load(), ok200.Load())
	}
	if got := ok200.Load() + shed429.Load() + other.Load(); got != sent.Load() {
		t.Fatalf("dropped requests: sent=%d accounted=%d", sent.Load(), got)
	}
	if other.Load() != 0 {
		t.Fatalf("%d non-200/429 responses", other.Load())
	}
	if reloads < 10 {
		t.Errorf("only %d reloads happened; test too weak", reloads)
	}
	t.Logf("reload-under-fire: %d requests (%d ok, %d shed) across %d reloads",
		sent.Load(), ok200.Load(), shed429.Load(), reloads)
}

// TestReloadRejectsCorruptSnapshot: a hot reload against a corrupted file
// must fail with a structured error, tick reload_rejected, and keep the
// last-good snapshots serving byte-identical answers.
func TestReloadRejectsCorruptSnapshot(t *testing.T) {
	checkGoroutineLeaks(t)
	dir := t.TempDir()
	modelPath, listsPath := writeSnapshotFiles(t, dir)
	s := New(Config{ModelPath: modelPath, ListsPath: listsPath})
	if err := s.ReloadSnapshots(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	query := `{"url":"http://ads.example.com/banner.js","type":"script","page_domain":"news.example"}`
	fetch := func() string {
		resp, err := ts.Client().Post(ts.URL+"/v1/match", "application/json", strings.NewReader(query))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("match status %d", resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	before := fetch()

	corruptions := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"bit-flipped", func(b []byte) []byte {
			b = append([]byte(nil), b...)
			b[len(b)/3] ^= 0x04
			return b
		}},
	}
	good, err := os.ReadFile(listsPath)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range corruptions {
		if err := os.WriteFile(listsPath, c.mutate(good), 0o644); err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Post(ts.URL+"/admin/reload", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: reload status %d (%s), want 400", c.name, resp.StatusCode, body)
		}
		if !strings.Contains(string(body), `"code":"snapshot"`) {
			t.Errorf("%s: reload error not structured: %s", c.name, body)
		}
		if got := s.met.reloadRejected.Load(); got != uint64(i+1) {
			t.Errorf("%s: reload_rejected = %d, want %d", c.name, got, i+1)
		}
		if after := fetch(); after != before {
			t.Fatalf("%s: served answer changed after rejected reload:\n%s\nvs\n%s", c.name, after, before)
		}
	}

	// Restoring the good file makes the next reload succeed.
	if err := os.WriteFile(listsPath, good, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.ReloadSnapshots(); err != nil {
		t.Fatalf("reload after restore: %v", err)
	}
	if after := fetch(); after != before {
		t.Fatalf("answer changed after restore:\n%s\nvs\n%s", after, before)
	}
}
