//go:build race

package serve

// raceSrvEnabled reports whether the race detector is compiled in;
// allocation gates are skipped under it because instrumentation allocates.
const raceSrvEnabled = true
