package serve

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"adwars/internal/abp"
	"adwars/internal/artifact"
)

// listsArtifact renders the fixture lists snapshot (with the given label)
// as sealed wire bytes — what the control plane pushes.
func listsArtifact(t *testing.T, label string) []byte {
	t.Helper()
	snap := testListsSnapshot(t)
	snap.Label = label
	var buf bytes.Buffer
	if err := abp.WriteListsSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func decodeHealth(t *testing.T, body []byte) Health {
	t.Helper()
	var h Health
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("health body %q: %v", body, err)
	}
	return h
}

func TestReadyzDrainFlip(t *testing.T) {
	s := newTestServer(t, Config{ReplicaID: "r1"})
	rec := do(t, s, "GET", "/readyz", "")
	if rec.Code != 200 {
		t.Fatalf("readyz = %d, want 200", rec.Code)
	}
	if got := rec.Header().Get("X-Adwars-Replica"); got != "r1" {
		t.Errorf("X-Adwars-Replica = %q, want r1", got)
	}
	h := decodeHealth(t, rec.Body.Bytes())
	if !h.Ready || h.Replica != "r1" {
		t.Errorf("health = %+v, want ready replica r1", h)
	}

	s.StartDrain()
	rec = do(t, s, "GET", "/readyz", "")
	if rec.Code != 503 {
		t.Fatalf("readyz after StartDrain = %d, want 503", rec.Code)
	}
	h = decodeHealth(t, rec.Body.Bytes())
	if h.Ready || !h.Draining || h.Status != "draining" {
		t.Errorf("draining health = %+v", h)
	}
	// Liveness and the data plane stay up through the drain window.
	if rec := do(t, s, "GET", "/healthz", ""); rec.Code != 200 {
		t.Errorf("healthz while draining = %d, want 200", rec.Code)
	}
	if rec := do(t, s, "POST", "/v1/match", `{"url":"http://x.example/a.js"}`); rec.Code != 200 {
		t.Errorf("match while draining = %d, want 200", rec.Code)
	}
}

func TestReadyzNoSnapshots(t *testing.T) {
	if rec := do(t, New(Config{}), "GET", "/readyz", ""); rec.Code != 503 {
		t.Fatalf("empty readyz = %d, want 503", rec.Code)
	}
}

func TestSnapshotPushInstallsPersistsAndVersions(t *testing.T) {
	dir := t.TempDir()
	listsPath := filepath.Join(dir, "lists.json")
	s := newTestServer(t, Config{ListsPath: listsPath})

	art := listsArtifact(t, "pushed-v2")
	wantVersion, err := artifact.Version(art)
	if err != nil {
		t.Fatal(err)
	}
	rec := do(t, s, "POST", "/admin/snapshot/lists", string(art))
	if rec.Code != 200 {
		t.Fatalf("push = %d: %s", rec.Code, rec.Body.Bytes())
	}
	var pr pushResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &pr); err != nil {
		t.Fatal(err)
	}
	if !pr.Installed || pr.Kind != "lists" || pr.Version != wantVersion {
		t.Fatalf("push response = %+v, want version %s", pr, wantVersion)
	}

	// Installed: healthz reports the pushed version and the label serves.
	h := decodeHealth(t, do(t, s, "GET", "/healthz", "").Body.Bytes())
	if h.ListsVersion != wantVersion {
		t.Errorf("lists_version = %q, want %q", h.ListsVersion, wantVersion)
	}
	if h.LastReload == nil || !h.LastReload.OK || h.LastReload.Source != "push" {
		t.Errorf("last_reload = %+v, want ok push", h.LastReload)
	}

	// Persisted atomically: disk bytes are exactly the pushed artifact.
	onDisk, err := os.ReadFile(listsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, art) {
		t.Error("persisted snapshot differs from pushed bytes")
	}

	// Pull returns the same bytes with the version header — the control
	// plane's last-good capture path.
	rec = do(t, s, "GET", "/admin/snapshot/lists", "")
	if rec.Code != 200 || !bytes.Equal(rec.Body.Bytes(), art) {
		t.Fatalf("pull = %d, bytes match = %v", rec.Code, bytes.Equal(rec.Body.Bytes(), art))
	}
	if got := rec.Header().Get("X-Adwars-Snapshot-Version"); got != wantVersion {
		t.Errorf("pull version header = %q, want %q", got, wantVersion)
	}
}

func TestSnapshotPushRejectsDamage(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{ListsPath: filepath.Join(dir, "lists.json")})
	good := listsArtifact(t, "v1")
	if rec := do(t, s, "POST", "/admin/snapshot/lists", string(good)); rec.Code != 200 {
		t.Fatalf("seed push = %d", rec.Code)
	}
	before := decodeHealth(t, do(t, s, "GET", "/healthz", "").Body.Bytes()).ListsVersion

	cases := []struct {
		name string
		body []byte
	}{
		{"bit-flip", func() []byte { b := bytes.Clone(good); b[len(b)/3] ^= 0x20; return b }()},
		{"truncated", good[:len(good)/2]},
		{"unsealed", []byte(`{"format":"adwars-lists","version":1,"lists":[{"name":"x","rules":["||a.example^"]}]}`)},
		{"sealed-garbage", artifact.Seal([]byte(`{"this is": not json`))},
	}
	rejected := s.met.reloadRejected.Load()
	for _, tc := range cases {
		rec := do(t, s, "POST", "/admin/snapshot/lists", string(tc.body))
		if rec.Code != 422 {
			t.Errorf("%s: push = %d, want 422 (%s)", tc.name, rec.Code, rec.Body.Bytes())
		}
	}
	if got := s.met.reloadRejected.Load(); got != rejected+uint64(len(cases)) {
		t.Errorf("reload_rejected = %d, want %d", got, rejected+uint64(len(cases)))
	}
	// Last-good kept serving: version unchanged, pull returns good bytes.
	after := decodeHealth(t, do(t, s, "GET", "/healthz", "").Body.Bytes())
	if after.ListsVersion != before {
		t.Errorf("lists_version changed across rejected pushes: %q → %q", before, after.ListsVersion)
	}
	if after.LastReload == nil || after.LastReload.OK || !after.LastReload.Rejected {
		t.Errorf("last_reload = %+v, want rejected", after.LastReload)
	}
	if rec := do(t, s, "GET", "/admin/snapshot/lists", ""); !bytes.Equal(rec.Body.Bytes(), good) {
		t.Error("pull after rejected pushes is not the last good artifact")
	}
}

func TestSnapshotPushUnconfiguredAndUnknownKind(t *testing.T) {
	s := newTestServer(t, Config{}) // no paths configured
	if rec := do(t, s, "POST", "/admin/snapshot/lists", string(listsArtifact(t, "x"))); rec.Code != 400 {
		t.Errorf("push without path = %d, want 400", rec.Code)
	}
	if rec := do(t, s, "POST", "/admin/snapshot/nope", "x"); rec.Code != 404 {
		t.Errorf("unknown kind = %d, want 404", rec.Code)
	}
	if rec := do(t, s, "GET", "/admin/snapshot/model", ""); rec.Code != 404 {
		t.Errorf("pull with no artifact-backed model = %d, want 404", rec.Code)
	}
}
