package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"testing"
	"time"

	"adwars/internal/analytics"
)

// testAnalyticsCfg is the fast-drain configuration the analytics tests
// share: sampling 1.0 (reconciliation-exact) and a 1ms consumer cadence so
// polls settle quickly.
func testAnalyticsCfg() *analytics.Config {
	return &analytics.Config{SampleRate: 1, DrainInterval: time.Millisecond}
}

// newAnalyticsServer builds a fixture server with analytics enabled and
// registers the collector flush as cleanup.
func newAnalyticsServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Analytics == nil {
		cfg.Analytics = testAnalyticsCfg()
	}
	s := newTestServer(t, cfg)
	if err := s.AnalyticsError(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.CloseAnalytics() })
	return s
}

// analyticsSnap fetches and decodes /admin/analytics.
func analyticsSnap(t *testing.T, s *Server) analytics.Snapshot {
	t.Helper()
	rec := do(t, s, "GET", "/admin/analytics", "")
	if rec.Code != 200 {
		t.Fatalf("/admin/analytics status = %d: %s", rec.Code, rec.Body.Bytes())
	}
	var snap analytics.Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("analytics snapshot does not parse: %v\n%s", err, rec.Body.Bytes())
	}
	return snap
}

// waitForTotals polls the endpoint until the cumulative totals equal want
// exactly (sampling=1.0 makes this an equality, not an approximation).
func waitForTotals(t *testing.T, s *Server, want map[string]uint64) analytics.Snapshot {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		snap := analyticsSnap(t, s)
		match := len(snap.Totals) == len(want)
		for k, n := range want {
			if snap.Totals[k] != n {
				match = false
			}
		}
		if match {
			return snap
		}
		if time.Now().After(deadline) {
			t.Fatalf("totals never reconciled:\n got %v\nwant %v", snap.Totals, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServeAnalyticsReconciliation drives known traffic through every
// verdict path — single match, batch match, single classify, batch
// classify — and checks the analytics totals reconcile exactly against the
// client-side ledger at sampling 1.0, with zero drops and zero sampled-out.
func TestServeAnalyticsReconciliation(t *testing.T) {
	s := newAnalyticsServer(t, Config{})

	// 2 blocked + 1 allowed + 1 no-match via /v1/match.
	for i := 0; i < 2; i++ {
		do(t, s, "POST", "/v1/match",
			`{"url":"http://ads.example.com/banner.js","type":"script","page_domain":"news.example"}`)
	}
	do(t, s, "POST", "/v1/match",
		`{"url":"http://ads.example.com/allowed","type":"script","page_domain":"news.example"}`)
	do(t, s, "POST", "/v1/match", `{"url":"http://clean.example/app.js"}`)
	// 1 blocked + 1 no-match via the batch endpoint.
	do(t, s, "POST", "/v1/match/batch", `{"requests":[
		{"url":"http://tracker.example/t.js","type":"script","page_domain":"news.example"},
		{"url":"http://clean2.example/app.js"}]}`)
	// 1 anti-adblock + 1 benign via /v1/classify, 1 of each via the batch.
	do(t, s, "POST", "/v1/classify", testAntiScript)
	do(t, s, "POST", "/v1/classify", testBenignScript)
	body, _ := json.Marshal(classifyBatchRequest{Scripts: []string{testAntiScript, testBenignScript}})
	do(t, s, "POST", "/v1/classify/batch", string(body))

	snap := waitForTotals(t, s, map[string]uint64{
		"match/blocked":         3,
		"match/allowed":         1,
		"match/no-match":        2,
		"classify/anti-adblock": 2,
		"classify/benign":       2,
	})
	if snap.Counters.Dropped != 0 || snap.Counters.SampledOut != 0 {
		t.Fatalf("dropped %d / sampled-out %d at sampling 1.0 under light load",
			snap.Counters.Dropped, snap.Counters.SampledOut)
	}
	if snap.Counters.Recorded != 10 {
		t.Fatalf("recorded = %d, want 10", snap.Counters.Recorded)
	}

	// The bucket rows attribute the winners: the top firing rule and the
	// block-rate domains must be present with rule text and ordinals.
	rep := analytics.BuildReport(analytics.RowsFromSnapshot(&snap))
	if len(rep.Rules) == 0 || rep.Rules[0].Rule != "||ads.example.com^" || rep.Rules[0].Hits != 2 {
		t.Fatalf("top rules = %+v", rep.Rules)
	}
	foundNews := false
	for _, d := range rep.Domains {
		if d.Domain == "news.example" {
			foundNews = true
			if d.Total != 4 || d.Blocked != 3 {
				t.Fatalf("news.example profile = %+v", d)
			}
		}
	}
	if !foundNews {
		t.Fatalf("page domain missing from domain profile: %+v", rep.Domains)
	}
}

// TestServeAnalyticsDomainFallback: a query without page_domain attributes
// to the request URL's host.
func TestServeAnalyticsDomainFallback(t *testing.T) {
	s := newAnalyticsServer(t, Config{})
	do(t, s, "POST", "/v1/match", `{"url":"http://ads.example.com/banner.js","type":"script"}`)
	snap := waitForTotals(t, s, map[string]uint64{"match/blocked": 1})
	rep := analytics.BuildReport(analytics.RowsFromSnapshot(&snap))
	if len(rep.Domains) != 1 || rep.Domains[0].Domain != "ads.example.com" {
		t.Fatalf("domains = %+v, want URL-host fallback", rep.Domains)
	}
}

// TestServeMatchAnalyticsAllocs is the hot-path gate with analytics ON:
// recording a decision must not add a single allocation to the ≤8 budget
// TestServeMatchAllocs pins with analytics off.
func TestServeMatchAnalyticsAllocs(t *testing.T) {
	if raceSrvEnabled {
		t.Skip("allocation accounting is unreliable under -race")
	}
	s := newAnalyticsServer(t, Config{
		Workers: 4, Queue: 64, QueueTimeout: time.Second,
		Analytics: &analytics.Config{SampleRate: 1, RingSize: 1 << 16, DrainInterval: time.Hour},
	})
	const body = `{"url":"http://ads.example.com/banner.js","type":"script","page_domain":"news.example"}`
	h, w, req, rb := matchAllocRig(s, body)

	allocs := testing.AllocsPerRun(200, func() {
		rb.Reset(body)
		w.status = 0
		h.ServeHTTP(w, req)
	})
	if w.status != 200 {
		t.Fatalf("status = %d", w.status)
	}
	if allocs > 8 {
		t.Fatalf("/v1/match with analytics allocates %.1f/op, budget is 8", allocs)
	}
	t.Logf("/v1/match with analytics: %.1f allocs/op", allocs)
}

// TestServeAnalyticsShutdownFlush proves the graceful-drain contract: a
// SIGTERM-equivalent context cancel flushes the rings and the final
// aggregator state to spill before Serve returns, and the consumer
// goroutine exits (no leak).
func TestServeAnalyticsShutdownFlush(t *testing.T) {
	checkGoroutineLeaks(t)
	dir := t.TempDir()
	s := newTestServer(t, Config{
		Workers:      2,
		DrainTimeout: 5 * time.Second,
		Analytics: &analytics.Config{
			SampleRate: 1, SpillDir: dir,
			// A long cadence and bucket keep everything in the rings and
			// aggregator until shutdown — the flush has to do all the work.
			DrainInterval: time.Hour, BucketDur: time.Hour,
		},
	})
	if err := s.AnalyticsError(); err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ctx, ln) }()

	url := fmt.Sprintf("http://%s/v1/match", ln.Addr())
	const sent = 7
	for i := 0; i < sent; i++ {
		resp, err := http.Post(url, "application/json",
			strings.NewReader(`{"url":"http://ads.example.com/banner.js","type":"script","page_domain":"news.example"}`))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("match status = %d", resp.StatusCode)
		}
	}
	cancel()
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve returned %v, want clean drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after drain")
	}

	rows, err := analytics.ReadSpillDir(dir)
	if err != nil {
		t.Fatalf("no spill after drain: %v", err)
	}
	var total uint64
	for _, row := range rows {
		total += row.Count
		if row.Kind != "match" || row.Verdict != "blocked" {
			t.Fatalf("unexpected spill row: %+v", row)
		}
	}
	if total != sent {
		t.Fatalf("spill carries %d decisions, want %d", total, sent)
	}
}

// TestServeAnalyticsDisabled pins the default-off behavior: no collector,
// a clean 404 on the endpoint, and an explicit disabled marker in
// /debug/vars.
func TestServeAnalyticsDisabled(t *testing.T) {
	s := newTestServer(t, Config{})
	if s.Analytics() != nil {
		t.Fatal("collector exists without Config.Analytics")
	}
	rec := do(t, s, "GET", "/admin/analytics", "")
	if rec.Code != 404 || !strings.Contains(rec.Body.String(), "analytics_disabled") {
		t.Fatalf("analytics endpoint with analytics off = %d: %s", rec.Code, rec.Body.Bytes())
	}
	rec = do(t, s, "GET", "/debug/vars", "")
	if !strings.Contains(rec.Body.String(), `"adwars_analytics": {"enabled":false}`) {
		t.Fatalf("debug vars missing disabled analytics marker: %s", rec.Body.Bytes())
	}
	if err := s.CloseAnalytics(); err != nil {
		t.Fatalf("nil-safe CloseAnalytics errored: %v", err)
	}
}

// TestServeAnalyticsDebugVars checks the lazily computed /debug/vars
// export: counters, occupancy, and sample rate appear under
// adwars_analytics and agree with the endpoint.
func TestServeAnalyticsDebugVars(t *testing.T) {
	s := newAnalyticsServer(t, Config{})
	do(t, s, "POST", "/v1/match", `{"url":"http://ads.example.com/banner.js","type":"script"}`)
	waitForTotals(t, s, map[string]uint64{"match/blocked": 1})

	rec := do(t, s, "GET", "/debug/vars", "")
	var vars struct {
		Analytics analytics.Vars `json:"adwars_analytics"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &vars); err != nil {
		t.Fatalf("debug vars do not parse: %v\n%s", err, rec.Body.Bytes())
	}
	av := vars.Analytics
	if !av.Enabled || av.Recorded != 1 || av.Dropped != 0 || av.SampleRate != 1 {
		t.Fatalf("adwars_analytics = %+v", av)
	}
	if av.AggBuckets != 1 || av.AggRows != 1 || av.AggBytes <= 0 {
		t.Fatalf("aggregator occupancy = %+v", av)
	}
}

// TestServeAnalyticsSpillDirError: an unusable spill dir latches a
// construction error the embedder can check, instead of silently serving
// without analytics.
func TestServeAnalyticsSpillDirError(t *testing.T) {
	file := t.TempDir() + "/occupied"
	if err := writeFile(file, "x"); err != nil {
		t.Fatal(err)
	}
	s := New(Config{Analytics: &analytics.Config{SpillDir: file + "/sub"}})
	if s.AnalyticsError() == nil {
		t.Fatal("no error latched for an uncreatable spill dir")
	}
	if s.Analytics() != nil {
		t.Fatal("collector exists despite construction failure")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// matchP99 drives the reusable handler rig n times and returns the p99
// handler latency.
func matchP99(t *testing.T, s *Server, n int) time.Duration {
	t.Helper()
	const body = `{"url":"http://ads.example.com/banner.js","type":"script","page_domain":"news.example"}`
	h, w, req, rb := matchAllocRig(s, body)
	lat := make([]time.Duration, 0, n)
	for i := 0; i < n+n/10; i++ {
		rb.Reset(body)
		w.status = 0
		t0 := time.Now()
		h.ServeHTTP(w, req)
		if i >= n/10 { // first 10% is warmup
			lat = append(lat, time.Since(t0))
		}
	}
	if w.status != 200 {
		t.Fatalf("status = %d", w.status)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat[len(lat)*99/100]
}

// TestServeAnalyticsOverheadGate is the bench-smoke regression gate for
// the "zero added p99" claim: the /v1/match handler with analytics
// recording every verdict must stay within a generous envelope of the
// analytics-off handler. It catches the pipeline growing a lock, a
// syscall, or a blocking send on the hot path — real regressions are
// order-of-magnitude, scheduler noise is not — while the exact-zero
// claim itself is measured by the full `make bench` run
// (analytics_overhead_p99_ns) where run lengths make p99 stable.
func TestServeAnalyticsOverheadGate(t *testing.T) {
	if raceSrvEnabled {
		t.Skip("latency gating is meaningless under -race")
	}
	off := newTestServer(t, Config{Workers: 4, Queue: 64, QueueTimeout: time.Second})
	on := newAnalyticsServer(t, Config{
		Workers: 4, Queue: 64, QueueTimeout: time.Second,
		Analytics: &analytics.Config{SampleRate: 1, RingSize: 1 << 16},
	})

	const iters = 4000
	// Interleave whole passes so machine-wide noise (GC, CPU frequency,
	// neighbors) hits both sides; keep the best-of-3 p99 per side.
	p99Off, p99On := time.Duration(1<<62), time.Duration(1<<62)
	for round := 0; round < 3; round++ {
		if d := matchP99(t, off, iters); d < p99Off {
			p99Off = d
		}
		if d := matchP99(t, on, iters); d < p99On {
			p99On = d
		}
	}
	limit := 2*p99Off + 200*time.Microsecond
	t.Logf("p99 off=%v on=%v (limit %v)", p99Off, p99On, limit)
	if p99On > limit {
		t.Fatalf("analytics p99 %v exceeds envelope %v (off %v) — decision logging is blocking the hot path",
			p99On, limit, p99Off)
	}
}
