package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func chaosServer(t *testing.T, cc ChaosConfig) (*Server, *httptest.Server) {
	t.Helper()
	s := newTestServer(t, Config{Chaos: &cc})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

const chaosMatchBody = `{"url":"http://ads.example.com/banner.js","type":"script"}`

// TestChaosTruncatedReadBecomes400: an injected mid-body read failure must
// surface as a structured 400 — the same degradation a real half-dead
// client produces — never a 5xx or a hang.
func TestChaosTruncatedReadBecomes400(t *testing.T) {
	checkGoroutineLeaks(t)
	s, ts := chaosServer(t, ChaosConfig{Seed: 7, TruncateRate: 1})
	resp, err := ts.Client().Post(ts.URL+"/v1/match", "application/json",
		strings.NewReader(chaosMatchBody))
	if err != nil {
		t.Fatalf("transport error: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var envelope errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil || envelope.Error.Code != "bad_request" {
		t.Fatalf("truncated read not a structured 400: %v %+v", err, envelope)
	}
	if got := s.met.chaos.truncateInjection.Load(); got != 1 {
		t.Errorf("truncate_injections = %d, want 1", got)
	}
}

// TestChaosConnectionCloseIsClientVisible: an injected close reaches the
// client as a transport error, and the server survives to answer the next
// request.
func TestChaosConnectionCloseIsClientVisible(t *testing.T) {
	checkGoroutineLeaks(t)
	s, ts := chaosServer(t, ChaosConfig{Seed: 7, CloseRate: 1})
	if _, err := ts.Client().Post(ts.URL+"/v1/match", "application/json",
		strings.NewReader(chaosMatchBody)); err == nil {
		t.Fatal("injected close produced a clean response")
	}
	if got := s.met.chaos.closeInjections.Load(); got != 1 {
		t.Errorf("close_injections = %d, want 1", got)
	}
	// Control plane unaffected.
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after injected close: %v %v", err, resp)
	}
	resp.Body.Close()
}

// TestChaosLatencyInjection: latency faults delay but do not alter the
// response.
func TestChaosLatencyInjection(t *testing.T) {
	const delay = 30 * time.Millisecond
	s, ts := chaosServer(t, ChaosConfig{Seed: 7, LatencyRate: 1, Latency: delay})
	start := time.Now()
	resp, err := ts.Client().Post(ts.URL+"/v1/match", "application/json",
		strings.NewReader(chaosMatchBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if elapsed := time.Since(start); elapsed < delay {
		t.Errorf("request returned in %v, want ≥ %v of injected latency", elapsed, delay)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 despite latency", resp.StatusCode)
	}
	var res matchResponse
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil || !res.Blocked {
		t.Fatalf("latency fault corrupted the verdict: %v %+v", err, res)
	}
	if got := s.met.chaos.latencyInjections.Load(); got != 1 {
		t.Errorf("latency_injections = %d, want 1", got)
	}
}

// TestChaosDeterministicBySeed: the same seed over the same sequential
// request sequence draws the same faults; a different seed draws a
// different (but internally consistent) pattern.
func TestChaosDeterministicBySeed(t *testing.T) {
	run := func(seed int64) []int {
		cc := ChaosConfig{Seed: seed, CloseRate: 0.3, TruncateRate: 0.3}
		_, ts := chaosServer(t, cc)
		var outcomes []int
		client := ts.Client()
		for i := 0; i < 24; i++ {
			resp, err := client.Post(ts.URL+"/v1/match", "application/json",
				strings.NewReader(chaosMatchBody))
			if err != nil {
				outcomes = append(outcomes, -1) // injected close
				continue
			}
			outcomes = append(outcomes, resp.StatusCode)
			resp.Body.Close()
		}
		return outcomes
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 42 diverged at request %d: %v vs %v", i, a, b)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds drew identical fault patterns (suspicious)")
	}
}

// TestChaosSparesControlPlane: /healthz, /debug/vars, and /admin/reload
// never receive injected faults even at 100% rates.
func TestChaosSparesControlPlane(t *testing.T) {
	_, ts := chaosServer(t, ChaosConfig{Seed: 1, CloseRate: 1})
	for _, path := range []string{"/healthz", "/debug/vars"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatalf("%s under 100%% close rate: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status = %d, want 200", path, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestChaosMetricsExported: the chaos counter block appears in the metrics
// tree only when chaos is configured.
func TestChaosMetricsExported(t *testing.T) {
	s, ts := chaosServer(t, ChaosConfig{Seed: 7, TruncateRate: 1})
	resp, err := ts.Client().Post(ts.URL+"/v1/match", "application/json",
		strings.NewReader(chaosMatchBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var snap metricsSnapshot
	if err := json.Unmarshal([]byte(s.met.String()), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Chaos == nil || snap.Chaos.TruncateInjections != 1 {
		t.Fatalf("chaos metrics missing or wrong: %+v", snap.Chaos)
	}

	plain := newTestServer(t, Config{})
	var plainSnap metricsSnapshot
	if err := json.Unmarshal([]byte(plain.met.String()), &plainSnap); err != nil {
		t.Fatal(err)
	}
	if plainSnap.Chaos != nil {
		t.Error("chaos block exported on a chaos-free server")
	}
}
