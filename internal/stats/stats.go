// Package stats provides the small statistical helpers the experiment
// harness uses: empirical CDFs (Figures 3 and 7), monthly time series
// (Figures 1, 5, 6), and basic summaries.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// CDF is an empirical cumulative distribution over float64 samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from samples (copied and sorted).
func NewCDF(samples []float64) *CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the sample count.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X ≤ x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1).
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	idx := int(q * float64(len(c.sorted)))
	if idx >= len(c.sorted) {
		idx = len(c.sorted) - 1
	}
	return c.sorted[idx]
}

// Render prints the CDF sampled at the given x positions, one "x p" row per
// line — the series behind Figures 3 and 7.
func (c *CDF) Render(xs []float64) string {
	var b strings.Builder
	for _, x := range xs {
		fmt.Fprintf(&b, "%10.0f  %6.3f\n", x, c.At(x))
	}
	return b.String()
}

// Mean returns the sample mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MonthSeries is a time series with one value per month label.
type MonthSeries struct {
	Months []time.Time
	Values []float64
}

// Add appends one (month, value) point.
func (s *MonthSeries) Add(m time.Time, v float64) {
	s.Months = append(s.Months, m)
	s.Values = append(s.Values, v)
}

// At returns the value for month m (matched by year+month), or 0.
func (s *MonthSeries) At(m time.Time) float64 {
	for i, t := range s.Months {
		if t.Year() == m.Year() && t.Month() == m.Month() {
			return s.Values[i]
		}
	}
	return 0
}

// Last returns the final value, or 0 when empty.
func (s *MonthSeries) Last() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	return s.Values[len(s.Values)-1]
}

// MonthsBetween returns the first day of every month from start to end
// inclusive (both normalized to their month starts).
func MonthsBetween(start, end time.Time) []time.Time {
	cur := time.Date(start.Year(), start.Month(), 1, 0, 0, 0, 0, time.UTC)
	last := time.Date(end.Year(), end.Month(), 1, 0, 0, 0, 0, time.UTC)
	var out []time.Time
	for !cur.After(last) {
		out = append(out, cur)
		cur = cur.AddDate(0, 1, 0)
	}
	return out
}

// MonthLabel formats a month as the paper's axis labels do ("2016-07").
func MonthLabel(t time.Time) string { return t.Format("2006-01") }

// Lerp linearly interpolates between a (at frac 0) and b (at frac 1).
func Lerp(a, b, frac float64) float64 {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return a + (b-a)*frac
}
