package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	cases := map[float64]float64{0: 0, 1: 0.25, 2.5: 0.5, 4: 1, 100: 1}
	for x, want := range cases {
		if got := c.At(x); math.Abs(got-want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestCDFEmptyAndQuantile(t *testing.T) {
	empty := NewCDF(nil)
	if empty.At(5) != 0 {
		t.Error("empty CDF should be 0 everywhere")
	}
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Error("empty quantile should be NaN")
	}
	c := NewCDF([]float64{10, 20, 30, 40, 50})
	if got := c.Quantile(0); got != 10 {
		t.Errorf("Q(0) = %v", got)
	}
	if got := c.Quantile(1); got != 50 {
		t.Errorf("Q(1) = %v", got)
	}
	if got := c.Quantile(0.5); got != 30 {
		t.Errorf("Q(0.5) = %v", got)
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(xs []float64, a, b float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		c := NewCDF(clean)
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		if math.IsNaN(lo) || math.IsNaN(hi) {
			return true
		}
		return c.At(lo) <= c.At(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFRender(t *testing.T) {
	c := NewCDF([]float64{-100, 0, 100})
	out := c.Render([]float64{-180, 0, 180})
	if out == "" {
		t.Fatal("empty render")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Errorf("Mean = %v", got)
	}
}

func TestMonthSeries(t *testing.T) {
	var s MonthSeries
	m1 := time.Date(2014, 5, 1, 0, 0, 0, 0, time.UTC)
	m2 := time.Date(2014, 6, 1, 0, 0, 0, 0, time.UTC)
	s.Add(m1, 10)
	s.Add(m2, 20)
	if s.At(m1) != 10 || s.At(m2) != 20 {
		t.Fatal("At lookup wrong")
	}
	if s.At(time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)) != 0 {
		t.Fatal("missing month should read 0")
	}
	if s.Last() != 20 {
		t.Fatal("Last wrong")
	}
	var empty MonthSeries
	if empty.Last() != 0 {
		t.Fatal("empty Last should be 0")
	}
}

func TestMonthsBetween(t *testing.T) {
	months := MonthsBetween(
		time.Date(2011, 8, 15, 0, 0, 0, 0, time.UTC),
		time.Date(2016, 7, 2, 0, 0, 0, 0, time.UTC))
	if len(months) != 60 {
		t.Fatalf("months = %d, want 60", len(months))
	}
	if MonthLabel(months[0]) != "2011-08" || MonthLabel(months[59]) != "2016-07" {
		t.Fatalf("endpoints = %s..%s", MonthLabel(months[0]), MonthLabel(months[59]))
	}
	if !sort.SliceIsSorted(months, func(i, j int) bool { return months[i].Before(months[j]) }) {
		t.Fatal("months must be sorted")
	}
}

func TestLerp(t *testing.T) {
	if Lerp(0, 10, 0.5) != 5 {
		t.Error("midpoint wrong")
	}
	if Lerp(0, 10, -1) != 0 || Lerp(0, 10, 2) != 10 {
		t.Error("clamping wrong")
	}
}
