package alexa

import (
	"strings"
	"testing"
)

func TestNewUniverseDeterministic(t *testing.T) {
	u1 := NewUniverse(1000, 42)
	u2 := NewUniverse(1000, 42)
	if u1.Len() != 1000 || u2.Len() != 1000 {
		t.Fatalf("sizes = %d, %d", u1.Len(), u2.Len())
	}
	for i, s := range u1.Top(1000) {
		o := u2.Top(1000)[i]
		if s.Domain != o.Domain || s.Rank != o.Rank || s.Category != o.Category {
			t.Fatalf("universe not deterministic at rank %d", i+1)
		}
	}
}

func TestUniverseUniqueDomains(t *testing.T) {
	u := NewUniverse(5000, 7)
	seen := make(map[string]bool)
	for _, s := range u.Top(5000) {
		if seen[s.Domain] {
			t.Fatalf("duplicate domain %q", s.Domain)
		}
		seen[s.Domain] = true
		if !strings.Contains(s.Domain, ".") {
			t.Fatalf("domain %q has no TLD", s.Domain)
		}
	}
}

func TestUniverseRanks(t *testing.T) {
	u := NewUniverse(100, 1)
	top := u.Top(10)
	if len(top) != 10 {
		t.Fatalf("Top(10) = %d sites", len(top))
	}
	for i, s := range top {
		if s.Rank != i+1 {
			t.Fatalf("rank %d at position %d", s.Rank, i)
		}
	}
	if got := u.Top(1000); len(got) != 100 {
		t.Fatalf("oversized Top = %d", len(got))
	}
	first := top[0]
	if r := u.Rank(first.Domain); r != 1 {
		t.Fatalf("Rank(%q) = %d", first.Domain, r)
	}
	if r := u.Rank("unknown.example"); r != 0 {
		t.Fatalf("Rank(unknown) = %d, want 0", r)
	}
	if _, ok := u.Site(first.Domain); !ok {
		t.Fatal("Site lookup failed")
	}
}

func TestRankBucket(t *testing.T) {
	cases := map[int]string{
		1: "1-5K", 5000: "1-5K", 5001: "5K-10K", 10000: "5K-10K",
		10001: "10K-100K", 100000: "10K-100K", 100001: "100K-1M",
		1000000: "100K-1M", 1000001: ">1M", 0: ">1M",
	}
	for rank, want := range cases {
		if got := RankBucket(rank); got != want {
			t.Errorf("RankBucket(%d) = %q, want %q", rank, got, want)
		}
	}
}

func TestCategoryDistribution(t *testing.T) {
	u := NewUniverse(10000, 3)
	counts := make(map[Category]int)
	for _, s := range u.Top(10000) {
		counts[s.Category]++
	}
	// Every category should be represented in a 10K universe.
	for _, c := range Categories() {
		if counts[c] == 0 {
			t.Errorf("category %v empty", c)
		}
	}
	// Internet services should outnumber pornography per the weights.
	if counts[CatInternetServices] <= counts[CatPornography] {
		t.Error("category weights not respected")
	}
}

func TestCategoryString(t *testing.T) {
	if CatStreamingSharing.String() != "Streaming/Sharing" {
		t.Error("category label mismatch")
	}
	if Category(99).String() != "Others" {
		t.Error("out-of-range category should read Others")
	}
	if len(Categories()) != 16 {
		t.Errorf("categories = %d, want 16", len(Categories()))
	}
}
