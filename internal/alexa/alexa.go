// Package alexa provides the synthetic domain universe that stands in for
// the Alexa rankings and McAfee's URL categorization service (DESIGN.md,
// substitutions). Domains get deterministic names, Zipf-flavored popularity
// ranks, and one of the fifteen categories Figure 2 of the paper plots
// (plus Others).
package alexa

import (
	"fmt"
	"math/rand"
)

// Category labels a website the way the paper's McAfee-based
// categorization does (Figure 2's x axis).
type Category int

// The top-15 categories of Figure 2, plus Others.
const (
	CatInternetServices Category = iota
	CatEntertainment
	CatBlogsForums
	CatGames
	CatIllegalSoftware
	CatBusiness
	CatStreamingSharing
	CatGeneralNews
	CatMarketing
	CatSports
	CatPersonalStorage
	CatShareware
	CatWebAds
	CatMaliciousSites
	CatPornography
	CatOthers
	numCategories
)

var categoryNames = [...]string{
	"Internet Services", "Entertainment", "Blogs/Forums", "Games",
	"Illegal Software", "Business", "Streaming/Sharing", "General News",
	"Marketing", "Sports", "Personal Storage", "Shareware", "Web Ads",
	"Malicious Sites", "Pornography", "Others",
}

// String returns the Figure 2 label of the category.
func (c Category) String() string {
	if c < 0 || int(c) >= len(categoryNames) {
		return "Others"
	}
	return categoryNames[c]
}

// Categories lists all categories in Figure 2 order.
func Categories() []Category {
	out := make([]Category, numCategories)
	for i := range out {
		out[i] = Category(i)
	}
	return out
}

// categoryWeights shape the category mix of the universe. Streaming,
// entertainment, and news sites are where anti-adblockers concentrate
// (Rafique et al. found 16.3% on free live streaming sites), so they get
// substantial mass.
var categoryWeights = [...]float64{
	CatInternetServices: 0.14, CatEntertainment: 0.11, CatBlogsForums: 0.09,
	CatGames: 0.07, CatIllegalSoftware: 0.04, CatBusiness: 0.09,
	CatStreamingSharing: 0.07, CatGeneralNews: 0.08, CatMarketing: 0.05,
	CatSports: 0.05, CatPersonalStorage: 0.03, CatShareware: 0.03,
	CatWebAds: 0.03, CatMaliciousSites: 0.02, CatPornography: 0.04,
	CatOthers: 0.06,
}

// Site is one ranked, categorized domain.
type Site struct {
	// Domain is the registrable domain name.
	Domain string
	// Rank is the Alexa-style global popularity rank (1 = most popular).
	Rank int
	// Category is the McAfee-style category.
	Category Category
}

// Universe is a fixed snapshot of the synthetic web's rankings. Build with
// NewUniverse; lookups are O(1).
type Universe struct {
	sites    []*Site
	byDomain map[string]*Site
}

// domain name fragments, chosen to look like the real web without colliding
// with well-known real domains.
var (
	prefixes = []string{
		"daily", "super", "mega", "top", "my", "the", "go", "all", "best",
		"free", "live", "web", "net", "pro", "quick", "smart", "true",
		"prime", "global", "ultra", "easy", "fast", "open", "real", "blue",
		"red", "silver", "gold", "zen", "nova", "astro", "pixel", "cyber",
		"hyper", "meta", "giga", "terra", "alpha", "delta", "omni",
	}
	stems = map[Category][]string{
		CatInternetServices: {"mail", "search", "cloud", "host", "dns", "cdn", "api", "portal"},
		CatEntertainment:    {"movies", "tv", "shows", "celeb", "fun", "clips", "cinema", "series"},
		CatBlogsForums:      {"blog", "forum", "board", "talk", "threads", "posts", "diary"},
		CatGames:            {"games", "play", "arcade", "quest", "pixelgame", "clan", "guild"},
		CatIllegalSoftware:  {"warez", "cracks", "keygen", "serials", "patch"},
		CatBusiness:         {"biz", "corp", "trade", "invest", "finance", "market", "office"},
		CatStreamingSharing: {"stream", "video", "watch", "share", "torrent", "tube", "cast"},
		CatGeneralNews:      {"news", "times", "daily", "press", "headline", "report", "wire"},
		CatMarketing:        {"ads", "promo", "leads", "brand", "click", "banner"},
		CatSports:           {"sports", "score", "league", "match", "goal", "racing"},
		CatPersonalStorage:  {"files", "drive", "box", "vault", "backup", "locker"},
		CatShareware:        {"download", "soft", "apps", "tools", "install"},
		CatWebAds:           {"adserve", "track", "metrics", "pixelad", "impress"},
		CatMaliciousSites:   {"prize", "winner", "lucky", "bonus", "alertz"},
		CatPornography:      {"adultx", "camsx", "nsfwhub"},
		CatOthers:           {"stuff", "misc", "hub", "spot", "zone", "place", "world"},
	}
	tlds = []string{".com", ".com", ".com", ".net", ".org", ".tv", ".io", ".info", ".co"}
)

// NewUniverse builds a deterministic universe of n ranked domains.
func NewUniverse(n int, seed int64) *Universe {
	rng := rand.New(rand.NewSource(seed))
	u := &Universe{byDomain: make(map[string]*Site, n)}
	seen := make(map[string]bool, n)
	cats := Categories()
	for rank := 1; rank <= n; rank++ {
		cat := sampleCategory(rng, cats)
		domain := ""
		for attempt := 0; ; attempt++ {
			st := stems[cat][rng.Intn(len(stems[cat]))]
			pre := prefixes[rng.Intn(len(prefixes))]
			tld := tlds[rng.Intn(len(tlds))]
			domain = pre + st + tld
			if attempt > 4 {
				domain = fmt.Sprintf("%s%s%d%s", pre, st, rng.Intn(10000), tld)
			}
			if !seen[domain] {
				break
			}
		}
		seen[domain] = true
		s := &Site{Domain: domain, Rank: rank, Category: cat}
		u.sites = append(u.sites, s)
		u.byDomain[domain] = s
	}
	return u
}

func sampleCategory(rng *rand.Rand, cats []Category) Category {
	r := rng.Float64()
	acc := 0.0
	for _, c := range cats {
		acc += categoryWeights[c]
		if r < acc {
			return c
		}
	}
	return CatOthers
}

// Len returns the universe size.
func (u *Universe) Len() int { return len(u.sites) }

// Top returns the n highest-ranked sites (all sites when n exceeds the
// universe). The returned slice must not be modified.
func (u *Universe) Top(n int) []*Site {
	if n > len(u.sites) {
		n = len(u.sites)
	}
	return u.sites[:n]
}

// Site looks a domain up.
func (u *Universe) Site(domain string) (*Site, bool) {
	s, ok := u.byDomain[domain]
	return s, ok
}

// Rank returns a domain's rank, or 0 when the domain is outside the
// universe (the paper buckets such domains as ">1M").
func (u *Universe) Rank(domain string) int {
	if s, ok := u.byDomain[domain]; ok {
		return s.Rank
	}
	return 0
}

// RankBucket maps a rank to the Table 1 buckets. Rank 0 (unknown domain)
// lands in ">1M".
func RankBucket(rank int) string {
	switch {
	case rank >= 1 && rank <= 5000:
		return "1-5K"
	case rank > 5000 && rank <= 10000:
		return "5K-10K"
	case rank > 10000 && rank <= 100000:
		return "10K-100K"
	case rank > 100000 && rank <= 1000000:
		return "100K-1M"
	default:
		return ">1M"
	}
}

// RankBuckets lists the Table 1 bucket labels in order.
var RankBuckets = []string{"1-5K", "5K-10K", "10K-100K", "100K-1M", ">1M"}
