// Package signatures implements the signature-based anti-adblock script
// detection the paper contrasts its ML approach with (§2.2: Storey et al.
// remove anti-adblock scripts "using manually crafted regular
// expressions"). Signatures are precise on the script builds they were
// written against but brittle against identifier randomization and
// repackaging — the ablation experiments quantify exactly that gap.
package signatures

import (
	"regexp"
	"sort"
)

// Signature is one hand-written detection pattern.
type Signature struct {
	// Name identifies the targeted product/technique.
	Name string
	// Pattern matches the script source.
	Pattern *regexp.Regexp
}

// DefaultSignatures mirrors the community signature sets of 2017: exact
// product markers (BlockAdBlock, PageFair beacons) and characteristic
// code fragments of the two bait techniques.
func DefaultSignatures() []Signature {
	mk := func(name, pat string) Signature {
		return Signature{Name: name, Pattern: regexp.MustCompile(pat)}
	}
	return []Signature{
		// Product markers.
		mk("blockadblock-proto", `BlockAdBlock|blockadblock`),
		mk("pagefair-beacon", `pagefair|adblock_detection`),
		mk("npttech-bait", `npttech\.com/advertising\.js`),
		// The canonical BlockAdBlock method names.
		mk("creatbait-method", `_creatBait|_checkBait`),
		// The classic full geometry-probe chain, in canonical order.
		mk("probe-chain", `offsetParent;[\s\S]{0,40}offsetHeight;[\s\S]{0,40}offsetLeft;`),
		// The canonical bait-class string from community copies.
		mk("bait-classes", `pub_300x250 textads banner_ad|adsbox adsbygoogle`),
		// The abp attribute probe with the stock variable name.
		mk("abp-attr", `getAttribute\(['"]abp['"]\)`),
		// The IAB sample's cookie flag.
		mk("adblocker-cookie", `__adblocker=`),
		// The canRunAds bait variable of Code 8.
		mk("canrunads", `canRunAds`),
	}
}

// Detector matches scripts against a signature set.
type Detector struct {
	sigs []Signature
}

// New builds a detector; nil signatures mean DefaultSignatures.
func New(sigs []Signature) *Detector {
	if sigs == nil {
		sigs = DefaultSignatures()
	}
	return &Detector{sigs: sigs}
}

// Match returns the names of signatures matching the script, sorted.
func (d *Detector) Match(src string) []string {
	var out []string
	for _, s := range d.sigs {
		if s.Pattern.MatchString(src) {
			out = append(out, s.Name)
		}
	}
	sort.Strings(out)
	return out
}

// IsAntiAdblock reports whether any signature matches.
func (d *Detector) IsAntiAdblock(src string) bool {
	for _, s := range d.sigs {
		if s.Pattern.MatchString(src) {
			return true
		}
	}
	return false
}

// Evaluate runs the detector over a labeled corpus and returns TP/FP
// counts comparable to the ML classifier's confusion matrix.
func (d *Detector) Evaluate(positives, negatives []string) (tp, fn, fp, tn int) {
	for _, src := range positives {
		if d.IsAntiAdblock(src) {
			tp++
		} else {
			fn++
		}
	}
	for _, src := range negatives {
		if d.IsAntiAdblock(src) {
			fp++
		} else {
			tn++
		}
	}
	return tp, fn, fp, tn
}

// TPRate returns tp/(tp+fn) for Evaluate outputs.
func TPRate(tp, fn int) float64 {
	if tp+fn == 0 {
		return 0
	}
	return float64(tp) / float64(tp+fn)
}

// FPRate returns fp/(fp+tn) for Evaluate outputs.
func FPRate(fp, tn int) float64 {
	if fp+tn == 0 {
		return 0
	}
	return float64(fp) / float64(fp+tn)
}
