package signatures

import (
	"math/rand"
	"testing"

	"adwars/internal/antiadblock"
)

func TestSignaturesHitReferenceScript(t *testing.T) {
	d := New(nil)
	if !d.IsAntiAdblock(antiadblock.ReferenceBlockAdBlock) {
		t.Fatal("reference BlockAdBlock must match")
	}
	names := d.Match(antiadblock.ReferenceBlockAdBlock)
	if len(names) < 2 {
		t.Fatalf("expected multiple signatures, got %v", names)
	}
}

func TestSignaturesMissRandomizedBuilds(t *testing.T) {
	// The paper's motivation for ML over signatures: randomized builds
	// evade hand-written patterns a meaningful fraction of the time.
	d := New(nil)
	rng := rand.New(rand.NewSource(9))
	missed := 0
	const n = 100
	for i := 0; i < n; i++ {
		src := antiadblock.HTMLBaitScript("x", rng, antiadblock.GenOptions{})
		if !d.IsAntiAdblock(src) {
			missed++
		}
	}
	if missed == 0 {
		t.Error("signatures should miss some randomized builds")
	}
	if missed == n {
		t.Error("signatures should still catch canonical fragments sometimes")
	}
}

func TestSignaturesCleanOnBenign(t *testing.T) {
	d := New(nil)
	rng := rand.New(rand.NewSource(10))
	fp := 0
	const n = 150
	for i := 0; i < n; i++ {
		// Exclude theme bundles: they genuinely contain detector code.
		kind := antiadblock.BenignKind(i % int(antiadblock.BenignThemeBundle))
		if !d.IsAntiAdblock(antiadblock.BenignScript(kind, rng, antiadblock.GenOptions{})) {
			continue
		}
		fp++
	}
	if frac := float64(fp) / n; frac > 0.05 {
		t.Errorf("signature FP rate on benign scripts = %.2f, should be tiny", frac)
	}
}

func TestEvaluate(t *testing.T) {
	d := New(nil)
	rng := rand.New(rand.NewSource(11))
	var pos, neg []string
	for i := 0; i < 60; i++ {
		v := antiadblock.Catalog[i%len(antiadblock.Catalog)]
		pos = append(pos, antiadblock.VendorScript(v, "http://x.com/ads.js", "n", rng, antiadblock.GenOptions{}))
		neg = append(neg, antiadblock.RandomBenignScript(rng, antiadblock.GenOptions{}))
	}
	tp, fn, fp, tn := d.Evaluate(pos, neg)
	if tp+fn != len(pos) || fp+tn != len(neg) {
		t.Fatal("evaluate counts wrong")
	}
	if TPRate(tp, fn) < 0.3 {
		t.Errorf("signature TP rate %.2f suspiciously low", TPRate(tp, fn))
	}
	if TPRate(0, 0) != 0 || FPRate(0, 0) != 0 {
		t.Error("zero division guard missing")
	}
}

func TestCustomSignatureSet(t *testing.T) {
	d := New([]Signature{})
	if d.IsAntiAdblock("anything") {
		t.Fatal("empty signature set must match nothing")
	}
}
