package analytics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// Row is one spilled (or snapshotted) aggregation row: the count of one
// (kind, verdict, domain, rule) combination inside one time bucket. It is
// the JSONL spill line, the wire shape inside /admin/analytics bucket
// snapshots, and the input currency of adwars-report -live.
type Row struct {
	Bucket  time.Time `json:"bucket"`
	DurS    int       `json:"dur_s"`
	Kind    string    `json:"kind"`
	Verdict string    `json:"verdict"`
	Domain  string    `json:"domain,omitempty"`
	Rule    string    `json:"rule,omitempty"`
	Ordinal int32     `json:"ordinal"`
	Count   uint64    `json:"count"`
	// Overflow marks the fold-row of a bucket that hit its key cap: Count
	// decisions happened whose exact key was not retained.
	Overflow bool `json:"overflow,omitempty"`
}

// spillPattern names spill files so lexical order is write order.
const spillPattern = "analytics-%06d.jsonl"

// spillWriter appends JSONL rows to rotating files in one directory.
// Single-writer (the collector's consumer goroutine).
type spillWriter struct {
	dir      string
	maxBytes int64
	seq      int
	f        *os.File
	bw       *bufio.Writer
	written  int64
	rows     uint64
	files    uint64
	err      error // first write error; later writes are skipped
}

func newSpillWriter(dir string, maxBytes int64) (*spillWriter, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	sw := &spillWriter{dir: dir, maxBytes: maxBytes}
	if err := sw.rotate(); err != nil {
		return nil, err
	}
	return sw, nil
}

// rotate closes the current file (if any) and opens the next in sequence.
func (sw *spillWriter) rotate() error {
	if sw.bw != nil {
		sw.bw.Flush()
		sw.f.Close()
	}
	sw.seq++
	path := filepath.Join(sw.dir, fmt.Sprintf(spillPattern, sw.seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	sw.f = f
	sw.bw = bufio.NewWriter(f)
	sw.written = 0
	sw.files++
	return nil
}

// write appends one row, rotating first if the current file is past its
// size budget. Errors latch: spill is telemetry, a full disk must not
// take the consumer down with it.
func (sw *spillWriter) write(row *Row) {
	if sw.err != nil {
		return
	}
	if sw.written >= sw.maxBytes {
		if sw.err = sw.rotate(); sw.err != nil {
			return
		}
	}
	data, err := json.Marshal(row)
	if err != nil {
		sw.err = err
		return
	}
	data = append(data, '\n')
	if _, err := sw.bw.Write(data); err != nil {
		sw.err = err
		return
	}
	sw.written += int64(len(data))
	sw.rows++
}

// close flushes and closes the current file, reporting the first error
// seen anywhere in the writer's life.
func (sw *spillWriter) close() error {
	if sw.bw != nil {
		if err := sw.bw.Flush(); err != nil && sw.err == nil {
			sw.err = err
		}
		if err := sw.f.Close(); err != nil && sw.err == nil {
			sw.err = err
		}
		sw.bw, sw.f = nil, nil
	}
	return sw.err
}

// ReadSpillFile parses one JSONL spill file into rows.
func ReadSpillFile(path string) ([]Row, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rows []Row
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var row Row
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rows, nil
}

// ReadSpillDir reads every spill file in dir, in write order.
func ReadSpillDir(dir string) ([]Row, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "analytics-*.jsonl"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("analytics: no spill files in %s", dir)
	}
	sort.Strings(paths)
	var rows []Row
	for _, p := range paths {
		r, err := ReadSpillFile(p)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r...)
	}
	return rows, nil
}
