package analytics

import (
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func testRows(n int) []Row {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	rows := make([]Row, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, Row{
			Bucket:  base.Add(time.Duration(i) * 10 * time.Second),
			DurS:    10,
			Kind:    "match",
			Verdict: "blocked",
			Domain:  "ads.example",
			Rule:    "||ads.example^$script",
			Ordinal: int32(i),
			Count:   uint64(i + 1),
		})
	}
	return rows
}

// TestSpillRoundTrip writes rows through the writer and reads them back
// verbatim through ReadSpillDir.
func TestSpillRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sw, err := newSpillWriter(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	want := testRows(25)
	for i := range want {
		sw.write(&want[i])
	}
	if err := sw.close(); err != nil {
		t.Fatal(err)
	}
	if sw.rows != 25 || sw.files != 1 {
		t.Fatalf("rows=%d files=%d, want 25/1", sw.rows, sw.files)
	}
	got, err := ReadSpillDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestSpillRotation forces a tiny per-file budget: the writer must rotate
// into multiple files whose lexical order preserves write order.
func TestSpillRotation(t *testing.T) {
	dir := t.TempDir()
	sw, err := newSpillWriter(dir, 200) // a few rows per file
	if err != nil {
		t.Fatal(err)
	}
	want := testRows(40)
	for i := range want {
		sw.write(&want[i])
	}
	if err := sw.close(); err != nil {
		t.Fatal(err)
	}
	if sw.files < 3 {
		t.Fatalf("files = %d, want rotation into ≥ 3", sw.files)
	}
	paths, _ := filepath.Glob(filepath.Join(dir, "analytics-*.jsonl"))
	if uint64(len(paths)) != sw.files {
		t.Fatalf("%d files on disk, writer says %d", len(paths), sw.files)
	}
	got, err := ReadSpillDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rotation scrambled rows: got %d rows", len(got))
	}
}

// TestReadSpillDirEmpty reports a clear error instead of an empty report.
func TestReadSpillDirEmpty(t *testing.T) {
	if _, err := ReadSpillDir(t.TempDir()); err == nil {
		t.Fatal("ReadSpillDir on an empty dir returned nil error")
	}
}
