package analytics

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Config parameterizes a Collector. The zero value records every decision
// into GOMAXPROCS-sharded 4096-slot rings, aggregates into 10-second
// buckets, and never spills (no directory configured).
type Config struct {
	// SampleRate is the fraction of decisions recorded, in (0, 1]. Zero
	// means 1.0 (record everything — the reconciliation-exact mode);
	// operators turn it down under load. Sampling decisions are counted
	// (SampledOut), so a sampled run still accounts for every decision.
	SampleRate float64
	// Shards is the number of independent producer rings (0 = min(GOMAXPROCS, 8)).
	Shards int
	// RingSize is each shard's slot count, rounded up to a power of two
	// (0 = 4096).
	RingSize int
	// BucketDur is the aggregation bucket width (0 = 10s).
	BucketDur time.Duration
	// MaxBuckets bounds how many time buckets stay in memory; older
	// buckets are spilled and evicted (0 = 64).
	MaxBuckets int
	// MaxKeys bounds distinct (domain, rule, verdict) rows per bucket;
	// past the cap new keys fold into the bucket's overflow row, so
	// memory stays bounded no matter how adversarial the domain mix is
	// (0 = 4096).
	MaxKeys int
	// SpillDir, when non-empty, receives rotated JSONL spill files of
	// evicted and final bucket rows. Empty disables spill: evicted
	// buckets fold into the cumulative totals only.
	SpillDir string
	// SpillMaxBytes rotates the spill file past this size (0 = 8 MiB).
	SpillMaxBytes int64
	// DrainInterval is the consumer's ring poll cadence (0 = 5ms).
	DrainInterval time.Duration
}

func (c *Config) sampleRate() float64 {
	if c.SampleRate <= 0 || c.SampleRate > 1 {
		return 1
	}
	return c.SampleRate
}

func (c *Config) shards() int {
	if c.Shards > 0 {
		return c.Shards
	}
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	return n
}

func (c *Config) ringSize() int {
	if c.RingSize > 0 {
		return c.RingSize
	}
	return 4096
}

func (c *Config) bucketDur() time.Duration {
	if c.BucketDur > 0 {
		return c.BucketDur
	}
	return 10 * time.Second
}

func (c *Config) maxBuckets() int {
	if c.MaxBuckets > 0 {
		return c.MaxBuckets
	}
	return 64
}

func (c *Config) maxKeys() int {
	if c.MaxKeys > 0 {
		return c.MaxKeys
	}
	return 4096
}

func (c *Config) spillMaxBytes() int64 {
	if c.SpillMaxBytes > 0 {
		return c.SpillMaxBytes
	}
	return 8 << 20
}

func (c *Config) drainInterval() time.Duration {
	if c.DrainInterval > 0 {
		return c.DrainInterval
	}
	return 5 * time.Millisecond
}

// sampler decides record-or-skip with one atomic add and a splitmix64
// mix — no locks, no rand.Source, deterministic given the call sequence.
// rate >= 1 short-circuits to "always", which is what makes sampling=1.0
// reconciliation-exact rather than merely 99.999%-probable.
type sampler struct {
	exact     bool
	rate      float64
	threshold uint64
	state     atomic.Uint64
}

func newSampler(rate float64) *sampler {
	if rate >= 1 {
		return &sampler{exact: true, rate: 1}
	}
	return &sampler{rate: rate, threshold: uint64(rate * math.MaxUint64)}
}

func (s *sampler) keep() bool {
	if s.exact {
		return true
	}
	x := s.state.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x < s.threshold
}

// Collector is the analytics pipeline: sharded lock-free rings on the
// producer side, one consumer goroutine feeding the aggregator and spill
// on the other. Record never blocks and never allocates; everything that
// costs memory or I/O happens on the consumer.
type Collector struct {
	cfg Config

	smp   *sampler
	ovr   atomic.Pointer[sampler] // overload-governor override; nil = use smp
	rings []*ring
	rr    atomic.Uint64 // round-robin shard cursor

	recorded   atomic.Uint64 // events accepted into a ring
	sampledOut atomic.Uint64 // events skipped by the sampler

	mu    sync.Mutex // guards agg + spill (consumer and snapshot readers)
	agg   *aggregator
	spill *spillWriter

	done      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
}

// NewCollector builds and starts a collector: the consumer goroutine is
// live on return. Callers must Close it to flush the rings and the final
// aggregator state to spill.
func NewCollector(cfg Config) (*Collector, error) {
	c := &Collector{
		cfg:  cfg,
		smp:  newSampler(cfg.sampleRate()),
		agg:  newAggregator(cfg.bucketDur(), cfg.maxBuckets(), cfg.maxKeys()),
		done: make(chan struct{}),
	}
	for i := 0; i < cfg.shards(); i++ {
		c.rings = append(c.rings, newRing(cfg.ringSize()))
	}
	if cfg.SpillDir != "" {
		sw, err := newSpillWriter(cfg.SpillDir, cfg.spillMaxBytes())
		if err != nil {
			return nil, fmt.Errorf("analytics: spill: %w", err)
		}
		c.spill = sw
	}
	c.wg.Add(1)
	go c.run()
	return c, nil
}

// Record logs one decision. It is safe for any number of concurrent
// callers, never blocks, and allocates nothing: the event is either
// sampled out (counted), accepted into a ring, or dropped because the
// ring is full (counted). The serving hot path calls this inline.
func (c *Collector) Record(ev Event) {
	smp := c.smp
	if o := c.ovr.Load(); o != nil {
		smp = o
	}
	if !smp.keep() {
		c.sampledOut.Add(1)
		return
	}
	r := c.rings[c.rr.Add(1)%uint64(len(c.rings))]
	if r.push(&ev) {
		c.recorded.Add(1)
	}
}

// run is the consumer: drain every ring on a short cadence, retire
// expired buckets to spill, and on shutdown flush everything.
func (c *Collector) run() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.drainInterval())
	defer t.Stop()
	for {
		select {
		case <-c.done:
			c.drainOnce(time.Now())
			c.mu.Lock()
			c.agg.flushAll(c.spill)
			if c.spill != nil {
				c.closeErr = c.spill.close()
			}
			c.mu.Unlock()
			return
		case now := <-t.C:
			c.drainOnce(now)
		}
	}
}

// drainOnce empties every ring into the aggregator and retires buckets
// that have aged out of the retention window.
func (c *Collector) drainOnce(now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var ev Event
	for _, r := range c.rings {
		for r.pop(&ev) {
			c.agg.add(&ev, c.spill)
		}
	}
	c.agg.evictExpired(now.UnixNano(), c.spill)
}

// Close stops the consumer after it has drained every ring and flushed
// the final aggregator state to spill. Idempotent; returns the spill
// writer's close error, if any.
func (c *Collector) Close() error {
	c.closeOnce.Do(func() {
		close(c.done)
		c.wg.Wait()
	})
	return c.closeErr
}

// SetSampleOverride forces the sample rate down to rate until
// ClearSampleOverride — the overload governor's lever for shedding
// analytics volume before it sheds request fidelity. The swap is one
// atomic pointer store; Record picks it up on its next call with a
// single extra atomic load and no allocation.
func (c *Collector) SetSampleOverride(rate float64) {
	c.ovr.Store(newSampler(rate))
}

// ClearSampleOverride restores the configured sample rate.
func (c *Collector) ClearSampleOverride() {
	c.ovr.Store(nil)
}

// effectiveRate is the sample rate Record is currently applying.
func (c *Collector) effectiveRate() float64 {
	if o := c.ovr.Load(); o != nil {
		return o.rate
	}
	return c.cfg.sampleRate()
}

// drops sums the per-ring full-drop counters.
func (c *Collector) drops() uint64 {
	var n uint64
	for _, r := range c.rings {
		n += r.drops.Load()
	}
	return n
}

// ringOccupancy sums buffered-but-undrained events across shards.
func (c *Collector) ringOccupancy() int {
	var n int
	for _, r := range c.rings {
		n += r.occupancy()
	}
	return n
}

// Counters is the collector's cheap accounting surface: everything
// /debug/vars exports without touching the aggregator maps.
type Counters struct {
	Recorded   uint64 `json:"recorded"`
	Dropped    uint64 `json:"dropped"`
	SampledOut uint64 `json:"sampled_out"`
	// RingOccupancy is events buffered in the rings right now (waiting
	// for the consumer).
	RingOccupancy int     `json:"ring_occupancy"`
	SampleRate    float64 `json:"sample_rate"`
	// EffectiveRate is the rate Record is applying right now — it
	// diverges from SampleRate while the overload governor holds a
	// sample override.
	EffectiveRate float64 `json:"effective_rate"`
}

// CountersNow reads the producer-side counters without locking.
func (c *Collector) CountersNow() Counters {
	return Counters{
		Recorded:      c.recorded.Load(),
		Dropped:       c.drops(),
		SampledOut:    c.sampledOut.Load(),
		RingOccupancy: c.ringOccupancy(),
		SampleRate:    c.cfg.sampleRate(),
		EffectiveRate: c.effectiveRate(),
	}
}

// Snapshot captures the full pipeline state: producer counters,
// aggregator occupancy, cumulative per-kind/verdict totals, and the
// currently held bucket rows (oldest first). Safe to call concurrently
// with recording and draining.
func (c *Collector) Snapshot() Snapshot {
	snap := Snapshot{
		Enabled:  true,
		Counters: c.CountersNow(),
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	snap.BucketDurS = int(c.agg.dur / time.Second)
	snap.Buckets = c.agg.bucketSnapshots()
	snap.AggBytes = c.agg.bytes
	snap.AggBuckets = len(c.agg.buckets)
	snap.AggRows = c.agg.rowCount()
	snap.OverflowEvents = c.agg.overflowEvents
	snap.LateEvents = c.agg.lateEvents
	snap.Totals = c.agg.totalsMap()
	if c.spill != nil {
		snap.SpilledRows = c.spill.rows
		snap.SpilledFiles = c.spill.files
		snap.SpillDir = c.cfg.SpillDir
	}
	return snap
}

// Vars is the cheap accounting export for /debug/vars: producer counters
// plus aggregator occupancy, with no bucket rows materialized — scraping
// it costs a handful of atomic loads and one short lock hold.
type Vars struct {
	Enabled bool `json:"enabled"`
	Counters
	AggBuckets     int    `json:"agg_buckets"`
	AggRows        int    `json:"agg_rows"`
	AggBytes       int64  `json:"agg_bytes"`
	OverflowEvents uint64 `json:"overflow_events"`
	LateEvents     uint64 `json:"late_events"`
	SpilledRows    uint64 `json:"spilled_rows"`
	SpilledFiles   uint64 `json:"spilled_files"`
}

// Vars reads the accounting surface without building bucket snapshots.
func (c *Collector) Vars() Vars {
	v := Vars{Enabled: true, Counters: c.CountersNow()}
	c.mu.Lock()
	defer c.mu.Unlock()
	v.AggBuckets = len(c.agg.buckets)
	v.AggRows = c.agg.rowCount()
	v.AggBytes = c.agg.bytes
	v.OverflowEvents = c.agg.overflowEvents
	v.LateEvents = c.agg.lateEvents
	if c.spill != nil {
		v.SpilledRows = c.spill.rows
		v.SpilledFiles = c.spill.files
	}
	return v
}

// Snapshot is the /admin/analytics response body and the live input to
// adwars-report -live.
type Snapshot struct {
	Enabled    bool     `json:"enabled"`
	Counters   Counters `json:"counters"`
	BucketDurS int      `json:"bucket_dur_s"`
	// Totals are cumulative per-"kind/verdict" decision counts since
	// startup — they survive bucket eviction, which is what makes exact
	// reconciliation possible after spill.
	Totals map[string]uint64 `json:"totals"`
	// AggBuckets/AggRows/AggBytes describe current aggregator occupancy
	// against its configured bounds.
	AggBuckets     int    `json:"agg_buckets"`
	AggRows        int    `json:"agg_rows"`
	AggBytes       int64  `json:"agg_bytes"`
	OverflowEvents uint64 `json:"overflow_events"`
	LateEvents     uint64 `json:"late_events"`
	SpilledRows    uint64 `json:"spilled_rows,omitempty"`
	SpilledFiles   uint64 `json:"spilled_files,omitempty"`
	SpillDir       string `json:"spill_dir,omitempty"`
	// Buckets are the in-memory time buckets, oldest first; spilled
	// buckets are on disk, not here.
	Buckets []BucketSnapshot `json:"buckets"`
}

// BucketSnapshot is one in-memory time bucket rendered for the wire.
type BucketSnapshot struct {
	Start time.Time `json:"start"`
	Total uint64    `json:"total"`
	Rows  []Row     `json:"rows"`
}
