package analytics

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Report is a serving run's coverage dashboard built from spill rows or a
// live snapshot: the online counterpart of the retrospective replay
// figures — top firing rules, per-domain block rates, and the verdict mix
// over time.
type Report struct {
	From, To   time.Time
	BucketDurS int
	Decisions  uint64

	// Timeline is the per-bucket verdict mix, oldest first.
	Timeline []TimelineBucket
	// Rules ranks firing rules by hit count (match events with a rule).
	Rules []RuleCount
	// Domains ranks domains by traffic with their block rates.
	Domains []DomainRate
	// Classify sums classification verdicts across the run.
	ClassifyAntiAdblock uint64
	ClassifyBenign      uint64
	// OverflowEvents counts decisions folded into bucket overflow rows
	// (key-cap evictions) — attributed in time but not by key.
	OverflowEvents uint64
}

// TimelineBucket is one bucket of the verdict-mix timeline.
type TimelineBucket struct {
	Start   time.Time
	Blocked uint64
	Allowed uint64
	NoMatch uint64
	Total   uint64
}

// RuleCount is one entry of the top-firing-rules ranking.
type RuleCount struct {
	Rule    string
	Ordinal int32
	Hits    uint64
}

// DomainRate is one domain's verdict profile.
type DomainRate struct {
	Domain  string
	Total   uint64
	Blocked uint64
}

// BuildReport folds rows (from ReadSpillDir or a Snapshot's buckets) into
// a Report. Rows may arrive in any order and may repeat a bucket (spill +
// live snapshot of the same run); counts add.
func BuildReport(rows []Row) *Report {
	rep := &Report{}
	timeline := make(map[int64]*TimelineBucket)
	rules := make(map[string]*RuleCount)
	domains := make(map[string]*DomainRate)
	for _, row := range rows {
		if rep.BucketDurS == 0 {
			rep.BucketDurS = row.DurS
		}
		if rep.From.IsZero() || row.Bucket.Before(rep.From) {
			rep.From = row.Bucket
		}
		if end := row.Bucket.Add(time.Duration(row.DurS) * time.Second); end.After(rep.To) {
			rep.To = end
		}
		rep.Decisions += row.Count
		if row.Overflow {
			rep.OverflowEvents += row.Count
		}
		switch row.Kind {
		case KindClassify.String():
			if row.Verdict == VerdictAntiAdblock.String() {
				rep.ClassifyAntiAdblock += row.Count
			} else {
				rep.ClassifyBenign += row.Count
			}
			continue
		}
		key := row.Bucket.UnixNano()
		tb := timeline[key]
		if tb == nil {
			tb = &TimelineBucket{Start: row.Bucket}
			timeline[key] = tb
		}
		tb.Total += row.Count
		if row.Overflow {
			// Overflow folds lost their verdict attribution; they count
			// toward the bucket's volume only.
			continue
		}
		switch row.Verdict {
		case VerdictBlocked.String():
			tb.Blocked += row.Count
		case VerdictAllowed.String():
			tb.Allowed += row.Count
		default:
			tb.NoMatch += row.Count
		}
		if row.Rule != "" {
			rc := rules[row.Rule]
			if rc == nil {
				rc = &RuleCount{Rule: row.Rule, Ordinal: row.Ordinal}
				rules[row.Rule] = rc
			}
			rc.Hits += row.Count
		}
		if row.Domain != "" {
			dr := domains[row.Domain]
			if dr == nil {
				dr = &DomainRate{Domain: row.Domain}
				domains[row.Domain] = dr
			}
			dr.Total += row.Count
			if row.Verdict == VerdictBlocked.String() {
				dr.Blocked += row.Count
			}
		}
	}
	for _, tb := range timeline {
		rep.Timeline = append(rep.Timeline, *tb)
	}
	sort.Slice(rep.Timeline, func(i, j int) bool { return rep.Timeline[i].Start.Before(rep.Timeline[j].Start) })
	for _, rc := range rules {
		rep.Rules = append(rep.Rules, *rc)
	}
	sort.Slice(rep.Rules, func(i, j int) bool {
		if rep.Rules[i].Hits != rep.Rules[j].Hits {
			return rep.Rules[i].Hits > rep.Rules[j].Hits
		}
		return rep.Rules[i].Rule < rep.Rules[j].Rule
	})
	for _, dr := range domains {
		rep.Domains = append(rep.Domains, *dr)
	}
	sort.Slice(rep.Domains, func(i, j int) bool {
		if rep.Domains[i].Total != rep.Domains[j].Total {
			return rep.Domains[i].Total > rep.Domains[j].Total
		}
		return rep.Domains[i].Domain < rep.Domains[j].Domain
	})
	return rep
}

// RowsFromSnapshot flattens a live snapshot's in-memory buckets into the
// same row stream a spill file carries.
func RowsFromSnapshot(snap *Snapshot) []Row {
	var rows []Row
	for _, b := range snap.Buckets {
		rows = append(rows, b.Rows...)
	}
	return rows
}

// bar renders an n-cell proportion bar.
func bar(frac float64, cells int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	full := int(frac*float64(cells) + 0.5)
	return strings.Repeat("#", full) + strings.Repeat(".", cells-full)
}

// Render formats the dashboard: verdict mix over time, top firing rules,
// and per-domain block rates — the serving-run analog of the
// retrospective coverage figures. topK bounds the rule and domain tables
// (0 = 10).
func (rep *Report) Render(topK int) string {
	if topK <= 0 {
		topK = 10
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "live serving analytics — %d decisions, %s → %s (%ds buckets)\n",
		rep.Decisions, rep.From.Format("15:04:05"), rep.To.Format("15:04:05"), rep.BucketDurS)
	if rep.OverflowEvents > 0 {
		fmt.Fprintf(&sb, "  (%d decisions in overflow rows: bucket key cap hit)\n", rep.OverflowEvents)
	}

	sb.WriteString("\nverdict mix over time (# = blocked share of match traffic)\n")
	for _, tb := range rep.Timeline {
		frac := 0.0
		if tb.Total > 0 {
			frac = float64(tb.Blocked) / float64(tb.Total)
		}
		fmt.Fprintf(&sb, "  %s |%s| blocked %5.1f%%  allowed %d  no-match %d  (n=%d)\n",
			tb.Start.Format("15:04:05"), bar(frac, 20), 100*frac, tb.Allowed, tb.NoMatch, tb.Total)
	}

	sb.WriteString("\ntop firing rules\n")
	n := topK
	if n > len(rep.Rules) {
		n = len(rep.Rules)
	}
	var ruleHits uint64
	for _, rc := range rep.Rules {
		ruleHits += rc.Hits
	}
	for i := 0; i < n; i++ {
		rc := rep.Rules[i]
		pct := 0.0
		if ruleHits > 0 {
			pct = 100 * float64(rc.Hits) / float64(ruleHits)
		}
		fmt.Fprintf(&sb, "  %2d. %-48s %8d hits (%5.1f%%)\n", i+1, trim(rc.Rule, 48), rc.Hits, pct)
	}
	if len(rep.Rules) == 0 {
		sb.WriteString("  (no rules fired)\n")
	}

	sb.WriteString("\nper-domain block rates (by traffic)\n")
	n = topK
	if n > len(rep.Domains) {
		n = len(rep.Domains)
	}
	for i := 0; i < n; i++ {
		dr := rep.Domains[i]
		frac := 0.0
		if dr.Total > 0 {
			frac = float64(dr.Blocked) / float64(dr.Total)
		}
		fmt.Fprintf(&sb, "  %-32s |%s| %5.1f%% blocked (%d/%d)\n",
			trim(dr.Domain, 32), bar(frac, 20), 100*frac, dr.Blocked, dr.Total)
	}
	if len(rep.Domains) == 0 {
		sb.WriteString("  (no attributed domains)\n")
	}

	if rep.ClassifyAntiAdblock+rep.ClassifyBenign > 0 {
		total := rep.ClassifyAntiAdblock + rep.ClassifyBenign
		fmt.Fprintf(&sb, "\nclassify verdicts: anti-adblock %d (%.1f%%), benign %d\n",
			rep.ClassifyAntiAdblock, 100*float64(rep.ClassifyAntiAdblock)/float64(total), rep.ClassifyBenign)
	}
	return sb.String()
}

// trim shortens s to max runes with an ellipsis.
func trim(s string, max int) string {
	if len(s) <= max {
		return s
	}
	if max <= 3 {
		return s[:max]
	}
	return s[:max-3] + "..."
}
