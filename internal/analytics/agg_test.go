package analytics

import (
	"path/filepath"
	"testing"
	"time"
)

func addEvent(a *aggregator, sw *spillWriter, ts time.Time, domain, rule string, v Verdict) {
	ev := Event{UnixNano: ts.UnixNano(), Kind: KindMatch, Verdict: v, Ordinal: 1, Domain: domain, Rule: rule}
	a.add(&ev, sw)
}

// TestAggregatorBuckets checks bucket alignment, row counting, and the
// cumulative totals.
func TestAggregatorBuckets(t *testing.T) {
	a := newAggregator(10*time.Second, 8, 16)
	base := time.Date(2026, 8, 8, 12, 0, 3, 0, time.UTC)
	addEvent(a, nil, base, "a.example", "||ads^", VerdictBlocked)
	addEvent(a, nil, base.Add(time.Second), "a.example", "||ads^", VerdictBlocked)
	addEvent(a, nil, base.Add(9*time.Second), "b.example", "", VerdictNoMatch) // next bucket (12:00:12)
	if len(a.buckets) != 2 {
		t.Fatalf("buckets = %d, want 2", len(a.buckets))
	}
	first := a.buckets[0]
	if got := time.Unix(0, first.start).UTC(); got != time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC) {
		t.Fatalf("first bucket start = %v", got)
	}
	if first.total != 2 || len(first.rows) != 1 {
		t.Fatalf("first bucket total=%d rows=%d, want 2/1", first.total, len(first.rows))
	}
	tm := a.totalsMap()
	if tm["match/blocked"] != 2 || tm["match/no-match"] != 1 {
		t.Fatalf("totals = %v", tm)
	}
	if a.bytes <= 0 {
		t.Fatal("bytes estimate not tracked")
	}
}

// TestAggregatorBucketEviction drives more buckets than the cap and
// checks that memory stays bounded, evicted rows land in spill, and the
// cumulative totals survive eviction.
func TestAggregatorBucketEviction(t *testing.T) {
	dir := t.TempDir()
	sw, err := newSpillWriter(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	a := newAggregator(time.Second, 4, 16)
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	const buckets = 12
	for i := 0; i < buckets; i++ {
		addEvent(a, sw, base.Add(time.Duration(i)*time.Second), "dom.example", "||ads^", VerdictBlocked)
	}
	if len(a.buckets) != 4 {
		t.Fatalf("retained %d buckets, cap is 4", len(a.buckets))
	}
	if a.rowCount() != 4 {
		t.Fatalf("rowCount = %d, want 4", a.rowCount())
	}
	if a.totalsMap()["match/blocked"] != buckets {
		t.Fatalf("totals lost events across eviction: %v", a.totalsMap())
	}
	// The 8 evicted buckets each spilled their single row.
	if err := sw.close(); err != nil {
		t.Fatal(err)
	}
	rows, err := ReadSpillDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != buckets-4 {
		t.Fatalf("spilled %d rows, want %d", len(rows), buckets-4)
	}
	// Expired-time eviction flushes the rest.
	sw2, err := newSpillWriter(filepath.Join(dir, "late"), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	a.evictExpired(base.Add(time.Hour).UnixNano(), sw2)
	if len(a.buckets) != 0 {
		t.Fatalf("evictExpired left %d buckets", len(a.buckets))
	}
	if a.bytes != 0 {
		t.Fatalf("bytes estimate = %d after full eviction, want 0", a.bytes)
	}
}

// TestAggregatorKeyCapOverflow floods one bucket with distinct keys: past
// the cap new keys must fold into the overflow row, keeping memory
// bounded, while known keys still count normally.
func TestAggregatorKeyCapOverflow(t *testing.T) {
	a := newAggregator(time.Minute, 2, 4)
	base := time.Date(2026, 8, 8, 12, 0, 30, 0, time.UTC)
	for i := 0; i < 10; i++ {
		addEvent(a, nil, base, string(rune('a'+i))+".example", "", VerdictNoMatch)
	}
	// A repeat of a retained key still lands on its row.
	addEvent(a, nil, base, "a.example", "", VerdictNoMatch)
	b := a.buckets[0]
	if len(b.rows) != 4 {
		t.Fatalf("rows = %d, want cap 4", len(b.rows))
	}
	if b.overflow != 6 {
		t.Fatalf("overflow = %d, want 6", b.overflow)
	}
	if a.overflowEvents != 6 {
		t.Fatalf("overflowEvents = %d, want 6", a.overflowEvents)
	}
	if b.total != 11 {
		t.Fatalf("total = %d, want 11", b.total)
	}
	rows := bucketRows(b, time.Minute)
	last := rows[len(rows)-1]
	if !last.Overflow || last.Count != 6 {
		t.Fatalf("overflow row = %+v", last)
	}
}

// TestAggregatorLateEvents sends an event older than every retained
// bucket: it must fold into the oldest bucket and tick the late counter
// instead of resurrecting an evicted window.
func TestAggregatorLateEvents(t *testing.T) {
	a := newAggregator(time.Second, 2, 16)
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 4; i++ { // buckets 0..3, retention 2 → keeps 2,3
		addEvent(a, nil, base.Add(time.Duration(i)*time.Second), "d.example", "", VerdictNoMatch)
	}
	addEvent(a, nil, base, "late.example", "", VerdictNoMatch)
	if a.lateEvents != 1 {
		t.Fatalf("lateEvents = %d, want 1", a.lateEvents)
	}
	if len(a.buckets) != 2 {
		t.Fatalf("buckets = %d, want 2", len(a.buckets))
	}
	if a.buckets[0].total != 2 {
		t.Fatalf("late event not folded into oldest bucket: total = %d", a.buckets[0].total)
	}
}

// TestAggregatorKeyCloning proves aggregator keys do not alias the
// event's strings (which belong to the producer and get recycled).
func TestAggregatorKeyCloning(t *testing.T) {
	a := newAggregator(time.Minute, 2, 16)
	buf := []byte("mutable.example")
	ev := Event{UnixNano: time.Now().UnixNano(), Kind: KindMatch, Verdict: VerdictBlocked, Domain: string(buf)}
	a.add(&ev, nil)
	for k := range a.buckets[0].rows {
		if k.domain != "mutable.example" {
			t.Fatalf("key domain = %q", k.domain)
		}
	}
}
