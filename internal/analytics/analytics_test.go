package analytics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// waitFor polls cond for up to 2s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCollectorEndToEnd records concurrently at sampling 1.0 and checks
// that every event lands in the aggregator totals exactly once, then that
// Close flushes the final state to spill.
func TestCollectorEndToEnd(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCollector(Config{
		SampleRate:    1,
		Shards:        4,
		RingSize:      256,
		BucketDur:     time.Second,
		SpillDir:      dir,
		DrainInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	const writers = 4
	const perWriter = 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				v := VerdictBlocked
				if i%3 == 0 {
					v = VerdictNoMatch
				}
				c.Record(Event{
					UnixNano: time.Now().UnixNano(),
					Kind:     KindMatch,
					Verdict:  v,
					Ordinal:  int32(i % 7),
					Domain:   "dom.example",
					Rule:     "||ads^",
				})
			}
		}(w)
	}
	wg.Wait()

	const sent = writers * perWriter
	waitFor(t, "consumer to drain all rings", func() bool {
		snap := c.Snapshot()
		var agg uint64
		for _, n := range snap.Totals {
			agg += n
		}
		return agg+snap.Counters.Dropped == sent
	})
	snap := c.Snapshot()
	if snap.Counters.SampledOut != 0 {
		t.Fatalf("sampledOut = %d at rate 1.0", snap.Counters.SampledOut)
	}
	if snap.Counters.Recorded+snap.Counters.Dropped != sent {
		t.Fatalf("recorded %d + dropped %d != sent %d",
			snap.Counters.Recorded, snap.Counters.Dropped, sent)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Everything the aggregator held must now be on disk.
	rows, err := ReadSpillDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var spilled uint64
	for _, r := range rows {
		spilled += r.Count
	}
	if spilled != snap.Counters.Recorded {
		t.Fatalf("spill carries %d decisions, recorded %d", spilled, snap.Counters.Recorded)
	}
	if c.Close() != nil { // idempotent
		t.Fatal("second Close errored")
	}
}

// TestCollectorExactAtFullSampling is the reconciliation contract: at
// sampling 1.0 with rings large enough to never drop, the totals equal
// the client-side ledger exactly.
func TestCollectorExactAtFullSampling(t *testing.T) {
	c, err := NewCollector(Config{SampleRate: 1, RingSize: 1 << 14, BucketDur: time.Second, DrainInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	want := map[string]uint64{}
	for i := 0; i < 5000; i++ {
		v := []Verdict{VerdictBlocked, VerdictAllowed, VerdictNoMatch}[i%3]
		c.Record(Event{UnixNano: time.Now().UnixNano(), Kind: KindMatch, Verdict: v, Ordinal: -1})
		want["match/"+v.String()]++
	}
	for i := 0; i < 100; i++ {
		c.Record(Event{UnixNano: time.Now().UnixNano(), Kind: KindClassify, Verdict: VerdictAntiAdblock, Ordinal: -1})
		want["classify/anti-adblock"]++
	}
	waitFor(t, "totals to reconcile exactly", func() bool {
		snap := c.Snapshot()
		if snap.Counters.Dropped != 0 {
			t.Fatalf("dropped %d with an oversized ring", snap.Counters.Dropped)
		}
		if len(snap.Totals) != len(want) {
			return false
		}
		for k, n := range want {
			if snap.Totals[k] != n {
				return false
			}
		}
		return true
	})
}

// TestSamplerRates checks the sampler's two contracts: exactness at 1.0
// and a roughly proportional keep rate below it, with every skip counted.
func TestSamplerRates(t *testing.T) {
	s := newSampler(1)
	for i := 0; i < 1000; i++ {
		if !s.keep() {
			t.Fatal("sampler at 1.0 skipped an event")
		}
	}
	s = newSampler(0.25)
	kept := 0
	const n = 200000
	for i := 0; i < n; i++ {
		if s.keep() {
			kept++
		}
	}
	frac := float64(kept) / n
	if frac < 0.22 || frac > 0.28 {
		t.Fatalf("keep rate %.3f at configured 0.25", frac)
	}
}

// TestCollectorSampledOutAccounting runs a sampled collector and checks
// recorded + sampledOut + dropped == sent.
func TestCollectorSampledOutAccounting(t *testing.T) {
	c, err := NewCollector(Config{SampleRate: 0.5, RingSize: 1 << 14, DrainInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const sent = 10000
	for i := 0; i < sent; i++ {
		c.Record(Event{UnixNano: time.Now().UnixNano(), Kind: KindMatch, Verdict: VerdictNoMatch, Ordinal: -1})
	}
	cn := c.CountersNow()
	if cn.Recorded+cn.SampledOut+cn.Dropped != sent {
		t.Fatalf("recorded %d + sampledOut %d + dropped %d != %d",
			cn.Recorded, cn.SampledOut, cn.Dropped, sent)
	}
	if cn.SampledOut == 0 || cn.Recorded == 0 {
		t.Fatalf("degenerate split: %+v", cn)
	}
}

// TestRecordZeroAllocs pins the hot-path contract: recording allocates
// nothing, whether the event is kept or sampled out.
func TestRecordZeroAllocs(t *testing.T) {
	c, err := NewCollector(Config{SampleRate: 1, RingSize: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ev := Event{UnixNano: 123, Kind: KindMatch, Verdict: VerdictBlocked, Ordinal: 4,
		Domain: "dom.example", Rule: "||ads^"}
	allocs := testing.AllocsPerRun(1000, func() { c.Record(ev) })
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f/op, want 0", allocs)
	}
}

// TestSampleOverride checks the governor lever: an override forces the
// effective rate down, shows up in the counters, and Clear restores the
// configured rate exactly.
func TestSampleOverride(t *testing.T) {
	c, err := NewCollector(Config{SampleRate: 1, RingSize: 1 << 14, DrainInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const burst = 10000
	for i := 0; i < burst; i++ {
		c.Record(Event{UnixNano: 1, Kind: KindMatch, Verdict: VerdictNoMatch, Ordinal: -1})
	}
	cn := c.CountersNow()
	if cn.SampledOut != 0 || cn.EffectiveRate != 1 {
		t.Fatalf("before override: sampledOut=%d effective=%.2f, want 0/1.0", cn.SampledOut, cn.EffectiveRate)
	}

	c.SetSampleOverride(0.1)
	if got := c.CountersNow().EffectiveRate; got != 0.1 {
		t.Fatalf("effective rate under override = %.2f, want 0.1", got)
	}
	for i := 0; i < burst; i++ {
		c.Record(Event{UnixNano: 1, Kind: KindMatch, Verdict: VerdictNoMatch, Ordinal: -1})
	}
	cn = c.CountersNow()
	// At override 0.1 the overwhelming majority of the burst must be
	// sampled out (loose band: splitmix64 keeps ~10%).
	if cn.SampledOut < burst/2 {
		t.Fatalf("override 0.1 sampled out only %d of %d", cn.SampledOut, burst)
	}
	if cn.SampleRate != 1 {
		t.Fatalf("configured rate mutated to %.2f under override", cn.SampleRate)
	}

	c.ClearSampleOverride()
	if got := c.CountersNow().EffectiveRate; got != 1 {
		t.Fatalf("effective rate after clear = %.2f, want 1.0", got)
	}
	before := c.CountersNow().SampledOut
	for i := 0; i < burst; i++ {
		c.Record(Event{UnixNano: 1, Kind: KindMatch, Verdict: VerdictNoMatch, Ordinal: -1})
	}
	if got := c.CountersNow().SampledOut; got != before {
		t.Fatalf("events sampled out after clear: %d -> %d", before, got)
	}
}

// TestRecordZeroAllocsUnderOverride pins that the override path adds no
// allocations to Record.
func TestRecordZeroAllocsUnderOverride(t *testing.T) {
	c, err := NewCollector(Config{SampleRate: 1, RingSize: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetSampleOverride(0.5)
	ev := Event{UnixNano: 123, Kind: KindMatch, Verdict: VerdictBlocked, Ordinal: 4,
		Domain: "dom.example", Rule: "||ads^"}
	allocs := testing.AllocsPerRun(1000, func() { c.Record(ev) })
	if allocs != 0 {
		t.Fatalf("Record under override allocates %.1f/op, want 0", allocs)
	}
}

// TestReportFromRows exercises the report builder and renderer over a
// hand-built row set.
func TestReportFromRows(t *testing.T) {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	rows := []Row{
		{Bucket: base, DurS: 10, Kind: "match", Verdict: "blocked", Domain: "ads.example", Rule: "||ads.example^", Ordinal: 0, Count: 30},
		{Bucket: base, DurS: 10, Kind: "match", Verdict: "no-match", Domain: "clean.example", Ordinal: -1, Count: 70},
		{Bucket: base.Add(10 * time.Second), DurS: 10, Kind: "match", Verdict: "blocked", Domain: "ads.example", Rule: "||ads.example^", Ordinal: 0, Count: 10},
		{Bucket: base.Add(10 * time.Second), DurS: 10, Kind: "match", Verdict: "allowed", Domain: "ads.example", Rule: "@@||ads.example/ok", Ordinal: 1, Count: 5},
		{Bucket: base, DurS: 10, Kind: "classify", Verdict: "anti-adblock", Count: 3},
		{Bucket: base, DurS: 10, Kind: "classify", Verdict: "benign", Count: 17},
	}
	rep := BuildReport(rows)
	if rep.Decisions != 135 {
		t.Fatalf("decisions = %d, want 135", rep.Decisions)
	}
	if len(rep.Timeline) != 2 || rep.Timeline[0].Blocked != 30 || rep.Timeline[1].Allowed != 5 {
		t.Fatalf("timeline = %+v", rep.Timeline)
	}
	if len(rep.Rules) != 2 || rep.Rules[0].Rule != "||ads.example^" || rep.Rules[0].Hits != 40 {
		t.Fatalf("rules = %+v", rep.Rules)
	}
	if len(rep.Domains) != 2 || rep.Domains[0].Domain != "clean.example" {
		t.Fatalf("domains = %+v", rep.Domains)
	}
	if rep.ClassifyAntiAdblock != 3 || rep.ClassifyBenign != 17 {
		t.Fatalf("classify = %d/%d", rep.ClassifyAntiAdblock, rep.ClassifyBenign)
	}
	out := rep.Render(10)
	for _, want := range []string{
		"verdict mix over time", "top firing rules", "per-domain block rates",
		"||ads.example^", "clean.example", "anti-adblock 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// TestReportSnapshotRows proves the live endpoint path feeds the same
// builder: snapshot bucket rows → report.
func TestReportSnapshotRows(t *testing.T) {
	c, err := NewCollector(Config{SampleRate: 1, BucketDur: time.Minute, DrainInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Record(Event{UnixNano: time.Now().UnixNano(), Kind: KindMatch, Verdict: VerdictBlocked,
		Ordinal: 2, Domain: "ads.example", Rule: "||ads^"})
	waitFor(t, "event to reach a bucket", func() bool {
		return len(c.Snapshot().Buckets) > 0
	})
	snap := c.Snapshot()
	rep := BuildReport(RowsFromSnapshot(&snap))
	if rep.Decisions != 1 || len(rep.Rules) != 1 || rep.Rules[0].Rule != "||ads^" {
		t.Fatalf("report from snapshot = %+v", rep)
	}
}
