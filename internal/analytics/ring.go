// Package analytics is the decision analytics pipeline behind the
// serving data plane: a lock-free, per-shard ring-buffered event log that
// the /v1/match and /v1/classify verdict paths write into without ever
// blocking (a full ring drops the event and says so in a counter), a
// background consumer that drains the rings into a streaming aggregator
// with bounded-memory time buckets keyed by domain / rule / verdict, and
// a JSONL spill with rotation so a serving run leaves a replayable record
// that adwars-report -live turns into coverage dashboards comparable to
// the retrospective replay figures.
package analytics

import "sync/atomic"

// Kind says which decision endpoint produced an event.
type Kind uint8

const (
	KindMatch Kind = iota
	KindClassify
)

func (k Kind) String() string {
	if k == KindClassify {
		return "classify"
	}
	return "match"
}

// KindFromString is the inverse of Kind.String for spill-row decoding.
func KindFromString(s string) Kind {
	if s == "classify" {
		return KindClassify
	}
	return KindMatch
}

// Verdict is the decision outcome an event records. Match events use the
// merged-list decision (blocked / allowed / no-match); classify events
// use the model's binary call (anti-adblock / benign).
type Verdict uint8

const (
	VerdictNoMatch Verdict = iota
	VerdictBlocked
	VerdictAllowed
	VerdictAntiAdblock
	VerdictBenign
	verdictCount // sentinel for fixed-size totals arrays
)

var verdictNames = [verdictCount]string{
	"no-match", "blocked", "allowed", "anti-adblock", "benign",
}

func (v Verdict) String() string {
	if int(v) < len(verdictNames) {
		return verdictNames[v]
	}
	return "no-match"
}

// VerdictFromString is the inverse of Verdict.String for spill-row
// decoding; unknown strings map to no-match.
func VerdictFromString(s string) Verdict {
	for i, n := range verdictNames {
		if n == s {
			return Verdict(i)
		}
	}
	return VerdictNoMatch
}

// Event is one recorded decision. The string fields alias memory the
// producer already owns (the decoded request's domain, the compiled
// list's rule text), so recording an event allocates nothing; the
// consumer copies what it keeps before the slot is reused.
type Event struct {
	// UnixNano is the decision timestamp.
	UnixNano int64
	Kind     Kind
	Verdict  Verdict
	// Ordinal is the winning rule's insertion ordinal within its list
	// (-1 when no rule fired or the event is a classification).
	Ordinal int32
	// Domain attributes the decision: the query's page domain when given,
	// else the request URL's host; empty for classifications.
	Domain string
	// Rule is the winning rule's raw text ("" when none fired).
	Rule string
}

// slot is one ring cell: Vyukov's per-slot sequence number plus the
// payload. seq == index means "free for the producer whose position is
// index"; seq == index+1 means "filled, waiting for the consumer".
type slot struct {
	seq atomic.Uint64
	ev  Event
}

// ring is a bounded lock-free multi-producer / single-consumer event
// queue (Vyukov's bounded queue specialized to one consumer). Producers
// never block and never spin unbounded: when the ring is full the event
// is dropped on the floor and the drop counter ticks — backpressure on
// the serving hot path is never an option, losing telemetry is.
type ring struct {
	slots []slot
	mask  uint64
	head  atomic.Uint64 // next producer position
	tail  atomic.Uint64 // next consumer position (single consumer; atomic so occupancy reads are clean)
	drops atomic.Uint64 // events refused because the ring was full
}

// newRing builds a ring with capacity rounded up to a power of two.
func newRing(size int) *ring {
	n := 1
	for n < size {
		n <<= 1
	}
	r := &ring{slots: make([]slot, n), mask: uint64(n - 1)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// push enqueues one event, returning false (and counting a drop) when the
// ring is full. It is safe for any number of concurrent producers.
func (r *ring) push(ev *Event) bool {
	pos := r.head.Load()
	for {
		s := &r.slots[pos&r.mask]
		seq := s.seq.Load()
		switch {
		case seq == pos:
			// The slot is free for this position; claim it. A producer that
			// wins the CAS but is descheduled before the seq store below
			// just makes the slot look not-ready — the consumer skips it and
			// later producers see "full", never a torn event.
			if r.head.CompareAndSwap(pos, pos+1) {
				s.ev = *ev
				s.seq.Store(pos + 1)
				return true
			}
			pos = r.head.Load()
		case seq < pos:
			// The slot still holds an event from one lap ago: full.
			r.drops.Add(1)
			return false
		default:
			// Another producer claimed this position; reload and retry.
			pos = r.head.Load()
		}
	}
}

// pop dequeues one event into ev, returning false when the ring is empty
// (or the next slot's producer has not finished its store yet). Single
// consumer only.
func (r *ring) pop(ev *Event) bool {
	pos := r.tail.Load()
	s := &r.slots[pos&r.mask]
	if s.seq.Load() != pos+1 {
		return false
	}
	*ev = s.ev
	// Clear the payload before recycling so the ring does not pin request
	// bodies and rule text for a whole lap.
	s.ev = Event{}
	s.seq.Store(pos + uint64(len(r.slots)))
	r.tail.Store(pos + 1)
	return true
}

// occupancy is the number of events currently buffered (approximate under
// concurrent pushes).
func (r *ring) occupancy() int {
	h, t := r.head.Load(), r.tail.Load()
	if h < t {
		return 0
	}
	return int(h - t)
}
