package analytics

import (
	"sync"
	"testing"
)

func evN(n int) Event {
	return Event{UnixNano: int64(n), Kind: KindMatch, Verdict: VerdictBlocked, Ordinal: int32(n)}
}

// TestRingWraparound pushes and pops many multiples of the capacity
// through a small ring, checking order and content across every lap.
func TestRingWraparound(t *testing.T) {
	r := newRing(8)
	if len(r.slots) != 8 {
		t.Fatalf("capacity = %d, want 8", len(r.slots))
	}
	var got Event
	next := 0
	for i := 0; i < 1000; i++ {
		ev := evN(i)
		if !r.push(&ev) {
			t.Fatalf("push %d refused with room available", i)
		}
		if i%3 == 2 { // drain in bursts so the ring laps repeatedly
			for r.pop(&got) {
				if got.Ordinal != int32(next) {
					t.Fatalf("popped ordinal %d, want %d", got.Ordinal, next)
				}
				next++
			}
		}
	}
	for r.pop(&got) {
		if got.Ordinal != int32(next) {
			t.Fatalf("popped ordinal %d, want %d", got.Ordinal, next)
		}
		next++
	}
	if next != 1000 {
		t.Fatalf("popped %d events, want 1000", next)
	}
	if d := r.drops.Load(); d != 0 {
		t.Fatalf("drops = %d, want 0", d)
	}
}

// TestRingOverflowDropsAccounted fills the ring past capacity: the
// overflow must be refused (not block, not overwrite) and every refusal
// must tick the drop counter; after a drain the ring accepts again.
func TestRingOverflowDropsAccounted(t *testing.T) {
	r := newRing(8)
	accepted := 0
	for i := 0; i < 20; i++ {
		ev := evN(i)
		if r.push(&ev) {
			accepted++
		}
	}
	if accepted != 8 {
		t.Fatalf("accepted %d events into an 8-slot ring, want 8", accepted)
	}
	if d := r.drops.Load(); d != 12 {
		t.Fatalf("drops = %d, want 12", d)
	}
	if occ := r.occupancy(); occ != 8 {
		t.Fatalf("occupancy = %d, want 8", occ)
	}
	// Drain and verify the survivors are the first 8, in order.
	var got Event
	for i := 0; i < 8; i++ {
		if !r.pop(&got) {
			t.Fatalf("pop %d failed on a full ring", i)
		}
		if got.Ordinal != int32(i) {
			t.Fatalf("popped ordinal %d, want %d", got.Ordinal, i)
		}
	}
	if r.pop(&got) {
		t.Fatal("pop succeeded on an empty ring")
	}
	// The freed slots take new events without residue.
	ev := evN(99)
	if !r.push(&ev) {
		t.Fatal("push refused after drain")
	}
	if !r.pop(&got) || got.Ordinal != 99 {
		t.Fatalf("post-drain round-trip got %+v", got)
	}
}

// TestRingConcurrentWriters hammers one ring from many producers while a
// single consumer drains — under -race this is the lock-freedom proof.
// Every pushed event must be either consumed or counted as a drop.
func TestRingConcurrentWriters(t *testing.T) {
	r := newRing(64)
	const producers = 8
	const perProducer = 5000

	var consumed uint64
	seen := make(map[int32]int)
	done := make(chan struct{})
	consumerDone := make(chan struct{})
	go func() {
		defer close(consumerDone)
		var ev Event
		for {
			progressed := false
			for r.pop(&ev) {
				consumed++
				seen[ev.Ordinal]++
				progressed = true
			}
			if !progressed {
				select {
				case <-done:
					// Final sweep after producers stopped.
					for r.pop(&ev) {
						consumed++
						seen[ev.Ordinal]++
					}
					return
				default:
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				ev := Event{Ordinal: int32(p), UnixNano: int64(i)}
				r.push(&ev)
			}
		}(p)
	}
	wg.Wait()
	close(done)
	<-consumerDone

	dropped := r.drops.Load()
	if consumed+dropped != producers*perProducer {
		t.Fatalf("consumed %d + dropped %d != sent %d", consumed, dropped, producers*perProducer)
	}
	if consumed == 0 {
		t.Fatal("consumer saw nothing")
	}
	// Per-producer accounting must also balance (no cross-slot tearing).
	var perP uint64
	for _, n := range seen {
		perP += uint64(n)
	}
	if perP != consumed {
		t.Fatalf("per-producer sum %d != consumed %d", perP, consumed)
	}
}
