package analytics

import (
	"sort"
	"time"
)

// aggKey identifies one aggregation row inside a time bucket. Domain and
// rule are copied out of the event on first sight (events alias
// producer-owned memory that must not be pinned past the drain).
type aggKey struct {
	domain  string
	rule    string
	ordinal int32
	kind    Kind
	verdict Verdict
}

// bucket is one time window's counters.
type bucket struct {
	start    int64 // aligned unix nanos
	rows     map[aggKey]uint64
	overflow uint64 // events folded here once rows hit the key cap
	total    uint64
}

// aggregator folds drained events into bounded-memory time buckets. It is
// single-writer (the consumer goroutine) with snapshot readers, both
// under the collector's mutex; nothing here is called from the recording
// hot path.
type aggregator struct {
	dur        time.Duration
	maxBuckets int
	maxKeys    int
	buckets    []*bucket // ordered by start ascending
	// bytes estimates aggregator heap occupancy: per-row fixed overhead
	// plus the copied key strings. It only moves on insert/evict, so
	// reading it is free.
	bytes int64
	// totals is the cumulative per-kind/verdict decision count since
	// startup. Bucket eviction never touches it — reconciliation against
	// a client-side ledger stays exact across spills.
	totals         [2][verdictCount]uint64
	overflowEvents uint64
	lateEvents     uint64
}

// rowOverhead approximates the fixed per-row cost: the map entry (key
// struct + value + bucket slot overhead).
const rowOverhead = 96

func newAggregator(dur time.Duration, maxBuckets, maxKeys int) *aggregator {
	return &aggregator{dur: dur, maxBuckets: maxBuckets, maxKeys: maxKeys}
}

// add folds one event into its time bucket, creating (and bounding)
// buckets as needed; a bucket evicted to make room spills through sw.
func (a *aggregator) add(ev *Event, sw *spillWriter) {
	kindIdx := 0
	if ev.Kind == KindClassify {
		kindIdx = 1
	}
	a.totals[kindIdx][ev.Verdict]++

	start := ev.UnixNano - ev.UnixNano%int64(a.dur)
	b := a.bucketFor(start, sw)
	if b == nil {
		// Older than the oldest retained bucket: count it there rather
		// than resurrecting an evicted window.
		a.lateEvents++
		if len(a.buckets) == 0 {
			return
		}
		b = a.buckets[0]
	}
	b.total++
	key := aggKey{domain: ev.Domain, rule: ev.Rule, ordinal: ev.Ordinal, kind: ev.Kind, verdict: ev.Verdict}
	if _, ok := b.rows[key]; !ok && len(b.rows) >= a.maxKeys {
		b.overflow++
		a.overflowEvents++
		return
	}
	if _, ok := b.rows[key]; !ok {
		// Copy the aliased strings before they outlive the drain cycle.
		key.domain = cloneString(ev.Domain)
		key.rule = cloneString(ev.Rule)
		a.bytes += rowOverhead + int64(len(key.domain)+len(key.rule))
	}
	b.rows[key]++
}

// cloneString forces a fresh allocation so aggregator keys never alias
// producer-owned buffers.
func cloneString(s string) string {
	if s == "" {
		return ""
	}
	return string(append([]byte(nil), s...))
}

// bucketFor returns (creating if needed) the bucket with the given
// aligned start, evicting (and spilling) the oldest bucket when the cap
// is hit. It returns nil for a start older than every retained bucket.
func (a *aggregator) bucketFor(start int64, sw *spillWriter) *bucket {
	// The common case is the newest bucket; scan from the end.
	for i := len(a.buckets) - 1; i >= 0; i-- {
		if a.buckets[i].start == start {
			return a.buckets[i]
		}
		if a.buckets[i].start < start {
			// Insert after i: a fresh window, possibly out of order when
			// shards drained interleaved across a bucket boundary.
			b := &bucket{start: start, rows: make(map[aggKey]uint64)}
			a.buckets = append(a.buckets, nil)
			copy(a.buckets[i+2:], a.buckets[i+1:])
			a.buckets[i+1] = b
			a.enforceCap(sw)
			return b
		}
	}
	if len(a.buckets) == 0 {
		b := &bucket{start: start, rows: make(map[aggKey]uint64)}
		a.buckets = append(a.buckets, b)
		return b
	}
	return nil
}

// enforceCap evicts oldest buckets past the retention cap, spilling their
// rows. The new bucket is never the front (it inserts after an older
// one), so it always survives its own admission.
func (a *aggregator) enforceCap(sw *spillWriter) {
	for len(a.buckets) > a.maxBuckets {
		a.retire(a.buckets[0], sw)
		a.buckets = a.buckets[1:]
	}
}

// evictExpired retires buckets whose window ended more than the retention
// span ago, spilling their rows.
func (a *aggregator) evictExpired(nowNano int64, sw *spillWriter) {
	horizon := nowNano - int64(a.dur)*int64(a.maxBuckets)
	for len(a.buckets) > 0 && a.buckets[0].start+int64(a.dur) <= horizon {
		a.retire(a.buckets[0], sw)
		a.buckets = a.buckets[1:]
	}
}

// flushAll retires every bucket (shutdown path).
func (a *aggregator) flushAll(sw *spillWriter) {
	for _, b := range a.buckets {
		a.retire(b, sw)
	}
	a.buckets = nil
}

// retire spills a bucket's rows (when a writer is configured) and
// releases its memory accounting.
func (a *aggregator) retire(b *bucket, sw *spillWriter) {
	if sw != nil {
		for _, row := range bucketRows(b, a.dur) {
			sw.write(&row)
		}
	}
	for k := range b.rows {
		a.bytes -= rowOverhead + int64(len(k.domain)+len(k.rule))
	}
}

// rowCount sums rows across retained buckets.
func (a *aggregator) rowCount() int {
	n := 0
	for _, b := range a.buckets {
		n += len(b.rows)
	}
	return n
}

// totalsMap renders the cumulative totals as "kind/verdict" → count,
// omitting zero cells.
func (a *aggregator) totalsMap() map[string]uint64 {
	out := make(map[string]uint64)
	for ki, kindTotals := range a.totals {
		kind := Kind(ki)
		for vi, n := range kindTotals {
			if n == 0 {
				continue
			}
			out[kind.String()+"/"+Verdict(vi).String()] = n
		}
	}
	return out
}

// bucketRows renders one bucket's rows in deterministic order (count
// descending, then key ascending), with the overflow fold as a final
// marked row.
func bucketRows(b *bucket, dur time.Duration) []Row {
	rows := make([]Row, 0, len(b.rows)+1)
	for k, n := range b.rows {
		rows = append(rows, Row{
			Bucket:  time.Unix(0, b.start).UTC(),
			DurS:    int(dur / time.Second),
			Kind:    k.kind.String(),
			Verdict: k.verdict.String(),
			Domain:  k.domain,
			Rule:    k.rule,
			Ordinal: k.ordinal,
			Count:   n,
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		if rows[i].Domain != rows[j].Domain {
			return rows[i].Domain < rows[j].Domain
		}
		if rows[i].Rule != rows[j].Rule {
			return rows[i].Rule < rows[j].Rule
		}
		return rows[i].Verdict < rows[j].Verdict
	})
	if b.overflow > 0 {
		rows = append(rows, Row{
			Bucket:   time.Unix(0, b.start).UTC(),
			DurS:     int(dur / time.Second),
			Kind:     KindMatch.String(),
			Verdict:  VerdictNoMatch.String(),
			Ordinal:  -1,
			Count:    b.overflow,
			Overflow: true,
		})
	}
	return rows
}

// bucketSnapshots renders every retained bucket oldest-first.
func (a *aggregator) bucketSnapshots() []BucketSnapshot {
	out := make([]BucketSnapshot, 0, len(a.buckets))
	for _, b := range a.buckets {
		out = append(out, BucketSnapshot{
			Start: time.Unix(0, b.start).UTC(),
			Total: b.total,
			Rows:  bucketRows(b, a.dur),
		})
	}
	return out
}
