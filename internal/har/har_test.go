package har

import (
	"strings"
	"testing"
	"time"

	"adwars/internal/abp"
)

func sampleLog() *Log {
	l := New("adwars-crawler")
	t0 := time.Date(2015, 6, 1, 12, 0, 0, 0, time.UTC)
	pid := l.AddPage("http://dailynews.com/", t0)
	l.AddEntry(pid, "http://dailynews.com/", abp.TypeDocument, 200, "<html></html>", t0)
	l.AddEntry(pid, "http://pagefair.com/static/adblock_detection/js/d.min.js",
		abp.TypeScript, 200, "var x = 1;", t0.Add(time.Second))
	l.AddEntry(pid, "http://img.dailynews.com/logo.png", abp.TypeImage, 200, "PNG", t0.Add(2*time.Second))
	return l
}

func TestMarshalRoundTrip(t *testing.T) {
	l := sampleLog()
	data, err := Marshal(l)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"log"`) {
		t.Fatal("missing log envelope")
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Entries) != 3 || len(back.Pages) != 1 {
		t.Fatalf("round trip lost data: %d entries %d pages", len(back.Entries), len(back.Pages))
	}
	if back.Entries[1].Request.URL != l.Entries[1].Request.URL {
		t.Fatal("entry URL mismatch")
	}
	if back.Entries[1].Response.Content.Text != "var x = 1;" {
		t.Fatal("script body lost")
	}
	if back.Version != "1.2" {
		t.Fatalf("version = %q", back.Version)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte("not json")); err == nil {
		t.Error("invalid JSON must error")
	}
	if _, err := Unmarshal([]byte(`{"notlog": {}}`)); err == nil {
		t.Error("missing envelope must error")
	}
}

func TestURLs(t *testing.T) {
	l := sampleLog()
	urls := l.URLs()
	if len(urls) != 3 {
		t.Fatalf("URLs = %v", urls)
	}
	if urls[1] != "http://pagefair.com/static/adblock_detection/js/d.min.js" {
		t.Fatalf("urls[1] = %q", urls[1])
	}
}

func TestUnion(t *testing.T) {
	a := sampleLog()
	b := sampleLog() // identical URLs → dedup to 3
	extra := New("adwars-crawler")
	pid := extra.AddPage("refresh", time.Now().UTC())
	extra.AddEntry(pid, "http://dailynews.com/refresh.js", abp.TypeScript, 200, "", time.Now().UTC())

	u := Union(a, b, extra)
	if len(u.Entries) != 4 {
		t.Fatalf("union entries = %d, want 4", len(u.Entries))
	}
	if Union().Entries != nil {
		t.Error("empty union should have no entries")
	}
}

func TestMimeFor(t *testing.T) {
	cases := map[abp.RequestType]string{
		abp.TypeScript:     "application/javascript",
		abp.TypeImage:      "image/png",
		abp.TypeStylesheet: "text/css",
		abp.TypeDocument:   "text/html",
		abp.TypeOther:      "application/octet-stream",
	}
	for typ, want := range cases {
		if got := mimeFor(typ); got != want {
			t.Errorf("mimeFor(%s) = %q, want %q", typ, got, want)
		}
	}
}

func TestSizeReflectsContent(t *testing.T) {
	small := New("c")
	big := sampleLog()
	if small.Size() >= big.Size() {
		t.Fatalf("size: small=%d big=%d", small.Size(), big.Size())
	}
	if big.Size() <= 0 {
		t.Fatal("size must be positive")
	}
}
