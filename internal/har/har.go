// Package har implements the HTTP Archive (HAR) 1.2 format the crawler
// stores request/response logs in, mirroring the paper's Firebug+NetExport
// pipeline. Only the fields the measurement consumes are modeled; encoding
// is standard JSON so the archives are interoperable.
package har

import (
	"encoding/json"
	"fmt"
	"time"

	"adwars/internal/abp"
)

// Log is the top-level HAR structure.
type Log struct {
	Version string  `json:"version"`
	Creator Creator `json:"creator"`
	Pages   []Page  `json:"pages"`
	Entries []Entry `json:"entries"`
}

// Creator identifies the producing tool.
type Creator struct {
	Name    string `json:"name"`
	Version string `json:"version"`
}

// Page is one visited page.
type Page struct {
	StartedDateTime time.Time `json:"startedDateTime"`
	ID              string    `json:"id"`
	Title           string    `json:"title"`
}

// Entry is one request/response pair.
type Entry struct {
	PageRef         string    `json:"pageref"`
	StartedDateTime time.Time `json:"startedDateTime"`
	Request         Request   `json:"request"`
	Response        Response  `json:"response"`
}

// Request is the request half of an entry.
type Request struct {
	Method string `json:"method"`
	URL    string `json:"url"`
	// ResourceType is a non-standard extension (browsers emit one too,
	// e.g. _resourceType) carrying the adblocker-relevant request type.
	ResourceType string `json:"_resourceType,omitempty"`
}

// Response is the response half of an entry.
type Response struct {
	Status  int     `json:"status"`
	Content Content `json:"content"`
}

// Content describes the response body.
type Content struct {
	Size     int    `json:"size"`
	MimeType string `json:"mimeType"`
	// Text optionally inlines the body (scripts keep it so the ML corpus
	// can be rebuilt from archives alone).
	Text string `json:"text,omitempty"`
}

// New creates an empty log for one crawl.
func New(creator string) *Log {
	return &Log{
		Version: "1.2",
		Creator: Creator{Name: creator, Version: "1.0"},
	}
}

// AddPage registers a visited page and returns its page id.
func (l *Log) AddPage(title string, started time.Time) string {
	id := fmt.Sprintf("page_%d", len(l.Pages)+1)
	l.Pages = append(l.Pages, Page{StartedDateTime: started, ID: id, Title: title})
	return id
}

// AddEntry appends a request/response record.
func (l *Log) AddEntry(pageID, url string, typ abp.RequestType, status int, body string, at time.Time) {
	l.Entries = append(l.Entries, Entry{
		PageRef:         pageID,
		StartedDateTime: at,
		Request:         Request{Method: "GET", URL: url, ResourceType: string(typ)},
		Response: Response{
			Status: status,
			Content: Content{
				Size:     len(body),
				MimeType: mimeFor(typ),
				Text:     body,
			},
		},
	})
}

func mimeFor(t abp.RequestType) string {
	switch t {
	case abp.TypeScript:
		return "application/javascript"
	case abp.TypeImage:
		return "image/png"
	case abp.TypeStylesheet:
		return "text/css"
	case abp.TypeDocument, abp.TypeSubdocument:
		return "text/html"
	default:
		return "application/octet-stream"
	}
}

// URLs returns every request URL in the log, in order. The coverage
// analysis matches these against HTTP filter rules.
func (l *Log) URLs() []string {
	out := make([]string, 0, len(l.Entries))
	for _, e := range l.Entries {
		out = append(out, e.Request.URL)
	}
	return out
}

// Marshal encodes the log as HAR JSON (the {"log": …} envelope).
func Marshal(l *Log) ([]byte, error) {
	return json.Marshal(struct {
		Log *Log `json:"log"`
	}{l})
}

// Unmarshal decodes HAR JSON produced by Marshal (or any HAR 1.2 file
// restricted to the modeled fields).
func Unmarshal(data []byte) (*Log, error) {
	var wrapper struct {
		Log *Log `json:"log"`
	}
	if err := json.Unmarshal(data, &wrapper); err != nil {
		return nil, fmt.Errorf("har: %w", err)
	}
	if wrapper.Log == nil {
		return nil, fmt.Errorf("har: missing log envelope")
	}
	return wrapper.Log, nil
}

// Union merges several logs for one site into a single request list,
// deduplicating by URL — the paper takes "a union of all HTTP requests in
// HAR files" for sites that refresh and produce multiple HARs.
func Union(logs ...*Log) *Log {
	if len(logs) == 0 {
		return New("union")
	}
	out := New(logs[0].Creator.Name)
	out.Pages = append(out.Pages, logs[0].Pages...)
	seen := make(map[string]bool)
	for _, l := range logs {
		for _, e := range l.Entries {
			if seen[e.Request.URL] {
				continue
			}
			seen[e.Request.URL] = true
			out.Entries = append(out.Entries, e)
		}
	}
	return out
}

// Size returns the serialized size in bytes; the crawler uses it to detect
// partial snapshots (the paper discards HARs under 10% of a site's average
// yearly HAR size).
func (l *Log) Size() int {
	b, err := Marshal(l)
	if err != nil {
		return 0
	}
	return len(b)
}
