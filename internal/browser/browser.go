// Package browser replays archived or live pages through an adblocker the
// way §4.2 of the paper does with Firefox + Adblock Plus: it loads a page,
// applies a filter list to its HTTP requests (blocking) and its DOM
// (element hiding), and logs which rules triggered. The log is what the
// coverage measurement consumes.
package browser

import (
	"strings"

	"adwars/internal/abp"
	"adwars/internal/wayback"
	"adwars/internal/web"
)

// HTTPTrigger records one HTTP filter rule firing on one request.
type HTTPTrigger struct {
	// URL is the live (truncated) request URL that matched.
	URL string
	// Rule is the filter rule that decided the request.
	Rule *abp.Rule
	// Decision says whether the rule blocked or excepted the request.
	Decision abp.Decision
}

// HTMLTrigger records one element hiding rule firing on one element.
type HTMLTrigger struct {
	// ElementID is the id of the hidden element ("" for id-less ones).
	ElementID string
	// Rule is the element hiding rule that hid it.
	Rule *abp.Rule
}

// PageLog is the adblocker's log for one page load — the equivalent of the
// Adblock Plus logs the paper extracts triggered rules from.
type PageLog struct {
	// Domain is the page's domain.
	Domain string
	// HTTP lists HTTP rule triggers in request order.
	HTTP []HTTPTrigger
	// HTML lists element hiding triggers in document order.
	HTML []HTMLTrigger
}

// Triggered reports whether any rule fired at all.
func (l *PageLog) Triggered() bool { return len(l.HTTP) > 0 || len(l.HTML) > 0 }

// MatchHTTPURLs matches a set of request URLs (already truncated to live
// URLs) against a list and returns the triggers. pageDomain scopes
// $domain= and $third-party options.
func MatchHTTPURLs(list *abp.List, urls []string, pageDomain string) []HTTPTrigger {
	return matchHTTPURLs(list, urls, pageDomain, false)
}

// MatchHTTPURLsLinear is the ablation twin of MatchHTTPURLs: it bypasses
// the list's keyword index and scans every rule. It exists so the replay
// benchmarks and differential tests can compare the indexed path against
// the reference linear scan; production callers want MatchHTTPURLs.
func MatchHTTPURLsLinear(list *abp.List, urls []string, pageDomain string) []HTTPTrigger {
	return matchHTTPURLs(list, urls, pageDomain, true)
}

func matchHTTPURLs(list *abp.List, urls []string, pageDomain string, linear bool) []HTTPTrigger {
	var out []HTTPTrigger
	for _, u := range urls {
		q := abp.Request{URL: u, Type: guessType(u), PageDomain: pageDomain}
		var dec abp.Decision
		var rule *abp.Rule
		if linear {
			dec, rule = list.MatchRequestLinear(q)
		} else {
			dec, rule = list.MatchRequest(q)
		}
		if dec != abp.NoMatch {
			out = append(out, HTTPTrigger{URL: u, Rule: rule, Decision: dec})
		}
	}
	return out
}

// DOMViews parses page HTML and adapts its elements to the filter engine's
// element views, in document order. It is the one conversion every replay
// path shares (archived snapshots, live pages, the coverage experiments).
func DOMViews(html string) []*abp.Element {
	root := web.ParseHTML(html)
	if root == nil {
		return nil
	}
	elems := root.Flatten()
	views := make([]*abp.Element, len(elems))
	for i, e := range elems {
		views[i] = e.ToABP()
	}
	return views
}

// PageViews adapts a live page's DOM to the filter engine's element views,
// in document order.
func PageViews(page *web.Page) []*abp.Element {
	elems := page.Elements()
	views := make([]*abp.Element, len(elems))
	for i, e := range elems {
		views[i] = e.ToABP()
	}
	return views
}

// guessType infers the resource type from the URL path, like an adblocker
// classifying archived requests.
func guessType(u string) abp.RequestType {
	low := strings.ToLower(u)
	if i := strings.IndexAny(low, "?#"); i >= 0 {
		low = low[:i]
	}
	switch {
	case strings.HasSuffix(low, ".js"):
		return abp.TypeScript
	case strings.HasSuffix(low, ".css"):
		return abp.TypeStylesheet
	case strings.HasSuffix(low, ".png"), strings.HasSuffix(low, ".jpg"),
		strings.HasSuffix(low, ".jpeg"), strings.HasSuffix(low, ".gif"),
		strings.HasSuffix(low, ".svg"), strings.HasSuffix(low, ".webp"):
		return abp.TypeImage
	case strings.HasSuffix(low, "/"), strings.HasSuffix(low, ".html"),
		strings.HasSuffix(low, ".htm"):
		return abp.TypeDocument
	default:
		return abp.TypeOther
	}
}

// OpenArchivedHTML loads archived page HTML in the "browser" with the
// given filter list subscribed, and returns the element hiding triggers —
// §4.2's HTML-rule detection step.
func OpenArchivedHTML(list *abp.List, html, pageDomain string) []HTMLTrigger {
	views := DOMViews(html)
	if views == nil {
		return nil
	}
	hidden := list.HiddenElements(pageDomain, views)
	out := make([]HTMLTrigger, 0, len(hidden))
	for i := range views {
		if rule, ok := hidden[i]; ok {
			out = append(out, HTMLTrigger{ElementID: views[i].ID, Rule: rule})
		}
	}
	return out
}

// ReplaySnapshot runs the full §4.2 detection on one archived snapshot:
// HAR URLs are truncated back to live URLs and matched against HTTP rules,
// and the archived HTML is opened with element hiding active.
func ReplaySnapshot(list *abp.List, snap *wayback.Snapshot) *PageLog {
	log := &PageLog{Domain: snap.Ref.Domain}
	urls := make([]string, 0, len(snap.HAR.Entries))
	for _, u := range snap.HAR.URLs() {
		urls = append(urls, wayback.TruncateURL(u))
	}
	log.HTTP = MatchHTTPURLs(list, urls, snap.Ref.Domain)
	log.HTML = OpenArchivedHTML(list, snap.HTML, snap.Ref.Domain)
	return log
}

// ReplayLivePage runs the same detection against a live page (the §4.3
// top-100K crawl): its request URLs need no truncation and its DOM is
// available directly.
func ReplayLivePage(list *abp.List, page *web.Page) *PageLog {
	log := &PageLog{Domain: page.Domain}
	urls := make([]string, 0, len(page.Requests))
	for _, q := range page.Requests {
		urls = append(urls, q.URL)
	}
	log.HTTP = MatchHTTPURLs(list, urls, page.Domain)
	views := PageViews(page)
	hidden := list.HiddenElements(page.Domain, views)
	for i := range views {
		if rule, ok := hidden[i]; ok {
			log.HTML = append(log.HTML, HTMLTrigger{ElementID: views[i].ID, Rule: rule})
		}
	}
	return log
}
