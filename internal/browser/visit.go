package browser

import (
	"adwars/internal/abp"
	"adwars/internal/antiadblock"
	"adwars/internal/web"
)

// VisitOutcome is what an adblock user experiences on a site (§3.1–3.2:
// baits, detection, and the counter-moves anti-adblock filter lists make).
type VisitOutcome int

const (
	// OutcomeClean: the site runs no anti-adblocker; nothing happens.
	OutcomeClean VisitOutcome = iota
	// OutcomeCircumvented: the anti-adblock list blocked the detector
	// script itself, so detection never ran.
	OutcomeCircumvented
	// OutcomeUndetected: the detector ran but its baits were not
	// touched (e.g. the exception rules let the bait load), so the
	// adblock user passed as a normal visitor.
	OutcomeUndetected
	// OutcomeWallSuppressed: the detector fired, but the anti-adblock
	// list hides the warning element, so the user never sees the wall.
	OutcomeWallSuppressed
	// OutcomeWallShown: the detector fired and the warning reached the
	// user — the anti-adblock list failed on this site.
	OutcomeWallShown
)

// String names the outcome.
func (o VisitOutcome) String() string {
	switch o {
	case OutcomeClean:
		return "clean"
	case OutcomeCircumvented:
		return "circumvented"
	case OutcomeUndetected:
		return "undetected"
	case OutcomeWallSuppressed:
		return "wall-suppressed"
	case OutcomeWallShown:
		return "wall-shown"
	default:
		return "unknown"
	}
}

// VisitConfig is the adblock user's setup: the ad-blocking rules that make
// baits fail, plus the anti-adblock list meant to defeat detection.
type VisitConfig struct {
	// AdRules is the general ad-blocking list (EasyList's role): it
	// blocks bait requests and hides ad-like bait elements — the very
	// signals detectors watch (§3.1).
	AdRules *abp.List
	// AntiAdblock is the anti-adblock filter list under test.
	AntiAdblock *abp.List
}

// SimulateVisit walks the §3.1 detection mechanics for an adblock user
// loading a deployed page:
//
//  1. If the anti-adblock list blocks the detector script, detection
//     never runs (the "active adblocking" counter-move).
//  2. Otherwise the detector probes its baits: an HTTP bait that the ad
//     rules block (and no exception saves), or a bait element the ad
//     rules hide, triggers detection.
//  3. A triggered wall still never reaches the user if the anti-adblock
//     list hides the warning element (the AWRL counter-move).
func SimulateVisit(cfg VisitConfig, page *web.Page, dep *antiadblock.Deployment) VisitOutcome {
	if dep == nil {
		return OutcomeClean
	}

	// Step 1: is the detector script itself neutralized?
	scriptReq := abp.Request{URL: dep.ScriptURL, Type: abp.TypeScript, PageDomain: page.Domain}
	if cfg.AntiAdblock != nil {
		if d, _ := cfg.AntiAdblock.MatchRequest(scriptReq); d == abp.Blocked {
			return OutcomeCircumvented
		}
	}

	// Step 2: do the baits betray the adblocker?
	detected := false
	if dep.Vendor.Technique.UsesHTTP() {
		baitReq := abp.Request{URL: dep.BaitURL(), Type: abp.TypeScript, PageDomain: page.Domain}
		blocked := false
		if cfg.AdRules != nil {
			if d, _ := cfg.AdRules.MatchRequest(baitReq); d == abp.Blocked {
				blocked = true
			}
		}
		// The anti-adblock list's exception rules can let the bait
		// through even though the ad rules would block it (the
		// numerama.com pattern, Code 7).
		if blocked && cfg.AntiAdblock != nil {
			if d, _ := cfg.AntiAdblock.MatchRequest(baitReq); d == abp.Allowed {
				blocked = false
			}
		}
		if blocked {
			detected = true
		}
	}
	if !detected && dep.Vendor.Technique.UsesHTML() && cfg.AdRules != nil {
		// The bait element is an ad-like div; if the ad rules hide it,
		// its geometry collapses and the probe fires.
		views := PageViews(page)
		if len(cfg.AdRules.HiddenElements(page.Domain, views)) > 0 {
			detected = true
		}
	}
	if !detected {
		return OutcomeUndetected
	}

	// Step 3: does the user actually see the wall?
	if cfg.AntiAdblock != nil {
		notice := &abp.Element{Tag: "div", ID: dep.NoticeID, Classes: []string{"adblock-wall"}}
		hidden := cfg.AntiAdblock.HiddenElements(page.Domain, []*abp.Element{notice})
		if len(hidden) > 0 {
			return OutcomeWallSuppressed
		}
	}
	return OutcomeWallShown
}
