package browser

import (
	"math/rand"
	"testing"
	"time"

	"adwars/internal/antiadblock"
	"adwars/internal/listgen"
	"adwars/internal/web"
)

func deployedPage(t *testing.T, vendorName string, seed int64) (*web.Page, *antiadblock.Deployment) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	v := antiadblock.VendorByName(vendorName)
	if v == nil {
		t.Fatalf("vendor %q missing", vendorName)
	}
	d := antiadblock.NewDeployment("pub.example", v,
		time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC), rng)
	p := web.NewPage("pub.example", "Pub")
	d.Apply(p, rng, antiadblock.GenOptions{})
	return p, d
}

func TestSimulateVisitClean(t *testing.T) {
	p := web.NewPage("benign.example", "B")
	got := SimulateVisit(VisitConfig{AdRules: listgen.AdBlockingList()}, p, nil)
	if got != OutcomeClean {
		t.Fatalf("outcome = %v, want clean", got)
	}
}

func TestSimulateVisitWallWithoutProtection(t *testing.T) {
	p, d := deployedPage(t, "PageFair", 1)
	got := SimulateVisit(VisitConfig{AdRules: listgen.AdBlockingList()}, p, d)
	if got != OutcomeWallShown {
		t.Fatalf("outcome = %v, want wall-shown (ad rules block the bait)", got)
	}
}

func TestSimulateVisitCircumvented(t *testing.T) {
	p, d := deployedPage(t, "PageFair", 2)
	aak := buildList(t, "||pagefair.com^$third-party")
	got := SimulateVisit(VisitConfig{AdRules: listgen.AdBlockingList(), AntiAdblock: aak}, p, d)
	if got != OutcomeCircumvented {
		t.Fatalf("outcome = %v, want circumvented", got)
	}
}

func TestSimulateVisitBaitException(t *testing.T) {
	p, d := deployedPage(t, "Outbrain", 3) // HTTP bait only
	// An exception rule lets the bait load (Code 7's numerama pattern).
	exc := buildList(t, "@@||pub.example"+d.BaitPath)
	got := SimulateVisit(VisitConfig{AdRules: listgen.AdBlockingList(), AntiAdblock: exc}, p, d)
	if got != OutcomeUndetected {
		t.Fatalf("outcome = %v, want undetected via bait exception", got)
	}
}

func TestSimulateVisitWallSuppressed(t *testing.T) {
	p, d := deployedPage(t, "Outbrain", 4)
	hide := buildList(t, "pub.example###"+d.NoticeID)
	got := SimulateVisit(VisitConfig{AdRules: listgen.AdBlockingList(), AntiAdblock: hide}, p, d)
	if got != OutcomeWallSuppressed {
		t.Fatalf("outcome = %v, want wall-suppressed", got)
	}
}

func TestSimulateVisitHTMLBaitDetection(t *testing.T) {
	p, d := deployedPage(t, "BlockAdBlock", 5) // HTML bait only
	got := SimulateVisit(VisitConfig{AdRules: listgen.AdBlockingList()}, p, d)
	if got != OutcomeWallShown {
		t.Fatalf("outcome = %v, want wall-shown (bait div hidden by ad rules)", got)
	}
	// Without ad rules nothing collapses the bait: undetected.
	got = SimulateVisit(VisitConfig{}, p, d)
	if got != OutcomeUndetected {
		t.Fatalf("outcome = %v, want undetected without ad rules", got)
	}
}

func TestVisitOutcomeStrings(t *testing.T) {
	names := map[VisitOutcome]string{
		OutcomeClean: "clean", OutcomeCircumvented: "circumvented",
		OutcomeUndetected: "undetected", OutcomeWallSuppressed: "wall-suppressed",
		OutcomeWallShown: "wall-shown", VisitOutcome(99): "unknown",
	}
	for o, want := range names {
		if o.String() != want {
			t.Errorf("%d = %q, want %q", o, o.String(), want)
		}
	}
}
