package browser

import (
	"math/rand"
	"testing"
	"time"

	"adwars/internal/abp"
	"adwars/internal/antiadblock"
	"adwars/internal/har"
	"adwars/internal/wayback"
	"adwars/internal/web"
)

func buildList(t *testing.T, lines ...string) *abp.List {
	t.Helper()
	var rules []*abp.Rule
	for _, l := range lines {
		r, err := abp.Parse(l)
		if err != nil {
			t.Fatalf("Parse(%q): %v", l, err)
		}
		rules = append(rules, r)
	}
	return abp.NewList("test", rules)
}

func antiAdblockPage(t *testing.T) (*web.Page, *antiadblock.Deployment) {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	v := antiadblock.VendorByName("PageFair")
	d := antiadblock.NewDeployment("dailynews.com", v,
		time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC), rng)
	p := web.NewPage("dailynews.com", "Daily News")
	p.AddRequest("http://img.dailynews.com/logo.png", abp.TypeImage)
	d.Apply(p, rng, antiadblock.GenOptions{})
	return p, d
}

func TestMatchHTTPURLs(t *testing.T) {
	list := buildList(t, "||pagefair.com^$third-party")
	triggers := MatchHTTPURLs(list, []string{
		"http://pagefair.com/static/adblock_detection/js/d.min.js",
		"http://img.dailynews.com/logo.png",
	}, "dailynews.com")
	if len(triggers) != 1 {
		t.Fatalf("triggers = %d, want 1", len(triggers))
	}
	if triggers[0].Decision != abp.Blocked {
		t.Fatalf("decision = %v", triggers[0].Decision)
	}
}

func TestGuessType(t *testing.T) {
	cases := map[string]abp.RequestType{
		"http://x.com/a.js":          abp.TypeScript,
		"http://x.com/a.js?v=2":      abp.TypeScript,
		"http://x.com/style.css":     abp.TypeStylesheet,
		"http://x.com/logo.PNG":      abp.TypeImage,
		"http://x.com/":              abp.TypeDocument,
		"http://x.com/page.html":     abp.TypeDocument,
		"http://x.com/api/data?x=1":  abp.TypeOther,
		"http://x.com/pic.jpeg#frag": abp.TypeImage,
	}
	for u, want := range cases {
		if got := guessType(u); got != want {
			t.Errorf("guessType(%q) = %v, want %v", u, got, want)
		}
	}
}

func TestOpenArchivedHTML(t *testing.T) {
	html := `<html><body>
<div id="noticeMain" class="adblock-wall">disable your adblocker</div>
<div id="content">hello</div>
</body></html>`
	list := buildList(t, "dailynews.com###noticeMain")
	triggers := OpenArchivedHTML(list, html, "dailynews.com")
	if len(triggers) != 1 || triggers[0].ElementID != "noticeMain" {
		t.Fatalf("triggers = %+v", triggers)
	}
	// Domain-scoped rule must not fire elsewhere.
	if got := OpenArchivedHTML(list, html, "other.com"); len(got) != 0 {
		t.Fatalf("rule fired off-domain: %+v", got)
	}
	// Broken HTML must not panic.
	if got := OpenArchivedHTML(list, "", "dailynews.com"); got != nil {
		t.Fatalf("empty HTML produced triggers: %+v", got)
	}
}

func TestReplayLivePage(t *testing.T) {
	page, d := antiAdblockPage(t)
	list := buildList(t,
		"||pagefair.com^$third-party",
		"dailynews.com###"+d.NoticeID,
	)
	log := ReplayLivePage(list, page)
	if !log.Triggered() {
		t.Fatal("anti-adblock page should trigger rules")
	}
	if len(log.HTTP) == 0 {
		t.Error("vendor script request should trigger the HTTP rule")
	}
	if len(log.HTML) == 0 {
		t.Error("notice overlay should trigger the HTML rule")
	}
	benign := web.NewPage("benign.com", "B")
	benign.AddRequest("http://benign.com/app.js", abp.TypeScript)
	if ReplayLivePage(list, benign).Triggered() {
		t.Error("benign page must not trigger")
	}
}

func TestReplaySnapshotTruncatesWaybackURLs(t *testing.T) {
	page, d := antiAdblockPage(t)
	ts := time.Date(2015, 6, 15, 0, 0, 0, 0, time.UTC)

	// Build a snapshot by hand with rewritten URLs, as the archive serves
	// them.
	l := buildList(t, "||pagefair.com^$third-party", "dailynews.com###"+d.NoticeID)
	harLog := newHARWithURLs(ts, page)
	snap := &wayback.Snapshot{
		Ref:  wayback.SnapshotRef{Domain: "dailynews.com", Timestamp: ts},
		HTML: web.RenderHTML(page),
		HAR:  harLog,
		Page: page,
	}
	log := ReplaySnapshot(l, snap)
	if len(log.HTTP) == 0 {
		t.Fatal("rewritten vendor URL should match after truncation")
	}
	if len(log.HTML) == 0 {
		t.Fatal("archived notice should trigger the HTML rule")
	}
}

func newHARWithURLs(ts time.Time, page *web.Page) *har.Log {
	l := har.New("test")
	pid := l.AddPage(page.URL(), ts)
	for _, q := range page.Requests {
		l.AddEntry(pid, wayback.RewriteURL(ts, q.URL), q.Type, 200, "", ts)
	}
	return l
}
