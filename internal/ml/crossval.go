package ml

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"adwars/internal/crawler"
	"adwars/internal/features"
)

// Trainer builds a classifier from a training dataset. The rng is owned by
// the call (cross-validation passes an independent one per fold so folds
// can run concurrently and deterministically).
type Trainer func(train *features.Dataset, rng *rand.Rand) (Classifier, error)

// CrossValidate performs stratified k-fold cross-validation — the paper's
// 10-fold protocol — and returns the confusion matrix accumulated across
// held-out folds. Folds are evaluated concurrently. seed fixes both the
// stratified shuffle and the per-fold training rngs, making results
// reproducible.
func CrossValidate(ds *features.Dataset, k int, trainer Trainer, seed int64) (Confusion, error) {
	if k < 2 {
		return Confusion{}, fmt.Errorf("ml: k must be ≥ 2, got %d", k)
	}
	if ds.Len() < k {
		return Confusion{}, fmt.Errorf("ml: %d samples cannot fill %d folds", ds.Len(), k)
	}
	folds := stratifiedFolds(ds, k, rand.New(rand.NewSource(seed)))

	type result struct {
		c   Confusion
		err error
	}
	results := make([]result, k)
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for f := 0; f < k; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var trainIdx, testIdx []int
			for g := 0; g < k; g++ {
				if g == f {
					testIdx = append(testIdx, folds[g]...)
				} else {
					trainIdx = append(trainIdx, folds[g]...)
				}
			}
			model, err := trainer(ds.Subset(trainIdx), rand.New(rand.NewSource(seed+int64(f)+1)))
			if err != nil {
				results[f] = result{err: err}
				return
			}
			results[f] = result{c: Evaluate(model, ds.Subset(testIdx))}
		}(f)
	}
	wg.Wait()

	var total Confusion
	for f := 0; f < k; f++ {
		if results[f].err != nil {
			return Confusion{}, fmt.Errorf("ml: fold %d: %w", f, results[f].err)
		}
		total.Add(results[f].c)
	}
	return total, nil
}

// stratifiedFolds shuffles positives and negatives separately and deals
// them round-robin into k folds so every fold preserves the ~10:1 class
// imbalance of the corpus.
func stratifiedFolds(ds *features.Dataset, k int, rng *rand.Rand) [][]int {
	var pos, neg []int
	for i, l := range ds.Labels {
		if l > 0 {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	rng.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	rng.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })
	folds := make([][]int, k)
	for i, idx := range pos {
		folds[i%k] = append(folds[i%k], idx)
	}
	for i, idx := range neg {
		folds[i%k] = append(folds[i%k], idx)
	}
	return folds
}

// CVConfig parameterizes the shared-cache cross-validation entry points.
type CVConfig struct {
	// Folds is k (the paper's protocol uses 10).
	Folds int
	// Seed fixes the stratified shuffle and the per-fold training rngs —
	// the same scheme as CrossValidate, so results are identical between
	// the two paths.
	Seed int64
	// Workers caps concurrent fold training and Gram precompute fan-out
	// (0 = GOMAXPROCS, 1 = strictly sequential). Fold confusions merge in
	// fold order, so the result is identical at any worker count.
	Workers int
}

func (cv CVConfig) workers() int {
	if cv.Workers > 0 {
		return cv.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// CrossValidateSVM cross-validates a plain SVM, precomputing one Gram
// matrix over the full dataset and gathering per-fold views from it, so
// the kernel is evaluated once per sample pair across all k folds instead
// of once per fold.
func CrossValidateSVM(ds *features.Dataset, cfg SVMConfig, cv CVConfig) (Confusion, error) {
	cfg.Kernel = resolveKernel(cfg.Kernel)
	return crossValidateShared(ds, cv, cfg.Kernel, cfg.KernelCache,
		func(train *features.Dataset, g *gram, rng *rand.Rand) (Classifier, error) {
			return trainSVMGram(train, nil, cfg, rng, g)
		})
}

// CrossValidateAdaBoost cross-validates an AdaBoost+SVM ensemble with the
// same shared kernel cache: each fold's view serves every boosting round
// of that fold.
func CrossValidateAdaBoost(ds *features.Dataset, cfg AdaBoostConfig, cv CVConfig) (Confusion, error) {
	cfg.SVM.Kernel = resolveKernel(cfg.SVM.Kernel)
	return crossValidateShared(ds, cv, cfg.SVM.Kernel, cfg.SVM.KernelCache,
		func(train *features.Dataset, g *gram, rng *rand.Rand) (Classifier, error) {
			return trainAdaBoostGram(train, cfg, rng, g)
		})
}

// crossValidateShared runs stratified k-fold CV with one corpus-wide
// kernel cache. Fold assignment, per-fold rng seeding, and the fold-order
// confusion merge replicate CrossValidate exactly; only where kernel
// values come from differs, and cached values are bit-identical to fresh
// evaluations — so both paths produce the same confusion matrix.
func crossValidateShared(ds *features.Dataset, cv CVConfig, kernel Kernel, cacheEntries int,
	train func(*features.Dataset, *gram, *rand.Rand) (Classifier, error)) (Confusion, error) {
	k := cv.Folds
	if k < 2 {
		return Confusion{}, fmt.Errorf("ml: k must be ≥ 2, got %d", k)
	}
	if ds.Len() < k {
		return Confusion{}, fmt.Errorf("ml: %d samples cannot fill %d folds", ds.Len(), k)
	}
	workers := cv.workers()
	shared := newGram(kernel, ds.Samples, cacheEntries, workers)
	folds := stratifiedFolds(ds, k, rand.New(rand.NewSource(cv.Seed)))

	type result struct {
		c   Confusion
		err error
	}
	results := make([]result, k)
	_ = crawler.ForEach(context.Background(), workers, k, func(f int) {
		var trainIdx, testIdx []int
		for g := 0; g < k; g++ {
			if g == f {
				testIdx = append(testIdx, folds[g]...)
			} else {
				trainIdx = append(trainIdx, folds[g]...)
			}
		}
		g := shared.subset(trainIdx, cacheEntries, 1)
		model, err := train(ds.Subset(trainIdx), g, rand.New(rand.NewSource(cv.Seed+int64(f)+1)))
		if err != nil {
			results[f] = result{err: err}
			return
		}
		results[f] = result{c: Evaluate(model, ds.Subset(testIdx))}
	})

	var total Confusion
	for f := 0; f < k; f++ {
		if results[f].err != nil {
			return Confusion{}, fmt.Errorf("ml: fold %d: %w", f, results[f].err)
		}
		total.Add(results[f].c)
	}
	return total, nil
}

// SVMTrainer adapts TrainSVM to the Trainer signature.
func SVMTrainer(cfg SVMConfig) Trainer {
	return func(train *features.Dataset, rng *rand.Rand) (Classifier, error) {
		return TrainSVM(train, nil, cfg, rng)
	}
}

// AdaBoostTrainer adapts TrainAdaBoost to the Trainer signature.
func AdaBoostTrainer(cfg AdaBoostConfig) Trainer {
	return func(train *features.Dataset, rng *rand.Rand) (Classifier, error) {
		return TrainAdaBoost(train, cfg, rng)
	}
}
