package ml

import (
	"encoding/json"
	"fmt"

	"adwars/internal/features"
)

// Serialized model formats. The paper's online deployment ships the
// trained model inside adblockers; these types give it a stable JSON wire
// form (support vectors, coefficients, ensemble weights).

type svmJSON struct {
	KernelType string    `json:"kernel"`
	Gamma      float64   `json:"gamma,omitempty"`
	Bias       float64   `json:"bias"`
	Coefs      []float64 `json:"coefs"`
	Vectors    [][]int32 `json:"vectors"`
}

type adaBoostJSON struct {
	Alphas []float64  `json:"alphas"`
	Models []*svmJSON `json:"models"`
}

func (m *SVM) toJSON() *svmJSON {
	out := &svmJSON{Bias: m.bias, Coefs: m.coefs}
	switch k := m.kernel.(type) {
	case RBF:
		out.KernelType = "rbf"
		out.Gamma = k.Gamma
	case Linear:
		out.KernelType = "linear"
	default:
		out.KernelType = "rbf"
		out.Gamma = 0.05
	}
	for _, v := range m.vectors {
		out.Vectors = append(out.Vectors, []int32(v))
	}
	return out
}

func svmFromJSON(j *svmJSON) (*SVM, error) {
	m := &SVM{bias: j.Bias, coefs: j.Coefs}
	switch j.KernelType {
	case "rbf":
		m.kernel = RBF{Gamma: j.Gamma}
	case "linear":
		m.kernel = Linear{}
	default:
		return nil, fmt.Errorf("ml: unknown kernel %q", j.KernelType)
	}
	if len(j.Coefs) != len(j.Vectors) {
		return nil, fmt.Errorf("ml: %d coefs for %d support vectors", len(j.Coefs), len(j.Vectors))
	}
	for _, v := range j.Vectors {
		m.vectors = append(m.vectors, features.Sample(v))
	}
	return m, nil
}

// MarshalJSON implements json.Marshaler for trained SVMs.
func (m *SVM) MarshalJSON() ([]byte, error) { return json.Marshal(m.toJSON()) }

// UnmarshalJSON implements json.Unmarshaler.
func (m *SVM) UnmarshalJSON(data []byte) error {
	var j svmJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	restored, err := svmFromJSON(&j)
	if err != nil {
		return err
	}
	*m = *restored
	return nil
}

// MarshalJSON implements json.Marshaler for trained ensembles.
func (a *AdaBoost) MarshalJSON() ([]byte, error) {
	out := adaBoostJSON{Alphas: a.alphas}
	for _, m := range a.models {
		out.Models = append(out.Models, m.toJSON())
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (a *AdaBoost) UnmarshalJSON(data []byte) error {
	var j adaBoostJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if len(j.Alphas) != len(j.Models) {
		return fmt.Errorf("ml: %d alphas for %d models", len(j.Alphas), len(j.Models))
	}
	restored := &AdaBoost{alphas: j.Alphas}
	for _, mj := range j.Models {
		m, err := svmFromJSON(mj)
		if err != nil {
			return err
		}
		restored.models = append(restored.models, m)
	}
	*a = *restored
	return nil
}
