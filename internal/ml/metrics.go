package ml

import (
	"fmt"

	"adwars/internal/features"
)

// Confusion is a binary confusion matrix with the positive class = +1
// (anti-adblock scripts).
type Confusion struct {
	TP, FP, TN, FN int
}

// Add accumulates another confusion matrix.
func (c *Confusion) Add(o Confusion) {
	c.TP += o.TP
	c.FP += o.FP
	c.TN += o.TN
	c.FN += o.FN
}

// Observe records one prediction against its true label.
func (c *Confusion) Observe(label, pred int) {
	switch {
	case label > 0 && pred > 0:
		c.TP++
	case label > 0:
		c.FN++
	case pred > 0:
		c.FP++
	default:
		c.TN++
	}
}

// TPRate is the fraction of positives classified positive — the paper's
// "TP rate" (detection rate).
func (c Confusion) TPRate() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// FPRate is the fraction of negatives classified positive — the paper's
// "FP rate".
func (c Confusion) FPRate() float64 {
	if c.FP+c.TN == 0 {
		return 0
	}
	return float64(c.FP) / float64(c.FP+c.TN)
}

// Accuracy is overall correctness.
func (c Confusion) Accuracy() float64 {
	total := c.TP + c.FP + c.TN + c.FN
	if total == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(total)
}

// Precision is TP/(TP+FP).
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// String renders the matrix with the paper's headline rates.
func (c Confusion) String() string {
	return fmt.Sprintf("TP=%d FP=%d TN=%d FN=%d (TP rate %.1f%%, FP rate %.1f%%)",
		c.TP, c.FP, c.TN, c.FN, 100*c.TPRate(), 100*c.FPRate())
}

// Evaluate runs the classifier over a labeled dataset and returns its
// confusion matrix.
func Evaluate(m Classifier, ds *features.Dataset) Confusion {
	var c Confusion
	for i, s := range ds.Samples {
		c.Observe(ds.Labels[i], m.Predict(s))
	}
	return c
}
