package ml

import (
	"math/rand"
	"testing"

	"adwars/internal/features"
)

func benchDataset(b *testing.B, nPos, nNeg int) *features.Dataset {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	pool := make([]string, 60)
	for i := range pool {
		pool[i] = string(rune('a'+i%26)) + string(rune('0'+i%10))
	}
	var sets []map[string]bool
	var labels []int
	mk := func(offset int) map[string]bool {
		m := map[string]bool{}
		for j := 0; j < 6; j++ {
			m[pool[(offset+rng.Intn(20))%len(pool)]] = true
		}
		return m
	}
	for i := 0; i < nPos; i++ {
		sets = append(sets, mk(0))
		labels = append(labels, 1)
	}
	for i := 0; i < nNeg; i++ {
		sets = append(sets, mk(30))
		labels = append(labels, -1)
	}
	ds, err := features.Build(sets, labels)
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

// BenchmarkTrainSVM measures SMO training on a 10:1 imbalanced set.
func BenchmarkTrainSVM(b *testing.B) {
	ds := benchDataset(b, 30, 300)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainSVM(ds, nil, DefaultSVMConfig(), rand.New(rand.NewSource(1))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainAdaBoost measures the full ensemble (the ablation cost of
// boosting over a single SVM).
func BenchmarkTrainAdaBoost(b *testing.B) {
	ds := benchDataset(b, 30, 300)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainAdaBoost(ds, DefaultAdaBoostConfig(), rand.New(rand.NewSource(1))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredict measures single-sample classification latency (the
// online adblocker deployment of §5 scans scripts on the fly).
func BenchmarkPredict(b *testing.B) {
	ds := benchDataset(b, 30, 300)
	m, err := TrainSVM(ds, nil, DefaultSVMConfig(), rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	s := ds.Samples[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(s)
	}
}

// BenchmarkRBFKernel measures one kernel evaluation.
func BenchmarkRBFKernel(b *testing.B) {
	k := RBF{Gamma: 0.05}
	a := features.Sample{1, 5, 9, 30, 55, 70, 81, 93}
	c := features.Sample{2, 5, 9, 31, 54, 70, 82, 93}
	for i := 0; i < b.N; i++ {
		k.Eval(a, c)
	}
}
