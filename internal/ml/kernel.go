package ml

import (
	"container/list"
	"context"
	"math"
	"runtime"
	"sync"

	"adwars/internal/crawler"
	"adwars/internal/features"
)

// Kernel computes a positive semi-definite similarity between two sparse
// binary samples.
type Kernel interface {
	Eval(a, b features.Sample) float64
}

// binaryKernel is implemented by kernels whose value depends only on the
// two samples' popcounts and intersection size — true for every kernel
// over binary vectors. The Gram builder uses it with per-sample popcounts
// cached at construction, so the inner loop never re-derives lengths.
type binaryKernel interface {
	evalCounts(popA, popB, inter int) float64
}

// RBF is the radial basis function kernel exp(-γ‖a−b‖²). On binary vectors
// ‖a−b‖² = |a| + |b| − 2|a∩b|, so evaluation is a sorted-list merge.
type RBF struct {
	// Gamma is the kernel width parameter γ (> 0).
	Gamma float64
}

// Eval implements Kernel.
func (k RBF) Eval(a, b features.Sample) float64 {
	return k.evalCounts(a.Popcount(), b.Popcount(), a.IntersectionSize(b))
}

func (k RBF) evalCounts(popA, popB, inter int) float64 {
	dist := float64(popA + popB - 2*inter)
	return math.Exp(-k.Gamma * dist)
}

// Linear is the dot-product kernel; on binary vectors it is |a∩b|. Used as
// an ablation baseline against RBF.
type Linear struct{}

// Eval implements Kernel.
func (Linear) Eval(a, b features.Sample) float64 {
	return float64(a.IntersectionSize(b))
}

func (Linear) evalCounts(_, _, inter int) float64 {
	return float64(inter)
}

// resolveKernel applies the package-wide default (the paper's RBF width)
// wherever a config leaves the kernel nil.
func resolveKernel(k Kernel) Kernel {
	if k == nil {
		return RBF{Gamma: 0.05}
	}
	return k
}

// DefaultKernelCache is the default Gram-entry budget: 16M float64 values
// (~128 MB), enough to hold the full matrix for training sets up to 4096
// samples — comfortably above the paper's ~1.1K-sample corpus.
const DefaultKernelCache = 16 << 20

// gram serves K(xᵢ,xⱼ) over a fixed sample set under one of three cache
// policies chosen from the entry budget:
//
//   - full: n² ≤ budget — the whole matrix is precomputed (rows fanned out
//     over the shared worker pool) and every lookup is an array read;
//   - rows: n² > budget ≥ n — an LRU of recently used rows;
//   - direct: budget < 0 (or < n) — every lookup re-evaluates the kernel,
//     the reference path differential tests compare against.
//
// Per-sample popcounts are cached at construction and drive the
// binaryKernel fast path, so the precompute inner loop is one sorted-merge
// IntersectionSize plus integer arithmetic per pair.
type gram struct {
	kernel Kernel
	bk     binaryKernel // non-nil fast path for binary kernels
	x      []features.Sample
	pops   []int32 // cached popcounts, pops[i] == x[i].Popcount()
	n      int
	full   []float64 // n×n row-major, nil unless the full policy applies
	rows   *rowCache // nil unless the row-LRU policy applies
}

// newGram builds the kernel cache for x. cacheEntries is the Gram-entry
// budget (0 = DefaultKernelCache, negative = no caching); workers caps the
// precompute fan-out (0 = GOMAXPROCS).
func newGram(kernel Kernel, x []features.Sample, cacheEntries, workers int) *gram {
	g := &gram{kernel: kernel, x: x, n: len(x)}
	g.bk, _ = kernel.(binaryKernel)
	g.pops = make([]int32, g.n)
	for i, s := range x {
		g.pops[i] = int32(s.Popcount())
	}
	if cacheEntries == 0 {
		cacheEntries = DefaultKernelCache
	}
	if cacheEntries < 0 || g.n == 0 {
		return g
	}
	if g.n <= cacheEntries/g.n {
		g.full = make([]float64, g.n*g.n)
		g.precompute(workers)
		return g
	}
	if rows := cacheEntries / g.n; rows >= 1 {
		g.rows = newRowCache(rows)
	}
	return g
}

// precompute fills the full matrix, fanning rows out over the shared
// worker pool. Worker i writes row i's upper triangle and mirrors each
// value into column i — disjoint cells per worker, so the fill is
// deterministic at any worker count.
func (g *gram) precompute(workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	_ = crawler.ForEach(context.Background(), workers, g.n, func(i int) {
		g.full[i*g.n+i] = g.evalPair(i, i)
		for j := i + 1; j < g.n; j++ {
			v := g.evalPair(i, j)
			g.full[i*g.n+j] = v
			g.full[j*g.n+i] = v
		}
	})
}

// evalPair evaluates the kernel on samples i, j using the cached popcounts
// when the kernel exposes the binary fast path.
func (g *gram) evalPair(i, j int) float64 {
	if g.bk != nil {
		return g.bk.evalCounts(int(g.pops[i]), int(g.pops[j]), g.x[i].IntersectionSize(g.x[j]))
	}
	return g.kernel.Eval(g.x[i], g.x[j])
}

// at returns K(xᵢ,xⱼ), from cache when possible.
func (g *gram) at(i, j int) float64 {
	if g.full != nil {
		return g.full[i*g.n+j]
	}
	if g.rows != nil {
		if r := g.rows.peek(i); r != nil {
			return r[j]
		}
		if r := g.rows.peek(j); r != nil {
			return r[i]
		}
	}
	return g.evalPair(i, j)
}

// row returns the contiguous Gram row for sample i, or nil under the
// direct policy (callers then fall back to per-element at()). Under the
// row-LRU policy a miss computes and caches the row.
func (g *gram) row(i int) []float64 {
	if g.full != nil {
		return g.full[i*g.n : (i+1)*g.n]
	}
	if g.rows == nil {
		return nil
	}
	if r := g.rows.get(i); r != nil {
		return r
	}
	r := make([]float64, g.n)
	for j := 0; j < g.n; j++ {
		r[j] = g.evalPair(i, j)
	}
	g.rows.put(i, r)
	return r
}

// subset returns a gram over x[idx[k]] for local indices k. When the
// parent holds a full matrix the subset gathers float copies of the cached
// values — the mechanism that lets cross-validation folds and AdaBoost
// rounds reuse one kernel evaluation per pair across the whole run —
// otherwise the subset re-derives its own policy from the same budget.
func (g *gram) subset(idx []int, cacheEntries, workers int) *gram {
	xs := make([]features.Sample, len(idx))
	for k, i := range idx {
		xs[k] = g.x[i]
	}
	if g.full == nil {
		return newGram(g.kernel, xs, cacheEntries, workers)
	}
	m := len(idx)
	sub := &gram{kernel: g.kernel, bk: g.bk, x: xs, n: m, pops: make([]int32, m)}
	for k, i := range idx {
		sub.pops[k] = g.pops[i]
	}
	sub.full = make([]float64, m*m)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	_ = crawler.ForEach(context.Background(), workers, m, func(a int) {
		src := g.full[idx[a]*g.n:]
		dst := sub.full[a*m : (a+1)*m]
		for b, i := range idx {
			dst[b] = src[i]
		}
	})
	return sub
}

// rowCache is a mutex-guarded LRU of Gram rows for training sets too large
// for a full matrix. Concurrent fold workers may race to compute the same
// row; both compute identical values, so the cache stays deterministic.
type rowCache struct {
	mu  sync.Mutex
	cap int
	m   map[int]*list.Element
	ll  *list.List // front = most recently used
}

type rowEntry struct {
	i   int
	row []float64
}

func newRowCache(capRows int) *rowCache {
	return &rowCache{cap: capRows, m: make(map[int]*list.Element, capRows), ll: list.New()}
}

// get returns row i and marks it most recently used, or nil on a miss.
func (c *rowCache) get(i int) []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[i]; ok {
		c.ll.MoveToFront(e)
		return e.Value.(*rowEntry).row
	}
	return nil
}

// peek returns row i without touching recency, or nil on a miss.
func (c *rowCache) peek(i int) []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[i]; ok {
		return e.Value.(*rowEntry).row
	}
	return nil
}

// put inserts row i, evicting the least recently used rows over capacity.
func (c *rowCache) put(i int, row []float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[i]; ok {
		e.Value.(*rowEntry).row = row
		c.ll.MoveToFront(e)
		return
	}
	c.m[i] = c.ll.PushFront(&rowEntry{i: i, row: row})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		delete(c.m, back.Value.(*rowEntry).i)
		c.ll.Remove(back)
	}
}
