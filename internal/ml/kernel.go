package ml

import (
	"math"

	"adwars/internal/features"
)

// Kernel computes a positive semi-definite similarity between two sparse
// binary samples.
type Kernel interface {
	Eval(a, b features.Sample) float64
}

// RBF is the radial basis function kernel exp(-γ‖a−b‖²). On binary vectors
// ‖a−b‖² = |a| + |b| − 2|a∩b|, so evaluation is a sorted-list merge.
type RBF struct {
	// Gamma is the kernel width parameter γ (> 0).
	Gamma float64
}

// Eval implements Kernel.
func (k RBF) Eval(a, b features.Sample) float64 {
	dist := float64(len(a) + len(b) - 2*a.IntersectionSize(b))
	return math.Exp(-k.Gamma * dist)
}

// Linear is the dot-product kernel; on binary vectors it is |a∩b|. Used as
// an ablation baseline against RBF.
type Linear struct{}

// Eval implements Kernel.
func (Linear) Eval(a, b features.Sample) float64 {
	return float64(a.IntersectionSize(b))
}

// gramCacheLimit bounds the sample count for which a full Gram matrix is
// precomputed; larger training sets fall back to on-demand evaluation.
const gramCacheLimit = 4096

// gram caches kernel values for a fixed sample set.
type gram struct {
	kernel Kernel
	x      []features.Sample
	full   []float64 // n×n row-major, nil when n > gramCacheLimit
	n      int
}

func newGram(kernel Kernel, x []features.Sample) *gram {
	g := &gram{kernel: kernel, x: x, n: len(x)}
	if g.n > 0 && g.n <= gramCacheLimit {
		g.full = make([]float64, g.n*g.n)
		for i := 0; i < g.n; i++ {
			g.full[i*g.n+i] = kernel.Eval(x[i], x[i])
			for j := i + 1; j < g.n; j++ {
				v := kernel.Eval(x[i], x[j])
				g.full[i*g.n+j] = v
				g.full[j*g.n+i] = v
			}
		}
	}
	return g
}

func (g *gram) at(i, j int) float64 {
	if g.full != nil {
		return g.full[i*g.n+j]
	}
	return g.kernel.Eval(g.x[i], g.x[j])
}
