// Package ml implements the machine learning stack of §5 of the paper
// using only the standard library: a support vector machine with an RBF
// kernel trained by sequential minimal optimization (SMO), an AdaBoost.M1
// ensemble with SVM component classifiers (following Li, Wang & Sung,
// "AdaBoost with SVM-based component classifiers"), stratified k-fold
// cross-validation, and TP/FP-rate metrics.
//
// Samples are the sparse binary feature vectors of package features, so the
// RBF kernel reduces to exp(-γ(|a|+|b|-2|a∩b|)).
package ml
