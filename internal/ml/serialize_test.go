package ml

import (
	"encoding/json"
	"math/rand"
	"testing"
)

func TestSVMSerializationRoundTrip(t *testing.T) {
	ds := synthDataset(t, 20, 60, 31)
	m, err := TrainSVM(ds, nil, DefaultSVMConfig(), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back SVM
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	for i, s := range ds.Samples {
		if m.Predict(s) != back.Predict(s) {
			t.Fatalf("sample %d: prediction changed after round trip", i)
		}
		if d1, d2 := m.Decision(s), back.Decision(s); d1 != d2 {
			t.Fatalf("sample %d: decision %v != %v", i, d1, d2)
		}
	}
}

func TestAdaBoostSerializationRoundTrip(t *testing.T) {
	ds := synthDataset(t, 20, 60, 32)
	m, err := TrainAdaBoost(ds, DefaultAdaBoostConfig(), rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back AdaBoost
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Rounds() != m.Rounds() {
		t.Fatalf("rounds %d != %d", back.Rounds(), m.Rounds())
	}
	for i, s := range ds.Samples {
		if m.Predict(s) != back.Predict(s) {
			t.Fatalf("sample %d: prediction changed after round trip", i)
		}
	}
}

func TestLinearKernelSerialization(t *testing.T) {
	ds := synthDataset(t, 10, 30, 33)
	cfg := DefaultSVMConfig()
	cfg.Kernel = Linear{}
	m, err := TrainSVM(ds, nil, cfg, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back SVM
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if _, ok := back.kernel.(Linear); !ok {
		t.Fatalf("kernel type lost: %T", back.kernel)
	}
}

func TestSerializationErrors(t *testing.T) {
	var m SVM
	if err := json.Unmarshal([]byte(`{"kernel":"warp-drive"}`), &m); err == nil {
		t.Error("unknown kernel must error")
	}
	if err := json.Unmarshal([]byte(`{"kernel":"rbf","coefs":[1],"vectors":[]}`), &m); err == nil {
		t.Error("coef/vector mismatch must error")
	}
	var a AdaBoost
	if err := json.Unmarshal([]byte(`{"alphas":[1,2],"models":[]}`), &a); err == nil {
		t.Error("alpha/model mismatch must error")
	}
	if err := json.Unmarshal([]byte(`not json`), &a); err == nil {
		t.Error("bad JSON must error")
	}
}
