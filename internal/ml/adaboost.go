package ml

import (
	"fmt"
	"math"
	"math/rand"

	"adwars/internal/features"
)

// AdaBoostConfig holds ensemble hyperparameters.
type AdaBoostConfig struct {
	// Rounds is the maximum number of boosting rounds T.
	Rounds int
	// SVM configures every component classifier.
	SVM SVMConfig
}

// DefaultAdaBoostConfig mirrors the paper's classifier: AdaBoost with
// RBF-kernel SVM component classifiers.
func DefaultAdaBoostConfig() AdaBoostConfig {
	cfg := DefaultSVMConfig()
	// Component classifiers should be weak-ish: a wide RBF and small C
	// (per Li, Wang & Sung) leaves room for boosting to help.
	cfg.Kernel = RBF{Gamma: 0.02}
	cfg.C = 0.5
	return AdaBoostConfig{Rounds: 10, SVM: cfg}
}

// AdaBoost is a trained ensemble f(x) = sign(Σ αₜhₜ(x)).
type AdaBoost struct {
	models []*SVM
	alphas []float64
}

// Rounds returns the number of boosting rounds actually trained.
func (a *AdaBoost) Rounds() int { return len(a.models) }

// AlphaSum returns Σ|αₜ|, the largest magnitude Decision can reach. The
// serving layer normalizes decision values by it to report a bounded
// [0,1] anti-adblock score.
func (a *AdaBoost) AlphaSum() float64 {
	sum := 0.0
	for _, alpha := range a.alphas {
		sum += math.Abs(alpha)
	}
	return sum
}

// Decision returns the weighted vote Σ αₜhₜ(s).
func (a *AdaBoost) Decision(s features.Sample) float64 {
	v := 0.0
	for t, m := range a.models {
		v += a.alphas[t] * float64(m.Predict(s))
	}
	return v
}

// Predict implements Classifier.
func (a *AdaBoost) Predict(s features.Sample) int {
	if a.Decision(s) >= 0 {
		return +1
	}
	return -1
}

// TrainAdaBoost trains AdaBoost.M1 with SVM component classifiers. Each
// round trains a weighted SVM, computes its weighted training error ε, and
// re-weights samples by exp(∓αₜ) with αₜ = ½ln((1−ε)/ε). Boosting stops
// early when a component is perfect (ε≈0) or no better than chance
// (ε≥0.5), per the standard algorithm.
func TrainAdaBoost(ds *features.Dataset, cfg AdaBoostConfig, rng *rand.Rand) (*AdaBoost, error) {
	n := ds.Len()
	if n == 0 {
		return nil, fmt.Errorf("ml: empty training set")
	}
	if cfg.Rounds <= 0 {
		return nil, fmt.Errorf("ml: rounds must be positive")
	}
	cfg.SVM.Kernel = resolveKernel(cfg.SVM.Kernel)
	// Component SVMs train on reweighted views of the same samples, so one
	// kernel cache serves every boosting round.
	g := newGram(cfg.SVM.Kernel, ds.Samples, cfg.SVM.KernelCache, cfg.SVM.Workers)
	return trainAdaBoostGram(ds, cfg, rng, g)
}

// trainAdaBoostGram is the boosting core over a caller-supplied kernel
// cache (cross-validation passes per-fold views gathered from a shared
// corpus-wide Gram matrix).
func trainAdaBoostGram(ds *features.Dataset, cfg AdaBoostConfig, rng *rand.Rand, g *gram) (*AdaBoost, error) {
	n := ds.Len()
	if n == 0 {
		return nil, fmt.Errorf("ml: empty training set")
	}
	if cfg.Rounds <= 0 {
		return nil, fmt.Errorf("ml: rounds must be positive")
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}
	ens := &AdaBoost{}
	for t := 0; t < cfg.Rounds; t++ {
		m, err := trainSVMGram(ds, w, cfg.SVM, rng, g)
		if err != nil {
			return nil, fmt.Errorf("ml: round %d: %w", t, err)
		}
		preds := make([]int, n)
		eps := 0.0
		for i := range ds.Samples {
			// The error pass scores training samples against the round's
			// support vectors through the shared cache instead of
			// re-evaluating the kernel per (SV, sample) pair.
			if m.decisionGram(g, i) >= 0 {
				preds[i] = +1
			} else {
				preds[i] = -1
			}
			if preds[i] != ds.Labels[i] {
				eps += w[i]
			}
		}
		if eps >= 0.5 {
			// Component no better than chance; keep earlier rounds. If
			// this is the first round, keep it anyway so the ensemble is
			// usable.
			if len(ens.models) == 0 {
				ens.models = append(ens.models, m)
				ens.alphas = append(ens.alphas, 1)
			}
			break
		}
		if eps < 1e-10 {
			// Perfect component: dominate the vote and stop.
			ens.models = append(ens.models, m)
			ens.alphas = append(ens.alphas, 10)
			break
		}
		alpha := 0.5 * math.Log((1-eps)/eps)
		ens.models = append(ens.models, m)
		ens.alphas = append(ens.alphas, alpha)

		// Re-weight and renormalize.
		sum := 0.0
		for i := range w {
			if preds[i] != ds.Labels[i] {
				w[i] *= math.Exp(alpha)
			} else {
				w[i] *= math.Exp(-alpha)
			}
			sum += w[i]
		}
		for i := range w {
			w[i] /= sum
		}
	}
	return ens, nil
}
