package ml

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"adwars/internal/artifact"
)

func trainedSnapshot(t *testing.T) *ModelSnapshot {
	t.Helper()
	ds := synthDataset(t, 20, 120, 7)
	model, err := TrainAdaBoost(ds, DefaultAdaBoostConfig(), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	return &ModelSnapshot{
		FeatureSet: "keyword",
		Vocab:      ds.Vocab,
		Model:      model,
		Meta:       ModelMeta{Positives: 20, Negatives: 120, TopK: 100, Seed: 7},
	}
}

func TestModelSnapshotRoundTrip(t *testing.T) {
	snap := trainedSnapshot(t)
	ds := synthDataset(t, 20, 120, 7)

	path := filepath.Join(t.TempDir(), "model.json")
	if err := SaveModelSnapshot(path, snap); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModelSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.FeatureSet != snap.FeatureSet {
		t.Errorf("feature set %q, want %q", got.FeatureSet, snap.FeatureSet)
	}
	if len(got.Vocab) != len(snap.Vocab) {
		t.Fatalf("vocab %d entries, want %d", len(got.Vocab), len(snap.Vocab))
	}
	for i := range got.Vocab {
		if got.Vocab[i] != snap.Vocab[i] {
			t.Fatalf("vocab[%d] = %q, want %q", i, got.Vocab[i], snap.Vocab[i])
		}
	}
	if got.Meta != snap.Meta {
		t.Errorf("meta %+v, want %+v", got.Meta, snap.Meta)
	}
	if got.Model.Rounds() != snap.Model.Rounds() {
		t.Fatalf("rounds %d, want %d", got.Model.Rounds(), snap.Model.Rounds())
	}
	if got.Model.AlphaSum() != snap.Model.AlphaSum() {
		t.Errorf("alpha sum %v, want %v", got.Model.AlphaSum(), snap.Model.AlphaSum())
	}
	// Decisions must be bit-identical, not merely close: the served model
	// has to agree with the trained one on every sample.
	for i, s := range ds.Samples {
		if g, w := got.Model.Decision(s), snap.Model.Decision(s); g != w {
			t.Fatalf("sample %d: decision %v != %v", i, g, w)
		}
	}
}

func TestModelSnapshotRejectsForeignAndFutureFiles(t *testing.T) {
	if _, err := ReadModelSnapshot(strings.NewReader(`{"format":"something-else","version":1}`)); !errors.Is(err, ErrSnapshotFormat) {
		t.Errorf("foreign format: err = %v, want ErrSnapshotFormat", err)
	}
	if _, err := ReadModelSnapshot(strings.NewReader(`not json`)); !errors.Is(err, ErrSnapshotFormat) {
		t.Errorf("garbage: err = %v, want ErrSnapshotFormat", err)
	}
	if _, err := ReadModelSnapshot(strings.NewReader(`{"format":"adwars-model","version":999,"classifier":"adaboost"}`)); !errors.Is(err, ErrSnapshotVersion) {
		t.Errorf("future version: err = %v, want ErrSnapshotVersion", err)
	}
	if _, err := ReadModelSnapshot(strings.NewReader(`{"format":"adwars-model","version":1,"classifier":"forest","model":{}}`)); err == nil {
		t.Error("unknown classifier must error")
	}
}

func TestModelSnapshotWriteRequiresModel(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteModelSnapshot(&buf, &ModelSnapshot{FeatureSet: "keyword"}); err == nil {
		t.Error("nil model must error")
	}
}

// sealedModelBytes writes the trained snapshot and returns the raw sealed
// file bytes for corruption tests.
func sealedModelBytes(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteModelSnapshot(&buf, trainedSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestModelSnapshotIsSealed(t *testing.T) {
	data := sealedModelBytes(t)
	if !bytes.Contains(data, []byte(artifact.TrailerPrefix)) {
		t.Fatal("written snapshot carries no integrity trailer")
	}
	if !bytes.Contains(data, []byte(`"version":2`)) {
		t.Fatal("written snapshot is not schema version 2")
	}
	if _, err := ReadModelSnapshot(bytes.NewReader(data)); err != nil {
		t.Fatalf("clean sealed snapshot failed to load: %v", err)
	}
}

func TestModelSnapshotCorruptionDetected(t *testing.T) {
	data := sealedModelBytes(t)
	trailerAt := bytes.LastIndex(data, []byte(artifact.TrailerPrefix))

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated mid-payload", func(b []byte) []byte { return b[:len(b)/2] }},
		{"trailer truncated away", func(b []byte) []byte { return b[:trailerAt] }},
		{"bit flip in payload", func(b []byte) []byte {
			b = bytes.Clone(b)
			b[trailerAt/2] ^= 0x01
			return b
		}},
		{"bit flip in trailer checksum", func(b []byte) []byte {
			b = bytes.Clone(b)
			i := bytes.LastIndex(b, []byte("crc64=")) + len("crc64=")
			if b[i] == 'f' {
				b[i] = '0'
			} else {
				b[i] = 'f'
			}
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadModelSnapshot(bytes.NewReader(tc.mutate(data)))
			if err == nil {
				t.Fatal("corrupt snapshot loaded without error")
			}
			if !errors.Is(err, artifact.ErrCorrupt) && !errors.Is(err, ErrSnapshotFormat) {
				t.Fatalf("err = %v, want ErrCorrupt or ErrSnapshotFormat", err)
			}
		})
	}

	// Corruption classes the trailer can name precisely must wrap
	// artifact.ErrCorrupt specifically (serving distinguishes "corrupt" from
	// "foreign file" when counting rejected reloads).
	for _, name := range []string{"trailer truncated away", "bit flip in payload", "bit flip in trailer checksum"} {
		for _, tc := range cases {
			if tc.name != name {
				continue
			}
			if _, err := ReadModelSnapshot(bytes.NewReader(tc.mutate(data))); !errors.Is(err, artifact.ErrCorrupt) {
				t.Errorf("%s: err = %v, want artifact.ErrCorrupt", name, err)
			}
		}
	}
}

func TestModelSnapshotLegacyV1StillLoads(t *testing.T) {
	// A hand-built version-1 file: no trailer, pre-integrity schema.
	legacy := `{"format":"adwars-model","version":1,"classifier":"adaboost",` +
		`"feature_set":"keyword","vocab":["Identifier:offsetHeight"],` +
		`"model":{"alphas":[1],"models":[{"kernel":"linear","bias":-0.5,"coefs":[1],"vectors":[[0]]}]}}` + "\n"
	snap, err := ReadModelSnapshot(strings.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy v1 snapshot rejected: %v", err)
	}
	if snap.FeatureSet != "keyword" || len(snap.Vocab) != 1 {
		t.Fatalf("legacy snapshot mis-parsed: %+v", snap)
	}
}
