package ml

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

func trainedSnapshot(t *testing.T) *ModelSnapshot {
	t.Helper()
	ds := synthDataset(t, 20, 120, 7)
	model, err := TrainAdaBoost(ds, DefaultAdaBoostConfig(), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	return &ModelSnapshot{
		FeatureSet: "keyword",
		Vocab:      ds.Vocab,
		Model:      model,
		Meta:       ModelMeta{Positives: 20, Negatives: 120, TopK: 100, Seed: 7},
	}
}

func TestModelSnapshotRoundTrip(t *testing.T) {
	snap := trainedSnapshot(t)
	ds := synthDataset(t, 20, 120, 7)

	path := filepath.Join(t.TempDir(), "model.json")
	if err := SaveModelSnapshot(path, snap); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModelSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.FeatureSet != snap.FeatureSet {
		t.Errorf("feature set %q, want %q", got.FeatureSet, snap.FeatureSet)
	}
	if len(got.Vocab) != len(snap.Vocab) {
		t.Fatalf("vocab %d entries, want %d", len(got.Vocab), len(snap.Vocab))
	}
	for i := range got.Vocab {
		if got.Vocab[i] != snap.Vocab[i] {
			t.Fatalf("vocab[%d] = %q, want %q", i, got.Vocab[i], snap.Vocab[i])
		}
	}
	if got.Meta != snap.Meta {
		t.Errorf("meta %+v, want %+v", got.Meta, snap.Meta)
	}
	if got.Model.Rounds() != snap.Model.Rounds() {
		t.Fatalf("rounds %d, want %d", got.Model.Rounds(), snap.Model.Rounds())
	}
	if got.Model.AlphaSum() != snap.Model.AlphaSum() {
		t.Errorf("alpha sum %v, want %v", got.Model.AlphaSum(), snap.Model.AlphaSum())
	}
	// Decisions must be bit-identical, not merely close: the served model
	// has to agree with the trained one on every sample.
	for i, s := range ds.Samples {
		if g, w := got.Model.Decision(s), snap.Model.Decision(s); g != w {
			t.Fatalf("sample %d: decision %v != %v", i, g, w)
		}
	}
}

func TestModelSnapshotRejectsForeignAndFutureFiles(t *testing.T) {
	if _, err := ReadModelSnapshot(strings.NewReader(`{"format":"something-else","version":1}`)); !errors.Is(err, ErrSnapshotFormat) {
		t.Errorf("foreign format: err = %v, want ErrSnapshotFormat", err)
	}
	if _, err := ReadModelSnapshot(strings.NewReader(`not json`)); !errors.Is(err, ErrSnapshotFormat) {
		t.Errorf("garbage: err = %v, want ErrSnapshotFormat", err)
	}
	if _, err := ReadModelSnapshot(strings.NewReader(`{"format":"adwars-model","version":999,"classifier":"adaboost"}`)); !errors.Is(err, ErrSnapshotVersion) {
		t.Errorf("future version: err = %v, want ErrSnapshotVersion", err)
	}
	if _, err := ReadModelSnapshot(strings.NewReader(`{"format":"adwars-model","version":1,"classifier":"forest","model":{}}`)); err == nil {
		t.Error("unknown classifier must error")
	}
}

func TestModelSnapshotWriteRequiresModel(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteModelSnapshot(&buf, &ModelSnapshot{FeatureSet: "keyword"}); err == nil {
		t.Error("nil model must error")
	}
}
