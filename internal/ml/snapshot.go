package ml

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"adwars/internal/artifact"
)

// Model snapshots are the wire format between the offline training pipeline
// (adwars-detect -save-model) and the online serving layer (adwars-serve):
// the trained AdaBoost ensemble plus the selected vocabulary it was trained
// over, in one versioned file. The vocabulary travels with the model because
// a model is only meaningful against the exact feature indices it saw at
// training time.
//
// Since schema version 2 every snapshot is sealed with an
// artifact integrity trailer (CRC64 + payload length), so torn writes and
// bit rot are detected at load instead of silently skewing decisions.
// Version-1 files predate the trailer and still load.

const (
	// ModelSnapshotFormat is the format tag every model snapshot carries.
	ModelSnapshotFormat = "adwars-model"
	// ModelSnapshotVersion is the current snapshot schema version. Readers
	// reject snapshots from a newer (unknown) schema instead of guessing.
	ModelSnapshotVersion = 2
	// modelSnapshotSealedVersion is the first schema version that requires
	// an integrity trailer; reading such a file without one means the
	// trailer (and possibly payload) was truncated away.
	modelSnapshotSealedVersion = 2
)

// ErrSnapshotFormat reports a file that is not a model snapshot at all.
var ErrSnapshotFormat = errors.New("ml: not an adwars model snapshot")

// ErrSnapshotVersion reports a snapshot written by an unknown (newer)
// schema version.
var ErrSnapshotVersion = errors.New("ml: unsupported model snapshot version")

// ModelMeta records where a snapshot came from — training corpus shape and
// hyperparameters. Purely informational; serving never branches on it.
type ModelMeta struct {
	Positives int   `json:"positives,omitempty"`
	Negatives int   `json:"negatives,omitempty"`
	TopK      int   `json:"top_k,omitempty"`
	Seed      int64 `json:"seed,omitempty"`
}

// ModelSnapshot is a trained ensemble frozen for serving: the classifier,
// the feature set it extracts ("keyword", "literal", "all"), and the
// selected vocabulary defining its feature indices.
type ModelSnapshot struct {
	FeatureSet string
	Vocab      []string
	Model      *AdaBoost
	Meta       ModelMeta
}

// modelSnapshotJSON is the on-disk schema.
type modelSnapshotJSON struct {
	Format     string          `json:"format"`
	Version    int             `json:"version"`
	Classifier string          `json:"classifier"`
	FeatureSet string          `json:"feature_set"`
	Vocab      []string        `json:"vocab"`
	Model      json.RawMessage `json:"model"`
	Meta       ModelMeta       `json:"meta,omitempty"`
}

// WriteModelSnapshot writes the snapshot to w in the current schema
// version, sealed with an integrity trailer.
func WriteModelSnapshot(w io.Writer, s *ModelSnapshot) error {
	if s.Model == nil {
		return fmt.Errorf("ml: snapshot has no model")
	}
	model, err := json.Marshal(s.Model)
	if err != nil {
		return err
	}
	doc := modelSnapshotJSON{
		Format:     ModelSnapshotFormat,
		Version:    ModelSnapshotVersion,
		Classifier: "adaboost",
		FeatureSet: s.FeatureSet,
		Vocab:      s.Vocab,
		Model:      model,
		Meta:       s.Meta,
	}
	payload, err := json.Marshal(&doc)
	if err != nil {
		return err
	}
	payload = append(payload, '\n')
	_, err = w.Write(artifact.Seal(payload))
	return err
}

// ReadModelSnapshot parses a snapshot, rejecting foreign files
// (ErrSnapshotFormat), unknown schema versions (ErrSnapshotVersion), and
// corrupt files — bad checksum, torn length framing, or a sealed-version
// payload whose trailer was truncated away (errors wrap
// artifact.ErrCorrupt).
func ReadModelSnapshot(r io.Reader) (*ModelSnapshot, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("ml: reading model snapshot: %w", err)
	}
	payload, sealed, err := artifact.Open(data)
	if err != nil {
		return nil, fmt.Errorf("ml: model snapshot: %w", err)
	}
	var doc modelSnapshotJSON
	if err := json.Unmarshal(payload, &doc); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotFormat, err)
	}
	if doc.Format != ModelSnapshotFormat {
		return nil, fmt.Errorf("%w: format %q", ErrSnapshotFormat, doc.Format)
	}
	if doc.Version < 1 || doc.Version > ModelSnapshotVersion {
		return nil, fmt.Errorf("%w: version %d (supported: 1..%d)",
			ErrSnapshotVersion, doc.Version, ModelSnapshotVersion)
	}
	if doc.Version >= modelSnapshotSealedVersion && !sealed {
		return nil, fmt.Errorf("ml: model snapshot: %w",
			artifact.Corruptf("missing-trailer",
				"version %d snapshot has no integrity trailer (truncated?)", doc.Version))
	}
	if doc.Classifier != "adaboost" {
		return nil, fmt.Errorf("ml: unknown classifier %q in snapshot", doc.Classifier)
	}
	model := &AdaBoost{}
	if err := json.Unmarshal(doc.Model, model); err != nil {
		return nil, fmt.Errorf("ml: snapshot model: %w", err)
	}
	if model.Rounds() == 0 {
		return nil, fmt.Errorf("ml: snapshot model has no rounds")
	}
	return &ModelSnapshot{
		FeatureSet: doc.FeatureSet,
		Vocab:      doc.Vocab,
		Model:      model,
		Meta:       doc.Meta,
	}, nil
}

// SaveModelSnapshot writes the snapshot to path atomically (temp file +
// rename), so a reader never observes a torn snapshot mid-write — the
// hot-reload path depends on this.
func SaveModelSnapshot(path string, s *ModelSnapshot) error {
	tmp, err := os.CreateTemp(dirOf(path), ".model-*.json")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := WriteModelSnapshot(tmp, s); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadModelSnapshot reads a snapshot from path.
func LoadModelSnapshot(path string) (*ModelSnapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := ReadModelSnapshot(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// dirOf returns the directory containing path ("." for bare names), so the
// temp file lands on the same filesystem as the final rename target.
func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i+1]
		}
	}
	return "."
}
