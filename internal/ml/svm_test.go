package ml

import (
	"math"
	"math/rand"
	"testing"

	"adwars/internal/features"
)

// synthDataset builds a separable-ish synthetic dataset: positives carry
// features from a "bait" pool, negatives from a "benign" pool, with a
// little overlap noise.
func synthDataset(t *testing.T, nPos, nNeg int, seed int64) *features.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	baitPool := []string{
		"Identifier:offsetHeight", "Identifier:offsetWidth",
		"Identifier:clientHeight", "Literal:abp", "Literal:adblock",
		"IfStatement:detected", "Identifier:createElement",
	}
	benignPool := []string{
		"Identifier:jquery", "Identifier:slider", "Literal:menu",
		"Identifier:analytics", "Literal:carousel", "Identifier:ajax",
		"CallExpression:init",
	}
	shared := []string{"Identifier:document", "Identifier:window", "Literal:div"}

	var sets []map[string]bool
	var labels []int
	draw := func(pool []string, k int, dst map[string]bool) {
		for i := 0; i < k; i++ {
			dst[pool[rng.Intn(len(pool))]] = true
		}
	}
	for i := 0; i < nPos; i++ {
		m := make(map[string]bool)
		draw(baitPool, 4, m)
		draw(shared, 2, m)
		if rng.Float64() < 0.1 {
			draw(benignPool, 1, m)
		}
		sets = append(sets, m)
		labels = append(labels, +1)
	}
	for i := 0; i < nNeg; i++ {
		m := make(map[string]bool)
		draw(benignPool, 4, m)
		draw(shared, 2, m)
		if rng.Float64() < 0.05 {
			draw(baitPool, 1, m)
		}
		sets = append(sets, m)
		labels = append(labels, -1)
	}
	ds, err := features.Build(sets, labels)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestSVMSeparable(t *testing.T) {
	ds := synthDataset(t, 40, 120, 1)
	m, err := TrainSVM(ds, nil, DefaultSVMConfig(), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	c := Evaluate(m, ds)
	if c.TPRate() < 0.9 {
		t.Fatalf("training TP rate %.2f too low: %v", c.TPRate(), c)
	}
	if c.FPRate() > 0.1 {
		t.Fatalf("training FP rate %.2f too high: %v", c.FPRate(), c)
	}
	if m.NumSupportVectors() == 0 {
		t.Fatal("no support vectors retained")
	}
}

func TestSVMDeterministic(t *testing.T) {
	ds := synthDataset(t, 20, 60, 2)
	m1, err := TrainSVM(ds, nil, DefaultSVMConfig(), rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := TrainSVM(ds, nil, DefaultSVMConfig(), rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range ds.Samples {
		if m1.Predict(s) != m2.Predict(s) {
			t.Fatalf("sample %d: nondeterministic prediction", i)
		}
	}
}

func TestSVMRejectsDegenerateInputs(t *testing.T) {
	empty := &features.Dataset{}
	if _, err := TrainSVM(empty, nil, DefaultSVMConfig(), rand.New(rand.NewSource(1))); err == nil {
		t.Error("empty dataset must error")
	}
	onlyPos, _ := features.Build(
		[]map[string]bool{{"a": true}, {"b": true}}, []int{1, 1})
	if _, err := TrainSVM(onlyPos, nil, DefaultSVMConfig(), rand.New(rand.NewSource(1))); err == nil {
		t.Error("single-class dataset must error")
	}
	ds := synthDataset(t, 5, 5, 3)
	if _, err := TrainSVM(ds, []float64{1}, DefaultSVMConfig(), rand.New(rand.NewSource(1))); err == nil {
		t.Error("weight length mismatch must error")
	}
}

func TestSVMWeightsShiftDecision(t *testing.T) {
	// Two conflicting points with identical features except one marker:
	// heavily weighting the positives should pull predictions positive on
	// the ambiguous region.
	sets := []map[string]bool{
		{"x": true, "p": true},
		{"x": true},
		{"x": true, "n": true},
		{"x": true, "n2": true},
	}
	labels := []int{1, 1, -1, -1}
	ds, _ := features.Build(sets, labels)
	cfg := DefaultSVMConfig()
	cfg.Kernel = RBF{Gamma: 0.3}

	heavyPos := []float64{0.45, 0.45, 0.05, 0.05}
	m, err := TrainSVM(ds, heavyPos, cfg, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	amb := ds.Project(map[string]bool{"x": true})
	if m.Predict(amb) != 1 {
		t.Error("positively-weighted SVM should label ambiguous point +1")
	}
}

func TestRBFKernelProperties(t *testing.T) {
	k := RBF{Gamma: 0.1}
	a := features.Sample{1, 2, 3}
	b := features.Sample{2, 3, 4}
	if got := k.Eval(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("K(a,a) = %v, want 1", got)
	}
	ab, ba := k.Eval(a, b), k.Eval(b, a)
	if ab != ba {
		t.Fatal("kernel must be symmetric")
	}
	if ab <= 0 || ab >= 1 {
		t.Fatalf("K(a,b) = %v, want in (0,1)", ab)
	}
	// ||a-b||² = 3+3-2*2 = 2 → exp(-0.2)
	if math.Abs(ab-math.Exp(-0.2)) > 1e-12 {
		t.Fatalf("K(a,b) = %v", ab)
	}
}

func TestLinearKernel(t *testing.T) {
	k := Linear{}
	a := features.Sample{1, 2, 3}
	b := features.Sample{3, 4}
	if got := k.Eval(a, b); got != 1 {
		t.Fatalf("Linear(a,b) = %v, want 1", got)
	}
}

func TestGramCacheAgreesWithDirect(t *testing.T) {
	ds := synthDataset(t, 10, 30, 4)
	k := RBF{Gamma: 0.05}
	g := newGram(k, ds.Samples, 0, 1)
	for i := 0; i < ds.Len(); i += 7 {
		for j := 0; j < ds.Len(); j += 5 {
			want := k.Eval(ds.Samples[i], ds.Samples[j])
			if got := g.at(i, j); math.Abs(got-want) > 1e-12 {
				t.Fatalf("gram(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}
