package ml

import (
	"math/rand"
	"testing"

	"adwars/internal/features"
)

func TestAdaBoostBeatsOrMatchesSVMOnImbalanced(t *testing.T) {
	ds := synthDataset(t, 30, 300, 11) // ~10:1 imbalance like the paper
	svm, err := TrainSVM(ds, nil, DefaultSVMConfig(), rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	boost, err := TrainAdaBoost(ds, DefaultAdaBoostConfig(), rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	cSVM := Evaluate(svm, ds)
	cBoost := Evaluate(boost, ds)
	if cBoost.TPRate()+1e-9 < cSVM.TPRate()-0.05 {
		t.Fatalf("AdaBoost TP %.3f clearly below SVM TP %.3f", cBoost.TPRate(), cSVM.TPRate())
	}
	if cBoost.TPRate() < 0.9 {
		t.Fatalf("AdaBoost training TP rate %.3f too low", cBoost.TPRate())
	}
}

func TestAdaBoostRoundsBounded(t *testing.T) {
	ds := synthDataset(t, 20, 60, 12)
	cfg := DefaultAdaBoostConfig()
	cfg.Rounds = 5
	b, err := TrainAdaBoost(ds, cfg, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if b.Rounds() < 1 || b.Rounds() > 5 {
		t.Fatalf("rounds = %d, want 1..5", b.Rounds())
	}
}

func TestAdaBoostConfigValidation(t *testing.T) {
	ds := synthDataset(t, 5, 15, 13)
	cfg := DefaultAdaBoostConfig()
	cfg.Rounds = 0
	if _, err := TrainAdaBoost(ds, cfg, rand.New(rand.NewSource(1))); err == nil {
		t.Error("rounds=0 must error")
	}
	empty := &features.Dataset{}
	if _, err := TrainAdaBoost(empty, DefaultAdaBoostConfig(), rand.New(rand.NewSource(1))); err == nil {
		t.Error("empty dataset must error")
	}
}

func TestAdaBoostDeterministic(t *testing.T) {
	ds := synthDataset(t, 15, 45, 14)
	b1, err := TrainAdaBoost(ds, DefaultAdaBoostConfig(), rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := TrainAdaBoost(ds, DefaultAdaBoostConfig(), rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range ds.Samples {
		if b1.Predict(s) != b2.Predict(s) {
			t.Fatalf("sample %d: nondeterministic", i)
		}
	}
}

func TestConfusionMetrics(t *testing.T) {
	c := Confusion{TP: 90, FN: 10, FP: 5, TN: 95}
	if got := c.TPRate(); got != 0.9 {
		t.Errorf("TPRate = %v", got)
	}
	if got := c.FPRate(); got != 0.05 {
		t.Errorf("FPRate = %v", got)
	}
	if got := c.Accuracy(); got != 0.925 {
		t.Errorf("Accuracy = %v", got)
	}
	if got := c.Precision(); got < 0.94 || got > 0.95 {
		t.Errorf("Precision = %v", got)
	}
	var zero Confusion
	if zero.TPRate() != 0 || zero.FPRate() != 0 || zero.Accuracy() != 0 || zero.Precision() != 0 {
		t.Error("zero confusion must not divide by zero")
	}
}

func TestConfusionObserveAndAdd(t *testing.T) {
	var c Confusion
	c.Observe(1, 1)
	c.Observe(1, -1)
	c.Observe(-1, 1)
	c.Observe(-1, -1)
	if c.TP != 1 || c.FN != 1 || c.FP != 1 || c.TN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	var sum Confusion
	sum.Add(c)
	sum.Add(c)
	if sum.TP != 2 || sum.TN != 2 {
		t.Fatalf("sum = %+v", sum)
	}
}

func TestCrossValidate(t *testing.T) {
	ds := synthDataset(t, 30, 90, 15)
	c, err := CrossValidate(ds, 5, SVMTrainer(DefaultSVMConfig()), 42)
	if err != nil {
		t.Fatal(err)
	}
	total := c.TP + c.FN + c.FP + c.TN
	if total != ds.Len() {
		t.Fatalf("CV covered %d samples, want %d", total, ds.Len())
	}
	if c.TPRate() < 0.8 {
		t.Fatalf("CV TP rate %.3f too low on separable data", c.TPRate())
	}
}

func TestCrossValidateDeterministic(t *testing.T) {
	ds := synthDataset(t, 20, 60, 16)
	c1, err := CrossValidate(ds, 4, SVMTrainer(DefaultSVMConfig()), 7)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := CrossValidate(ds, 4, SVMTrainer(DefaultSVMConfig()), 7)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatalf("CV not deterministic: %v vs %v", c1, c2)
	}
}

func TestCrossValidateErrors(t *testing.T) {
	ds := synthDataset(t, 5, 15, 17)
	if _, err := CrossValidate(ds, 1, SVMTrainer(DefaultSVMConfig()), 1); err == nil {
		t.Error("k=1 must error")
	}
	tiny := ds.Subset([]int{0, 1})
	if _, err := CrossValidate(tiny, 10, SVMTrainer(DefaultSVMConfig()), 1); err == nil {
		t.Error("k greater than samples must error")
	}
}

func TestStratifiedFoldsPreserveImbalance(t *testing.T) {
	ds := synthDataset(t, 20, 200, 18)
	folds := stratifiedFolds(ds, 10, rand.New(rand.NewSource(1)))
	for f, idx := range folds {
		pos := 0
		for _, i := range idx {
			if ds.Labels[i] > 0 {
				pos++
			}
		}
		if pos != 2 {
			t.Errorf("fold %d has %d positives, want 2", f, pos)
		}
	}
}
