package ml

import (
	"fmt"
	"math"
	"math/rand"

	"adwars/internal/features"
)

// Classifier predicts the label (+1 or −1) of a sparse binary sample.
type Classifier interface {
	Predict(s features.Sample) int
}

// SVMConfig holds SVM hyperparameters. The zero value is not usable; use
// DefaultSVMConfig as a starting point.
type SVMConfig struct {
	// Kernel is the kernel function (default RBF).
	Kernel Kernel
	// C is the soft-margin penalty.
	C float64
	// Tol is the KKT violation tolerance.
	Tol float64
	// MaxPasses is the number of full passes without alpha changes that
	// ends SMO.
	MaxPasses int
	// MaxIter hard-bounds total optimization sweeps.
	MaxIter int
}

// DefaultSVMConfig mirrors the paper's setup: RBF kernel, moderate C.
func DefaultSVMConfig() SVMConfig {
	return SVMConfig{
		Kernel:    RBF{Gamma: 0.05},
		C:         1.0,
		Tol:       1e-3,
		MaxPasses: 3,
		MaxIter:   200,
	}
}

// SVM is a trained support vector machine. Only support vectors (α > 0)
// are retained for prediction.
type SVM struct {
	kernel  Kernel
	vectors []features.Sample
	coefs   []float64 // αᵢyᵢ of each support vector
	bias    float64
}

// NumSupportVectors returns the number of retained support vectors.
func (m *SVM) NumSupportVectors() int { return len(m.vectors) }

// Decision returns the signed decision value Σ αᵢyᵢK(xᵢ,s) + b.
func (m *SVM) Decision(s features.Sample) float64 {
	v := m.bias
	for i, sv := range m.vectors {
		v += m.coefs[i] * m.kernel.Eval(sv, s)
	}
	return v
}

// Predict implements Classifier.
func (m *SVM) Predict(s features.Sample) int {
	if m.Decision(s) >= 0 {
		return +1
	}
	return -1
}

// TrainSVM trains a soft-margin SVM on the dataset with simplified SMO
// (Platt's algorithm with random second-choice heuristic). weights, when
// non-nil, scales each sample's penalty Cᵢ = C·wᵢ·n — the mechanism
// AdaBoost uses to focus component classifiers on hard samples. rng drives
// the pair selection and must be non-nil for reproducibility.
func TrainSVM(ds *features.Dataset, weights []float64, cfg SVMConfig, rng *rand.Rand) (*SVM, error) {
	n := ds.Len()
	if n == 0 {
		return nil, fmt.Errorf("ml: empty training set")
	}
	if weights != nil && len(weights) != n {
		return nil, fmt.Errorf("ml: %d weights for %d samples", len(weights), n)
	}
	if cfg.Kernel == nil {
		cfg.Kernel = RBF{Gamma: 0.05}
	}
	hasPos, hasNeg := false, false
	for _, l := range ds.Labels {
		if l > 0 {
			hasPos = true
		} else {
			hasNeg = true
		}
	}
	if !hasPos || !hasNeg {
		return nil, fmt.Errorf("ml: training set needs both classes")
	}

	y := make([]float64, n)
	for i, l := range ds.Labels {
		if l > 0 {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	// Per-sample C.
	cs := make([]float64, n)
	for i := range cs {
		cs[i] = cfg.C
		if weights != nil {
			cs[i] = cfg.C * weights[i] * float64(n)
			if cs[i] < 1e-8 {
				cs[i] = 1e-8
			}
		}
	}

	g := newGram(cfg.Kernel, ds.Samples)
	alpha := make([]float64, n)
	b := 0.0

	decision := func(i int) float64 {
		v := b
		for j := 0; j < n; j++ {
			if alpha[j] != 0 {
				v += alpha[j] * y[j] * g.at(j, i)
			}
		}
		return v
	}

	passes, iter := 0, 0
	for passes < cfg.MaxPasses && iter < cfg.MaxIter {
		iter++
		changed := 0
		for i := 0; i < n; i++ {
			ei := decision(i) - y[i]
			if !((y[i]*ei < -cfg.Tol && alpha[i] < cs[i]) || (y[i]*ei > cfg.Tol && alpha[i] > 0)) {
				continue
			}
			j := rng.Intn(n - 1)
			if j >= i {
				j++
			}
			ej := decision(j) - y[j]

			ai, aj := alpha[i], alpha[j]
			var lo, hi float64
			if y[i] != y[j] {
				lo = math.Max(0, aj-ai)
				hi = math.Min(cs[j], cs[i]+aj-ai)
			} else {
				lo = math.Max(0, ai+aj-cs[i])
				hi = math.Min(cs[j], ai+aj)
			}
			if lo >= hi {
				continue
			}
			eta := 2*g.at(i, j) - g.at(i, i) - g.at(j, j)
			if eta >= 0 {
				continue
			}
			ajNew := aj - y[j]*(ei-ej)/eta
			if ajNew > hi {
				ajNew = hi
			} else if ajNew < lo {
				ajNew = lo
			}
			if math.Abs(ajNew-aj) < 1e-7 {
				continue
			}
			aiNew := ai + y[i]*y[j]*(aj-ajNew)

			b1 := b - ei - y[i]*(aiNew-ai)*g.at(i, i) - y[j]*(ajNew-aj)*g.at(i, j)
			b2 := b - ej - y[i]*(aiNew-ai)*g.at(i, j) - y[j]*(ajNew-aj)*g.at(j, j)
			switch {
			case aiNew > 0 && aiNew < cs[i]:
				b = b1
			case ajNew > 0 && ajNew < cs[j]:
				b = b2
			default:
				b = (b1 + b2) / 2
			}
			alpha[i], alpha[j] = aiNew, ajNew
			changed++
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
	}

	m := &SVM{kernel: cfg.Kernel, bias: b}
	for i := 0; i < n; i++ {
		if alpha[i] > 1e-8 {
			m.vectors = append(m.vectors, ds.Samples[i])
			m.coefs = append(m.coefs, alpha[i]*y[i])
		}
	}
	if len(m.vectors) == 0 {
		// Degenerate optimization outcome: fall back to the class prior.
		pos := 0
		for _, l := range ds.Labels {
			if l > 0 {
				pos++
			}
		}
		if 2*pos >= n {
			m.bias = 1
		} else {
			m.bias = -1
		}
	}
	return m, nil
}
