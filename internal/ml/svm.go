package ml

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"adwars/internal/features"
)

// Classifier predicts the label (+1 or −1) of a sparse binary sample.
type Classifier interface {
	Predict(s features.Sample) int
}

// SVMConfig holds SVM hyperparameters. The zero value is not usable; use
// DefaultSVMConfig as a starting point.
type SVMConfig struct {
	// Kernel is the kernel function (default RBF).
	Kernel Kernel
	// C is the soft-margin penalty.
	C float64
	// Tol is the KKT violation tolerance.
	Tol float64
	// MaxPasses is the number of full passes without alpha changes that
	// ends SMO.
	MaxPasses int
	// MaxIter hard-bounds total optimization sweeps.
	MaxIter int
	// KernelCache bounds the number of cached kernel values (Gram-matrix
	// entries) a training run may hold: a full matrix when n² fits, an
	// LRU of rows when only some do, and no caching at all when negative
	// — the reference path the differential tests and the sequential
	// benchmark baseline use. 0 means DefaultKernelCache. Caching never
	// changes results: cached and uncached runs are bit-identical.
	KernelCache int
	// Workers caps Gram-precompute fan-out over the shared worker pool
	// (0 = GOMAXPROCS).
	Workers int
}

// DefaultSVMConfig mirrors the paper's setup: RBF kernel, moderate C.
func DefaultSVMConfig() SVMConfig {
	return SVMConfig{
		Kernel:    RBF{Gamma: 0.05},
		C:         1.0,
		Tol:       1e-3,
		MaxPasses: 3,
		MaxIter:   200,
	}
}

// SVM is a trained support vector machine. Only support vectors (α > 0)
// are retained for prediction.
type SVM struct {
	kernel  Kernel
	vectors []features.Sample
	coefs   []float64 // αᵢyᵢ of each support vector
	bias    float64
	svIdx   []int // training-set indices of the support vectors
}

// NumSupportVectors returns the number of retained support vectors.
func (m *SVM) NumSupportVectors() int { return len(m.vectors) }

// Decision returns the signed decision value Σ αᵢyᵢK(xᵢ,s) + b.
func (m *SVM) Decision(s features.Sample) float64 {
	v := m.bias
	for i, sv := range m.vectors {
		v += m.coefs[i] * m.kernel.Eval(sv, s)
	}
	return v
}

// decisionGram is Decision for a sample of the training set itself, served
// from the training-run kernel cache instead of re-evaluating the kernel
// against every support vector. AdaBoost's per-round error pass uses it.
func (m *SVM) decisionGram(g *gram, sample int) float64 {
	v := m.bias
	for k, i := range m.svIdx {
		v += m.coefs[k] * g.at(i, sample)
	}
	return v
}

// Predict implements Classifier.
func (m *SVM) Predict(s features.Sample) int {
	if m.Decision(s) >= 0 {
		return +1
	}
	return -1
}

// TrainSVM trains a soft-margin SVM on the dataset with simplified SMO
// (Platt's algorithm with random second-choice heuristic). weights, when
// non-nil, scales each sample's penalty Cᵢ = C·wᵢ·n — the mechanism
// AdaBoost uses to focus component classifiers on hard samples. rng drives
// the pair selection and must be non-nil for reproducibility.
func TrainSVM(ds *features.Dataset, weights []float64, cfg SVMConfig, rng *rand.Rand) (*SVM, error) {
	if err := checkTrainInputs(ds, weights); err != nil {
		return nil, err
	}
	cfg.Kernel = resolveKernel(cfg.Kernel)
	g := newGram(cfg.Kernel, ds.Samples, cfg.KernelCache, cfg.Workers)
	return trainSVMGram(ds, weights, cfg, rng, g)
}

// checkTrainInputs validates the dataset and weight vector before the
// kernel cache is built.
func checkTrainInputs(ds *features.Dataset, weights []float64) error {
	n := ds.Len()
	if n == 0 {
		return fmt.Errorf("ml: empty training set")
	}
	if weights != nil && len(weights) != n {
		return fmt.Errorf("ml: %d weights for %d samples", len(weights), n)
	}
	hasPos, hasNeg := false, false
	for _, l := range ds.Labels {
		if l > 0 {
			hasPos = true
		} else {
			hasNeg = true
		}
	}
	if !hasPos || !hasNeg {
		return fmt.Errorf("ml: training set needs both classes")
	}
	return nil
}

// trainSVMGram is the SMO core. g must cover exactly ds.Samples; callers
// that train repeatedly on the same samples (AdaBoost rounds, CV folds
// gathered from a corpus-wide cache) pass a shared gram so the kernel is
// evaluated once per pair across the whole run.
//
// The decision sum iterates a sorted active set of nonzero-α indices over
// precomputed αᵢyᵢ coefficients and a contiguous Gram row — the same terms
// in the same order as summing all indices and skipping zeros, so results
// are bit-identical at every cache policy.
func trainSVMGram(ds *features.Dataset, weights []float64, cfg SVMConfig, rng *rand.Rand, g *gram) (*SVM, error) {
	if err := checkTrainInputs(ds, weights); err != nil {
		return nil, err
	}
	cfg.Kernel = resolveKernel(cfg.Kernel)
	n := ds.Len()

	y := make([]float64, n)
	for i, l := range ds.Labels {
		if l > 0 {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	// Per-sample C.
	cs := make([]float64, n)
	for i := range cs {
		cs[i] = cfg.C
		if weights != nil {
			cs[i] = cfg.C * weights[i] * float64(n)
			if cs[i] < 1e-8 {
				cs[i] = 1e-8
			}
		}
	}

	alpha := make([]float64, n)
	coef := make([]float64, n) // αᵢyᵢ, maintained alongside alpha
	var active []int32         // sorted indices with α ≠ 0
	b := 0.0

	setAlpha := func(i int, v float64) {
		was, now := alpha[i] != 0, v != 0
		alpha[i] = v
		coef[i] = v * y[i]
		if now == was {
			return
		}
		k := sort.Search(len(active), func(k int) bool { return active[k] >= int32(i) })
		if now {
			active = append(active, 0)
			copy(active[k+1:], active[k:])
			active[k] = int32(i)
		} else {
			active = append(active[:k], active[k+1:]...)
		}
	}

	decision := func(i int) float64 {
		v := b
		if row := g.row(i); row != nil {
			for _, j := range active {
				v += coef[j] * row[j]
			}
		} else {
			for _, j := range active {
				v += coef[j] * g.at(int(j), i)
			}
		}
		return v
	}

	passes, iter := 0, 0
	for passes < cfg.MaxPasses && iter < cfg.MaxIter {
		iter++
		changed := 0
		for i := 0; i < n; i++ {
			ei := decision(i) - y[i]
			if !((y[i]*ei < -cfg.Tol && alpha[i] < cs[i]) || (y[i]*ei > cfg.Tol && alpha[i] > 0)) {
				continue
			}
			j := rng.Intn(n - 1)
			if j >= i {
				j++
			}
			ej := decision(j) - y[j]

			ai, aj := alpha[i], alpha[j]
			var lo, hi float64
			if y[i] != y[j] {
				lo = math.Max(0, aj-ai)
				hi = math.Min(cs[j], cs[i]+aj-ai)
			} else {
				lo = math.Max(0, ai+aj-cs[i])
				hi = math.Min(cs[j], ai+aj)
			}
			if lo >= hi {
				continue
			}
			eta := 2*g.at(i, j) - g.at(i, i) - g.at(j, j)
			if eta >= 0 {
				continue
			}
			ajNew := aj - y[j]*(ei-ej)/eta
			if ajNew > hi {
				ajNew = hi
			} else if ajNew < lo {
				ajNew = lo
			}
			if math.Abs(ajNew-aj) < 1e-7 {
				continue
			}
			aiNew := ai + y[i]*y[j]*(aj-ajNew)

			b1 := b - ei - y[i]*(aiNew-ai)*g.at(i, i) - y[j]*(ajNew-aj)*g.at(i, j)
			b2 := b - ej - y[i]*(aiNew-ai)*g.at(i, j) - y[j]*(ajNew-aj)*g.at(j, j)
			switch {
			case aiNew > 0 && aiNew < cs[i]:
				b = b1
			case ajNew > 0 && ajNew < cs[j]:
				b = b2
			default:
				b = (b1 + b2) / 2
			}
			setAlpha(i, aiNew)
			setAlpha(j, ajNew)
			changed++
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
	}

	m := &SVM{kernel: cfg.Kernel, bias: b}
	for i := 0; i < n; i++ {
		if alpha[i] > 1e-8 {
			m.vectors = append(m.vectors, ds.Samples[i])
			m.coefs = append(m.coefs, alpha[i]*y[i])
			m.svIdx = append(m.svIdx, i)
		}
	}
	if len(m.vectors) == 0 {
		// Degenerate optimization outcome: fall back to the class prior.
		pos := 0
		for _, l := range ds.Labels {
			if l > 0 {
				pos++
			}
		}
		if 2*pos >= n {
			m.bias = 1
		} else {
			m.bias = -1
		}
	}
	return m, nil
}
