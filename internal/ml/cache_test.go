package ml

import (
	"math/rand"
	"testing"
)

// trainWithCache trains on a fixed-seed dataset under one cache policy.
func trainWithCache(t *testing.T, cacheEntries int) (*SVM, *AdaBoost) {
	t.Helper()
	ds := synthDataset(t, 30, 90, 17)
	svmCfg := DefaultSVMConfig()
	svmCfg.KernelCache = cacheEntries
	m, err := TrainSVM(ds, nil, svmCfg, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	adaCfg := DefaultAdaBoostConfig()
	adaCfg.SVM.KernelCache = cacheEntries
	b, err := TrainAdaBoost(ds, adaCfg, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	return m, b
}

// TestKernelCacheDifferential is the kernel-cache correctness gate: SMO
// under the full-matrix, LRU-row, and no-cache policies must produce
// identical support vectors, identical bias, and identical decision values
// — caching may only change where kernel values come from, never what they
// are.
func TestKernelCacheDifferential(t *testing.T) {
	ds := synthDataset(t, 30, 90, 17)
	n := ds.Len()
	type run struct {
		name    string
		entries int
	}
	runs := []run{
		{"full", 0},         // default budget: full Gram precompute
		{"lru", 7 * n},      // budget for only 7 rows: LRU policy
		{"uncached", -1},    // reference path: every eval on demand
		{"tiny-lru", n + 1}, // single-row LRU, worst-case thrash
	}
	base, baseBoost := trainWithCache(t, runs[0].entries)
	for _, r := range runs[1:] {
		m, bb := trainWithCache(t, r.entries)
		if m.NumSupportVectors() != base.NumSupportVectors() {
			t.Fatalf("%s: %d support vectors, full-cache run has %d",
				r.name, m.NumSupportVectors(), base.NumSupportVectors())
		}
		if m.bias != base.bias {
			t.Fatalf("%s: bias %v != %v", r.name, m.bias, base.bias)
		}
		for k := range m.coefs {
			if m.coefs[k] != base.coefs[k] || m.svIdx[k] != base.svIdx[k] {
				t.Fatalf("%s: support vector %d diverges (coef %v vs %v, idx %d vs %d)",
					r.name, k, m.coefs[k], base.coefs[k], m.svIdx[k], base.svIdx[k])
			}
		}
		for i := 0; i < n; i++ {
			if got, want := m.Decision(ds.Samples[i]), base.Decision(ds.Samples[i]); got != want {
				t.Fatalf("%s: decision(%d) = %v, want %v", r.name, i, got, want)
			}
			if got, want := bb.Decision(ds.Samples[i]), baseBoost.Decision(ds.Samples[i]); got != want {
				t.Fatalf("%s: boost decision(%d) = %v, want %v", r.name, i, got, want)
			}
		}
	}
}

// TestGramPoliciesAgree checks every cache policy returns the same kernel
// values as a direct evaluation, including after LRU evictions.
func TestGramPoliciesAgree(t *testing.T) {
	ds := synthDataset(t, 12, 36, 4)
	n := ds.Len()
	k := RBF{Gamma: 0.05}
	direct := newGram(k, ds.Samples, -1, 1)
	full := newGram(k, ds.Samples, 0, 2)
	lru := newGram(k, ds.Samples, 3*n, 1)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := k.Eval(ds.Samples[i], ds.Samples[j])
			for name, g := range map[string]*gram{"direct": direct, "full": full, "lru": lru} {
				if got := g.at(i, j); got != want {
					t.Fatalf("%s: at(%d,%d) = %v, want %v", name, i, j, got, want)
				}
			}
			if row := full.row(i); row[j] != want {
				t.Fatalf("full row(%d)[%d] = %v, want %v", i, j, row[j], want)
			}
			if row := lru.row(i); row[j] != want {
				t.Fatalf("lru row(%d)[%d] = %v, want %v", i, j, row[j], want)
			}
		}
	}
	if direct.row(0) != nil {
		t.Fatal("direct policy must not serve rows")
	}
}

// TestGramSubsetGathersExactValues checks the fold-view gather path: a
// subset gram over shuffled indices must serve exactly the parent's
// values, and a subset of an uncached parent must re-derive them.
func TestGramSubsetGathersExactValues(t *testing.T) {
	ds := synthDataset(t, 15, 45, 8)
	k := RBF{Gamma: 0.02}
	idx := []int{53, 2, 17, 4, 31, 8, 44, 0, 29}
	for _, entries := range []int{0, -1} {
		parent := newGram(k, ds.Samples, entries, 1)
		sub := parent.subset(idx, entries, 1)
		for a, i := range idx {
			for b, j := range idx {
				want := k.Eval(ds.Samples[i], ds.Samples[j])
				if got := sub.at(a, b); got != want {
					t.Fatalf("entries=%d: subset at(%d,%d) = %v, want %v", entries, a, b, got, want)
				}
			}
		}
		if int(sub.pops[0]) != ds.Samples[idx[0]].Popcount() {
			t.Fatal("subset popcounts not gathered")
		}
	}
}

// TestCrossValidateSharedMatchesLegacy proves the shared-Gram CV entry
// points reproduce the legacy per-fold path exactly, for both classifiers,
// at several worker counts.
func TestCrossValidateSharedMatchesLegacy(t *testing.T) {
	ds := synthDataset(t, 25, 75, 3)
	const folds, seed = 5, 21

	legacySVM, err := CrossValidate(ds, folds, SVMTrainer(DefaultSVMConfig()), seed)
	if err != nil {
		t.Fatal(err)
	}
	legacyAda, err := CrossValidate(ds, folds, AdaBoostTrainer(DefaultAdaBoostConfig()), seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 8} {
		cv := CVConfig{Folds: folds, Seed: seed, Workers: workers}
		gotSVM, err := CrossValidateSVM(ds, DefaultSVMConfig(), cv)
		if err != nil {
			t.Fatal(err)
		}
		if gotSVM != legacySVM {
			t.Fatalf("workers=%d: shared SVM CV %+v != legacy %+v", workers, gotSVM, legacySVM)
		}
		gotAda, err := CrossValidateAdaBoost(ds, DefaultAdaBoostConfig(), cv)
		if err != nil {
			t.Fatal(err)
		}
		if gotAda != legacyAda {
			t.Fatalf("workers=%d: shared AdaBoost CV %+v != legacy %+v", workers, gotAda, legacyAda)
		}
	}

	// The uncached sequential reference must also agree: caching and
	// fan-out change performance, never results.
	uncached := DefaultAdaBoostConfig()
	uncached.SVM.KernelCache = -1
	got, err := CrossValidateAdaBoost(ds, uncached, CVConfig{Folds: folds, Seed: seed, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got != legacyAda {
		t.Fatalf("uncached sequential CV %+v != legacy %+v", got, legacyAda)
	}
}

// TestCrossValidateSharedErrors mirrors the legacy validation behavior.
func TestCrossValidateSharedErrors(t *testing.T) {
	ds := synthDataset(t, 10, 30, 1)
	if _, err := CrossValidateSVM(ds, DefaultSVMConfig(), CVConfig{Folds: 1, Seed: 1}); err == nil {
		t.Error("k=1 must error")
	}
	tiny := synthDataset(t, 2, 3, 2)
	if _, err := CrossValidateAdaBoost(tiny, DefaultAdaBoostConfig(), CVConfig{Folds: 10, Seed: 1}); err == nil {
		t.Error("k larger than dataset must error")
	}
}
