package fleet

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newTestGateway fronts the given backends on a real listener.
func newTestGateway(t *testing.T, cfg GatewayConfig) (*Gateway, *httptest.Server) {
	t.Helper()
	g, err := NewGateway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)
	return g, ts
}

func TestGatewayBalancesAndIsByteIdentical(t *testing.T) {
	checkGoroutineLeaks(t)
	seed := sealedLists(t, "v1")
	reps := []*replica{
		newReplica(t, "r1", seed),
		newReplica(t, "r2", seed),
		newReplica(t, "r3", seed),
	}
	g, ts := newTestGateway(t, GatewayConfig{Backends: urls(reps)})

	// A direct replica answer is the control; every gateway answer must be
	// byte-identical to it (same snapshot version everywhere).
	_, control, _ := matchVia(t, reps[0].ts.URL)

	seen := map[string]int{}
	for i := 0; i < 9; i++ {
		status, body, rid := matchVia(t, ts.URL)
		if status != http.StatusOK {
			t.Fatalf("request %d: status %d", i, status)
		}
		if !bytes.Equal(body, control) {
			t.Fatalf("request %d: gateway body differs from direct replica body\n got: %s\nwant: %s", i, body, control)
		}
		seen[rid]++
	}
	if len(seen) != 3 {
		t.Errorf("9 requests hit %d replicas (%v), want all 3", len(seen), seen)
	}
	snap := g.met.snapshotFor(g.pool)
	if snap.Requests != 9 || snap.Proxied != 9 || snap.Retries != 0 || snap.NoBackend != 0 {
		t.Errorf("metrics = %+v, want 9 clean proxied", snap)
	}
}

func TestGatewayFailoverOnDeadBackend(t *testing.T) {
	checkGoroutineLeaks(t)
	seed := sealedLists(t, "v1")
	reps := []*replica{
		newReplica(t, "r1", seed),
		newReplica(t, "r2", seed),
		newReplica(t, "r3", seed),
	}
	g, ts := newTestGateway(t, GatewayConfig{Backends: urls(reps)})

	// Kill one replica without telling the gateway (no health loop
	// running): passive detection must absorb it with retries.
	reps[1].ts.Close()

	for i := 0; i < 12; i++ {
		status, _, _ := matchVia(t, ts.URL)
		if status != http.StatusOK {
			t.Fatalf("request %d after kill: status %d, want 200 (failover)", i, status)
		}
	}
	snap := g.met.snapshotFor(g.pool)
	if snap.Retries == 0 || snap.Failovers == 0 {
		t.Errorf("retries=%d failovers=%d, want both > 0 after a dead backend", snap.Retries, snap.Failovers)
	}
	if snap.NoBackend != 0 {
		t.Errorf("no_backend_5xx = %d, want 0", snap.NoBackend)
	}
	// The dead backend's breaker ejected it after the fail threshold, so
	// later requests stopped paying the connection-refused tax.
	var dead backendSnapshot
	for _, b := range snap.Backends {
		if b.URL == reps[1].ts.URL {
			dead = b
		}
	}
	if dead.Ejections == 0 {
		t.Errorf("dead backend never ejected: %+v", dead)
	}
}

func TestGatewayAllBackendsDead(t *testing.T) {
	checkGoroutineLeaks(t)
	seed := sealedLists(t, "v1")
	r1 := newReplica(t, "r1", seed)
	g, ts := newTestGateway(t, GatewayConfig{Backends: []string{r1.ts.URL}})
	r1.ts.Close()

	resp, err := http.Post(ts.URL+"/v1/match", "application/json", strings.NewReader(`{"url":"http://x/a"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502", resp.StatusCode)
	}
	if !strings.Contains(string(body), "no_backend") {
		t.Errorf("502 body = %s, want no_backend envelope", body)
	}
	if snap := g.met.snapshotFor(g.pool); snap.NoBackend != 1 {
		t.Errorf("no_backend_5xx = %d, want 1", snap.NoBackend)
	}
}

func TestGateway429PassthroughNoRetry(t *testing.T) {
	checkGoroutineLeaks(t)
	// A shedding replica is backpressure, not failure: the gateway must
	// relay the 429 untouched instead of amplifying load with retries.
	shedder := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":{"code":"overloaded","message":"queue full"}}`))
	}))
	defer shedder.Close()
	spare := newReplica(t, "spare", sealedLists(t, "v1"))

	g, ts := newTestGateway(t, GatewayConfig{Backends: []string{shedder.URL, spare.ts.URL}})
	sawShed := false
	for i := 0; i < 8 && !sawShed; i++ {
		resp, err := http.Post(ts.URL+"/v1/match", "application/json", strings.NewReader(`{"url":"http://x/a"}`))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusTooManyRequests:
			sawShed = true
		case http.StatusOK:
		default:
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}
	if !sawShed {
		t.Fatal("round-robin never surfaced the shedding backend's 429")
	}
	snap := g.met.snapshotFor(g.pool)
	if snap.Passthrough == 0 {
		t.Errorf("passthrough_429 = 0, want > 0")
	}
	if snap.Retries != 0 {
		t.Errorf("retries = %d, want 0 (429 must not be retried)", snap.Retries)
	}
}

func TestGatewayHedgeWinsOverSlowBackend(t *testing.T) {
	checkGoroutineLeaks(t)
	// Slow enough that the hedge always beats it, bounded so the test
	// server can drain; the answer it eventually gives is a retryable 503
	// in case a pathologically slow hedge ever loses the race.
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(300 * time.Millisecond):
			w.WriteHeader(http.StatusServiceUnavailable)
		case <-r.Context().Done():
		}
	}))
	defer slow.Close()
	fast := newReplica(t, "fast", sealedLists(t, "v1"))

	g, err := NewGateway(GatewayConfig{
		Backends:   []string{slow.URL, fast.ts.URL},
		HedgeDelay: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	// Whichever backend the primary chain draws, within a few requests it
	// lands on the stuck one — and the hedge chain must still win every
	// time within the per-try budget.
	deadline := time.Now().Add(5 * time.Second)
	for g.met.hedgeWins.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no hedge win within 5s")
		}
		status, _, rid := matchVia(t, ts.URL)
		if status != http.StatusOK {
			t.Fatalf("hedged request: status %d", status)
		}
		if rid != "fast" {
			t.Fatalf("winner replica = %q, want fast", rid)
		}
	}
	snap := g.met.snapshotFor(g.pool)
	if snap.Hedges == 0 || snap.HedgeWins == 0 {
		t.Errorf("hedges=%d hedge_wins=%d, want both > 0", snap.Hedges, snap.HedgeWins)
	}
}

func TestGatewayHealthLoopRoutesAroundDrain(t *testing.T) {
	checkGoroutineLeaks(t)
	seed := sealedLists(t, "v1")
	reps := []*replica{newReplica(t, "r1", seed), newReplica(t, "r2", seed)}
	g, ts := newTestGateway(t, GatewayConfig{Backends: urls(reps)})

	// One active check pass learns IDs and readiness.
	g.pool.checkAll(context.Background())
	for _, b := range g.pool.Backends() {
		if !b.healthy.Load() {
			t.Fatalf("backend %s unhealthy after first check", b.URL)
		}
	}

	// r1 announces drain: /readyz flips 503, the next check pass must
	// eject it from rotation before its listener ever closes.
	reps[0].srv.StartDrain()
	g.pool.checkAll(context.Background())

	for i := 0; i < 6; i++ {
		status, _, rid := matchVia(t, ts.URL)
		if status != http.StatusOK {
			t.Fatalf("request %d during drain: status %d", i, status)
		}
		if rid != "r2" {
			t.Fatalf("request %d routed to %q, want r2 only while r1 drains", i, rid)
		}
	}
	snap := g.met.snapshotFor(g.pool)
	if snap.Retries != 0 {
		t.Errorf("retries = %d, want 0 — drain routing is proactive, not reactive", snap.Retries)
	}

	// Gateway /healthz still reports routable (one backend left).
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("gateway healthz = %d with one live backend, want 200", resp.StatusCode)
	}
}

func TestGatewayDebugVarsExposesTree(t *testing.T) {
	checkGoroutineLeaks(t)
	r1 := newReplica(t, "r1", sealedLists(t, "v1"))
	_, ts := newTestGateway(t, GatewayConfig{Backends: []string{r1.ts.URL}})
	if status, _, _ := matchVia(t, ts.URL); status != http.StatusOK {
		t.Fatal("warmup request failed")
	}
	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars struct {
		Gateway gatewaySnapshot `json:"adwars_gateway"`
	}
	if err := jsonDecode(resp.Body, &vars); err != nil {
		t.Fatalf("debug/vars not valid JSON: %v", err)
	}
	if vars.Gateway.Requests != 1 || vars.Gateway.Proxied != 1 {
		t.Errorf("adwars_gateway tree = %+v, want 1 request proxied", vars.Gateway)
	}
	if len(vars.Gateway.Backends) != 1 || vars.Gateway.Backends[0].Replica != "r1" {
		t.Errorf("backends = %+v, want learned replica id r1", vars.Gateway.Backends)
	}
}
