// Package fleet is the multi-replica serving layer over internal/serve:
// a gateway that load-balances /v1/* traffic across N replicas, and a
// snapshot control plane that rolls artifact-sealed snapshots through the
// fleet in stages with automatic rollback.
//
// The gateway (Gateway) fronts a Pool of replica backends. Failure
// handling is layered: active health checks poll each replica's /readyz
// (which replicas flip to 503 at drain start, so planned shutdowns are
// routed around before any connection breaks); passive detection ejects a
// replica after consecutive errors through a per-replica circuit breaker
// with half-open re-admission; and every /v1 request — all of them
// idempotent pure functions — is retried on another replica after a
// transport error or replica-side 5xx, with optional hedging that fires a
// second attempt when the first is slow. A killed replica therefore costs
// retries and failover ticks, not user-visible 5xx.
//
// The control plane (Controller) treats a snapshot as an opaque sealed
// artifact (the CRC64 framing from internal/artifact is the wire format).
// A rollout verifies the artifact locally, captures last-good bytes from
// the fleet, pushes to a canary stage first, watches the canary's health
// and reload_rejected/reload_errors expvars through a bake window, then
// pushes to the rest — and rolls every updated replica back to last-good
// the moment any stage rejects or degrades, keeping the whole fleet on
// one consistent list version (mixed versions would silently skew
// measured coverage across replicas).
package fleet
