package fleet

import (
	"encoding/json"
	"io"
	"sync/atomic"
)

// gatewayMetrics is the gateway's counter tree, exported as one JSON
// object under "adwars_gateway" in /debug/vars. The headline counters are
// the failover ledger: retries and failovers say how often a replica
// failed under a request and the request survived anyway.
type gatewayMetrics struct {
	requests    atomic.Uint64 // /v1 requests entering the proxy
	proxied     atomic.Uint64 // responses relayed from a backend (any status)
	retries     atomic.Uint64 // extra attempts after a backend failure
	failovers   atomic.Uint64 // requests that succeeded on a different backend than first tried
	hedges      atomic.Uint64 // hedge chains fired
	hedgeWins   atomic.Uint64 // requests won by the hedge chain
	noBackend   atomic.Uint64 // 502s: every attempt exhausted
	passthrough atomic.Uint64 // backend 429s relayed untouched (no retry)
	// budgetExhausted counts attempt chains stopped because the target
	// backend's retry budget was dry — extra load the gateway refused
	// to generate.
	budgetExhausted atomic.Uint64
}

// backendSnapshot is one backend's counters in the metrics tree.
type backendSnapshot struct {
	URL       string `json:"url"`
	Replica   string `json:"replica,omitempty"`
	Healthy   bool   `json:"healthy"`
	Breaker   string `json:"breaker"`
	Requests  uint64 `json:"requests"`
	Failures  uint64 `json:"failures"`
	Ejections uint64 `json:"ejections"`
	Unready   uint64 `json:"unready_checks"`
	// BudgetTokens is the backend's remaining retry-budget tokens.
	BudgetTokens float64 `json:"budget_tokens"`
}

type gatewaySnapshot struct {
	Requests    uint64            `json:"requests"`
	Proxied     uint64            `json:"proxied"`
	Retries     uint64            `json:"retries"`
	Failovers   uint64            `json:"failovers"`
	Hedges      uint64            `json:"hedges"`
	HedgeWins   uint64            `json:"hedge_wins"`
	NoBackend       uint64            `json:"no_backend_5xx"`
	Passthrough     uint64            `json:"passthrough_429"`
	BudgetExhausted uint64            `json:"retry_budget_exhaustions"`
	Backends        []backendSnapshot `json:"backends"`
}

// snapshotFor renders the tree over the given pool.
func (m *gatewayMetrics) snapshotFor(p *Pool) gatewaySnapshot {
	out := gatewaySnapshot{
		Requests:    m.requests.Load(),
		Proxied:     m.proxied.Load(),
		Retries:     m.retries.Load(),
		Failovers:   m.failovers.Load(),
		Hedges:      m.hedges.Load(),
		HedgeWins:   m.hedgeWins.Load(),
		NoBackend:       m.noBackend.Load(),
		Passthrough:     m.passthrough.Load(),
		BudgetExhausted: m.budgetExhausted.Load(),
	}
	for _, b := range p.Backends() {
		bs := backendSnapshot{
			URL:          b.URL,
			Healthy:      b.healthy.Load(),
			Breaker:      b.br.current().String(),
			Requests:     b.requests.Load(),
			Failures:     b.failures.Load(),
			Ejections:    b.ejections.Load(),
			Unready:      b.unready.Load(),
			BudgetTokens: b.budget.level(),
		}
		if id := b.ID(); id != b.URL {
			bs.Replica = id
		}
		out.Backends = append(out.Backends, bs)
	}
	return out
}

// gatewayVar adapts the metrics tree to expvar.Var / fmt.Stringer.
type gatewayVar struct {
	met  *gatewayMetrics
	pool *Pool
}

func (v gatewayVar) String() string {
	data, err := json.Marshal(v.met.snapshotFor(v.pool))
	if err != nil {
		return "{}"
	}
	return string(data)
}

// flush writes a final indented snapshot on shutdown.
func (v gatewayVar) flush(w io.Writer) {
	if w == nil {
		return
	}
	data, err := json.MarshalIndent(v.met.snapshotFor(v.pool), "", "  ")
	if err != nil {
		return
	}
	w.Write(append(data, '\n'))
}
