package fleet

import "sync"

// retryBudget is a per-backend token bucket bounding the *extra* load
// the gateway may generate against that backend: every retry and every
// hedge attempt spends one token, and only successful exchanges earn
// tokens back (a fractional refill per success). Under a healthy fleet
// the bucket sits full and the gateway behaves exactly as before; under
// sustained failure the bucket drains and retries stop — which is the
// point: amplifying traffic against a browning-out backend turns a
// local overload into a fleet-wide retry storm.
type retryBudget struct {
	mu     sync.Mutex
	tokens float64
	cap    float64
	refill float64 // tokens earned per successful exchange
}

func newRetryBudget(cap, refill float64) *retryBudget {
	if cap <= 0 {
		cap = 10
	}
	if refill <= 0 {
		refill = 0.1
	}
	return &retryBudget{tokens: cap, cap: cap, refill: refill}
}

// spend takes one token; false means the budget is exhausted and the
// caller must not send the extra attempt.
func (b *retryBudget) spend() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// earn credits one success's worth of refill, capped at the bucket size.
func (b *retryBudget) earn() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens += b.refill
	if b.tokens > b.cap {
		b.tokens = b.cap
	}
}

// level reads the current token count for metrics.
func (b *retryBudget) level() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}
