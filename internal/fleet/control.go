package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"adwars/internal/artifact"
	"adwars/internal/serve"
)

// ErrBadArtifact marks a rollout refused locally: the candidate artifact
// failed its integrity check before a single byte reached the fleet.
var ErrBadArtifact = errors.New("fleet: artifact refused locally")

// ErrRolledBack marks a rollout that was pushed, failed at some stage,
// and was automatically reverted to the captured last-good snapshots.
var ErrRolledBack = errors.New("fleet: rollout rolled back")

// Controller is the snapshot control plane: it versions sealed snapshot
// artifacts and pushes them through the fleet in stages (canary first),
// rolling back to last-good when a stage rejects or degrades.
type Controller struct {
	// Replicas are the replica base URLs in stage order: the first
	// Canaries entries form the canary stage.
	Replicas []string
	// Canaries is the canary stage size (0 = 1; capped at len(Replicas)).
	Canaries int
	// Bake is how long the canary is observed after installing before the
	// fleet stage proceeds (0 = 500ms).
	Bake time.Duration
	// Poll is the observation cadence during bake and convergence
	// (0 = 100ms).
	Poll time.Duration
	// Watch bounds the post-rollout convergence check (0 = 5s).
	Watch time.Duration
	// Timeout bounds one replica HTTP exchange (0 = 3s).
	Timeout time.Duration
	// Client overrides the HTTP client (nil = default transport).
	Client *http.Client
	// Log, when non-nil, receives rollout progress lines.
	Log io.Writer
}

func (c *Controller) canaries() int {
	n := c.Canaries
	if n <= 0 {
		n = 1
	}
	if n > len(c.Replicas) {
		n = len(c.Replicas)
	}
	return n
}

func (c *Controller) bake() time.Duration {
	if c.Bake > 0 {
		return c.Bake
	}
	return 500 * time.Millisecond
}

func (c *Controller) poll() time.Duration {
	if c.Poll > 0 {
		return c.Poll
	}
	return 100 * time.Millisecond
}

func (c *Controller) watch() time.Duration {
	if c.Watch > 0 {
		return c.Watch
	}
	return 5 * time.Second
}

func (c *Controller) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 3 * time.Second
}

func (c *Controller) client() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return http.DefaultClient
}

func (c *Controller) logf(format string, args ...any) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}

func normalizeURL(u string) string {
	u = strings.TrimSpace(u)
	if u == "" {
		return u
	}
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	return strings.TrimSuffix(u, "/")
}

// ReplicaStatus is one replica's view in a fleet status report.
type ReplicaStatus struct {
	URL       string        `json:"url"`
	Reachable bool          `json:"reachable"`
	Err       string        `json:"error,omitempty"`
	Health    *serve.Health `json:"health,omitempty"`
}

// Status polls every replica's /healthz.
func (c *Controller) Status(ctx context.Context) []ReplicaStatus {
	out := make([]ReplicaStatus, 0, len(c.Replicas))
	for _, r := range c.Replicas {
		url := normalizeURL(r)
		st := ReplicaStatus{URL: url}
		var h serve.Health
		if err := c.getJSON(ctx, url+"/healthz", &h); err != nil {
			st.Err = err.Error()
		} else {
			st.Reachable = true
			st.Health = &h
		}
		out = append(out, st)
	}
	return out
}

// RolloutResult summarizes one staged rollout attempt.
type RolloutResult struct {
	Kind       string   `json:"kind"`
	Version    string   `json:"version"`
	Canaries   []string `json:"canaries"`
	Updated    []string `json:"updated"`
	RolledBack bool     `json:"rolled_back,omitempty"`
	Reason     string   `json:"reason,omitempty"`
}

// Rollout pushes the sealed artifact data as the fleet's new snapshot of
// the given kind ("lists" or "model"), canary stage first. Returns
// ErrBadArtifact when the artifact fails local verification (nothing
// pushed), and ErrRolledBack when a stage failed and every replica that
// had installed the new version was reverted to its last-good bytes.
func (c *Controller) Rollout(ctx context.Context, kind string, data []byte) (*RolloutResult, error) {
	if len(c.Replicas) == 0 {
		return nil, errors.New("fleet: no replicas configured")
	}
	// Stage 0: local verification. The controller treats the payload as
	// opaque (replicas parse it), but a broken seal never leaves this
	// process.
	version, err := artifact.Version(data)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadArtifact, err)
	}
	res := &RolloutResult{Kind: kind, Version: version}
	c.logf("rollout %s version=%s replicas=%d canaries=%d", kind, version, len(c.Replicas), c.canaries())

	// Stage 1: capture last-good bytes from every replica so rollback has
	// something to restore. A replica without an artifact-backed snapshot
	// (404) simply has nothing to roll back to.
	lastGood := make(map[string][]byte, len(c.Replicas))
	for _, r := range c.Replicas {
		url := normalizeURL(r)
		raw, err := c.pull(ctx, url, kind)
		if err != nil {
			c.logf("  last-good capture %s: %v (no rollback target for this replica)", url, err)
			continue
		}
		lastGood[url] = raw
	}

	nCanary := c.canaries()
	for _, r := range c.Replicas[:nCanary] {
		res.Canaries = append(res.Canaries, normalizeURL(r))
	}

	fail := func(stage, replica string, cause error) (*RolloutResult, error) {
		res.Reason = fmt.Sprintf("%s stage failed at %s: %v", stage, replica, cause)
		c.logf("  %s — rolling back %d replica(s)", res.Reason, len(res.Updated))
		c.rollback(ctx, kind, res.Updated, lastGood)
		res.RolledBack = true
		res.Updated = nil
		return res, fmt.Errorf("%w: %s", ErrRolledBack, res.Reason)
	}

	// Stage 2: canary push + bake. The reload-counter baseline is taken
	// before the push: a successful install ticks neither failure counter,
	// so anything that does tick during the bake — including damage the
	// push itself set off — reads as degradation.
	baseline := make(map[string]*replicaVitals, len(res.Canaries))
	for _, url := range res.Canaries {
		v, err := c.vitals(ctx, url)
		if err != nil {
			return fail("canary", url, err)
		}
		baseline[url] = v
	}
	// Push is synchronous verification — the replica verifies, parses,
	// persists, and installs before answering — so a 422 here is the
	// canary refusing the snapshot.
	for _, url := range res.Canaries {
		if err := c.push(ctx, url, kind, version, data); err != nil {
			return fail("canary", url, err)
		}
		res.Updated = append(res.Updated, url)
		c.logf("  canary %s installed %s", url, version)
	}
	if bad, err := c.observe(ctx, res.Canaries, kind, version, c.bake(), baseline); err != nil {
		return fail("bake", bad, err)
	}
	c.logf("  canary bake ok (%s)", c.bake())

	// Stage 3: fleet push.
	for _, r := range c.Replicas[nCanary:] {
		url := normalizeURL(r)
		if err := c.push(ctx, url, kind, version, data); err != nil {
			return fail("fleet", url, err)
		}
		res.Updated = append(res.Updated, url)
		c.logf("  replica %s installed %s", url, version)
	}

	// Stage 4: convergence — every replica must report the new version
	// healthy before the rollout is declared done.
	if bad, err := c.converge(ctx, res.Updated, kind, version); err != nil {
		return fail("convergence", bad, err)
	}
	c.logf("rollout %s complete: %d replica(s) on %s", kind, len(res.Updated), version)
	return res, nil
}

// ---- stage primitives ----

// push POSTs the sealed bytes to one replica and checks the installed
// version echoes back.
func (c *Controller) push(ctx context.Context, url, kind, version string, data []byte) error {
	ctx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/admin/snapshot/"+kind, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replica answered %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var pr struct {
		Version string `json:"version"`
	}
	if err := json.Unmarshal(body, &pr); err != nil {
		return fmt.Errorf("decoding push response: %w", err)
	}
	if pr.Version != version {
		return fmt.Errorf("replica installed version %s, want %s", pr.Version, version)
	}
	return nil
}

// pull GETs a replica's installed raw snapshot bytes for the kind.
func (c *Controller) pull(ctx context.Context, url, kind string) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/admin/snapshot/"+kind, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("replica answered %d", resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// replicaVitals is the per-replica signal the controller watches: health
// plus the reload failure counters from /debug/vars.
type replicaVitals struct {
	health         serve.Health
	reloadRejected uint64
	reloadErrors   uint64
}

func (c *Controller) vitals(ctx context.Context, url string) (*replicaVitals, error) {
	var v replicaVitals
	if err := c.getJSON(ctx, url+"/healthz", &v.health); err != nil {
		return nil, fmt.Errorf("healthz: %w", err)
	}
	var vars struct {
		Serve struct {
			ReloadRejected uint64 `json:"reload_rejected"`
			ReloadErrors   uint64 `json:"reload_errors"`
		} `json:"adwars_serve"`
	}
	if err := c.getJSON(ctx, url+"/debug/vars", &vars); err != nil {
		return nil, fmt.Errorf("debug/vars: %w", err)
	}
	v.reloadRejected = vars.Serve.ReloadRejected
	v.reloadErrors = vars.Serve.ReloadErrors
	return &v, nil
}

// check verifies one replica is healthy and actually serving the target
// version of the kind.
func (c *Controller) check(ctx context.Context, url, kind, version string) error {
	v, err := c.vitals(ctx, url)
	if err != nil {
		return err
	}
	if v.health.Status != "ok" {
		return fmt.Errorf("health status %q", v.health.Status)
	}
	got := v.health.ListsVersion
	if kind == "model" {
		got = v.health.ModelVersion
	}
	if got != version {
		return fmt.Errorf("serving version %s, want %s", got, version)
	}
	if lr := v.health.LastReload; lr != nil && !lr.OK {
		return fmt.Errorf("last reload failed (%s): %s", lr.Source, lr.Error)
	}
	return nil
}

// observe watches the given replicas for the bake window, polling health,
// served version, and the reload failure counters against the pre-push
// baseline. Any regression — unreachable, unhealthy, wrong version,
// reload_rejected/reload_errors ticking — fails the bake and names the
// offending replica.
func (c *Controller) observe(ctx context.Context, urls []string, kind, version string, window time.Duration, baseline map[string]*replicaVitals) (string, error) {
	deadline := time.Now().Add(window)
	for {
		for _, url := range urls {
			if err := c.check(ctx, url, kind, version); err != nil {
				return url, err
			}
			v, err := c.vitals(ctx, url)
			if err != nil {
				return url, err
			}
			base := baseline[url]
			if v.reloadRejected > base.reloadRejected {
				return url, fmt.Errorf("reload_rejected ticked %d -> %d during bake", base.reloadRejected, v.reloadRejected)
			}
			if v.reloadErrors > base.reloadErrors {
				return url, fmt.Errorf("reload_errors ticked %d -> %d during bake", base.reloadErrors, v.reloadErrors)
			}
		}
		if time.Now().After(deadline) {
			return "", nil
		}
		select {
		case <-ctx.Done():
			return urls[0], ctx.Err()
		case <-time.After(c.poll()):
		}
	}
}

// converge polls until every replica reports the target version healthy,
// bounded by the watch window.
func (c *Controller) converge(ctx context.Context, urls []string, kind, version string) (string, error) {
	deadline := time.Now().Add(c.watch())
	for {
		badURL, lastErr := "", error(nil)
		for _, url := range urls {
			if err := c.check(ctx, url, kind, version); err != nil {
				badURL, lastErr = url, err
				break
			}
		}
		if lastErr == nil {
			return "", nil
		}
		if time.Now().After(deadline) {
			return badURL, lastErr
		}
		select {
		case <-ctx.Done():
			return badURL, ctx.Err()
		case <-time.After(c.poll()):
		}
	}
}

// rollback restores captured last-good bytes on every replica that
// installed the failed version. Errors are logged, not fatal: rollback is
// best-effort damage control and must visit every replica regardless.
func (c *Controller) rollback(ctx context.Context, kind string, updated []string, lastGood map[string][]byte) {
	for _, url := range updated {
		raw, ok := lastGood[url]
		if !ok {
			c.logf("  rollback %s: no last-good bytes captured, leaving as-is", url)
			continue
		}
		version, err := artifact.Version(raw)
		if err != nil {
			c.logf("  rollback %s: captured last-good is corrupt: %v", url, err)
			continue
		}
		if err := c.push(ctx, url, kind, version, raw); err != nil {
			c.logf("  rollback %s: push failed: %v", url, err)
			continue
		}
		c.logf("  rollback %s restored %s", url, version)
	}
}

func (c *Controller) getJSON(ctx context.Context, url string, v any) error {
	ctx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	// /healthz deliberately answers 503 with a full body when degraded;
	// decode whatever came back and let the caller judge.
	return json.NewDecoder(resp.Body).Decode(v)
}
