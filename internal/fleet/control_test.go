package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"adwars/internal/artifact"
	"adwars/internal/serve"
)

func newController(reps []string) *Controller {
	return &Controller{
		Replicas: reps,
		Bake:     50 * time.Millisecond,
		Poll:     10 * time.Millisecond,
		Watch:    2 * time.Second,
		Log:      io.Discard,
	}
}

func TestRolloutConvergesFleet(t *testing.T) {
	v1 := sealedLists(t, "v1")
	reps := []*replica{
		newReplica(t, "r1", v1),
		newReplica(t, "r2", v1),
		newReplica(t, "r3", v1),
	}
	ctl := newController(urls(reps))

	v2 := sealedLists(t, "v2")
	wantVersion, err := artifact.Version(v2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctl.Rollout(context.Background(), "lists", v2)
	if err != nil {
		t.Fatalf("rollout: %v", err)
	}
	if res.Version != wantVersion || res.RolledBack || len(res.Updated) != 3 {
		t.Fatalf("result = %+v, want 3 updated on %s", res, wantVersion)
	}
	if len(res.Canaries) != 1 || res.Canaries[0] != reps[0].ts.URL {
		t.Errorf("canaries = %v, want [%s]", res.Canaries, reps[0].ts.URL)
	}
	for _, r := range reps {
		h := healthOf(t, r.ts.URL)
		if h.ListsVersion != wantVersion {
			t.Errorf("%s serves %s, want %s", r.id, h.ListsVersion, wantVersion)
		}
	}
	// Answers stay byte-identical across replicas after the rollout.
	_, want, _ := matchVia(t, reps[0].ts.URL)
	for _, r := range reps[1:] {
		if _, got, _ := matchVia(t, r.ts.URL); !bytes.Equal(got, want) {
			t.Errorf("%s answers differently after rollout", r.id)
		}
	}
}

func TestRolloutRefusesCorruptArtifactLocally(t *testing.T) {
	v1 := sealedLists(t, "v1")
	reps := []*replica{newReplica(t, "r1", v1), newReplica(t, "r2", v1)}
	ctl := newController(urls(reps))
	before := healthOf(t, reps[0].ts.URL).ListsVersion

	bad := bytes.Clone(sealedLists(t, "v2"))
	bad[len(bad)/4] ^= 0x01
	_, err := ctl.Rollout(context.Background(), "lists", bad)
	if !errors.Is(err, ErrBadArtifact) {
		t.Fatalf("err = %v, want ErrBadArtifact", err)
	}
	// Nothing was pushed: both replicas untouched.
	for _, r := range reps {
		if got := healthOf(t, r.ts.URL).ListsVersion; got != before {
			t.Errorf("%s version changed to %s after local refusal", r.id, got)
		}
	}
}

func TestRolloutCanaryRejectionStopsAndFleetStaysGood(t *testing.T) {
	v1 := sealedLists(t, "v1")
	reps := []*replica{
		newReplica(t, "r1", v1),
		newReplica(t, "r2", v1),
		newReplica(t, "r3", v1),
	}
	ctl := newController(urls(reps))
	goodVersion := healthOf(t, reps[0].ts.URL).ListsVersion

	// A correctly sealed artifact whose payload is not a lists snapshot:
	// it passes the controller's integrity check, so only the canary's
	// parse can catch it — exactly the staged-rollout failure mode.
	poison := artifact.Seal([]byte(`{"format":"adwars-lists","version":1,"lists":`))
	res, err := ctl.Rollout(context.Background(), "lists", poison)
	if !errors.Is(err, ErrRolledBack) {
		t.Fatalf("err = %v, want ErrRolledBack", err)
	}
	if !res.RolledBack || len(res.Updated) != 0 {
		t.Fatalf("result = %+v, want rolled back with nothing left updated", res)
	}

	// The canary rejected (reload_rejected ticked, last reload recorded);
	// every replica — canary included — still serves last-good.
	ch := healthOf(t, reps[0].ts.URL)
	if ch.LastReload == nil || ch.LastReload.OK || !ch.LastReload.Rejected {
		t.Errorf("canary last_reload = %+v, want rejected", ch.LastReload)
	}
	for _, r := range reps {
		if got := healthOf(t, r.ts.URL).ListsVersion; got != goodVersion {
			t.Errorf("%s serves %s after canary rejection, want %s", r.id, got, goodVersion)
		}
		if status, _, _ := matchVia(t, r.ts.URL); status != http.StatusOK {
			t.Errorf("%s data plane broken after canary rejection", r.id)
		}
	}
	// Non-canary replicas never saw a push.
	for _, r := range reps[1:] {
		if h := healthOf(t, r.ts.URL); h.LastReload != nil && h.LastReload.Rejected {
			t.Errorf("%s saw a rejected push — rollout did not stop at the canary", r.id)
		}
	}
}

// fakeReplica accepts pushes like a real replica but lets the test script
// its vitals, to exercise bake-window degradation rollback — the one path
// a healthy real replica can't produce on demand.
type fakeReplica struct {
	mu             sync.Mutex
	installed      []byte
	reloadRejected uint64
	degradeOnce    bool // tick reload_rejected after the next push
	ts             *httptest.Server
}

func newFakeReplica(t *testing.T, seed []byte) *fakeReplica {
	f := &fakeReplica{installed: seed}
	mux := http.NewServeMux()
	mux.HandleFunc("/admin/snapshot/lists", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		switch r.Method {
		case http.MethodGet:
			w.Write(f.installed)
		case http.MethodPost:
			body, _ := io.ReadAll(r.Body)
			version, err := artifact.Version(body)
			if err != nil {
				w.WriteHeader(http.StatusUnprocessableEntity)
				return
			}
			f.installed = body
			if f.degradeOnce {
				f.degradeOnce = false
				f.reloadRejected++ // as if a concurrent disk reload rejected
			}
			json.NewEncoder(w).Encode(map[string]any{"installed": true, "kind": "lists", "version": version})
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		version, _ := artifact.Version(f.installed)
		json.NewEncoder(w).Encode(serve.Health{
			Status: "ok", Replica: "fake", Ready: true, Lists: true, ListsVersion: version,
		})
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		fmt.Fprintf(w, `{"adwars_serve":{"reload_rejected":%d,"reload_errors":0}}`, f.reloadRejected)
	})
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

func TestRolloutBakeDegradationRollsBackCanary(t *testing.T) {
	v1 := sealedLists(t, "v1")
	canary := newFakeReplica(t, v1)
	canary.degradeOnce = true
	follower := newReplica(t, "r2", v1)
	ctl := newController([]string{canary.ts.URL, follower.ts.URL})
	goodVersion, err := artifact.Version(v1)
	if err != nil {
		t.Fatal(err)
	}

	v2 := sealedLists(t, "v2")
	res, err := ctl.Rollout(context.Background(), "lists", v2)
	if !errors.Is(err, ErrRolledBack) {
		t.Fatalf("err = %v, want ErrRolledBack from bake degradation", err)
	}
	if !res.RolledBack {
		t.Fatalf("result = %+v, want rolled back", res)
	}

	// The canary was restored to last-good bytes, and the follower — never
	// pushed — still serves last-good too.
	canary.mu.Lock()
	restored := bytes.Clone(canary.installed)
	canary.mu.Unlock()
	if !bytes.Equal(restored, v1) {
		t.Error("canary not restored to last-good bytes after bake failure")
	}
	if got := healthOf(t, follower.ts.URL).ListsVersion; got != goodVersion {
		t.Errorf("follower serves %s, want untouched last-good %s", got, goodVersion)
	}
}

func TestStatusReportsFleet(t *testing.T) {
	v1 := sealedLists(t, "v1")
	r1 := newReplica(t, "r1", v1)
	dead := "http://127.0.0.1:1" // nothing listens on port 1
	ctl := newController([]string{r1.ts.URL, dead})

	sts := ctl.Status(context.Background())
	if len(sts) != 2 {
		t.Fatalf("status entries = %d, want 2", len(sts))
	}
	if !sts[0].Reachable || sts[0].Health == nil || sts[0].Health.Replica != "r1" {
		t.Errorf("live replica status = %+v", sts[0])
	}
	if sts[1].Reachable || sts[1].Err == "" {
		t.Errorf("dead replica status = %+v, want unreachable with error", sts[1])
	}
}
