package fleet

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit: closed (traffic flows,
// failures counted), open (traffic blocked until the cooldown elapses),
// half-open (exactly one probe in flight decides reopen vs close).
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

// breaker is a per-backend circuit breaker: `threshold` consecutive
// failures eject the backend for `cooldown`; after the cooldown a single
// probe request is admitted, and its outcome re-admits the backend or
// re-ejects it for another cooldown. It is driven by real proxied traffic
// (the active health poller flips a separate availability bit).
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable clock for tests

	state       breakerState
	consecutive int
	openedAt    time.Time
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// allow reports whether a request may be sent through this circuit. An
// open circuit admits exactly one probe once its cooldown has elapsed;
// while that probe is in flight further requests are refused.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			return true
		}
		return false
	default: // half-open: the probe is already out
		return false
	}
}

// success records a completed request; it closes a half-open circuit and
// clears the consecutive-failure streak.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.consecutive = 0
}

// failure records a failed request and returns true when it ejected the
// backend (tripped the circuit open), either by completing the
// consecutive-failure streak or by failing the half-open probe.
func (b *breaker) failure() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	if b.state == breakerHalfOpen || (b.state == breakerClosed && b.consecutive >= b.threshold) {
		b.state = breakerOpen
		b.openedAt = b.now()
		b.consecutive = 0
		return true
	}
	return false
}

// current returns the state for metrics.
func (b *breaker) current() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
