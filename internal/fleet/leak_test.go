package fleet

import (
	"runtime"
	"testing"
	"time"
)

// checkGoroutineLeaks snapshots the goroutine count and registers a
// cleanup that fails the test if the count has not returned to (near)
// the baseline once the test body finishes. The gateway spawns
// goroutines for attempt chains, hedges, and the health loop; a probe
// or hedged request stranded past shutdown would otherwise only surface
// as a slow production leak. The check polls briefly because goroutine
// teardown (idle connections, timer goroutines) is asynchronous.
func checkGoroutineLeaks(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		if t.Failed() {
			return // don't pile a leak report onto a real failure
		}
		// Allow a small tolerance: the runtime and net/http keep a few
		// service goroutines warm between requests.
		const tolerance = 3
		deadline := time.Now().Add(2 * time.Second)
		var after int
		for {
			runtime.GC() // nudge finalizer-driven teardown along
			after = runtime.NumGoroutine()
			if after <= before+tolerance || time.Now().After(deadline) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		if after > before+tolerance {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Errorf("goroutine leak: %d before, %d after\n%s", before, after, buf[:n])
		}
	})
}
