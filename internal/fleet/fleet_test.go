package fleet

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"adwars/internal/abp"
	"adwars/internal/serve"
)

const testListText = `! fleet test list
||ads.example.com^
@@||ads.example.com/allowed$script
##.ad-banner
`

// sealedLists renders a one-list snapshot with the given label as sealed
// artifact wire bytes. Different labels produce different versions.
func sealedLists(t *testing.T, label string) []byte {
	t.Helper()
	l, errs := abp.ParseAndBuild("fleet-list", testListText)
	if len(errs) != 0 {
		t.Fatalf("list parse errors: %v", errs)
	}
	var buf bytes.Buffer
	if err := abp.WriteListsSnapshot(&buf, &abp.ListsSnapshot{Label: label, Lists: []*abp.List{l}}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// replica is one live serve.Server on a real listener for fleet tests.
type replica struct {
	id  string
	srv *serve.Server
	ts  *httptest.Server
}

// newReplica boots a serve replica seeded (via the push path, so the
// snapshot is artifact-backed and pull-able) with the given lists bytes.
func newReplica(t *testing.T, id string, seed []byte) *replica {
	t.Helper()
	s := serve.New(serve.Config{
		ReplicaID: id,
		ListsPath: filepath.Join(t.TempDir(), "lists.json"),
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	if seed != nil {
		resp, err := http.Post(ts.URL+"/admin/snapshot/lists", "application/octet-stream", bytes.NewReader(seed))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seeding %s: %d %s", id, resp.StatusCode, body)
		}
	}
	return &replica{id: id, srv: s, ts: ts}
}

func urls(reps []*replica) []string {
	out := make([]string, len(reps))
	for i, r := range reps {
		out[i] = r.ts.URL
	}
	return out
}

// matchVia POSTs a /v1/match query through the given base URL and
// returns status, body, and the replica attribution header.
func matchVia(t *testing.T, base string) (int, []byte, string) {
	t.Helper()
	resp, err := http.Post(base+"/v1/match", "application/json",
		strings.NewReader(`{"url":"http://ads.example.com/banner.js","type":"script","page_domain":"news.example"}`))
	if err != nil {
		t.Fatalf("match via %s: %v", base, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header.Get("X-Adwars-Replica")
}

func jsonDecode(r io.Reader, v any) error {
	return json.NewDecoder(r).Decode(v)
}

// healthOf fetches a replica's /healthz.
func healthOf(t *testing.T, base string) serve.Health {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h serve.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}
