package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// GatewayConfig parameterizes a Gateway.
type GatewayConfig struct {
	// Backends are the replica base URLs ("host:port" gets "http://").
	Backends []string
	// Pool tunes availability tracking (health cadence, breaker).
	Pool PoolConfig
	// MaxAttempts bounds how many distinct backends one attempt chain
	// tries before giving up (0 = one try per backend).
	MaxAttempts int
	// HedgeDelay, when >0, fires a second attempt chain against
	// different backends if the first has not answered within the delay;
	// the first success wins. All /v1 endpoints are idempotent pure
	// functions, so hedging is always safe here.
	HedgeDelay time.Duration
	// PerTryTimeout bounds a single backend exchange (0 = 5s).
	PerTryTimeout time.Duration
	// MaxBody bounds a proxied request body (0 = 8 MiB; kept above the
	// replicas' own cap so oversized bodies get the replica's 413, not a
	// gateway-invented answer).
	MaxBody int64
	// DrainTimeout bounds graceful shutdown (0 = 5s).
	DrainTimeout time.Duration
	// MetricsOut, when non-nil, receives a final metrics snapshot on
	// graceful shutdown.
	MetricsOut io.Writer
}

func (c *GatewayConfig) maxAttempts(pool *Pool) int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return len(pool.Backends())
}

func (c *GatewayConfig) perTryTimeout() time.Duration {
	if c.PerTryTimeout > 0 {
		return c.PerTryTimeout
	}
	return 5 * time.Second
}

func (c *GatewayConfig) maxBody() int64 {
	if c.MaxBody > 0 {
		return c.MaxBody
	}
	return 8 << 20
}

func (c *GatewayConfig) drainTimeout() time.Duration {
	if c.DrainTimeout > 0 {
		return c.DrainTimeout
	}
	return 5 * time.Second
}

// Gateway load-balances /v1/* traffic across a pool of serve replicas
// with retry, failover, and optional hedging. Create with NewGateway,
// run the health loop, and expose Handler (or use Serve).
type Gateway struct {
	cfg    GatewayConfig
	pool   *Pool
	met    *gatewayMetrics
	client *http.Client
	mux    http.Handler
}

// NewGateway builds a gateway over cfg.Backends.
func NewGateway(cfg GatewayConfig) (*Gateway, error) {
	pool := NewPool(cfg.Backends, cfg.Pool)
	if len(pool.Backends()) == 0 {
		return nil, errors.New("fleet: gateway needs at least one backend")
	}
	g := &Gateway{
		cfg:  cfg,
		pool: pool,
		met:  &gatewayMetrics{},
		client: &http.Client{
			// Per-try contexts carry the deadline; the client itself must
			// not cut hedged winners short.
			Transport: &http.Transport{MaxIdleConnsPerHost: 64},
		},
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/", g.handleProxy)
	mux.HandleFunc("/healthz", g.handleHealthz)
	mux.HandleFunc("/debug/vars", g.handleDebugVars)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeGatewayError(w, http.StatusNotFound, "not_found", "no such endpoint: %s", r.URL.Path)
	})
	g.mux = mux
	return g, nil
}

// Pool returns the backend pool (for the health loop and metrics).
func (g *Gateway) Pool() *Pool { return g.pool }

// Metrics returns the gateway metrics tree as an expvar-compatible Var.
func (g *Gateway) Metrics() fmt.Stringer { return gatewayVar{met: g.met, pool: g.pool} }

// Handler returns the gateway's HTTP handler tree.
func (g *Gateway) Handler() http.Handler { return g.mux }

// Serve runs the health loop and accepts connections on ln until ctx is
// cancelled, then drains (bounded by DrainTimeout) and flushes metrics.
func (g *Gateway) Serve(ctx context.Context, ln net.Listener) error {
	healthCtx, stopHealth := context.WithCancel(context.Background())
	defer stopHealth()
	go g.pool.HealthLoop(healthCtx)
	hs := &http.Server{Handler: g.mux}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), g.cfg.drainTimeout())
	defer cancel()
	err := hs.Shutdown(drainCtx)
	gatewayVar{met: g.met, pool: g.pool}.flush(g.cfg.MetricsOut)
	if err != nil {
		return fmt.Errorf("fleet: gateway drain incomplete: %w", err)
	}
	return nil
}

// ---- proxy data path ----

// attemptResult is one chain's outcome: a fully buffered backend
// response, or the error that exhausted the chain. Buffering the body
// makes retries and hedging race-free — there is never a half-consumed
// stream to clean up.
type attemptResult struct {
	status  int
	header  http.Header
	body    []byte
	backend *Backend
	hedge   bool
	err     error
}

// triedSet shares the tried-backend set between the primary and hedge
// chains so they never duplicate work on the same replica.
type triedSet struct {
	mu sync.Mutex
	m  map[*Backend]bool
}

func (t *triedSet) pick(p *Pool) *Backend {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := p.pick(t.m)
	if b != nil {
		t.m[b] = true
	}
	return b
}

func (g *Gateway) handleProxy(w http.ResponseWriter, r *http.Request) {
	g.met.requests.Add(1)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.maxBody()))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeGatewayError(w, http.StatusRequestEntityTooLarge, "body_too_large",
				"request body exceeds %d bytes", tooLarge.Limit)
		} else {
			writeGatewayError(w, http.StatusBadRequest, "bad_request", "reading body: %v", err)
		}
		return
	}

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	tried := &triedSet{m: make(map[*Backend]bool)}
	// Buffered to the maximum chain count: a losing chain's send never
	// blocks, so no goroutine outlives the request.
	resc := make(chan attemptResult, 2)
	chains := 1
	go g.attemptChain(ctx, r, body, tried, resc, false)

	var timerC <-chan time.Time
	if g.cfg.HedgeDelay > 0 && len(g.pool.Backends()) > 1 {
		timer := time.NewTimer(g.cfg.HedgeDelay)
		defer timer.Stop()
		timerC = timer.C
	}

	received := 0
	var lastFail attemptResult
	for {
		select {
		case res := <-resc:
			received++
			if res.err == nil {
				if res.hedge {
					g.met.hedgeWins.Add(1)
				}
				g.deliver(w, res)
				return
			}
			lastFail = res
			if received == chains {
				g.met.noBackend.Add(1)
				writeGatewayError(w, http.StatusBadGateway, "no_backend",
					"no replica could answer: %v", lastFail.err)
				return
			}
		case <-timerC:
			timerC = nil
			g.met.hedges.Add(1)
			chains++
			go g.attemptChain(ctx, r, body, tried, resc, true)
		}
	}
}

// attemptChain tries successive backends until one answers (any status
// below 500), the attempt budget is spent, or no backend remains.
// Extra attempts — retries (i > 0) and every attempt of a hedge chain —
// must be paid for out of the target backend's retry budget: when the
// bucket is dry the chain stops instead of amplifying load against a
// fleet that is already failing.
func (g *Gateway) attemptChain(ctx context.Context, r *http.Request, body []byte,
	tried *triedSet, resc chan<- attemptResult, hedge bool) {
	budget := g.cfg.maxAttempts(g.pool)
	lastErr := errors.New("no available backend")
	for i := 0; i < budget; i++ {
		if ctx.Err() != nil {
			resc <- attemptResult{err: ctx.Err(), hedge: hedge}
			return
		}
		b := tried.pick(g.pool)
		if b == nil {
			break
		}
		if i > 0 || hedge {
			if !b.budget.spend() {
				g.met.budgetExhausted.Add(1)
				lastErr = fmt.Errorf("backend %s: retry budget exhausted", b.ID())
				break
			}
		}
		if i > 0 {
			g.met.retries.Add(1)
		}
		res, err := g.forward(ctx, b, r, body)
		if err == nil && res.status < http.StatusInternalServerError {
			// Anything below 500 is the replica's real answer — including
			// 429 shed (backpressure a retry would amplify) and 4xx input
			// rejections (deterministic: every replica would refuse too).
			b.br.success()
			b.budget.earn()
			if res.status == http.StatusTooManyRequests {
				g.met.passthrough.Add(1)
			}
			if i > 0 {
				g.met.failovers.Add(1)
			}
			res.hedge = hedge
			resc <- res
			return
		}
		// Transport death or replica-side 5xx (a 503 draining replica, a
		// recovered panic): the request is idempotent, fail over.
		b.fail()
		if err != nil {
			lastErr = fmt.Errorf("backend %s: %w", b.ID(), err)
		} else {
			lastErr = fmt.Errorf("backend %s answered %d", b.ID(), res.status)
		}
	}
	resc <- attemptResult{err: lastErr, hedge: hedge}
}

// forward performs one backend exchange with the per-try deadline,
// buffering the response fully.
func (g *Gateway) forward(ctx context.Context, b *Backend, r *http.Request, body []byte) (attemptResult, error) {
	ctx, cancel := context.WithTimeout(ctx, g.cfg.perTryTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, r.Method, b.URL+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return attemptResult{}, err
	}
	req.Header = r.Header.Clone()
	req.Header.Del("Connection")
	setDeadlineHeader(req, ctx)
	b.requests.Add(1)
	resp, err := g.client.Do(req)
	if err != nil {
		return attemptResult{}, err
	}
	defer resp.Body.Close()
	rbody, err := io.ReadAll(resp.Body)
	if err != nil {
		return attemptResult{}, err
	}
	return attemptResult{
		status:  resp.StatusCode,
		header:  resp.Header.Clone(),
		body:    rbody,
		backend: b,
	}, nil
}

// DeadlineHeader carries the remaining request deadline downstream as
// integer milliseconds. Milliseconds-remaining (not an absolute
// timestamp) keeps the wire format clock-skew-free: each hop re-derives
// "how long do I have" from its own clock.
const DeadlineHeader = "X-Adwars-Deadline"

// setDeadlineHeader stamps the outbound request with the tightest known
// deadline: the per-try context deadline, narrowed further by any
// deadline the client itself propagated in. Serve admission reads this
// to refuse work it cannot finish in time instead of queueing it to die.
func setDeadlineHeader(req *http.Request, ctx context.Context) {
	dl, ok := ctx.Deadline()
	if !ok {
		return
	}
	ms := time.Until(dl).Milliseconds()
	if ms < 0 {
		ms = 0
	}
	if vs := req.Header[DeadlineHeader]; len(vs) > 0 {
		if inbound, err := strconv.ParseInt(vs[0], 10, 64); err == nil && inbound < ms {
			ms = inbound
		}
	}
	req.Header.Set(DeadlineHeader, strconv.FormatInt(ms, 10))
}

// deliver relays a buffered backend response to the client, replica
// attribution header included.
func (g *Gateway) deliver(w http.ResponseWriter, res attemptResult) {
	g.met.proxied.Add(1)
	if id := res.header.Get("X-Adwars-Replica"); id != "" {
		res.backend.learnID(id)
	}
	h := w.Header()
	for k, vs := range res.header {
		if k == "Connection" || k == "Transfer-Encoding" || k == "Content-Length" {
			continue
		}
		h[k] = vs
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// ---- gateway control plane ----

// handleHealthz reports the gateway's own routability: 200 while at
// least one backend is available.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := g.met.snapshotFor(g.pool)
	available := 0
	for _, b := range snap.Backends {
		if b.Healthy && b.Breaker != "open" {
			available++
		}
	}
	status := http.StatusOK
	state := "ok"
	if available == 0 {
		status = http.StatusServiceUnavailable
		state = "no available backends"
	}
	writeGatewayJSON(w, status, struct {
		Status    string            `json:"status"`
		Available int               `json:"available"`
		Backends  []backendSnapshot `json:"backends"`
	}{state, available, snap.Backends})
}

// handleDebugVars renders the process-global expvar registry plus the
// gateway tree under "adwars_gateway", mirroring serve's endpoint shape
// so adwars-loadgen can read either side with one code path.
func (g *Gateway) handleDebugVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintf(w, "{\n")
	first := true
	expvar.Do(func(kv expvar.KeyValue) {
		if kv.Key == "adwars_gateway" {
			return // replaced below with this gateway's tree
		}
		if !first {
			fmt.Fprintf(w, ",\n")
		}
		first = false
		fmt.Fprintf(w, "%q: %s", kv.Key, kv.Value)
	})
	if !first {
		fmt.Fprintf(w, ",\n")
	}
	fmt.Fprintf(w, "%q: %s", "adwars_gateway", g.Metrics().String())
	fmt.Fprintf(w, "\n}\n")
}

func writeGatewayJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeGatewayError mirrors serve's structured error envelope so gateway
// clients parse one shape regardless of which layer answered.
func writeGatewayError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeGatewayJSON(w, status, struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}{struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	}{code, fmt.Sprintf(format, args...)}})
}
