package fleet

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRetryBudgetBucket(t *testing.T) {
	b := newRetryBudget(2, 0.5)
	if !b.spend() || !b.spend() {
		t.Fatal("fresh bucket refused its capacity")
	}
	if b.spend() {
		t.Fatal("empty bucket granted a token")
	}
	// Two successes earn one whole token back.
	b.earn()
	if b.spend() {
		t.Fatalf("half a token spent as a whole one (level %.2f)", b.level())
	}
	b.earn()
	if !b.spend() {
		t.Fatal("refilled token not spendable")
	}
	// Refill never exceeds the cap.
	for i := 0; i < 100; i++ {
		b.earn()
	}
	if got := b.level(); got != 2 {
		t.Fatalf("bucket level %.2f after overfill, want capped at 2", got)
	}
}

func TestRetryBudgetDefaults(t *testing.T) {
	b := newRetryBudget(0, 0)
	if got := b.level(); got != 10 {
		t.Fatalf("default bucket size %.1f, want 10", got)
	}
	b.spend()
	b.earn()
	if got := b.level(); got != 9.1 {
		t.Fatalf("default refill left level %.2f, want 9.1", got)
	}
}

// TestGatewayRetryBudgetStopsRetryStorm: with a dead backend and the
// retry budget exhausted, the gateway stops generating extra attempts —
// the chain breaks with retry_budget_exhaustions ticking instead of
// hammering the corpse forever.
func TestGatewayRetryBudgetStopsRetryStorm(t *testing.T) {
	checkGoroutineLeaks(t)
	seed := sealedLists(t, "v1")
	live := newReplica(t, "live", seed)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer dead.Close()

	g, ts := newTestGateway(t, GatewayConfig{
		Backends: []string{dead.URL, live.ts.URL},
		Pool: PoolConfig{
			// A huge fail threshold keeps the breaker out of the picture:
			// only the budget can stop the retries.
			FailThreshold: 1 << 20,
			RetryBudget:   3,
			RetryRefill:   0.001,
		},
	})

	okBefore, exhaustedSeen := 0, false
	for i := 0; i < 40; i++ {
		status, _, _ := matchVia(t, ts.URL)
		switch status {
		case http.StatusOK:
			okBefore++
		case http.StatusBadGateway:
			exhaustedSeen = true
		default:
			t.Fatalf("request %d: status %d", i, status)
		}
	}
	snap := g.met.snapshotFor(g.pool)
	if snap.BudgetExhausted == 0 || !exhaustedSeen {
		t.Fatalf("budget never exhausted: metrics %+v, 502 seen %v", snap, exhaustedSeen)
	}
	// The live backend's budget funded at most its bucket of retries:
	// the retry count is bounded by the budgets, not the request count.
	maxFunded := uint64(3 + 3 + 40) // two buckets + refill slack
	if snap.Retries > maxFunded {
		t.Fatalf("retries = %d, want <= %d (budget-bounded)", snap.Retries, maxFunded)
	}
	for _, b := range snap.Backends {
		if b.BudgetTokens < 0 {
			t.Fatalf("backend %s budget went negative: %+v", b.URL, b)
		}
	}
}

// TestGatewayBudgetRefilledBySuccess: a drained budget recovers through
// successful exchanges, so a transient failure window does not disable
// failover forever.
func TestGatewayBudgetRefilledBySuccess(t *testing.T) {
	checkGoroutineLeaks(t)
	seed := sealedLists(t, "v1")
	live := newReplica(t, "live", seed)
	g, ts := newTestGateway(t, GatewayConfig{
		Backends: []string{live.ts.URL},
		Pool:     PoolConfig{RetryBudget: 2, RetryRefill: 0.5},
	})
	b := g.pool.Backends()[0]
	// Drain the bucket by hand.
	for b.budget.spend() {
	}
	if got := b.budget.level(); got >= 1 {
		t.Fatalf("bucket not drained: %.2f", got)
	}
	// Successful proxied traffic earns it back at the refill rate.
	for i := 0; i < 4; i++ {
		if status, _, _ := matchVia(t, ts.URL); status != http.StatusOK {
			t.Fatalf("request %d: status %d", i, status)
		}
	}
	if got := b.budget.level(); got < 2 {
		t.Fatalf("bucket level %.2f after 4 successes at refill 0.5, want 2 (capped)", got)
	}
}

// TestGatewayHedgeSpendsBudget: hedge chains pay out of the same bucket
// — with the target backend's budget dry, the hedge fires but cannot
// generate a second exchange.
func TestGatewayHedgeSpendsBudget(t *testing.T) {
	checkGoroutineLeaks(t)
	var slowHits, fastHits atomic.Uint64
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		slowHits.Add(1)
		select {
		case <-time.After(200 * time.Millisecond):
			w.WriteHeader(http.StatusServiceUnavailable)
		case <-r.Context().Done():
		}
	}))
	defer slow.Close()
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fastHits.Add(1)
		w.Write([]byte(`{}`)) //nolint:errcheck
	}))
	defer fast.Close()

	g, err := NewGateway(GatewayConfig{
		Backends:   []string{slow.URL, fast.URL},
		HedgeDelay: 20 * time.Millisecond,
		Pool:       PoolConfig{RetryBudget: 1, RetryRefill: 0.0001},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	// Drain both budgets so no hedge (or retry) attempt can be funded.
	for _, b := range g.pool.Backends() {
		for b.budget.spend() {
		}
	}
	fastHits.Store(0)
	slowHits.Store(0)

	// Round-robin decides which backend the primary chain draws; fire a
	// few requests so at least one lands on the slow backend and the
	// hedge timer goes off. With every bucket dry the hedge must be
	// refused before sending anything: each request generates exactly
	// one backend exchange, ever.
	client := &http.Client{Timeout: 5 * time.Second}
	sent := uint64(0)
	for i := 0; i < 6 && g.met.budgetExhausted.Load() == 0; i++ {
		resp, err := client.Post(ts.URL+"/v1/match", "application/json", strings.NewReader(`{"url":"http://x/a"}`))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		sent++
	}
	if got := g.met.budgetExhausted.Load(); got == 0 {
		t.Fatal("retry_budget_exhaustions = 0, want > 0 for the refused hedge")
	}
	if g.met.hedges.Load() == 0 {
		t.Fatal("hedge chain never fired — the test exercised nothing")
	}
	if total := slowHits.Load() + fastHits.Load(); total != sent {
		t.Fatalf("backends saw %d exchanges for %d requests (slow %d, fast %d): extra attempts sent without budget",
			total, sent, slowHits.Load(), fastHits.Load())
	}
}

// TestGatewayForwardsDeadlineHeader: the gateway stamps X-Adwars-Deadline
// with the per-try remaining milliseconds, narrowed by any deadline the
// client already propagated.
func TestGatewayForwardsDeadlineHeader(t *testing.T) {
	checkGoroutineLeaks(t)
	var gotDeadline atomic.Value
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotDeadline.Store(r.Header.Get(DeadlineHeader))
		w.Write([]byte(`{}`)) //nolint:errcheck
	}))
	defer backend.Close()

	_, ts := newTestGateway(t, GatewayConfig{
		Backends:      []string{backend.URL},
		PerTryTimeout: 2 * time.Second,
	})

	// No client deadline: the header is the per-try budget (~2000ms).
	resp, err := http.Post(ts.URL+"/v1/match", "application/json", strings.NewReader(`{"url":"http://x/a"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	ms, err := strconv.ParseInt(gotDeadline.Load().(string), 10, 64)
	if err != nil {
		t.Fatalf("deadline header %q not an integer: %v", gotDeadline.Load(), err)
	}
	if ms <= 0 || ms > 2000 {
		t.Fatalf("deadline header %dms, want in (0, 2000]", ms)
	}

	// A tighter client deadline wins over the per-try budget.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/match", strings.NewReader(`{"url":"http://x/a"}`))
	req.Header.Set(DeadlineHeader, "50")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	ms, err = strconv.ParseInt(gotDeadline.Load().(string), 10, 64)
	if err != nil {
		t.Fatalf("deadline header %q not an integer: %v", gotDeadline.Load(), err)
	}
	if ms > 50 {
		t.Fatalf("deadline header %dms, want <= client's 50ms", ms)
	}
}
