package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Backend is one serve replica behind the gateway: its base URL, the
// availability verdicts (active health bit + passive circuit breaker),
// and its traffic counters.
type Backend struct {
	// URL is the replica base URL, e.g. "http://127.0.0.1:8081".
	URL string

	// id is the replica's self-reported identity (X-Adwars-Replica /
	// healthz "replica" field), learned from the first health check or
	// proxied response; falls back to the URL until known.
	id atomic.Value // string

	// healthy is the active checker's last verdict. Backends start
	// healthy so a gateway serves immediately after boot; the first
	// health pass corrects any optimism within one interval.
	healthy atomic.Bool

	br *breaker

	// budget bounds the extra attempts (retries + hedges) the gateway
	// may aim at this backend; refilled by successes.
	budget *retryBudget

	requests  atomic.Uint64 // proxied requests sent to this backend
	failures  atomic.Uint64 // transport errors + replica 5xx
	ejections atomic.Uint64 // circuit-breaker trips
	unready   atomic.Uint64 // active health checks that came back not-ready
}

func newBackend(url string, failThreshold int, cooldown time.Duration, budgetCap, budgetRefill float64) *Backend {
	b := &Backend{
		URL:    url,
		br:     newBreaker(failThreshold, cooldown),
		budget: newRetryBudget(budgetCap, budgetRefill),
	}
	b.healthy.Store(true)
	return b
}

// ID returns the replica identity if learned, else the base URL.
func (b *Backend) ID() string {
	if v, ok := b.id.Load().(string); ok && v != "" {
		return v
	}
	return b.URL
}

func (b *Backend) learnID(id string) {
	if id != "" {
		b.id.Store(id)
	}
}

// fail records a failed exchange on this backend.
func (b *Backend) fail() {
	b.failures.Add(1)
	if b.br.failure() {
		b.ejections.Add(1)
	}
}

// PoolConfig parameterizes backend availability tracking.
type PoolConfig struct {
	// HealthInterval is the active /readyz polling cadence (0 = 250ms).
	HealthInterval time.Duration
	// HealthTimeout bounds one health probe (0 = HealthInterval).
	HealthTimeout time.Duration
	// FailThreshold is the consecutive-failure count that ejects a
	// backend (0 = 3).
	FailThreshold int
	// Cooldown is how long an ejected backend sits out before its
	// half-open probe (0 = 1s).
	Cooldown time.Duration
	// RetryBudget is the per-backend retry/hedge token bucket size
	// (0 = 10).
	RetryBudget float64
	// RetryRefill is the fraction of a token earned back per
	// successful exchange (0 = 0.1).
	RetryRefill float64
}

func (c *PoolConfig) healthInterval() time.Duration {
	if c.HealthInterval > 0 {
		return c.HealthInterval
	}
	return 250 * time.Millisecond
}

func (c *PoolConfig) healthTimeout() time.Duration {
	if c.HealthTimeout > 0 {
		return c.HealthTimeout
	}
	return c.healthInterval()
}

// Pool is the gateway's set of replica backends with round-robin
// selection over the currently available ones.
type Pool struct {
	cfg      PoolConfig
	backends []*Backend
	rr       atomic.Uint64
	client   *http.Client
}

// NewPool builds a pool over the given base URLs (scheme-less entries get
// "http://"). All backends start available; the health loop (HealthLoop)
// and passive failure detection take it from there.
func NewPool(urls []string, cfg PoolConfig) *Pool {
	p := &Pool{
		cfg: cfg,
		client: &http.Client{
			Timeout: cfg.healthTimeout(),
		},
	}
	for _, u := range urls {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		p.backends = append(p.backends, newBackend(strings.TrimSuffix(u, "/"),
			cfg.FailThreshold, cfg.Cooldown, cfg.RetryBudget, cfg.RetryRefill))
	}
	return p
}

// Backends returns the pool members (fixed after construction).
func (p *Pool) Backends() []*Backend { return p.backends }

// pick returns the next backend that is healthy, not circuit-ejected,
// and not in tried — or, when every backend looks down (health checker
// lagging reality, e.g. right after a mass restart), any breaker-allowed
// backend, so the gateway degrades to trying rather than refusing.
// Returns nil when nothing is willing to take traffic.
func (p *Pool) pick(tried map[*Backend]bool) *Backend {
	n := len(p.backends)
	if n == 0 {
		return nil
	}
	start := int(p.rr.Add(1))
	for i := 0; i < n; i++ {
		b := p.backends[(start+i)%n]
		if tried[b] || !b.healthy.Load() {
			continue
		}
		if b.br.allow() {
			return b
		}
	}
	for i := 0; i < n; i++ {
		b := p.backends[(start+i)%n]
		if tried[b] {
			continue
		}
		if b.br.allow() {
			return b
		}
	}
	return nil
}

// HealthLoop polls every backend's /readyz on the configured cadence
// until ctx is cancelled. A 200 marks the backend healthy and teaches the
// pool its replica ID; anything else (including a draining replica's 503)
// marks it unhealthy so pick routes around it before connections fail.
func (p *Pool) HealthLoop(ctx context.Context) {
	ticker := time.NewTicker(p.cfg.healthInterval())
	defer ticker.Stop()
	p.checkAll(ctx)
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			p.checkAll(ctx)
		}
	}
}

func (p *Pool) checkAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, b := range p.backends {
		wg.Add(1)
		go func(b *Backend) {
			defer wg.Done()
			p.checkOne(ctx, b)
		}(b)
	}
	wg.Wait()
}

func (p *Pool) checkOne(ctx context.Context, b *Backend) {
	ctx, cancel := context.WithTimeout(ctx, p.cfg.healthTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.URL+"/readyz", nil)
	if err != nil {
		b.healthy.Store(false)
		b.unready.Add(1)
		return
	}
	resp, err := p.client.Do(req)
	if err != nil {
		b.healthy.Store(false)
		b.unready.Add(1)
		return
	}
	defer resp.Body.Close()
	var h struct {
		Replica string `json:"replica"`
	}
	if json.NewDecoder(resp.Body).Decode(&h) == nil {
		b.learnID(h.Replica)
	}
	if resp.StatusCode != http.StatusOK {
		b.healthy.Store(false)
		b.unready.Add(1)
		return
	}
	b.healthy.Store(true)
}
