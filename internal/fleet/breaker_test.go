package fleet

import (
	"testing"
	"time"
)

func TestBreakerTripCooldownHalfOpen(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(3, time.Second)
	b.now = func() time.Time { return now }

	// Closed: admits traffic, counts the streak.
	for i := 0; i < 2; i++ {
		if !b.allow() {
			t.Fatalf("closed breaker refused request %d", i)
		}
		if b.failure() {
			t.Fatalf("failure %d ejected before threshold", i+1)
		}
	}
	if !b.failure() {
		t.Fatal("third consecutive failure did not eject")
	}
	if got := b.current(); got != breakerOpen {
		t.Fatalf("state after trip = %v, want open", got)
	}

	// Open: refuses until the cooldown elapses.
	if b.allow() {
		t.Fatal("open breaker admitted during cooldown")
	}
	now = now.Add(999 * time.Millisecond)
	if b.allow() {
		t.Fatal("open breaker admitted 1ms early")
	}
	now = now.Add(time.Millisecond)
	if !b.allow() {
		t.Fatal("breaker refused the half-open probe after cooldown")
	}
	// Half-open: exactly one probe in flight.
	if b.allow() {
		t.Fatal("half-open breaker admitted a second probe")
	}

	// Probe failure re-ejects for a fresh cooldown.
	if !b.failure() {
		t.Fatal("half-open probe failure did not re-eject")
	}
	if b.allow() {
		t.Fatal("re-opened breaker admitted immediately")
	}

	// Probe success closes.
	now = now.Add(time.Second)
	if !b.allow() {
		t.Fatal("no probe after second cooldown")
	}
	b.success()
	if got := b.current(); got != breakerClosed {
		t.Fatalf("state after probe success = %v, want closed", got)
	}
	if !b.allow() {
		t.Fatal("closed breaker refused")
	}

	// Success clears the streak: two failures, success, two more failures
	// must not trip.
	b.failure()
	b.failure()
	b.success()
	if b.failure() || b.failure() {
		t.Fatal("streak survived an intervening success")
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := newBreaker(0, 0)
	if b.threshold != 3 || b.cooldown != time.Second {
		t.Fatalf("defaults = threshold %d cooldown %v, want 3, 1s", b.threshold, b.cooldown)
	}
}
