package simworld

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"adwars/internal/jsast"
)

// testWorld is a 1/20-scale world (top-5K universe) shared by tests.
func testWorld(t *testing.T) *World {
	t.Helper()
	return New(Scaled(1, 20))
}

func TestWorldDeterministic(t *testing.T) {
	w1 := New(Scaled(5, 50))
	w2 := New(Scaled(5, 50))
	d1, d2 := w1.Deployments(), w2.Deployments()
	if len(d1) != len(d2) || len(d1) == 0 {
		t.Fatalf("deployments = %d vs %d", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i].SiteDomain != d2[i].SiteDomain || !d1[i].Start.Equal(d2[i].Start) ||
			d1[i].Vendor.Name != d2[i].Vendor.Name {
			t.Fatalf("deployment %d differs", i)
		}
	}
}

func TestAdoptionCurveMonotone(t *testing.T) {
	prev := -1.0
	for _, p := range adoptionCurve {
		f := adoptionFrac(p.t)
		if f < prev {
			t.Fatalf("adoptionFrac not monotone at %v", p.t)
		}
		prev = f
	}
	if adoptionFrac(time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)) != 0 {
		t.Error("pre-2011 adoption must be 0")
	}
	if adoptionFrac(time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)) != 1 {
		t.Error("post-2017 adoption must be 1")
	}
}

func TestAdoptionTimeInvertsFrac(t *testing.T) {
	for _, q := range []float64{0.05, 0.2, 0.5, 0.8, 0.99} {
		ti := adoptionTime(q)
		f := adoptionFrac(ti)
		if f < q-0.02 || f > q+0.02 {
			t.Errorf("adoptionFrac(adoptionTime(%v)) = %v", q, f)
		}
	}
}

func TestTopFiveKAdoptionRate(t *testing.T) {
	w := New(DefaultConfig(3))
	top := map[string]bool{}
	for _, d := range w.TopDomains(5000) {
		top[d] = true
	}
	end := time.Date(2016, 7, 1, 0, 0, 0, 0, time.UTC)
	live := w.Cfg.LiveDate
	atEnd, atLive := 0, 0
	for _, d := range w.Deployments() {
		if !top[d.SiteDomain] {
			continue
		}
		if d.ActiveAt(end) {
			atEnd++
		}
		if d.ActiveAt(live) {
			atLive++
		}
	}
	// The paper: AAK triggers on 8.7% of the top-5K (≈435); deployment
	// must be in that neighborhood by Jul 2016 and higher by Apr 2017.
	if atEnd < 300 || atEnd > 620 {
		t.Errorf("top-5K deployments at 2016-07 = %d, want ~350-550", atEnd)
	}
	if atLive <= atEnd {
		t.Errorf("adoption must keep growing: %d → %d", atEnd, atLive)
	}
}

func TestTop100KAdoptionRate(t *testing.T) {
	w := New(DefaultConfig(3))
	live := w.Cfg.LiveDate
	n := 0
	for _, d := range w.Deployments() {
		r := w.RankOf(d.SiteDomain)
		if r >= 1 && r <= 100_000 && d.ActiveAt(live) {
			n++
		}
	}
	// §4.3/§5: ~5,070 detected anti-adblocking sites in the top-100K.
	if n < 4000 || n > 7000 {
		t.Errorf("top-100K deployments at live date = %d, want ~5,000", n)
	}
}

func TestTailDeploymentsBucketed(t *testing.T) {
	w := testWorld(t)
	mid, deep := 0, 0
	for _, d := range w.Deployments() {
		r := w.RankOf(d.SiteDomain)
		switch {
		case strings.HasPrefix(d.SiteDomain, "midtail"):
			mid++
			if r <= 100_000 || r > 1_000_000 {
				t.Fatalf("midtail rank %d out of bucket", r)
			}
		case strings.HasPrefix(d.SiteDomain, "deeptail"):
			deep++
			if r <= 1_000_000 {
				t.Fatalf("deeptail rank %d out of bucket", r)
			}
		}
	}
	if mid == 0 || deep == 0 {
		t.Fatal("tail deployments missing")
	}
}

func TestDeploymentStartsRespectVendorAvailability(t *testing.T) {
	w := testWorld(t)
	for _, d := range w.Deployments() {
		if d.Start.Before(d.Vendor.Available) {
			t.Fatalf("%s deploys %s before vendor %s exists (%s)",
				d.SiteDomain, d.Start, d.Vendor.Name, d.Vendor.Available)
		}
	}
}

func TestPageAtStability(t *testing.T) {
	w := testWorld(t)
	domain := w.TopDomains(10)[0]
	t1 := time.Date(2015, 3, 1, 0, 0, 0, 0, time.UTC)
	p1, ok := w.PageAt(domain, t1)
	if !ok {
		t.Fatal("top domain must have a page")
	}
	p2, _ := w.PageAt(domain, t1.AddDate(0, 1, 0)) // same content epoch (year)
	if len(p1.Requests) != len(p2.Requests) {
		t.Error("content changed within an epoch")
	}
	if _, ok := w.PageAt("not-in-universe.example", t1); ok {
		t.Error("unknown domain should have no page")
	}
}

func TestDeployedPageCarriesAntiAdblock(t *testing.T) {
	w := testWorld(t)
	var tested int
	for _, d := range w.Deployments() {
		if w.Universe.Rank(d.SiteDomain) == 0 {
			continue // tail domains have no pages
		}
		after := d.Start.AddDate(0, 2, 0)
		p, ok := w.PageAt(d.SiteDomain, after)
		if !ok {
			t.Fatalf("deployed site %s has no page", d.SiteDomain)
		}
		foundScript := false
		for _, s := range p.Scripts {
			if s.AntiAdblock {
				foundScript = true
				if _, _, err := jsast.ParseAndUnpack(s.Source); err != nil {
					t.Fatalf("anti-adblock script unparseable on %s: %v", d.SiteDomain, err)
				}
			}
		}
		if !foundScript {
			t.Fatalf("deployed site %s page lacks anti-adblock script", d.SiteDomain)
		}
		// Before deployment: clean page.
		before := d.Start.AddDate(0, -2, 0)
		if before.After(w.Cfg.Start) {
			pb, _ := w.PageAt(d.SiteDomain, before)
			for _, s := range pb.Scripts {
				if s.AntiAdblock {
					t.Fatalf("%s has anti-adblock before deployment start", d.SiteDomain)
				}
			}
		}
		tested++
		if tested >= 25 {
			break
		}
	}
	if tested == 0 {
		t.Fatal("no universe deployments to test")
	}
}

func TestStaticNoticeFraction(t *testing.T) {
	w := testWorld(t)
	at := time.Date(2016, 7, 1, 0, 0, 0, 0, time.UTC)
	static, total := 0, 0
	for _, d := range w.Deployments() {
		if w.Universe.Rank(d.SiteDomain) == 0 || !d.ActiveAt(at) {
			continue
		}
		p, _ := w.PageAt(d.SiteDomain, at)
		total++
		if p.Root.Find(d.NoticeID) != nil {
			static++
		}
	}
	if total < 20 {
		t.Skip("too few active deployments in scaled world")
	}
	frac := float64(static) / float64(total)
	if frac < 0.02 || frac > 0.30 {
		t.Errorf("static notice fraction = %.2f, want ≈ %.2f",
			frac, w.Cfg.StaticNoticeFraction)
	}
}

func TestLivePageUnreachableFraction(t *testing.T) {
	w := testWorld(t)
	unreachable := 0
	domains := w.TopDomains(w.Cfg.UniverseSize)
	for _, d := range domains {
		if _, ok := w.LivePage(d); !ok {
			unreachable++
		}
	}
	frac := float64(unreachable) / float64(len(domains))
	if frac > 0.03 {
		t.Errorf("unreachable fraction = %.3f, want ≈ 0.006", frac)
	}
}

func TestBenignSitesStayBenign(t *testing.T) {
	w := testWorld(t)
	at := time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)
	checked := 0
	for _, d := range w.NonDeployedDomains(40) {
		p, ok := w.PageAt(d, at)
		if !ok {
			continue
		}
		for _, s := range p.Scripts {
			if s.AntiAdblock {
				t.Fatalf("non-deployed site %s carries anti-adblock", d)
			}
			if _, _, err := jsast.ParseAndUnpack(s.Source); err != nil {
				t.Fatalf("benign script unparseable on %s: %v", d, err)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no benign sites checked")
	}
}

func TestCategoryOfCoversTail(t *testing.T) {
	w := testWorld(t)
	if w.CategoryOf("midtail0001.com").String() == "" {
		t.Error("tail category missing")
	}
	top := w.TopDomains(1)[0]
	s, _ := w.Universe.Site(top)
	if w.CategoryOf(top) != s.Category {
		t.Error("universe category mismatch")
	}
}

// TestConcurrentPageAt pins the documented guarantee that a built World is
// read-only: crawler workers and replay shards call PageAt/LivePage on the
// same World concurrently, and every worker must see the sequential
// baseline exactly. Run under `go test -race`.
func TestConcurrentPageAt(t *testing.T) {
	w := New(Scaled(9, 50))
	domains := w.TopDomains(40)
	when := time.Date(2014, 6, 1, 0, 0, 0, 0, time.UTC)

	type key struct {
		domain string
		urls   int
		elems  int
	}
	baseline := make([]key, len(domains))
	for i, d := range domains {
		p, ok := w.PageAt(d, when)
		if !ok {
			t.Fatalf("PageAt(%s) missing", d)
		}
		baseline[i] = key{d, len(p.Requests), len(p.Elements())}
	}

	done := make(chan error, 8)
	for worker := 0; worker < 8; worker++ {
		go func() {
			for i, d := range domains {
				p, ok := w.PageAt(d, when)
				if !ok {
					done <- fmt.Errorf("PageAt(%s) missing under concurrency", d)
					return
				}
				got := key{d, len(p.Requests), len(p.Elements())}
				if got != baseline[i] {
					done <- fmt.Errorf("PageAt(%s) = %+v, want %+v", d, got, baseline[i])
					return
				}
				w.LivePage(d)
				w.RankOf(d)
			}
			done <- nil
		}()
	}
	for worker := 0; worker < 8; worker++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
