// Package simworld builds the synthetic web the measurements run against:
// a ranked, categorized domain universe, a 2011–2017 anti-adblock adoption
// timeline calibrated to the paper's observations, and deterministic page
// content for every (domain, month) — the ground truth from which the
// Wayback crawl (§4.2), the live crawl (§4.3), the filter-list curation
// model (listgen), and the ML corpus (§5) all derive.
package simworld

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"time"

	"adwars/internal/abp"
	"adwars/internal/alexa"
	"adwars/internal/antiadblock"
	"adwars/internal/web"
)

// Config parameterizes the world. DefaultConfig reproduces paper scale;
// tests use smaller universes via Scaled.
type Config struct {
	// Seed drives every deterministic draw.
	Seed int64
	// UniverseSize is the ranked domain population (the paper crawls the
	// top-5K retrospectively and the top-100K live).
	UniverseSize int
	// Tail100K1M and TailOver1M are extra adopting domains in the
	// 100K-1M and >1M rank buckets. They are never crawled but filter
	// lists target them (Table 1 shows most listed domains live there).
	Tail100K1M, TailOver1M int
	// Start and End bound the retrospective window.
	Start, End time.Time
	// LiveDate is when the live crawl runs (Apr 2017 in the paper).
	LiveDate time.Time
	// BaseAdoption is the final (by LiveDate) adoption probability for a
	// rank-1..5K site of an average category; deeper ranks adopt less.
	BaseAdoption float64
	// StaticNoticeFraction is how many deployments keep their warning
	// overlay in static HTML (most inject it dynamically, which is why
	// the paper's Figure 6(b) HTML-rule counts stay near zero).
	StaticNoticeFraction float64
	// UnreachableFraction of live-crawl sites fail to load (the paper
	// reaches 99,396 of 100K).
	UnreachableFraction float64
	// Gen controls script generation (packing probability etc.).
	Gen antiadblock.GenOptions
}

// DefaultConfig is paper scale: 100K ranked domains, Aug 2011 – Jul 2016
// retrospective window, Apr 2017 live crawl.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:         seed,
		UniverseSize: 100_000,
		Tail100K1M:   2_500,
		TailOver1M:   4_500,
		Start:        time.Date(2011, 8, 1, 0, 0, 0, 0, time.UTC),
		End:          time.Date(2016, 7, 1, 0, 0, 0, 0, time.UTC),
		LiveDate:     time.Date(2017, 4, 1, 0, 0, 0, 0, time.UTC),
		BaseAdoption: 0.10,
		// ~1 in 9 deployments keeps a static overlay.
		StaticNoticeFraction: 0.11,
		UnreachableFraction:  0.006,
		Gen:                  antiadblock.GenOptions{PackProbability: 0.12},
	}
}

// Scaled shrinks the world by factor k (k=10 → top-10K universe becomes
// top-1K, etc.) for tests; adoption rates are unchanged.
func Scaled(seed int64, k int) Config {
	cfg := DefaultConfig(seed)
	cfg.UniverseSize /= k
	cfg.Tail100K1M /= k
	cfg.TailOver1M /= k
	return cfg
}

// World is the generated synthetic web. Once New returns, a World is
// immutable: every accessor (PageAt, LivePage, TopDomains, RankOf, …)
// derives its answer from frozen state and per-call hashes, so a single
// World is safe for concurrent use by crawler workers and replay shards
// without locking.
type World struct {
	Cfg      Config
	Universe *alexa.Universe

	deployments map[string]*antiadblock.Deployment
	deployOrder []string // sorted domains with deployments
	tailRanks   map[string]int
}

// categoryAdoption multiplies a site's adoption probability; streaming,
// news, and entertainment publishers retaliate against adblockers the most
// (Rafique et al.: 16.3% of free live-streaming sites).
var categoryAdoption = map[alexa.Category]float64{
	alexa.CatStreamingSharing: 2.3,
	alexa.CatIllegalSoftware:  2.0,
	alexa.CatGeneralNews:      1.7,
	alexa.CatEntertainment:    1.5,
	alexa.CatGames:            1.3,
	alexa.CatSports:           1.2,
	alexa.CatBlogsForums:      1.0,
	alexa.CatShareware:        1.0,
	alexa.CatPornography:      1.0,
	alexa.CatWebAds:           0.8,
	alexa.CatInternetServices: 0.6,
	alexa.CatBusiness:         0.5,
	alexa.CatMarketing:        0.7,
	alexa.CatPersonalStorage:  0.6,
	alexa.CatMaliciousSites:   0.9,
	alexa.CatOthers:           0.7,
}

// rankAdoption scales adoption by popularity: the paper measures ~8.7%
// coverage in the top-5K but ~5.0% across the top-100K.
func rankAdoption(rank int) float64 {
	switch {
	case rank <= 5_000:
		return 1.0
	case rank <= 20_000:
		return 0.55
	case rank <= 100_000:
		return 0.38
	case rank <= 1_000_000:
		return 0.30
	default:
		return 0.25
	}
}

// adoptionFrac is the cumulative adoption curve: the fraction of eventual
// adopters already live at time t. Anti-adblocking existed in 2011 but
// took off after 2014 (Figure 6a).
var adoptionCurve = []struct {
	t time.Time
	f float64
}{
	{time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC), 0.00},
	{time.Date(2012, 1, 1, 0, 0, 0, 0, time.UTC), 0.02},
	{time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC), 0.06},
	{time.Date(2014, 1, 1, 0, 0, 0, 0, time.UTC), 0.13},
	{time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC), 0.32},
	{time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC), 0.60},
	{time.Date(2016, 7, 1, 0, 0, 0, 0, time.UTC), 0.72},
	{time.Date(2017, 4, 1, 0, 0, 0, 0, time.UTC), 1.00},
}

func adoptionFrac(t time.Time) float64 {
	if !t.After(adoptionCurve[0].t) {
		return 0
	}
	for i := 1; i < len(adoptionCurve); i++ {
		if !t.After(adoptionCurve[i].t) {
			a, b := adoptionCurve[i-1], adoptionCurve[i]
			span := b.t.Sub(a.t)
			frac := float64(t.Sub(a.t)) / float64(span)
			return a.f + (b.f-a.f)*frac
		}
	}
	return 1
}

// adoptionTime inverts adoptionFrac for a quantile q in (0,1].
func adoptionTime(q float64) time.Time {
	for i := 1; i < len(adoptionCurve); i++ {
		a, b := adoptionCurve[i-1], adoptionCurve[i]
		if q <= b.f {
			if b.f == a.f {
				return b.t
			}
			frac := (q - a.f) / (b.f - a.f)
			return a.t.Add(time.Duration(frac * float64(b.t.Sub(a.t))))
		}
	}
	return adoptionCurve[len(adoptionCurve)-1].t
}

// New generates the world: universe, tail, and the deployment timeline.
func New(cfg Config) *World {
	w := &World{
		Cfg:         cfg,
		Universe:    alexa.NewUniverse(cfg.UniverseSize, cfg.Seed),
		deployments: make(map[string]*antiadblock.Deployment),
		tailRanks:   make(map[string]int),
	}
	for _, s := range w.Universe.Top(cfg.UniverseSize) {
		w.maybeAdopt(s.Domain, w.effectiveRank(s.Rank), s.Category)
	}
	// Tail domains exist only to be deployed and listed.
	for i := 0; i < cfg.Tail100K1M; i++ {
		d := fmt.Sprintf("midtail%04d.com", i)
		rank := 100_001 + i*((1_000_000-100_001)/max(1, cfg.Tail100K1M))
		w.tailRanks[d] = rank
		w.adopt(d, rank)
	}
	for i := 0; i < cfg.TailOver1M; i++ {
		d := fmt.Sprintf("deeptail%04d.net", i)
		rank := 1_000_001 + i*100
		w.tailRanks[d] = rank
		w.adopt(d, rank)
	}
	w.deployOrder = make([]string, 0, len(w.deployments))
	for d := range w.deployments {
		w.deployOrder = append(w.deployOrder, d)
	}
	sort.Strings(w.deployOrder)
	return w
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// maybeAdopt decides whether (and when) a universe site adopts
// anti-adblocking.
func (w *World) maybeAdopt(domain string, rank int, cat alexa.Category) {
	p := w.Cfg.BaseAdoption * rankAdoption(rank) * categoryAdoption[cat]
	if p > 1 {
		p = 1
	}
	u := w.hashFloat("adopt", domain, 0)
	if u >= p {
		return
	}
	// The site's position in the adoption wave: a uniform quantile.
	q := w.hashFloat("when", domain, 0)
	w.addDeployment(domain, adoptionTime(q))
}

// adopt unconditionally deploys a tail domain.
func (w *World) adopt(domain string, rank int) {
	q := w.hashFloat("when", domain, 0)
	w.addDeployment(domain, adoptionTime(q))
}

func (w *World) addDeployment(domain string, start time.Time) {
	rng := w.rng("deploy", domain, 0)
	vendor := w.pickVendor(rng, start)
	if start.Before(vendor.Available) {
		start = vendor.Available
	}
	d := antiadblock.NewDeployment(domain, vendor, start, rng)
	w.deployments[domain] = d
}

// pickVendor draws a vendor by market share among those available at t
// (first-party "Custom" is always available as the fallback).
func (w *World) pickVendor(rng *rand.Rand, t time.Time) *antiadblock.Vendor {
	var avail []*antiadblock.Vendor
	total := 0.0
	for _, v := range antiadblock.Catalog {
		if !t.Before(v.Available) {
			avail = append(avail, v)
			total += v.Share
		}
	}
	if len(avail) == 0 {
		return antiadblock.VendorByName("Custom")
	}
	r := rng.Float64() * total
	acc := 0.0
	for _, v := range avail {
		acc += v.Share
		if r < acc {
			return v
		}
	}
	return avail[len(avail)-1]
}

// DeploymentOf returns the domain's deployment (nil when the site never
// adopts anti-adblocking).
func (w *World) DeploymentOf(domain string) *antiadblock.Deployment {
	return w.deployments[domain]
}

// Deployments returns every deployment, ordered by domain for determinism.
func (w *World) Deployments() []*antiadblock.Deployment {
	out := make([]*antiadblock.Deployment, 0, len(w.deployOrder))
	for _, d := range w.deployOrder {
		out = append(out, w.deployments[d])
	}
	return out
}

// effectiveRank maps a scaled universe's rank to its paper-scale
// equivalent: in a 1/20-scale world (5K domains), rank 250 stands for the
// real web's rank 5,000. At full scale this is the identity.
func (w *World) effectiveRank(rank int) int {
	if rank == 0 || w.Cfg.UniverseSize >= 100_000 {
		return rank
	}
	return rank * (100_000 / w.Cfg.UniverseSize)
}

// RankOf returns a domain's paper-scale rank, covering both universe and
// tail domains (0 for unknown domains, bucketed as >1M).
func (w *World) RankOf(domain string) int {
	if r := w.Universe.Rank(domain); r != 0 {
		return w.effectiveRank(r)
	}
	return w.tailRanks[domain]
}

// CategoryOf returns a domain's category; tail domains hash into one.
func (w *World) CategoryOf(domain string) alexa.Category {
	if s, ok := w.Universe.Site(domain); ok {
		return s.Category
	}
	cats := alexa.Categories()
	return cats[int(w.hash64("tailcat", domain, 0)%uint64(len(cats)))]
}

// TopDomains returns the domains of the top-n ranked sites.
func (w *World) TopDomains(n int) []string {
	sites := w.Universe.Top(n)
	out := make([]string, len(sites))
	for i, s := range sites {
		out[i] = s.Domain
	}
	return out
}

// NonDeployedDomains returns up to n universe domains without deployments,
// in rank order — the pool the curation model draws exception-rule (false
// positive fix) targets from.
func (w *World) NonDeployedDomains(n int) []string {
	var out []string
	for _, s := range w.Universe.Top(w.Cfg.UniverseSize) {
		if w.deployments[s.Domain] == nil {
			out = append(out, s.Domain)
			if len(out) == n {
				break
			}
		}
	}
	return out
}

// StaticNotice reports whether a deployed site keeps its warning overlay
// in static HTML (visible to archive crawls); most sites inject it
// dynamically on detection. The curation model uses this: list authors
// write HTML hide rules for notices they can see.
func (w *World) StaticNotice(domain string) bool {
	return w.hashFloat("static", domain, 0) < w.Cfg.StaticNoticeFraction
}

// contentEpoch changes a site's baseline content once a year — websites
// change content often but codebase rarely (§4.1).
func contentEpoch(t time.Time) int64 { return int64(t.Year()) }

// PageAt implements wayback.SiteSource: the domain's homepage at time t.
func (w *World) PageAt(domain string, t time.Time) (*web.Page, bool) {
	if _, ok := w.Universe.Site(domain); !ok {
		return nil, false
	}
	return w.buildPage(domain, t), true
}

// LivePage implements crawler.LiveSource at the configured live-crawl
// date; a small fraction of sites is unreachable.
func (w *World) LivePage(domain string) (*web.Page, bool) {
	if _, ok := w.Universe.Site(domain); !ok {
		return nil, false
	}
	if w.hashFloat("unreachable", domain, 0) < w.Cfg.UnreachableFraction {
		return nil, false
	}
	return w.buildPage(domain, w.Cfg.LiveDate), true
}

// buildPage deterministically renders a site at a time: baseline content
// plus, when a deployment is active, the anti-adblock machinery.
func (w *World) buildPage(domain string, t time.Time) *web.Page {
	rng := w.rng("content", domain, contentEpoch(t))
	p := web.NewPage(domain, domain)

	// Baseline: stylesheet, images, a couple of benign scripts (some
	// external, some inline), occasionally third-party analytics.
	p.AddRequest("http://"+domain+"/css/main.css", abp.TypeStylesheet)
	nImgs := 1 + rng.Intn(3)
	for i := 0; i < nImgs; i++ {
		p.AddRequest(fmt.Sprintf("http://img.%s/asset%d.png", domain, i), abp.TypeImage)
	}
	nScripts := 1 + rng.Intn(3)
	for i := 0; i < nScripts; i++ {
		src := antiadblock.RandomBenignScript(rng, w.Cfg.Gen)
		if rng.Float64() < 0.6 {
			u := fmt.Sprintf("http://%s/js/lib%d.js", domain, i)
			p.AddRequest(u, abp.TypeScript)
			p.Scripts = append(p.Scripts, web.Script{URL: u, Source: src})
			tag := web.NewElement("script", "")
			tag.SetAttr("src", u)
			p.Head().Append(tag)
		} else {
			p.Scripts = append(p.Scripts, web.Script{Source: src})
			tag := web.NewElement("script", "")
			tag.Text = src
			p.Head().Append(tag)
		}
	}
	if rng.Float64() < 0.35 {
		p.AddRequest("http://stats.counterhub.net/collect.js", abp.TypeScript)
	}
	body := p.Body()
	content := web.NewElement("div", "content", "main")
	content.Text = "page content"
	body.Append(content)

	if d := w.deployments[domain]; d != nil && d.ActiveAt(t) {
		// Deployment randomness keyed to the deployment, not the month:
		// the anti-adblock integration stays stable once added.
		drng := w.rng("aab", domain, d.Start.Unix())
		applyDeployment(d, p, drng, w.Cfg.Gen, w.StaticNotice(domain))
	}
	return p
}

// applyDeployment injects the anti-adblock machinery, optionally removing
// the static overlay again for dynamic-notice sites.
func applyDeployment(d *antiadblock.Deployment, p *web.Page, rng *rand.Rand, opt antiadblock.GenOptions, staticNotice bool) {
	d.Apply(p, rng, opt)
	if !staticNotice {
		// Dynamic-notice sites build the overlay in JS on detection; the
		// archived DOM does not contain it.
		body := p.Body()
		kept := body.Children[:0]
		for _, c := range body.Children {
			if c.ID != d.NoticeID {
				kept = append(kept, c)
			}
		}
		body.Children = kept
	}
}

// rng builds a deterministic per-(salt,domain,epoch) rand source.
func (w *World) rng(salt, domain string, epoch int64) *rand.Rand {
	return rand.New(rand.NewSource(int64(w.hash64(salt, domain, epoch))))
}

func (w *World) hash64(salt, domain string, epoch int64) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d|%d", salt, domain, epoch, w.Cfg.Seed)
	return h.Sum64()
}

func (w *World) hashFloat(salt, domain string, epoch int64) float64 {
	return float64(w.hash64(salt, domain, epoch)>>11) / float64(1<<53)
}
