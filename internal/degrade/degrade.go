// Package degrade is the adaptive overload governor: it watches live
// pressure signals (admission queue depth, in-flight latency p99,
// analytics ring drop rate) and steps a global degradation level
// through a hysteresis-damped ladder. The serving hot path reads the
// current level with a single atomic load — no locks, no allocations —
// and sheds fidelity in stages instead of flipping straight from
// full service to 429:
//
//	L0  full service
//	L1  analytics sampling forced down
//	L2  match answers from the hot-tier automaton only (cold skipped)
//	L3  /v1/classify degraded to match-only fallback (classify shed)
//	L4  non-priority traffic shed early with jittered Retry-After
//
// Hysteresis: the governor steps UP one level only after StepUpTicks
// consecutive over-pressure observations, and steps DOWN one level only
// after StepDownTicks consecutive calm observations — with the counters
// reset on every transition, so recovery is level-by-level rather than
// a cliff, and a borderline signal holds the current level instead of
// flapping. Operators can pin the ladder to a fixed level via
// /admin/degrade; a pinned governor keeps observing but stops stepping.
package degrade

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Level is one rung of the degradation ladder. Levels are ordered:
// higher sheds more fidelity.
type Level int32

const (
	L0 Level = iota // full service
	L1              // analytics sampling forced down
	L2              // hot-tier-only match answers
	L3              // classify shed (clients fall back to /v1/match)
	L4              // non-priority traffic shed early
)

// levelNames is indexed by Level; the shared strings make String and
// the serve-side header stamp allocation-free.
var levelNames = [5]string{"L0", "L1", "L2", "L3", "L4"}

func (l Level) String() string {
	if l < L0 || l > L4 {
		return "L?"
	}
	return levelNames[l]
}

// Signals is one observation of the pressure inputs. All values are
// windowed (per observation interval), not cumulative: the source must
// hand the governor deltas, or a past overload would pin the ladder up
// forever.
type Signals struct {
	// QueueDepth is the current admission queue occupancy.
	QueueDepth int64 `json:"queue_depth"`
	// QueueLimit is the admission queue capacity (for the fraction).
	QueueLimit int64 `json:"queue_limit"`
	// MatchP99Ns is the in-flight latency p99 over the last window, in
	// nanoseconds. Zero when the window saw no traffic.
	MatchP99Ns int64 `json:"match_p99_ns"`
	// DropRate is the analytics ring drop fraction over the last
	// window, in [0,1]. Zero when analytics is off or idle.
	DropRate float64 `json:"drop_rate"`
}

// Config tunes the governor. The zero value is usable: every field has
// a sane default.
type Config struct {
	// Interval is the observation cadence. Default 100ms.
	Interval time.Duration
	// QueueHighFrac: queue depth above this fraction of the limit is
	// over-pressure. Default 0.5.
	QueueHighFrac float64
	// P99HighNs: windowed match p99 above this is over-pressure.
	// Default 20ms.
	P99HighNs int64
	// DropHighRate: windowed analytics drop rate above this is
	// over-pressure. Default 0.01.
	DropHighRate float64
	// StepUpTicks consecutive over-pressure observations are required
	// before climbing one level. Default 2.
	StepUpTicks int
	// StepDownTicks consecutive calm observations are required before
	// descending one level. Default 5.
	StepDownTicks int
	// CalmFrac scales the high thresholds down to form the calm band:
	// an observation is calm only when every signal is below
	// CalmFrac × its high threshold. The gap between calm and high is
	// the hysteresis dead zone where the level holds. Default 0.5.
	CalmFrac float64
	// MaxLevel caps the ladder. Default L4.
	MaxLevel Level
	// Source produces one windowed observation per tick. Required for
	// Start; Tick can be driven directly in tests without it.
	Source func() Signals
	// OnTransition, if set, is called synchronously after every level
	// change (automatic or pinned) with the old and new levels.
	OnTransition func(from, to Level)
}

func (c *Config) interval() time.Duration {
	if c.Interval > 0 {
		return c.Interval
	}
	return 100 * time.Millisecond
}

func (c *Config) queueHighFrac() float64 {
	if c.QueueHighFrac > 0 {
		return c.QueueHighFrac
	}
	return 0.5
}

func (c *Config) p99HighNs() int64 {
	if c.P99HighNs > 0 {
		return c.P99HighNs
	}
	return int64(20 * time.Millisecond)
}

func (c *Config) dropHighRate() float64 {
	if c.DropHighRate > 0 {
		return c.DropHighRate
	}
	return 0.01
}

func (c *Config) stepUpTicks() int {
	if c.StepUpTicks > 0 {
		return c.StepUpTicks
	}
	return 2
}

func (c *Config) stepDownTicks() int {
	if c.StepDownTicks > 0 {
		return c.StepDownTicks
	}
	return 5
}

func (c *Config) calmFrac() float64 {
	if c.CalmFrac > 0 {
		return c.CalmFrac
	}
	return 0.5
}

func (c *Config) maxLevel() Level {
	if c.MaxLevel > L0 && c.MaxLevel <= L4 {
		return c.MaxLevel
	}
	return L4
}

// transitionRing keeps the most recent transition costs for the p99
// export. Tiny, mutex-guarded: transitions are rare by construction
// (hysteresis bounds them to at most one per StepUpTicks intervals).
const transitionRingSize = 64

// Governor steps the degradation level. Construct with New; Start
// launches the observation loop (optional — Tick can be driven
// manually, which is what the unit tests do).
type Governor struct {
	cfg Config

	level  atomic.Int32 // current Level; the ONLY hot-path read
	pinned atomic.Int32 // -1 = unpinned, else the pinned Level

	hotTicks  int // consecutive over-pressure ticks (loop-only state)
	calmTicks int // consecutive calm ticks (loop-only state)

	ticks       atomic.Uint64
	stepUps     atomic.Uint64
	stepDowns   atomic.Uint64
	transitions atomic.Uint64
	peak        atomic.Int32
	lastSignals atomic.Pointer[Signals]

	jitterState atomic.Uint64 // splitmix64 counter for Jitter3

	ringMu   sync.Mutex
	ring     [transitionRingSize]int64 // transition durations, ns
	ringN    int
	ringNext int

	startOnce sync.Once
	closeOnce sync.Once
	done      chan struct{}
	wg        sync.WaitGroup
}

// New builds a governor at L0. No goroutine is started — call Start
// for the background observation loop, or drive Tick directly.
func New(cfg Config) *Governor {
	g := &Governor{cfg: cfg, done: make(chan struct{})}
	g.pinned.Store(-1)
	return g
}

// Level is the hot-path read: one atomic load, zero allocations.
func (g *Governor) Level() Level {
	return Level(g.level.Load())
}

// Jitter3 returns a value in {0,1,2} from a lock-free splitmix64
// stream — used to spread Retry-After hints so shed clients do not
// return in one synchronized wave. Zero allocations.
func (g *Governor) Jitter3() int {
	x := g.jitterState.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int(x % 3)
}

// Start launches the observation loop. Idempotent; requires
// Config.Source.
func (g *Governor) Start() {
	if g.cfg.Source == nil {
		return
	}
	g.startOnce.Do(func() {
		g.wg.Add(1)
		go g.run()
	})
}

// Close stops the observation loop (if started). Idempotent.
func (g *Governor) Close() {
	g.closeOnce.Do(func() {
		close(g.done)
	})
	g.wg.Wait()
}

func (g *Governor) run() {
	defer g.wg.Done()
	t := time.NewTicker(g.cfg.interval())
	defer t.Stop()
	for {
		select {
		case <-g.done:
			return
		case <-t.C:
			g.Tick(g.cfg.Source())
		}
	}
}

// Tick feeds one observation through the hysteresis ladder. Exported
// so tests (and alternative drivers) can step the governor
// deterministically without the timer loop. Not safe for concurrent
// Tick callers (the loop is the only production caller); safe against
// concurrent Level/Snapshot/Pin readers.
func (g *Governor) Tick(s Signals) {
	g.ticks.Add(1)
	sc := s
	g.lastSignals.Store(&sc)

	if g.pinned.Load() >= 0 {
		// Pinned: keep observing, stop stepping, and do not let stale
		// streak counters fire the instant the operator unpins.
		g.hotTicks, g.calmTicks = 0, 0
		return
	}

	switch g.classify(s) {
	case pressureHot:
		g.calmTicks = 0
		g.hotTicks++
		if cur := g.Level(); g.hotTicks >= g.cfg.stepUpTicks() && cur < g.cfg.maxLevel() {
			g.setLevel(cur, cur+1)
			g.hotTicks = 0
		}
	case pressureCalm:
		g.hotTicks = 0
		g.calmTicks++
		if cur := g.Level(); g.calmTicks >= g.cfg.stepDownTicks() && cur > L0 {
			g.setLevel(cur, cur-1)
			g.calmTicks = 0
		}
	default:
		// The hysteresis dead zone: neither hot nor calm. Hold the
		// level and restart both streaks.
		g.hotTicks, g.calmTicks = 0, 0
	}
}

type pressure int

const (
	pressureHold pressure = iota
	pressureHot
	pressureCalm
)

// classify buckets one observation: hot if ANY signal exceeds its high
// threshold, calm only if ALL signals sit below CalmFrac × high.
func (g *Governor) classify(s Signals) pressure {
	queueFrac := 0.0
	if s.QueueLimit > 0 {
		queueFrac = float64(s.QueueDepth) / float64(s.QueueLimit)
	}
	qHigh := g.cfg.queueHighFrac()
	pHigh := g.cfg.p99HighNs()
	dHigh := g.cfg.dropHighRate()
	if queueFrac > qHigh || s.MatchP99Ns > pHigh || s.DropRate > dHigh {
		return pressureHot
	}
	cf := g.cfg.calmFrac()
	if queueFrac < cf*qHigh && float64(s.MatchP99Ns) < cf*float64(pHigh) && s.DropRate < cf*dHigh {
		return pressureCalm
	}
	return pressureHold
}

// setLevel performs one transition: swap the level, fire the hook,
// account the cost.
func (g *Governor) setLevel(from, to Level) {
	t0 := time.Now()
	g.level.Store(int32(to))
	if g.cfg.OnTransition != nil {
		g.cfg.OnTransition(from, to)
	}
	d := time.Since(t0).Nanoseconds()

	g.transitions.Add(1)
	if to > from {
		g.stepUps.Add(1)
	} else {
		g.stepDowns.Add(1)
	}
	for {
		p := g.peak.Load()
		if int32(to) <= p || g.peak.CompareAndSwap(p, int32(to)) {
			break
		}
	}
	g.ringMu.Lock()
	g.ring[g.ringNext] = d
	g.ringNext = (g.ringNext + 1) % transitionRingSize
	if g.ringN < transitionRingSize {
		g.ringN++
	}
	g.ringMu.Unlock()
}

// Pin fixes the ladder at lvl until Unpin: the level changes
// immediately (firing OnTransition if it moved) and automatic stepping
// stops. Clamped to [L0, MaxLevel].
func (g *Governor) Pin(lvl Level) {
	if lvl < L0 {
		lvl = L0
	}
	if max := g.cfg.maxLevel(); lvl > max {
		lvl = max
	}
	g.pinned.Store(int32(lvl))
	if cur := g.Level(); cur != lvl {
		g.setLevel(cur, lvl)
	}
}

// Unpin returns control to the automatic ladder. The level stays where
// it was pinned and descends (or climbs) from there by hysteresis.
func (g *Governor) Unpin() {
	g.pinned.Store(-1)
}

// Pinned reports the pinned level, or -1 when automatic.
func (g *Governor) Pinned() Level {
	return Level(g.pinned.Load())
}

// TransitionP99Ns is the p99 transition cost over the recent ring, or
// 0 when no transition has happened yet.
func (g *Governor) TransitionP99Ns() int64 {
	g.ringMu.Lock()
	defer g.ringMu.Unlock()
	if g.ringN == 0 {
		return 0
	}
	buf := make([]int64, g.ringN)
	copy(buf, g.ring[:g.ringN])
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	idx := (99*g.ringN + 99) / 100
	if idx >= g.ringN {
		idx = g.ringN - 1
	}
	return buf[idx]
}

// Snapshot is the observability surface for /admin/degrade and
// /debug/vars.
type Snapshot struct {
	Level           string   `json:"level"`
	LevelNum        int      `json:"level_num"`
	Pinned          bool     `json:"pinned"`
	PinnedLevel     int      `json:"pinned_level,omitempty"`
	PeakLevel       int      `json:"peak_level"`
	Transitions     uint64   `json:"transitions"`
	StepUps         uint64   `json:"step_ups"`
	StepDowns       uint64   `json:"step_downs"`
	Ticks           uint64   `json:"ticks"`
	TransitionP99Ns int64    `json:"transition_p99_ns"`
	LastSignals     *Signals `json:"last_signals,omitempty"`
}

// Snapshot captures the governor state. Safe concurrent with Tick.
func (g *Governor) Snapshot() Snapshot {
	lvl := g.Level()
	snap := Snapshot{
		Level:           lvl.String(),
		LevelNum:        int(lvl),
		PeakLevel:       int(g.peak.Load()),
		Transitions:     g.transitions.Load(),
		StepUps:         g.stepUps.Load(),
		StepDowns:       g.stepDowns.Load(),
		Ticks:           g.ticks.Load(),
		TransitionP99Ns: g.TransitionP99Ns(),
		LastSignals:     g.lastSignals.Load(),
	}
	if p := g.pinned.Load(); p >= 0 {
		snap.Pinned = true
		snap.PinnedLevel = int(p)
	}
	return snap
}
