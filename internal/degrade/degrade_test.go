package degrade

import (
	"sync"
	"testing"
	"time"
)

// hot/calm/hold signal fixtures against the default thresholds
// (queue high 0.5, p99 high 20ms, drop high 0.01; calm frac 0.5).
func hotSignals() Signals {
	return Signals{QueueDepth: 8, QueueLimit: 10, MatchP99Ns: int64(50 * time.Millisecond), DropRate: 0.5}
}

func calmSignals() Signals {
	return Signals{QueueDepth: 0, QueueLimit: 10, MatchP99Ns: 0, DropRate: 0}
}

func holdSignals() Signals {
	// Queue at 0.4 of limit: below high (0.5) but above calm (0.25).
	return Signals{QueueDepth: 4, QueueLimit: 10, MatchP99Ns: 0, DropRate: 0}
}

func newTestGovernor(t *testing.T, cfg Config) *Governor {
	t.Helper()
	return New(cfg)
}

func TestLadderClimbsWithHysteresis(t *testing.T) {
	g := newTestGovernor(t, Config{StepUpTicks: 2, StepDownTicks: 3})

	// One hot tick is not enough.
	g.Tick(hotSignals())
	if got := g.Level(); got != L0 {
		t.Fatalf("after 1 hot tick: level %v, want L0", got)
	}
	// The second consecutive hot tick climbs one level.
	g.Tick(hotSignals())
	if got := g.Level(); got != L1 {
		t.Fatalf("after 2 hot ticks: level %v, want L1", got)
	}
	// Counters reset on the step: two more hot ticks for the next rung.
	g.Tick(hotSignals())
	if got := g.Level(); got != L1 {
		t.Fatalf("after 3 hot ticks: level %v, want L1 (streak reset)", got)
	}
	g.Tick(hotSignals())
	if got := g.Level(); got != L2 {
		t.Fatalf("after 4 hot ticks: level %v, want L2", got)
	}
	// Climb to the cap and stay there.
	for i := 0; i < 10; i++ {
		g.Tick(hotSignals())
	}
	if got := g.Level(); got != L4 {
		t.Fatalf("under sustained pressure: level %v, want L4 cap", got)
	}
}

func TestLadderRecoversLevelByLevel(t *testing.T) {
	g := newTestGovernor(t, Config{StepUpTicks: 1, StepDownTicks: 3})
	for i := 0; i < 4; i++ {
		g.Tick(hotSignals())
	}
	if got := g.Level(); got != L4 {
		t.Fatalf("setup: level %v, want L4", got)
	}

	// Each descent needs StepDownTicks consecutive calm observations,
	// and the streak resets after each step: L4→L0 is 4 × 3 ticks.
	for step := 4; step > 0; step-- {
		for i := 0; i < 2; i++ {
			g.Tick(calmSignals())
			if got := g.Level(); got != Level(step) {
				t.Fatalf("mid-streak: level %v, want L%d", got, step)
			}
		}
		g.Tick(calmSignals())
		if got := g.Level(); got != Level(step-1) {
			t.Fatalf("after calm streak: level %v, want L%d", got, step-1)
		}
	}

	snap := g.Snapshot()
	if snap.PeakLevel != 4 {
		t.Fatalf("peak_level = %d, want 4", snap.PeakLevel)
	}
	// No flapping: each rung crossed exactly once up and once down.
	if snap.Transitions != 8 || snap.StepUps != 4 || snap.StepDowns != 4 {
		t.Fatalf("transitions=%d stepUps=%d stepDowns=%d, want 8/4/4",
			snap.Transitions, snap.StepUps, snap.StepDowns)
	}
}

func TestDeadZoneHoldsLevelAndResetsStreaks(t *testing.T) {
	g := newTestGovernor(t, Config{StepUpTicks: 2, StepDownTicks: 2})
	g.Tick(hotSignals())
	g.Tick(hotSignals())
	if got := g.Level(); got != L1 {
		t.Fatalf("setup: level %v, want L1", got)
	}

	// A long run of in-between observations never moves the level.
	for i := 0; i < 20; i++ {
		g.Tick(holdSignals())
	}
	if got := g.Level(); got != L1 {
		t.Fatalf("dead zone: level %v, want L1 held", got)
	}

	// And it resets the calm streak: calm, hold, calm must NOT step
	// down (non-consecutive), but calm, calm must.
	g.Tick(calmSignals())
	g.Tick(holdSignals())
	g.Tick(calmSignals())
	if got := g.Level(); got != L1 {
		t.Fatalf("broken calm streak stepped down: level %v, want L1", got)
	}
	g.Tick(calmSignals())
	if got := g.Level(); got != L0 {
		t.Fatalf("consecutive calm: level %v, want L0", got)
	}
}

func TestAnySignalTriggersPressure(t *testing.T) {
	g := newTestGovernor(t, Config{StepUpTicks: 1})
	cases := []struct {
		name string
		s    Signals
	}{
		{"queue", Signals{QueueDepth: 9, QueueLimit: 10}},
		{"p99", Signals{QueueLimit: 10, MatchP99Ns: int64(30 * time.Millisecond)}},
		{"drops", Signals{QueueLimit: 10, DropRate: 0.2}},
	}
	for _, tc := range cases {
		before := g.Level()
		g.Tick(tc.s)
		if got := g.Level(); got != before+1 {
			t.Fatalf("%s signal: level %v, want %v", tc.name, got, before+1)
		}
	}
}

func TestPinOverridesLadder(t *testing.T) {
	g := newTestGovernor(t, Config{StepUpTicks: 1, StepDownTicks: 1})
	g.Pin(L3)
	if got := g.Level(); got != L3 {
		t.Fatalf("pinned level %v, want L3", got)
	}
	if got := g.Pinned(); got != L3 {
		t.Fatalf("Pinned() = %v, want L3", got)
	}
	// Ticks in either direction do not move a pinned governor.
	g.Tick(hotSignals())
	g.Tick(calmSignals())
	g.Tick(calmSignals())
	if got := g.Level(); got != L3 {
		t.Fatalf("pinned governor moved: level %v, want L3", got)
	}
	snap := g.Snapshot()
	if !snap.Pinned || snap.PinnedLevel != 3 {
		t.Fatalf("snapshot pinned=%v pinned_level=%d, want true/3", snap.Pinned, snap.PinnedLevel)
	}

	// Unpin: the level stays put, then descends by hysteresis.
	g.Unpin()
	if got := g.Pinned(); got != Level(-1) {
		t.Fatalf("Pinned() after Unpin = %v, want -1", got)
	}
	if got := g.Level(); got != L3 {
		t.Fatalf("level after Unpin = %v, want L3", got)
	}
	g.Tick(calmSignals())
	if got := g.Level(); got != L2 {
		t.Fatalf("level after calm tick = %v, want L2", got)
	}
}

func TestPinClampsToLadderBounds(t *testing.T) {
	g := newTestGovernor(t, Config{MaxLevel: L2})
	g.Pin(L4)
	if got := g.Level(); got != L2 {
		t.Fatalf("pin above MaxLevel: level %v, want L2", got)
	}
	g.Pin(Level(-5))
	if got := g.Level(); got != L0 {
		t.Fatalf("pin below L0: level %v, want L0", got)
	}
}

func TestMaxLevelCapsClimb(t *testing.T) {
	g := newTestGovernor(t, Config{StepUpTicks: 1, MaxLevel: L2})
	for i := 0; i < 10; i++ {
		g.Tick(hotSignals())
	}
	if got := g.Level(); got != L2 {
		t.Fatalf("capped ladder: level %v, want L2", got)
	}
}

func TestOnTransitionHookSeesEveryStep(t *testing.T) {
	type hop struct{ from, to Level }
	var hops []hop
	g := New(Config{StepUpTicks: 1, StepDownTicks: 1, OnTransition: func(from, to Level) {
		hops = append(hops, hop{from, to})
	}})
	g.Tick(hotSignals())
	g.Tick(hotSignals())
	g.Tick(calmSignals())
	want := []hop{{L0, L1}, {L1, L2}, {L2, L1}}
	if len(hops) != len(want) {
		t.Fatalf("hook fired %d times, want %d: %v", len(hops), len(want), hops)
	}
	for i, h := range hops {
		if h != want[i] {
			t.Fatalf("hop %d = %v→%v, want %v→%v", i, h.from, h.to, want[i].from, want[i].to)
		}
	}
}

func TestStartCloseLifecycle(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	g := New(Config{Interval: time.Millisecond, Source: func() Signals {
		mu.Lock()
		calls++
		mu.Unlock()
		return calmSignals()
	}})
	g.Start()
	g.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := calls
		mu.Unlock()
		if n >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("observation loop never ran: %d calls", n)
		}
		time.Sleep(time.Millisecond)
	}
	g.Close()
	g.Close() // idempotent
}

func TestCloseWithoutStartIsSafe(t *testing.T) {
	g := New(Config{})
	g.Close()
}

func TestSnapshotCarriesLastSignals(t *testing.T) {
	g := New(Config{})
	s := hotSignals()
	g.Tick(s)
	snap := g.Snapshot()
	if snap.LastSignals == nil || *snap.LastSignals != s {
		t.Fatalf("last_signals = %+v, want %+v", snap.LastSignals, s)
	}
	if snap.Ticks != 1 {
		t.Fatalf("ticks = %d, want 1", snap.Ticks)
	}
}

// TestDegradeLevelZeroAllocs is the bench-smoke gate: the hot-path
// level read and the shed-jitter draw must not allocate.
func TestDegradeLevelZeroAllocs(t *testing.T) {
	g := New(Config{})
	g.Pin(L2)
	var sink Level
	var jsink int
	allocs := testing.AllocsPerRun(1000, func() {
		sink = g.Level()
		jsink = g.Jitter3()
	})
	if allocs != 0 {
		t.Fatalf("Level+Jitter3 allocate %.1f allocs/op, want 0", allocs)
	}
	_, _ = sink, jsink
}

// TestDegradeTransitionCost is the bench-smoke gate on transition
// overhead: one ladder step (atomic swap + hook + ring accounting)
// must stay far below one observation interval.
func TestDegradeTransitionCost(t *testing.T) {
	g := New(Config{StepUpTicks: 1, StepDownTicks: 1, OnTransition: func(from, to Level) {}})
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			g.Tick(hotSignals())
		} else {
			g.Tick(calmSignals())
		}
	}
	p99 := g.TransitionP99Ns()
	if p99 <= 0 {
		t.Fatalf("transition p99 = %d, want > 0 after transitions", p99)
	}
	// 1ms is three orders of magnitude above the measured cost; this
	// trips only if a transition starts doing real work.
	if limit := int64(time.Millisecond); p99 > limit {
		t.Fatalf("transition p99 = %dns, want <= %dns", p99, limit)
	}
}

func TestJitter3Spread(t *testing.T) {
	g := New(Config{})
	var counts [3]int
	for i := 0; i < 3000; i++ {
		v := g.Jitter3()
		if v < 0 || v > 2 {
			t.Fatalf("Jitter3 = %d, want 0..2", v)
		}
		counts[v]++
	}
	for i, n := range counts {
		if n == 0 {
			t.Fatalf("Jitter3 never produced %d: %v", i, counts)
		}
	}
}

func BenchmarkDegradeLevelRead(b *testing.B) {
	g := New(Config{})
	b.ReportAllocs()
	var sink Level
	for i := 0; i < b.N; i++ {
		sink = g.Level()
	}
	_ = sink
}

func BenchmarkDegradeTransition(b *testing.B) {
	g := New(Config{StepUpTicks: 1, StepDownTicks: 1})
	hot, calm := hotSignals(), calmSignals()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			g.Tick(hot)
		} else {
			g.Tick(calm)
		}
	}
	b.ReportMetric(float64(g.TransitionP99Ns()), "transition-p99-ns")
}
