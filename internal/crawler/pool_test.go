package crawler

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	const n = 200
	var counts [n]int32
	if err := ForEach(context.Background(), 7, n, func(i int) {
		atomic.AddInt32(&counts[i], 1)
	}); err != nil {
		t.Fatalf("ForEach: %v", err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d visited %d times, want 1", i, c)
		}
	}
}

func TestForEachZeroWorkersAndZeroItems(t *testing.T) {
	ran := 0
	if err := ForEach(context.Background(), 0, 3, func(i int) { ran++ }); err != nil {
		t.Fatalf("ForEach with 0 workers: %v", err)
	}
	if ran != 3 {
		t.Fatalf("ran = %d, want 3 (workers clamped to 1)", ran)
	}
	if err := ForEach(context.Background(), 4, 0, func(i int) { t.Error("fn called for n=0") }); err != nil {
		t.Fatalf("ForEach with 0 items: %v", err)
	}
}

func TestForEachCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	visited := make(map[int]bool)
	err := ForEach(ctx, 2, 1000, func(i int) {
		mu.Lock()
		visited[i] = true
		if len(visited) == 10 {
			cancel()
		}
		mu.Unlock()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(visited) >= 1000 {
		t.Fatal("cancellation did not stop the feed")
	}
	// Every fed index ran to completion; none were abandoned half-done —
	// the map contains exactly the indexes fn was called with.
	for i := range visited {
		if i < 0 || i >= 1000 {
			t.Fatalf("unexpected index %d", i)
		}
	}
}
