package crawler

import (
	"context"
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"adwars/internal/abp"
	"adwars/internal/wayback"
	"adwars/internal/web"
)

type stubSource map[string]*web.Page

func (s stubSource) PageAt(domain string, t time.Time) (*web.Page, bool) {
	p, ok := s[domain]
	return p, ok
}

func (s stubSource) LivePage(domain string) (*web.Page, bool) {
	p, ok := s[domain]
	return p, ok
}

func buildWorld(n int) (*wayback.Archive, stubSource, []string) {
	src := stubSource{}
	domains := make([]string, n)
	for i := range domains {
		domains[i] = fmt.Sprintf("crawlee%04d.com", i)
		p := web.NewPage(domains[i], domains[i])
		p.AddRequest("http://cdn."+domains[i]+"/app.js", abp.TypeScript)
		p.AddRequest("http://cdn."+domains[i]+"/style.css", abp.TypeStylesheet)
		p.AddRequest("http://img."+domains[i]+"/hero.png", abp.TypeImage)
		src[domains[i]] = p
	}
	cfg := wayback.DefaultConfig(7)
	cfg.Robots, cfg.Admin, cfg.Undefined = 10, 2, 3
	return wayback.New(src, domains, cfg), src, domains
}

func TestCrawlMonth(t *testing.T) {
	a, _, domains := buildWorld(400)
	m := time.Date(2015, 2, 1, 0, 0, 0, 0, time.UTC)
	res, err := CrawlMonth(context.Background(), a, domains, m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != len(domains) {
		t.Fatalf("results = %d", len(res.Results))
	}
	total := 0
	for _, c := range res.Counts {
		total += c
	}
	if total != len(domains) {
		t.Fatalf("counts sum to %d", total)
	}
	if res.Counts[StatusExcluded] != 15 {
		t.Fatalf("excluded = %d, want 15", res.Counts[StatusExcluded])
	}
	if res.Counts[StatusOK] == 0 {
		t.Fatal("no successful crawls")
	}
	for i, r := range res.Results {
		if r.Domain != domains[i] {
			t.Fatal("result order must match input order")
		}
		if (r.Status == StatusOK) != (r.Snapshot != nil) {
			t.Fatalf("snapshot presence inconsistent for %s (%v)", r.Domain, r.Status)
		}
	}
}

func TestCrawlMonthDeterministic(t *testing.T) {
	a, _, domains := buildWorld(200)
	m := time.Date(2014, 9, 1, 0, 0, 0, 0, time.UTC)
	r1, err := CrawlMonth(context.Background(), a, domains, m, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := CrawlMonth(context.Background(), a, domains, m, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Results {
		if r1.Results[i].Status != r2.Results[i].Status {
			t.Fatalf("worker count changed status of %s", r1.Results[i].Domain)
		}
	}
}

func TestCrawlMonthCancellation(t *testing.T) {
	a, _, domains := buildWorld(300)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := CrawlMonth(ctx, a, domains, time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC), DefaultConfig())
	if err == nil {
		t.Fatal("cancelled crawl must return an error")
	}
}

func TestCrawlLive(t *testing.T) {
	_, src, domains := buildWorld(150)
	// Make a few domains unreachable.
	delete(src, domains[3])
	delete(src, domains[77])
	res, err := CrawlLive(context.Background(), src, domains, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	reachable := 0
	for _, r := range res {
		if r.Page != nil {
			reachable++
		}
	}
	if reachable != len(domains)-2 {
		t.Fatalf("reachable = %d, want %d", reachable, len(domains)-2)
	}
}

func TestCrawlLiveCancellation(t *testing.T) {
	_, src, domains := buildWorld(50)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CrawlLive(ctx, src, domains, DefaultConfig()); err == nil {
		t.Fatal("cancelled live crawl must return an error")
	}
}

func TestStatusString(t *testing.T) {
	names := map[Status]string{
		StatusOK: "ok", StatusExcluded: "excluded",
		StatusNotArchived: "not-archived", StatusOutdated: "outdated",
		StatusPartial: "partial", StatusError: "error",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d = %q, want %q", s, s.String(), want)
		}
	}
}

func TestMarkPartialsCutoff(t *testing.T) {
	// Hand-build a month result with one tiny HAR among big ones.
	mk := func(urls int) *wayback.Snapshot {
		p := web.NewPage("x.com", "x")
		for i := 0; i < urls; i++ {
			p.AddRequest(fmt.Sprintf("http://x.com/r%d.js", i), abp.TypeScript)
		}
		// Build HAR through the crawler path by fetching is overkill;
		// reuse Snapshot with a direct HAR.
		snap := &wayback.Snapshot{Ref: wayback.SnapshotRef{Domain: "x.com"}, Page: p}
		l := newHARFor(p, urls)
		snap.HAR = l
		return snap
	}
	m := &MonthResult{Results: []SiteResult{
		{Domain: "a.com", Status: StatusOK, Snapshot: mk(200)},
		{Domain: "b.com", Status: StatusOK, Snapshot: mk(200)},
		{Domain: "c.com", Status: StatusOK, Snapshot: mk(0)},
	}}
	markPartials(m)
	if m.Results[2].Status != StatusPartial {
		t.Fatalf("tiny HAR not marked partial: %v", m.Results[2].Status)
	}
	if m.Results[0].Status != StatusOK || m.Results[1].Status != StatusOK {
		t.Fatal("normal HARs must stay OK")
	}
}

// buildFaultyWorld is buildWorld with transient fault injection enabled.
func buildFaultyWorld(n int, rate float64) (*wayback.Archive, stubSource, []string) {
	src := stubSource{}
	domains := make([]string, n)
	for i := range domains {
		domains[i] = fmt.Sprintf("crawlee%04d.com", i)
		p := web.NewPage(domains[i], domains[i])
		p.AddRequest("http://cdn."+domains[i]+"/app.js", abp.TypeScript)
		p.AddRequest("http://cdn."+domains[i]+"/style.css", abp.TypeStylesheet)
		p.AddRequest("http://img."+domains[i]+"/hero.png", abp.TypeImage)
		src[domains[i]] = p
	}
	cfg := wayback.DefaultConfig(7)
	cfg.Robots, cfg.Admin, cfg.Undefined = 10, 2, 3
	cfg.Faults = wayback.DefaultFaultConfig(rate, 7)
	return wayback.New(src, domains, cfg), src, domains
}

// TestCrawlMonthFaultEquivalence is the headline correctness claim at the
// crawler level: a 10% transient-failure archive yields exactly the same
// per-site statuses as a clean archive — zero StatusError attributable to
// transients — because the retry budget absorbs every injected fault.
func TestCrawlMonthFaultEquivalence(t *testing.T) {
	clean, _, domains := buildWorld(400)
	faulty, _, _ := buildFaultyWorld(400, 0.10)
	m := time.Date(2015, 2, 1, 0, 0, 0, 0, time.UTC)
	want, err := CrawlMonth(context.Background(), clean, domains, m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var metrics Metrics
	got, err := CrawlMonth(context.Background(), faulty, domains, m, Config{Workers: 10, Metrics: &metrics})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Results {
		if got.Results[i].Status != want.Results[i].Status {
			t.Fatalf("%s: faulty %v != clean %v (err: %v)", domains[i],
				got.Results[i].Status, want.Results[i].Status, got.Results[i].Err)
		}
	}
	if got.Counts[StatusError] != 0 {
		t.Fatalf("transient faults leaked into StatusError: %d", got.Counts[StatusError])
	}
	snap := metrics.Snapshot()
	if snap.TransientFailures == 0 || snap.Retries == 0 {
		t.Fatalf("faults were not exercised: %s", snap)
	}
	if snap.RetriesExhausted != 0 {
		t.Fatalf("retry budget exhausted %d times", snap.RetriesExhausted)
	}
	if faulty.Faults().InjectedTotal() == 0 {
		t.Fatal("injector idle")
	}
}

// TestCrawlMonthOutageBreaker drives a full-archive outage through the
// shared breaker: the crawl must still complete with zero errors, and the
// breaker must have opened (shed load) along the way.
func TestCrawlMonthOutageBreaker(t *testing.T) {
	src := stubSource{}
	domains := make([]string, 300)
	for i := range domains {
		domains[i] = fmt.Sprintf("crawlee%04d.com", i)
		p := web.NewPage(domains[i], domains[i])
		p.AddRequest("http://cdn."+domains[i]+"/app.js", abp.TypeScript)
		src[domains[i]] = p
	}
	cfg := wayback.DefaultConfig(7)
	cfg.Faults = wayback.FaultConfig{OutageRate: 1, OutageDepth: 5, Seed: 7}
	a := wayback.New(src, domains, cfg)

	// One worker and a low threshold make the breaker walk deterministic:
	// each request fails 5 times in a row, far past the threshold.
	var metrics Metrics
	br := NewBreaker(BreakerConfig{FailureThreshold: 3, ProbeAfterSheds: 2}, &metrics)
	res, err := CrawlMonth(context.Background(), a, domains,
		time.Date(2015, 2, 1, 0, 0, 0, 0, time.UTC),
		Config{Workers: 1, Metrics: &metrics, Breaker: br})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[StatusError] != 0 {
		t.Fatalf("outage leaked into StatusError: %d", res.Counts[StatusError])
	}
	snap := metrics.Snapshot()
	if snap.BreakerOpens == 0 {
		t.Fatalf("breaker never opened during a full outage: %s", snap)
	}
	if snap.BreakerSheds == 0 {
		t.Fatalf("breaker shed no load during a full outage: %s", snap)
	}
}

// TestCrawlMonthPartialOnCancel verifies cancellation no longer discards
// completed work: the partial MonthResult comes back alongside ctx.Err().
func TestCrawlMonthPartialOnCancel(t *testing.T) {
	a, _, domains := buildWorld(300)
	ctx, cancel := context.WithCancel(context.Background())
	month := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	cfg := Config{Workers: 4}
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	res, err := CrawlMonth(ctx, a, domains, month, cfg)
	if err == nil {
		// The crawl may win the race; retry with immediate cancellation
		// to at least pin the contract below.
		ctx2, cancel2 := context.WithCancel(context.Background())
		cancel2()
		res, err = CrawlMonth(ctx2, a, domains, month, cfg)
	}
	if err == nil {
		t.Skip("crawl completed before cancellation on this machine")
	}
	if res == nil {
		t.Fatal("cancelled crawl must return the partial MonthResult, not nil")
	}
	if len(res.Results) != len(domains) {
		t.Fatalf("partial result has %d slots, want %d", len(res.Results), len(domains))
	}
	total := 0
	for _, c := range res.Counts {
		total += c
	}
	if total != len(domains) {
		t.Fatalf("partial counts sum to %d", total)
	}
	for _, r := range res.Results {
		if r.Status == StatusPending && r.Snapshot != nil {
			t.Fatal("pending result carries a snapshot")
		}
	}
}

// TestCrawlMonthResumeAfterCancel kills a faulty crawl mid-month via a
// sleeper hook, then resumes from the journal and checks the final result
// matches an uninterrupted run — without refetching journaled sites.
func TestCrawlMonthResumeAfterCancel(t *testing.T) {
	month := time.Date(2015, 3, 1, 0, 0, 0, 0, time.UTC)
	cleanArch, _, domains := buildFaultyWorld(300, 0.15)
	want, err := CrawlMonth(context.Background(), cleanArch, domains, month, Config{Workers: 6})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	// Interrupt: cancel after enough backoff pauses that a chunk of the
	// month is done but not all of it.
	arch, _, _ := buildFaultyWorld(300, 0.15)
	ctx, cancel := context.WithCancel(context.Background())
	var pauses atomic.Int64
	killer := func(c context.Context, d time.Duration) error {
		if pauses.Add(1) == 10 {
			cancel()
		}
		return NoSleep(c, d)
	}
	partial, err := CrawlMonth(ctx, arch, domains, month, Config{Workers: 6, Journal: j, Sleep: killer})
	j.Close()
	if err == nil {
		t.Fatal("interrupted crawl should have been cancelled (fault rate too low?)")
	}
	if partial == nil || partial.Counts[StatusPending] == 0 {
		t.Fatal("cancellation should leave pending sites")
	}
	completedFirst := len(domains) - partial.Counts[StatusPending]
	if completedFirst == 0 {
		t.Fatal("cancellation left no completed work to resume from")
	}

	// Resume: journaled sites must be restored, not refetched.
	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	arch2, _, _ := buildFaultyWorld(300, 0.15)
	var metrics Metrics
	got, err := CrawlMonth(context.Background(), arch2, domains, month,
		Config{Workers: 6, Journal: j2, Metrics: &metrics})
	if err != nil {
		t.Fatal(err)
	}
	if metrics.Snapshot().Resumed == 0 {
		t.Fatal("no site-months restored from the journal")
	}
	if int(metrics.Snapshot().Resumed) < completedFirst {
		t.Fatalf("resumed %d < %d journaled", metrics.Snapshot().Resumed, completedFirst)
	}
	for i := range want.Results {
		if got.Results[i].Status != want.Results[i].Status {
			t.Fatalf("%s: resumed %v != uninterrupted %v", domains[i],
				got.Results[i].Status, want.Results[i].Status)
		}
	}
}

// TestCrawlLivePartialOnCancel pins the live-crawl half of the contract.
func TestCrawlLivePartialOnCancel(t *testing.T) {
	_, src, domains := buildWorld(100)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := CrawlLive(ctx, src, domains, DefaultConfig())
	if err == nil {
		t.Fatal("cancelled live crawl must surface ctx.Err()")
	}
	if res == nil || len(res) != len(domains) {
		t.Fatal("cancelled live crawl must return the partial slice")
	}
	for _, r := range res {
		if !r.Crawled && r.Page != nil {
			t.Fatal("uncrawled result carries a page")
		}
	}
}
