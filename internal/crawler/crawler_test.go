package crawler

import (
	"context"
	"fmt"
	"testing"
	"time"

	"adwars/internal/abp"
	"adwars/internal/wayback"
	"adwars/internal/web"
)

type stubSource map[string]*web.Page

func (s stubSource) PageAt(domain string, t time.Time) (*web.Page, bool) {
	p, ok := s[domain]
	return p, ok
}

func (s stubSource) LivePage(domain string) (*web.Page, bool) {
	p, ok := s[domain]
	return p, ok
}

func buildWorld(n int) (*wayback.Archive, stubSource, []string) {
	src := stubSource{}
	domains := make([]string, n)
	for i := range domains {
		domains[i] = fmt.Sprintf("crawlee%04d.com", i)
		p := web.NewPage(domains[i], domains[i])
		p.AddRequest("http://cdn."+domains[i]+"/app.js", abp.TypeScript)
		p.AddRequest("http://cdn."+domains[i]+"/style.css", abp.TypeStylesheet)
		p.AddRequest("http://img."+domains[i]+"/hero.png", abp.TypeImage)
		src[domains[i]] = p
	}
	cfg := wayback.DefaultConfig(7)
	cfg.Robots, cfg.Admin, cfg.Undefined = 10, 2, 3
	return wayback.New(src, domains, cfg), src, domains
}

func TestCrawlMonth(t *testing.T) {
	a, _, domains := buildWorld(400)
	m := time.Date(2015, 2, 1, 0, 0, 0, 0, time.UTC)
	res, err := CrawlMonth(context.Background(), a, domains, m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != len(domains) {
		t.Fatalf("results = %d", len(res.Results))
	}
	total := 0
	for _, c := range res.Counts {
		total += c
	}
	if total != len(domains) {
		t.Fatalf("counts sum to %d", total)
	}
	if res.Counts[StatusExcluded] != 15 {
		t.Fatalf("excluded = %d, want 15", res.Counts[StatusExcluded])
	}
	if res.Counts[StatusOK] == 0 {
		t.Fatal("no successful crawls")
	}
	for i, r := range res.Results {
		if r.Domain != domains[i] {
			t.Fatal("result order must match input order")
		}
		if (r.Status == StatusOK) != (r.Snapshot != nil) {
			t.Fatalf("snapshot presence inconsistent for %s (%v)", r.Domain, r.Status)
		}
	}
}

func TestCrawlMonthDeterministic(t *testing.T) {
	a, _, domains := buildWorld(200)
	m := time.Date(2014, 9, 1, 0, 0, 0, 0, time.UTC)
	r1, err := CrawlMonth(context.Background(), a, domains, m, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := CrawlMonth(context.Background(), a, domains, m, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Results {
		if r1.Results[i].Status != r2.Results[i].Status {
			t.Fatalf("worker count changed status of %s", r1.Results[i].Domain)
		}
	}
}

func TestCrawlMonthCancellation(t *testing.T) {
	a, _, domains := buildWorld(300)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := CrawlMonth(ctx, a, domains, time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC), DefaultConfig())
	if err == nil {
		t.Fatal("cancelled crawl must return an error")
	}
}

func TestCrawlLive(t *testing.T) {
	_, src, domains := buildWorld(150)
	// Make a few domains unreachable.
	delete(src, domains[3])
	delete(src, domains[77])
	res, err := CrawlLive(context.Background(), src, domains, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	reachable := 0
	for _, r := range res {
		if r.Page != nil {
			reachable++
		}
	}
	if reachable != len(domains)-2 {
		t.Fatalf("reachable = %d, want %d", reachable, len(domains)-2)
	}
}

func TestCrawlLiveCancellation(t *testing.T) {
	_, src, domains := buildWorld(50)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CrawlLive(ctx, src, domains, DefaultConfig()); err == nil {
		t.Fatal("cancelled live crawl must return an error")
	}
}

func TestStatusString(t *testing.T) {
	names := map[Status]string{
		StatusOK: "ok", StatusExcluded: "excluded",
		StatusNotArchived: "not-archived", StatusOutdated: "outdated",
		StatusPartial: "partial", StatusError: "error",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d = %q, want %q", s, s.String(), want)
		}
	}
}

func TestMarkPartialsCutoff(t *testing.T) {
	// Hand-build a month result with one tiny HAR among big ones.
	mk := func(urls int) *wayback.Snapshot {
		p := web.NewPage("x.com", "x")
		for i := 0; i < urls; i++ {
			p.AddRequest(fmt.Sprintf("http://x.com/r%d.js", i), abp.TypeScript)
		}
		// Build HAR through the crawler path by fetching is overkill;
		// reuse Snapshot with a direct HAR.
		snap := &wayback.Snapshot{Ref: wayback.SnapshotRef{Domain: "x.com"}, Page: p}
		l := newHARFor(p, urls)
		snap.HAR = l
		return snap
	}
	m := &MonthResult{Results: []SiteResult{
		{Domain: "a.com", Status: StatusOK, Snapshot: mk(200)},
		{Domain: "b.com", Status: StatusOK, Snapshot: mk(200)},
		{Domain: "c.com", Status: StatusOK, Snapshot: mk(0)},
	}}
	markPartials(m)
	if m.Results[2].Status != StatusPartial {
		t.Fatalf("tiny HAR not marked partial: %v", m.Results[2].Status)
	}
	if m.Results[0].Status != StatusOK || m.Results[1].Status != StatusOK {
		t.Fatal("normal HARs must stay OK")
	}
}
