package crawler

import (
	"context"
	"sync"
)

// ForEach runs fn(i) for every i in [0, n) across a pool of workers
// goroutines. It is the shared fan-out primitive behind CrawlMonth,
// CrawlLive, and the experiment replay shards: indexes are fed in order,
// workers pull them as they free up, and fn writes its result into a
// caller-owned slot — so output order is the input order and a sequential
// merge over the results is deterministic regardless of scheduling.
//
// On context cancellation ForEach stops feeding new indexes, waits for
// in-flight fn calls to return, and reports ctx.Err(); fn is never called
// for unfed indexes, so callers can distinguish completed slots from
// untouched ones.
func ForEach(ctx context.Context, workers, n int, fn func(i int)) error {
	if workers <= 0 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	var err error
feed:
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			err = ctx.Err()
			break feed
		case jobs <- i:
		}
	}
	close(jobs)
	wg.Wait()
	return err
}
