package crawler

import (
	"time"

	"adwars/internal/har"
	"adwars/internal/web"
)

// newHARFor builds a HAR log covering a page's requests, for tests.
func newHARFor(p *web.Page, urls int) *har.Log {
	l := har.New("test")
	t0 := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	pid := l.AddPage(p.URL(), t0)
	for _, q := range p.Requests {
		l.AddEntry(pid, q.URL, q.Type, 200, "", t0)
	}
	return l
}
