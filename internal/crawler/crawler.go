// Package crawler drives the measurement crawls of §4: the parallel
// Wayback Machine crawl of monthly snapshots (Figure 4's pipeline:
// availability query → fetch → HAR/HTML storage → partial-snapshot
// filtering) and the live-web crawl of §4.3. Crawls run across a worker
// pool, honor context cancellation (returning the completed portion of the
// month, not discarding it), and survive a faulty archive: transient
// failures (rate limiting, timeouts, truncated bodies, outages) are
// retried with exponential backoff and jitter behind a shared circuit
// breaker, and a JSONL journal checkpoints completed site-months so an
// interrupted crawl resumes without refetching.
package crawler

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"adwars/internal/wayback"
	"adwars/internal/web"
)

// Status classifies one site-month crawl outcome.
type Status int

// Crawl outcomes. StatusPending marks sites a cancelled crawl never
// finished (it appears only in partial results). StatusPartial corresponds
// to HAR files discarded by the 10%-of-average-size rule; StatusExcluded
// to domains the archive never stores; StatusNotArchived and
// StatusOutdated to the availability API's failure modes. StatusError is
// reserved for permanent failures and exhausted retry budgets — transient
// archive failures are retried, not surfaced here.
const (
	StatusPending Status = iota
	StatusOK
	StatusExcluded
	StatusNotArchived
	StatusOutdated
	StatusPartial
	StatusError
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusPending:
		return "pending"
	case StatusOK:
		return "ok"
	case StatusExcluded:
		return "excluded"
	case StatusNotArchived:
		return "not-archived"
	case StatusOutdated:
		return "outdated"
	case StatusPartial:
		return "partial"
	default:
		return "error"
	}
}

// SiteResult is one domain's crawl outcome for one month.
type SiteResult struct {
	Domain   string
	Status   Status
	Snapshot *wayback.Snapshot // non-nil only when Status is StatusOK
	// Err records why a StatusError outcome failed permanently (or which
	// transient failure exhausted the retry budget).
	Err error
}

// MonthResult aggregates one month's crawl.
type MonthResult struct {
	Month   time.Time
	Results []SiteResult
	Counts  map[Status]int
}

// recount rebuilds the status histogram.
func (m *MonthResult) recount() {
	m.Counts = make(map[Status]int)
	for _, r := range m.Results {
		m.Counts[r.Status]++
	}
}

// Config controls crawl parallelism and resilience. The paper parallelizes
// with 10 independent browser instances; Workers plays that role.
type Config struct {
	Workers int
	// Metrics, when non-nil, accumulates crawl counters across calls.
	Metrics *Metrics
	// Retry controls per-request retry/backoff of transient archive
	// failures. Zero fields take DefaultRetryPolicy values.
	Retry RetryPolicy
	// Breaker, when non-nil, is the shared circuit breaker / adaptive
	// rate limiter (share one across the 60 monthly crawls); nil creates
	// a fresh one per crawl.
	Breaker *Breaker
	// Journal, when non-nil, checkpoints completed site-months and
	// restores previously journaled ones instead of refetching.
	Journal *Journal
	// Seed drives the deterministic backoff jitter.
	Seed int64
	// Sleep implements backoff waiting; nil means NoSleep (account the
	// backoff, don't wall-clock wait — right for the simulated archive).
	Sleep SleepFunc
}

// DefaultConfig mirrors the paper's 10 parallel crawlers.
func DefaultConfig() Config { return Config{Workers: 10} }

// withDefaults normalizes a config for one crawl.
func (cfg Config) withDefaults() Config {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	cfg.Retry = cfg.Retry.withDefaults()
	if cfg.Breaker == nil {
		cfg.Breaker = NewBreaker(DefaultBreakerConfig(), cfg.Metrics)
	}
	if cfg.Sleep == nil {
		cfg.Sleep = NoSleep
	}
	return cfg
}

// CrawlMonth crawls the monthly snapshot of every domain: availability
// query, fetch, then the partial-HAR filter (a snapshot whose HAR is
// smaller than 10% of the month's average HAR size is discarded as
// partial). Results keep the domain order of the input.
//
// On context cancellation the completed portion of the month is returned
// alongside ctx.Err(): unfinished sites carry StatusPending, and — when a
// Journal is configured — completed ones are already checkpointed, so a
// resumed crawl picks up where this one stopped. The partial-snapshot rule
// is only applied to complete months (its cutoff needs the whole month).
func CrawlMonth(ctx context.Context, a *wayback.Archive, domains []string, month time.Time, cfg Config) (*MonthResult, error) {
	cfg = cfg.withDefaults()
	started := time.Now()
	out := &MonthResult{Month: month, Results: make([]SiteResult, len(domains))}
	for i, d := range domains {
		out.Results[i] = SiteResult{Domain: d, Status: StatusPending}
	}
	var done map[string]SiteResult
	if cfg.Journal != nil {
		done = cfg.Journal.Completed(month)
	}
	c := &monthCrawler{a: a, month: month, cfg: cfg}

	var journalErr error
	var journalOnce sync.Once
	err := ForEach(ctx, cfg.Workers, len(domains), func(i int) {
		if r, ok := done[domains[i]]; ok {
			out.Results[i] = r
			if cfg.Metrics != nil {
				cfg.Metrics.Resumed.Add(1)
			}
			return
		}
		r, err := c.crawlOne(ctx, domains[i])
		if err != nil {
			return // cancelled mid-site: leave it pending
		}
		out.Results[i] = r
		if cfg.Journal != nil {
			if jerr := cfg.Journal.Record(month, r); jerr != nil {
				journalOnce.Do(func() { journalErr = jerr })
			}
		}
	})
	if err != nil {
		// Cancelled: hand back the completed portion instead of
		// discarding it. The month is incomplete, so the partial-HAR rule
		// cannot run yet.
		out.recount()
		return out, err
	}
	if journalErr != nil {
		return nil, journalErr
	}

	markPartials(out)
	out.recount()
	cfg.Metrics.observeMonth(out, time.Since(started))
	return out, nil
}

// monthCrawler carries one month's crawl state through the retry path.
type monthCrawler struct {
	a     *wayback.Archive
	month time.Time
	cfg   Config
}

// transientBody marks crawler-detected transient failures: a response body
// that fails to parse is the client-visible face of a truncated transfer,
// and retrying fetches the full body.
type transientBody struct{ err error }

func (e transientBody) Error() string { return "crawler: truncated response body: " + e.err.Error() }
func (e transientBody) Unwrap() error { return e.err }

// classify splits errors into transient (retriable) and permanent.
func classify(err error) (transient bool, kind wayback.FaultKind, retryAfter time.Duration) {
	var te *wayback.TransientError
	if errors.As(err, &te) {
		return true, te.Kind, te.RetryAfter
	}
	var tb transientBody
	if errors.As(err, &tb) {
		return true, wayback.FaultTruncated, 0
	}
	return false, 0, 0
}

// crawlOne runs the paper's Figure 4 pipeline for one site-month — the
// upfront exclusion check, an Availability JSON API query, the client-side
// six-month staleness rule, then the snapshot fetch — with each archive
// request retried through the breaker-gated backoff path. Unlike the bare
// pipeline, transient and permanent failures are distinguished: transients
// are retried (and by the fault model's consecutive-failure bound always
// resolve within the default budget), while permanent failures and
// exhausted budgets land in StatusError with the cause in Err. The
// returned error is non-nil only for context cancellation.
func (c *monthCrawler) crawlOne(ctx context.Context, domain string) (SiteResult, error) {
	if c.a.ExclusionOf(domain) != wayback.ExclNone {
		return SiteResult{Domain: domain, Status: StatusExcluded}, nil
	}
	var closest *wayback.ClosestSnapshot
	err := c.withRetry(ctx, domain, func(attempt int) error {
		body, err := c.a.QueryAvailabilityAttempt(domain, c.month, attempt)
		if err != nil {
			return err
		}
		cs, err := wayback.ParseAvailability(body)
		if err != nil {
			return transientBody{err}
		}
		closest = cs
		return nil
	})
	if err != nil {
		return c.failed(ctx, domain, err)
	}
	if closest == nil {
		// Empty JSON response: the page is not archived.
		return SiteResult{Domain: domain, Status: StatusNotArchived}, nil
	}
	ts, err := closest.Time()
	if err != nil {
		// Well-formed JSON carrying a malformed timestamp is an API
		// anomaly no retry fixes.
		return SiteResult{Domain: domain, Status: StatusError, Err: err}, nil
	}
	if !wayback.WithinSkew(c.month, ts) {
		// The closest snapshot is too far from the requested date.
		return SiteResult{Domain: domain, Status: StatusOutdated}, nil
	}
	var snap *wayback.Snapshot
	err = c.withRetry(ctx, domain, func(attempt int) error {
		s, err := c.a.FetchAttempt(c.a.RefFor(domain, ts), attempt)
		if err != nil {
			return err
		}
		snap = s
		return nil
	})
	if err != nil {
		return c.failed(ctx, domain, err)
	}
	return SiteResult{Domain: domain, Status: StatusOK, Snapshot: snap}, nil
}

// failed folds a withRetry error into a result, propagating only context
// cancellation as an error.
func (c *monthCrawler) failed(ctx context.Context, domain string, err error) (SiteResult, error) {
	if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
		return SiteResult{Domain: domain, Status: StatusPending}, err
	}
	return SiteResult{Domain: domain, Status: StatusError, Err: err}, nil
}

// withRetry runs one archive request through the resilience stack: the
// circuit breaker gate (shed requests wait without consuming the attempt
// budget), the adaptive rate-limit penalty, then fn itself; transient
// failures back off exponentially with deterministic jitter (honoring any
// Retry-After hint) up to the attempt budget.
func (c *monthCrawler) withRetry(ctx context.Context, domain string, fn func(attempt int) error) error {
	br := c.cfg.Breaker
	m := c.cfg.Metrics
	for attempt := 0; ; {
		if !br.Allow() {
			// Load shedding: the archive is down. Wait out the open
			// window; the site's own budget is untouched.
			if err := c.pause(ctx, c.cfg.Retry.BaseDelay); err != nil {
				return err
			}
			continue
		}
		if p := br.Penalty(); p > 0 {
			if err := c.pause(ctx, p); err != nil {
				return err
			}
		}
		err := fn(attempt)
		if err == nil {
			br.Success()
			return nil
		}
		transient, kind, retryAfter := classify(err)
		if !transient {
			// The archive answered; the failure is application-level,
			// so the breaker sees a healthy service.
			br.Success()
			return err
		}
		if m != nil {
			m.TransientFailures.Add(1)
		}
		br.Failure()
		if kind == wayback.FaultRateLimit {
			if m != nil {
				m.RateLimited.Add(1)
			}
			br.OnRateLimit(retryAfter)
		}
		attempt++
		if attempt >= c.cfg.Retry.MaxAttempts {
			if m != nil {
				m.RetriesExhausted.Add(1)
			}
			return fmt.Errorf("crawler: %s: %d attempts exhausted: %w", domain, attempt, err)
		}
		if m != nil {
			m.Retries.Add(1)
		}
		d := c.cfg.Retry.Delay(domain, attempt, c.cfg.Seed)
		if retryAfter > d {
			d = retryAfter
		}
		if err := c.pause(ctx, d); err != nil {
			return err
		}
	}
}

// pause waits via the configured sleeper and accounts the backoff time.
func (c *monthCrawler) pause(ctx context.Context, d time.Duration) error {
	if m := c.cfg.Metrics; m != nil {
		m.BackoffNanos.Add(int64(d))
	}
	return c.cfg.Sleep(ctx, d)
}

// markPartials applies the paper's partial-snapshot rule: discard HARs
// whose size is below 10% of the average fetched HAR size.
func markPartials(m *MonthResult) {
	total, n := 0, 0
	sizes := make([]int, len(m.Results))
	for i, r := range m.Results {
		if r.Status == StatusOK {
			sizes[i] = r.Snapshot.HAR.Size()
			total += sizes[i]
			n++
		}
	}
	if n == 0 {
		return
	}
	cutoff := total / n / 10
	for i, r := range m.Results {
		if r.Status == StatusOK && sizes[i] < cutoff {
			m.Results[i].Status = StatusPartial
			m.Results[i].Snapshot = nil
		}
	}
}

// LiveSource produces current pages for the live-web crawl; ok=false for
// unreachable sites.
type LiveSource interface {
	LivePage(domain string) (*web.Page, bool)
}

// LiveResult is one domain's live crawl outcome.
type LiveResult struct {
	Domain string
	Page   *web.Page // nil when unreachable
	// Crawled distinguishes visited-but-unreachable sites from sites a
	// cancelled crawl never reached.
	Crawled bool
}

// CrawlLive visits every domain on the live web (§4.3). Unreachable sites
// yield a nil Page; the caller counts reachable ones (the paper reports
// 99,396 of 100K). On cancellation the completed portion is returned
// alongside ctx.Err(), with unvisited sites carrying Crawled=false.
func CrawlLive(ctx context.Context, src LiveSource, domains []string, cfg Config) ([]LiveResult, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	out := make([]LiveResult, len(domains))
	for i, d := range domains {
		out[i] = LiveResult{Domain: d}
	}
	err := ForEach(ctx, cfg.Workers, len(domains), func(i int) {
		p, ok := src.LivePage(domains[i])
		if ok {
			out[i] = LiveResult{Domain: domains[i], Page: p, Crawled: true}
		} else {
			out[i] = LiveResult{Domain: domains[i], Crawled: true}
		}
	})
	cfg.Metrics.observeLive(out)
	return out, err
}
