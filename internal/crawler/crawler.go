// Package crawler drives the measurement crawls of §4: the parallel
// Wayback Machine crawl of monthly snapshots (Figure 4's pipeline:
// availability query → fetch → HAR/HTML storage → partial-snapshot
// filtering) and the live-web crawl of §4.3. Crawls run across a worker
// pool and honor context cancellation.
package crawler

import (
	"context"
	"sync"
	"time"

	"adwars/internal/wayback"
	"adwars/internal/web"
)

// Status classifies one site-month crawl outcome.
type Status int

// Crawl outcomes. StatusPartial corresponds to HAR files discarded by the
// 10%-of-average-size rule; StatusExcluded to domains the archive never
// stores; StatusNotArchived and StatusOutdated to the availability API's
// failure modes.
const (
	StatusOK Status = iota
	StatusExcluded
	StatusNotArchived
	StatusOutdated
	StatusPartial
	StatusError
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusExcluded:
		return "excluded"
	case StatusNotArchived:
		return "not-archived"
	case StatusOutdated:
		return "outdated"
	case StatusPartial:
		return "partial"
	default:
		return "error"
	}
}

// SiteResult is one domain's crawl outcome for one month.
type SiteResult struct {
	Domain   string
	Status   Status
	Snapshot *wayback.Snapshot // non-nil only when Status is StatusOK
}

// MonthResult aggregates one month's crawl.
type MonthResult struct {
	Month   time.Time
	Results []SiteResult
	Counts  map[Status]int
}

// Config controls crawl parallelism. The paper parallelizes with 10
// independent browser instances; Workers plays that role.
type Config struct {
	Workers int
	// Metrics, when non-nil, accumulates crawl counters across calls.
	Metrics *Metrics
}

// DefaultConfig mirrors the paper's 10 parallel crawlers.
func DefaultConfig() Config { return Config{Workers: 10} }

// CrawlMonth crawls the monthly snapshot of every domain: availability
// query, fetch, then the partial-HAR filter (a snapshot whose HAR is
// smaller than 10% of the month's average HAR size is discarded as
// partial). Results keep the domain order of the input.
func CrawlMonth(ctx context.Context, a *wayback.Archive, domains []string, month time.Time, cfg Config) (*MonthResult, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	started := time.Now()
	out := &MonthResult{Month: month, Results: make([]SiteResult, len(domains))}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out.Results[i] = crawlOne(a, domains[i], month)
			}
		}()
	}
	var err error
feed:
	for i := range domains {
		select {
		case <-ctx.Done():
			err = ctx.Err()
			break feed
		case jobs <- i:
		}
	}
	close(jobs)
	wg.Wait()
	if err != nil {
		return nil, err
	}

	markPartials(out)
	out.Counts = make(map[Status]int)
	for _, r := range out.Results {
		out.Counts[r.Status]++
	}
	cfg.Metrics.observeMonth(out, time.Since(started))
	return out, nil
}

// crawlOne runs the paper's Figure 4 pipeline for one site-month: the
// upfront exclusion check, an Availability JSON API query, the client-side
// six-month staleness rule, then the snapshot fetch.
func crawlOne(a *wayback.Archive, domain string, month time.Time) SiteResult {
	if a.ExclusionOf(domain) != wayback.ExclNone {
		return SiteResult{Domain: domain, Status: StatusExcluded}
	}
	body, err := a.QueryAvailability(domain, month)
	if err != nil {
		return SiteResult{Domain: domain, Status: StatusError}
	}
	closest, err := wayback.ParseAvailability(body)
	if err != nil {
		return SiteResult{Domain: domain, Status: StatusError}
	}
	if closest == nil {
		// Empty JSON response: the page is not archived.
		return SiteResult{Domain: domain, Status: StatusNotArchived}
	}
	ts, err := closest.Time()
	if err != nil {
		return SiteResult{Domain: domain, Status: StatusError}
	}
	if !wayback.WithinSkew(month, ts) {
		// The closest snapshot is too far from the requested date.
		return SiteResult{Domain: domain, Status: StatusOutdated}
	}
	snap, err := a.Fetch(a.RefFor(domain, ts))
	if err != nil {
		return SiteResult{Domain: domain, Status: StatusError}
	}
	return SiteResult{Domain: domain, Status: StatusOK, Snapshot: snap}
}

// markPartials applies the paper's partial-snapshot rule: discard HARs
// whose size is below 10% of the average fetched HAR size.
func markPartials(m *MonthResult) {
	total, n := 0, 0
	sizes := make([]int, len(m.Results))
	for i, r := range m.Results {
		if r.Status == StatusOK {
			sizes[i] = r.Snapshot.HAR.Size()
			total += sizes[i]
			n++
		}
	}
	if n == 0 {
		return
	}
	cutoff := total / n / 10
	for i, r := range m.Results {
		if r.Status == StatusOK && sizes[i] < cutoff {
			m.Results[i].Status = StatusPartial
			m.Results[i].Snapshot = nil
		}
	}
}

// LiveSource produces current pages for the live-web crawl; ok=false for
// unreachable sites.
type LiveSource interface {
	LivePage(domain string) (*web.Page, bool)
}

// LiveResult is one domain's live crawl outcome.
type LiveResult struct {
	Domain string
	Page   *web.Page // nil when unreachable
}

// CrawlLive visits every domain on the live web (§4.3). Unreachable sites
// yield a nil Page; the caller counts reachable ones (the paper reports
// 99,396 of 100K).
func CrawlLive(ctx context.Context, src LiveSource, domains []string, cfg Config) ([]LiveResult, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	out := make([]LiveResult, len(domains))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				p, ok := src.LivePage(domains[i])
				if ok {
					out[i] = LiveResult{Domain: domains[i], Page: p}
				} else {
					out[i] = LiveResult{Domain: domains[i]}
				}
			}
		}()
	}
	var err error
feed:
	for i := range domains {
		select {
		case <-ctx.Done():
			err = ctx.Err()
			break feed
		case jobs <- i:
		}
	}
	close(jobs)
	wg.Wait()
	if err != nil {
		return nil, err
	}
	return out, nil
}
