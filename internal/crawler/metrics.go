package crawler

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Metrics counts crawl activity across workers. All fields are updated
// atomically; a single Metrics value can be shared by concurrent crawls
// (e.g. the 60 monthly crawls of the retrospective study).
type Metrics struct {
	// PagesFetched counts successfully fetched snapshots / live pages.
	PagesFetched atomic.Int64
	// PagesMissing counts excluded/not-archived/outdated outcomes.
	PagesMissing atomic.Int64
	// PartialSnapshots counts snapshots discarded by the size rule.
	PartialSnapshots atomic.Int64
	// Errors counts permanent fetch failures (including exhausted retry
	// budgets).
	Errors atomic.Int64
	// HARBytes accumulates serialized HAR sizes of fetched snapshots.
	HARBytes atomic.Int64
	// BusyNanos accumulates worker time spent crawling.
	BusyNanos atomic.Int64

	// TransientFailures counts transient archive failures observed
	// (rate limiting, timeouts, truncated bodies, outages).
	TransientFailures atomic.Int64
	// Retries counts re-attempts after transient failures.
	Retries atomic.Int64
	// RateLimited counts 429-style responses among the transients.
	RateLimited atomic.Int64
	// RetriesExhausted counts requests whose attempt budget ran out —
	// the only way a transient failure becomes a StatusError.
	RetriesExhausted atomic.Int64
	// BreakerOpens counts circuit breaker open transitions.
	BreakerOpens atomic.Int64
	// BreakerSheds counts requests rejected at the open breaker gate.
	BreakerSheds atomic.Int64
	// BackoffNanos accumulates backoff/pacing time (accounted even under
	// the non-sleeping virtual sleeper).
	BackoffNanos atomic.Int64
	// Resumed counts site-months restored from the checkpoint journal
	// instead of refetched.
	Resumed atomic.Int64
}

// observeMonth folds one month's results into the metrics.
func (m *Metrics) observeMonth(res *MonthResult, took time.Duration) {
	if m == nil {
		return
	}
	for _, r := range res.Results {
		switch r.Status {
		case StatusPending:
			// Cancelled before completion: not an outcome.
		case StatusOK:
			m.PagesFetched.Add(1)
			m.HARBytes.Add(int64(r.Snapshot.HAR.Size()))
		case StatusPartial:
			m.PartialSnapshots.Add(1)
		case StatusError:
			m.Errors.Add(1)
		default:
			m.PagesMissing.Add(1)
		}
	}
	m.BusyNanos.Add(int64(took))
}

// observeLive folds live crawl results into the metrics.
func (m *Metrics) observeLive(res []LiveResult) {
	if m == nil {
		return
	}
	for _, r := range res {
		switch {
		case !r.Crawled:
			// Cancelled before the visit.
		case r.Page != nil:
			m.PagesFetched.Add(1)
		default:
			m.PagesMissing.Add(1)
		}
	}
}

// Snapshot returns a point-in-time copy of the counters.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		PagesFetched:      m.PagesFetched.Load(),
		PagesMissing:      m.PagesMissing.Load(),
		PartialSnapshots:  m.PartialSnapshots.Load(),
		Errors:            m.Errors.Load(),
		HARBytes:          m.HARBytes.Load(),
		Busy:              time.Duration(m.BusyNanos.Load()),
		TransientFailures: m.TransientFailures.Load(),
		Retries:           m.Retries.Load(),
		RateLimited:       m.RateLimited.Load(),
		RetriesExhausted:  m.RetriesExhausted.Load(),
		BreakerOpens:      m.BreakerOpens.Load(),
		BreakerSheds:      m.BreakerSheds.Load(),
		Backoff:           time.Duration(m.BackoffNanos.Load()),
		Resumed:           m.Resumed.Load(),
	}
}

// MetricsSnapshot is an immutable view of crawl counters.
type MetricsSnapshot struct {
	PagesFetched     int64
	PagesMissing     int64
	PartialSnapshots int64
	Errors           int64
	HARBytes         int64
	Busy             time.Duration

	TransientFailures int64
	Retries           int64
	RateLimited       int64
	RetriesExhausted  int64
	BreakerOpens      int64
	BreakerSheds      int64
	Backoff           time.Duration
	Resumed           int64
}

// String renders the counters for progress logs.
func (s MetricsSnapshot) String() string {
	out := fmt.Sprintf("fetched=%d missing=%d partial=%d errors=%d har=%dKiB busy=%s",
		s.PagesFetched, s.PagesMissing, s.PartialSnapshots, s.Errors,
		s.HARBytes/1024, s.Busy.Round(time.Millisecond))
	if s.TransientFailures > 0 || s.Retries > 0 || s.Resumed > 0 {
		out += fmt.Sprintf(" transient=%d retries=%d ratelimited=%d exhausted=%d breaker=%d(open)/%d(shed) backoff=%s resumed=%d",
			s.TransientFailures, s.Retries, s.RateLimited, s.RetriesExhausted,
			s.BreakerOpens, s.BreakerSheds, s.Backoff.Round(time.Millisecond), s.Resumed)
	}
	return out
}
