package crawler

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Metrics counts crawl activity across workers. All fields are updated
// atomically; a single Metrics value can be shared by concurrent crawls
// (e.g. the 60 monthly crawls of the retrospective study).
type Metrics struct {
	// PagesFetched counts successfully fetched snapshots / live pages.
	PagesFetched atomic.Int64
	// PagesMissing counts excluded/not-archived/outdated outcomes.
	PagesMissing atomic.Int64
	// PartialSnapshots counts snapshots discarded by the size rule.
	PartialSnapshots atomic.Int64
	// Errors counts fetch failures.
	Errors atomic.Int64
	// HARBytes accumulates serialized HAR sizes of fetched snapshots.
	HARBytes atomic.Int64
	// BusyNanos accumulates worker time spent crawling.
	BusyNanos atomic.Int64
}

// observeMonth folds one month's results into the metrics.
func (m *Metrics) observeMonth(res *MonthResult, took time.Duration) {
	if m == nil {
		return
	}
	for _, r := range res.Results {
		switch r.Status {
		case StatusOK:
			m.PagesFetched.Add(1)
			m.HARBytes.Add(int64(r.Snapshot.HAR.Size()))
		case StatusPartial:
			m.PartialSnapshots.Add(1)
		case StatusError:
			m.Errors.Add(1)
		default:
			m.PagesMissing.Add(1)
		}
	}
	m.BusyNanos.Add(int64(took))
}

// Snapshot returns a point-in-time copy of the counters.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		PagesFetched:     m.PagesFetched.Load(),
		PagesMissing:     m.PagesMissing.Load(),
		PartialSnapshots: m.PartialSnapshots.Load(),
		Errors:           m.Errors.Load(),
		HARBytes:         m.HARBytes.Load(),
		Busy:             time.Duration(m.BusyNanos.Load()),
	}
}

// MetricsSnapshot is an immutable view of crawl counters.
type MetricsSnapshot struct {
	PagesFetched     int64
	PagesMissing     int64
	PartialSnapshots int64
	Errors           int64
	HARBytes         int64
	Busy             time.Duration
}

// String renders the counters for progress logs.
func (s MetricsSnapshot) String() string {
	return fmt.Sprintf("fetched=%d missing=%d partial=%d errors=%d har=%dKiB busy=%s",
		s.PagesFetched, s.PagesMissing, s.PartialSnapshots, s.Errors,
		s.HARBytes/1024, s.Busy.Round(time.Millisecond))
}
