package crawler

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"adwars/internal/har"
	"adwars/internal/wayback"
	"adwars/internal/web"
)

// Journal is the crawl checkpoint: an append-only JSONL file holding one
// record per completed site-month. A crawl interrupted mid-month restarts
// from the journal instead of refetching — each OK record carries the full
// fetched artifacts (archived HTML, HAR, script bodies), i.e. exactly what
// a real crawl would have on disk after the fetch, so resumption needs no
// archive traffic for completed work.
//
// Records hold the raw per-site fetch outcome, before the month-level
// partial-snapshot rule (whose 10%-of-average cutoff needs the whole
// month); CrawlMonth re-applies that rule after restoring. Writes are
// flushed per record so a kill at any point loses at most the in-flight
// sites; a torn final line is tolerated on load. Safe for concurrent use.
type Journal struct {
	mu    sync.Mutex
	f     *os.File
	w     *bufio.Writer
	stamp string                           // world fingerprint (see Stamp)
	done  map[string]map[string]SiteResult // month key → domain → raw result
}

// OpenJournal opens (or creates) a journal file. With resume=true existing
// records are loaded and will be served to CrawlMonth; otherwise the file
// is truncated and the crawl starts clean.
func OpenJournal(path string, resume bool) (*Journal, error) {
	j := &Journal{done: map[string]map[string]SiteResult{}}
	if resume {
		if err := j.load(path); err != nil {
			return nil, err
		}
	}
	flags := os.O_CREATE | os.O_RDWR
	if resume {
		flags |= os.O_APPEND
	} else {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("crawler: open journal: %w", err)
	}
	j.f = f
	j.w = bufio.NewWriter(f)
	if resume {
		// A crash can leave a torn final line; start appends on a fresh
		// line so the next record stays parseable.
		if st, err := f.Stat(); err == nil && st.Size() > 0 {
			tail := make([]byte, 1)
			if _, err := f.ReadAt(tail, st.Size()-1); err == nil && tail[0] != '\n' {
				j.w.WriteByte('\n')
			}
		}
	}
	return j, nil
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	ferr := j.w.Flush()
	cerr := j.f.Close()
	j.f = nil
	if ferr != nil {
		return ferr
	}
	return cerr
}

// Len is the number of journaled site-months.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := 0
	for _, m := range j.done {
		n += len(m)
	}
	return n
}

// Completed returns the restored raw results for one month, by domain.
// The map is a snapshot copy: callers may read it freely while the journal
// keeps recording.
func (j *Journal) Completed(month time.Time) map[string]SiteResult {
	j.mu.Lock()
	defer j.mu.Unlock()
	m := j.done[journalMonthKey(month)]
	if m == nil {
		return nil
	}
	out := make(map[string]SiteResult, len(m))
	for d, r := range m {
		out[d] = r
	}
	return out
}

// Stamp binds the journal to a world fingerprint (seed, crawl size, …).
// A fresh journal records the fingerprint as its first line; resuming with
// a different one is refused — restored artifacts would come from a
// different world and silently corrupt the figures.
func (j *Journal) Stamp(fp string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.stamp != "" {
		if j.stamp != fp {
			return fmt.Errorf("crawler: journal belongs to a different world (%q, want %q); refusing to resume", j.stamp, fp)
		}
		return nil
	}
	if j.f == nil {
		return errors.New("crawler: journal closed")
	}
	line, err := json.Marshal(journalRecord{Stamp: fp})
	if err != nil {
		return err
	}
	if _, err := j.w.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("crawler: journal write: %w", err)
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("crawler: journal flush: %w", err)
	}
	j.stamp = fp
	return nil
}

// Record appends one completed site-month. Pending results (sites the
// cancelled crawl never finished) are not checkpointable and are skipped.
func (j *Journal) Record(month time.Time, r SiteResult) error {
	if r.Status == StatusPending {
		return nil
	}
	rec := journalRecord{
		Month:  journalMonthKey(month),
		Domain: r.Domain,
		Status: r.Status.String(),
	}
	if r.Err != nil {
		rec.Err = r.Err.Error()
	}
	if s := r.Snapshot; s != nil {
		harJSON, err := har.Marshal(s.HAR)
		if err != nil {
			return fmt.Errorf("crawler: journal %s: %w", r.Domain, err)
		}
		rec.Ref = &journalRef{
			Domain:    s.Ref.Domain,
			Timestamp: s.Ref.Timestamp,
			Partial:   s.Ref.Partial,
		}
		rec.HTML = s.HTML
		rec.HAR = harJSON
		if s.Page != nil {
			for _, sc := range s.Page.Scripts {
				rec.Scripts = append(rec.Scripts, journalScript{
					URL: sc.URL, Source: sc.Source, AntiAdblock: sc.AntiAdblock,
				})
			}
		}
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("crawler: journal %s: %w", r.Domain, err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("crawler: journal closed")
	}
	if _, err := j.w.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("crawler: journal write: %w", err)
	}
	// Flush per record: a killed crawl must find every completed site.
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("crawler: journal flush: %w", err)
	}
	j.index(rec)
	return nil
}

// load reads existing records; a missing file is an empty journal and a
// torn trailing line (crash mid-write) is ignored.
func (j *Journal) load(path string) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("crawler: load journal: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	for {
		line, err := r.ReadBytes('\n')
		if len(line) > 0 {
			var rec journalRecord
			if jerr := json.Unmarshal(line, &rec); jerr == nil {
				if rec.Stamp != "" {
					j.stamp = rec.Stamp
				} else {
					j.index(rec)
				}
			}
		}
		if err != nil {
			return nil
		}
	}
}

// index registers one record in the in-memory month→domain map.
func (j *Journal) index(rec journalRecord) {
	r, err := rec.restore()
	if err != nil {
		return
	}
	m := j.done[rec.Month]
	if m == nil {
		m = map[string]SiteResult{}
		j.done[rec.Month] = m
	}
	m[rec.Domain] = r
}

// journalRecord is the on-disk form of one site-month outcome (or, for
// the header line, the world fingerprint).
type journalRecord struct {
	Stamp   string          `json:"stamp,omitempty"`
	Month   string          `json:"month,omitempty"`
	Domain  string          `json:"domain,omitempty"`
	Status  string          `json:"status,omitempty"`
	Err     string          `json:"err,omitempty"`
	Ref     *journalRef     `json:"ref,omitempty"`
	HTML    string          `json:"html,omitempty"`
	HAR     json.RawMessage `json:"har,omitempty"`
	Scripts []journalScript `json:"scripts,omitempty"`
}

type journalRef struct {
	Domain    string    `json:"domain"`
	Timestamp time.Time `json:"timestamp"`
	Partial   bool      `json:"partial,omitempty"`
}

type journalScript struct {
	URL         string `json:"url,omitempty"`
	Source      string `json:"source"`
	AntiAdblock bool   `json:"antiAdblock,omitempty"`
}

// restore rebuilds the in-memory SiteResult, including the snapshot the
// downstream coverage analysis consumes (HTML for element hiding, HAR for
// HTTP rule matching, scripts for corpus construction).
func (rec journalRecord) restore() (SiteResult, error) {
	status, ok := statusByName[rec.Status]
	if !ok {
		return SiteResult{}, fmt.Errorf("crawler: journal: unknown status %q", rec.Status)
	}
	r := SiteResult{Domain: rec.Domain, Status: status}
	if rec.Err != "" {
		r.Err = errors.New(rec.Err)
	}
	if rec.Ref == nil {
		return r, nil
	}
	log, err := har.Unmarshal(rec.HAR)
	if err != nil {
		return SiteResult{}, fmt.Errorf("crawler: journal %s: %w", rec.Domain, err)
	}
	page := &web.Page{Domain: rec.Domain}
	for _, sc := range rec.Scripts {
		page.Scripts = append(page.Scripts, web.Script{
			URL: sc.URL, Source: sc.Source, AntiAdblock: sc.AntiAdblock,
		})
	}
	r.Snapshot = &wayback.Snapshot{
		Ref: wayback.SnapshotRef{
			Domain:    rec.Ref.Domain,
			Timestamp: rec.Ref.Timestamp,
			Partial:   rec.Ref.Partial,
		},
		HTML: rec.HTML,
		HAR:  log,
		Page: page,
	}
	return r, nil
}

// statusByName inverts Status.String for journal decoding.
var statusByName = map[string]Status{
	"pending":      StatusPending,
	"ok":           StatusOK,
	"excluded":     StatusExcluded,
	"not-archived": StatusNotArchived,
	"outdated":     StatusOutdated,
	"partial":      StatusPartial,
	"error":        StatusError,
}

// journalMonthKey renders a month as its journal key.
func journalMonthKey(t time.Time) string { return t.Format("2006-01") }
