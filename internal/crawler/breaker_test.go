package crawler

import (
	"testing"
	"time"
)

func TestBreakerOpenHalfOpenClose(t *testing.T) {
	var m Metrics
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, ProbeAfterSheds: 2}, &m)
	if b.State() != "closed" || !b.Allow() {
		t.Fatal("new breaker must be closed and admitting")
	}
	// Failures below the threshold keep it closed; a success resets the
	// streak.
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != "closed" {
		t.Fatal("success must reset the failure streak")
	}
	// Cross the threshold → open.
	b.Failure()
	if b.State() != "open" {
		t.Fatalf("state = %s, want open", b.State())
	}
	if m.BreakerOpens.Load() != 1 {
		t.Fatalf("opens = %d", m.BreakerOpens.Load())
	}
	// Open: sheds until ProbeAfterSheds, then admits one probe.
	if b.Allow() {
		t.Fatal("open breaker must shed")
	}
	if !b.Allow() {
		t.Fatal("second gate hit must admit the half-open probe")
	}
	if b.State() != "half-open" {
		t.Fatalf("state = %s, want half-open", b.State())
	}
	// While the probe is in flight, other callers are shed.
	if b.Allow() {
		t.Fatal("half-open must admit only one probe")
	}
	// Failed probe → open again.
	b.Failure()
	if b.State() != "open" {
		t.Fatalf("state = %s, want open after failed probe", b.State())
	}
	if m.BreakerOpens.Load() != 2 {
		t.Fatalf("opens = %d, want 2", m.BreakerOpens.Load())
	}
	// Next probe succeeds → closed, and the gate admits freely again.
	b.Allow()
	if !b.Allow() {
		t.Fatal("probe not admitted")
	}
	b.Success()
	if b.State() != "closed" {
		t.Fatalf("state = %s, want closed after successful probe", b.State())
	}
	for i := 0; i < 5; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker must admit")
		}
	}
	if m.BreakerSheds.Load() == 0 {
		t.Fatal("sheds not counted")
	}
}

func TestBreakerAdaptivePenalty(t *testing.T) {
	b := NewBreaker(BreakerConfig{PenaltyBase: 100 * time.Millisecond, PenaltyMax: time.Second}, nil)
	if b.Penalty() != 0 {
		t.Fatal("fresh breaker must not pace")
	}
	b.OnRateLimit(0)
	if b.Penalty() != 100*time.Millisecond {
		t.Fatalf("penalty = %v, want base", b.Penalty())
	}
	b.OnRateLimit(0)
	if b.Penalty() != 200*time.Millisecond {
		t.Fatalf("penalty = %v, want doubled", b.Penalty())
	}
	// A larger Retry-After hint wins.
	b.OnRateLimit(700 * time.Millisecond)
	if b.Penalty() != 700*time.Millisecond {
		t.Fatalf("penalty = %v, want hint", b.Penalty())
	}
	// The cap bites.
	b.OnRateLimit(0)
	b.OnRateLimit(0)
	if b.Penalty() != time.Second {
		t.Fatalf("penalty = %v, want cap", b.Penalty())
	}
	// Successes decay it back to zero.
	for i := 0; i < 20 && b.Penalty() > 0; i++ {
		b.Success()
	}
	if b.Penalty() != 0 {
		t.Fatalf("penalty = %v after decay, want 0", b.Penalty())
	}
}

func TestBreakerNilMetrics(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, ProbeAfterSheds: 1}, nil)
	b.Failure()
	b.Allow()
	b.Success() // must not panic without metrics
}
