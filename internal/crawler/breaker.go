package crawler

import (
	"sync"
	"time"
)

// BreakerConfig parameterizes the shared circuit breaker / adaptive rate
// limiter that sits between the crawl workers and the archive.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive transient failures open
	// the breaker (default 10).
	FailureThreshold int
	// ProbeAfterSheds is how many requests the open breaker sheds before
	// letting one probe through (half-open). Counting sheds rather than
	// wall-clock time keeps the breaker deterministic under the
	// accounting-only sleeper (default 50).
	ProbeAfterSheds int
	// PenaltyBase seeds the adaptive rate-limit penalty applied after a
	// 429-style response (default 100ms).
	PenaltyBase time.Duration
	// PenaltyMax caps the adaptive penalty (default 5s).
	PenaltyMax time.Duration
}

// DefaultBreakerConfig returns the standard thresholds.
func DefaultBreakerConfig() BreakerConfig {
	return BreakerConfig{
		FailureThreshold: 10,
		ProbeAfterSheds:  50,
		PenaltyBase:      100 * time.Millisecond,
		PenaltyMax:       5 * time.Second,
	}
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	d := DefaultBreakerConfig()
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = d.FailureThreshold
	}
	if c.ProbeAfterSheds <= 0 {
		c.ProbeAfterSheds = d.ProbeAfterSheds
	}
	if c.PenaltyBase <= 0 {
		c.PenaltyBase = d.PenaltyBase
	}
	if c.PenaltyMax <= 0 {
		c.PenaltyMax = d.PenaltyMax
	}
	return c
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// Breaker is a circuit breaker with an AIMD rate-limit penalty, shared by
// all workers of a crawl (and, in the retrospective study, across the 60
// monthly crawls). During an archive outage it sheds load instead of
// hammering: after FailureThreshold consecutive transient failures every
// request is rejected at the gate until a half-open probe succeeds.
//
// Shed requests do not consume the per-site retry budget — the worker
// waits and re-asks the gate — so outages delay the crawl but never turn
// sites into StatusError. Safe for concurrent use.
type Breaker struct {
	cfg     BreakerConfig
	metrics *Metrics

	mu      sync.Mutex
	state   breakerState
	fails   int           // consecutive transient failures while closed
	sheds   int           // rejections since the breaker opened
	probing bool          // a half-open probe is in flight
	penalty time.Duration // adaptive rate-limit penalty (AIMD)
}

// NewBreaker builds a breaker; metrics may be nil.
func NewBreaker(cfg BreakerConfig, m *Metrics) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), metrics: m}
}

// Allow reports whether a request may proceed. While open it sheds the
// caller (who should wait and retry the gate); every ProbeAfterSheds
// rejections it admits a single probe instead.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		b.sheds++
		if b.sheds >= b.cfg.ProbeAfterSheds {
			b.state = breakerHalfOpen
			b.probing = true
			return true
		}
		if b.metrics != nil {
			b.metrics.BreakerSheds.Add(1)
		}
		return false
	default: // half-open: one probe at a time
		if !b.probing {
			b.probing = true
			return true
		}
		if b.metrics != nil {
			b.metrics.BreakerSheds.Add(1)
		}
		return false
	}
}

// Success records a healthy archive response: it closes the breaker,
// resets the failure streak, and decays the rate-limit penalty.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	if b.state != breakerClosed {
		b.state = breakerClosed
		b.sheds = 0
		b.probing = false
	}
	if b.penalty > 0 {
		b.penalty /= 2
		if b.penalty < time.Millisecond {
			b.penalty = 0
		}
	}
}

// Failure records a transient archive failure. Enough consecutive failures
// open the breaker; a failed half-open probe re-opens it.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		b.fails++
		if b.fails >= b.cfg.FailureThreshold {
			b.open()
		}
	case breakerHalfOpen:
		b.open()
	case breakerOpen:
		// A straggler admitted before the breaker opened; nothing to do.
	}
}

// open transitions to the open state (caller holds the lock).
func (b *Breaker) open() {
	b.state = breakerOpen
	b.sheds = 0
	b.probing = false
	b.fails = 0
	if b.metrics != nil {
		b.metrics.BreakerOpens.Add(1)
	}
}

// OnRateLimit grows the adaptive penalty multiplicatively (at least to the
// archive's Retry-After hint); Success decays it. The penalty is the
// "adaptive rate limiter" half of the gate: it slows every worker down
// while the archive is telling us to back off.
func (b *Breaker) OnRateLimit(hint time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	p := b.penalty * 2
	if p == 0 {
		p = b.cfg.PenaltyBase
	}
	if hint > p {
		p = hint
	}
	if p > b.cfg.PenaltyMax {
		p = b.cfg.PenaltyMax
	}
	b.penalty = p
}

// Penalty returns the current adaptive pacing delay.
func (b *Breaker) Penalty() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.penalty
}

// State names the breaker state, for logs and tests.
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}
