package crawler

import (
	"context"
	"testing"
	"time"
)

func TestRetryPolicyDefaults(t *testing.T) {
	p := RetryPolicy{}.withDefaults()
	d := DefaultRetryPolicy()
	if p != d {
		t.Fatalf("withDefaults() = %+v, want %+v", p, d)
	}
	// Partial overrides survive.
	p = RetryPolicy{MaxAttempts: 3}.withDefaults()
	if p.MaxAttempts != 3 || p.BaseDelay != d.BaseDelay {
		t.Fatalf("partial override broken: %+v", p)
	}
}

func TestBackoffDeterministicUnderSeed(t *testing.T) {
	p := DefaultRetryPolicy()
	for retry := 1; retry <= 8; retry++ {
		d1 := p.Delay("example.com", retry, 42)
		d2 := p.Delay("example.com", retry, 42)
		if d1 != d2 {
			t.Fatalf("retry %d: %v != %v under same seed", retry, d1, d2)
		}
	}
	// Different seeds and different domains jitter differently somewhere
	// in the schedule.
	varies := func(other func(int) time.Duration) bool {
		for retry := 1; retry <= 8; retry++ {
			if p.Delay("example.com", retry, 42) != other(retry) {
				return true
			}
		}
		return false
	}
	if !varies(func(r int) time.Duration { return p.Delay("example.com", r, 43) }) {
		t.Error("seed does not influence jitter")
	}
	if !varies(func(r int) time.Duration { return p.Delay("other.com", r, 42) }) {
		t.Error("domain does not influence jitter")
	}
}

func TestBackoffScheduleShape(t *testing.T) {
	p := DefaultRetryPolicy()
	for retry := 1; retry <= 20; retry++ {
		d := p.Delay("example.com", retry, 1)
		lo := time.Duration(float64(p.BaseDelay) * (1 - p.Jitter/2))
		if d < lo {
			t.Fatalf("retry %d: delay %v below jitter floor %v", retry, d, lo)
		}
		if d > p.MaxDelay {
			t.Fatalf("retry %d: delay %v exceeds cap %v", retry, d, p.MaxDelay)
		}
	}
	// Exponential growth: the ceiling of retry n+1 exceeds retry n's
	// floor by the multiplier until the cap bites.
	d1 := p.Delay("example.com", 1, 1)
	d5 := p.Delay("example.com", 5, 1)
	if d5 <= d1 {
		t.Fatalf("no growth: retry1=%v retry5=%v", d1, d5)
	}
}

func TestSleepFuncs(t *testing.T) {
	ctx := context.Background()
	if err := NoSleep(ctx, time.Hour); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := RealSleep(ctx, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("RealSleep returned early")
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if err := NoSleep(cancelled, 0); err == nil {
		t.Fatal("NoSleep must observe cancellation")
	}
	if err := RealSleep(cancelled, time.Hour); err == nil {
		t.Fatal("RealSleep must observe cancellation")
	}
}
