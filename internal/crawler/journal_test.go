package crawler

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// crawlRaw crawls one month without a journal and returns the raw per-site
// results (pre-partial-rule), for comparison against restored records.
func journalTestMonth() time.Time {
	return time.Date(2015, 2, 1, 0, 0, 0, 0, time.UTC)
}

func TestJournalRoundTrip(t *testing.T) {
	a, _, domains := buildWorld(200)
	month := journalTestMonth()
	path := filepath.Join(t.TempDir(), "journal.jsonl")

	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	want, err := CrawlMonth(context.Background(), a, domains, month, Config{Workers: 4, Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != len(domains) {
		t.Fatalf("journal holds %d records, want %d", j2.Len(), len(domains))
	}
	done := j2.Completed(month)
	for i, w := range want.Results {
		r, ok := done[w.Domain]
		if !ok {
			t.Fatalf("%s missing from journal", w.Domain)
		}
		// The journal stores raw pre-partial statuses; every journaled
		// partial is OK-with-snapshot on disk.
		wantStatus := w.Status
		if wantStatus == StatusPartial {
			wantStatus = StatusOK
		}
		if r.Status != wantStatus {
			t.Fatalf("%s status %v, want %v", w.Domain, r.Status, wantStatus)
		}
		if wantStatus == StatusOK {
			if r.Snapshot == nil {
				t.Fatalf("%s restored without snapshot", w.Domain)
			}
			if w.Status == StatusOK {
				if r.Snapshot.HTML != w.Snapshot.HTML {
					t.Fatalf("%s HTML mismatch", w.Domain)
				}
				// HAR must round-trip byte-identically: the partial-HAR
				// cutoff depends on Size().
				if r.Snapshot.HAR.Size() != w.Snapshot.HAR.Size() {
					t.Fatalf("%s HAR size %d != %d", w.Domain, r.Snapshot.HAR.Size(), w.Snapshot.HAR.Size())
				}
			}
		}
		_ = i
	}
	if j2.Completed(month.AddDate(0, 1, 0)) != nil {
		t.Fatal("unknown month must have no completions")
	}
}

func TestJournalToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	month := journalTestMonth()
	for _, r := range []SiteResult{
		{Domain: "a.com", Status: StatusNotArchived},
		{Domain: "b.com", Status: StatusOutdated},
		{Domain: "c.com", Status: StatusError, Err: errors.New("boom")},
	} {
		if err := j.Record(month, r); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	// Simulate a crash mid-write: append half a record.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"month":"2015-02","domain":"d.com","sta`)
	f.Close()

	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	done := j2.Completed(month)
	if len(done) != 3 {
		t.Fatalf("restored %d records, want 3 (torn tail dropped)", len(done))
	}
	if done["c.com"].Err == nil || done["c.com"].Err.Error() != "boom" {
		t.Fatalf("error cause lost: %v", done["c.com"].Err)
	}
	// Appending after a torn-tail resume must land on a fresh line so a
	// later reload sees the new record too.
	if err := j2.Record(month, SiteResult{Domain: "e.com", Status: StatusExcluded}); err != nil {
		t.Fatal(err)
	}
	if j2.Completed(month)["e.com"].Status != StatusExcluded {
		t.Fatal("post-resume record not indexed")
	}
	j2.Close()
	j3, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if got := len(j3.Completed(month)); got != 4 {
		t.Fatalf("reload after torn-tail append restored %d records, want 4", got)
	}
}

func TestJournalStampRefusesForeignWorld(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Stamp("seed=42 topn=100"); err != nil {
		t.Fatal(err)
	}
	// Idempotent for the same world.
	if err := j.Stamp("seed=42 topn=100"); err != nil {
		t.Fatal(err)
	}
	j.Record(journalTestMonth(), SiteResult{Domain: "a.com", Status: StatusNotArchived})
	j.Close()

	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if err := j2.Stamp("seed=43 topn=100"); err == nil {
		t.Fatal("resume with a different world fingerprint must be refused")
	}
	if err := j2.Stamp("seed=42 topn=100"); err != nil {
		t.Fatalf("matching fingerprint refused: %v", err)
	}
	// The header line must not leak into the results.
	if j2.Len() != 1 || j2.Completed(journalTestMonth())["a.com"].Status != StatusNotArchived {
		t.Fatalf("records corrupted by stamp header: len=%d", j2.Len())
	}
}

func TestJournalFreshOpenTruncates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _ := OpenJournal(path, false)
	j.Record(journalTestMonth(), SiteResult{Domain: "a.com", Status: StatusNotArchived})
	j.Close()
	j2, err := OpenJournal(path, false) // resume=false: start clean
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 0 {
		t.Fatalf("non-resume open kept %d records", j2.Len())
	}
}

func TestJournalSkipsPending(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _ := OpenJournal(path, false)
	defer j.Close()
	if err := j.Record(journalTestMonth(), SiteResult{Domain: "a.com", Status: StatusPending}); err != nil {
		t.Fatal(err)
	}
	if j.Len() != 0 {
		t.Fatal("pending results must not be journaled")
	}
}
