package crawler

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"time"
)

// RetryPolicy controls per-request retry of transient archive failures:
// exponential backoff with deterministic jitter, capped per-domain by an
// attempt budget.
type RetryPolicy struct {
	// MaxAttempts is the total attempts per request, first try included
	// (default 8). It must exceed the archive's worst-case consecutive
	// failure count (wayback.FaultConfig.MaxFailuresPerRequest) for
	// transients to always resolve.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 250ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 30s).
	MaxDelay time.Duration
	// Multiplier grows the delay per retry (default 2).
	Multiplier float64
	// Jitter is the fraction of each delay that is randomized, in [0,1]
	// (default 0.5): the delay is scaled by [1-Jitter/2, 1+Jitter/2).
	Jitter float64
}

// DefaultRetryPolicy mirrors common crawl-hardening practice: 8 attempts,
// 250ms base, doubling, 30s cap, 50% jitter.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 8,
		BaseDelay:   250 * time.Millisecond,
		MaxDelay:    30 * time.Second,
		Multiplier:  2,
		Jitter:      0.5,
	}
}

// withDefaults fills unset knobs so a partially-specified policy works.
func (p RetryPolicy) withDefaults() RetryPolicy {
	d := DefaultRetryPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = d.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = d.MaxDelay
	}
	if p.Multiplier <= 1 {
		p.Multiplier = d.Multiplier
	}
	if p.Jitter <= 0 || p.Jitter > 1 {
		p.Jitter = d.Jitter
	}
	return p
}

// Delay returns the backoff before retry number `retry` (1-based: the wait
// after the retry-th failure) of a request for domain. The jitter is a
// deterministic hash of (domain, retry, seed), so a re-run reproduces the
// exact backoff schedule — the property the checkpoint-resume equivalence
// tests rely on.
func (p RetryPolicy) Delay(domain string, retry int, seed int64) time.Duration {
	if retry < 1 {
		retry = 1
	}
	d := float64(p.BaseDelay) * math.Pow(p.Multiplier, float64(retry-1))
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	d *= 1 - p.Jitter/2 + p.Jitter*jitterFloat(domain, retry, seed)
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	return time.Duration(d)
}

// jitterFloat maps (domain, retry, seed) to [0,1) deterministically.
func jitterFloat(domain string, retry int, seed int64) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "backoff|%s|%d|%d", domain, retry, seed)
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// SleepFunc pauses between retries, returning ctx.Err() early on
// cancellation.
type SleepFunc func(ctx context.Context, d time.Duration) error

// RealSleep waits on the wall clock; use it when pacing a real remote
// archive.
func RealSleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// NoSleep is the default SleepFunc: it observes cancellation but does not
// wait. Against the in-memory simulated archive backoff exists to be
// measured (Metrics.Backoff), not to pace a real service, so crawls stay
// fast while exercising the exact retry schedule.
func NoSleep(ctx context.Context, d time.Duration) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}
