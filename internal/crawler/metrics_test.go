package crawler

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestMetricsAccumulate(t *testing.T) {
	a, _, domains := buildWorld(300)
	var m Metrics
	cfg := Config{Workers: 4, Metrics: &m}
	months := []time.Time{
		time.Date(2014, 3, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2015, 3, 1, 0, 0, 0, 0, time.UTC),
	}
	total := 0
	for _, month := range months {
		res, err := CrawlMonth(context.Background(), a, domains, month, cfg)
		if err != nil {
			t.Fatal(err)
		}
		total += res.Counts[StatusOK]
	}
	snap := m.Snapshot()
	if snap.PagesFetched != int64(total) {
		t.Fatalf("fetched = %d, want %d", snap.PagesFetched, total)
	}
	if snap.PagesMissing == 0 {
		t.Error("missing counter empty")
	}
	if snap.HARBytes == 0 {
		t.Error("HAR bytes not accumulated")
	}
	if snap.Busy <= 0 {
		t.Error("busy time not tracked")
	}
	if !strings.Contains(snap.String(), "fetched=") {
		t.Error("snapshot string malformed")
	}
}

func TestMetricsNilSafe(t *testing.T) {
	a, _, domains := buildWorld(50)
	// No metrics configured: must not panic.
	if _, err := CrawlMonth(context.Background(), a, domains,
		time.Date(2014, 1, 1, 0, 0, 0, 0, time.UTC), Config{Workers: 2}); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsConcurrentCrawls(t *testing.T) {
	a, _, domains := buildWorld(200)
	var m Metrics
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			month := time.Date(2013+i, 5, 1, 0, 0, 0, 0, time.UTC)
			_, err := CrawlMonth(context.Background(), a, domains, month,
				Config{Workers: 3, Metrics: &m})
			if err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	snap := m.Snapshot()
	if snap.PagesFetched+snap.PagesMissing+snap.PartialSnapshots+snap.Errors != int64(4*len(domains)) {
		t.Fatalf("counters lost updates: %+v", snap)
	}
}
