package wayback

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// faultyArchive builds an archive with fault injection enabled.
func faultyArchive(n int, fc FaultConfig) (*Archive, []string) {
	domains := make([]string, n)
	src := stubSource{}
	for i := range domains {
		domains[i] = fmt.Sprintf("site%04d.com", i)
		src[domains[i]] = testPage(domains[i])
	}
	cfg := DefaultConfig(42)
	cfg.Robots, cfg.Admin, cfg.Undefined = 0, 0, 0
	cfg.Faults = fc
	return New(src, domains, cfg), domains
}

func TestFaultScheduleDeterministic(t *testing.T) {
	fc := DefaultFaultConfig(0.3, 9)
	f1 := NewFaultInjector(fc)
	f2 := NewFaultInjector(fc)
	for d := 0; d < 50; d++ {
		domain := fmt.Sprintf("d%02d.com", d)
		for attempt := 0; attempt < 10; attempt++ {
			e1 := f1.Check("avail", domain, 100, attempt)
			e2 := f2.Check("avail", domain, 100, attempt)
			if (e1 == nil) != (e2 == nil) {
				t.Fatalf("%s attempt %d: schedules diverge", domain, attempt)
			}
			if e1 != nil && e1.Error() != e2.Error() {
				t.Fatalf("%s attempt %d: %q vs %q", domain, attempt, e1, e2)
			}
		}
	}
}

func TestFaultConsecutiveBound(t *testing.T) {
	fc := DefaultFaultConfig(0.9, 3) // hostile rate to stress the bound
	f := NewFaultInjector(fc)
	bound := fc.MaxFailuresPerRequest()
	if bound != fc.MaxConsecutive+fc.OutageDepth {
		t.Fatalf("bound = %d", bound)
	}
	for d := 0; d < 200; d++ {
		domain := fmt.Sprintf("d%03d.com", d)
		for epoch := int64(1); epoch < 20; epoch++ {
			if err := f.Check("fetch", domain, epoch, bound); err != nil {
				t.Fatalf("attempt %d of %s/%d still fails: %v", bound, domain, epoch, err)
			}
		}
	}
}

func TestFaultMarginalRate(t *testing.T) {
	fc := FaultConfig{Rate: 0.2, Seed: 5} // no outages: isolate the per-request rate
	f := NewFaultInjector(fc)
	fails := 0
	const n = 5000
	for d := 0; d < n; d++ {
		if f.Check("avail", fmt.Sprintf("d%04d.com", d), 7, 0) != nil {
			fails++
		}
	}
	got := float64(fails) / n
	if got < 0.15 || got > 0.25 {
		t.Fatalf("first-attempt failure rate = %.3f, want ≈0.2", got)
	}
}

func TestFaultOutageAffectsAllRequests(t *testing.T) {
	fc := FaultConfig{OutageRate: 1, OutageDepth: 3, Seed: 1}
	f := NewFaultInjector(fc)
	for d := 0; d < 20; d++ {
		domain := fmt.Sprintf("d%02d.com", d)
		for attempt := 0; attempt < 3; attempt++ {
			err := f.Check("avail", domain, 42, attempt)
			var te *TransientError
			if !errors.As(err, &te) || te.Kind != FaultOutage {
				t.Fatalf("attempt %d of %s: want outage, got %v", attempt, domain, err)
			}
		}
		if err := f.Check("avail", domain, 42, 3); err != nil {
			t.Fatalf("post-outage attempt of %s fails: %v", domain, err)
		}
	}
	if f.InjectedCounts()[FaultOutage] != 60 {
		t.Fatalf("outage count = %d", f.InjectedCounts()[FaultOutage])
	}
}

func TestFaultTruncatedAvailabilityJSON(t *testing.T) {
	a, domains := faultyArchive(500, FaultConfig{Rate: 0.5, MaxConsecutive: 2, Seed: 11})
	m := time.Date(2014, 6, 1, 0, 0, 0, 0, time.UTC)
	sawTruncated := false
	for _, d := range domains {
		for attempt := 0; attempt < 3; attempt++ {
			body, err := a.QueryAvailabilityAttempt(d, m, attempt)
			if err != nil {
				continue // typed transient fault; other tests cover it
			}
			if _, perr := ParseAvailability(body); perr != nil {
				sawTruncated = true
				// Retrying past the bound must yield a parseable body.
				body, err := a.QueryAvailabilityAttempt(d, m, 2)
				if err != nil {
					t.Fatalf("%s attempt 2: %v", d, err)
				}
				if _, perr := ParseAvailability(body); perr != nil {
					t.Fatalf("%s: body still corrupt past the fault bound", d)
				}
			}
		}
		if sawTruncated {
			break
		}
	}
	if !sawTruncated {
		t.Fatal("no truncated availability body injected in 500 domains")
	}
}

func TestFaultRetryAfterOnRateLimit(t *testing.T) {
	f := NewFaultInjector(FaultConfig{Rate: 0.9, MaxConsecutive: 4, RetryAfter: time.Second, Seed: 2})
	found := false
	for d := 0; d < 200 && !found; d++ {
		err := f.Check("fetch", fmt.Sprintf("d%03d.com", d), 3, 0)
		var te *TransientError
		if errors.As(err, &te) && te.Kind == FaultRateLimit {
			if te.RetryAfter <= 0 {
				t.Fatal("rate-limit fault carries no Retry-After hint")
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no rate-limit fault injected")
	}
}

func TestIsTransient(t *testing.T) {
	if !IsTransient(&TransientError{Kind: FaultTimeout}) {
		t.Fatal("TransientError must be transient")
	}
	if !IsTransient(fmt.Errorf("wrapped: %w", &TransientError{Kind: FaultOutage})) {
		t.Fatal("wrapped TransientError must be transient")
	}
	if IsTransient(errors.New("no source content")) {
		t.Fatal("plain error must be permanent")
	}
	if IsTransient(nil) {
		t.Fatal("nil must not be transient")
	}
}

func TestFaultKindStrings(t *testing.T) {
	want := map[FaultKind]string{
		FaultRateLimit: "rate-limit", FaultTimeout: "timeout",
		FaultTruncated: "truncated", FaultOutage: "outage",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d = %q, want %q", k, k.String(), s)
		}
	}
}

func TestNilInjectorNeverFaults(t *testing.T) {
	var f *FaultInjector
	if err := f.Check("avail", "x.com", 1, 0); err != nil {
		t.Fatal("nil injector must not fault")
	}
	if f.InjectedTotal() != 0 {
		t.Fatal("nil injector counts")
	}
	if NewFaultInjector(FaultConfig{}) != nil {
		t.Fatal("disabled config must build a nil injector")
	}
}
