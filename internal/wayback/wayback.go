// Package wayback simulates the Internet Archive's Wayback Machine: the
// Availability JSON API semantics (closest-snapshot lookup, empty responses
// for unarchived pages), per-domain exclusions (robots.txt, administrator
// request, undefined reasons), archival defects (outdated, missing, and
// partial snapshots — Figure 5), and archive URL rewriting including
// escape URLs. See DESIGN.md's substitution table: the measurement pipeline
// exercises the same code paths it would against the real archive.
package wayback

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"time"

	"adwars/internal/abp"
	"adwars/internal/har"
	"adwars/internal/stats"
	"adwars/internal/web"
)

// SiteSource produces the live page of a domain at a point in time; the
// world simulator implements it.
type SiteSource interface {
	// PageAt returns the domain's homepage as it stood at time t, or
	// ok=false when the site is unreachable.
	PageAt(domain string, t time.Time) (page *web.Page, ok bool)
}

// Exclusion is why a domain is permanently unarchived.
type Exclusion int

// Exclusion reasons, with the paper's top-5K counts in comments.
const (
	ExclNone      Exclusion = iota
	ExclRobots              // robots.txt policy (153 domains)
	ExclAdmin               // administrator request (26 domains)
	ExclUndefined           // undefined reasons (54 domains)
)

// String names the exclusion reason.
func (e Exclusion) String() string {
	switch e {
	case ExclRobots:
		return "robots.txt"
	case ExclAdmin:
		return "admin-request"
	case ExclUndefined:
		return "undefined"
	default:
		return "none"
	}
}

// Availability is the outcome of an availability query.
type Availability int

// Availability outcomes. NotArchived covers the empty-JSON responses the
// paper traces to HTTP 3XX redirects; Outdated means the closest snapshot
// is more than six months from the requested date.
const (
	Archived Availability = iota
	NotArchived
	Outdated
	Excluded
)

// String names the availability outcome.
func (a Availability) String() string {
	switch a {
	case Archived:
		return "archived"
	case NotArchived:
		return "not-archived"
	case Outdated:
		return "outdated"
	default:
		return "excluded"
	}
}

// DefectRates are the linear-in-time monthly defect probabilities, endpoint
// calibrated to Figure 5 (fractions of the ~4767 crawlable top-5K domains).
type DefectRates struct {
	NotArchivedStart, NotArchivedEnd float64
	OutdatedStart, OutdatedEnd       float64
	PartialStart, PartialEnd         float64
}

// DefaultDefectRates calibrates to Figure 5: outdated 1239→532,
// not archived 262→374, partial 23→78, over 4767 domains.
func DefaultDefectRates() DefectRates {
	const n = 4767.0
	return DefectRates{
		NotArchivedStart: 262 / n, NotArchivedEnd: 374 / n,
		OutdatedStart: 1239 / n, OutdatedEnd: 532 / n,
		PartialStart: 23 / n, PartialEnd: 78 / n,
	}
}

// Config parameterizes an Archive.
type Config struct {
	// Start and End bound the archival window (month granularity).
	Start, End time.Time
	// Robots, Admin, Undefined are how many domains each exclusion class
	// gets (the paper: 153, 26, 54).
	Robots, Admin, Undefined int
	// Rates are the monthly defect probabilities.
	Rates DefectRates
	// EscapeURLFraction is the fraction of resource URLs archived as
	// Wayback escape URLs (stored without the archive prefix).
	EscapeURLFraction float64
	// Faults configures transient failure injection (rate limiting,
	// timeouts, truncated bodies, outages). The zero value disables it.
	Faults FaultConfig
	// Seed drives every deterministic choice.
	Seed int64
}

// DefaultConfig covers the paper's window, Aug 2011 – Jul 2016.
func DefaultConfig(seed int64) Config {
	return Config{
		Start:  time.Date(2011, 8, 1, 0, 0, 0, 0, time.UTC),
		End:    time.Date(2016, 7, 1, 0, 0, 0, 0, time.UTC),
		Robots: 153, Admin: 26, Undefined: 54,
		Rates:             DefaultDefectRates(),
		EscapeURLFraction: 0.03,
		Seed:              seed,
	}
}

// Archive simulates the Wayback Machine over a fixed domain population.
type Archive struct {
	cfg        Config
	src        SiteSource
	exclusions map[string]Exclusion
	faults     *FaultInjector // nil when fault injection is disabled
}

// New builds an archive over the given domains. Exclusions are assigned
// deterministically from the seed.
func New(src SiteSource, domains []string, cfg Config) *Archive {
	a := &Archive{cfg: cfg, src: src, exclusions: make(map[string]Exclusion)}
	if cfg.Faults.enabled() {
		fc := cfg.Faults
		if fc.Seed == 0 {
			fc.Seed = cfg.Seed
		}
		a.faults = NewFaultInjector(fc)
	}
	// Assign exclusions by hash rank: the domains with the smallest
	// exclusion-hash get excluded, split across the three reasons.
	type ranked struct {
		d string
		h uint64
	}
	rs := make([]ranked, 0, len(domains))
	for _, d := range domains {
		rs = append(rs, ranked{d, hash64("excl", d, 0, cfg.Seed)})
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].h < rs[j].h })
	k := cfg.Robots + cfg.Admin + cfg.Undefined
	if k > len(rs) {
		k = len(rs)
	}
	for i := 0; i < k; i++ {
		switch {
		case i < cfg.Robots:
			a.exclusions[rs[i].d] = ExclRobots
		case i < cfg.Robots+cfg.Admin:
			a.exclusions[rs[i].d] = ExclAdmin
		default:
			a.exclusions[rs[i].d] = ExclUndefined
		}
	}
	return a
}

// ExclusionOf returns why a domain is permanently unarchived (ExclNone when
// it is archived normally).
func (a *Archive) ExclusionOf(domain string) Exclusion {
	return a.exclusions[domain]
}

// ExcludedCount returns the number of permanently excluded domains by
// reason.
func (a *Archive) ExcludedCount() (robots, admin, undefined int) {
	for _, e := range a.exclusions {
		switch e {
		case ExclRobots:
			robots++
		case ExclAdmin:
			admin++
		case ExclUndefined:
			undefined++
		}
	}
	return
}

// SnapshotRef identifies one archived snapshot.
type SnapshotRef struct {
	// Domain is the archived site.
	Domain string
	// Timestamp is the snapshot capture time.
	Timestamp time.Time
	// Partial marks snapshots cut short by anti-bot error pages.
	Partial bool
}

// monthFrac positions t within [Start, End] as 0..1.
func (a *Archive) monthFrac(t time.Time) float64 {
	total := a.cfg.End.Sub(a.cfg.Start)
	if total <= 0 {
		return 0
	}
	f := float64(t.Sub(a.cfg.Start)) / float64(total)
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// Available implements the Wayback Availability JSON API for the monthly
// snapshot closest to the requested date. It returns the snapshot reference
// and Archived, or the reason no usable snapshot exists.
func (a *Archive) Available(domain string, want time.Time) (SnapshotRef, Availability) {
	if a.exclusions[domain] != ExclNone {
		return SnapshotRef{}, Excluded
	}
	frac := a.monthFrac(want)
	u := hashFloat("defect", domain, monthKey(want), a.cfg.Seed)
	r := a.cfg.Rates
	pNA := stats.Lerp(r.NotArchivedStart, r.NotArchivedEnd, frac)
	pOut := stats.Lerp(r.OutdatedStart, r.OutdatedEnd, frac)
	pPart := stats.Lerp(r.PartialStart, r.PartialEnd, frac)
	switch {
	case u < pNA:
		// Empty JSON response (e.g. the domain 3XX-redirects).
		return SnapshotRef{}, NotArchived
	case u < pNA+pOut:
		// Closest snapshot is > 6 months away; the crawler discards it.
		return SnapshotRef{}, Outdated
	}
	// Capture day varies deterministically within the month.
	day := 1 + int(hash64("day", domain, monthKey(want), a.cfg.Seed)%28)
	ts := time.Date(want.Year(), want.Month(), day, 0, 0, 0, 0, time.UTC)
	return SnapshotRef{
		Domain:    domain,
		Timestamp: ts,
		Partial:   u < pNA+pOut+pPart,
	}, Archived
}

// Snapshot is the fetched archive content for one site-month: the page
// HTML as archived and the HAR log of the crawl, with archive-rewritten
// URLs.
type Snapshot struct {
	Ref  SnapshotRef
	HTML string
	HAR  *har.Log
	// Page is the structured page (available because the simulator owns
	// the source; the measurement code uses only HTML and HAR, mirroring
	// the paper, but §5's corpus construction reads script bodies).
	Page *web.Page
}

// Fetch retrieves an archived snapshot (attempt 0 of FetchAttempt).
// Partial snapshots (anti-bot error pages) come back with a truncated HAR
// whose size falls under the 10% cutoff the crawler applies.
func (a *Archive) Fetch(ref SnapshotRef) (*Snapshot, error) {
	return a.FetchAttempt(ref, 0)
}

// FetchAttempt retrieves an archived snapshot, exposing the zero-based
// retry index to the fault injector. Injected failures — including HAR
// bodies truncated mid-transfer, which the client detects as unparseable —
// surface as *TransientError; retrying with increasing attempt numbers is
// guaranteed to reach the real snapshot within the injector's consecutive-
// failure bound.
func (a *Archive) FetchAttempt(ref SnapshotRef, attempt int) (*Snapshot, error) {
	if err := a.faults.Check("fetch", ref.Domain, monthKey(ref.Timestamp), attempt); err != nil {
		return nil, err
	}
	return a.fetch(ref)
}

// Faults exposes the archive's fault injector (nil when disabled).
func (a *Archive) Faults() *FaultInjector { return a.faults }

func (a *Archive) fetch(ref SnapshotRef) (*Snapshot, error) {
	page, ok := a.src.PageAt(ref.Domain, ref.Timestamp)
	if !ok {
		return nil, fmt.Errorf("wayback: no source content for %s at %s",
			ref.Domain, ref.Timestamp.Format("2006-01-02"))
	}
	snap := &Snapshot{Ref: ref, Page: page}

	log := har.New("adwars-wayback-crawler")
	pageURL := RewriteURL(ref.Timestamp, page.URL())
	pid := log.AddPage(pageURL, ref.Timestamp)

	var entries []web.Request
	if ref.Partial {
		// Anti-bot error page: nothing loaded, so the HAR lands far
		// below the 10%-of-average size cutoff the crawler applies.
		snap.HTML = "<html><body><h1>403 Forbidden</h1>Automated access denied.</body></html>"
	} else {
		snap.HTML = web.RenderHTML(page)
		log.AddEntry(pid, pageURL, abp.TypeDocument, 200, "", ref.Timestamp)
		entries = page.Requests
	}
	for i, q := range entries {
		u := q.URL
		if !a.isEscapeURL(ref.Domain, i) {
			u = RewriteURL(ref.Timestamp, u)
		}
		body := ""
		if q.Type == abp.TypeScript && !ref.Partial {
			body = scriptBodyFor(page, q.URL)
		}
		log.AddEntry(pid, u, q.Type, 200, body, ref.Timestamp)
	}
	snap.HAR = log
	return snap, nil
}

// scriptBodyFor finds the source of the script served at url.
func scriptBodyFor(p *web.Page, url string) string {
	for _, s := range p.Scripts {
		if s.URL == url {
			return s.Source
		}
	}
	return ""
}

func (a *Archive) isEscapeURL(domain string, i int) bool {
	return hashFloat("escape", domain, int64(i), a.cfg.Seed) < a.cfg.EscapeURLFraction
}

// archivePrefix is the rewritten-URL prefix the real Wayback Machine
// prepends.
const archivePrefix = "http://web.archive.org/web/"

// RewriteURL prepends the archive reference to a live URL, as the Wayback
// Machine does when serving archived pages.
func RewriteURL(ts time.Time, raw string) string {
	return archivePrefix + ts.Format("20060102150405") + "/" + raw
}

// TruncateURL removes the Wayback Machine reference from a rewritten URL,
// recovering the original live URL. Escape URLs (not rewritten) and live
// URLs pass through unchanged — the behaviour §4.2 describes.
func TruncateURL(u string) string {
	if !strings.HasPrefix(u, archivePrefix) {
		return u
	}
	rest := u[len(archivePrefix):]
	// Skip the 14-digit timestamp (possibly suffixed with flags like
	// "im_") up to the following '/'.
	slash := strings.IndexByte(rest, '/')
	if slash < 0 {
		return u
	}
	return rest[slash+1:]
}

// monthKey collapses a time to a per-month integer for hashing.
func monthKey(t time.Time) int64 {
	return int64(t.Year())*12 + int64(t.Month())
}

// hash64 is a deterministic 64-bit hash of the salt/domain/epoch/seed
// tuple.
func hash64(salt, domain string, epoch, seed int64) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d|%d", salt, domain, epoch, seed)
	return h.Sum64()
}

// hashFloat maps hash64 to [0,1).
func hashFloat(salt, domain string, epoch, seed int64) float64 {
	return float64(hash64(salt, domain, epoch, seed)>>11) / float64(1<<53)
}
