package wayback

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"adwars/internal/stats"
)

// This file models the Wayback Availability JSON API the paper's crawler
// queries (§4.1): a request for (url, timestamp) returns the closest
// archived snapshot, or an empty archived_snapshots object when the page
// is not archived (e.g. for HTTP 3XX redirects). The crawler applies the
// six-month staleness rule client-side, exactly as the paper describes.

// AvailabilityResponse is the JSON document the availability API returns.
type AvailabilityResponse struct {
	URL               string `json:"url"`
	ArchivedSnapshots struct {
		Closest *ClosestSnapshot `json:"closest,omitempty"`
	} `json:"archived_snapshots"`
}

// ClosestSnapshot describes the snapshot nearest the requested timestamp.
type ClosestSnapshot struct {
	Status    string `json:"status"`
	Available bool   `json:"available"`
	URL       string `json:"url"`
	Timestamp string `json:"timestamp"` // YYYYMMDDhhmmss
}

// Time parses the snapshot's 14-digit timestamp.
func (c *ClosestSnapshot) Time() (time.Time, error) {
	t, err := time.Parse("20060102150405", c.Timestamp)
	if err != nil {
		return time.Time{}, fmt.Errorf("wayback: bad snapshot timestamp %q: %w", c.Timestamp, err)
	}
	return t, nil
}

// QueryAvailability serves an availability API request for a domain's
// homepage near the wanted date (attempt 0 of QueryAvailabilityAttempt).
func (a *Archive) QueryAvailability(domain string, want time.Time) ([]byte, error) {
	return a.QueryAvailabilityAttempt(domain, want, 0)
}

// QueryAvailabilityAttempt serves an availability API request, exposing the
// zero-based retry index to the fault injector. Rate-limit, timeout, and
// outage faults surface as *TransientError; truncated-body faults instead
// return a corrupt JSON prefix with a nil error, exactly what a client
// reading a cut-short HTTP body sees — the caller discovers the fault when
// ParseAvailability fails, and should retry.
//
// Not-archived pages (and permanently excluded domains) produce the empty
// response; "outdated" archive states produce a closest snapshot months
// away from the request, which the client-side staleness rule discards.
func (a *Archive) QueryAvailabilityAttempt(domain string, want time.Time, attempt int) ([]byte, error) {
	if ferr := a.faults.Check("avail", domain, monthKey(want), attempt); ferr != nil {
		var te *TransientError
		if errors.As(ferr, &te) && te.Kind == FaultTruncated {
			body, err := a.queryAvailability(domain, want)
			if err != nil {
				return nil, err
			}
			// A JSON object cut short of its closing brace never parses.
			return body[:len(body)*2/3], nil
		}
		return nil, ferr
	}
	return a.queryAvailability(domain, want)
}

func (a *Archive) queryAvailability(domain string, want time.Time) ([]byte, error) {
	resp := AvailabilityResponse{URL: "http://" + domain + "/"}
	ref, avail := a.Available(domain, want)
	switch avail {
	case Excluded, NotArchived:
		// Empty archived_snapshots, like the real API.
	case Outdated:
		// The nearest snapshot is far from the requested date. Shift
		// deterministically 7–14 months into the past (or future for
		// early months).
		months := 7 + int(hash64("outdist", domain, monthKey(want), a.cfg.Seed)%8)
		ts := want.AddDate(0, -months, 0)
		if ts.Before(a.cfg.Start) {
			ts = want.AddDate(0, months, 0)
		}
		resp.ArchivedSnapshots.Closest = a.closestFor(domain, ts)
	case Archived:
		resp.ArchivedSnapshots.Closest = a.closestFor(domain, ref.Timestamp)
	}
	return json.Marshal(resp)
}

func (a *Archive) closestFor(domain string, ts time.Time) *ClosestSnapshot {
	return &ClosestSnapshot{
		Status:    "200",
		Available: true,
		URL:       RewriteURL(ts, "http://"+domain+"/"),
		Timestamp: ts.Format("20060102150405"),
	}
}

// ParseAvailability decodes an availability response. The returned
// snapshot is nil when the page is not archived.
func ParseAvailability(data []byte) (*ClosestSnapshot, error) {
	var resp AvailabilityResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		return nil, fmt.Errorf("wayback: bad availability response: %w", err)
	}
	return resp.ArchivedSnapshots.Closest, nil
}

// MaxSkewMonths is the client-side staleness rule: the paper discards
// snapshots more than six months from the requested date.
const MaxSkewMonths = 6

// WithinSkew reports whether a snapshot time is close enough to the
// requested date to use. The bound is six calendar months either side
// (AddDate semantics), not the fixed-duration 6×31-day approximation a
// naive implementation would use — the two disagree for snapshots landing
// 181–186 days out.
func WithinSkew(requested, snapshot time.Time) bool {
	return !snapshot.Before(requested.AddDate(0, -MaxSkewMonths, 0)) &&
		!snapshot.After(requested.AddDate(0, MaxSkewMonths, 0))
}

// RefFor reconstructs the snapshot reference for a domain and snapshot
// time obtained from the availability API, recomputing the partial flag
// the fetch path needs.
func (a *Archive) RefFor(domain string, ts time.Time) SnapshotRef {
	frac := a.monthFrac(ts)
	u := hashFloat("defect", domain, monthKey(ts), a.cfg.Seed)
	r := a.cfg.Rates
	pNA := stats.Lerp(r.NotArchivedStart, r.NotArchivedEnd, frac)
	pOut := stats.Lerp(r.OutdatedStart, r.OutdatedEnd, frac)
	pPart := stats.Lerp(r.PartialStart, r.PartialEnd, frac)
	return SnapshotRef{
		Domain:    domain,
		Timestamp: ts,
		Partial:   u >= pNA+pOut && u < pNA+pOut+pPart,
	}
}
