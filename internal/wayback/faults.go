package wayback

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// This file injects the transient failures a real Wayback Machine crawl
// absorbs over a 60-month measurement: rate limiting (HTTP 429 with a
// Retry-After hint), request timeouts, truncated response bodies, and brief
// full-archive outages. Faults are deterministic in the seed and keyed by
// (operation, domain, month, attempt), so a retrying crawler sees exactly
// the same fault schedule on every run — and, crucially, every fault is
// transient *by construction*: consecutive failures for one request are
// bounded, so a sufficient retry budget always reaches the real response.
// That bound is what makes the headline equivalence claim (identical
// Figure 5/6 output with and without faults) provable rather than merely
// probable.

// FaultKind classifies one injected transient failure.
type FaultKind int

// Fault kinds, each standing in for a real archive failure mode (see
// DESIGN.md's fault-model table).
const (
	// FaultRateLimit models HTTP 429 responses with Retry-After semantics.
	FaultRateLimit FaultKind = iota
	// FaultTimeout models request timeouts against an overloaded archive.
	FaultTimeout
	// FaultTruncated models response bodies cut short mid-transfer
	// (corrupt availability JSON, truncated HAR payloads).
	FaultTruncated
	// FaultOutage models brief full-archive outages affecting every
	// request.
	FaultOutage
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultRateLimit:
		return "rate-limit"
	case FaultTimeout:
		return "timeout"
	case FaultTruncated:
		return "truncated"
	case FaultOutage:
		return "outage"
	default:
		return "unknown"
	}
}

// TransientError is a retriable archive failure. Permanent failures (a
// snapshot that genuinely has no source content) are plain errors; the
// crawler distinguishes the two with IsTransient.
type TransientError struct {
	Kind   FaultKind
	Domain string
	// RetryAfter is the archive's backoff hint (non-zero for rate
	// limiting, mirroring the Retry-After header).
	RetryAfter time.Duration
}

// Error renders the failure.
func (e *TransientError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("wayback: transient %s for %s (retry after %s)", e.Kind, e.Domain, e.RetryAfter)
	}
	return fmt.Sprintf("wayback: transient %s for %s", e.Kind, e.Domain)
}

// IsTransient reports whether err is (or wraps) a retriable archive
// failure.
func IsTransient(err error) bool {
	var te *TransientError
	return errors.As(err, &te)
}

// FaultConfig parameterizes fault injection. The zero value disables it.
type FaultConfig struct {
	// Rate is the per-attempt transient failure probability (the paper's
	// crawl saw on the order of a few percent; 0.10 is a hostile archive).
	Rate float64
	// MaxConsecutive bounds how many times in a row one request may fault
	// (default 4). Together with OutageDepth it fixes the retry budget a
	// crawler needs: MaxConsecutive + OutageDepth + 1 attempts always
	// succeed.
	MaxConsecutive int
	// OutageRate is the fraction of months hit by a brief archive-wide
	// outage.
	OutageRate float64
	// OutageDepth is how many attempts of every request fail during an
	// outage month before the archive recovers (default 2).
	OutageDepth int
	// RetryAfter is the base backoff hint attached to rate-limit faults
	// (default 250ms).
	RetryAfter time.Duration
	// Seed drives the fault schedule; 0 inherits the archive's seed.
	Seed int64
}

// DefaultFaultConfig returns a fault model with the given per-attempt
// transient rate plus occasional archive-wide outages.
func DefaultFaultConfig(rate float64, seed int64) FaultConfig {
	return FaultConfig{
		Rate:           rate,
		MaxConsecutive: 4,
		OutageRate:     0.05,
		OutageDepth:    2,
		RetryAfter:     250 * time.Millisecond,
		Seed:           seed,
	}
}

// enabled reports whether any fault class is active.
func (c FaultConfig) enabled() bool { return c.Rate > 0 || c.OutageRate > 0 }

// withDefaults fills unset knobs.
func (c FaultConfig) withDefaults() FaultConfig {
	if c.MaxConsecutive <= 0 {
		c.MaxConsecutive = 4
	}
	if c.OutageDepth <= 0 {
		c.OutageDepth = 2
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 250 * time.Millisecond
	}
	return c
}

// MaxFailuresPerRequest is the worst-case number of consecutive transient
// failures one request can see (outage recovery plus per-request faults);
// a retry budget above this always reaches the real response.
func (c FaultConfig) MaxFailuresPerRequest() int {
	c = c.withDefaults()
	n := 0
	if c.Rate > 0 {
		n += c.MaxConsecutive
	}
	if c.OutageRate > 0 {
		n += c.OutageDepth
	}
	return n
}

// FaultInjector decides, deterministically, which request attempts fail and
// how. Safe for concurrent use.
type FaultInjector struct {
	cfg      FaultConfig
	injected [4]atomic.Int64 // indexed by FaultKind
}

// NewFaultInjector builds an injector; nil is returned for a disabled
// config so a nil receiver can be used as "no faults".
func NewFaultInjector(cfg FaultConfig) *FaultInjector {
	if !cfg.enabled() {
		return nil
	}
	return &FaultInjector{cfg: cfg.withDefaults()}
}

// Check returns the transient error attempt `attempt` (zero-based) of the
// given request should fail with, or nil when the attempt goes through.
// A nil injector never faults.
func (f *FaultInjector) Check(op, domain string, epoch int64, attempt int) error {
	if f == nil {
		return nil
	}
	if f.outageMonth(epoch) {
		if attempt < f.cfg.OutageDepth {
			f.injected[FaultOutage].Add(1)
			return &TransientError{Kind: FaultOutage, Domain: domain, RetryAfter: f.cfg.RetryAfter}
		}
		// The outage consumed the first OutageDepth attempts; the
		// per-request fault schedule indexes the attempts after recovery.
		attempt -= f.cfg.OutageDepth
	}
	if attempt >= f.failures(op, domain, epoch) {
		return nil
	}
	kind := f.kindFor(op, domain, epoch)
	f.injected[kind].Add(1)
	te := &TransientError{Kind: kind, Domain: domain}
	if kind == FaultRateLimit {
		// Escalating Retry-After, as archives under load emit.
		te.RetryAfter = f.cfg.RetryAfter * time.Duration(attempt+1)
	}
	return te
}

// outageMonth reports whether the archive is briefly down in this month.
func (f *FaultInjector) outageMonth(epoch int64) bool {
	if f.cfg.OutageRate <= 0 {
		return false
	}
	return hashFloat("outage", "", epoch, f.cfg.Seed) < f.cfg.OutageRate
}

// failures returns how many consecutive attempts of one request fault: a
// geometric draw (each attempt independently fails with probability Rate)
// truncated at MaxConsecutive, so the marginal per-attempt failure rate is
// Rate while success within the bound is guaranteed.
func (f *FaultInjector) failures(op, domain string, epoch int64) int {
	if f.cfg.Rate <= 0 {
		return 0
	}
	n := 0
	for n < f.cfg.MaxConsecutive &&
		hashFloat(fmt.Sprintf("fault|%s|%d", op, n), domain, epoch, f.cfg.Seed) < f.cfg.Rate {
		n++
	}
	return n
}

// kindFor picks which failure mode a faulting request exhibits.
func (f *FaultInjector) kindFor(op, domain string, epoch int64) FaultKind {
	switch hash64("faultkind|"+op, domain, epoch, f.cfg.Seed) % 3 {
	case 0:
		return FaultRateLimit
	case 1:
		return FaultTimeout
	default:
		return FaultTruncated
	}
}

// InjectedCounts reports how many faults of each kind have been injected.
func (f *FaultInjector) InjectedCounts() map[FaultKind]int64 {
	out := make(map[FaultKind]int64, 4)
	if f == nil {
		return out
	}
	for k := FaultRateLimit; k <= FaultOutage; k++ {
		out[k] = f.injected[k].Load()
	}
	return out
}

// InjectedTotal is the total number of injected faults.
func (f *FaultInjector) InjectedTotal() int64 {
	var n int64
	for _, v := range f.InjectedCounts() {
		n += v
	}
	return n
}
