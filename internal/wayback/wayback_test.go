package wayback

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"adwars/internal/abp"
	"adwars/internal/web"
)

// stubSource serves a fixed page per domain.
type stubSource map[string]*web.Page

func (s stubSource) PageAt(domain string, t time.Time) (*web.Page, bool) {
	p, ok := s[domain]
	return p, ok
}

func testPage(domain string) *web.Page {
	p := web.NewPage(domain, domain)
	p.AddRequest("http://cdn."+domain+"/app.js", abp.TypeScript)
	p.AddRequest("http://img."+domain+"/a.png", abp.TypeImage)
	p.Scripts = append(p.Scripts, web.Script{
		URL: "http://cdn." + domain + "/app.js", Source: "var a = 1;",
	})
	return p
}

func testArchive(n int) (*Archive, []string) {
	domains := make([]string, n)
	src := stubSource{}
	for i := range domains {
		domains[i] = fmt.Sprintf("site%04d.com", i)
		src[domains[i]] = testPage(domains[i])
	}
	cfg := DefaultConfig(42)
	// Scale exclusions down for the small test population.
	cfg.Robots, cfg.Admin, cfg.Undefined = 15, 3, 5
	return New(src, domains, cfg), domains
}

func TestExclusionCounts(t *testing.T) {
	a, domains := testArchive(500)
	r, ad, u := a.ExcludedCount()
	if r != 15 || ad != 3 || u != 5 {
		t.Fatalf("exclusions = %d/%d/%d", r, ad, u)
	}
	// Excluded domains must answer Excluded at every date.
	count := 0
	for _, d := range domains {
		if a.ExclusionOf(d) != ExclNone {
			count++
			if _, avail := a.Available(d, time.Date(2014, 5, 1, 0, 0, 0, 0, time.UTC)); avail != Excluded {
				t.Fatalf("excluded domain %s reported %v", d, avail)
			}
		}
	}
	if count != 23 {
		t.Fatalf("total excluded = %d", count)
	}
}

func TestAvailabilityDeterministic(t *testing.T) {
	a, domains := testArchive(300)
	m := time.Date(2013, 4, 1, 0, 0, 0, 0, time.UTC)
	for _, d := range domains[:50] {
		r1, s1 := a.Available(d, m)
		r2, s2 := a.Available(d, m)
		if s1 != s2 || r1 != r2 {
			t.Fatalf("availability not deterministic for %s", d)
		}
	}
}

func TestDefectRatesTrend(t *testing.T) {
	a, domains := testArchive(2000)
	count := func(m time.Time) (na, out int) {
		for _, d := range domains {
			_, s := a.Available(d, m)
			switch s {
			case NotArchived:
				na++
			case Outdated:
				out++
			}
		}
		return
	}
	naEarly, outEarly := count(time.Date(2011, 8, 1, 0, 0, 0, 0, time.UTC))
	naLate, outLate := count(time.Date(2016, 7, 1, 0, 0, 0, 0, time.UTC))
	// Figure 5 trends: outdated decreases, not-archived increases.
	if outLate >= outEarly {
		t.Errorf("outdated should fall over time: %d → %d", outEarly, outLate)
	}
	if naLate <= naEarly {
		t.Errorf("not-archived should rise over time: %d → %d", naEarly, naLate)
	}
}

func TestFetchSnapshot(t *testing.T) {
	a, domains := testArchive(200)
	var snap *Snapshot
	m := time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)
	for _, d := range domains {
		ref, s := a.Available(d, m)
		if s == Archived && !ref.Partial {
			got, err := a.Fetch(ref)
			if err != nil {
				t.Fatal(err)
			}
			snap = got
			break
		}
	}
	if snap == nil {
		t.Fatal("no archived snapshot found")
	}
	if !strings.Contains(snap.HTML, "<html") {
		t.Error("snapshot HTML missing document")
	}
	if len(snap.HAR.Entries) != 3 { // document + 2 subresources
		t.Fatalf("HAR entries = %d", len(snap.HAR.Entries))
	}
	// Non-escape URLs must be rewritten.
	rewritten := 0
	for _, u := range snap.HAR.URLs() {
		if strings.HasPrefix(u, "http://web.archive.org/web/") {
			rewritten++
		}
	}
	if rewritten == 0 {
		t.Error("no URLs rewritten with archive prefix")
	}
	// Script bodies must be preserved for corpus building.
	foundBody := false
	for _, e := range snap.HAR.Entries {
		if strings.Contains(e.Response.Content.Text, "var a = 1;") {
			foundBody = true
		}
	}
	if !foundBody {
		t.Error("script body lost in HAR")
	}
}

func TestFetchPartialSnapshot(t *testing.T) {
	a, domains := testArchive(3000)
	found := false
	for _, m := range []time.Time{
		time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2016, 7, 1, 0, 0, 0, 0, time.UTC),
	} {
		for _, d := range domains {
			ref, s := a.Available(d, m)
			if s == Archived && ref.Partial {
				snap, err := a.Fetch(ref)
				if err != nil {
					t.Fatal(err)
				}
				if len(snap.HAR.Entries) > 2 {
					t.Fatalf("partial snapshot kept %d entries", len(snap.HAR.Entries))
				}
				if !strings.Contains(snap.HTML, "403") {
					t.Error("partial snapshot should show the anti-bot error page")
				}
				found = true
				break
			}
		}
	}
	if !found {
		t.Skip("no partial snapshot in sample (rates are small)")
	}
}

func TestFetchUnknownDomain(t *testing.T) {
	a, _ := testArchive(10)
	_, err := a.Fetch(SnapshotRef{Domain: "nowhere.test", Timestamp: time.Now()})
	if err == nil {
		t.Fatal("fetch of unknown domain must error")
	}
}

func TestRewriteTruncateRoundTrip(t *testing.T) {
	ts := time.Date(2015, 3, 14, 9, 26, 53, 0, time.UTC)
	orig := "http://pagefair.com/static/adblock_detection/js/d.min.js"
	rw := RewriteURL(ts, orig)
	if !strings.HasPrefix(rw, "http://web.archive.org/web/20150314092653/") {
		t.Fatalf("rewritten = %q", rw)
	}
	if got := TruncateURL(rw); got != orig {
		t.Fatalf("truncated = %q, want %q", got, orig)
	}
	// Escape URLs and live URLs pass through.
	if got := TruncateURL(orig); got != orig {
		t.Fatalf("live URL modified: %q", got)
	}
	if got := TruncateURL("http://web.archive.org/web/nodigits"); got != "http://web.archive.org/web/nodigits" {
		t.Fatalf("malformed archive URL modified: %q", got)
	}
}

func TestAvailabilityStrings(t *testing.T) {
	if Archived.String() != "archived" || NotArchived.String() != "not-archived" ||
		Outdated.String() != "outdated" || Excluded.String() != "excluded" {
		t.Error("availability names wrong")
	}
	if ExclRobots.String() != "robots.txt" || ExclNone.String() != "none" {
		t.Error("exclusion names wrong")
	}
}
