package wayback

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestQueryAvailabilityArchived(t *testing.T) {
	a, domains := testArchive(300)
	m := time.Date(2015, 4, 1, 0, 0, 0, 0, time.UTC)
	found := false
	for _, d := range domains {
		ref, avail := a.Available(d, m)
		if avail != Archived {
			continue
		}
		body, err := a.QueryAvailability(d, m)
		if err != nil {
			t.Fatal(err)
		}
		closest, err := ParseAvailability(body)
		if err != nil {
			t.Fatal(err)
		}
		if closest == nil {
			t.Fatalf("archived domain %s returned empty response", d)
		}
		ts, err := closest.Time()
		if err != nil {
			t.Fatal(err)
		}
		if !ts.Equal(ref.Timestamp) {
			t.Fatalf("API timestamp %v != Available timestamp %v", ts, ref.Timestamp)
		}
		if !strings.HasPrefix(closest.URL, "http://web.archive.org/web/") {
			t.Fatalf("closest URL not rewritten: %q", closest.URL)
		}
		if !WithinSkew(m, ts) {
			t.Fatal("archived snapshot should be within skew")
		}
		// RefFor must reconstruct the same partial flag.
		if got := a.RefFor(d, ts); got.Partial != ref.Partial {
			t.Fatalf("RefFor partial %v != Available partial %v", got.Partial, ref.Partial)
		}
		found = true
		break
	}
	if !found {
		t.Fatal("no archived domain in sample")
	}
}

func TestQueryAvailabilityEmptyForMissing(t *testing.T) {
	a, domains := testArchive(2000)
	m := time.Date(2012, 2, 1, 0, 0, 0, 0, time.UTC)
	checked := 0
	for _, d := range domains {
		_, avail := a.Available(d, m)
		if avail != NotArchived && avail != Excluded {
			continue
		}
		body, err := a.QueryAvailability(d, m)
		if err != nil {
			t.Fatal(err)
		}
		closest, err := ParseAvailability(body)
		if err != nil {
			t.Fatal(err)
		}
		if closest != nil {
			t.Fatalf("%s (%v) should return the empty response", d, avail)
		}
		// The empty response is still well-formed JSON with the url.
		var raw map[string]interface{}
		if err := json.Unmarshal(body, &raw); err != nil || raw["url"] == nil {
			t.Fatalf("malformed empty response: %s", body)
		}
		checked++
		if checked > 20 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no missing domains found")
	}
}

func TestQueryAvailabilityOutdatedBeyondSkew(t *testing.T) {
	a, domains := testArchive(2000)
	m := time.Date(2013, 7, 1, 0, 0, 0, 0, time.UTC)
	checked := 0
	for _, d := range domains {
		_, avail := a.Available(d, m)
		if avail != Outdated {
			continue
		}
		body, err := a.QueryAvailability(d, m)
		if err != nil {
			t.Fatal(err)
		}
		closest, err := ParseAvailability(body)
		if err != nil {
			t.Fatal(err)
		}
		if closest == nil {
			t.Fatalf("outdated domain %s should still return a snapshot", d)
		}
		ts, err := closest.Time()
		if err != nil {
			t.Fatal(err)
		}
		if WithinSkew(m, ts) {
			t.Fatalf("outdated snapshot %v is within skew of %v", ts, m)
		}
		checked++
		if checked > 20 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no outdated domains found")
	}
}

func TestParseAvailabilityErrors(t *testing.T) {
	if _, err := ParseAvailability([]byte("nope")); err == nil {
		t.Fatal("invalid JSON must error")
	}
	c := &ClosestSnapshot{Timestamp: "banana"}
	if _, err := c.Time(); err == nil {
		t.Fatal("invalid timestamp must error")
	}
}

func TestWithinSkew(t *testing.T) {
	base := time.Date(2014, 6, 1, 0, 0, 0, 0, time.UTC)
	if !WithinSkew(base, base.AddDate(0, 5, 0)) {
		t.Error("5 months should be within skew")
	}
	if WithinSkew(base, base.AddDate(0, 8, 0)) {
		t.Error("8 months should exceed skew")
	}
	if !WithinSkew(base, base.AddDate(0, -5, 0)) {
		t.Error("skew must be symmetric")
	}
}

// TestWithinSkewCalendarBoundary pins the calendar-correct six-month rule
// against the old 6×31-day duration approximation: six calendar months is
// 181–184 days depending on the start month, so dates 185–186 days out
// were wrongly accepted by the approximation.
func TestWithinSkewCalendarBoundary(t *testing.T) {
	base := time.Date(2014, 9, 1, 0, 0, 0, 0, time.UTC)
	exact := base.AddDate(0, 6, 0) // 2015-03-01, 181 days out
	if !WithinSkew(base, exact) {
		t.Error("exactly six calendar months must be within skew")
	}
	if !WithinSkew(base, base.AddDate(0, -6, 0)) {
		t.Error("exactly six calendar months back must be within skew")
	}
	if WithinSkew(base, exact.AddDate(0, 0, 1)) {
		t.Error("six months and a day must exceed skew")
	}
	if WithinSkew(base, base.AddDate(0, -6, -1)) {
		t.Error("six months and a day back must exceed skew")
	}
	// 184 days out: under the 186-day approximation this passed; the
	// calendar rule must reject it.
	in184 := base.Add(184 * 24 * time.Hour)
	if d := in184.Sub(base).Hours() / 24; d > 186 {
		t.Fatalf("test setup wrong: %v days", d)
	}
	if WithinSkew(base, in184) {
		t.Error("184 days (> 6 calendar months from Sep 1) must exceed skew")
	}
	// Leap-month sanity: Aug 31 + 6 months clamps per AddDate semantics;
	// the rule must stay symmetric around whatever AddDate yields.
	aug31 := time.Date(2014, 8, 31, 0, 0, 0, 0, time.UTC)
	if !WithinSkew(aug31, aug31.AddDate(0, 6, 0)) {
		t.Error("AddDate-clamped six-month bound must be within skew")
	}
}
