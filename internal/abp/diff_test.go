package abp

import "testing"

func TestDiff(t *testing.T) {
	old := rules(t, "||a.com^", "||b.com^", "c.com###x")
	new := rules(t, "||a.com^", "c.com###y", "||d.com^")
	d := Diff(old, new)
	if len(d.Added) != 2 {
		t.Fatalf("added = %v", d.Added)
	}
	if d.Added[0].Raw != "c.com###y" || d.Added[1].Raw != "||d.com^" {
		t.Fatalf("added order = %v, %v", d.Added[0], d.Added[1])
	}
	if len(d.Removed) != 2 {
		t.Fatalf("removed = %v", d.Removed)
	}
	if d.Churn() != 2 {
		t.Fatalf("churn = %d", d.Churn())
	}
}

func TestDiffEmpty(t *testing.T) {
	same := rules(t, "||a.com^")
	d := Diff(same, same)
	if len(d.Added) != 0 || len(d.Removed) != 0 {
		t.Fatal("identical sets must diff empty")
	}
}

func TestDiffHistory(t *testing.T) {
	h := NewHistory("x")
	h.Append(day(2014, 1, 1), rules(t, "||a.com^"))
	h.Append(day(2014, 2, 1), rules(t, "||a.com^", "||b.com^"))
	h.Append(day(2014, 3, 1), rules(t, "||b.com^"))
	diffs := h.DiffHistory()
	if len(diffs) != 2 {
		t.Fatalf("diffs = %d", len(diffs))
	}
	if diffs[0].Churn() != 1 || len(diffs[0].Removed) != 0 {
		t.Fatalf("first diff wrong: %+v", diffs[0])
	}
	if diffs[1].Churn() != 0 || len(diffs[1].Removed) != 1 {
		t.Fatalf("second diff wrong: %+v", diffs[1])
	}
	if NewHistory("y").DiffHistory() != nil {
		t.Fatal("empty history should have nil diffs")
	}
}

func TestDiffHistoryAgreesWithChurn(t *testing.T) {
	h := NewHistory("x")
	h.Append(day(2014, 1, 1), rules(t, "||a.com^"))
	h.Append(day(2014, 2, 1), rules(t, "||a.com^", "||b.com^", "||c.com^"))
	h.Append(day(2014, 3, 1), rules(t, "||a.com^", "||b.com^", "||c.com^", "||d.com^"))
	total := 0
	for _, d := range h.DiffHistory() {
		total += d.Churn()
	}
	want := h.ChurnPerRevision() * float64(h.Len()-1)
	if float64(total) != want {
		t.Fatalf("diff churn %d != ChurnPerRevision aggregate %.0f", total, want)
	}
}

func TestRulesForDomain(t *testing.T) {
	l := buildList(t, "test",
		"yocast.tv###notice",
		"||yocast.tv/ads.js",
		"||pagefair.com^$third-party",
		"||pagefair.com/static/d.min.js$domain=majorleaguegaming.com",
	)
	got := l.RulesForDomain("yocast.tv")
	if len(got) != 2 {
		t.Fatalf("yocast.tv rules = %v", got)
	}
	// The anchor+tag rule targets both pagefair.com and the tagged site.
	if got := l.RulesForDomain("majorleaguegaming.com"); len(got) != 1 {
		t.Fatalf("mlg rules = %v", got)
	}
	if got := l.RulesForDomain("pagefair.com"); len(got) != 2 {
		t.Fatalf("pagefair rules = %v", got)
	}
	if got := l.RulesForDomain("absent.com"); len(got) != 0 {
		t.Fatalf("absent rules = %v", got)
	}
}
