//go:build !race

package abp

// raceEnabled reports whether the race detector is compiled in; allocation
// and latency gates are skipped under it because instrumentation changes
// both.
const raceEnabled = false
