package abp

import (
	"sort"
	"strings"
	"sync/atomic"
)

// Kind identifies the broad category of a filter rule.
type Kind int

const (
	// KindInvalid marks lines that could not be parsed as a rule.
	KindInvalid Kind = iota
	// KindComment marks comment lines (starting with "!") and section
	// headers (starting with "[").
	KindComment
	// KindHTTPBlock is an HTTP request blocking rule.
	KindHTTPBlock
	// KindHTTPException is an HTTP request exception rule ("@@" prefix).
	KindHTTPException
	// KindElemHide is an HTML element hiding rule ("##" separator).
	KindElemHide
	// KindElemHideException is an element hiding exception rule ("#@#").
	KindElemHideException
)

// String returns a short human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindComment:
		return "comment"
	case KindHTTPBlock:
		return "http-block"
	case KindHTTPException:
		return "http-exception"
	case KindElemHide:
		return "elemhide"
	case KindElemHideException:
		return "elemhide-exception"
	default:
		return "invalid"
	}
}

// Class is the six-way taxonomy of Figure 1 in the paper. Every non-comment
// rule belongs to exactly one class.
type Class int

const (
	// ClassUnknown is returned for comments and invalid lines.
	ClassUnknown Class = iota
	// ClassHTMLNoDomain is an element hiding rule without a domain prefix
	// (applies on every website), e.g. "###examplebanner".
	ClassHTMLNoDomain
	// ClassHTMLWithDomain is an element hiding rule restricted to one or
	// more domains, e.g. "example.com###examplebanner".
	ClassHTMLWithDomain
	// ClassHTTPPlain is an HTTP rule with neither a domain anchor ("||")
	// nor a domain tag ("$domain="), e.g. "/ads.js?".
	ClassHTTPPlain
	// ClassHTTPAnchor is an HTTP rule with only a domain anchor,
	// e.g. "||example.com^".
	ClassHTTPAnchor
	// ClassHTTPTag is an HTTP rule with only a domain tag,
	// e.g. "/ads.js$domain=example.com".
	ClassHTTPTag
	// ClassHTTPAnchorTag is an HTTP rule with both a domain anchor and a
	// domain tag, e.g. "||cdn.com^$domain=example.com".
	ClassHTTPAnchorTag
)

// classNames indexes Class values; keep in sync with the constants above.
var classNames = [...]string{
	"unknown",
	"HTML rules without domain",
	"HTML rules with domain",
	"HTTP rules without domain anchor and tag",
	"HTTP rules with domain anchor",
	"HTTP rules with domain tag",
	"HTTP rules with domain anchor and tag",
}

// String returns the label used for the class in Figure 1 of the paper.
func (c Class) String() string {
	if c < 0 || int(c) >= len(classNames) {
		return "unknown"
	}
	return classNames[c]
}

// AllClasses lists the six rule classes in Figure 1 order.
var AllClasses = []Class{
	ClassHTMLNoDomain,
	ClassHTMLWithDomain,
	ClassHTTPPlain,
	ClassHTTPAnchor,
	ClassHTTPTag,
	ClassHTTPAnchorTag,
}

// RequestType classifies the resource an HTTP request loads, mirroring the
// Adblock Plus content-type options.
type RequestType string

// Request types understood by the matcher. TypeOther covers everything else.
const (
	TypeScript      RequestType = "script"
	TypeImage       RequestType = "image"
	TypeStylesheet  RequestType = "stylesheet"
	TypeObject      RequestType = "object"
	TypeXHR         RequestType = "xmlhttprequest"
	TypeSubdocument RequestType = "subdocument"
	TypeDocument    RequestType = "document"
	TypePopup       RequestType = "popup"
	TypeOther       RequestType = "other"
)

// Rule is a single parsed filter rule. The zero value is an invalid rule;
// use Parse to construct rules.
type Rule struct {
	// Raw is the original filter list line, unchanged.
	Raw string
	// Kind is the rule's broad category.
	Kind Kind

	// Pattern is the URL pattern of an HTTP rule with anchors stripped:
	// the text after "||", between "|...|", or the bare pattern.
	Pattern string
	// DomainAnchor is true for "||" rules (match at a domain boundary of
	// the request host).
	DomainAnchor bool
	// StartAnchor and EndAnchor are true when the pattern is pinned to
	// the start or end of the URL with "|".
	StartAnchor bool
	EndAnchor   bool

	// Types holds the positive content-type options ($script, $image, …).
	// Empty means the rule applies to every request type.
	Types []RequestType
	// NotTypes holds negated content-type options ($~script, …).
	NotTypes []RequestType
	// ThirdParty is +1 for $third-party, -1 for $~third-party, 0 if unset.
	ThirdParty int
	// MatchCase reports the $match-case option.
	MatchCase bool
	// DisableElemHide reports the $elemhide option: an exception rule
	// carrying it turns element hiding off on matching pages.
	DisableElemHide bool
	// DisableGenericHide reports the $generichide option: an exception
	// rule carrying it disables only generic (domain-less) hiding rules.
	DisableGenericHide bool
	// Domains and NotDomains come from the $domain= option of HTTP rules
	// or the domain prefix of element hiding rules. Lower-cased.
	Domains    []string
	NotDomains []string

	// Selector is the element hiding selector (after "##" / "#@#").
	Selector *Selector

	// matcher is the compiled URL matcher. Parse and NewList populate it
	// eagerly (Precompile); the atomic pointer keeps even hand-built rules
	// race-free when first matched from several goroutines.
	matcher atomic.Pointer[urlMatcher]
}

// IsException reports whether the rule is an exception (allow) rule.
func (r *Rule) IsException() bool {
	return r.Kind == KindHTTPException || r.Kind == KindElemHideException
}

// IsHTTP reports whether the rule matches HTTP requests.
func (r *Rule) IsHTTP() bool {
	return r.Kind == KindHTTPBlock || r.Kind == KindHTTPException
}

// IsElemHide reports whether the rule hides HTML elements.
func (r *Rule) IsElemHide() bool {
	return r.Kind == KindElemHide || r.Kind == KindElemHideException
}

// HasDomainTag reports whether the rule carries a $domain= option or an
// element-hiding domain prefix.
func (r *Rule) HasDomainTag() bool {
	return len(r.Domains) > 0 || len(r.NotDomains) > 0
}

// Class returns the rule's position in the six-way taxonomy of Figure 1.
func (r *Rule) Class() Class {
	switch {
	case r.IsElemHide():
		if len(r.Domains) > 0 || len(r.NotDomains) > 0 {
			return ClassHTMLWithDomain
		}
		return ClassHTMLNoDomain
	case r.IsHTTP():
		tag := r.HasDomainTag()
		switch {
		case r.DomainAnchor && tag:
			return ClassHTTPAnchorTag
		case r.DomainAnchor:
			return ClassHTTPAnchor
		case tag:
			return ClassHTTPTag
		default:
			return ClassHTTPPlain
		}
	default:
		return ClassUnknown
	}
}

// TargetDomains returns the set of domains the rule is scoped to: the
// positive $domain= / prefix domains plus, for domain-anchored rules, the
// registrable domain extracted from the pattern. The result is sorted and
// deduplicated. Rules with no domain scope return nil.
func (r *Rule) TargetDomains() []string {
	seen := make(map[string]bool)
	for _, d := range r.Domains {
		seen[d] = true
	}
	if r.DomainAnchor {
		if d := anchorDomain(r.Pattern); d != "" {
			seen[d] = true
		}
	}
	if len(seen) == 0 {
		return nil
	}
	out := make([]string, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// anchorDomain extracts the host portion at the front of a "||" pattern:
// everything up to the first '/', '^', '*', '$', or '|'.
func anchorDomain(pattern string) string {
	end := len(pattern)
	for i := 0; i < len(pattern); i++ {
		switch pattern[i] {
		case '/', '^', '*', '$', '|', '?':
			end = i
		}
		if end != len(pattern) {
			break
		}
	}
	host := strings.ToLower(pattern[:end])
	host = strings.TrimSuffix(host, ".")
	if host == "" || strings.ContainsAny(host, " \t") {
		return ""
	}
	return host
}

// String returns the rule in filter list syntax (its original raw line).
func (r *Rule) String() string { return r.Raw }
