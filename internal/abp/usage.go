package abp

import (
	"runtime"
	"sync/atomic"
	"unsafe"
)

// Usage is a sharded per-rule hit-counter bank attached to a compiled
// List. Recording a hit is one atomic add into one shard — no locks, no
// allocation, nothing on the match hot path beyond the add itself — so
// counters can stay enabled on every serving replica. Aggregation cost is
// pushed entirely onto readers: Counts merges the shards on demand, which
// is why /debug/vars and /admin/usage can expose totals without the hot
// path ever maintaining them.
//
// Sharding exists to keep concurrent recorders off each other's cache
// lines: GOMAXPROCS goroutines hammering one shared counter array would
// serialize on cache-line ownership. Each shard's counter bank is a
// separate allocation (banks never share lines with each other), and a
// recorder picks its shard by hashing a stack address — a per-goroutine
// value that costs nothing to derive and needs no runtime hooks — so
// concurrent goroutines spread across shards while a single goroutine
// stays on one.
type Usage struct {
	banks []usageBank
	mask  uint64
	rules int
}

// usageBank is one shard. The trailing pad keeps adjacent bank headers
// (slice pointers read on every record) on distinct cache lines; the
// counter arrays themselves are separate allocations and therefore never
// share lines across shards.
type usageBank struct {
	counters []atomic.Uint64
	_        [64]byte
}

// newUsage sizes the bank for nrules rules with one shard per P (rounded
// up to a power of two, capped at 64 so huge machines do not multiply the
// merge cost past reason).
func newUsage(nrules int) *Usage {
	shards := 1
	for shards < runtime.GOMAXPROCS(0) && shards < 64 {
		shards <<= 1
	}
	u := &Usage{
		banks: make([]usageBank, shards),
		mask:  uint64(shards - 1),
		rules: nrules,
	}
	for i := range u.banks {
		u.banks[i].counters = make([]atomic.Uint64, nrules)
	}
	return u
}

// record counts one match verdict won by the rule at ord. Out-of-range
// ordinals (notably -1 for no-match) are ignored, so callers can pass a
// verdict's ordinal unconditionally.
func (u *Usage) record(ord int) {
	if ord < 0 || ord >= u.rules {
		return
	}
	// A stack variable's address is stable within this call and distinct
	// across concurrently running goroutines — exactly the locality a
	// shard key needs. Fibonacci hashing mixes the low, allocator-aligned
	// bits into the top, where the mask reads them.
	var probe byte
	h := uint64(uintptr(unsafe.Pointer(&probe))) * 0x9E3779B97F4A7C15
	u.banks[(h>>48)&u.mask].counters[ord].Add(1)
}

// Rules returns the number of rule slots the bank was sized for.
func (u *Usage) Rules() int { return u.rules }

// Counts merges every shard into a fresh per-ordinal total. This is the
// lazy aggregate read: O(shards·rules) on the reader, zero cost on
// recorders. Concurrent recording is safe; a merge taken mid-traffic is a
// consistent snapshot per counter (each counter is read once, atomically),
// which is all reconciliation needs once traffic has stopped.
func (u *Usage) Counts() []uint64 {
	out := make([]uint64, u.rules)
	u.AddCounts(out)
	return out
}

// AddCounts accumulates the merged totals into dst (len >= Rules),
// allowing callers with a reusable buffer to aggregate without allocating.
func (u *Usage) AddCounts(dst []uint64) {
	for i := range u.banks {
		c := u.banks[i].counters
		for ord := range c {
			dst[ord] += c[ord].Load()
		}
	}
}

// Total returns the merged hit count across all rules.
func (u *Usage) Total() uint64 {
	var t uint64
	for i := range u.banks {
		c := u.banks[i].counters
		for ord := range c {
			t += c[ord].Load()
		}
	}
	return t
}

// EnableUsage attaches a hit-counter bank to the list. It must be called
// before the list is shared with concurrent matchers (the serving layer
// enables usage while installing a snapshot, before publishing it);
// enabling is idempotent and recording stays disabled — a nil check on
// the hot path — until it is called.
func (l *List) EnableUsage() {
	if l.usage == nil {
		l.usage = newUsage(len(l.rules))
	}
}

// Usage returns the list's hit-counter bank, or nil when usage was never
// enabled.
func (l *List) Usage() *Usage { return l.usage }

// RecordUsage counts one match verdict won by the rule at ord (as
// returned by DecideHits). No-ops when usage is disabled or the verdict
// was no-match (ord < 0). Callers that derive verdicts from AppendHits
// record through this; MatchRequest records its own verdicts internally.
func (l *List) RecordUsage(ord int) {
	if u := l.usage; u != nil {
		u.record(ord)
	}
}
