package abp

import (
	"fmt"
	"strings"
)

// Element is the view of a DOM element the selector matcher needs. The
// browser substrate adapts its DOM nodes to this type so that abp does not
// depend on the web packages.
type Element struct {
	// Tag is the lower-case tag name ("div", "script", …).
	Tag string
	// ID is the element's id attribute ("" when absent).
	ID string
	// Classes lists the element's class attribute tokens.
	Classes []string
	// Attrs holds the remaining attributes (lower-case names).
	Attrs map[string]string
}

// HasClass reports whether the element carries the given class token.
func (e *Element) HasClass(c string) bool {
	for _, x := range e.Classes {
		if x == c {
			return true
		}
	}
	return false
}

// attrOp is an attribute predicate operator in a selector.
type attrOp int

const (
	attrExists attrOp = iota // [attr]
	attrEquals               // [attr="v"]
	attrPrefix               // [attr^="v"]
	attrSubstr               // [attr*="v"]
)

// attrPred is one [attr…] predicate of a selector.
type attrPred struct {
	name string
	op   attrOp
	val  string
}

// Selector is a compound simple CSS selector: an optional tag name followed
// by any number of #id, .class, and [attr] predicates. This covers the
// selector forms anti-adblock filter rules use (Codes 2, 6, 9 in the paper).
// Combinators (descendant, child, …) are not supported; rules using them are
// rejected at parse time.
type Selector struct {
	// Raw is the original selector text.
	Raw string
	// Tag is the required tag name, or "" for any tag.
	Tag string
	// ID is the required element id, or "".
	ID string
	// Classes lists required class tokens.
	Classes []string

	attrs []attrPred
}

// String returns the original selector text.
func (s *Selector) String() string { return s.Raw }

// IndexKey returns the element id this selector demands, or "" when it can
// match elements of any id. List uses it to bucket hiding rules: a selector
// with a required #id can only ever match elements carrying exactly that
// id, so lookups touch one bucket instead of every rule.
func (s *Selector) IndexKey() string { return s.ID }

// ParseSelector parses a compound simple selector such as
// "#noticeMain", ".adblock-msg", "div#overlay", or "div[id=\"bait\"]".
func ParseSelector(text string) (*Selector, error) {
	if text == "" {
		return nil, fmt.Errorf("empty selector")
	}
	if strings.ContainsAny(text, " >+~,") {
		return nil, fmt.Errorf("combinators are not supported: %q", text)
	}
	s := &Selector{Raw: text}
	i := 0
	// Optional leading tag name.
	for i < len(text) && isNameByte(text[i]) {
		i++
	}
	s.Tag = strings.ToLower(text[:i])
	for i < len(text) {
		switch text[i] {
		case '#':
			j := i + 1
			for j < len(text) && isNameByte(text[j]) {
				j++
			}
			if j == i+1 {
				return nil, fmt.Errorf("empty id at %d", i)
			}
			if s.ID != "" {
				return nil, fmt.Errorf("multiple ids")
			}
			s.ID = text[i+1 : j]
			i = j
		case '.':
			j := i + 1
			for j < len(text) && isNameByte(text[j]) {
				j++
			}
			if j == i+1 {
				return nil, fmt.Errorf("empty class at %d", i)
			}
			s.Classes = append(s.Classes, text[i+1:j])
			i = j
		case '[':
			j := strings.IndexByte(text[i:], ']')
			if j < 0 {
				return nil, fmt.Errorf("unterminated attribute predicate")
			}
			pred, err := parseAttrPred(text[i+1 : i+j])
			if err != nil {
				return nil, err
			}
			s.attrs = append(s.attrs, pred)
			i += j + 1
		default:
			return nil, fmt.Errorf("unexpected %q at %d", text[i], i)
		}
	}
	return s, nil
}

func isNameByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '-' || c == '_'
}

func parseAttrPred(body string) (attrPred, error) {
	var p attrPred
	op := attrExists
	var name, val string
	switch {
	case strings.Contains(body, "^="):
		op = attrPrefix
		parts := strings.SplitN(body, "^=", 2)
		name, val = parts[0], parts[1]
	case strings.Contains(body, "*="):
		op = attrSubstr
		parts := strings.SplitN(body, "*=", 2)
		name, val = parts[0], parts[1]
	case strings.Contains(body, "="):
		op = attrEquals
		parts := strings.SplitN(body, "=", 2)
		name, val = parts[0], parts[1]
	default:
		name = body
	}
	name = strings.ToLower(strings.TrimSpace(name))
	if name == "" {
		return p, fmt.Errorf("empty attribute name in %q", body)
	}
	val = strings.TrimSpace(val)
	val = strings.Trim(val, `"'`)
	return attrPred{name: name, op: op, val: val}, nil
}

// Match reports whether the selector matches the element.
func (s *Selector) Match(e *Element) bool {
	if e == nil {
		return false
	}
	if s.Tag != "" && s.Tag != strings.ToLower(e.Tag) {
		return false
	}
	if s.ID != "" && s.ID != e.ID {
		return false
	}
	for _, c := range s.Classes {
		if !e.HasClass(c) {
			return false
		}
	}
	for _, p := range s.attrs {
		v, ok := elemAttr(e, p.name)
		if !ok {
			return false
		}
		switch p.op {
		case attrEquals:
			if v != p.val {
				return false
			}
		case attrPrefix:
			if !strings.HasPrefix(v, p.val) {
				return false
			}
		case attrSubstr:
			if !strings.Contains(v, p.val) {
				return false
			}
		}
	}
	return true
}

// elemAttr resolves an attribute by name, treating id and class as
// attributes too (so [id="x"] works like #x).
func elemAttr(e *Element, name string) (string, bool) {
	switch name {
	case "id":
		return e.ID, e.ID != ""
	case "class":
		return strings.Join(e.Classes, " "), len(e.Classes) > 0
	}
	v, ok := e.Attrs[name]
	return v, ok
}
