package abp

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adwars/internal/artifact"
)

const snapshotTestList = `! Anti-adblock test list
||baitserver.example^$script
||ads.example.com/banner/*
@@||ads.example.com/banner/allowed$script
|http://exact.example/ad.js|
/adframe/$subdocument,third-party
news.example##.adblock-notice
news.example#@#.adblock-notice-allowed
##div.ad-overlay
@@||trusted.example^$elemhide
`

func snapshotTestRequests() []Request {
	return []Request{
		{URL: "http://baitserver.example/ads.js", Type: TypeScript, PageDomain: "news.example"},
		{URL: "http://ads.example.com/banner/728x90.png", Type: TypeImage, PageDomain: "news.example"},
		{URL: "http://ads.example.com/banner/allowed", Type: TypeScript, PageDomain: "news.example"},
		{URL: "http://exact.example/ad.js", Type: TypeScript, PageDomain: "exact.example"},
		{URL: "http://cdn.example/adframe/index.html", Type: TypeSubdocument, PageDomain: "news.example"},
		{URL: "http://clean.example/app.js", Type: TypeScript, PageDomain: "clean.example"},
	}
}

func TestListsSnapshotRoundTrip(t *testing.T) {
	orig, errs := ParseAndBuild("test-list", snapshotTestList)
	if len(errs) != 0 {
		t.Fatalf("parse errors: %v", errs)
	}
	snap := &ListsSnapshot{Label: "unit", Lists: []*List{orig}}
	path := filepath.Join(t.TempDir(), "lists.json")
	if err := SaveListsSnapshot(path, snap); err != nil {
		t.Fatal(err)
	}
	got, err := LoadListsSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != "unit" || len(got.Lists) != 1 {
		t.Fatalf("snapshot = %q/%d lists, want unit/1", got.Label, len(got.Lists))
	}
	reloaded := got.Lists[0]
	if reloaded.Name != orig.Name || reloaded.Len() != orig.Len() {
		t.Fatalf("reloaded %s/%d rules, want %s/%d", reloaded.Name, reloaded.Len(), orig.Name, orig.Len())
	}
	if got.Rules() != orig.Len() {
		t.Errorf("Rules() = %d, want %d", got.Rules(), orig.Len())
	}
	for _, q := range snapshotTestRequests() {
		d1, r1 := orig.MatchRequest(q)
		d2, r2 := reloaded.MatchRequest(q)
		if d1 != d2 {
			t.Errorf("%s: decision %v != %v", q.URL, d2, d1)
		}
		if (r1 == nil) != (r2 == nil) || (r1 != nil && r1.Raw != r2.Raw) {
			t.Errorf("%s: rule mismatch: %v vs %v", q.URL, r1, r2)
		}
		m1 := orig.MatchingHTTPRules(q)
		m2 := reloaded.MatchingHTTPRules(q)
		if len(m1) != len(m2) {
			t.Errorf("%s: %d matching rules, want %d", q.URL, len(m2), len(m1))
			continue
		}
		for i := range m1 {
			if m1[i].Raw != m2[i].Raw {
				t.Errorf("%s: matching rule %d = %q, want %q", q.URL, i, m2[i].Raw, m1[i].Raw)
			}
		}
	}
	// Element hiding survives the round trip too.
	elems := []*Element{
		{Tag: "div", Classes: []string{"adblock-notice"}},
		{Tag: "div", Classes: []string{"ad-overlay"}},
	}
	h1 := orig.HiddenElements("news.example", elems)
	h2 := reloaded.HiddenElements("news.example", elems)
	if len(h1) != len(h2) {
		t.Fatalf("hidden %d elements, want %d", len(h2), len(h1))
	}
	for i, r := range h1 {
		if h2[i] == nil || h2[i].Raw != r.Raw {
			t.Errorf("element %d hidden by %v, want %q", i, h2[i], r.Raw)
		}
	}
}

func TestListsSnapshotRejectsForeignAndFutureFiles(t *testing.T) {
	if _, err := ReadListsSnapshot(strings.NewReader(`{"format":"nope","version":1}`)); !errors.Is(err, ErrSnapshotFormat) {
		t.Errorf("foreign format: err = %v, want ErrSnapshotFormat", err)
	}
	if _, err := ReadListsSnapshot(strings.NewReader(`garbage`)); !errors.Is(err, ErrSnapshotFormat) {
		t.Errorf("garbage: err = %v, want ErrSnapshotFormat", err)
	}
	if _, err := ReadListsSnapshot(strings.NewReader(`{"format":"adwars-lists","version":42,"lists":[]}`)); !errors.Is(err, ErrSnapshotVersion) {
		t.Errorf("future version: err = %v, want ErrSnapshotVersion", err)
	}
	bad := `{"format":"adwars-lists","version":1,"lists":[{"name":"x","rules":["##["]}]}`
	if _, err := ReadListsSnapshot(strings.NewReader(bad)); err == nil {
		t.Error("unparseable rule must error")
	}
}

// sealedListsBytes returns the raw sealed file bytes of a small snapshot.
func sealedListsBytes(t *testing.T) []byte {
	t.Helper()
	l, errs := ParseAndBuild("corruption-list", snapshotTestList)
	if len(errs) != 0 {
		t.Fatalf("parse errors: %v", errs)
	}
	var buf bytes.Buffer
	if err := WriteListsSnapshot(&buf, &ListsSnapshot{Label: "unit", Lists: []*List{l}}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestListsSnapshotIsSealed(t *testing.T) {
	data := sealedListsBytes(t)
	if !bytes.Contains(data, []byte(artifact.TrailerPrefix)) {
		t.Fatal("written snapshot carries no integrity trailer")
	}
	if !bytes.Contains(data, []byte(`"version":2`)) {
		t.Fatal("written snapshot is not schema version 2")
	}
	if _, err := ReadListsSnapshot(bytes.NewReader(data)); err != nil {
		t.Fatalf("clean sealed snapshot failed to load: %v", err)
	}
}

func TestListsSnapshotCorruptionDetected(t *testing.T) {
	data := sealedListsBytes(t)
	trailerAt := bytes.LastIndex(data, []byte(artifact.TrailerPrefix))

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantCRC bool // must wrap artifact.ErrCorrupt specifically
	}{
		{"truncated mid-payload", func(b []byte) []byte { return b[:len(b)/3] }, false},
		{"trailer truncated away", func(b []byte) []byte { return b[:trailerAt] }, true},
		{"bit flip in payload", func(b []byte) []byte {
			b = bytes.Clone(b)
			b[trailerAt/2] ^= 0x01
			return b
		}, true},
		{"bit flip in trailer checksum", func(b []byte) []byte {
			b = bytes.Clone(b)
			i := bytes.LastIndex(b, []byte("crc64=")) + len("crc64=")
			if b[i] == 'f' {
				b[i] = '0'
			} else {
				b[i] = 'f'
			}
			return b
		}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadListsSnapshot(bytes.NewReader(tc.mutate(data)))
			if err == nil {
				t.Fatal("corrupt snapshot loaded without error")
			}
			if tc.wantCRC && !errors.Is(err, artifact.ErrCorrupt) {
				t.Fatalf("err = %v, want artifact.ErrCorrupt", err)
			}
			if !tc.wantCRC && !errors.Is(err, artifact.ErrCorrupt) && !errors.Is(err, ErrSnapshotFormat) {
				t.Fatalf("err = %v, want ErrCorrupt or ErrSnapshotFormat", err)
			}
		})
	}
}

// compiledListsBytes returns the raw sealed bytes of a small compiled (v3)
// snapshot plus the original in-memory list for differential checks.
func compiledListsBytes(t *testing.T) ([]byte, *List) {
	t.Helper()
	l, errs := ParseAndBuild("compiled-list", snapshotTestList)
	if len(errs) != 0 {
		t.Fatalf("parse errors: %v", errs)
	}
	var buf bytes.Buffer
	if err := WriteListsSnapshotCompiled(&buf, &ListsSnapshot{Label: "unit", Lists: []*List{l}}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), l
}

func TestListsSnapshotCompiledRoundTrip(t *testing.T) {
	data, orig := compiledListsBytes(t)
	if !bytes.Contains(data, []byte(`"version":3`)) {
		t.Fatal("compiled snapshot is not schema version 3")
	}
	if !bytes.Contains(data, []byte(artifact.SectionPrefix)) {
		t.Fatal("compiled snapshot carries no automaton section")
	}
	snap, err := ReadListsSnapshot(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Compiled {
		t.Fatal("Compiled = false after loading a v3 snapshot with sections")
	}
	reloaded := snap.Lists[0]
	if got := reloaded.AutomatonBytes(); !bytes.Equal(got, orig.AutomatonBytes()) {
		t.Fatal("attached automaton differs from the compiled one")
	}
	for _, q := range snapshotTestRequests() {
		d1, r1 := orig.MatchRequest(q)
		d2, r2 := reloaded.MatchRequest(q)
		if d1 != d2 || (r1 == nil) != (r2 == nil) || (r1 != nil && r1.Raw != r2.Raw) {
			t.Errorf("%s: compiled load decision (%v) != original (%v)", q.URL, d2, d1)
		}
	}
	// Determinism: writing again yields byte-identical output (snapshot
	// versions are content checksums).
	var again bytes.Buffer
	if err := WriteListsSnapshotCompiled(&again, &ListsSnapshot{Label: "unit", Lists: []*List{orig}}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), data) {
		t.Fatal("compiled snapshot serialization is not deterministic")
	}
}

func TestListsSnapshotMappedLoad(t *testing.T) {
	data, orig := compiledListsBytes(t)
	path := filepath.Join(t.TempDir(), "lists.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	snap, closer, err := OpenListsSnapshotMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Compiled {
		t.Fatal("mapped v3 snapshot did not load compiled")
	}
	for _, q := range snapshotTestRequests() {
		d1, _ := orig.MatchRequest(q)
		d2, _ := snap.Lists[0].MatchRequest(q)
		if d1 != d2 {
			t.Errorf("%s: mapped decision %v != %v", q.URL, d2, d1)
		}
	}
	if err := closer.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// A plain (v2) snapshot loads through the same entry point, rebuilding
	// its automata.
	plain := filepath.Join(t.TempDir(), "plain.json")
	if err := os.WriteFile(plain, sealedListsBytes(t), 0o644); err != nil {
		t.Fatal(err)
	}
	snap2, closer2, err := OpenListsSnapshotMapped(plain)
	if err != nil {
		t.Fatal(err)
	}
	defer closer2.Close()
	if snap2.Compiled {
		t.Fatal("plain v2 snapshot claims to be compiled")
	}
	if d, _ := snap2.Lists[0].MatchRequest(snapshotTestRequests()[0]); d != Blocked {
		t.Fatalf("mapped plain snapshot decision = %v, want Blocked", d)
	}
}

// TestListsSnapshotCompiledCorruption is the compiled-snapshot corruption
// matrix. A flipped bit anywhere is caught by the outer trailer; the deeper
// cases reseal the damaged payload with a fresh (valid) trailer, so only
// the per-section CRC and the automaton's embedded rule checksum stand
// between a stale or damaged section and silently wrong match decisions.
func TestListsSnapshotCompiledCorruption(t *testing.T) {
	data, _ := compiledListsBytes(t)

	t.Run("bit flip under trailer", func(t *testing.T) {
		b := bytes.Clone(data)
		i := bytes.Index(b, []byte(artifact.SectionPrefix)) + 80 // inside section data
		b[i] ^= 0x01
		if _, err := ReadListsSnapshot(bytes.NewReader(b)); !errors.Is(err, artifact.ErrCorrupt) {
			t.Fatalf("err = %v, want artifact.ErrCorrupt", err)
		}
	})

	payload, sealed, err := artifact.Open(data)
	if err != nil || !sealed {
		t.Fatalf("Open: sealed=%v err=%v", sealed, err)
	}

	t.Run("bit flip in section, resealed", func(t *testing.T) {
		b := bytes.Clone(payload)
		mark := bytes.Index(b, []byte(artifact.SectionPrefix))
		hdrEnd := mark + bytes.IndexByte(b[mark:], '\n') + 1
		b[hdrEnd+16+8] ^= 0x01 // past padding and magic, inside automaton data
		if _, err := ReadListsSnapshot(bytes.NewReader(artifact.Seal(b))); !errors.Is(err, artifact.ErrCorrupt) {
			t.Fatalf("err = %v, want artifact.ErrCorrupt (section checksum)", err)
		}
	})

	t.Run("stale rules, resealed", func(t *testing.T) {
		// Edit one rule line in the JSON without recompiling the section:
		// the automaton's embedded rule CRC must refuse the mismatch.
		b := bytes.Replace(bytes.Clone(payload),
			[]byte(`baitserver.example^$script`), []byte(`baitserver.example^$iframe`), 1)
		if bytes.Equal(b, payload) {
			t.Fatal("rule edit did not take")
		}
		_, err := ReadListsSnapshot(bytes.NewReader(artifact.Seal(b)))
		if !errors.Is(err, artifact.ErrCorrupt) {
			t.Fatalf("err = %v, want artifact.ErrCorrupt (stale automaton)", err)
		}
	})

	t.Run("sections on a pre-v3 schema", func(t *testing.T) {
		b := bytes.Replace(bytes.Clone(payload), []byte(`"version":3`), []byte(`"version":2`), 1)
		_, err := ReadListsSnapshot(bytes.NewReader(artifact.Seal(b)))
		if !errors.Is(err, artifact.ErrCorrupt) {
			t.Fatalf("err = %v, want artifact.ErrCorrupt (v2 with sections)", err)
		}
	})
}

// TestListsSnapshotV3WithoutSectionsRebuilds: a v3 document that carries no
// automaton sections is legal (a future producer may compile selectively) —
// the lists rebuild their automata and the snapshot reports Compiled=false.
func TestListsSnapshotV3WithoutSectionsRebuilds(t *testing.T) {
	l, errs := ParseAndBuild("v3-plain", snapshotTestList)
	if len(errs) != 0 {
		t.Fatalf("parse errors: %v", errs)
	}
	payload, err := marshalListsJSON(&ListsSnapshot{Label: "unit", Lists: []*List{l}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := ReadListsSnapshot(bytes.NewReader(artifact.Seal(payload)))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Compiled {
		t.Fatal("sectionless v3 snapshot claims to be compiled")
	}
	if d, _ := snap.Lists[0].MatchRequest(snapshotTestRequests()[0]); d != Blocked {
		t.Fatalf("decision = %v, want Blocked", d)
	}
}

func TestListsSnapshotLegacyV1StillLoads(t *testing.T) {
	legacy := `{"format":"adwars-lists","version":1,"label":"old",` +
		`"lists":[{"name":"legacy","rules":["||ads.example.com^","@@||ads.example.com/ok$script"]}]}` + "\n"
	snap, err := ReadListsSnapshot(strings.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy v1 snapshot rejected: %v", err)
	}
	if snap.Label != "old" || snap.Rules() != 2 {
		t.Fatalf("legacy snapshot mis-parsed: label=%q rules=%d", snap.Label, snap.Rules())
	}
}
