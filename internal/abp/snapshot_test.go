package abp

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

const snapshotTestList = `! Anti-adblock test list
||baitserver.example^$script
||ads.example.com/banner/*
@@||ads.example.com/banner/allowed$script
|http://exact.example/ad.js|
/adframe/$subdocument,third-party
news.example##.adblock-notice
news.example#@#.adblock-notice-allowed
##div.ad-overlay
@@||trusted.example^$elemhide
`

func snapshotTestRequests() []Request {
	return []Request{
		{URL: "http://baitserver.example/ads.js", Type: TypeScript, PageDomain: "news.example"},
		{URL: "http://ads.example.com/banner/728x90.png", Type: TypeImage, PageDomain: "news.example"},
		{URL: "http://ads.example.com/banner/allowed", Type: TypeScript, PageDomain: "news.example"},
		{URL: "http://exact.example/ad.js", Type: TypeScript, PageDomain: "exact.example"},
		{URL: "http://cdn.example/adframe/index.html", Type: TypeSubdocument, PageDomain: "news.example"},
		{URL: "http://clean.example/app.js", Type: TypeScript, PageDomain: "clean.example"},
	}
}

func TestListsSnapshotRoundTrip(t *testing.T) {
	orig, errs := ParseAndBuild("test-list", snapshotTestList)
	if len(errs) != 0 {
		t.Fatalf("parse errors: %v", errs)
	}
	snap := &ListsSnapshot{Label: "unit", Lists: []*List{orig}}
	path := filepath.Join(t.TempDir(), "lists.json")
	if err := SaveListsSnapshot(path, snap); err != nil {
		t.Fatal(err)
	}
	got, err := LoadListsSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != "unit" || len(got.Lists) != 1 {
		t.Fatalf("snapshot = %q/%d lists, want unit/1", got.Label, len(got.Lists))
	}
	reloaded := got.Lists[0]
	if reloaded.Name != orig.Name || reloaded.Len() != orig.Len() {
		t.Fatalf("reloaded %s/%d rules, want %s/%d", reloaded.Name, reloaded.Len(), orig.Name, orig.Len())
	}
	if got.Rules() != orig.Len() {
		t.Errorf("Rules() = %d, want %d", got.Rules(), orig.Len())
	}
	for _, q := range snapshotTestRequests() {
		d1, r1 := orig.MatchRequest(q)
		d2, r2 := reloaded.MatchRequest(q)
		if d1 != d2 {
			t.Errorf("%s: decision %v != %v", q.URL, d2, d1)
		}
		if (r1 == nil) != (r2 == nil) || (r1 != nil && r1.Raw != r2.Raw) {
			t.Errorf("%s: rule mismatch: %v vs %v", q.URL, r1, r2)
		}
		m1 := orig.MatchingHTTPRules(q)
		m2 := reloaded.MatchingHTTPRules(q)
		if len(m1) != len(m2) {
			t.Errorf("%s: %d matching rules, want %d", q.URL, len(m2), len(m1))
			continue
		}
		for i := range m1 {
			if m1[i].Raw != m2[i].Raw {
				t.Errorf("%s: matching rule %d = %q, want %q", q.URL, i, m2[i].Raw, m1[i].Raw)
			}
		}
	}
	// Element hiding survives the round trip too.
	elems := []*Element{
		{Tag: "div", Classes: []string{"adblock-notice"}},
		{Tag: "div", Classes: []string{"ad-overlay"}},
	}
	h1 := orig.HiddenElements("news.example", elems)
	h2 := reloaded.HiddenElements("news.example", elems)
	if len(h1) != len(h2) {
		t.Fatalf("hidden %d elements, want %d", len(h2), len(h1))
	}
	for i, r := range h1 {
		if h2[i] == nil || h2[i].Raw != r.Raw {
			t.Errorf("element %d hidden by %v, want %q", i, h2[i], r.Raw)
		}
	}
}

func TestListsSnapshotRejectsForeignAndFutureFiles(t *testing.T) {
	if _, err := ReadListsSnapshot(strings.NewReader(`{"format":"nope","version":1}`)); !errors.Is(err, ErrSnapshotFormat) {
		t.Errorf("foreign format: err = %v, want ErrSnapshotFormat", err)
	}
	if _, err := ReadListsSnapshot(strings.NewReader(`garbage`)); !errors.Is(err, ErrSnapshotFormat) {
		t.Errorf("garbage: err = %v, want ErrSnapshotFormat", err)
	}
	if _, err := ReadListsSnapshot(strings.NewReader(`{"format":"adwars-lists","version":42,"lists":[]}`)); !errors.Is(err, ErrSnapshotVersion) {
		t.Errorf("future version: err = %v, want ErrSnapshotVersion", err)
	}
	bad := `{"format":"adwars-lists","version":1,"lists":[{"name":"x","rules":["##["]}]}`
	if _, err := ReadListsSnapshot(strings.NewReader(bad)); err == nil {
		t.Error("unparseable rule must error")
	}
}
