// Package abp implements the Adblock Plus filter list syntax: parsing,
// classification, and matching of HTTP request filter rules and HTML
// element-hiding rules, including exception rules.
//
// The package is the substrate for every filter-list analysis in the paper:
// the six-way rule taxonomy of Figure 1 (HTML rules with/without domain,
// HTTP rules with domain anchor, domain tag, both, or neither), the
// exception/non-exception split of §3.3, and the rule matching used by the
// retrospective (§4.2) and live (§4.3) coverage measurements.
//
// The central types are Rule (a single parsed filter rule), List (a compiled
// rule set with exception semantics and a keyword index for fast URL
// matching), and History (a time-ordered sequence of list revisions, used to
// replay the list as it existed at any point in the measurement window).
package abp
