package abp

import (
	"strings"
	"testing"
	"testing/quick"
)

func req(url, page string, typ RequestType) Request {
	return Request{URL: url, PageDomain: page, Type: typ}
}

func TestHostOf(t *testing.T) {
	cases := map[string]string{
		"http://example.com/a":             "example.com",
		"https://Sub.Example.COM:8080/x":   "sub.example.com",
		"//cdn.example.com/lib.js":         "cdn.example.com",
		"http://user:pw@example.com/p?q=1": "example.com",
		"not-a-url":                        "",
		"http://example.com?x=1":           "example.com",
		"http://example.com#frag":          "example.com",
		// IPv6 literals: the bracketed host must survive intact instead of
		// being truncated at its first ':'.
		"http://[::1]:8080/x":               "::1",
		"http://[2001:db8::1]/p":            "2001:db8::1",
		"https://[2001:DB8::a]:443/q?x=1":   "2001:db8::a",
		"http://u:p@[2001:db8::1]:8443/y":   "2001:db8::1",
		"//[fe80::1]/asset.js":              "fe80::1",
		"http://[broken":                    "",
		"http://user:pw@example.com:8080/p": "example.com",
		// '@' outside the authority: the credential cut is bounded to
		// before the first '/', '?', or '#', so an '@' in the path, query,
		// or fragment must never shift the host.
		"http://host.com/pa@th":            "host.com",
		"http://host.com/p?a@b":            "host.com",
		"http://host.com#f@g":              "host.com",
		"http://host.com/pa@th?a@b#c@d":    "host.com",
		"http://host.com?redir=x@y.com":    "host.com",
		"http://u@host.com/p@q":            "host.com",
		"http://a@b@host.com/":             "host.com",
		"//user:pw@cdn.example.com/lib.js": "cdn.example.com",
	}
	for in, want := range cases {
		if got := HostOf(in); got != want {
			t.Errorf("HostOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDomainAnchorMatching(t *testing.T) {
	r := mustParse(t, "||example1.com")
	if !r.MatchRequest(req("http://example1.com/ads.js", "pub.com", TypeScript)) {
		t.Error("want match on exact host")
	}
	if !r.MatchRequest(req("http://cdn.example1.com/x.png", "pub.com", TypeImage)) {
		t.Error("want match on subdomain")
	}
	if r.MatchRequest(req("http://notexample1.com/x", "pub.com", TypeScript)) {
		t.Error("must not match host suffix without domain boundary")
	}
	if r.MatchRequest(req("http://evil.com/example1.com/x", "pub.com", TypeScript)) {
		t.Error("must not match path occurrence")
	}
}

func TestDomainAnchorUserinfo(t *testing.T) {
	// "||" anchors to the host, which begins after the authority's last
	// '@'. Without bounding the credential cut to the authority, a rule
	// both misses its real host behind userinfo and false-matches a URL
	// whose userinfo impersonates the anchored domain.
	r := mustParse(t, "||victim.com^")
	if !r.MatchRequest(req("http://user@victim.com/x", "pub.com", TypeScript)) {
		t.Error("'||' must match the real host behind userinfo")
	}
	if !r.MatchRequest(req("http://user:pw@victim.com:8080/x", "pub.com", TypeScript)) {
		t.Error("'||' must match behind userinfo with password and port")
	}
	if !r.MatchRequest(req("http://u@sub.victim.com/x", "pub.com", TypeScript)) {
		t.Error("'||' must match a subdomain behind userinfo")
	}
	if r.MatchRequest(req("http://victim.com@evil.com/x", "pub.com", TypeScript)) {
		t.Error("'||' must not match userinfo impersonating the domain")
	}
	if r.MatchRequest(req("http://u@evil.com/victim.com/x", "pub.com", TypeScript)) {
		t.Error("'||' must not match a path occurrence behind userinfo")
	}
	// An '@' after the authority is path data, not a credential cut.
	if !r.MatchRequest(req("http://victim.com/pa@th?a@b", "pub.com", TypeScript)) {
		t.Error("'||' must ignore '@' in path and query")
	}
	if r.MatchRequest(req("http://evil.com/x?to=victim.com@z", "pub.com", TypeScript)) {
		t.Error("'||' must not anchor at an '@' inside the query")
	}
}

func TestSeparatorMatching(t *testing.T) {
	r := mustParse(t, "||pagefair.com^$third-party")
	if !r.MatchRequest(req("http://pagefair.com/score.js", "news.com", TypeScript)) {
		t.Error("'^' should match '/'")
	}
	if !r.MatchRequest(req("http://pagefair.com", "news.com", TypeScript)) {
		t.Error("'^' should match end of URL")
	}
	if r.MatchRequest(req("http://pagefair.community/x", "news.com", TypeScript)) {
		t.Error("'^' must not match letters")
	}
	if r.MatchRequest(req("http://pagefair.com/score.js", "pagefair.com", TypeScript)) {
		t.Error("$third-party must not match first-party request")
	}
}

func TestWildcardMatching(t *testing.T) {
	r := mustParse(t, "/advert*.js")
	if !r.MatchRequest(req("http://x.com/advertisement-v2.js", "x.com", TypeScript)) {
		t.Error("wildcard should bridge arbitrary text")
	}
	if !r.MatchRequest(req("http://x.com/advert.js", "x.com", TypeScript)) {
		t.Error("wildcard should match empty")
	}
	if r.MatchRequest(req("http://x.com/advert.css", "x.com", TypeStylesheet)) {
		t.Error("suffix must still match")
	}
}

func TestStartEndAnchors(t *testing.T) {
	r := mustParse(t, "|http://ads.example.com/a.js|")
	if !r.MatchRequest(req("http://ads.example.com/a.js", "p.com", TypeScript)) {
		t.Error("exact URL should match")
	}
	if r.MatchRequest(req("http://ads.example.com/a.js?x=1", "p.com", TypeScript)) {
		t.Error("end anchor must reject longer URL")
	}
	if r.MatchRequest(req("https://mirror.net/http://ads.example.com/a.js", "p.com", TypeScript)) {
		t.Error("start anchor must reject embedded URL")
	}
}

func TestTypeOptions(t *testing.T) {
	r := mustParse(t, "||example1.com$script")
	if !r.MatchRequest(req("http://example1.com/a.js", "p.com", TypeScript)) {
		t.Error("script request should match")
	}
	if r.MatchRequest(req("http://example1.com/a.png", "p.com", TypeImage)) {
		t.Error("image request must not match a $script rule")
	}
	neg := mustParse(t, "||example1.com$~script")
	if neg.MatchRequest(req("http://example1.com/a.js", "p.com", TypeScript)) {
		t.Error("$~script must reject script requests")
	}
	if !neg.MatchRequest(req("http://example1.com/a.png", "p.com", TypeImage)) {
		t.Error("$~script should allow image requests")
	}
}

func TestDomainOption(t *testing.T) {
	// Rule 4 of Code 1: /example.js$script,domain=example2.com
	r := mustParse(t, "/example.js$script,domain=example2.com")
	if !r.MatchRequest(req("http://cdn.net/example.js", "example2.com", TypeScript)) {
		t.Error("should match on example2.com pages")
	}
	if !r.MatchRequest(req("http://cdn.net/example.js", "sub.example2.com", TypeScript)) {
		t.Error("should match on subdomain pages")
	}
	if r.MatchRequest(req("http://cdn.net/example.js", "other.com", TypeScript)) {
		t.Error("must not match on other pages")
	}
}

func TestNegatedDomainOption(t *testing.T) {
	r := mustParse(t, "/b.js$domain=a.com|~sub.a.com")
	if !r.MatchRequest(req("http://c.net/b.js", "a.com", TypeScript)) {
		t.Error("should match on a.com")
	}
	if r.MatchRequest(req("http://c.net/b.js", "sub.a.com", TypeScript)) {
		t.Error("must not match on negated subdomain")
	}
}

func TestCaseInsensitiveByDefault(t *testing.T) {
	r := mustParse(t, "/ADS.JS")
	if !r.MatchRequest(req("http://x.com/ads.js", "x.com", TypeScript)) {
		t.Error("matching should be case-insensitive by default")
	}
	mc := mustParse(t, "/ADS.JS$match-case")
	if mc.MatchRequest(req("http://x.com/ads.js", "x.com", TypeScript)) {
		t.Error("$match-case must respect case")
	}
}

func TestExceptionRuleMatchesSameURLs(t *testing.T) {
	// Rule 2 of Code 7: @@||numerama.com/ads.js
	blk := mustParse(t, "/ads.js?")
	exc := mustParse(t, "@@||numerama.com/ads.js")
	u := "http://numerama.com/ads.js?v=2"
	if !blk.MatchRequest(req(u, "numerama.com", TypeScript)) {
		t.Error("blocking rule should match the bait URL")
	}
	if !exc.MatchRequest(req(u, "numerama.com", TypeScript)) {
		t.Error("exception rule should match the bait URL")
	}
}

func TestElemHideRuleNeverMatchesRequests(t *testing.T) {
	r := mustParse(t, "example.com###banner")
	if r.MatchRequest(req("http://example.com/banner", "example.com", TypeOther)) {
		t.Error("element hiding rules must not match HTTP requests")
	}
}

func TestKeywordExtraction(t *testing.T) {
	cases := map[string]string{
		"||pagefair.com^$third-party": "pagefair",
		// "js" is too short and "ads" is the only run delimited on both
		// sides by non-keyword literals.
		"/ads.js?": "ads",
		"||a^":     "",
		"*^*":      "",
		// The run before '*' could be extended by whatever the star
		// matches, and the trailing "js" ends an unanchored pattern, so
		// neither is token-safe: the rule must fall into the generic bucket.
		"/abdetect007*.js$script": "",
		// An end anchor makes the trailing run usable again.
		"|http://x.com/detect.js|": "detect",
		// '^' delimits like a literal separator: it can only match a
		// non-keyword character or the end of the URL.
		"||cdn.example^adsbygoogle^": "adsbygoogle",
	}
	for line, want := range cases {
		r, err := Parse(line)
		if err != nil {
			t.Fatalf("Parse(%q): %v", line, err)
		}
		if got := r.Keyword(); got != want {
			t.Errorf("Keyword(%q) = %q, want %q", line, got, want)
		}
	}
}

func TestMatchHereProperties(t *testing.T) {
	// Property: a pattern consisting only of literal characters matches a
	// string exactly when it is a substring (unanchored semantics).
	f := func(pat, pad1, pad2 string) bool {
		clean := func(s string) string {
			s = strings.Map(func(r rune) rune {
				if r == '*' || r == '^' || r == '|' || r == '$' {
					return 'x'
				}
				if r < ' ' || r > '~' {
					return 'y'
				}
				return r
			}, s)
			return strings.ToLower(s)
		}
		p := clean(pat)
		if p == "" {
			return true
		}
		s := clean(pad1) + p + clean(pad2)
		return globMatch(p, s, false, true)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeparatorProperty(t *testing.T) {
	// Property: isSeparator never accepts letters, digits, or _-.%
	f := func(c byte) bool {
		isAlnum := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
		special := c == '_' || c == '-' || c == '.' || c == '%'
		if isAlnum || special {
			return !isSeparator(c)
		}
		return isSeparator(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestThirdPartyComputation(t *testing.T) {
	q := req("http://cdn.pagefair.com/x.js", "news.com", TypeScript)
	if !q.IsThirdParty() {
		t.Error("cross-domain request should be third-party")
	}
	q = req("http://static.news.com/x.js", "news.com", TypeScript)
	if q.IsThirdParty() {
		t.Error("subdomain request should be first-party")
	}
}
